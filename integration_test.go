package cexplorer

// Cross-module integration tests: index persistence round trips, engine /
// server equivalence, algorithm containment relationships, and detection
// quality against planted ground truth. These exercise seams the per-package
// unit tests cannot.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"cexplorer/internal/cluster"
	"cexplorer/internal/codicil"
	"cexplorer/internal/core"
	"cexplorer/internal/csearch"
	"cexplorer/internal/gen"
	"cexplorer/internal/ktruss"
	"cexplorer/internal/metrics"
	"cexplorer/internal/server"
)

func smallDBLP(t testing.TB) *gen.DBLP {
	t.Helper()
	return gen.GenerateDBLP(gen.SmallDBLPConfig())
}

// TestIndexPersistenceEndToEnd: serialize the CL-tree, reload it, and check
// queries answer identically through the reloaded index.
func TestIndexPersistenceEndToEnd(t *testing.T) {
	d := smallDBLP(t)
	tree := BuildIndex(d.Graph)
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	tree2, err := ReadIndex(&buf, d.Graph)
	if err != nil {
		t.Fatal(err)
	}
	e1 := NewEngine(tree)
	e2 := NewEngine(tree2)
	for i := 0; i < gen.NumFamousAuthors(); i += 3 {
		q, ok := d.Graph.VertexByName(gen.FamousAuthor(i))
		if !ok {
			continue
		}
		for _, k := range []int32{2, 4} {
			a, err1 := e1.Search(q, k, nil, Dec)
			b, err2 := e2.Search(q, k, nil, Dec)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("error mismatch: %v vs %v", err1, err2)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("reloaded index answers differ for q=%d k=%d", q, k)
			}
		}
	}
}

// TestConcurrentEnginesShareTree: many goroutines, one tree, each with its
// own engine — results must match a serial run.
func TestConcurrentEnginesShareTree(t *testing.T) {
	d := smallDBLP(t)
	tree := BuildIndex(d.Graph)
	q, _ := d.Graph.VertexByName("jim gray")
	want, err := NewEngine(tree).Search(q, 3, nil, Dec)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng := NewEngine(tree)
			got, err := eng.Search(q, 3, nil, Dec)
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(got, want) {
				errs <- errMismatch
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errMismatch = errString("concurrent result mismatch")

type errString string

func (e errString) Error() string { return string(e) }

// TestACQWithinGlobal: every ACQ community is contained in the Global
// community for the same (q,k) — ACQ adds keyword cohesiveness on top of the
// same structural constraint, so it can only shrink the answer.
func TestACQWithinGlobal(t *testing.T) {
	d := smallDBLP(t)
	tree := BuildIndex(d.Graph)
	eng := NewEngine(tree)
	core := tree.CoreNumbers()
	for i := 0; i < gen.NumFamousAuthors(); i++ {
		q, ok := d.Graph.VertexByName(gen.FamousAuthor(i))
		if !ok {
			continue
		}
		k := int32(3)
		if core[q] < k {
			continue
		}
		acq, err := eng.Search(q, k, nil, Dec)
		if err != nil {
			t.Fatal(err)
		}
		glob := csearch.Global(d.Graph, core, q, k)
		if glob == nil {
			if acq != nil {
				t.Fatalf("ACQ found a community where Global did not (q=%d)", q)
			}
			continue
		}
		in := map[int32]bool{}
		for _, v := range glob.Vertices {
			in[v] = true
		}
		for _, c := range acq {
			for _, v := range c.Vertices {
				if !in[v] {
					t.Fatalf("ACQ vertex %d outside Global community (q=%d)", v, q)
				}
			}
		}
	}
}

// TestKTrussInsideKMinusOneCore: the k-truss is contained in the (k-1)-core
// — a classical containment that ties the two decompositions together.
func TestKTrussInsideKMinusOneCore(t *testing.T) {
	d := smallDBLP(t)
	g := d.Graph
	core := CoreNumbers(g)
	td := ktruss.Decompose(g)
	g.Edges(func(u, v int32) bool {
		tr, _ := td.Trussness(u, v)
		if core[u] < tr-1 || core[v] < tr-1 {
			t.Fatalf("edge {%d,%d} trussness %d but cores %d,%d", u, v, tr, core[u], core[v])
		}
		return true
	})
}

// TestCodicilRecoversPlantedCommunities: on a planted partition with
// topic-correlated keywords, CODICIL's NMI against ground truth must beat a
// random partition by a wide margin.
func TestCodicilRecoversPlantedCommunities(t *testing.T) {
	cfg := gen.SmallDBLPConfig()
	cfg.CrossFrac = 0.02
	d := gen.GenerateDBLP(cfg)
	res := codicil.Detect(d.Graph, codicil.Options{Seed: 1})

	truthLabels := make([]int32, d.Graph.N())
	for c, members := range d.Truth {
		for _, v := range members {
			truthLabels[v] = int32(c) // secondary memberships overwrite; fine for NMI
		}
	}
	nmi := metrics.NMI(res.Partition.Labels, truthLabels)
	if nmi < 0.3 {
		t.Fatalf("CODICIL NMI vs ground truth = %.3f, want ≥ 0.3", nmi)
	}
	// Louvain on structure alone should also do fine; CODICIL shouldn't be
	// drastically worse than it.
	louv := cluster.Louvain(d.Graph, 1)
	lnmi := metrics.NMI(louv.Labels, truthLabels)
	if nmi < lnmi*0.5 {
		t.Fatalf("CODICIL NMI %.3f ≪ Louvain NMI %.3f", nmi, lnmi)
	}
	t.Logf("NMI: CODICIL=%.3f Louvain=%.3f", nmi, lnmi)
}

// TestServerMatchesLibrary: the HTTP search path must return exactly what a
// direct engine call returns.
func TestServerMatchesLibrary(t *testing.T) {
	d := smallDBLP(t)
	exp := NewExplorer()
	if _, err := exp.AddGraph("dblp", d.Graph); err != nil {
		t.Fatal(err)
	}
	srv := server.New(exp, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	q, _ := d.Graph.VertexByName("jim gray")
	direct, err := exp.Search(context.Background(), "dblp", "ACQ", Query{Vertices: []int32{q}, K: 3})
	if err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(map[string]any{
		"dataset": "dblp", "algorithm": "ACQ", "names": []string{"jim gray"}, "k": 3,
	})
	resp, err := http.Post(ts.URL+"/api/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Communities []struct {
			Vertices []int32 `json:"vertices"`
		} `json:"communities"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Communities) != len(direct) {
		t.Fatalf("server %d communities, library %d", len(out.Communities), len(direct))
	}
	for i := range direct {
		if !reflect.DeepEqual(out.Communities[i].Vertices, direct[i].Vertices) {
			t.Fatalf("community %d differs between server and library", i)
		}
	}
}

// TestDecConsistentAcrossAlgorithmsOnDBLP: the four ACQ algorithms agree on
// the realistic dataset, not just on the random graphs of the unit tests.
func TestAlgorithmsAgreeOnDBLP(t *testing.T) {
	d := smallDBLP(t)
	tree := BuildIndex(d.Graph)
	eng := NewEngine(tree)
	q, _ := d.Graph.VertexByName("jim gray")
	S := d.Graph.Keywords(q)
	if len(S) > 8 {
		S = S[:8] // keep Basic feasible
	}
	var want []core.Community
	for i, algo := range []Algorithm{Dec, IncS, IncT, Basic} {
		got, err := eng.Search(q, 3, S, algo)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if i == 0 {
			want = got
			if len(want) == 0 {
				t.Skip("no community for the probe query")
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v disagrees with Dec", algo)
		}
	}
}

// TestThemeMatchesSharedKeywords: each shared keyword of an ACQ community
// must appear in the community's full-frequency theme (it is carried by
// every member, so nothing can rank above-it by count... at minimum it must
// be present in the unlimited theme list).
func TestThemeContainsSharedKeywords(t *testing.T) {
	d := smallDBLP(t)
	eng := NewEngine(BuildIndex(d.Graph))
	q, _ := d.Graph.VertexByName("jim gray")
	res, err := eng.Search(q, 3, nil, Dec)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res {
		theme := Theme(d.Graph, c.Vertices, 0)
		themeSet := map[string]bool{}
		for _, w := range theme {
			themeSet[w] = true
		}
		for _, w := range d.Graph.Vocab().Words(c.SharedKeywords) {
			if !themeSet[w] {
				t.Fatalf("shared keyword %q missing from theme", w)
			}
		}
	}
}
