module cexplorer

go 1.24
