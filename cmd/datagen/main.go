// Command datagen writes the synthetic DBLP-like dataset to disk in the
// text formats the other tools read (edge list + attribute file), standing
// in for the DBLP sample the paper demonstrates on.
//
// Usage:
//
//	datagen -n 20000 -seed 1 -out ./data/dblp
//
// produces ./data/dblp.edges and ./data/dblp.attrs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cexplorer/internal/gen"
)

func main() {
	var (
		n    = flag.Int("n", 20000, "number of authors")
		seed = flag.Int64("seed", 1, "generator seed")
		out  = flag.String("out", "dblp", "output path prefix")
	)
	flag.Parse()

	cfg := gen.DefaultDBLPConfig()
	cfg.Authors = *n
	cfg.Seed = *seed
	log.Printf("generating %d authors (seed %d)...", cfg.Authors, cfg.Seed)
	d := gen.GenerateDBLP(cfg)
	st := d.Graph.ComputeStats()
	log.Printf("graph: %d vertices, %d edges, avg degree %.2f, %d keywords",
		st.Vertices, st.Edges, st.AvgDegree, st.Keywords)

	ef, err := os.Create(*out + ".edges")
	if err != nil {
		log.Fatal(err)
	}
	defer ef.Close()
	if err := d.Graph.WriteEdgeList(ef); err != nil {
		log.Fatal(err)
	}
	af, err := os.Create(*out + ".attrs")
	if err != nil {
		log.Fatal(err)
	}
	defer af.Close()
	if err := d.Graph.WriteAttributes(af); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s.edges and %s.attrs\n", *out, *out)
}
