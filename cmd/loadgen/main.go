// Command loadgen drives a running cexplorer server with open-loop load
// and prints a latency/throughput report as JSON. It is the operational
// companion of the serve-time speed layer: point it at a server, pick a
// query mix, and read the percentiles.
//
// Usage:
//
//	loadgen -addr http://localhost:8080 -dataset dblp -rate 500 -duration 10s
//	loadgen -addr ... -vertices 64            # rotate 64 distinct query vertices
//	loadgen -addr ... -writes 0.05            # 5% of arrivals are mutations
//	loadgen -target http://r1:8080,http://r2:8080 ...   # round-robin several nodes
//
// With -target (comma-separated base URLs) arrivals rotate across the
// listed nodes round-robin and the report gains a perTarget block with each
// node's own latency percentiles — the tool for eyeballing a replication
// fleet's balance (or a router vs its backends).
//
// A 429 response (the admission controller shedding) is tallied as "shed",
// not as a failure — bounded-latency rejection under overload is the
// speed layer behaving as designed.
//
// With -retry503 a 503 answer (no_primary during an election window,
// replica_lagging during catch-up) is retried within the request timeout,
// honouring the Retry-After header — the client posture the self-healing
// fleet is designed for. When any write fails, the report gains a
// "recovery" block measuring time-to-recovery: from the first failed write
// to the first write that succeeded afterwards.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cexplorer/internal/loadgen"
)

var errShed = fmt.Errorf("shed (429)")

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "server base URL")
		target   = flag.String("target", "", "comma-separated server base URLs to rotate across (overrides -addr)")
		dataset  = flag.String("dataset", "figure5", "dataset to query")
		algo     = flag.String("algo", "ACQ", "CS algorithm for searches")
		k        = flag.Int("k", 2, "minimum degree k")
		keywords = flag.String("keywords", "", "comma-separated query keywords")
		vertices = flag.Int("vertices", 1, "rotate query vertices 0..n-1 (1 = hot single-key load)")
		rate     = flag.Float64("rate", 200, "offered arrival rate, requests/second")
		duration = flag.Duration("duration", 10*time.Second, "arrival window")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		poisson  = flag.Bool("poisson", true, "exponential inter-arrival gaps (false = fixed drumbeat)")
		seed     = flag.Int64("seed", 1, "workload seed")
		writes   = flag.Float64("writes", 0, "fraction of arrivals that are addEdge mutations (0..1)")
		writeN   = flag.Int("write.vertices", 100, "mutations draw edge endpoints from 0..n-1 (keep within the dataset's vertex count)")
		retry503 = flag.Bool("retry503", false, "retry 503 answers within the request timeout, honouring Retry-After")
	)
	flag.Parse()

	var kws []string
	if *keywords != "" {
		kws = strings.Split(*keywords, ",")
	}
	targets := []string{strings.TrimRight(*addr, "/")}
	if *target != "" {
		targets = targets[:0]
		for _, u := range strings.Split(*target, ",") {
			if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" {
				targets = append(targets, u)
			}
		}
		if len(targets) == 0 {
			log.Fatal("-target lists no usable URLs")
		}
	}
	rng := rand.New(rand.NewSource(*seed))
	searchPath := fmt.Sprintf("/api/v1/datasets/%s/search", *dataset)
	mutatePath := fmt.Sprintf("/api/v1/datasets/%s/mutations", *dataset)

	// Pre-render one search body per query vertex; mutation bodies are
	// generated per call (distinct random edges).
	bodies := make([][]byte, *vertices)
	for v := range bodies {
		b, err := json.Marshal(map[string]any{
			"algorithm": *algo, "vertices": []int32{int32(v)}, "k": *k, "keywords": kws,
		})
		if err != nil {
			log.Fatal(err)
		}
		bodies[v] = b
	}
	var turn atomic.Int64
	var rngMu sync.Mutex
	// isWrite and randomEdge share the seeded rng; the mutex makes them safe
	// from concurrent request goroutines.
	isWrite := func() bool {
		rngMu.Lock()
		defer rngMu.Unlock()
		return rng.Float64() < *writes
	}
	randomEdge := func() (u, v int32) {
		n := int32(max(*writeN, 2))
		rngMu.Lock()
		defer rngMu.Unlock()
		u, v = rng.Int31n(n), rng.Int31n(n)
		if u == v {
			v = (u + 1) % n
		}
		return u, v
	}

	// Per-target latency samples, so a multi-node run reports each node's
	// own percentiles next to the combined ones.
	var latMu sync.Mutex
	perTargetLat := make([][]time.Duration, len(targets))

	// Time-to-recovery bookkeeping: the wall-clock offsets (from run start)
	// of the first failed write and of the first write that succeeded after
	// it — the outage window a failover leaves in the write stream.
	var (
		recMu        sync.Mutex
		firstFail    time.Duration = -1
		recovered    time.Duration = -1
		failedWrites int64
	)
	runStart := time.Now()
	noteWrite := func(ok bool) {
		recMu.Lock()
		defer recMu.Unlock()
		if !ok {
			failedWrites++
			if firstFail < 0 {
				firstFail = time.Since(runStart)
			}
			return
		}
		if firstFail >= 0 && recovered < 0 {
			recovered = time.Since(runStart)
		}
	}

	rep := loadgen.Run(context.Background(), loadgen.Config{
		Rate:     *rate,
		Duration: *duration,
		Poisson:  *poisson,
		Seed:     *seed,
		Timeout:  *timeout,
		Classify: func(err error) loadgen.Outcome {
			if err == errShed {
				return loadgen.Shed
			}
			return loadgen.Failed
		},
	}, func(ctx context.Context) error {
		i := turn.Add(1)
		node := int(i) % len(targets)
		path, body := searchPath, bodies[int(i)%len(bodies)]
		write := false
		if *writes > 0 && isWrite() {
			write = true
			path = mutatePath
			u, v := randomEdge()
			body, _ = json.Marshal(map[string]any{"op": "addEdge", "u": u, "v": v})
		}
		t0 := time.Now()
		var status int
		for {
			req, err := http.NewRequestWithContext(ctx, "POST", targets[node]+path, bytes.NewReader(body))
			if err != nil {
				if write {
					noteWrite(false)
				}
				return err
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				if write {
					noteWrite(false)
				}
				return err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			status = resp.StatusCode
			if status != http.StatusServiceUnavailable || !*retry503 {
				break
			}
			// 503 + -retry503: back off as the server asked (default 200ms)
			// and try again until the request timeout expires.
			wait := 200 * time.Millisecond
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if sec, err := strconv.Atoi(ra); err == nil && sec > 0 {
					wait = time.Duration(sec) * time.Second
				}
			}
			select {
			case <-ctx.Done():
				if write {
					noteWrite(false)
				}
				return ctx.Err()
			case <-time.After(wait):
			}
		}
		latMu.Lock()
		perTargetLat[node] = append(perTargetLat[node], time.Since(t0))
		latMu.Unlock()
		switch {
		case status == http.StatusTooManyRequests:
			if write {
				noteWrite(false)
			}
			return errShed
		case status >= 400 && status != http.StatusConflict:
			// A mutation conflict (double-insert of a random edge) is an
			// expected outcome of the random write mix, not a server failure.
			if write {
				noteWrite(false)
			}
			return fmt.Errorf("status %d", status)
		}
		if write {
			noteWrite(true)
		}
		return nil
	})

	type recoveryReport struct {
		FirstFailureMs int64 `json:"firstFailureMs"`
		RecoveredMs    int64 `json:"recoveredMs"` // -1 = writes never recovered
		OutageMs       int64 `json:"outageMs"`    // -1 = writes never recovered
		FailedWrites   int64 `json:"failedWrites"`
	}
	out := struct {
		loadgen.Report
		PerTarget map[string]loadgen.Percentiles `json:"perTarget,omitempty"`
		Recovery  *recoveryReport                `json:"recovery,omitempty"`
	}{Report: rep}
	recMu.Lock()
	if firstFail >= 0 {
		rr := &recoveryReport{
			FirstFailureMs: firstFail.Milliseconds(),
			RecoveredMs:    -1,
			OutageMs:       -1,
			FailedWrites:   failedWrites,
		}
		if recovered >= 0 {
			rr.RecoveredMs = recovered.Milliseconds()
			rr.OutageMs = (recovered - firstFail).Milliseconds()
		}
		out.Recovery = rr
	}
	recMu.Unlock()
	if len(targets) > 1 {
		out.PerTarget = make(map[string]loadgen.Percentiles, len(targets))
		for i, u := range targets {
			out.PerTarget[u] = loadgen.Summarize(perTargetLat[i])
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}
	if rep.Failed > 0 {
		os.Exit(1)
	}
}
