// Command loadgen drives a running cexplorer server with open-loop load
// and prints a latency/throughput report as JSON. It is the operational
// companion of the serve-time speed layer: point it at a server, pick a
// query mix, and read the percentiles.
//
// Usage:
//
//	loadgen -addr http://localhost:8080 -dataset dblp -rate 500 -duration 10s
//	loadgen -addr ... -vertices 64            # rotate 64 distinct query vertices
//	loadgen -addr ... -writes 0.05            # 5% of arrivals are mutations
//	loadgen -target http://r1:8080,http://r2:8080 ...   # round-robin several nodes
//
// With -target (comma-separated base URLs) arrivals rotate across the
// listed nodes round-robin and the report gains a perTarget block with each
// node's own latency percentiles — the tool for eyeballing a replication
// fleet's balance (or a router vs its backends).
//
// A 429 response (the admission controller shedding) is tallied as "shed",
// not as a failure — bounded-latency rejection under overload is the
// speed layer behaving as designed.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cexplorer/internal/loadgen"
)

var errShed = fmt.Errorf("shed (429)")

func main() {
	var (
		addr     = flag.String("addr", "http://localhost:8080", "server base URL")
		target   = flag.String("target", "", "comma-separated server base URLs to rotate across (overrides -addr)")
		dataset  = flag.String("dataset", "figure5", "dataset to query")
		algo     = flag.String("algo", "ACQ", "CS algorithm for searches")
		k        = flag.Int("k", 2, "minimum degree k")
		keywords = flag.String("keywords", "", "comma-separated query keywords")
		vertices = flag.Int("vertices", 1, "rotate query vertices 0..n-1 (1 = hot single-key load)")
		rate     = flag.Float64("rate", 200, "offered arrival rate, requests/second")
		duration = flag.Duration("duration", 10*time.Second, "arrival window")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		poisson  = flag.Bool("poisson", true, "exponential inter-arrival gaps (false = fixed drumbeat)")
		seed     = flag.Int64("seed", 1, "workload seed")
		writes   = flag.Float64("writes", 0, "fraction of arrivals that are addEdge mutations (0..1)")
		writeN   = flag.Int("write.vertices", 100, "mutations draw edge endpoints from 0..n-1 (keep within the dataset's vertex count)")
	)
	flag.Parse()

	var kws []string
	if *keywords != "" {
		kws = strings.Split(*keywords, ",")
	}
	targets := []string{strings.TrimRight(*addr, "/")}
	if *target != "" {
		targets = targets[:0]
		for _, u := range strings.Split(*target, ",") {
			if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" {
				targets = append(targets, u)
			}
		}
		if len(targets) == 0 {
			log.Fatal("-target lists no usable URLs")
		}
	}
	rng := rand.New(rand.NewSource(*seed))
	searchPath := fmt.Sprintf("/api/v1/datasets/%s/search", *dataset)
	mutatePath := fmt.Sprintf("/api/v1/datasets/%s/mutations", *dataset)

	// Pre-render one search body per query vertex; mutation bodies are
	// generated per call (distinct random edges).
	bodies := make([][]byte, *vertices)
	for v := range bodies {
		b, err := json.Marshal(map[string]any{
			"algorithm": *algo, "vertices": []int32{int32(v)}, "k": *k, "keywords": kws,
		})
		if err != nil {
			log.Fatal(err)
		}
		bodies[v] = b
	}
	var turn atomic.Int64
	var rngMu sync.Mutex
	// isWrite and randomEdge share the seeded rng; the mutex makes them safe
	// from concurrent request goroutines.
	isWrite := func() bool {
		rngMu.Lock()
		defer rngMu.Unlock()
		return rng.Float64() < *writes
	}
	randomEdge := func() (u, v int32) {
		n := int32(max(*writeN, 2))
		rngMu.Lock()
		defer rngMu.Unlock()
		u, v = rng.Int31n(n), rng.Int31n(n)
		if u == v {
			v = (u + 1) % n
		}
		return u, v
	}

	// Per-target latency samples, so a multi-node run reports each node's
	// own percentiles next to the combined ones.
	var latMu sync.Mutex
	perTargetLat := make([][]time.Duration, len(targets))

	rep := loadgen.Run(context.Background(), loadgen.Config{
		Rate:     *rate,
		Duration: *duration,
		Poisson:  *poisson,
		Seed:     *seed,
		Timeout:  *timeout,
		Classify: func(err error) loadgen.Outcome {
			if err == errShed {
				return loadgen.Shed
			}
			return loadgen.Failed
		},
	}, func(ctx context.Context) error {
		i := turn.Add(1)
		node := int(i) % len(targets)
		path, body := searchPath, bodies[int(i)%len(bodies)]
		if *writes > 0 && isWrite() {
			path = mutatePath
			u, v := randomEdge()
			body, _ = json.Marshal(map[string]any{"op": "addEdge", "u": u, "v": v})
		}
		req, err := http.NewRequestWithContext(ctx, "POST", targets[node]+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		t0 := time.Now()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		latMu.Lock()
		perTargetLat[node] = append(perTargetLat[node], time.Since(t0))
		latMu.Unlock()
		switch {
		case resp.StatusCode == http.StatusTooManyRequests:
			return errShed
		case resp.StatusCode >= 400 && resp.StatusCode != http.StatusConflict:
			// A mutation conflict (double-insert of a random edge) is an
			// expected outcome of the random write mix, not a server failure.
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	})

	out := struct {
		loadgen.Report
		PerTarget map[string]loadgen.Percentiles `json:"perTarget,omitempty"`
	}{Report: rep}
	if len(targets) > 1 {
		out.PerTarget = make(map[string]loadgen.Percentiles, len(targets))
		for i, u := range targets {
			out.PerTarget[u] = loadgen.Summarize(perTargetLat[i])
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		log.Fatal(err)
	}
	if rep.Failed > 0 {
		os.Exit(1)
	}
}
