// Command cexplorer-cli runs community queries from the command line —
// the library without the browser. Subcommands:
//
//	search  -edges g.txt [-attrs a.txt] -q NAME|ID -k 4 [-algo ACQ] [-keywords "w1 w2"]
//	detect  -edges g.txt [-attrs a.txt] [-algo CODICIL] [-min 3]
//	analyze -edges g.txt [-attrs a.txt] -q NAME|ID -k 4
//	index   -edges g.txt [-attrs a.txt] -out index.clt
//	mutate  -server URL -dataset NAME -op addEdge -u 1 -v 2   (single op)
//	mutate  -server URL -dataset NAME -file ops.json          (batch)
//	journal inspect FILE.cxjrnl                               (verify + dump)
//	fleet   status -nodes URL1,URL2,...                       (probe a fleet)
//
// mutate posts streaming graph edits to a running server's
// /api/v1/datasets/{name}/mutations route, since mutations only make sense
// against live, versioned serving state.
// journal inspect walks a mutation journal frame by frame — the same CRC
// checks the server's replay and the replication feed perform — and prints
// each record's version, op breakdown, and frame size, plus any torn tail.
// fleet status probes each node's /api/v1/health (the same endpoint the
// router's failure detector uses) and prints a table of role, fleet epoch,
// and per-dataset applied position and lag — the operator's view of who is
// primary after a failover.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cexplorer/internal/api"
	"cexplorer/internal/cltree"
	"cexplorer/internal/graph"
	"cexplorer/internal/repl"
	"cexplorer/internal/snapshot"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "search":
		runSearch(args)
	case "detect":
		runDetect(args)
	case "analyze":
		runAnalyze(args)
	case "index":
		runIndex(args)
	case "mutate":
		runMutate(args)
	case "journal":
		runJournal(args)
	case "fleet":
		runFleet(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: cexplorer-cli {search|detect|analyze|index|mutate|journal|fleet} [flags]")
	os.Exit(2)
}

func loadGraph(edges, attrs string) *graph.Graph {
	if edges == "" {
		fmt.Fprintln(os.Stderr, "missing -edges")
		os.Exit(2)
	}
	ef, err := os.Open(edges)
	fatal(err)
	defer ef.Close()
	var g *graph.Graph
	if attrs == "" {
		g, err = graph.LoadEdgeList(ef)
	} else {
		var af *os.File
		af, err = os.Open(attrs)
		fatal(err)
		defer af.Close()
		g, err = graph.LoadAttributed(ef, af)
	}
	fatal(err)
	return g
}

func resolveVertex(g *graph.Graph, s string) int32 {
	if v, ok := g.VertexByName(s); ok {
		return v
	}
	id, err := strconv.ParseInt(s, 10, 32)
	if err != nil || id < 0 || int(id) >= g.N() {
		fmt.Fprintf(os.Stderr, "unknown vertex %q\n", s)
		os.Exit(2)
	}
	return int32(id)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func runSearch(args []string) {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	edges := fs.String("edges", "", "edge-list file")
	attrs := fs.String("attrs", "", "attribute file")
	q := fs.String("q", "", "query vertex (name or id)")
	k := fs.Int("k", 2, "minimum degree")
	algo := fs.String("algo", "ACQ", "CS algorithm (ACQ, Global, Local, KTruss)")
	keywords := fs.String("keywords", "", "space-separated query keywords")
	fatal(fs.Parse(args))

	g := loadGraph(*edges, *attrs)
	exp := api.NewExplorer()
	_, err := exp.AddGraph("g", g)
	fatal(err)
	v := resolveVertex(g, *q)
	comms, err := exp.Search(context.Background(), "g", *algo, api.Query{
		Vertices: []int32{v}, K: *k, Keywords: strings.Fields(*keywords),
	})
	fatal(err)
	if len(comms) == 0 {
		fmt.Printf("no community for %q at k=%d\n", *q, *k)
		return
	}
	for i, c := range comms {
		fmt.Printf("community %d (%s): %d vertices\n", i+1, c.Method, len(c.Vertices))
		if len(c.SharedKeywords) > 0 {
			fmt.Printf("  shared keywords: %s\n", strings.Join(c.SharedKeywords, ", "))
		}
		if len(c.Theme) > 0 {
			fmt.Printf("  theme: %s\n", strings.Join(c.Theme, ", "))
		}
		names := make([]string, 0, len(c.Vertices))
		for _, v := range c.Vertices {
			names = append(names, g.Name(v))
		}
		fmt.Printf("  members: %s\n", strings.Join(names, ", "))
	}
}

func runDetect(args []string) {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	edges := fs.String("edges", "", "edge-list file")
	attrs := fs.String("attrs", "", "attribute file")
	algo := fs.String("algo", "CODICIL", "CD algorithm")
	minSize := fs.Int("min", 3, "minimum community size to print")
	fatal(fs.Parse(args))

	g := loadGraph(*edges, *attrs)
	exp := api.NewExplorer()
	_, err := exp.AddGraph("g", g)
	fatal(err)
	comms, err := exp.Detect(context.Background(), "g", *algo)
	fatal(err)
	printed := 0
	for _, c := range comms {
		if len(c.Vertices) < *minSize {
			continue
		}
		printed++
		fmt.Printf("community %d: %d vertices, theme: %s\n",
			printed, len(c.Vertices), strings.Join(c.Theme, ", "))
	}
	fmt.Printf("%d communities total (%d of size ≥ %d)\n", len(comms), printed, *minSize)
}

func runAnalyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	edges := fs.String("edges", "", "edge-list file")
	attrs := fs.String("attrs", "", "attribute file")
	q := fs.String("q", "", "query vertex (name or id)")
	k := fs.Int("k", 2, "minimum degree")
	fatal(fs.Parse(args))

	g := loadGraph(*edges, *attrs)
	exp := api.NewExplorer()
	_, err := exp.AddGraph("g", g)
	fatal(err)
	v := resolveVertex(g, *q)
	fmt.Printf("%-8s %12s %9s %7s %7s %7s %7s\n",
		"Method", "Communities", "Vertices", "Edges", "Degree", "CPJ", "CMF")
	for _, algo := range []string{"Global", "Local", "ACQ"} {
		comms, err := exp.Search(context.Background(), "g", algo, api.Query{Vertices: []int32{v}, K: *k})
		if err != nil {
			fmt.Printf("%-8s error: %v\n", algo, err)
			continue
		}
		var nv, ne, nd, cpj, cmf float64
		for _, c := range comms {
			a, err := exp.Analyze(context.Background(), "g", c, v)
			if err != nil {
				continue
			}
			nv += float64(a.Stats.Vertices)
			ne += float64(a.Stats.Edges)
			nd += a.Stats.AvgDegree
			cpj += a.CPJ
			cmf += a.CMF
		}
		if n := float64(len(comms)); n > 0 {
			nv /= n
			ne /= n
			nd /= n
			cpj /= n
			cmf /= n
		}
		fmt.Printf("%-8s %12d %9.1f %7.1f %7.1f %7.3f %7.3f\n",
			algo, len(comms), nv, ne, nd, cpj, cmf)
	}
}

func runIndex(args []string) {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	edges := fs.String("edges", "", "edge-list file")
	attrs := fs.String("attrs", "", "attribute file")
	out := fs.String("out", "index.clt", "output index file")
	fatal(fs.Parse(args))

	g := loadGraph(*edges, *attrs)
	tr := cltree.Build(g)
	f, err := os.Create(*out)
	fatal(err)
	defer f.Close()
	n, err := tr.WriteTo(f)
	fatal(err)
	fmt.Printf("CL-tree: %d nodes, depth %d, %d bytes on disk (%d in memory)\n",
		tr.NumNodes(), tr.Depth(), n, tr.Bytes())
}

// runJournal dispatches the journal subcommands (inspect, for now).
func runJournal(args []string) {
	if len(args) < 1 || args[0] != "inspect" {
		fmt.Fprintln(os.Stderr, "usage: cexplorer-cli journal inspect FILE")
		os.Exit(2)
	}
	fatal(journalInspect(args[1:]))
}

// journalInspect verifies a mutation journal frame by frame and prints each
// record's version (its replication seq), op breakdown, and frame size —
// the CLI mirror of `cexplorer snapshot inspect` for the journal side. A
// torn tail (crash mid-append) is reported, not treated as corruption; a
// bad header or a checksummed-but-malformed record is a hard error.
func journalInspect(args []string) error {
	fs := flag.NewFlagSet("journal inspect", flag.ExitOnError)
	verbose := fs.Bool("v", false, "print every op, not just per-record summaries")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: cexplorer-cli journal inspect [-v] FILE")
	}
	path := fs.Arg(0)
	if _, err := os.Stat(path); err != nil {
		return err
	}
	cur := snapshot.OpenJournalCursor(path)
	defer cur.Close()

	var (
		records  int
		totalOps int
		kinds    [4]int
		first    uint64
		last     uint64
	)
	for {
		rec, frame, err := cur.NextFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("record %d: %v", records+1, err)
		}
		if records == 0 {
			first = rec.Version
		}
		last = rec.Version
		records++
		totalOps += len(rec.Ops)
		counts := map[byte]int{}
		for _, op := range rec.Ops {
			if int(op.Kind) < len(kinds) {
				kinds[op.Kind]++
			}
			counts[op.Kind]++
		}
		fmt.Printf("  record %-4d seq=%-6d ops=%-4d %-40s %6d bytes  crc OK\n",
			records, rec.Version, len(rec.Ops), opSummary(counts), len(frame))
		if *verbose {
			for _, op := range rec.Ops {
				switch op.Kind {
				case snapshot.JournalAddVertex:
					fmt.Printf("    addVertex  name=%q keywords=%v\n", op.Name, op.Keywords)
				case snapshot.JournalAddEdge:
					fmt.Printf("    addEdge    %d-%d\n", op.U, op.V)
				case snapshot.JournalRemoveEdge:
					fmt.Printf("    removeEdge %d-%d\n", op.U, op.V)
				}
			}
		}
	}
	fmt.Printf("%s: journal v1, %d records (%d ops), %d bytes, checksums OK\n",
		path, records, totalOps, cur.Offset())
	if records > 0 {
		fmt.Printf("  versions  %d..%d\n", first, last)
		fmt.Printf("  ops       addEdge=%d removeEdge=%d addVertex=%d\n",
			kinds[snapshot.JournalAddEdge], kinds[snapshot.JournalRemoveEdge], kinds[snapshot.JournalAddVertex])
	}
	if pending := cur.Pending(); pending > 0 {
		fmt.Printf("  torn tail %d trailing bytes (partial append; replay and tailers skip it)\n", pending)
	}
	return nil
}

// opSummary renders a per-record op-kind histogram compactly.
func opSummary(counts map[byte]int) string {
	var parts []string
	for _, k := range []struct {
		kind byte
		name string
	}{
		{snapshot.JournalAddEdge, "addEdge"},
		{snapshot.JournalRemoveEdge, "removeEdge"},
		{snapshot.JournalAddVertex, "addVertex"},
	} {
		if n := counts[k.kind]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k.name, n))
		}
	}
	if len(parts) == 0 {
		return "(empty)"
	}
	return strings.Join(parts, " ")
}

// runFleet dispatches the fleet subcommands (status, for now).
func runFleet(args []string) {
	if len(args) < 1 || args[0] != "status" {
		fmt.Fprintln(os.Stderr, "usage: cexplorer-cli fleet status -nodes URL1,URL2,...")
		os.Exit(2)
	}
	fs := flag.NewFlagSet("fleet status", flag.ExitOnError)
	nodes := fs.String("nodes", "", "comma-separated node base URLs to probe")
	timeout := fs.Duration("timeout", 2*time.Second, "probe deadline per node")
	fatal(fs.Parse(args[1:]))
	var list []string
	for _, n := range strings.Split(*nodes, ",") {
		if n = strings.TrimRight(strings.TrimSpace(n), "/"); n != "" {
			list = append(list, n)
		}
	}
	if len(list) == 0 {
		fmt.Fprintln(os.Stderr, "fleet status: -nodes lists no usable URLs")
		os.Exit(2)
	}

	type probed struct {
		node   string
		health *repl.HealthStatus
		err    error
	}
	results := make([]probed, len(list))
	var wg sync.WaitGroup
	for i, n := range list {
		wg.Add(1)
		go func(i int, n string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), *timeout)
			defer cancel()
			h, err := repl.FetchHealth(ctx, nil, n)
			results[i] = probed{node: n, health: h, err: err}
		}(i, n)
	}
	wg.Wait()

	unreachable := 0
	fmt.Printf("%-32s %-10s %6s %8s %s\n", "NODE", "ROLE", "EPOCH", "UPTIME", "PRIMARY")
	for _, p := range results {
		if p.err != nil {
			unreachable++
			fmt.Printf("%-32s %-10s %6s %8s (%v)\n", p.node, "DOWN", "-", "-", p.err)
			continue
		}
		h := p.health
		fmt.Printf("%-32s %-10s %6d %7ds %s\n", p.node, h.Role, h.FleetEpoch, h.UptimeSec, h.Primary)
	}
	fmt.Println()
	fmt.Printf("%-32s %-16s %22s %10s %10s %6s %s\n",
		"NODE", "DATASET", "EPOCH", "APPLIED", "HEAD", "LAG", "PHASE")
	for _, p := range results {
		if p.err != nil {
			continue
		}
		names := make([]string, 0, len(p.health.Datasets))
		for name := range p.health.Datasets {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			d := p.health.Datasets[name]
			lag := int64(d.HeadSeq) - int64(d.AppliedSeq)
			fmt.Printf("%-32s %-16s %22d %10d %10d %6d %s\n",
				p.node, name, d.Epoch, d.AppliedSeq, d.HeadSeq, lag, d.Phase)
		}
	}
	if unreachable > 0 {
		os.Exit(1)
	}
}

// runMutate posts one mutation (or a -file batch) to a running server and
// reports the resulting version.
func runMutate(args []string) {
	fs := flag.NewFlagSet("mutate", flag.ExitOnError)
	server := fs.String("server", "http://localhost:8080", "server base URL")
	dataset := fs.String("dataset", "", "dataset name")
	op := fs.String("op", "", "addEdge, removeEdge, or addVertex")
	u := fs.Int("u", 0, "edge endpoint u")
	v := fs.Int("v", 0, "edge endpoint v")
	name := fs.String("name", "", "new vertex display name (addVertex)")
	keywords := fs.String("keywords", "", "new vertex keywords, space separated (addVertex)")
	file := fs.String("file", "", "JSON file with a batch: [{\"op\":...},...]")
	fatal(fs.Parse(args))
	if *dataset == "" {
		fmt.Fprintln(os.Stderr, "missing -dataset")
		os.Exit(2)
	}

	var body any
	switch {
	case *file != "":
		data, err := os.ReadFile(*file)
		fatal(err)
		var ops []api.Mutation
		fatal(json.Unmarshal(data, &ops))
		body = map[string]any{"mutations": ops}
	case *op != "":
		m := api.Mutation{Op: *op, U: int32(*u), V: int32(*v), Name: *name}
		if *keywords != "" {
			m.Keywords = strings.Fields(*keywords)
		}
		body = m
	default:
		fmt.Fprintln(os.Stderr, "need -op or -file")
		os.Exit(2)
	}

	payload, err := json.Marshal(body)
	fatal(err)
	url := fmt.Sprintf("%s/api/v1/datasets/%s/mutations", strings.TrimRight(*server, "/"), *dataset)
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	fatal(err)
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	fatal(err)
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "HTTP %d: %s\n", resp.StatusCode, strings.TrimSpace(string(out)))
		os.Exit(1)
	}
	fmt.Println(strings.TrimSpace(string(out)))
}
