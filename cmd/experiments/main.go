// Command experiments regenerates every table and figure of the paper
// (experiment index E1–E10 in DESIGN.md §4) plus the ablations, printing
// them to stdout. EXPERIMENTS.md is this program's output.
//
// Usage:
//
//	experiments                  # all experiments at the default 20k scale
//	experiments -run E2,E5       # a subset
//	experiments -scale paper     # E7 at the paper's 977k-vertex scale
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"cexplorer/internal/expt"
	"cexplorer/internal/gen"
)

func main() {
	var (
		run   = flag.String("run", "", "comma-separated experiment ids (default: all)")
		scale = flag.String("scale", "default", "dataset scale: default | small | paper")
		seed  = flag.Int64("seed", 1, "dataset seed")
	)
	flag.Parse()

	var cfg gen.DBLPConfig
	switch *scale {
	case "default":
		cfg = gen.DefaultDBLPConfig()
	case "small":
		cfg = gen.SmallDBLPConfig()
	case "paper":
		cfg = gen.PaperScaleConfig()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	cfg.Seed = *seed

	want := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[id] }

	needEnv := false
	for _, id := range []string{"E2", "E3", "E4", "E5", "E7", "E8", "E9", "AB1", "AB4"} {
		if selected(id) {
			needEnv = true
		}
	}
	var env *expt.Env
	if needEnv {
		fmt.Fprintf(os.Stderr, "generating dataset (%d authors, seed %d)...\n", cfg.Authors, cfg.Seed)
		env = expt.NewEnv(cfg)
		st := env.DBLP.Graph.ComputeStats()
		fmt.Printf("dataset: %d vertices, %d edges, avg degree %.2f, %d distinct keywords\n\n",
			st.Vertices, st.Edges, st.AvgDegree, st.Keywords)
	}

	w := os.Stdout
	check := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	section := func() { fmt.Fprintln(w) }

	if selected("E1") {
		check(expt.E1Figure5(w))
		section()
	}
	var rows []expt.Fig6aRow
	if selected("E2") || selected("E3") {
		var err error
		rows, err = expt.E2Fig6aTable(w, env)
		check(err)
		section()
	}
	if selected("E3") {
		expt.E3QualityBars(w, rows)
		section()
	}
	if selected("E4") {
		check(expt.E4Exploration(w, env))
		section()
	}
	if selected("E5") {
		_, err := expt.E5ACQAlgorithms(w, env, []int{2, 4, 6, 8}, []int32{4, 6})
		check(err)
		section()
	}
	if selected("E6") {
		expt.E6CLTreeScaling(w, []int{10000, 20000, 40000, 80000, 160000})
		section()
	}
	if selected("E7") {
		check(expt.E7PaperScale(w, env, 20))
		section()
	}
	if selected("E8") {
		expt.E8GlobalVsLocal(w, env)
		section()
	}
	if selected("E9") {
		check(expt.E9Visual(w, env))
		section()
	}
	if selected("E10") {
		check(expt.E10APIRoundTrip(w))
		section()
	}
	if selected("AB1") {
		check(expt.AblationIndexVsNoIndex(w, env, 8))
		section()
	}
	if selected("AB2") {
		expt.AblationCoreDecomposition(w, 20000)
		section()
	}
	if selected("AB3") {
		expt.AblationLayout(w, []int{200, 800, 3200})
		section()
	}
	if selected("AB4") {
		expt.AblationCodicilSparsify(w, env)
		section()
	}
}
