// Command cexplorer runs the C-Explorer web server (the browser–server
// model of Figure 3): a JSON API plus the embedded Exploration/Analysis UI.
//
// Usage:
//
//	cexplorer [-addr :8080] [-data.dir ./data] [-edges graph.txt -attrs attrs.txt -name mygraph]
//	cexplorer -role replica -primary http://primary:8080 [-addr :8081]
//	cexplorer -role router -primary http://primary:8080 -replicas http://r1:8081,http://r2:8082
//	cexplorer snapshot build -o out.cxsnap [-edges graph.txt [-attrs attrs.txt] | -json graph.json] [-name NAME]
//	cexplorer snapshot inspect file.cxsnap
//
// -role selects the replication topology position (see internal/repl): a
// primary (the default) accepts writes and ships its mutation journal; a
// replica bootstraps every dataset from the primary's snapshots, tails the
// journal, and serves reads (writes answer 403 read_only); a router fronts
// the fleet, sending writes to the primary and fanning dataset reads across
// the replicas by consistent hashing on the dataset name. A router with
// self-healing on (the default; tune with -probe.interval, -probe.failures,
// -promote) probes every node's /api/v1/health, ejects dead nodes from the
// read ring via a per-node circuit breaker, and on sustained primary failure
// promotes the most-caught-up replica under a fenced fleet epoch. All roles
// drain gracefully on SIGTERM/SIGINT (-drain.timeout).
//
// Without -edges the server serves the built-in datasets: the paper's
// Figure-5 example graph and a synthetic DBLP-like network (size via
// -dblp.n).
//
// With -data.dir the server keeps a disk-backed catalog: every snapshot in
// the directory is loaded at boot (indexes pre-seeded — no rebuild), every
// upload is persisted atomically, and built-in datasets are snapshotted on
// first boot so later restarts are warm.
//
// `snapshot build` precomputes a dataset offline — parse, build all three
// indexes (CL-tree, core numbers, truss), write one checksummed file —
// which a server with -data.dir then opens in O(read) time. `snapshot
// inspect` verifies a file's checksum and prints its layout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"cexplorer/internal/api"
	"cexplorer/internal/gen"
	"cexplorer/internal/graph"
	"cexplorer/internal/par"
	"cexplorer/internal/repl"
	"cexplorer/internal/servecache"
	"cexplorer/internal/server"
	"cexplorer/internal/snapshot"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "snapshot" {
		if err := runSnapshot(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	runServer()
}

func runServer() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		dataDir       = flag.String("data.dir", "", "snapshot catalog directory (enables persistence + warm restarts)")
		edges         = flag.String("edges", "", "edge-list file to serve (optional)")
		attrs         = flag.String("attrs", "", "vertex-attribute file (optional, with -edges)")
		name          = flag.String("name", "uploaded", "dataset name for -edges")
		dblpN         = flag.Int("dblp.n", 20000, "synthetic DBLP size (0 disables)")
		dblpSeed      = flag.Int64("dblp.seed", 1, "synthetic DBLP seed")
		searchLimit   = flag.Int("search.limit", 0, "max concurrent searches (0 = 2×GOMAXPROCS)")
		searchTimeout = flag.Duration("search.timeout", 0, "deadline per search-class request, queue wait included (0 = none)")
		exploreTTL    = flag.Duration("explore.ttl", 0, "idle lifetime of exploration sessions (0 = 15m default)")
		indexWorkers  = flag.Int("index.workers", 0, "workers for index construction and snapshot encode/decode (0 = GOMAXPROCS)")
		openModeFlag  = flag.String("open.mode", "auto", "how catalog snapshots are materialized: auto (mmap when eligible), mmap (require zero-copy), copy (always heap-decode)")
		cacheEntries  = flag.Int("cache.entries", servecache.DefaultMaxEntries, "result-cache capacity in entries (0 disables the cache)")
		cacheBytes    = flag.Int64("cache.bytes", servecache.DefaultMaxBytes, "result-cache capacity in bytes")
		shedInflight  = flag.Int("shed.inflight", 0, "max concurrent cache-miss computations per dataset before shedding with 429 (0 = no shedding)")
		batchSize     = flag.Int("batch.size", api.DefaultBatchMaxOps, "mutation batcher flush threshold in ops (0 disables batching)")
		batchWait     = flag.Duration("batch.wait", api.DefaultBatchMaxWait, "mutation batcher max wait before flushing a partial batch")
		role          = flag.String("role", "primary", "replication role: primary (accept writes, ship journal), replica (tail a primary, serve reads), router (route across nodes)")
		primaryURL    = flag.String("primary", "", "primary base URL (replica and router roles)")
		replicaList   = flag.String("replicas", "", "comma-separated replica base URLs (router role)")
		replicaWait   = flag.Duration("replica.wait", 2*time.Second, "read-your-writes catch-up budget before a replica answers 503 replica_lagging")
		replRefresh   = flag.Duration("replica.refresh", 15*time.Second, "replica dataset-discovery period")
		replBuffer    = flag.Int("repl.buffer", repl.DefaultFeedRecords, "journal-shipping buffer capacity in records per dataset (primary role)")
		probeInterval = flag.Duration("probe.interval", time.Second, "router health-probe cadence (0 disables self-healing)")
		probeFailures = flag.Int("probe.failures", 3, "consecutive probe failures before a node's circuit opens")
		promote       = flag.Bool("promote", true, "router: auto-promote the most-caught-up replica when the primary is declared down")
		drainTimeout  = flag.Duration("drain.timeout", 10*time.Second, "graceful-shutdown drain budget on SIGTERM/SIGINT")
	)
	flag.Parse()

	if *role == "router" {
		runRouter(*addr, *primaryURL, *replicaList, routerHealOptions{
			interval: *probeInterval,
			failures: *probeFailures,
			promote:  *promote,
			drain:    *drainTimeout,
		})
		return
	}

	openMode, err := snapshot.ParseOpenMode(*openModeFlag)
	if err != nil {
		log.Fatalf("%v", err)
	}
	par.SetWorkers(*indexWorkers)
	exp := api.NewExplorer()
	srv := server.New(exp, log.Printf)
	srv.SetOpenMode(openMode)
	if *searchLimit > 0 {
		srv.SetSearchLimit(*searchLimit)
	}
	if *searchTimeout > 0 {
		srv.SetSearchTimeout(*searchTimeout)
	}
	if *exploreTTL > 0 {
		exp.SetExploreTTL(*exploreTTL)
	}
	if *cacheEntries > 0 {
		srv.EnableCache(*cacheEntries, *cacheBytes, *shedInflight)
	}
	if *batchSize > 0 {
		srv.EnableBatcher(api.BatcherOptions{MaxOps: *batchSize, MaxWait: *batchWait})
	}

	// Fleet control: both server roles get the role-transition endpoints, so
	// a router can promote a replica or demote a returning stale primary
	// without operator intervention. The tailer factory is also what a
	// demotion uses to start following the new primary.
	srv.EnableFleet(server.FleetControl{
		StartTailer: func(primaryURL string) (server.ReplicaSource, func()) {
			rep := repl.NewReplica(exp, primaryURL, repl.ReplicaOptions{
				Refresh: *replRefresh,
				Logf:    log.Printf,
			})
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan struct{})
			go func() {
				defer close(done)
				rep.Run(ctx)
			}()
			return rep, func() {
				cancel()
				<-done
			}
		},
		Feed:        repl.FeedOptions{MaxRecords: *replBuffer},
		ReplicaWait: *replicaWait,
	})

	if *role == "replica" {
		// A replica owns no data: it bootstraps everything from the primary
		// and applies the journal stream, so local sources and the catalog
		// are ignored (replication would immediately replace them anyway).
		if *primaryURL == "" {
			log.Fatalf("-role replica requires -primary")
		}
		if *dataDir != "" || *edges != "" {
			log.Printf("replica: ignoring -data.dir/-edges (datasets come from the primary)")
		}
		srv.StartFleetReplica(*primaryURL)
		log.Printf("replica: tailing %s (refresh %s, read-your-writes wait %s)", *primaryURL, *replRefresh, *replicaWait)
		serveUntilSignal(srv, *addr, *drainTimeout)
		return
	}
	if *role != "primary" {
		log.Fatalf("unknown -role %q (want primary, replica, or router)", *role)
	}
	srv.EnableReplicationPrimary(repl.FeedOptions{MaxRecords: *replBuffer})

	if *dataDir != "" {
		if err := srv.SetDataDir(*dataDir); err != nil {
			log.Fatalf("%v", err)
		}
		start := time.Now()
		loaded, err := srv.LoadSnapshots()
		if err != nil {
			log.Fatalf("%v", err)
		}
		if loaded > 0 {
			log.Printf("catalog: %d dataset(s) warm from %s in %s",
				loaded, *dataDir, time.Since(start).Round(time.Millisecond))
		}
	}

	// Built-ins: generated only when the catalog did not already provide
	// them, and snapshotted on first boot so the next restart is warm.
	if _, ok := exp.Dataset("figure5"); !ok {
		if _, err := exp.AddGraph("figure5", gen.Figure5()); err != nil {
			log.Fatalf("figure5: %v", err)
		}
		persistBuiltin(srv, exp, "figure5")
	}

	if *dblpN > 0 {
		if ds, ok := exp.Dataset("dblp"); ok {
			log.Printf("dblp: served from catalog snapshot (%d vertices; -dblp.n/-dblp.seed ignored — delete %s/dblp.cxsnap to regenerate)",
				ds.Graph.N(), *dataDir)
		} else {
			cfg := gen.DefaultDBLPConfig()
			cfg.Authors = *dblpN
			cfg.Seed = *dblpSeed
			log.Printf("generating synthetic DBLP (%d authors)...", cfg.Authors)
			d := gen.GenerateDBLP(cfg)
			if _, err := exp.AddGraph("dblp", d.Graph); err != nil {
				log.Fatalf("dblp: %v", err)
			}
			srv.SetProfiles("dblp", d.Profiles)
			st := d.Graph.ComputeStats()
			log.Printf("dblp ready: %d vertices, %d edges, avg degree %.1f",
				st.Vertices, st.Edges, st.AvgDegree)
			persistBuiltin(srv, exp, "dblp")
		}
	}

	if *edges != "" {
		if ds, ok := exp.Dataset(*name); ok {
			// Same warm-restart rule as the built-ins: the catalog copy
			// (indexes pre-seeded) wins over an O(build) re-parse.
			log.Printf("%s: served from catalog snapshot (%d vertices; -edges ignored — delete its .cxsnap to re-import)",
				*name, ds.Graph.N())
		} else {
			g, err := loadFiles(*edges, *attrs)
			if err != nil {
				log.Fatalf("loading %s: %v", *edges, err)
			}
			if _, err := exp.AddGraph(*name, g); err != nil {
				log.Fatalf("adding %s: %v", *name, err)
			}
			log.Printf("%s ready: %d vertices, %d edges", *name, g.N(), g.M())
			persistBuiltin(srv, exp, *name)
		}
	}

	serveUntilSignal(srv, *addr, *drainTimeout)
}

// serveUntilSignal runs the server until it fails or a SIGTERM/SIGINT
// arrives, then drains gracefully: in-flight requests finish (bounded by the
// drain budget), journal long-polls are released, and a replica's tailer
// stops before the listener closes.
func serveUntilSignal(srv *server.Server, addr string, drain time.Duration) {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(addr) }()
	select {
	case err := <-errc:
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills us
		log.Printf("shutdown: draining (budget %s)", drain)
		sctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("shutdown: %v", err)
			os.Exit(1)
		}
		<-errc // ListenAndServe returns nil after a clean Shutdown
		log.Printf("shutdown: complete")
	}
}

// routerHealOptions carries the self-healing flags into runRouter.
type routerHealOptions struct {
	interval time.Duration
	failures int
	promote  bool
	drain    time.Duration
}

// runRouter serves the routing role: no engine, no datasets — just the
// consistent-hash proxy over the primary and replicas, plus (unless
// -probe.interval=0) the health monitor and promotion supervisor.
func runRouter(addr, primary, replicaList string, heal routerHealOptions) {
	if primary == "" {
		log.Fatalf("-role router requires -primary")
	}
	var replicas []string
	for _, r := range strings.Split(replicaList, ",") {
		if r = strings.TrimSpace(r); r != "" {
			replicas = append(replicas, r)
		}
	}
	rt := repl.NewRouter(primary, replicas, repl.RouterOptions{Logf: log.Printf})
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	if heal.interval > 0 {
		rt.EnableSelfHealing(repl.SelfHealOptions{
			Monitor: repl.MonitorOptions{
				Interval:      heal.interval,
				FailThreshold: heal.failures,
				Logf:          log.Printf,
			},
			Promote: heal.promote,
		})
		go rt.Run(ctx)
		log.Printf("router: self-healing on (probe %s, threshold %d, promote %v)",
			heal.interval, heal.failures, heal.promote)
	}
	log.Printf("router: writes → %s, reads → %d replica(s) by dataset hash", primary, len(replicas))
	srv := &http.Server{
		Addr:              addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		log.Printf("shutdown: draining router (budget %s)", heal.drain)
		sctx, cancel := context.WithTimeout(context.Background(), heal.drain)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("shutdown: %v", err)
			os.Exit(1)
		}
		<-errc
		log.Printf("shutdown: complete")
	}
}

// persistBuiltin snapshots a freshly built dataset into the catalog (no-op
// without -data.dir). Failures are logged, not fatal: the dataset still
// serves from memory.
func persistBuiltin(srv *server.Server, exp *api.Explorer, name string) {
	if srv.DataDir() == "" {
		return
	}
	ds, ok := exp.Dataset(name)
	if !ok {
		return
	}
	if _, err := srv.PersistDataset(ds); err != nil {
		log.Printf("catalog: persisting %s: %v", name, err)
	}
}

func loadFiles(edgePath, attrPath string) (*graph.Graph, error) {
	ef, err := os.Open(edgePath)
	if err != nil {
		return nil, err
	}
	defer ef.Close()
	if attrPath == "" {
		return graph.LoadEdgeList(ef)
	}
	af, err := os.Open(attrPath)
	if err != nil {
		return nil, err
	}
	defer af.Close()
	return graph.LoadAttributed(ef, af)
}

// runSnapshot dispatches the `cexplorer snapshot` subcommands.
func runSnapshot(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: cexplorer snapshot <build|inspect> ...")
	}
	switch args[0] {
	case "build":
		return snapshotBuild(args[1:])
	case "inspect":
		return snapshotInspect(args[1:])
	default:
		return fmt.Errorf("unknown snapshot subcommand %q (want build or inspect)", args[0])
	}
}

// snapshotBuild is the offline index precomputation step: load a graph
// from text or JSON, build all three indexes, and write one snapshot file.
func snapshotBuild(args []string) error {
	fs := flag.NewFlagSet("snapshot build", flag.ExitOnError)
	var (
		out      = fs.String("o", "", "output snapshot file (required)")
		edges    = fs.String("edges", "", "edge-list input")
		attrs    = fs.String("attrs", "", "vertex-attribute input (with -edges)")
		jsonPath = fs.String("json", "", "JSON wire-format input (alternative to -edges)")
		name     = fs.String("name", "", "dataset name to embed (default: derived from input filename)")
		dblpN    = fs.Int("dblp.n", 0, "generate a synthetic DBLP of this size instead of reading a file")
		dblpSeed = fs.Int64("dblp.seed", 1, "synthetic DBLP seed")
		workers  = fs.Int("index.workers", 0, "workers for index construction and snapshot encoding (0 = GOMAXPROCS)")
		format   = fs.Int("format", int(snapshot.DefaultFormat), "snapshot format version: 3 (aligned, zero-copy mmap) or 2 (legacy, for older readers)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("snapshot build: -o is required")
	}
	if *format != int(snapshot.FormatV2) && *format != int(snapshot.FormatV3) {
		return fmt.Errorf("snapshot build: -format %d (want %d or %d)", *format, snapshot.FormatV2, snapshot.FormatV3)
	}
	par.SetWorkers(*workers)

	var (
		g   *graph.Graph
		err error
		src string
	)
	switch {
	case *dblpN > 0:
		cfg := gen.DefaultDBLPConfig()
		cfg.Authors = *dblpN
		cfg.Seed = *dblpSeed
		g = gen.GenerateDBLP(cfg).Graph
		src = "dblp"
	case *jsonPath != "":
		f, ferr := os.Open(*jsonPath)
		if ferr != nil {
			return ferr
		}
		g, err = graph.LoadJSON(f)
		f.Close()
		src = *jsonPath
	case *edges != "":
		g, err = loadFiles(*edges, *attrs)
		src = *edges
	default:
		return fmt.Errorf("snapshot build: need one of -edges, -json, or -dblp.n")
	}
	if err != nil {
		return fmt.Errorf("snapshot build: loading %s: %v", src, err)
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("snapshot build: invalid graph: %v", err)
	}
	if *name == "" {
		*name = datasetNameFrom(src)
	}

	ds := api.NewDataset(*name, g)
	start := time.Now()
	ds.BuildIndexes()
	buildTime := time.Since(start)
	start = time.Now()
	n, err := ds.WriteSnapshotFileFormat(*out, uint16(*format))
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d vertices, %d edges → %s (%d bytes)\n", *name, g.N(), g.M(), *out, n)
	fmt.Printf("indexes built in %s (%d workers), written in %s\n",
		buildTime.Round(time.Millisecond), par.Workers(), time.Since(start).Round(time.Millisecond))
	return nil
}

func datasetNameFrom(src string) string {
	base := strings.TrimSuffix(filepath.Base(src), filepath.Ext(src))
	if base == "" || base == "." || base == string(filepath.Separator) {
		return "dataset"
	}
	return base
}

// snapshotInspect verifies a snapshot file and prints its metadata and
// section layout without materializing the dataset.
func snapshotInspect(args []string) error {
	fs := flag.NewFlagSet("snapshot inspect", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: cexplorer snapshot inspect FILE")
	}
	path := fs.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	info, err := snapshot.Inspect(f)
	if err != nil {
		return err
	}
	fmt.Printf("%s: snapshot v%d, %d bytes, checksum OK\n", path, info.Version, info.Bytes)
	fmt.Printf("  dataset   %q\n", info.Name)
	fmt.Printf("  graph     %d vertices, %d edges, %d keywords, named=%v\n",
		info.Vertices, info.Edges, info.Keywords, info.Named)
	fmt.Printf("  indexes   core=%v cltree=%v ktruss=%v\n", info.HasCore, info.HasTree, info.HasTruss)
	fmt.Printf("  created   %s\n", info.Created.Format(time.RFC3339))
	if info.ZeroCopy {
		fmt.Printf("  zero-copy eligible (opens via mmap without heap copies)\n")
	} else {
		fmt.Printf("  zero-copy ineligible: %s\n", info.ZeroCopyReason)
	}
	fmt.Printf("  sections         offset       bytes  aligned\n")
	for _, sec := range info.Sections {
		fmt.Printf("    %-14s %7d  %10d  %v\n", sec.Name, sec.Offset, sec.Bytes, sec.Aligned)
	}
	return nil
}
