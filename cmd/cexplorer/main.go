// Command cexplorer runs the C-Explorer web server (the browser–server
// model of Figure 3): a JSON API plus the embedded Exploration/Analysis UI.
//
// Usage:
//
//	cexplorer [-addr :8080] [-edges graph.txt -attrs attrs.txt -name mygraph]
//
// Without -edges it serves the built-in datasets: the paper's Figure-5
// example graph and a synthetic DBLP-like network (size via -dblp.n).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cexplorer/internal/api"
	"cexplorer/internal/gen"
	"cexplorer/internal/graph"
	"cexplorer/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		edges       = flag.String("edges", "", "edge-list file to serve (optional)")
		attrs       = flag.String("attrs", "", "vertex-attribute file (optional, with -edges)")
		name        = flag.String("name", "uploaded", "dataset name for -edges")
		dblpN       = flag.Int("dblp.n", 20000, "synthetic DBLP size (0 disables)")
		dblpSeed    = flag.Int64("dblp.seed", 1, "synthetic DBLP seed")
		searchLimit = flag.Int("search.limit", 0, "max concurrent searches (0 = 2×GOMAXPROCS)")
	)
	flag.Parse()

	exp := api.NewExplorer()
	srv := server.New(exp, log.Printf)
	if *searchLimit > 0 {
		srv.SetSearchLimit(*searchLimit)
	}

	if _, err := exp.AddGraph("figure5", gen.Figure5()); err != nil {
		log.Fatalf("figure5: %v", err)
	}

	if *dblpN > 0 {
		cfg := gen.DefaultDBLPConfig()
		cfg.Authors = *dblpN
		cfg.Seed = *dblpSeed
		log.Printf("generating synthetic DBLP (%d authors)...", cfg.Authors)
		d := gen.GenerateDBLP(cfg)
		if _, err := exp.AddGraph("dblp", d.Graph); err != nil {
			log.Fatalf("dblp: %v", err)
		}
		srv.SetProfiles("dblp", d.Profiles)
		st := d.Graph.ComputeStats()
		log.Printf("dblp ready: %d vertices, %d edges, avg degree %.1f",
			st.Vertices, st.Edges, st.AvgDegree)
	}

	if *edges != "" {
		g, err := loadFiles(*edges, *attrs)
		if err != nil {
			log.Fatalf("loading %s: %v", *edges, err)
		}
		if _, err := exp.AddGraph(*name, g); err != nil {
			log.Fatalf("adding %s: %v", *name, err)
		}
		log.Printf("%s ready: %d vertices, %d edges", *name, g.N(), g.M())
	}

	if err := srv.ListenAndServe(*addr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func loadFiles(edgePath, attrPath string) (*graph.Graph, error) {
	ef, err := os.Open(edgePath)
	if err != nil {
		return nil, err
	}
	defer ef.Close()
	if attrPath == "" {
		return graph.LoadEdgeList(ef)
	}
	af, err := os.Open(attrPath)
	if err != nil {
		return nil, err
	}
	defer af.Close()
	return graph.LoadAttributed(ef, af)
}
