package cexplorer

// Benchmark harness: one benchmark per table/figure/claim of the paper
// (experiment IDs E1–E10 from DESIGN.md §4) plus the design-choice
// ablations. Each benchmark prints its paper-style table once (so
// `go test -bench=.` regenerates every artifact) and then times the
// operation that dominates that experiment.
//
// The default dataset is the 20k-author synthetic DBLP; set
// CEXPLORER_PAPER_SCALE=1 to run E7 at the paper's 977,288-vertex scale.

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"cexplorer/internal/core"
	"cexplorer/internal/csearch"
	"cexplorer/internal/expt"
	"cexplorer/internal/gen"
	"cexplorer/internal/kcore"
	"cexplorer/internal/ktruss"
)

var (
	envOnce  sync.Once
	benchEnv *expt.Env
)

func sharedEnv() *expt.Env {
	envOnce.Do(func() {
		benchEnv = expt.NewEnv(gen.DefaultDBLPConfig())
	})
	return benchEnv
}

var printOnce sync.Map

func printExperiment(id string, fn func()) {
	if _, done := printOnce.LoadOrStore(id, true); !done {
		fmt.Println()
		fn()
		fmt.Println()
	}
}

// BenchmarkE1_Figure5Example times the full worked example of Figure 5
// (index build + ACQ query on the 10-vertex graph) and prints it once.
func BenchmarkE1_Figure5Example(b *testing.B) {
	printExperiment("E1", func() {
		if err := expt.E1Figure5(os.Stdout); err != nil {
			b.Fatal(err)
		}
	})
	g := Figure5()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := BuildIndex(g)
		eng := NewEngine(idx)
		if _, err := eng.Search(0, 2, nil, Dec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2_Fig6aStatsTable prints the Figure 6(a) statistics table and
// times the four-method comparison row generation.
func BenchmarkE2_Fig6aStatsTable(b *testing.B) {
	env := sharedEnv()
	var rows []expt.Fig6aRow
	printExperiment("E2", func() {
		var err error
		rows, err = expt.E2Fig6aTable(os.Stdout, env)
		if err != nil {
			b.Fatal(err)
		}
		_ = rows
	})
	g := env.DBLP.Graph
	q, k := env.HubQuery()
	eng := core.NewEngine(env.Tree)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Search(q, k, nil, core.Dec); err != nil {
			b.Fatal(err)
		}
		csearch.Global(g, env.Core, q, k)
		csearch.Local(g, q, k, csearch.LocalOptions{})
	}
}

// BenchmarkE3_Fig6aQualityBars prints the CPJ/CMF bars and times metric
// computation for the hub community.
func BenchmarkE3_Fig6aQualityBars(b *testing.B) {
	env := sharedEnv()
	printExperiment("E3", func() {
		rows, err := expt.E2Fig6aTable(os.Stdout, env)
		if err != nil {
			b.Fatal(err)
		}
		expt.E3QualityBars(os.Stdout, rows)
	})
	g := env.DBLP.Graph
	q, k := env.HubQuery()
	eng := core.NewEngine(env.Tree)
	res, err := eng.Search(q, k, nil, core.Dec)
	if err != nil || len(res) == 0 {
		b.Fatalf("no community: %v", err)
	}
	comm := res[0].Vertices
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = CPJ(g, comm)
		_ = CMF(g, comm, q)
	}
}

// BenchmarkE4_ExplorationScenario times the Figures 1–2 flow: search, theme,
// profile, follow-on search.
func BenchmarkE4_ExplorationScenario(b *testing.B) {
	env := sharedEnv()
	printExperiment("E4", func() {
		if err := expt.E4Exploration(os.Stdout, env); err != nil {
			b.Fatal(err)
		}
	})
	q, k := env.HubQuery()
	eng := core.NewEngine(env.Tree)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Search(q, k, nil, core.Dec)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) > 0 {
			_ = Theme(env.DBLP.Graph, res[0].Vertices, 5)
		}
	}
}

// BenchmarkE5_ACQAlgorithms prints the Dec vs Inc-S vs Inc-T vs Basic sweep
// and then times each algorithm as a sub-benchmark at |S|=6.
func BenchmarkE5_ACQAlgorithms(b *testing.B) {
	env := sharedEnv()
	printExperiment("E5", func() {
		if _, err := expt.E5ACQAlgorithms(os.Stdout, env, []int{2, 4, 6, 8}, []int32{4, 6}); err != nil {
			b.Fatal(err)
		}
	})
	g := env.DBLP.Graph
	q, k := env.HubQuery()
	S := g.Keywords(q)
	if len(S) > 6 {
		S = S[:6]
	}
	for _, algo := range []core.Algorithm{core.Dec, core.IncS, core.IncT, core.Basic} {
		b.Run(algo.String(), func(b *testing.B) {
			eng := core.NewEngine(env.Tree)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Search(q, k, S, algo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6_CLTreeScaling prints the linear-scaling table and times index
// construction at n=50k.
func BenchmarkE6_CLTreeScaling(b *testing.B) {
	printExperiment("E6", func() {
		expt.E6CLTreeScaling(os.Stdout, []int{10000, 20000, 40000, 80000, 160000})
	})
	g := gen.GNM(50000, 200000, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BuildIndex(g)
	}
}

// BenchmarkE7_PaperScaleLatency times warm ACQ queries; with
// CEXPLORER_PAPER_SCALE=1 the graph is the paper's 977k-vertex size,
// otherwise the shared 20k dataset is used.
func BenchmarkE7_PaperScaleLatency(b *testing.B) {
	env := sharedEnv()
	if os.Getenv("CEXPLORER_PAPER_SCALE") == "1" {
		cfg := gen.PaperScaleConfig()
		env = expt.NewEnv(cfg)
	}
	printExperiment("E7", func() {
		if err := expt.E7PaperScale(os.Stdout, env, 20); err != nil {
			b.Fatal(err)
		}
	})
	q, k := env.HubQuery()
	eng := core.NewEngine(env.Tree)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Search(q, k, nil, core.Dec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8_GlobalVsLocal prints the comparison and times both methods as
// sub-benchmarks.
func BenchmarkE8_GlobalVsLocal(b *testing.B) {
	env := sharedEnv()
	printExperiment("E8", func() {
		expt.E8GlobalVsLocal(os.Stdout, env)
	})
	g := env.DBLP.Graph
	q, k := env.HubQuery()
	b.Run("Global-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			csearch.Global(g, nil, q, k)
		}
	})
	b.Run("Global-warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			csearch.Global(g, env.Core, q, k)
		}
	})
	b.Run("Local", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			csearch.Local(g, q, k, csearch.LocalOptions{})
		}
	})
}

// BenchmarkE9_VisualComparison prints the Figure 6(b) report and times the
// community layout.
func BenchmarkE9_VisualComparison(b *testing.B) {
	env := sharedEnv()
	printExperiment("E9", func() {
		if err := expt.E9Visual(os.Stdout, env); err != nil {
			b.Fatal(err)
		}
	})
	q, k := env.HubQuery()
	eng := core.NewEngine(env.Tree)
	res, err := eng.Search(q, k, nil, core.Dec)
	if err != nil || len(res) == 0 {
		b.Skip("no community")
	}
	sub := env.DBLP.Graph.Induce(res[0].Vertices)
	el := EdgeList{Count: sub.N()}
	for l := int32(0); l < int32(sub.N()); l++ {
		for _, u := range sub.Neighbors(l) {
			if l < u {
				el.Pairs = append(el.Pairs, [2]int32{l, u})
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FruchtermanReingold(el, LayoutOptions{Seed: 1})
	}
}

// BenchmarkE10_APIRoundTrip prints the Figure-4 API walk and times the
// search endpoint path.
func BenchmarkE10_APIRoundTrip(b *testing.B) {
	printExperiment("E10", func() {
		if err := expt.E10APIRoundTrip(os.Stdout); err != nil {
			b.Fatal(err)
		}
	})
	exp := NewExplorer()
	if _, err := exp.AddGraph("fig5", Figure5()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Search(context.Background(), "fig5", "ACQ", Query{Vertices: []int32{0}, K: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benches (design choices called out in DESIGN.md) ---

func BenchmarkAblation_IndexVsNoIndex(b *testing.B) {
	env := sharedEnv()
	printExperiment("AB1", func() {
		if err := expt.AblationIndexVsNoIndex(os.Stdout, env, 8); err != nil {
			b.Fatal(err)
		}
	})
	q, k := env.HubQuery()
	S := env.DBLP.Graph.Keywords(q)
	if len(S) > 8 {
		S = S[:8]
	}
	b.Run("Dec", func(b *testing.B) {
		eng := core.NewEngine(env.Tree)
		for i := 0; i < b.N; i++ {
			if _, err := eng.Search(q, k, S, core.Dec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Basic", func(b *testing.B) {
		eng := core.NewEngine(env.Tree)
		for i := 0; i < b.N; i++ {
			if _, err := eng.Search(q, k, S, core.Basic); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAblation_CoreDecomposition(b *testing.B) {
	printExperiment("AB2", func() {
		expt.AblationCoreDecomposition(os.Stdout, 20000)
	})
	g := gen.GNM(20000, 80000, 13)
	b.Run("binsort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kcore.Decompose(g)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kcore.NaiveDecompose(g)
		}
	})
}

func BenchmarkAblation_LayoutBarnesHut(b *testing.B) {
	printExperiment("AB3", func() {
		expt.AblationLayout(os.Stdout, []int{200, 800, 3200})
	})
	g := gen.BarabasiAlbert(2000, 3, 5)
	el := EdgeList{Count: g.N()}
	g.Edges(func(u, v int32) bool {
		el.Pairs = append(el.Pairs, [2]int32{u, v})
		return true
	})
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			FruchtermanReingold(el, LayoutOptions{Seed: 1, Iterations: 10, ForceExact: true})
		}
	})
	b.Run("barnes-hut", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			FruchtermanReingold(el, LayoutOptions{Seed: 1, Iterations: 10, BarnesHut: true})
		}
	})
}

func BenchmarkAblation_CodicilSparsify(b *testing.B) {
	env := sharedEnv()
	printExperiment("AB4", func() {
		expt.AblationCodicilSparsify(os.Stdout, env)
	})
	g := env.DBLP.Graph
	b.Run("sparsify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = Codicil(g, CodicilOptions{Seed: 1})
		}
	})
	b.Run("no-sparsify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = Codicil(g, CodicilOptions{Seed: 1, NoSparsify: true})
		}
	})
}

// BenchmarkIndexSerialization times CL-tree save/load round trips.
func BenchmarkIndexSerialization(b *testing.B) {
	env := sharedEnv()
	var buf writeCounter
	b.Run("write", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buf.n = 0
			if _, err := env.Tree.WriteTo(&buf); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(buf.n)
	})
}

type writeCounter struct{ n int64 }

func (w *writeCounter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// BenchmarkKTrussDecompose times truss decomposition on the DBLP graph.
func BenchmarkKTrussDecompose(b *testing.B) {
	g := gen.GenerateDBLP(gen.SmallDBLPConfig()).Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ktruss.Decompose(g)
	}
}

// TestFacadeSmoke exercises the public facade end to end (the README
// quick-start must keep working).
func TestFacadeSmoke(t *testing.T) {
	g := Figure5()
	eng := NewEngine(BuildIndex(g))
	q, ok := g.VertexByName("A")
	if !ok {
		t.Fatal("no vertex A")
	}
	comms, err := eng.Search(q, 2, nil, Dec)
	if err != nil {
		t.Fatal(err)
	}
	if len(comms) != 1 || len(comms[0].Vertices) != 3 {
		t.Fatalf("quickstart result = %+v", comms)
	}
	exp := NewExplorer()
	if _, err := exp.AddGraph("fig5", g); err != nil {
		t.Fatal(err)
	}
	res, err := exp.Search(context.Background(), "fig5", "ACQ", Query{Vertices: []int32{q}, K: 2})
	if err != nil || len(res) != 1 {
		t.Fatalf("facade explorer: %v %+v", err, res)
	}
}

// --- concurrent query serving (the browser–server model under load) ---

// parallelBenchDataset returns a Dataset over the shared DBLP benchmark
// graph with its CL-tree pre-built, so the timed region measures query
// serving only.
func parallelBenchDataset(b *testing.B) (*Dataset, int32, int32) {
	env := sharedEnv()
	exp := NewExplorer()
	ds, err := exp.AddGraph("dblp", env.DBLP.Graph)
	if err != nil {
		b.Fatal(err)
	}
	ds.Tree() // warm the shared index outside the timer
	q, k := env.HubQuery()
	return ds, q, k
}

// runParallelSearch times ACQ/Dec over pooled engines: "serial" is the
// single-goroutine baseline, "parallel-8" drives eight goroutines through
// b.RunParallel, each checking engines out of the dataset pool. The
// per-query steady state must stay allocation-free in the peeler (its
// membership sets are epoch-stamped scratch, not maps) — watch the
// -benchmem delta between the two.
func runParallelSearch(b *testing.B, S []int32) {
	ds, q, k := parallelBenchDataset(b)
	b.Run("serial", func(b *testing.B) {
		eng := ds.AcquireEngine()
		defer ds.ReleaseEngine(eng)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Search(q, k, S, Dec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel-8", func(b *testing.B) {
		// b.RunParallel spawns GOMAXPROCS×parallelism goroutines; scale the
		// factor so the total is (at least) the 8 the serving model targets.
		factor := (8 + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0)
		b.SetParallelism(factor)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			eng := ds.AcquireEngine()
			defer ds.ReleaseEngine(eng)
			for pb.Next() {
				if _, err := eng.Search(q, k, S, Dec); err != nil {
					// Fatal must not be called from a RunParallel worker.
					b.Error(err)
					return
				}
			}
		})
	})
}

// BenchmarkParallelACQ is the keywordless ACQ/Dec query (the UI default).
func BenchmarkParallelACQ(b *testing.B) {
	runParallelSearch(b, nil)
}

// BenchmarkParallelACQKeywords runs the peel-heavy variant: six query
// keywords, so every candidate set is verified by the allocation-free
// peeler.
func BenchmarkParallelACQKeywords(b *testing.B) {
	env := sharedEnv()
	q, _ := env.HubQuery()
	S := env.DBLP.Graph.Keywords(q)
	if len(S) > 6 {
		S = S[:6]
	}
	runParallelSearch(b, S)
}

// BenchmarkEngineCheckout isolates what the pool buys per request: acquiring
// a warm engine versus constructing one (O(n) scratch) per query, the way
// the API layer did before pooling.
func BenchmarkEngineCheckout(b *testing.B) {
	ds, q, k := parallelBenchDataset(b)
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng := ds.AcquireEngine()
			if _, err := eng.Search(q, k, nil, Dec); err != nil {
				b.Fatal(err)
			}
			ds.ReleaseEngine(eng)
		}
	})
	b.Run("fresh-per-query", func(b *testing.B) {
		tree := ds.Tree()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng := NewEngine(tree)
			if _, err := eng.Search(q, k, nil, Dec); err != nil {
				b.Fatal(err)
			}
		}
	})
}
