// Multiquery demonstrates the multi-query-vertex variant of ACQ (§3.2:
// clicking "+" in the Figure-1 UI adds more query authors): find the
// community containing several authors at once, with shared keywords.
package main

import (
	"fmt"
	"log"
	"strings"

	"cexplorer"
)

func main() {
	// On the Figure-5 graph: Q = {A, D}.
	g := cexplorer.Figure5()
	eng := cexplorer.NewEngine(cexplorer.BuildIndex(g))
	a, _ := g.VertexByName("A")
	d, _ := g.VertexByName("D")
	comms, err := eng.SearchMulti([]int32{a, d}, 2, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure-5 graph, Q={A,D}, k=2:")
	printComms(g, comms)

	// On the DBLP-like graph: two famous co-authors.
	fmt.Println("\ngenerating DBLP-like network...")
	dblp := cexplorer.GenerateDBLP(cexplorer.DefaultDBLPConfig())
	gg := dblp.Graph
	engine := cexplorer.NewEngine(cexplorer.BuildIndex(gg))

	jim, _ := gg.VertexByName("jim gray")
	// Pick a co-author of jim with core ≥ 4 that shares keywords with him,
	// so the joint query can be keyword-cohesive.
	cores := cexplorer.CoreNumbers(gg)
	var partner int32 = -1
	bestShared := 0
	for _, u := range gg.Neighbors(jim) {
		if cores[u] < 4 {
			continue
		}
		shared := 0
		for _, w := range gg.Keywords(jim) {
			if gg.HasKeyword(u, w) {
				shared++
			}
		}
		if shared > bestShared {
			bestShared, partner = shared, u
		}
	}
	if partner < 0 {
		log.Fatal("no suitable partner found")
	}
	fmt.Printf("Q = {%q, %q}, k=4\n", gg.Name(jim), gg.Name(partner))
	joint, err := engine.SearchMulti([]int32{jim, partner}, 4, nil)
	if err != nil {
		log.Fatal(err)
	}
	if len(joint) == 0 {
		fmt.Println("no joint community (different 4-core components)")
		return
	}
	for i, c := range joint {
		fmt.Printf("community %d: %d members", i+1, len(c.Vertices))
		if len(c.SharedKeywords) > 0 {
			fmt.Printf(", all sharing {%s}", strings.Join(gg.Vocab().Words(c.SharedKeywords), ", "))
		}
		fmt.Printf(", theme: %s\n", strings.Join(cexplorer.Theme(gg, c.Vertices, 5), ", "))
	}
}

func printComms(g *cexplorer.Graph, comms []cexplorer.Community) {
	for i, c := range comms {
		names := make([]string, 0, len(c.Vertices))
		for _, v := range c.Vertices {
			names = append(names, g.Name(v))
		}
		fmt.Printf("  community %d: {%s}", i+1, strings.Join(names, ","))
		if len(c.SharedKeywords) > 0 {
			fmt.Printf(" sharing {%s}", strings.Join(g.Vocab().Words(c.SharedKeywords), ","))
		}
		fmt.Println()
	}
}
