// Plugin demonstrates the §3.1 extension path: "to plug in their own CR
// methods, they just need to implement the functions in the interfaces".
// It registers a custom community-search algorithm (triangle-neighborhood
// expansion) and a custom detection algorithm (connected components), then
// compares them with the built-ins through the same Analyze facility.
package main

import (
	"context"
	"fmt"
	"log"

	"cexplorer"
)

// TriangleCS is a toy CS plugin: q's community is every vertex that shares
// a triangle with q, grown transitively.
type TriangleCS struct{}

// Name implements cexplorer.CSAlgorithm.
func (TriangleCS) Name() string { return "Triangle" }

// Search implements cexplorer.CSAlgorithm.
func (TriangleCS) Search(ctx context.Context, ds *cexplorer.Dataset, q cexplorer.Query) ([]cexplorer.APICommunity, error) {
	g := ds.Graph
	start := q.Vertices[0]
	in := map[int32]bool{start: true}
	// Seed with every neighbor that closes a triangle with start.
	for _, u := range g.Neighbors(start) {
		for _, w := range g.Neighbors(u) {
			if w != start && g.HasEdge(start, w) {
				in[u] = true
				break
			}
		}
	}
	frontier := make([]int32, 0, len(in))
	for v := range in {
		frontier = append(frontier, v)
	}
	for len(frontier) > 0 {
		v := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, u := range g.Neighbors(v) {
			if in[u] {
				continue
			}
			// u joins if it closes a triangle with two in-set vertices.
			common := 0
			for _, w := range g.Neighbors(u) {
				if in[w] {
					common++
				}
			}
			if common >= 2 {
				in[u] = true
				frontier = append(frontier, u)
			}
		}
	}
	vs := make([]int32, 0, len(in))
	for v := range in {
		vs = append(vs, v)
	}
	return []cexplorer.APICommunity{{Method: "Triangle", Vertices: vs}}, nil
}

// ComponentsCD is a toy CD plugin: communities = connected components.
type ComponentsCD struct{}

// Name implements cexplorer.CDAlgorithm.
func (ComponentsCD) Name() string { return "Components" }

// Detect implements cexplorer.CDAlgorithm.
func (ComponentsCD) Detect(ctx context.Context, ds *cexplorer.Dataset) ([]cexplorer.APICommunity, error) {
	labels, count := ds.Graph.ConnectedComponents()
	comms := make([][]int32, count)
	for v, l := range labels {
		comms[l] = append(comms[l], int32(v))
	}
	out := make([]cexplorer.APICommunity, 0, count)
	for _, vs := range comms {
		out = append(out, cexplorer.APICommunity{Method: "Components", Vertices: vs})
	}
	return out, nil
}

func main() {
	exp := cexplorer.NewExplorer()
	exp.RegisterCS(TriangleCS{})
	exp.RegisterCD(ComponentsCD{})

	g := cexplorer.Figure5()
	if _, err := exp.AddGraph("fig5", g); err != nil {
		log.Fatal(err)
	}

	fmt.Println("registered CS algorithms:", exp.CSAlgorithms())
	fmt.Println("registered CD algorithms:", exp.CDAlgorithms())

	q, _ := g.VertexByName("A")
	fmt.Printf("\nquery %q on the Figure-5 graph:\n", g.Name(q))
	for _, algo := range []string{"ACQ", "Global", "Triangle"} {
		comms, err := exp.Search(context.Background(), "fig5", algo, cexplorer.Query{Vertices: []int32{q}, K: 2})
		if err != nil {
			log.Fatalf("%s: %v", algo, err)
		}
		for _, c := range comms {
			a, err := exp.Analyze(context.Background(), "fig5", c, q)
			if err != nil {
				log.Fatal(err)
			}
			names := make([]string, 0, len(c.Vertices))
			for _, v := range c.Vertices {
				names = append(names, g.Name(v))
			}
			fmt.Printf("  %-8s -> %v  (CPJ %.3f, CMF %.3f)\n", algo, names, a.CPJ, a.CMF)
		}
	}

	comms, err := exp.Detect(context.Background(), "fig5", "Components")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nComponents CD found %d communities\n", len(comms))
}
