// Quickstart: the paper's Figure-5 worked example end to end — build the
// example attributed graph, index it with a CL-tree, and run the ACQ query
// (q=A, k=2, S={w,x,y}), which must return {A,C,D} sharing {x,y}.
package main

import (
	"fmt"
	"log"
	"strings"

	"cexplorer"
)

func main() {
	g := cexplorer.Figure5()
	fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.M())

	idx := cexplorer.BuildIndex(g)
	fmt.Printf("CL-tree: %d nodes, depth %d\n", idx.NumNodes(), idx.Depth())

	eng := cexplorer.NewEngine(idx)
	q, _ := g.VertexByName("A")

	// S = {w, x, y} (the keywords of A).
	var S []int32
	for _, w := range []string{"w", "x", "y"} {
		if id, ok := g.Vocab().ID(w); ok {
			S = append(S, id)
		}
	}

	comms, err := eng.Search(q, 2, S, cexplorer.Dec)
	if err != nil {
		log.Fatal(err)
	}
	for i, c := range comms {
		names := make([]string, 0, len(c.Vertices))
		for _, v := range c.Vertices {
			names = append(names, g.Name(v))
		}
		fmt.Printf("community %d: {%s} sharing keywords {%s}\n",
			i+1, strings.Join(names, ","),
			strings.Join(g.Vocab().Words(c.SharedKeywords), ","))
	}
	// Expected output:
	//   community 1: {A,C,D} sharing keywords {x,y}
}
