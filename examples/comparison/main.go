// Comparison reproduces the Figure-6 analysis scenario: run Global, Local,
// CODICIL, and ACQ for the same query, print the community statistics table
// and the CPJ/CMF quality bars, exactly as the Analysis panel shows them.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"cexplorer"
)

func main() {
	fmt.Println("generating DBLP-like network...")
	d := cexplorer.GenerateDBLP(cexplorer.DefaultDBLPConfig())
	g := d.Graph

	exp := cexplorer.NewExplorer()
	if _, err := exp.AddGraph("dblp", g); err != nil {
		log.Fatal(err)
	}
	q, ok := g.VertexByName("jim gray")
	if !ok {
		log.Fatal("jim gray not in graph")
	}
	k := 4

	type row struct {
		method               string
		comms                int
		nv, ne, nd, cpj, cmf float64
		elapsed              time.Duration
	}
	var rows []row

	for _, algo := range []string{"Global", "Local", "ACQ"} {
		start := time.Now()
		comms, err := exp.Search(context.Background(), "dblp", algo, cexplorer.Query{Vertices: []int32{q}, K: k})
		if err != nil {
			log.Fatalf("%s: %v", algo, err)
		}
		rows = append(rows, summarize(exp, algo, comms, q, time.Since(start)))
	}
	// CODICIL detects all communities; the query's community is looked up.
	start := time.Now()
	detected, err := exp.Detect(context.Background(), "dblp", "CODICIL")
	if err != nil {
		log.Fatal(err)
	}
	var mine []cexplorer.APICommunity
	for _, c := range detected {
		for _, v := range c.Vertices {
			if v == q {
				mine = append(mine, c)
				break
			}
		}
	}
	rows = append(rows, summarize(exp, "CODICIL", mine, q, time.Since(start)))

	fmt.Printf("\nCommunity Statistics (query %q, degree ≥ %d)\n", g.Name(q), k)
	fmt.Printf("%-8s %12s %9s %7s %7s %10s\n", "Method", "Communities", "Vertices", "Edges", "Degree", "Time")
	for _, r := range rows {
		fmt.Printf("%-8s %12d %9.1f %7.1f %7.1f %10s\n",
			r.method, r.comms, r.nv, r.ne, r.nd, r.elapsed.Round(time.Millisecond))
	}

	fmt.Printf("\nSimilarity Analysis (higher = better cohesiveness)\n")
	for _, r := range rows {
		fmt.Printf("%-8s CPJ %.3f |%s\n", r.method, r.cpj, strings.Repeat("#", int(r.cpj*60)))
	}
	for _, r := range rows {
		fmt.Printf("%-8s CMF %.3f |%s\n", r.method, r.cmf, strings.Repeat("#", int(r.cmf*60)))
	}
}

func summarize(exp *cexplorer.Explorer, method string, comms []cexplorer.APICommunity, q int32, elapsed time.Duration) (r struct {
	method               string
	comms                int
	nv, ne, nd, cpj, cmf float64
	elapsed              time.Duration
}) {
	r.method = method
	r.comms = len(comms)
	r.elapsed = elapsed
	for _, c := range comms {
		a, err := exp.Analyze(context.Background(), "dblp", c, q)
		if err != nil {
			continue
		}
		r.nv += float64(a.Stats.Vertices)
		r.ne += float64(a.Stats.Edges)
		r.nd += a.Stats.AvgDegree
		r.cpj += a.CPJ
		r.cmf += a.CMF
	}
	if r.comms > 0 {
		n := float64(r.comms)
		r.nv /= n
		r.ne /= n
		r.nd /= n
		r.cpj /= n
		r.cmf /= n
	}
	return r
}
