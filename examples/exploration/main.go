// Exploration walks the demonstration scenario of Figures 1 and 2: search
// for "jim gray" on the DBLP-like graph with degree ≥ 4, display the
// community and its theme, open a member's profile, and continue exploring
// from that member — the paper's §4 "Community exploration".
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"cexplorer"
)

func main() {
	fmt.Println("generating DBLP-like network...")
	d := cexplorer.GenerateDBLP(cexplorer.DefaultDBLPConfig())
	g := d.Graph

	idx := cexplorer.BuildIndex(g)
	eng := cexplorer.NewEngine(idx)

	// Figure 1: the user types "jim gray" and degree ≥ 4.
	q, ok := g.VertexByName("jim gray")
	if !ok {
		log.Fatal("jim gray not in graph")
	}
	k := int32(4)
	fmt.Printf("\nName: %q   Structure: degree ≥ %d\n", g.Name(q), k)
	fmt.Printf("Keywords of %s: %s\n", g.Name(q),
		strings.Join(g.KeywordStrings(q), "  "))

	comms, err := eng.Search(q, k, nil, cexplorer.Dec)
	if err != nil {
		log.Fatal(err)
	}
	if len(comms) == 0 {
		log.Fatalf("no community at k=%d", k)
	}
	fmt.Printf("\nCommunities: %d\n", len(comms))
	c := comms[0]
	fmt.Printf("Community 1: %d members, theme: %s\n",
		len(c.Vertices), strings.Join(cexplorer.Theme(g, c.Vertices, 5), ", "))
	if len(c.SharedKeywords) > 0 {
		fmt.Printf("All members share: %s\n",
			strings.Join(g.Vocab().Words(c.SharedKeywords), ", "))
	}
	show := c.Vertices
	if len(show) > 8 {
		show = show[:8]
	}
	for _, v := range show {
		fmt.Printf("  - %s\n", g.Name(v))
	}

	// Figure 2: click a member to see the profile.
	var member int32 = -1
	for _, v := range c.Vertices {
		if v != q {
			if _, ok := d.Profiles[v]; ok {
				member = v
				break
			}
		}
	}
	if member < 0 {
		member = q // no other member has a profile record; show the query's
	}
	if member >= 0 {
		p := d.Profiles[member]
		fmt.Printf("\n--- Author Profile ---\n")
		fmt.Printf("Name: %s\n", p.Name)
		fmt.Printf("Areas: %s\n", strings.Join(p.Areas, "; "))
		fmt.Printf("Institutes: %s\n", strings.Join(p.Institutes, "; "))
		fmt.Printf("Research interests: %s\n", strings.Join(p.Interests, "; "))

		// "The user can continue to examine Michael's community."
		follow, err := eng.Search(member, k, nil, cexplorer.Dec)
		if err != nil {
			log.Fatal(err)
		}
		if len(follow) > 0 {
			fmt.Printf("\nExplore %s's community: %d members, theme: %s\n",
				p.Name, len(follow[0].Vertices),
				strings.Join(cexplorer.Theme(g, follow[0].Vertices, 5), ", "))
		}
	}

	// The display step: compute the layout the browser would draw.
	exp := cexplorer.NewExplorer()
	if _, err := exp.AddGraph("dblp", g); err != nil {
		log.Fatal(err)
	}
	pl, err := exp.Display(context.Background(), "dblp", cexplorer.APICommunity{Vertices: c.Vertices},
		cexplorer.LayoutOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlayout: %d positioned vertices, %d edges (ready for the canvas)\n",
		len(pl.Points), len(pl.Edges))

	// The Figure-6(b) browse loop as an API: open an exploration session at
	// the query vertex and walk the community-ring hierarchy — contract to a
	// denser core, expand back out. The session pins a warm engine and its
	// CL-tree position, so each step is incremental.
	ctx := context.Background()
	st, err := exp.Explore(ctx, "dblp", cexplorer.Query{Vertices: []int32{q}, K: int(k)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n--- Exploration session %s ---\n", st.ID[:8])
	fmt.Printf("k=%d: ring of %d vertices (max k=%d)\n", st.K, st.RingSize, st.MaxK)
	for st.K < st.MaxK {
		if st, err = exp.ExploreStep(ctx, "dblp", st.ID, "contract", 0); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("contract → k=%d: ring of %d vertices\n", st.K, st.RingSize)
	}
	if st, err = exp.ExploreStep(ctx, "dblp", st.ID, "set", int(k)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expand back → k=%d: ring of %d vertices after %d steps\n",
		st.K, st.RingSize, st.Steps)
	if err := exp.ExploreClose("dblp", st.ID); err != nil {
		log.Fatal(err)
	}
}
