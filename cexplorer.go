package cexplorer

import (
	"cexplorer/internal/api"
	"cexplorer/internal/cltree"
	"cexplorer/internal/codicil"
	"cexplorer/internal/core"
	"cexplorer/internal/csearch"
	"cexplorer/internal/gen"
	"cexplorer/internal/graph"
	"cexplorer/internal/kcore"
	"cexplorer/internal/ktruss"
	"cexplorer/internal/layout"
	"cexplorer/internal/metrics"
	"cexplorer/internal/par"
	"cexplorer/internal/server"
)

// Core graph types.
type (
	// Graph is an immutable attributed graph (CSR adjacency + interned
	// keyword sets). Build one with NewBuilder or the Load* functions.
	Graph = graph.Graph
	// Builder accumulates vertices/edges/attributes and freezes them into a
	// Graph.
	Builder = graph.Builder
	// Subgraph is a materialized induced subgraph with local IDs.
	Subgraph = graph.Subgraph
	// JSONGraph is the JSON wire format for upload/download.
	JSONGraph = graph.JSONGraph
)

// NewBuilder returns a graph builder with capacity hints.
func NewBuilder(n, m int) *Builder { return graph.NewBuilder(n, m) }

// Loaders (the upload formats).
var (
	// LoadEdgeList parses "u v" lines into an unattributed Graph.
	LoadEdgeList = graph.LoadEdgeList
	// LoadAttributed parses an edge list plus "id<TAB>name<TAB>keywords"
	// attribute lines.
	LoadAttributed = graph.LoadAttributed
	// LoadJSON parses the JSON wire format.
	LoadJSON = graph.LoadJSON
)

// The ACQ engine (the paper's primary contribution).
type (
	// Index is the CL-tree: the k-core hierarchy of an attributed graph
	// with per-node inverted keyword lists (paper §3.2).
	Index = cltree.Tree
	// Engine executes ACQ queries against one Index.
	Engine = core.Engine
	// Community is one attributed community: vertices + shared keywords.
	Community = core.Community
	// Algorithm selects the ACQ query algorithm (Dec, IncS, IncT, Basic).
	Algorithm = core.Algorithm
)

// ACQ query algorithms (§3.2). Dec is the system default.
const (
	Dec   = core.Dec
	IncS  = core.IncS
	IncT  = core.IncT
	Basic = core.Basic
)

// BuildIndex constructs the CL-tree for g.
func BuildIndex(g *Graph) *Index { return cltree.Build(g) }

// ReadIndex deserializes an index previously written with Index.WriteTo.
var ReadIndex = cltree.Read

// NewEngine returns an ACQ engine over the given index. Engines are cheap;
// create one per goroutine.
func NewEngine(idx *Index) *Engine { return core.NewEngine(idx) }

// CoreNumbers computes the k-core decomposition of g (Batagelj–Zaveršnik).
func CoreNumbers(g *Graph) []int32 { return kcore.Decompose(g) }

// Baseline community search.
type (
	// GlobalResult is a Global (Sozio–Gionis) search outcome.
	GlobalResult = csearch.GlobalResult
	// LocalResult is a Local (Cui et al.) search outcome.
	LocalResult = csearch.LocalResult
	// LocalOptions tunes Local's expansion budget.
	LocalOptions = csearch.LocalOptions
	// TrussDecomposition holds per-edge trussness (Huang et al.).
	TrussDecomposition = ktruss.Decomposition
)

// Global returns the connected k-core containing q (the Global baseline).
var Global = csearch.Global

// GlobalContext is Global with cooperative cancellation.
var GlobalContext = csearch.GlobalContext

// GlobalMax maximizes the minimum degree of q's community.
var GlobalMax = csearch.GlobalMax

// Local runs local-expansion community search from q.
var Local = csearch.Local

// LocalContext is Local with cooperative cancellation.
var LocalContext = csearch.LocalContext

// TrussDecompose computes the k-truss decomposition of g.
var TrussDecompose = ktruss.Decompose

// TrussDecomposeContext is TrussDecompose with cooperative cancellation.
var TrussDecomposeContext = ktruss.DecomposeContext

// TrussDecomposeParallel is TrussDecomposeContext with an explicit worker
// count for the support-counting phase (≤ 0 = the process default).
var TrussDecomposeParallel = ktruss.DecomposeParallel

// SetIndexWorkers sets the process-wide worker count used by parallel index
// construction and the snapshot codec (0 restores the GOMAXPROCS default) —
// the library-level rendering of the server's -index.workers flag.
var SetIndexWorkers = par.SetWorkers

// CODICIL community detection.
type (
	// CodicilOptions configures the CODICIL pipeline.
	CodicilOptions = codicil.Options
	// CodicilResult is a finished CODICIL run.
	CodicilResult = codicil.Result
)

// Codicil runs the CODICIL content+link detection pipeline.
var Codicil = codicil.Detect

// Analysis metrics (§4 Comparison analysis).
var (
	// CPJ is the community pairwise Jaccard keyword similarity.
	CPJ = metrics.CPJ
	// CMF is the community member frequency w.r.t. the query's keywords.
	CMF = metrics.CMF
	// CommunityStatistics computes the Figure-6(a) statistics row.
	CommunityStatistics = metrics.Stats
	// Theme returns a community's most frequent keywords.
	Theme = metrics.Theme
	// NMI compares two partitions (normalized mutual information).
	NMI = metrics.NMI
)

// Layout (the display API function).
type (
	// Point is a 2-D position.
	Point = layout.Point
	// LayoutOptions configures force-directed layout.
	LayoutOptions = layout.Options
	// LayoutGraph is the minimal view the layouter needs.
	LayoutGraph = layout.Graph
	// EdgeList adapts (n, pairs) to LayoutGraph.
	EdgeList = layout.EdgeList
)

// FruchtermanReingold computes a force-directed layout.
var FruchtermanReingold = layout.FruchtermanReingold

// CircularLayout places n vertices on a circle.
var CircularLayout = layout.Circular

// The Figure-4 developer API and the web platform. Every Explorer query
// method takes a context.Context first: cancellation and deadlines
// propagate into the algorithm kernels, and the typed errors below report
// how a request ended.
type (
	// Explorer is the five-function CExplorer interface (upload / search /
	// detect / analyze / display) with pluggable algorithm registries and
	// exploration sessions.
	Explorer = api.Explorer
	// Query is a community-search request.
	Query = api.Query
	// APICommunity is the algorithm-independent community record.
	APICommunity = api.Community
	// CSAlgorithm is the plugin interface for community search.
	CSAlgorithm = api.CSAlgorithm
	// CDAlgorithm is the plugin interface for community detection.
	CDAlgorithm = api.CDAlgorithm
	// Dataset bundles a graph with its lazily built indexes.
	Dataset = api.Dataset
	// Server is the browser/server front end.
	Server = server.Server
	// ExploreState is the client-visible snapshot of an exploration
	// session (the paper's expand/contract browse loop as an API).
	ExploreState = api.ExploreState
	// ExploreStats reports the exploration-session counters.
	ExploreStats = api.ExploreStats
)

// Typed API errors: branch with errors.Is. The HTTP layer maps these onto
// 404 (dataset/vertex/session not found), 400 (unknown algorithm, invalid
// query), 499 (canceled), and 504 (timed out).
var (
	ErrDatasetNotFound  = api.ErrDatasetNotFound
	ErrVertexNotFound   = api.ErrVertexNotFound
	ErrSessionNotFound  = api.ErrSessionNotFound
	ErrUnknownAlgorithm = api.ErrUnknownAlgorithm
	ErrInvalidQuery     = api.ErrInvalidQuery
	ErrCanceled         = api.ErrCanceled
	ErrTimeout          = api.ErrTimeout
)

// NewExplorer returns an Explorer with the built-in algorithms (ACQ,
// Global, Local, KTruss; CODICIL) registered.
func NewExplorer() *Explorer { return api.NewExplorer() }

// Persistence (the snapshot subsystem).
type (
	// DatasetInfo records a dataset's provenance (built vs snapshot).
	DatasetInfo = api.DatasetInfo
	// IndexStatus reports which indexes a dataset holds in memory.
	IndexStatus = api.IndexStatus
)

// OpenSnapshot materializes a dataset (graph + pre-seeded indexes) from a
// snapshot stream; name overrides the embedded name when non-empty.
var OpenSnapshot = api.OpenSnapshot

// OpenSnapshotFile materializes a dataset from a snapshot file.
var OpenSnapshotFile = api.OpenSnapshotFile

// NewServer wraps an Explorer with the HTTP front end of Figure 3.
var NewServer = server.New

// Data substrate.
type (
	// DBLPConfig parameterizes the synthetic DBLP-like network.
	DBLPConfig = gen.DBLPConfig
	// DBLP bundles the generated graph with ground truth and profiles.
	DBLP = gen.DBLP
	// Profile is the per-author record of Figure 2.
	Profile = gen.Profile
)

// Figure5 returns the paper's worked-example graph (10 vertices, 11 edges).
var Figure5 = gen.Figure5

// GenerateDBLP builds the synthetic DBLP-like co-authorship network.
var GenerateDBLP = gen.GenerateDBLP

// DefaultDBLPConfig is the benchmark-scale configuration (20k authors).
var DefaultDBLPConfig = gen.DefaultDBLPConfig

// PaperScaleConfig matches the paper's 977,288-vertex graph.
var PaperScaleConfig = gen.PaperScaleConfig
