// Package servecache is the serve-time speed layer: a version-keyed LRU
// result cache with singleflight coalescing and per-dataset admission
// control.
//
// Searches are pure functions of (dataset version, query): the same query
// against the same immutable dataset version always yields the same
// communities. That purity is what makes result caching sound without any
// invalidation protocol — the cache key embeds the dataset's Version
// counter, so a mutation (which publishes a successor version) makes every
// cached entry for the old version unreachable *by construction*. Stale
// entries are never served; they simply age out of the LRU.
//
// Three mechanisms share one lookup path (Do):
//
//   - LRU cache: bounded by entry count and by approximate byte footprint,
//     whichever cap is hit first. Hits (positive and negative) return the
//     shared cached value without touching the graph.
//   - Singleflight: concurrent requests for one missing key coalesce onto a
//     single computation — a thundering herd on a hot query costs one
//     search, and every follower gets the leader's result. A leader that
//     fails with a transient error (its own cancellation or deadline) does
//     not poison its followers: they retry, and the first live one becomes
//     the new leader.
//   - Admission control: the number of concurrently *computing* leaders per
//     dataset is bounded. Past the bound, new leaders are shed immediately
//     with ErrOverloaded (the HTTP layer's 429) instead of queueing — the
//     load-shedding alternative to queue collapse. Cache hits and
//     singleflight followers are never shed; they add no work.
//
// Negative caching: deterministic failures (vertex not found, invalid
// query) are results too — they are cached like values so a storm of bad
// requests is absorbed by the cache instead of recomputed. Which errors
// qualify is the caller's policy (Config.Cacheable); transient errors
// (cancellation, timeout) are never cached.
package servecache

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrOverloaded is the typed load-shedding error: the dataset already has
// the configured maximum number of computations in flight, and this request
// was rejected rather than queued. The HTTP layer maps it to 429.
var ErrOverloaded = errors.New("overloaded")

// Defaults for Config zero values.
const (
	DefaultMaxEntries = 4096
	DefaultMaxBytes   = 64 << 20 // 64 MiB

	// entryOverhead is the fixed per-entry byte charge added on top of the
	// caller-reported value size (key strings, list/map bookkeeping).
	entryOverhead = 160
)

// Config tunes a Cache. Zero values take the defaults above; MaxInflight 0
// disables admission control (never shed).
type Config struct {
	// MaxEntries bounds the number of cached results.
	MaxEntries int
	// MaxBytes bounds the approximate cached byte footprint (values plus
	// per-entry overhead).
	MaxBytes int64
	// MaxInflight bounds concurrent computations per dataset; excess
	// leaders fail fast with ErrOverloaded.
	MaxInflight int
	// Transient reports errors that must be neither cached nor handed to
	// singleflight followers (the leader's own cancellation or deadline):
	// followers retry instead. Nil means no error is transient.
	Transient func(error) bool
	// Cacheable reports errors worth negative-caching (deterministic
	// request failures: unknown vertex, invalid query). Nil means no error
	// is cached; values (nil-error results) always are.
	Cacheable func(error) bool
}

// Stats is the counter snapshot surfaced at /api/stats. All counters are
// cumulative since construction.
type Stats struct {
	// Hits counts lookups served from a cached value; NegativeHits the
	// subset served from a cached error.
	Hits         int64 `json:"hits"`
	NegativeHits int64 `json:"negativeHits"`
	// Misses counts lookups that found neither an entry nor an in-flight
	// computation and so had to compute (or were shed trying).
	Misses int64 `json:"misses"`
	// Coalesced counts lookups that joined another caller's in-flight
	// computation instead of starting their own.
	Coalesced int64 `json:"coalesced"`
	// Computations counts computations actually started; with singleflight
	// working, this tracks distinct (version, query) pairs, not requests.
	Computations int64 `json:"computations"`
	// Shedded counts lookups rejected by admission control.
	Shedded int64 `json:"shedded"`
	// Evictions counts entries dropped by the LRU caps; purges (explicit
	// dataset invalidation) are counted separately.
	Evictions int64 `json:"evictions"`
	Purged    int64 `json:"purged"`
	// Entries/Bytes are the current cache occupancy.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// DatasetStats is the per-dataset occupancy slice of Stats.
type DatasetStats struct {
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

type key struct {
	dataset string
	// epoch is the dataset's purge generation (bumped by Purge). Embedding
	// it in the key means a computation started before a purge can neither
	// be joined by post-purge callers nor fill an entry they can reach: a
	// re-registered dataset restarts its Version counter, so without the
	// epoch a late fill from the old lineage could shadow the new graph's
	// results under a colliding (name, 0, query) key.
	epoch   uint64
	version uint64
	query   string
}

// entry is one cached result: a value or a negative-cached error.
type entry struct {
	k     key
	val   any
	err   error
	bytes int64
}

// call is one in-flight computation; followers block on done.
type call struct {
	done chan struct{}
	val  any
	err  error
	// transient marks a leader failure followers must not adopt.
	transient bool
}

// Cache is the serve-time result cache. All methods are safe for concurrent
// use. The zero value is not usable; call New.
type Cache struct {
	cfg Config

	mu       sync.Mutex
	lru      *list.List // of *entry; front = most recently used
	entries  map[key]*list.Element
	bytes    int64
	perDS    map[string]DatasetStats
	inflight map[key]*call
	// computing counts in-flight leaders per dataset (admission control).
	computing map[string]int
	// epochs is each dataset's purge generation; lookups key on it so
	// purged lineages can never serve or fill reachable entries.
	epochs map[string]uint64

	hits, negHits, misses, coalesced atomic.Int64
	computations, shedded, evictions atomic.Int64
	purged                           atomic.Int64
}

// New returns a Cache with the given config (zero fields defaulted).
func New(cfg Config) *Cache {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	return &Cache{
		cfg:       cfg,
		lru:       list.New(),
		entries:   make(map[key]*list.Element),
		perDS:     make(map[string]DatasetStats),
		inflight:  make(map[key]*call),
		computing: make(map[string]int),
		epochs:    make(map[string]uint64),
	}
}

// Do returns the cached result for (dataset, version, query), or computes
// it. Exactly one computation runs per missing key at a time: concurrent
// callers coalesce onto the leader and share its result. compute reports
// the value, its approximate byte size, and an error; a nil error always
// caches, an error caches only if cfg.Cacheable says so, and a transient
// error (cfg.Transient) is returned to the leader alone while followers
// retry. When the dataset already has cfg.MaxInflight computations running,
// Do fails fast with ErrOverloaded instead of queueing.
//
// The returned value is shared across callers and with the cache itself:
// treat it as immutable.
func (c *Cache) Do(ctx context.Context, dataset string, version uint64, query string, compute func(context.Context) (any, int64, error)) (any, error) {
	for {
		c.mu.Lock()
		k := key{dataset, c.epochs[dataset], version, query}
		if el, ok := c.entries[k]; ok {
			c.lru.MoveToFront(el)
			e := el.Value.(*entry)
			c.mu.Unlock()
			if e.err != nil {
				c.negHits.Add(1)
				return nil, e.err
			}
			c.hits.Add(1)
			return e.val, nil
		}
		if cl, ok := c.inflight[k]; ok {
			c.mu.Unlock()
			c.coalesced.Add(1)
			select {
			case <-cl.done:
				if cl.transient {
					// The leader died of its own cancellation; this caller
					// is still live, so take over as the new leader.
					if ctx.Err() != nil {
						return nil, ctx.Err()
					}
					continue
				}
				return cl.val, cl.err
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		// Leader path: admission control, then compute without the lock.
		c.misses.Add(1)
		if c.cfg.MaxInflight > 0 && c.computing[dataset] >= c.cfg.MaxInflight {
			c.mu.Unlock()
			c.shedded.Add(1)
			return nil, fmt.Errorf("%w: dataset %q at its in-flight computation limit (%d)",
				ErrOverloaded, dataset, c.cfg.MaxInflight)
		}
		cl := &call{done: make(chan struct{})}
		c.inflight[k] = cl
		c.computing[dataset]++
		c.mu.Unlock()

		return c.lead(ctx, k, cl, compute)
	}
}

// lead runs one computation as key k's leader and publishes the outcome to
// followers. All bookkeeping runs in a defer: compute may panic (net/http
// recovers per request, so the process survives), and without deferred
// cleanup every future request for the key would coalesce onto the dead
// call forever while the dataset permanently lost an admission slot. A
// panicked call is marked transient so followers retry as new leaders, then
// the panic is re-raised for the leader's own handler.
func (c *Cache) lead(ctx context.Context, k key, cl *call, compute func(context.Context) (any, int64, error)) (any, error) {
	completed := false
	var bytes int64
	defer func() {
		if !completed {
			cl.val, cl.err = nil, fmt.Errorf("servecache: computation for dataset %q panicked", k.dataset)
			cl.transient = true
		}
		cacheable := completed && (cl.err == nil ||
			(!cl.transient && c.cfg.Cacheable != nil && c.cfg.Cacheable(cl.err)))
		c.mu.Lock()
		delete(c.inflight, k)
		if c.computing[k.dataset]--; c.computing[k.dataset] <= 0 {
			delete(c.computing, k.dataset)
		}
		// A purge while we computed bumped the epoch: the result belongs to
		// the dead lineage and must not be stored.
		if cacheable && k.epoch == c.epochs[k.dataset] {
			c.addLocked(k, cl.val, cl.err, bytes)
		}
		c.mu.Unlock()
		close(cl.done)
	}()

	c.computations.Add(1)
	val, n, err := compute(ctx)
	cl.val, cl.err, bytes = val, err, n
	cl.transient = err != nil && c.cfg.Transient != nil && c.cfg.Transient(err)
	completed = true
	return val, err
}

// Get reports a cached value without computing (test and introspection
// hook). It counts as a hit/negative hit when present.
func (c *Cache) Get(dataset string, version uint64, query string) (any, error, bool) {
	c.mu.Lock()
	k := key{dataset, c.epochs[dataset], version, query}
	el, ok := c.entries[k]
	if !ok {
		c.mu.Unlock()
		return nil, nil, false
	}
	c.lru.MoveToFront(el)
	e := el.Value.(*entry)
	c.mu.Unlock()
	if e.err != nil {
		c.negHits.Add(1)
	} else {
		c.hits.Add(1)
	}
	return e.val, e.err, true
}

// addLocked inserts an entry and evicts from the LRU tail until both caps
// hold. Caller holds c.mu.
func (c *Cache) addLocked(k key, val any, err error, bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	bytes += entryOverhead + int64(len(k.query)) + int64(len(k.dataset))
	if bytes > c.cfg.MaxBytes {
		return // larger than the whole cache; not worth evicting everything
	}
	if el, ok := c.entries[k]; ok {
		// Lost a race with another leader for the same key (possible when a
		// transient retry overlaps a fresh fill); keep the existing entry.
		c.lru.MoveToFront(el)
		return
	}
	e := &entry{k: k, val: val, err: err, bytes: bytes}
	c.entries[k] = c.lru.PushFront(e)
	c.bytes += bytes
	ds := c.perDS[k.dataset]
	ds.Entries++
	ds.Bytes += bytes
	c.perDS[k.dataset] = ds
	for c.lru.Len() > c.cfg.MaxEntries || c.bytes > c.cfg.MaxBytes {
		c.removeLocked(c.lru.Back())
		c.evictions.Add(1)
	}
}

// removeLocked unlinks one element and updates occupancy. Caller holds c.mu.
func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.lru.Remove(el)
	delete(c.entries, e.k)
	c.bytes -= e.bytes
	ds := c.perDS[e.k.dataset]
	ds.Entries--
	ds.Bytes -= e.bytes
	if ds.Entries <= 0 {
		delete(c.perDS, e.k.dataset)
	} else {
		c.perDS[e.k.dataset] = ds
	}
}

// Purge drops every cached entry for a dataset, all versions, and bumps the
// dataset's epoch. Required when a dataset name is re-registered from
// scratch (re-upload): the new lineage restarts its Version counter at
// zero, so without a purge an old entry keyed (name, 0, q) could shadow
// results from the new graph. The epoch bump extends the guarantee to
// computations still in flight at purge time — their late fills land under
// the old epoch's keys (never stored, see lead) and post-purge callers
// cannot coalesce onto them.
func (c *Cache) Purge(dataset string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epochs[dataset]++
	var next *list.Element
	n := 0
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		if el.Value.(*entry).k.dataset == dataset {
			c.removeLocked(el)
			n++
		}
	}
	c.purged.Add(int64(n))
	return n
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	entries := c.lru.Len()
	bytes := c.bytes
	c.mu.Unlock()
	return Stats{
		Hits:         c.hits.Load(),
		NegativeHits: c.negHits.Load(),
		Misses:       c.misses.Load(),
		Coalesced:    c.coalesced.Load(),
		Computations: c.computations.Load(),
		Shedded:      c.shedded.Load(),
		Evictions:    c.evictions.Load(),
		Purged:       c.purged.Load(),
		Entries:      entries,
		Bytes:        bytes,
	}
}

// DatasetStats reports one dataset's cache occupancy (all versions).
func (c *Cache) DatasetStats(dataset string) DatasetStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.perDS[dataset]
}
