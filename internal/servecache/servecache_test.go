package servecache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var errNotFound = errors.New("not found")
var errFlaky = errors.New("flaky")

func newTest(cfg Config) *Cache {
	if cfg.Cacheable == nil {
		cfg.Cacheable = func(err error) bool { return errors.Is(err, errNotFound) }
	}
	if cfg.Transient == nil {
		cfg.Transient = func(err error) bool { return errors.Is(err, context.Canceled) }
	}
	return New(cfg)
}

func TestHitMissAndVersionKeying(t *testing.T) {
	c := newTest(Config{})
	ctx := context.Background()
	calls := 0
	compute := func(context.Context) (any, int64, error) {
		calls++
		return fmt.Sprintf("result-%d", calls), 8, nil
	}
	v1, err := c.Do(ctx, "ds", 0, "q", compute)
	if err != nil || v1 != "result-1" {
		t.Fatalf("first Do = %v, %v", v1, err)
	}
	v2, err := c.Do(ctx, "ds", 0, "q", compute)
	if err != nil || v2 != "result-1" {
		t.Fatalf("second Do = %v, %v (want cached result-1)", v2, err)
	}
	// A version bump makes the old entry unreachable: fresh computation.
	v3, err := c.Do(ctx, "ds", 1, "q", compute)
	if err != nil || v3 != "result-2" {
		t.Fatalf("post-mutation Do = %v, %v (want result-2)", v3, err)
	}
	// ...and the old version's entry still answers if asked for explicitly.
	if v, _, ok := c.Get("ds", 0, "q"); !ok || v != "result-1" {
		t.Fatalf("Get(v0) = %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Computations != 2 {
		t.Fatalf("stats = %+v (want 2 hits, 2 misses, 2 computations)", st)
	}
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
}

func TestNegativeCaching(t *testing.T) {
	c := newTest(Config{})
	ctx := context.Background()
	calls := 0
	compute := func(context.Context) (any, int64, error) {
		calls++
		return nil, 0, fmt.Errorf("%w: vertex 99", errNotFound)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Do(ctx, "ds", 0, "bad", compute); !errors.Is(err, errNotFound) {
			t.Fatalf("Do #%d: err = %v", i, err)
		}
	}
	if calls != 1 {
		t.Fatalf("computed %d times, want 1 (negative cache)", calls)
	}
	if st := c.Stats(); st.NegativeHits != 2 {
		t.Fatalf("negativeHits = %d, want 2", st.NegativeHits)
	}
}

func TestUncacheableErrorNotCached(t *testing.T) {
	c := newTest(Config{})
	ctx := context.Background()
	calls := 0
	compute := func(context.Context) (any, int64, error) {
		calls++
		return nil, 0, errFlaky // neither cacheable nor transient
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Do(ctx, "ds", 0, "q", compute); !errors.Is(err, errFlaky) {
			t.Fatalf("err = %v", err)
		}
	}
	if calls != 3 {
		t.Fatalf("computed %d times, want 3 (error must not cache)", calls)
	}
}

func TestSingleflightCoalescing(t *testing.T) {
	c := newTest(Config{})
	ctx := context.Background()
	var computations atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	compute := func(context.Context) (any, int64, error) {
		computations.Add(1)
		close(started)
		<-release
		return "shared", 8, nil
	}
	const herd = 16
	var wg sync.WaitGroup
	results := make([]any, herd)
	errs := make([]error, herd)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], errs[0] = c.Do(ctx, "ds", 3, "hot", compute)
	}()
	<-started // leader is computing; everyone else must coalesce
	for i := 1; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Do(ctx, "ds", 3, "hot", func(context.Context) (any, int64, error) {
				computations.Add(1)
				return "should-not-run", 8, nil
			})
		}(i)
	}
	// Give followers time to join the in-flight call before releasing.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := computations.Load(); n != 1 {
		t.Fatalf("computations = %d, want 1", n)
	}
	for i := range results {
		if errs[i] != nil || results[i] != "shared" {
			t.Fatalf("caller %d: %v, %v", i, results[i], errs[i])
		}
	}
	if st := c.Stats(); st.Coalesced != herd-1 {
		t.Fatalf("coalesced = %d, want %d", st.Coalesced, herd-1)
	}
}

func TestTransientLeaderDoesNotPoisonFollowers(t *testing.T) {
	c := newTest(Config{})
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	started := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, err := c.Do(leaderCtx, "ds", 0, "q", func(ctx context.Context) (any, int64, error) {
			close(started)
			<-ctx.Done()
			return nil, 0, ctx.Err()
		})
		leaderDone <- err
	}()
	<-started
	followerDone := make(chan struct{})
	var followerVal any
	var followerErr error
	go func() {
		defer close(followerDone)
		followerVal, followerErr = c.Do(context.Background(), "ds", 0, "q",
			func(context.Context) (any, int64, error) { return "recomputed", 8, nil })
	}()
	time.Sleep(10 * time.Millisecond) // let the follower join the in-flight call
	cancelLeader()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v", err)
	}
	<-followerDone
	if followerErr != nil || followerVal != "recomputed" {
		t.Fatalf("follower = %v, %v (want retry success)", followerVal, followerErr)
	}
	// The canceled result must not have been cached.
	if _, _, ok := c.Get("ds", 0, "never"); ok {
		t.Fatal("unexpected entry")
	}
	if v, err, ok := c.Get("ds", 0, "q"); !ok || err != nil || v != "recomputed" {
		t.Fatalf("cached = %v, %v, %v (want follower's recomputed value)", v, err, ok)
	}
}

func TestCanceledFollowerReturnsPromptly(t *testing.T) {
	c := newTest(Config{})
	started := make(chan struct{})
	release := make(chan struct{})
	go c.Do(context.Background(), "ds", 0, "slow", func(context.Context) (any, int64, error) {
		close(started)
		<-release
		return "late", 8, nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Do(ctx, "ds", 0, "slow", nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(release)
}

func TestAdmissionControlSheds(t *testing.T) {
	c := newTest(Config{MaxInflight: 2})
	ctx := context.Background()
	release := make(chan struct{})
	var started sync.WaitGroup
	started.Add(2)
	for i := 0; i < 2; i++ {
		q := fmt.Sprintf("q%d", i)
		go c.Do(ctx, "ds", 0, q, func(context.Context) (any, int64, error) {
			started.Done()
			<-release
			return "v", 8, nil
		})
	}
	started.Wait()
	// Third distinct query on the same dataset: over the bound, shed.
	_, err := c.Do(ctx, "ds", 0, "q2", func(context.Context) (any, int64, error) {
		return "v", 8, nil
	})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	// A different dataset is not affected: the bound is per dataset.
	if _, err := c.Do(ctx, "other", 0, "q", func(context.Context) (any, int64, error) {
		return "v", 8, nil
	}); err != nil {
		t.Fatalf("other dataset shed: %v", err)
	}
	// Joining an in-flight computation is never shed.
	joined := make(chan struct{})
	go func() {
		defer close(joined)
		if v, err := c.Do(ctx, "ds", 0, "q0", nil); err != nil || v != "v" {
			t.Errorf("follower = %v, %v", v, err)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)
	<-joined
	if st := c.Stats(); st.Shedded != 1 {
		t.Fatalf("shedded = %d, want 1", st.Shedded)
	}
	// With the computations drained, the dataset admits work again.
	if _, err := c.Do(ctx, "ds", 0, "q3", func(context.Context) (any, int64, error) {
		return "v", 8, nil
	}); err != nil {
		t.Fatalf("post-drain Do: %v", err)
	}
}

func TestLRUEvictionByEntries(t *testing.T) {
	c := newTest(Config{MaxEntries: 3})
	ctx := context.Background()
	mk := func(q string) { c.Do(ctx, "ds", 0, q, func(context.Context) (any, int64, error) { return q, 8, nil }) }
	mk("a")
	mk("b")
	mk("c")
	c.Get("ds", 0, "a") // refresh a; b is now LRU
	mk("d")             // evicts b
	if _, _, ok := c.Get("ds", 0, "b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, q := range []string{"a", "c", "d"} {
		if _, _, ok := c.Get("ds", 0, q); !ok {
			t.Fatalf("%s missing", q)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEvictionByBytes(t *testing.T) {
	c := newTest(Config{MaxEntries: 1000, MaxBytes: 3 * 1024})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		q := fmt.Sprintf("q%d", i)
		c.Do(ctx, "ds", 0, q, func(context.Context) (any, int64, error) { return q, 700, nil })
	}
	st := c.Stats()
	if st.Bytes > 3*1024 {
		t.Fatalf("bytes = %d, over the cap", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Fatal("expected byte-cap evictions")
	}
	// An entry bigger than the whole cache is refused, not force-fitted.
	c.Do(ctx, "ds", 0, "huge", func(context.Context) (any, int64, error) { return "big", 1 << 20, nil })
	if _, _, ok := c.Get("ds", 0, "huge"); ok {
		t.Fatal("oversized entry should not be cached")
	}
}

func TestPurgeDataset(t *testing.T) {
	c := newTest(Config{})
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		q := fmt.Sprintf("q%d", i)
		c.Do(ctx, "a", uint64(i), q, func(context.Context) (any, int64, error) { return q, 8, nil })
		c.Do(ctx, "b", 0, q, func(context.Context) (any, int64, error) { return q, 8, nil })
	}
	if ds := c.DatasetStats("a"); ds.Entries != 4 || ds.Bytes == 0 {
		t.Fatalf("dataset a stats = %+v", ds)
	}
	if n := c.Purge("a"); n != 4 {
		t.Fatalf("purged %d, want 4", n)
	}
	if ds := c.DatasetStats("a"); ds.Entries != 0 || ds.Bytes != 0 {
		t.Fatalf("post-purge a stats = %+v", ds)
	}
	if ds := c.DatasetStats("b"); ds.Entries != 4 {
		t.Fatalf("purge leaked into b: %+v", ds)
	}
	if st := c.Stats(); st.Purged != 4 || st.Entries != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestComputePanicReleasesCall: a panicking compute (net/http recovers per
// request, so the process lives on) must not leave a dead in-flight call
// behind. Followers blocked on the leader retry as new leaders, and the
// dataset's admission slot is released — with MaxInflight = 1, a wedged
// slot would reject every future request for the dataset.
func TestComputePanicReleasesCall(t *testing.T) {
	c := newTest(Config{MaxInflight: 1})
	ctx := context.Background()
	started := make(chan struct{})
	release := make(chan struct{})

	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the leader")
			}
		}()
		c.Do(ctx, "ds", 0, "q", func(context.Context) (any, int64, error) {
			close(started)
			<-release
			panic("kernel bug")
		})
	}()
	<-started

	// Follower joins while the doomed leader is computing.
	followerDone := make(chan struct{})
	go func() {
		defer close(followerDone)
		v, err := c.Do(ctx, "ds", 0, "q", func(context.Context) (any, int64, error) {
			return "recovered", 8, nil
		})
		if err != nil || v != "recovered" {
			t.Errorf("follower after panic: %v, %v", v, err)
		}
	}()
	// Let the leader panic only once the follower has provably coalesced.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Coalesced == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follower never coalesced onto the leader")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	<-leaderDone

	select {
	case <-followerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("follower never unblocked after the leader panicked")
	}
	// The admission slot must be free again: a fresh leader computes.
	v, err := c.Do(ctx, "ds", 0, "q2", func(context.Context) (any, int64, error) {
		return "alive", 8, nil
	})
	if err != nil || v != "alive" {
		t.Fatalf("post-panic Do = %v, %v (admission slot wedged?)", v, err)
	}
}

// TestPurgeFencesInflightFills: a computation in flight when Purge runs
// belongs to the purged lineage. Its late fill must not be stored under a
// key the re-registered dataset (whose Version counter restarts at 0) can
// reach, and post-purge callers must not coalesce onto it.
func TestPurgeFencesInflightFills(t *testing.T) {
	c := newTest(Config{})
	ctx := context.Background()
	started := make(chan struct{})
	release := make(chan struct{})
	oldDone := make(chan struct{})
	go func() {
		defer close(oldDone)
		v, err := c.Do(ctx, "ds", 0, "q", func(context.Context) (any, int64, error) {
			close(started)
			<-release
			return "old-lineage", 8, nil
		})
		// The leader itself still gets its own (stale-lineage) answer.
		if err != nil || v != "old-lineage" {
			t.Errorf("old leader: %v, %v", v, err)
		}
	}()
	<-started
	c.Purge("ds") // re-upload of "ds": new lineage, Version restarts at 0

	// A post-purge request for the same (version, query) must not join the
	// stale in-flight call; it computes against the new lineage.
	newDone := make(chan any, 1)
	go func() {
		v, err := c.Do(ctx, "ds", 0, "q", func(context.Context) (any, int64, error) {
			return "new-lineage", 8, nil
		})
		if err != nil {
			t.Errorf("new lineage Do: %v", err)
		}
		newDone <- v
	}()
	select {
	case v := <-newDone:
		if v != "new-lineage" {
			t.Fatalf("post-purge Do = %v, want new-lineage", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-purge Do coalesced onto the purged lineage's call")
	}

	close(release)
	<-oldDone
	// The stale fill must be unreachable: lookups see the new lineage only.
	if v, _, ok := c.Get("ds", 0, "q"); !ok || v != "new-lineage" {
		t.Fatalf("Get after late fill = %v, %v (stale fill stored?)", v, ok)
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	c := newTest(Config{MaxEntries: 64, MaxBytes: 1 << 20, MaxInflight: 4})
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				q := fmt.Sprintf("q%d", i%10)
				v, err := c.Do(ctx, "ds", uint64(i%3), q, func(context.Context) (any, int64, error) {
					return q, 32, nil
				})
				if err != nil && !errors.Is(err, ErrOverloaded) {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if err == nil && v != q {
					t.Errorf("worker %d: got %v want %v", w, v, q)
					return
				}
				if i%17 == 0 {
					c.Purge("ds")
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses+st.Coalesced == 0 {
		t.Fatal("no traffic recorded")
	}
}
