package cluster

import "math/rand"

// WeightedGraph is the internal multigraph representation Louvain iterates
// on (phase-2 aggregation produces weighted self-loops and parallel-edge
// sums).
type WeightedGraph struct {
	n        int
	adj      [][]wedge
	selfLoop []float64
	total    float64 // total edge weight (undirected, self-loops counted once)
}

type wedge struct {
	to int32
	w  float64
}

// NewWeightedFromGraph lifts an unweighted graph.
func NewWeightedFromGraph(g interface {
	N() int
	Neighbors(int32) []int32
}) *WeightedGraph {
	wg := &WeightedGraph{n: g.N(), adj: make([][]wedge, g.N()), selfLoop: make([]float64, g.N())}
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(int32(v)) {
			wg.adj[v] = append(wg.adj[v], wedge{to: u, w: 1})
			if int32(v) < u {
				wg.total++
			}
		}
	}
	return wg
}

// NewWeighted builds a weighted graph from explicit edges (u,v,w); used by
// CODICIL's sparsified similarity graph.
func NewWeighted(n int, edges []WEdge) *WeightedGraph {
	wg := &WeightedGraph{n: n, adj: make([][]wedge, n), selfLoop: make([]float64, n)}
	for _, e := range edges {
		if e.U == e.V {
			wg.selfLoop[e.U] += e.W
			wg.total += e.W
			continue
		}
		wg.adj[e.U] = append(wg.adj[e.U], wedge{to: e.V, w: e.W})
		wg.adj[e.V] = append(wg.adj[e.V], wedge{to: e.U, w: e.W})
		wg.total += e.W
	}
	return wg
}

// WEdge is a weighted undirected edge.
type WEdge struct {
	U, V int32
	W    float64
}

// Louvain runs the Louvain method: local moving + aggregation until
// modularity stops improving. Deterministic in seed (vertex visit order is
// shuffled per pass with the seeded rng).
func Louvain(g interface {
	N() int
	Neighbors(int32) []int32
}, seed int64) *Partition {
	return LouvainWeighted(NewWeightedFromGraph(g), seed)
}

// LouvainWeighted is Louvain on an explicit weighted graph.
func LouvainWeighted(wg *WeightedGraph, seed int64) *Partition {
	rng := rand.New(rand.NewSource(seed))
	n := wg.n
	// vertexComm[v] = community of original vertex v, maintained across
	// levels via the mapping chain.
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = int32(i)
	}

	cur := wg
	for level := 0; level < 32; level++ {
		labels, improved := localMoving(cur, rng)
		if !improved && level > 0 {
			break
		}
		// Compact labels.
		remap := make(map[int32]int32)
		for _, l := range labels {
			if _, ok := remap[l]; !ok {
				remap[l] = int32(len(remap))
			}
		}
		for i, l := range labels {
			labels[i] = remap[l]
		}
		nc := len(remap)
		// Update the original-vertex assignment.
		for v := 0; v < n; v++ {
			assign[v] = labels[assign[v]]
		}
		if nc == cur.n || !improved {
			break
		}
		cur = aggregate(cur, labels, nc)
	}
	p := &Partition{Labels: assign}
	p.normalize()
	return p
}

// localMoving is Louvain phase 1: move vertices to the neighboring
// community with maximal modularity gain until no move improves.
func localMoving(wg *WeightedGraph, rng *rand.Rand) (labels []int32, improved bool) {
	n := wg.n
	labels = make([]int32, n)
	commTot := make([]float64, n) // Σ degree weight per community
	degW := make([]float64, n)
	for v := 0; v < n; v++ {
		labels[v] = int32(v)
		d := 2 * wg.selfLoop[v]
		for _, e := range wg.adj[v] {
			d += e.w
		}
		degW[v] = d
		commTot[v] = d
	}
	m2 := 2 * wg.total
	if m2 == 0 {
		return labels, false
	}

	order := rng.Perm(n)
	neighW := make(map[int32]float64)
	for pass := 0; pass < 64; pass++ {
		moves := 0
		for _, vi := range order {
			v := int32(vi)
			// Weights to neighboring communities.
			for k := range neighW {
				delete(neighW, k)
			}
			for _, e := range wg.adj[v] {
				neighW[labels[e.to]] += e.w
			}
			old := labels[v]
			commTot[old] -= degW[v]
			best, bestGain := old, neighW[old]-commTot[old]*degW[v]/m2
			for c, w := range neighW {
				gain := w - commTot[c]*degW[v]/m2
				switch {
				case gain > bestGain+1e-12:
					best, bestGain = c, gain
				case gain > bestGain-1e-12 && c < best:
					// Deterministic tie-break (map iteration order varies).
					best, bestGain = c, gain
				}
			}
			labels[v] = best
			commTot[best] += degW[v]
			if best != old {
				moves++
				improved = true
			}
		}
		if moves == 0 {
			break
		}
	}
	return labels, improved
}

// aggregate is Louvain phase 2: collapse communities into super-vertices.
func aggregate(wg *WeightedGraph, labels []int32, nc int) *WeightedGraph {
	out := &WeightedGraph{n: nc, adj: make([][]wedge, nc), selfLoop: make([]float64, nc)}
	acc := make(map[int64]float64)
	for v := 0; v < wg.n; v++ {
		cv := labels[v]
		out.selfLoop[cv] += wg.selfLoop[v]
		for _, e := range wg.adj[v] {
			cu := labels[e.to]
			if cv == cu {
				if int32(v) < e.to {
					out.selfLoop[cv] += e.w
				}
				continue
			}
			if cv < cu {
				acc[int64(cv)<<32|int64(cu)] += e.w
			}
		}
	}
	for key, w := range acc {
		u, v := int32(key>>32), int32(key&0xffffffff)
		out.adj[u] = append(out.adj[u], wedge{to: v, w: w})
		out.adj[v] = append(out.adj[v], wedge{to: u, w: w})
		out.total += w
	}
	for c := 0; c < nc; c++ {
		out.total += out.selfLoop[c]
	}
	return out
}
