// Package cluster provides the community-detection substrate: Louvain
// modularity optimization, label propagation, and Girvan–Newman (the CD
// family the paper cites as [9] Newman & Girvan and uses inside CODICIL).
// CODICIL's original implementation delegates its final clustering step to
// METIS/MLR-MCL; Louvain plays that role here (see DESIGN.md §2).
package cluster

import "cexplorer/internal/graph"

// Partition maps every vertex to a community label in [0, Count).
type Partition struct {
	Labels []int32
	Count  int
}

// Communities materializes the partition as per-community vertex lists,
// ascending within each community, communities ordered by label.
func (p *Partition) Communities() [][]int32 {
	out := make([][]int32, p.Count)
	for v, l := range p.Labels {
		out[l] = append(out[l], int32(v))
	}
	return out
}

// CommunityOf returns the community of v as a vertex list.
func (p *Partition) CommunityOf(v int32) []int32 {
	want := p.Labels[v]
	var out []int32
	for u, l := range p.Labels {
		if l == want {
			out = append(out, int32(u))
		}
	}
	return out
}

// normalize relabels communities to dense [0,Count) in first-seen order.
func (p *Partition) normalize() {
	remap := make(map[int32]int32)
	for i, l := range p.Labels {
		nl, ok := remap[l]
		if !ok {
			nl = int32(len(remap))
			remap[l] = nl
		}
		p.Labels[i] = nl
	}
	p.Count = len(remap)
}

// Modularity computes Newman–Girvan modularity Q of a partition on g:
// Q = Σ_c (e_c/m − (d_c/2m)²) with e_c intra-community edges and d_c the
// total degree of community c.
func Modularity(g *graph.Graph, p *Partition) float64 {
	m := float64(g.M())
	if m == 0 {
		return 0
	}
	intra := make([]float64, p.Count)
	deg := make([]float64, p.Count)
	for v := int32(0); v < int32(g.N()); v++ {
		deg[p.Labels[v]] += float64(g.Degree(v))
	}
	g.Edges(func(u, v int32) bool {
		if p.Labels[u] == p.Labels[v] {
			intra[p.Labels[u]]++
		}
		return true
	})
	q := 0.0
	for c := 0; c < p.Count; c++ {
		q += intra[c]/m - (deg[c]/(2*m))*(deg[c]/(2*m))
	}
	return q
}

// Conductance returns the conductance of the cut around the given vertex
// set: crossing edges / min(vol(S), vol(V\S)). Lower is more community-like.
func Conductance(g *graph.Graph, vertices []int32) float64 {
	in := make(map[int32]bool, len(vertices))
	for _, v := range vertices {
		in[v] = true
	}
	cut, vol := 0, 0
	for _, v := range vertices {
		for _, u := range g.Neighbors(v) {
			vol++
			if !in[u] {
				cut++
			}
		}
	}
	total := 2 * g.M()
	other := total - vol
	denom := vol
	if other < denom {
		denom = other
	}
	if denom == 0 {
		return 1
	}
	return float64(cut) / float64(denom)
}
