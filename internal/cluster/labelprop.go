package cluster

import "math/rand"

// LabelPropagation runs synchronous-update label propagation with
// deterministic seeded tie-breaking: every vertex adopts the most frequent
// label among its neighbors (smallest label on ties), for at most maxIters
// rounds or until stable. It is the fast alternative clusterer CODICIL can
// use in place of Louvain.
func LabelPropagation(g interface {
	N() int
	Neighbors(int32) []int32
}, maxIters int, seed int64) *Partition {
	n := g.N()
	if maxIters <= 0 {
		maxIters = 32
	}
	rng := rand.New(rand.NewSource(seed))
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(i)
	}
	counts := make(map[int32]int)
	order := rng.Perm(n)
	for iter := 0; iter < maxIters; iter++ {
		changed := 0
		for _, vi := range order {
			v := int32(vi)
			nbrs := g.Neighbors(v)
			if len(nbrs) == 0 {
				continue
			}
			for k := range counts {
				delete(counts, k)
			}
			for _, u := range nbrs {
				counts[labels[u]]++
			}
			best := labels[v]
			bestCnt := counts[best]
			for l, c := range counts {
				if c > bestCnt || (c == bestCnt && l < best) {
					best, bestCnt = l, c
				}
			}
			if best != labels[v] {
				labels[v] = best
				changed++
			}
		}
		if changed == 0 {
			break
		}
	}
	p := &Partition{Labels: labels}
	p.normalize()
	return p
}
