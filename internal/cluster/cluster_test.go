package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cexplorer/internal/gen"
	"cexplorer/internal/graph"
)

// twoCliques builds two K5s joined by a single bridge edge — the canonical
// two-community graph.
func twoCliques(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(10, 21)
	b.AddVertexIDs(9)
	for u := int32(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			b.AddEdge(u, v)
			b.AddEdge(u+5, v+5)
		}
	}
	b.AddEdge(4, 5)
	return b.MustBuild()
}

func TestLouvainTwoCliques(t *testing.T) {
	g := twoCliques(t)
	p := Louvain(g, 1)
	if p.Count != 2 {
		t.Fatalf("communities = %d, want 2 (labels %v)", p.Count, p.Labels)
	}
	for v := int32(1); v < 5; v++ {
		if p.Labels[v] != p.Labels[0] {
			t.Fatalf("clique 1 split: %v", p.Labels)
		}
	}
	for v := int32(6); v < 10; v++ {
		if p.Labels[v] != p.Labels[5] {
			t.Fatalf("clique 2 split: %v", p.Labels)
		}
	}
	if p.Labels[0] == p.Labels[5] {
		t.Fatalf("cliques merged: %v", p.Labels)
	}
	if q := Modularity(g, p); q < 0.3 {
		t.Fatalf("modularity %f too low", q)
	}
}

func TestLouvainDeterministic(t *testing.T) {
	g, _ := gen.PlantedPartition(150, 5, 0.3, 0.01, 9)
	p1 := Louvain(g, 7)
	p2 := Louvain(g, 7)
	for v := range p1.Labels {
		if p1.Labels[v] != p2.Labels[v] {
			t.Fatal("Louvain not deterministic for fixed seed")
		}
	}
}

func TestLouvainRecoversPlantedPartition(t *testing.T) {
	g, truth := gen.PlantedPartition(200, 4, 0.35, 0.005, 3)
	p := Louvain(g, 1)
	// Each planted block should map (almost) entirely to one label.
	for _, blk := range truth {
		counts := map[int32]int{}
		for _, v := range blk {
			counts[p.Labels[v]]++
		}
		bestCnt := 0
		for _, c := range counts {
			if c > bestCnt {
				bestCnt = c
			}
		}
		if float64(bestCnt) < 0.9*float64(len(blk)) {
			t.Fatalf("planted block recovered only %d/%d", bestCnt, len(blk))
		}
	}
}

func TestLabelPropagationTwoCliques(t *testing.T) {
	g := twoCliques(t)
	p := LabelPropagation(g, 0, 5)
	if p.Labels[0] != p.Labels[4] || p.Labels[5] != p.Labels[9] {
		t.Fatalf("cliques split: %v", p.Labels)
	}
	if p.Count < 1 || p.Count > 3 {
		t.Fatalf("count = %d", p.Count)
	}
}

func TestGirvanNewmanTwoCliques(t *testing.T) {
	g := twoCliques(t)
	p := GirvanNewman(g, 0)
	if p.Count != 2 {
		t.Fatalf("GN communities = %d (labels %v)", p.Count, p.Labels)
	}
	if p.Labels[0] == p.Labels[9] {
		t.Fatalf("GN merged cliques: %v", p.Labels)
	}
}

func TestModularityBounds(t *testing.T) {
	g := twoCliques(t)
	// Singleton partition has negative-ish modularity; all-in-one has 0.
	single := &Partition{Labels: make([]int32, g.N()), Count: 1}
	if q := Modularity(g, single); q > 1e-9 || q < -0.5 {
		t.Fatalf("all-in-one modularity = %f", q)
	}
	each := &Partition{Labels: make([]int32, g.N()), Count: g.N()}
	for i := range each.Labels {
		each.Labels[i] = int32(i)
	}
	if q := Modularity(g, each); q >= 0 {
		t.Fatalf("singletons modularity = %f, want < 0", q)
	}
}

func TestConductance(t *testing.T) {
	g := twoCliques(t)
	// One clique: only the bridge crosses. vol = 2*10+1 = 21, cut = 1.
	c := Conductance(g, []int32{0, 1, 2, 3, 4})
	if c > 0.1 {
		t.Fatalf("clique conductance = %f", c)
	}
	// A random straddling set has high conductance.
	c2 := Conductance(g, []int32{0, 5})
	if c2 <= c {
		t.Fatalf("straddling set conductance %f should exceed %f", c2, c)
	}
	if got := Conductance(g, nil); got != 1 {
		t.Fatalf("empty set conductance = %f", got)
	}
}

// TestPartitionHelpers checks Communities/CommunityOf consistency.
func TestPartitionHelpers(t *testing.T) {
	g := twoCliques(t)
	p := Louvain(g, 1)
	comms := p.Communities()
	total := 0
	for _, c := range comms {
		total += len(c)
	}
	if total != g.N() {
		t.Fatalf("communities cover %d of %d vertices", total, g.N())
	}
	c0 := p.CommunityOf(0)
	found := false
	for _, v := range c0 {
		if v == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("CommunityOf(0) missing 0")
	}
}

// TestLouvainPartitionIsValid: labels dense, count correct, on random
// graphs; and modularity of the result is ≥ modularity of singletons.
func TestLouvainPartitionIsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(60)
		b := graph.NewBuilder(n, 0)
		b.AddVertexIDs(int32(n - 1))
		for i := 0; i < 3*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.MustBuild()
		p := Louvain(g, seed)
		if len(p.Labels) != n {
			return false
		}
		seen := map[int32]bool{}
		for _, l := range p.Labels {
			if l < 0 || int(l) >= p.Count {
				return false
			}
			seen[l] = true
		}
		if len(seen) != p.Count {
			return false
		}
		singles := &Partition{Labels: make([]int32, n), Count: n}
		for i := range singles.Labels {
			singles.Labels[i] = int32(i)
		}
		return Modularity(g, p) >= Modularity(g, singles)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedGraphAggregationConservesWeight(t *testing.T) {
	edges := []WEdge{{0, 1, 2}, {1, 2, 1}, {2, 0, 1}, {2, 3, 0.5}, {3, 3, 1}}
	wg := NewWeighted(4, edges)
	if wg.total != 5.5 {
		t.Fatalf("total = %f", wg.total)
	}
	labels := []int32{0, 0, 0, 1}
	agg := aggregate(wg, labels, 2)
	if agg.total != wg.total {
		t.Fatalf("aggregate total = %f, want %f", agg.total, wg.total)
	}
	// Intra weights 2+1+1=4 collapse into community 0's self-loop.
	if agg.selfLoop[0] != 4 {
		t.Fatalf("selfLoop[0] = %f", agg.selfLoop[0])
	}
	if agg.selfLoop[1] != 1 {
		t.Fatalf("selfLoop[1] = %f", agg.selfLoop[1])
	}
}
