package cluster

import "cexplorer/internal/graph"

// GirvanNewman runs the divisive edge-betweenness algorithm of Newman &
// Girvan (reference [9] of the paper): repeatedly remove the highest-
// betweenness edge and keep the partition (connected components) with the
// best modularity. O(n·m²) — intended for small demonstration graphs and
// as a quality oracle in tests, exactly how the original is used.
//
// maxRemovals caps the number of removed edges (0 = remove all).
func GirvanNewman(g *graph.Graph, maxRemovals int) *Partition {
	type edge struct{ u, v int32 }
	alive := make(map[edge]bool, g.M())
	g.Edges(func(u, v int32) bool {
		alive[edge{u, v}] = true
		return true
	})
	if maxRemovals <= 0 || maxRemovals > len(alive) {
		maxRemovals = len(alive)
	}

	neighbors := func(v int32) []int32 {
		var out []int32
		for _, u := range g.Neighbors(v) {
			a, b := v, u
			if a > b {
				a, b = b, a
			}
			if alive[edge{a, b}] {
				out = append(out, u)
			}
		}
		return out
	}

	components := func() *Partition {
		labels := make([]int32, g.N())
		for i := range labels {
			labels[i] = -1
		}
		var count int32
		for s := int32(0); s < int32(g.N()); s++ {
			if labels[s] != -1 {
				continue
			}
			labels[s] = count
			queue := []int32{s}
			for len(queue) > 0 {
				v := queue[len(queue)-1]
				queue = queue[:len(queue)-1]
				for _, u := range neighbors(v) {
					if labels[u] == -1 {
						labels[u] = count
						queue = append(queue, u)
					}
				}
			}
			count++
		}
		return &Partition{Labels: labels, Count: int(count)}
	}

	best := components()
	bestQ := Modularity(g, best)

	for round := 0; round < maxRemovals && len(alive) > 0; round++ {
		// Brandes-style accumulation of edge betweenness.
		bw := make(map[edge]float64, len(alive))
		for s := int32(0); s < int32(g.N()); s++ {
			// BFS from s.
			dist := make(map[int32]int32)
			sigma := map[int32]float64{s: 1}
			dist[s] = 0
			var orderv []int32
			queue := []int32{s}
			preds := make(map[int32][]int32)
			for head := 0; head < len(queue); head++ {
				v := queue[head]
				orderv = append(orderv, v)
				for _, u := range neighbors(v) {
					if _, seen := dist[u]; !seen {
						dist[u] = dist[v] + 1
						queue = append(queue, u)
					}
					if dist[u] == dist[v]+1 {
						sigma[u] += sigma[v]
						preds[u] = append(preds[u], v)
					}
				}
			}
			delta := make(map[int32]float64)
			for i := len(orderv) - 1; i >= 0; i-- {
				w := orderv[i]
				for _, v := range preds[w] {
					c := sigma[v] / sigma[w] * (1 + delta[w])
					a, b := v, w
					if a > b {
						a, b = b, a
					}
					bw[edge{a, b}] += c
					delta[v] += c
				}
			}
		}
		// Remove the max-betweenness edge (deterministic tie-break).
		var target edge
		bestBW := -1.0
		for e, w := range bw {
			if w > bestBW+1e-9 ||
				(w > bestBW-1e-9 && (e.u < target.u || (e.u == target.u && e.v < target.v))) {
				target, bestBW = e, w
			}
		}
		if bestBW < 0 {
			break
		}
		delete(alive, target)
		p := components()
		if q := Modularity(g, p); q > bestQ {
			bestQ, best = q, p
		}
	}
	return best
}
