// Package layout computes 2-D vertex positions for community visualization
// — the `display` function of the Figure-4 API ("it computes the layout
// (i.e., locations of vertices and edges) of a given community in a plane").
// The paper delegates layout to the JUNG library; this package implements
// the same family of algorithms: Fruchterman–Reingold force-directed layout
// (naive and Barnes–Hut), plus a circular fallback. All layouts are
// deterministic for a given seed.
package layout

import (
	"math"
	"math/rand"
)

// Point is a 2-D position.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Options configures force-directed layout.
type Options struct {
	Width, Height float64 // target bounding box; defaults 800×600
	Iterations    int     // cooling steps; default 100
	Seed          int64
	// BarnesHut enables quadtree-approximated repulsion (θ=0.7), turning
	// the O(n²) per-iteration cost into O(n log n). Automatically enabled
	// for n > 400 unless ForceExact.
	BarnesHut  bool
	ForceExact bool
}

func (o *Options) fill(n int) {
	if o.Width <= 0 {
		o.Width = 800
	}
	if o.Height <= 0 {
		o.Height = 600
	}
	if o.Iterations <= 0 {
		o.Iterations = 100
	}
	if !o.ForceExact && n > 400 {
		o.BarnesHut = true
	}
}

// Graph is the minimal view the layouter needs: local vertex IDs [0,N) and
// edges as index pairs.
type Graph interface {
	N() int
	Edges() [][2]int32
}

// EdgeList adapts explicit (n, edges) to the Graph interface.
type EdgeList struct {
	Count int
	Pairs [][2]int32
}

// N returns the vertex count.
func (e EdgeList) N() int { return e.Count }

// Edges returns the edge list.
func (e EdgeList) Edges() [][2]int32 { return e.Pairs }

// FruchtermanReingold computes a force-directed layout inside the
// [0,Width]×[0,Height] box.
func FruchtermanReingold(g Graph, opts Options) []Point {
	n := g.N()
	opts.fill(n)
	if n == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	pos := make([]Point, n)
	for i := range pos {
		pos[i] = Point{X: rng.Float64() * opts.Width, Y: rng.Float64() * opts.Height}
	}
	if n == 1 {
		pos[0] = Point{X: opts.Width / 2, Y: opts.Height / 2}
		return pos
	}
	area := opts.Width * opts.Height
	k := math.Sqrt(area / float64(n)) // ideal edge length
	disp := make([]Point, n)
	temp := opts.Width / 10
	cool := temp / float64(opts.Iterations+1)
	edges := g.Edges()

	for iter := 0; iter < opts.Iterations; iter++ {
		for i := range disp {
			disp[i] = Point{}
		}
		// Repulsion.
		if opts.BarnesHut {
			qt := buildQuadTree(pos, opts.Width, opts.Height)
			for v := 0; v < n; v++ {
				fx, fy := qt.repulsion(pos[v], k, 0.7)
				disp[v].X += fx
				disp[v].Y += fy
			}
		} else {
			for v := 0; v < n; v++ {
				for u := v + 1; u < n; u++ {
					dx, dy := pos[v].X-pos[u].X, pos[v].Y-pos[u].Y
					d2 := dx*dx + dy*dy
					if d2 < 1e-6 {
						dx, dy, d2 = jitter(rng), jitter(rng), 1e-6
					}
					f := k * k / d2
					disp[v].X += dx * f
					disp[v].Y += dy * f
					disp[u].X -= dx * f
					disp[u].Y -= dy * f
				}
			}
		}
		// Attraction along edges.
		for _, e := range edges {
			a, b := e[0], e[1]
			dx, dy := pos[a].X-pos[b].X, pos[a].Y-pos[b].Y
			d := math.Sqrt(dx*dx+dy*dy) + 1e-9
			f := d / k
			disp[a].X -= dx * f
			disp[a].Y -= dy * f
			disp[b].X += dx * f
			disp[b].Y += dy * f
		}
		// Apply with temperature cap, clamp to frame.
		for v := 0; v < n; v++ {
			dx, dy := disp[v].X, disp[v].Y
			d := math.Sqrt(dx*dx+dy*dy) + 1e-9
			lim := math.Min(d, temp)
			pos[v].X += dx / d * lim
			pos[v].Y += dy / d * lim
			pos[v].X = clamp(pos[v].X, 0, opts.Width)
			pos[v].Y = clamp(pos[v].Y, 0, opts.Height)
		}
		temp -= cool
		if temp < 0.01 {
			temp = 0.01
		}
	}
	normalize(pos, opts.Width, opts.Height)
	return pos
}

// Circular places vertices evenly on a circle — the fallback layout and the
// starting point the web UI offers.
func Circular(n int, opts Options) []Point {
	opts.fill(n)
	pos := make([]Point, n)
	cx, cy := opts.Width/2, opts.Height/2
	r := 0.42 * math.Min(opts.Width, opts.Height)
	for i := range pos {
		a := 2 * math.Pi * float64(i) / float64(maxInt(n, 1))
		pos[i] = Point{X: cx + r*math.Cos(a), Y: cy + r*math.Sin(a)}
	}
	return pos
}

// normalize rescales positions to fill ~90% of the box, centered.
func normalize(pos []Point, w, h float64) {
	if len(pos) == 0 {
		return
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pos {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	spanX, spanY := maxX-minX, maxY-minY
	if spanX < 1e-9 {
		spanX = 1
	}
	if spanY < 1e-9 {
		spanY = 1
	}
	for i := range pos {
		pos[i].X = 0.05*w + 0.9*w*(pos[i].X-minX)/spanX
		pos[i].Y = 0.05*h + 0.9*h*(pos[i].Y-minY)/spanY
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func jitter(rng *rand.Rand) float64 { return (rng.Float64() - 0.5) * 1e-3 }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
