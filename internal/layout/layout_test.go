package layout

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func pathGraph(n int) EdgeList {
	e := EdgeList{Count: n}
	for i := int32(0); i < int32(n-1); i++ {
		e.Pairs = append(e.Pairs, [2]int32{i, i + 1})
	}
	return e
}

func TestFRWithinBounds(t *testing.T) {
	g := pathGraph(20)
	opts := Options{Width: 400, Height: 300, Seed: 1}
	pos := FruchtermanReingold(g, opts)
	if len(pos) != 20 {
		t.Fatalf("len = %d", len(pos))
	}
	for i, p := range pos {
		if p.X < 0 || p.X > 400 || p.Y < 0 || p.Y > 300 {
			t.Fatalf("vertex %d at (%f,%f) outside bounds", i, p.X, p.Y)
		}
		if math.IsNaN(p.X) || math.IsNaN(p.Y) {
			t.Fatalf("NaN position at %d", i)
		}
	}
}

func TestFRDeterministic(t *testing.T) {
	g := pathGraph(15)
	a := FruchtermanReingold(g, Options{Seed: 7})
	b := FruchtermanReingold(g, Options{Seed: 7})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("layout not deterministic for fixed seed")
		}
	}
	c := FruchtermanReingold(g, Options{Seed: 8})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical layout")
	}
}

func TestFREdgeCases(t *testing.T) {
	if pos := FruchtermanReingold(EdgeList{Count: 0}, Options{}); pos != nil {
		t.Fatalf("empty graph = %v", pos)
	}
	pos := FruchtermanReingold(EdgeList{Count: 1}, Options{Width: 100, Height: 100})
	if len(pos) != 1 || pos[0].X != 50 || pos[0].Y != 50 {
		t.Fatalf("singleton = %v", pos)
	}
	// Coincident start points must not blow up.
	pos = FruchtermanReingold(EdgeList{Count: 2, Pairs: [][2]int32{{0, 1}}}, Options{Seed: 3})
	if math.IsNaN(pos[0].X) || math.IsNaN(pos[1].Y) {
		t.Fatal("NaN for 2-vertex graph")
	}
}

func TestFRSeparatesEndpoints(t *testing.T) {
	// On a path, endpoints should end up further apart than adjacent
	// vertices on average — a crude sanity check that forces work.
	g := pathGraph(10)
	pos := FruchtermanReingold(g, Options{Seed: 2, Iterations: 200})
	d := func(a, b int) float64 {
		dx, dy := pos[a].X-pos[b].X, pos[a].Y-pos[b].Y
		return math.Sqrt(dx*dx + dy*dy)
	}
	if d(0, 9) <= d(0, 1) {
		t.Fatalf("endpoint distance %f ≤ neighbor distance %f", d(0, 9), d(0, 1))
	}
}

func TestBarnesHutApproximatesExact(t *testing.T) {
	// Same seed, same graph: BH and exact layouts will differ numerically
	// but both must stay in bounds and keep comparable edge lengths.
	rng := rand.New(rand.NewSource(5))
	n := 500
	e := EdgeList{Count: n}
	for i := 0; i < 2*n; i++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u != v {
			e.Pairs = append(e.Pairs, [2]int32{u, v})
		}
	}
	exact := FruchtermanReingold(e, Options{Seed: 9, ForceExact: true, Iterations: 30})
	bh := FruchtermanReingold(e, Options{Seed: 9, BarnesHut: true, Iterations: 30})
	meanEdge := func(pos []Point) float64 {
		s := 0.0
		for _, pr := range e.Pairs {
			dx := pos[pr[0]].X - pos[pr[1]].X
			dy := pos[pr[0]].Y - pos[pr[1]].Y
			s += math.Sqrt(dx*dx + dy*dy)
		}
		return s / float64(len(e.Pairs))
	}
	me, mb := meanEdge(exact), meanEdge(bh)
	if mb > 3*me || me > 3*mb {
		t.Fatalf("BH mean edge %f vs exact %f: approximation too far off", mb, me)
	}
	for _, p := range bh {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) {
			t.Fatal("BH produced NaN")
		}
	}
}

func TestCircular(t *testing.T) {
	pos := Circular(8, Options{Width: 200, Height: 200})
	if len(pos) != 8 {
		t.Fatalf("len = %d", len(pos))
	}
	// All points equidistant from center.
	for _, p := range pos {
		dx, dy := p.X-100, p.Y-100
		r := math.Sqrt(dx*dx + dy*dy)
		if math.Abs(r-84) > 1 {
			t.Fatalf("radius %f, want ≈84", r)
		}
	}
	if got := Circular(0, Options{}); len(got) != 0 {
		t.Fatalf("Circular(0) = %v", got)
	}
}

// TestFRBoundsProperty: positions always inside the requested box, any
// graph, any seed.
func TestFRBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		e := EdgeList{Count: n}
		for i := 0; i < 2*n; i++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u != v {
				e.Pairs = append(e.Pairs, [2]int32{u, v})
			}
		}
		w := 100 + rng.Float64()*900
		h := 100 + rng.Float64()*900
		pos := FruchtermanReingold(e, Options{Width: w, Height: h, Seed: seed, Iterations: 20})
		for _, p := range pos {
			if p.X < -1e-9 || p.X > w+1e-9 || p.Y < -1e-9 || p.Y > h+1e-9 {
				return false
			}
			if math.IsNaN(p.X) || math.IsNaN(p.Y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuadTreeMassConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := make([]Point, 200)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
	}
	qt := buildQuadTree(pts, 100, 100)
	if qt.count != len(pts) {
		t.Fatalf("root count = %d", qt.count)
	}
	// Centroid equals mean of all points.
	var mx, my float64
	for _, p := range pts {
		mx += p.X
		my += p.Y
	}
	mx /= float64(len(pts))
	my /= float64(len(pts))
	if math.Abs(qt.cx-mx) > 1e-9 || math.Abs(qt.cy-my) > 1e-9 {
		t.Fatalf("centroid (%f,%f), want (%f,%f)", qt.cx, qt.cy, mx, my)
	}
}
