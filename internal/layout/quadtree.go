package layout

// Barnes–Hut quadtree for approximate n-body repulsion. Cells with
// width/distance below θ are treated as a single point mass at their
// centroid, reducing repulsion to O(n log n) per iteration.

type quadNode struct {
	// Cell bounds.
	x0, y0, x1, y1 float64
	// Aggregate.
	count    int
	cx, cy   float64 // centroid (mean position of contained points)
	children [4]*quadNode
	leafPt   Point
	leafSet  bool
}

func buildQuadTree(pos []Point, w, h float64) *quadNode {
	root := &quadNode{x0: 0, y0: 0, x1: w, y1: h}
	for _, p := range pos {
		root.insert(p, 0)
	}
	root.finalize()
	return root
}

const maxQuadDepth = 24

func (q *quadNode) insert(p Point, depth int) {
	q.count++
	q.cx += p.X
	q.cy += p.Y
	if q.count == 1 {
		q.leafPt = p
		q.leafSet = true
		return
	}
	if q.leafSet {
		// Split: push down the resident point first.
		old := q.leafPt
		q.leafSet = false
		if depth < maxQuadDepth {
			q.childFor(old).insert(old, depth+1)
		}
	}
	if depth < maxQuadDepth {
		q.childFor(p).insert(p, depth+1)
	}
}

func (q *quadNode) childFor(p Point) *quadNode {
	mx, my := (q.x0+q.x1)/2, (q.y0+q.y1)/2
	idx := 0
	x0, y0, x1, y1 := q.x0, q.y0, mx, my
	if p.X > mx {
		idx |= 1
		x0, x1 = mx, q.x1
	}
	if p.Y > my {
		idx |= 2
		y0, y1 = my, q.y1
	}
	if q.children[idx] == nil {
		q.children[idx] = &quadNode{x0: x0, y0: y0, x1: x1, y1: y1}
	}
	return q.children[idx]
}

func (q *quadNode) finalize() {
	if q.count > 0 {
		q.cx /= float64(q.count)
		q.cy /= float64(q.count)
	}
	for _, ch := range q.children {
		if ch != nil {
			ch.finalize()
		}
	}
}

// repulsion returns the total repulsive force on p with ideal length k and
// opening angle theta.
func (q *quadNode) repulsion(p Point, k, theta float64) (fx, fy float64) {
	if q.count == 0 {
		return 0, 0
	}
	dx, dy := p.X-q.cx, p.Y-q.cy
	d2 := dx*dx + dy*dy
	width := q.x1 - q.x0
	if q.leafSet || width*width < theta*theta*d2 {
		if d2 < 1e-6 {
			return 0, 0 // p is (nearly) the cell itself; skip self-force
		}
		f := k * k / d2 * float64(q.count)
		return dx * f, dy * f
	}
	for _, ch := range q.children {
		if ch != nil {
			cfx, cfy := ch.repulsion(p, k, theta)
			fx += cfx
			fy += cfy
		}
	}
	return fx, fy
}
