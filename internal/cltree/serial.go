package cltree

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"cexplorer/internal/graph"
)

// Binary index format ("Indexing module" of Figure 3 — the offline-built
// index the server loads at startup):
//
//	magic "CLT1" | n:int32 | nodeCount:int32 | preorder nodes
//	node := core:int32 | |vertices|:int32 | vertices... | |children|:int32
//
// Inverted lists and core numbers are derived data: they are rebuilt from
// the graph on load, which costs one keyword scan and keeps files small.

var magic = [4]byte{'C', 'L', 'T', '1'}

// WriteTo serializes the tree structure.
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}
	if _, err := cw.Write(magic[:]); err != nil {
		return cw.n, err
	}
	hdr := [2]int32{int32(t.g.N()), int32(t.nodes)}
	if err := binary.Write(cw, binary.LittleEndian, hdr[:]); err != nil {
		return cw.n, err
	}
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if err := binary.Write(cw, binary.LittleEndian, n.Core); err != nil {
			return err
		}
		if err := binary.Write(cw, binary.LittleEndian, int32(len(n.Vertices))); err != nil {
			return err
		}
		if err := binary.Write(cw, binary.LittleEndian, n.Vertices); err != nil {
			return err
		}
		if err := binary.Write(cw, binary.LittleEndian, int32(len(n.Children))); err != nil {
			return err
		}
		for _, ch := range n.Children {
			if err := walk(ch); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root); err != nil {
		return cw.n, err
	}
	return cw.n, bw.Flush()
}

// Read deserializes an index for g (the same graph it was built from; vertex
// count is checked, deeper mismatches surface in Validate).
func Read(r io.Reader, g *graph.Graph) (*Tree, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("cltree: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("cltree: bad magic %q", m)
	}
	var hdr [2]int32
	if err := binary.Read(br, binary.LittleEndian, hdr[:]); err != nil {
		return nil, err
	}
	if int(hdr[0]) != g.N() {
		return nil, fmt.Errorf("cltree: index built for n=%d, graph has n=%d", hdr[0], g.N())
	}
	nodeBudget := int(hdr[1])
	t := &Tree{
		g:      g,
		nodeOf: make([]*Node, g.N()),
		core:   make([]int32, g.N()),
	}
	var read func() (*Node, error)
	read = func() (*Node, error) {
		if nodeBudget <= 0 {
			return nil, fmt.Errorf("cltree: more nodes than header declared")
		}
		nodeBudget--
		n := &Node{}
		if err := binary.Read(br, binary.LittleEndian, &n.Core); err != nil {
			return nil, err
		}
		var nv int32
		if err := binary.Read(br, binary.LittleEndian, &nv); err != nil {
			return nil, err
		}
		if nv < 0 || int(nv) > g.N() {
			return nil, fmt.Errorf("cltree: corrupt vertex count %d", nv)
		}
		n.Vertices = make([]int32, nv)
		if err := binary.Read(br, binary.LittleEndian, n.Vertices); err != nil {
			return nil, err
		}
		for _, v := range n.Vertices {
			if v < 0 || int(v) >= g.N() {
				return nil, fmt.Errorf("cltree: corrupt vertex id %d", v)
			}
			t.nodeOf[v] = n
			t.core[v] = n.Core
		}
		var nch int32
		if err := binary.Read(br, binary.LittleEndian, &nch); err != nil {
			return nil, err
		}
		if nch < 0 || int(nch) > g.N() {
			return nil, fmt.Errorf("cltree: corrupt child count %d", nch)
		}
		t.nodes++
		for i := int32(0); i < nch; i++ {
			ch, err := read()
			if err != nil {
				return nil, err
			}
			ch.Parent = n
			n.Children = append(n.Children, ch)
		}
		return n, nil
	}
	root, err := read()
	if err != nil {
		return nil, err
	}
	if nodeBudget != 0 {
		return nil, fmt.Errorf("cltree: header declared %d extra nodes", nodeBudget)
	}
	t.root = root
	for v := 0; v < g.N(); v++ {
		if t.nodeOf[v] == nil {
			return nil, fmt.Errorf("cltree: vertex %d missing from index", v)
		}
	}
	t.buildInverted(nil, nil)
	return t, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
