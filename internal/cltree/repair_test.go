package cltree

import (
	"math/rand"
	"slices"
	"testing"

	"cexplorer/internal/gen"
	"cexplorer/internal/graph"
	"cexplorer/internal/kcore"
)

// requireEquivalentTrees asserts got and want describe identical community
// structure: same core numbers, and for every vertex and every admissible k
// the same k-core component (the subtree of the anchor node). Child order
// inside the trees may differ; the community semantics may not.
func requireEquivalentTrees(t *testing.T, got, want *Tree) {
	t.Helper()
	if !slices.Equal(got.CoreNumbers(), want.CoreNumbers()) {
		t.Fatalf("core numbers diverge:\n got %v\nwant %v", got.CoreNumbers(), want.CoreNumbers())
	}
	core := want.CoreNumbers()
	for v := int32(0); int(v) < len(core); v++ {
		for k := int32(1); k <= core[v]; k++ {
			g := got.SubtreeVertices(got.Anchor(v, k), nil)
			w := want.SubtreeVertices(want.Anchor(v, k), nil)
			slices.Sort(g)
			slices.Sort(w)
			if !slices.Equal(g, w) {
				t.Fatalf("community of v=%d k=%d diverges:\n got %v\nwant %v", v, k, g, w)
			}
		}
	}
}

func TestRepairRandomMutations(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		base := gen.GNMAttributed(40, 90, 12, seed)
		o := graph.NewOverlay(base)
		tree := Build(base)
		core := slices.Clone(tree.CoreNumbers())
		fastHits := 0

		for step := 0; step < 150; step++ {
			u := int32(rng.Intn(o.N()))
			v := int32(rng.Intn(o.N()))
			if u == v {
				continue
			}
			var (
				op           EdgeOp
				changedLevel int32
				changed      []int32
			)
			if o.HasEdge(u, v) {
				if err := o.RemoveEdge(u, v); err != nil {
					t.Fatal(err)
				}
				if ch := kcore.RemoveEdge(o, core, u, v); len(ch) > 0 {
					changedLevel = core[ch[0]] + 1
					changed = ch
				}
				op = EdgeOp{U: u, V: v}
			} else {
				if err := o.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
				if ch := kcore.InsertEdge(o, core, u, v); len(ch) > 0 {
					changedLevel = core[ch[0]]
					changed = ch
				}
				op = EdgeOp{U: u, V: v, Insert: true}
			}
			g, err := o.Materialize()
			if err != nil {
				t.Fatal(err)
			}
			// Passing changed arms the surgical level-move patch, the exact
			// path single-op serving batches take.
			next, shared := Repair(tree, g, slices.Clone(core), changedLevel, 0, []EdgeOp{op}, changed)
			if shared {
				fastHits++
			}
			if err := next.Validate(); err != nil {
				t.Fatalf("seed %d step %d (shared=%v): repaired tree invalid: %v", seed, step, shared, err)
			}
			requireEquivalentTrees(t, next, Build(g))
			tree = next
		}
		if fastHits == 0 {
			t.Errorf("seed %d: structural fast path never hit in 150 random ops", seed)
		}
	}
}

// TestRepairBatch drives multi-op batches (the serving shape) through
// Repair, including batches that mix inserts and deletes whose effects
// cancel structurally.
func TestRepairBatch(t *testing.T) {
	base := gen.GNMAttributed(50, 120, 10, 7)
	tree := Build(base)
	rng := rand.New(rand.NewSource(99))

	o := graph.NewOverlay(base)
	core := slices.Clone(tree.CoreNumbers())
	var ops []EdgeOp
	var changedLevel int32
	for i := 0; i < 40; i++ {
		u := int32(rng.Intn(o.N()))
		v := int32(rng.Intn(o.N()))
		if u == v {
			continue
		}
		if o.HasEdge(u, v) {
			if err := o.RemoveEdge(u, v); err != nil {
				t.Fatal(err)
			}
			if ch := kcore.RemoveEdge(o, core, u, v); len(ch) > 0 {
				changedLevel = max(changedLevel, core[ch[0]]+1)
			}
			ops = append(ops, EdgeOp{U: u, V: v})
		} else {
			if err := o.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
			if ch := kcore.InsertEdge(o, core, u, v); len(ch) > 0 {
				changedLevel = max(changedLevel, core[ch[0]])
			}
			ops = append(ops, EdgeOp{U: u, V: v, Insert: true})
		}
	}
	g, err := o.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	next, _ := Repair(tree, g, core, changedLevel, 0, ops, nil)
	if err := next.Validate(); err != nil {
		t.Fatalf("batch-repaired tree invalid: %v", err)
	}
	requireEquivalentTrees(t, next, Build(g))
}

// TestRepairSharesInvertedLists checks the rebuild path adopts inverted
// lists from unchanged nodes instead of re-sorting them.
func TestRepairSharesInvertedLists(t *testing.T) {
	// Two far-apart triangles; mutating one must not rebuild the other's
	// inverted lists.
	b := graph.NewBuilder(7, 8)
	for i := 0; i < 7; i++ {
		b.AddVertex("", "kw")
	}
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
		b.AddEdge(e[0], e[1])
	}
	base := b.MustBuild()
	tree := Build(base)

	o := graph.NewOverlay(base)
	if err := o.AddEdge(6, 0); err != nil { // vertex 6 was isolated: its core changes, forcing a rebuild
		t.Fatal(err)
	}
	core := slices.Clone(tree.CoreNumbers())
	changed := kcore.InsertEdge(o, core, 6, 0)
	if len(changed) == 0 {
		t.Fatal("expected a core change")
	}
	g, err := o.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	next, shared := Repair(tree, g, core, core[6], 0, []EdgeOp{{U: 6, V: 0, Insert: true}}, nil)
	if shared {
		t.Fatal("core change must not take the fast path")
	}
	// The untouched triangle {3,4,5} keeps its node; its inverted list must
	// be the same backing array, not a fresh sort.
	oldNode, newNode := tree.NodeOf(3), next.NodeOf(3)
	if len(oldNode.invKw) == 0 {
		t.Fatal("test premise broken: old node has no inverted list")
	}
	if &oldNode.invKw[0] != &newNode.invKw[0] {
		t.Errorf("unchanged node re-sorted its inverted list instead of adopting it")
	}
	if err := next.Validate(); err != nil {
		t.Fatal(err)
	}
}
