package cltree

import (
	"slices"

	"cexplorer/internal/graph"
	"cexplorer/internal/kcore"
)

// BuildBasic constructs the CL-tree top-down, the way the ACQ paper's
// "basic" method does: for every level k it recomputes the connected
// components of the k-core H_k and attaches each component under the
// enclosing component of H_{k'<k}. This is O(k_max·(n+m)) — quadratic-ish
// on deep-core graphs — and exists as the construction oracle for the
// bottom-up union-find Build (they must produce identical trees) and as the
// index-construction ablation baseline.
func BuildBasic(g *graph.Graph) *Tree {
	n := g.N()
	core := kcore.Decompose(g)
	maxCore := kcore.Degeneracy(core)

	t := &Tree{g: g, nodeOf: make([]*Node, n), core: core}

	// Root: core-0 node with all isolated vertices (Figure 5(b) convention).
	root := &Node{Core: 0}
	for v := 0; v < n; v++ {
		if core[v] == 0 {
			root.Vertices = append(root.Vertices, int32(v))
			t.nodeOf[v] = root
		}
	}
	t.root = root
	t.nodes = 1

	// enclosing[v] = deepest node built so far whose subtree owns v.
	enclosing := make([]*Node, n)
	for v := 0; v < n; v++ {
		enclosing[v] = root
	}

	visited := make([]bool, n)
	for k := int32(1); k <= maxCore; k++ {
		for i := range visited {
			visited[i] = false
		}
		for s := int32(0); s < int32(n); s++ {
			if visited[s] || core[s] < k {
				continue
			}
			// BFS one component of H_k.
			comp := []int32{s}
			visited[s] = true
			for head := 0; head < len(comp); head++ {
				for _, u := range g.Neighbors(comp[head]) {
					if !visited[u] && core[u] >= k {
						visited[u] = true
						comp = append(comp, u)
					}
				}
			}
			node := &Node{Core: k}
			for _, v := range comp {
				if core[v] == k {
					node.Vertices = append(node.Vertices, v)
					t.nodeOf[v] = node
				}
			}
			if len(node.Vertices) == 0 {
				// No vertex peels at exactly this level in this component:
				// the hierarchy skips the level (matching Build, where no
				// union group forms). Deeper components keep attaching to
				// the current enclosing node.
				continue
			}
			slices.Sort(node.Vertices)
			parent := enclosing[comp[0]]
			node.Parent = parent
			parent.Children = append(parent.Children, node)
			for _, v := range comp {
				enclosing[v] = node
			}
			t.nodes++
		}
	}

	// Normalize child order (Build's order is union-driven): sort every
	// node's children by the smallest vertex in their subtree so the two
	// construction paths serialize identically.
	var canon func(nd *Node) int32
	canon = func(nd *Node) int32 {
		m := int32(1<<31 - 1)
		if len(nd.Vertices) > 0 {
			m = nd.Vertices[0]
		}
		for _, ch := range nd.Children {
			if cm := canon(ch); cm < m {
				m = cm
			}
		}
		slices.SortFunc(nd.Children, func(a, b *Node) int { return int(minVertex(a)) - int(minVertex(b)) })
		return m
	}
	canon(root)

	t.buildInverted(nil, nil)
	return t
}
