package cltree

import (
	"fmt"
	"slices"

	"cexplorer/internal/kcore"
)

func (t *Tree) validate() error {
	g := t.g
	seen := make([]bool, g.N())
	var nodes []*Node
	var collect func(n *Node)
	collect = func(n *Node) {
		nodes = append(nodes, n)
		for _, ch := range n.Children {
			collect(ch)
		}
	}
	collect(t.root)

	if len(nodes) != t.nodes {
		return fmt.Errorf("cltree: node count %d != recorded %d", len(nodes), t.nodes)
	}

	for _, n := range nodes {
		for i, v := range n.Vertices {
			if seen[v] {
				return fmt.Errorf("cltree: vertex %d in two nodes", v)
			}
			seen[v] = true
			if t.core[v] != n.Core {
				return fmt.Errorf("cltree: vertex %d core %d in node of core %d", v, t.core[v], n.Core)
			}
			if t.nodeOf[v] != n {
				return fmt.Errorf("cltree: nodeOf[%d] mismatch", v)
			}
			if i > 0 && n.Vertices[i-1] >= v {
				return fmt.Errorf("cltree: node vertices not ascending")
			}
		}
		for _, ch := range n.Children {
			if ch.Core <= n.Core {
				return fmt.Errorf("cltree: child core %d <= parent core %d", ch.Core, n.Core)
			}
			if ch.Parent != n {
				return fmt.Errorf("cltree: broken parent pointer")
			}
		}
		// Inverted list agrees with the graph.
		want := 0
		for _, v := range n.Vertices {
			want += len(g.Keywords(v))
		}
		if len(n.invKw) != want || len(n.invV) != len(n.invKw) {
			return fmt.Errorf("cltree: inverted list size %d, want %d", len(n.invKw), want)
		}
		for i := range n.invKw {
			if !g.HasKeyword(n.invV[i], n.invKw[i]) {
				return fmt.Errorf("cltree: inverted entry (%d,%d) not in graph", n.invKw[i], n.invV[i])
			}
			if i > 0 && (n.invKw[i-1] > n.invKw[i] ||
				(n.invKw[i-1] == n.invKw[i] && n.invV[i-1] >= n.invV[i])) {
				return fmt.Errorf("cltree: inverted list not sorted by (kw,v)")
			}
		}
	}
	for v := 0; v < g.N(); v++ {
		if !seen[v] {
			return fmt.Errorf("cltree: vertex %d missing from tree", v)
		}
	}

	// Subtree = connected k-core component, checked against a direct
	// computation for every non-root node.
	for _, n := range nodes {
		if n == t.root {
			continue
		}
		sub := t.SubtreeVertices(n, nil)
		slices.Sort(sub)
		q := n.Vertices[0]
		want := kcore.ConnectedKCore(g, t.core, q, n.Core)
		slices.Sort(want)
		if len(sub) != len(want) {
			return fmt.Errorf("cltree: subtree at core %d size %d != component size %d", n.Core, len(sub), len(want))
		}
		for i := range sub {
			if sub[i] != want[i] {
				return fmt.Errorf("cltree: subtree at core %d differs from k-core component", n.Core)
			}
		}
	}
	return nil
}
