// Package cltree implements the CL-tree index of the paper (§3.2): the
// nested k-core hierarchy of an attributed graph organized as a tree whose
// nodes carry inverted keyword lists.
//
// Each tree node represents one connected component of the k-core H_k for
// some k and stores the vertices whose core number is exactly k within that
// component; the subtree rooted at a node therefore spells out the entire
// component ("The subtree rooted at each node represents a connected
// component of the k-core"). Following Figure 5(b), the root is the single
// core-0 node holding the isolated vertices, with one child per connected
// component of the 1-core (possibly with deeper cores skipping levels).
//
// The index is built bottom-up with a union-find over vertices in decreasing
// core-number order — O(m·α(n)) time and linear space, matching the paper's
// "the CL-tree can be built in linear space and time cost".
package cltree

import (
	"slices"
	"sort"

	"cexplorer/internal/ds"
	"cexplorer/internal/graph"
	"cexplorer/internal/kcore"
)

// Node is one CL-tree node. Exported fields are read-only after Build.
type Node struct {
	Core     int32   // the k of the k-core component this node roots
	Vertices []int32 // vertices with core number == Core in this component, ascending
	Children []*Node
	Parent   *Node

	// Inverted keyword list over Vertices: parallel arrays sorted by
	// (keyword, vertex). invOff is unused; lookups binary-search invKw.
	invKw []int32
	invV  []int32
}

// Tree is the CL-tree index over one graph.
type Tree struct {
	g      *graph.Graph
	root   *Node
	nodeOf []*Node
	core   []int32
	nodes  int
}

// Build constructs the CL-tree for g.
func Build(g *graph.Graph) *Tree {
	return buildTree(g, kcore.Decompose(g), nil, -1)
}

// buildTree constructs the CL-tree for g from precomputed core numbers
// (the array is adopted, not copied). When reuse is non-nil, nodes whose
// vertex set is unchanged from the reused tree adopt its inverted keyword
// lists instead of re-sorting them — the repair path's way of rebuilding
// only the lists it can no longer trust. The reused tree must index a graph
// whose per-vertex keyword sets agree with g on every shared vertex (always
// true under mutation batches, which never rewrite existing attributes).
//
// upTo ≥ 0 requests a frontier rebuild: only levels ≤ upTo are recomputed,
// and every maximal reuse subtree rooted strictly deeper is preserved as a
// unit — its node skeleton is cloned (so old-tree Parent pointers are never
// mutated) while its vertex and inverted-list arenas are shared, and the
// union-find never walks an edge whose endpoints both lie deeper than
// upTo. Callers must guarantee no k-core component at any level > upTo
// differs between the reused tree's graph and g (Repair derives that bound
// from the mutation batch). upTo < 0 rebuilds every level.
func buildTree(g *graph.Graph, core []int32, reuse *Tree, upTo int32) *Tree {
	n := g.N()
	maxCore := kcore.Degeneracy(core)
	partial := reuse != nil && upTo >= 0 && upTo < maxCore
	if !partial {
		upTo = maxCore
	}

	// Bucket the vertices this rebuild actually processes by core number.
	buckets := make([][]int32, upTo+1)
	for v := 0; v < n; v++ {
		if c := core[v]; c <= upTo {
			buckets[c] = append(buckets[c], int32(v))
		}
	}

	uf := ds.NewUnionFind(n)
	added := make([]bool, n)
	top := make(map[int32][]*Node) // UF root -> unparented top nodes of that component
	nodeOf := make([]*Node, n)
	t := &Tree{g: g, nodeOf: nodeOf, core: core}

	// Per-level grouping scratch (see the grouping step below).
	var (
		roots     []int32
		groups    [][]int32
		groupMark = make([]int32, n)
		groupPos  = make([]int32, n)
	)

	// repOf maps every vertex deeper than upTo to the union-find
	// representative of its preserved subtree (the first vertex of the
	// subtree's top node), filled during cloning so boundary edges resolve
	// in O(1) instead of climbing the old tree per edge. Deep-deep edges
	// never cross preserved subtrees (two components of H_{upTo+1} are, by
	// definition, not adjacent inside H_{upTo+1}), so uniting each boundary
	// edge with the representative is all the connectivity the skipped
	// levels require.
	var repOf []int32
	preserved := make(map[*Node]bool)
	if partial {
		repOf = make([]int32, len(reuse.nodeOf))
		for _, topNode := range reuse.topsDeeperThan(upTo) {
			clone := t.cloneSubtree(topNode)
			preserved[clone] = true
			rep := clone.Vertices[0]
			top[rep] = []*Node{clone}
			stampReps(repOf, clone, rep)
		}
	}

	for c := upTo; c >= 1; c-- {
		level := buckets[c]
		for _, v := range level {
			added[v] = true
		}
		for _, v := range level {
			for _, u := range g.Neighbors(v) {
				if !added[u] {
					if !partial || core[u] <= upTo {
						continue
					}
					u = repOf[u] // boundary edge into a preserved subtree
				}
				ru, rv := uf.Find(u), uf.Find(v)
				if ru == rv {
					continue
				}
				r, _ := uf.Union(ru, rv)
				other := ru
				if r == ru {
					other = rv
				}
				if tops := top[other]; len(tops) > 0 {
					top[r] = append(top[r], tops...)
					delete(top, other)
				}
			}
		}
		// Group this level's vertices by component, in first-seen order for
		// determinism. groupMark/groupPos are stamped with the level, so
		// grouping costs one Find and two array reads per vertex — no maps.
		roots = roots[:0]
		groups = groups[:0]
		for _, v := range level {
			r := uf.Find(v)
			if groupMark[r] != c {
				groupMark[r] = c
				groupPos[r] = int32(len(groups))
				roots = append(roots, r)
				groups = append(groups, nil)
			}
			groups[groupPos[r]] = append(groups[groupPos[r]], v)
		}
		for i, r := range roots {
			// Level buckets are filled in ascending vertex order, so each
			// group arrives sorted already.
			vs := groups[i]
			node := &Node{Core: c, Vertices: vs, Children: top[r]}
			for _, ch := range node.Children {
				ch.Parent = node
			}
			for _, v := range vs {
				nodeOf[v] = node
			}
			top[r] = []*Node{node}
			t.nodes++
		}
	}

	// Root: the single core-0 node (isolated vertices), children = every
	// remaining component top, ordered by smallest vertex for determinism.
	root := &Node{Core: 0, Vertices: buckets[0]}
	var tops []*Node
	for _, nodes := range top {
		tops = append(tops, nodes...)
	}
	slices.SortFunc(tops, func(a, b *Node) int { return int(minVertex(a)) - int(minVertex(b)) })
	root.Children = tops
	for _, ch := range tops {
		ch.Parent = root
	}
	for _, v := range root.Vertices {
		nodeOf[v] = root
	}
	t.nodes++
	t.root = root

	t.buildInverted(reuse, preserved)
	return t
}

// stampReps records rep as the union-find representative for every vertex
// of a preserved (cloned) subtree.
func stampReps(repOf []int32, n *Node, rep int32) {
	for _, v := range n.Vertices {
		repOf[v] = rep
	}
	for _, ch := range n.Children {
		stampReps(repOf, ch, rep)
	}
}

// topsDeeperThan returns the maximal nodes with Core > upTo: the roots of
// the subtrees a frontier rebuild preserves wholesale. Each is exactly one
// connected component of H_{upTo+1}.
func (t *Tree) topsDeeperThan(upTo int32) []*Node {
	var tops []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Core > upTo {
			tops = append(tops, n)
			return
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	walk(t.root)
	return tops
}

// cloneSubtree copies a preserved subtree's node skeleton into t — fresh
// Node structs (so the new tree's Parent/Children pointers never touch the
// old tree, which pinned queries may still be reading) sharing the old
// vertex lists and inverted arenas, which are immutable after build. The
// clone's vertices are pointed at their new nodes in t.nodeOf.
func (t *Tree) cloneSubtree(on *Node) *Node {
	nn := &Node{Core: on.Core, Vertices: on.Vertices, invKw: on.invKw, invV: on.invV}
	if len(on.Children) > 0 {
		nn.Children = make([]*Node, len(on.Children))
		for i, ch := range on.Children {
			c := t.cloneSubtree(ch)
			c.Parent = nn
			nn.Children[i] = c
		}
	}
	for _, v := range on.Vertices {
		t.nodeOf[v] = nn
	}
	t.nodes++
	return nn
}

func minVertex(n *Node) int32 {
	m := int32(1<<31 - 1)
	if len(n.Vertices) > 0 {
		m = n.Vertices[0]
	}
	for _, ch := range n.Children {
		if cm := minVertex(ch); cm < m {
			m = cm
		}
	}
	return m
}

// buildInverted fills each node's keyword inverted list from the graph —
// adopting the list wholesale when the node's vertex set is unchanged from
// reuse, splicing it when the set changed by a few vertices, and counting-
// sorting from scratch otherwise. Subtrees rooted at a node in skip were
// cloned from a preserved subtree and carry their lists already.
func (t *Tree) buildInverted(reuse *Tree, skip map[*Node]bool) {
	fillScratch := newInvFiller(t.g.Vocab().Len())
	var fill func(n *Node)
	fill = func(n *Node) {
		if skip[n] {
			return
		}
		if !adoptInverted(reuse, n) && !patchInverted(t.g, reuse, n) {
			fillScratch.fill(t.g, n)
		}
		for _, ch := range n.Children {
			fill(ch)
		}
	}
	fill(t.root)
}

// patchInverted derives a node's inverted list from an old node covering
// almost the same vertex set, by splicing out the departed vertices' pairs
// and splicing in the arrivals' — sequential segment copies plus a handful
// of binary searches, instead of re-scattering tens of thousands of pairs.
// It applies when a level gains or loses a few vertices (the shape every
// core promotion/demotion produces) and reports false otherwise.
func patchInverted(g *graph.Graph, old *Tree, n *Node) bool {
	if old == nil || len(n.Vertices) == 0 {
		return false
	}
	// Candidate old node: most of n's vertices lived somewhere; probe three.
	var on *Node
	for _, probe := range [3]int32{n.Vertices[0], n.Vertices[len(n.Vertices)/2], n.Vertices[len(n.Vertices)-1]} {
		if int(probe) >= len(old.nodeOf) {
			continue
		}
		if c := old.nodeOf[probe]; c != nil && c.Core == n.Core {
			on = c
			break
		}
	}
	if on == nil {
		return false
	}
	removed, arrived := diffSorted(on.Vertices, n.Vertices)
	if d := len(removed) + len(arrived); d == 0 || d > len(n.Vertices)/8+8 {
		return false // identical is adoption's job; big diffs refill faster
	}
	invKw, invV, ok := spliceLists(g, on, removed, arrived)
	if !ok {
		return false
	}
	n.invKw, n.invV = invKw, invV
	return true
}

// spliceLists derives new inverted lists from on's by deleting the removed
// vertices' pairs and inserting the arrived vertices' — an edit script of
// binary-searched positions applied with sequential segment copies. ok is
// false when on's lists disagree with the graph (caller refills instead).
func spliceLists(g *graph.Graph, on *Node, removed, arrived []int32) (outKw, outV []int32, ok bool) {
	type edit struct {
		pos    int
		kw, v  int32
		insert bool
	}
	var edits []edit
	locate := func(kw, v int32) (int, bool) {
		lo, hi := 0, len(on.invKw)
		for lo < hi {
			mid := (lo + hi) / 2
			if on.invKw[mid] < kw || (on.invKw[mid] == kw && on.invV[mid] < v) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo, lo < len(on.invKw) && on.invKw[lo] == kw && on.invV[lo] == v
	}
	for _, v := range removed {
		for _, kw := range g.Keywords(v) {
			pos, found := locate(kw, v)
			if !found {
				return nil, nil, false // old list disagrees with the graph
			}
			edits = append(edits, edit{pos: pos, kw: kw, v: v})
		}
	}
	for _, v := range arrived {
		for _, kw := range g.Keywords(v) {
			pos, found := locate(kw, v)
			if found {
				return nil, nil, false // already present: inconsistent
			}
			edits = append(edits, edit{pos: pos, kw: kw, v: v, insert: true})
		}
	}
	slices.SortStableFunc(edits, func(a, b edit) int {
		if a.pos != b.pos {
			return a.pos - b.pos
		}
		if a.kw != b.kw {
			return int(a.kw - b.kw)
		}
		return int(a.v - b.v)
	})

	total := len(on.invKw)
	for _, e := range edits {
		if e.insert {
			total++
		} else {
			total--
		}
	}
	outKw = make([]int32, 0, total)
	outV = make([]int32, 0, total)
	cur := 0
	for _, e := range edits {
		outKw = append(outKw, on.invKw[cur:e.pos]...)
		outV = append(outV, on.invV[cur:e.pos]...)
		cur = e.pos
		if e.insert {
			outKw = append(outKw, e.kw)
			outV = append(outV, e.v)
		} else {
			cur++ // skip the deleted pair
		}
	}
	outKw = append(outKw, on.invKw[cur:]...)
	outV = append(outV, on.invV[cur:]...)
	return outKw, outV, true
}

// diffSorted returns the elements only in a (removed) and only in b
// (arrived), both inputs ascending.
func diffSorted(a, b []int32) (onlyA, onlyB []int32) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			onlyA = append(onlyA, a[i])
			i++
		default:
			onlyB = append(onlyB, b[j])
			j++
		}
	}
	onlyA = append(onlyA, a[i:]...)
	onlyB = append(onlyB, b[j:]...)
	return onlyA, onlyB
}

// adoptInverted tries to adopt the inverted lists of old's node covering the
// same vertex set as n (identified through old's nodeOf by n's first vertex;
// components are disjoint, so one probe suffices). The slices are shared,
// never copied: inverted lists are immutable after build.
func adoptInverted(old *Tree, n *Node) bool {
	if old == nil || len(n.Vertices) == 0 {
		return false
	}
	probe := n.Vertices[0]
	if int(probe) >= len(old.nodeOf) {
		return false // vertex newer than the reused tree
	}
	on := old.nodeOf[probe]
	if on == nil || on.Core != n.Core || !slices.Equal(on.Vertices, n.Vertices) {
		return false
	}
	n.invKw, n.invV = on.invKw, on.invV
	return true
}

// invFiller builds per-node inverted lists with a keyword counting sort:
// two passes over the node's keyword pairs plus a sort of the distinct
// keywords only. Node vertices are ascending, so placing pairs in vertex
// order yields the exact (kw, v) order a comparison sort would — at O(total
// + distinct·log distinct) instead of O(total·log total), which is what
// makes rebuilding a multi-thousand-vertex node's list affordable on the
// mutation path. The counts array (vocab-sized, touched entries re-zeroed
// after each node) is shared across one build.
type invFiller struct {
	counts  []int32
	touched []int32
}

func newInvFiller(vocabLen int) *invFiller {
	return &invFiller{counts: make([]int32, vocabLen)}
}

func (f *invFiller) fill(g *graph.Graph, n *Node) {
	total := 0
	f.touched = f.touched[:0]
	for _, v := range n.Vertices {
		kws := g.Keywords(v)
		total += len(kws)
		for _, w := range kws {
			if f.counts[w] == 0 {
				f.touched = append(f.touched, w)
			}
			f.counts[w]++
		}
	}
	if total == 0 {
		return
	}
	slices.Sort(f.touched)
	n.invKw = make([]int32, total)
	n.invV = make([]int32, total)
	// Prefix-sum the touched keywords into placement cursors (stored back
	// into counts), writing the invKw runs as we go.
	off := int32(0)
	for _, w := range f.touched {
		c := f.counts[w]
		for i := off; i < off+c; i++ {
			n.invKw[i] = w
		}
		f.counts[w] = off
		off += c
	}
	for _, v := range n.Vertices {
		for _, w := range g.Keywords(v) {
			n.invV[f.counts[w]] = v
			f.counts[w]++
		}
	}
	for _, w := range f.touched {
		f.counts[w] = 0
	}
}

// VerticesWithKeyword returns the node-local vertices carrying keyword w
// (ascending). The slice aliases index storage.
func (n *Node) VerticesWithKeyword(w int32) []int32 {
	lo := sort.Search(len(n.invKw), func(i int) bool { return n.invKw[i] >= w })
	hi := sort.Search(len(n.invKw), func(i int) bool { return n.invKw[i] > w })
	return n.invV[lo:hi]
}

// KeywordCount returns how many node-local vertices carry keyword w.
func (n *Node) KeywordCount(w int32) int { return len(n.VerticesWithKeyword(w)) }

// Graph returns the indexed graph.
func (t *Tree) Graph() *graph.Graph { return t.g }

// Root returns the core-0 root node.
func (t *Tree) Root() *Node { return t.root }

// NodeOf returns the node whose Vertices contain v.
func (t *Tree) NodeOf(v int32) *Node { return t.nodeOf[v] }

// CoreNumbers returns the core-number array computed during Build. Callers
// must not modify it.
func (t *Tree) CoreNumbers() []int32 { return t.core }

// NumNodes returns the number of tree nodes.
func (t *Tree) NumNodes() int { return t.nodes }

// Depth returns the maximum root-to-leaf depth (root = 1).
func (t *Tree) Depth() int {
	var walk func(n *Node) int
	walk = func(n *Node) int {
		d := 1
		for _, ch := range n.Children {
			if cd := walk(ch) + 1; cd > d {
				d = cd
			}
		}
		return d
	}
	return walk(t.root)
}

// Anchor returns the root of the smallest subtree that spells out the
// connected component of the k-core containing q — the candidate universe of
// every ACQ query ("The CL-tree allows us to locate a specific k-core ...
// efficiently"). It returns nil when core(q) < k.
func (t *Tree) Anchor(q, k int32) *Node {
	if q < 0 || int(q) >= len(t.core) || t.core[q] < k {
		return nil
	}
	n := t.nodeOf[q]
	for n.Parent != nil && n.Parent.Core >= k {
		n = n.Parent
	}
	return n
}

// SubtreeVertices appends all vertices in the subtree rooted at n to dst and
// returns it. With a nil dst it allocates exactly.
func (t *Tree) SubtreeVertices(n *Node, dst []int32) []int32 {
	if dst == nil {
		dst = make([]int32, 0, t.subtreeSize(n))
	}
	var walk func(x *Node)
	walk = func(x *Node) {
		dst = append(dst, x.Vertices...)
		for _, ch := range x.Children {
			walk(ch)
		}
	}
	walk(n)
	return dst
}

func (t *Tree) subtreeSize(n *Node) int {
	sz := len(n.Vertices)
	for _, ch := range n.Children {
		sz += t.subtreeSize(ch)
	}
	return sz
}

// SubtreeKeywordVertices appends the subtree vertices carrying keyword w to
// dst (unsorted across nodes) and returns it.
func (t *Tree) SubtreeKeywordVertices(n *Node, w int32, dst []int32) []int32 {
	var walk func(x *Node)
	walk = func(x *Node) {
		dst = append(dst, x.VerticesWithKeyword(w)...)
		for _, ch := range x.Children {
			walk(ch)
		}
	}
	walk(n)
	return dst
}

// SubtreeKeywordCount returns how many subtree vertices carry keyword w.
func (t *Tree) SubtreeKeywordCount(n *Node, w int32) int {
	cnt := n.KeywordCount(w)
	for _, ch := range n.Children {
		cnt += t.SubtreeKeywordCount(ch, w)
	}
	return cnt
}

// Bytes estimates the retained index size in bytes (E6's "linear space"
// measurement).
func (t *Tree) Bytes() int64 {
	var b int64
	b += int64(len(t.nodeOf)) * 8
	b += int64(len(t.core)) * 4
	var walk func(n *Node)
	walk = func(n *Node) {
		b += 64 // struct overhead
		b += int64(len(n.Vertices)) * 4
		b += int64(len(n.invKw)) * 8
		b += int64(len(n.Children)) * 8
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	walk(t.root)
	return b
}

// Validate checks the structural invariants of the index against its graph;
// tests and the upload path use it. It verifies that (1) node vertex sets
// partition V, (2) every node's vertices have core number == node.Core,
// (3) children have strictly larger core numbers, (4) each node's subtree is
// exactly the connected component in H_{node.Core} of any of its vertices
// (checked for non-root nodes), and (5) inverted lists agree with the graph.
func (t *Tree) Validate() error {
	return t.validate()
}
