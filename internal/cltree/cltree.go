// Package cltree implements the CL-tree index of the paper (§3.2): the
// nested k-core hierarchy of an attributed graph organized as a tree whose
// nodes carry inverted keyword lists.
//
// Each tree node represents one connected component of the k-core H_k for
// some k and stores the vertices whose core number is exactly k within that
// component; the subtree rooted at a node therefore spells out the entire
// component ("The subtree rooted at each node represents a connected
// component of the k-core"). Following Figure 5(b), the root is the single
// core-0 node holding the isolated vertices, with one child per connected
// component of the 1-core (possibly with deeper cores skipping levels).
//
// The index is built bottom-up with a union-find over vertices in decreasing
// core-number order — O(m·α(n)) time and linear space, matching the paper's
// "the CL-tree can be built in linear space and time cost".
package cltree

import (
	"sort"

	"cexplorer/internal/ds"
	"cexplorer/internal/graph"
	"cexplorer/internal/kcore"
)

// Node is one CL-tree node. Exported fields are read-only after Build.
type Node struct {
	Core     int32   // the k of the k-core component this node roots
	Vertices []int32 // vertices with core number == Core in this component, ascending
	Children []*Node
	Parent   *Node

	// Inverted keyword list over Vertices: parallel arrays sorted by
	// (keyword, vertex). invOff is unused; lookups binary-search invKw.
	invKw []int32
	invV  []int32
}

// Tree is the CL-tree index over one graph.
type Tree struct {
	g      *graph.Graph
	root   *Node
	nodeOf []*Node
	core   []int32
	nodes  int
}

// Build constructs the CL-tree for g.
func Build(g *graph.Graph) *Tree {
	n := g.N()
	core := kcore.Decompose(g)
	maxCore := kcore.Degeneracy(core)

	// Bucket vertices by core number.
	buckets := make([][]int32, maxCore+1)
	for v := 0; v < n; v++ {
		c := core[v]
		buckets[c] = append(buckets[c], int32(v))
	}

	uf := ds.NewUnionFind(n)
	added := make([]bool, n)
	top := make(map[int32][]*Node) // UF root -> unparented top nodes of that component
	nodeOf := make([]*Node, n)
	t := &Tree{g: g, nodeOf: nodeOf, core: core}

	for c := maxCore; c >= 1; c-- {
		level := buckets[c]
		for _, v := range level {
			added[v] = true
		}
		for _, v := range level {
			for _, u := range g.Neighbors(v) {
				if !added[u] {
					continue
				}
				ru, rv := uf.Find(u), uf.Find(v)
				if ru == rv {
					continue
				}
				r, _ := uf.Union(ru, rv)
				other := ru
				if r == ru {
					other = rv
				}
				if tops := top[other]; len(tops) > 0 {
					top[r] = append(top[r], tops...)
					delete(top, other)
				}
			}
		}
		// Group this level's vertices by component, in first-seen order for
		// determinism.
		var roots []int32
		groups := make(map[int32][]int32)
		for _, v := range level {
			r := uf.Find(v)
			if _, seen := groups[r]; !seen {
				roots = append(roots, r)
			}
			groups[r] = append(groups[r], v)
		}
		for _, r := range roots {
			vs := groups[r]
			sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
			node := &Node{Core: c, Vertices: vs, Children: top[r]}
			for _, ch := range node.Children {
				ch.Parent = node
			}
			for _, v := range vs {
				nodeOf[v] = node
			}
			top[r] = []*Node{node}
			t.nodes++
		}
	}

	// Root: the single core-0 node (isolated vertices), children = every
	// remaining component top, ordered by smallest vertex for determinism.
	root := &Node{Core: 0, Vertices: buckets[0]}
	var tops []*Node
	for _, nodes := range top {
		tops = append(tops, nodes...)
	}
	sort.Slice(tops, func(i, j int) bool { return minVertex(tops[i]) < minVertex(tops[j]) })
	root.Children = tops
	for _, ch := range tops {
		ch.Parent = root
	}
	for _, v := range root.Vertices {
		nodeOf[v] = root
	}
	t.nodes++
	t.root = root

	t.buildInverted()
	return t
}

func minVertex(n *Node) int32 {
	m := int32(1<<31 - 1)
	if len(n.Vertices) > 0 {
		m = n.Vertices[0]
	}
	for _, ch := range n.Children {
		if cm := minVertex(ch); cm < m {
			m = cm
		}
	}
	return m
}

// buildInverted fills each node's keyword inverted list from the graph.
func (t *Tree) buildInverted() {
	var fill func(n *Node)
	fill = func(n *Node) {
		total := 0
		for _, v := range n.Vertices {
			total += len(t.g.Keywords(v))
		}
		if total > 0 {
			n.invKw = make([]int32, 0, total)
			n.invV = make([]int32, 0, total)
			// Vertices ascending and keyword sets sorted; gather then sort by
			// (kw, v).
			type pair struct{ kw, v int32 }
			pairs := make([]pair, 0, total)
			for _, v := range n.Vertices {
				for _, w := range t.g.Keywords(v) {
					pairs = append(pairs, pair{w, v})
				}
			}
			sort.Slice(pairs, func(i, j int) bool {
				if pairs[i].kw != pairs[j].kw {
					return pairs[i].kw < pairs[j].kw
				}
				return pairs[i].v < pairs[j].v
			})
			for _, p := range pairs {
				n.invKw = append(n.invKw, p.kw)
				n.invV = append(n.invV, p.v)
			}
		}
		for _, ch := range n.Children {
			fill(ch)
		}
	}
	fill(t.root)
}

// VerticesWithKeyword returns the node-local vertices carrying keyword w
// (ascending). The slice aliases index storage.
func (n *Node) VerticesWithKeyword(w int32) []int32 {
	lo := sort.Search(len(n.invKw), func(i int) bool { return n.invKw[i] >= w })
	hi := sort.Search(len(n.invKw), func(i int) bool { return n.invKw[i] > w })
	return n.invV[lo:hi]
}

// KeywordCount returns how many node-local vertices carry keyword w.
func (n *Node) KeywordCount(w int32) int { return len(n.VerticesWithKeyword(w)) }

// Graph returns the indexed graph.
func (t *Tree) Graph() *graph.Graph { return t.g }

// Root returns the core-0 root node.
func (t *Tree) Root() *Node { return t.root }

// NodeOf returns the node whose Vertices contain v.
func (t *Tree) NodeOf(v int32) *Node { return t.nodeOf[v] }

// CoreNumbers returns the core-number array computed during Build. Callers
// must not modify it.
func (t *Tree) CoreNumbers() []int32 { return t.core }

// NumNodes returns the number of tree nodes.
func (t *Tree) NumNodes() int { return t.nodes }

// Depth returns the maximum root-to-leaf depth (root = 1).
func (t *Tree) Depth() int {
	var walk func(n *Node) int
	walk = func(n *Node) int {
		d := 1
		for _, ch := range n.Children {
			if cd := walk(ch) + 1; cd > d {
				d = cd
			}
		}
		return d
	}
	return walk(t.root)
}

// Anchor returns the root of the smallest subtree that spells out the
// connected component of the k-core containing q — the candidate universe of
// every ACQ query ("The CL-tree allows us to locate a specific k-core ...
// efficiently"). It returns nil when core(q) < k.
func (t *Tree) Anchor(q, k int32) *Node {
	if q < 0 || int(q) >= len(t.core) || t.core[q] < k {
		return nil
	}
	n := t.nodeOf[q]
	for n.Parent != nil && n.Parent.Core >= k {
		n = n.Parent
	}
	return n
}

// SubtreeVertices appends all vertices in the subtree rooted at n to dst and
// returns it. With a nil dst it allocates exactly.
func (t *Tree) SubtreeVertices(n *Node, dst []int32) []int32 {
	if dst == nil {
		dst = make([]int32, 0, t.subtreeSize(n))
	}
	var walk func(x *Node)
	walk = func(x *Node) {
		dst = append(dst, x.Vertices...)
		for _, ch := range x.Children {
			walk(ch)
		}
	}
	walk(n)
	return dst
}

func (t *Tree) subtreeSize(n *Node) int {
	sz := len(n.Vertices)
	for _, ch := range n.Children {
		sz += t.subtreeSize(ch)
	}
	return sz
}

// SubtreeKeywordVertices appends the subtree vertices carrying keyword w to
// dst (unsorted across nodes) and returns it.
func (t *Tree) SubtreeKeywordVertices(n *Node, w int32, dst []int32) []int32 {
	var walk func(x *Node)
	walk = func(x *Node) {
		dst = append(dst, x.VerticesWithKeyword(w)...)
		for _, ch := range x.Children {
			walk(ch)
		}
	}
	walk(n)
	return dst
}

// SubtreeKeywordCount returns how many subtree vertices carry keyword w.
func (t *Tree) SubtreeKeywordCount(n *Node, w int32) int {
	cnt := n.KeywordCount(w)
	for _, ch := range n.Children {
		cnt += t.SubtreeKeywordCount(ch, w)
	}
	return cnt
}

// Bytes estimates the retained index size in bytes (E6's "linear space"
// measurement).
func (t *Tree) Bytes() int64 {
	var b int64
	b += int64(len(t.nodeOf)) * 8
	b += int64(len(t.core)) * 4
	var walk func(n *Node)
	walk = func(n *Node) {
		b += 64 // struct overhead
		b += int64(len(n.Vertices)) * 4
		b += int64(len(n.invKw)) * 8
		b += int64(len(n.Children)) * 8
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	walk(t.root)
	return b
}

// Validate checks the structural invariants of the index against its graph;
// tests and the upload path use it. It verifies that (1) node vertex sets
// partition V, (2) every node's vertices have core number == node.Core,
// (3) children have strictly larger core numbers, (4) each node's subtree is
// exactly the connected component in H_{node.Core} of any of its vertices
// (checked for non-root nodes), and (5) inverted lists agree with the graph.
func (t *Tree) Validate() error {
	return t.validate()
}
