package cltree

import (
	"fmt"

	"cexplorer/internal/graph"
)

// Flat is the pointer-free, arena form of a CL-tree: nodes laid out in
// preorder with their vertex lists and inverted keyword lists concatenated
// into shared arenas. It is the shape internal/snapshot persists — every
// field is one contiguous slice, so serialization is a handful of bulk
// writes and loading is a handful of bulk reads plus pointer stitching,
// with no per-node decode and no re-sort of the inverted lists.
//
// The older WriteTo/Read pair (serial.go) remains for standalone index
// files; Flat is strictly richer (it carries the inverted lists, which
// WriteTo drops and Read rebuilds with a keyword scan + sort).
type Flat struct {
	// Per-node arrays, preorder. Parents[i] is the preorder index of node
	// i's parent, -1 for the root (index 0).
	Cores   []int32
	Parents []int32

	// Vertex lists: node i owns Verts[VertOff[i]:VertOff[i+1]].
	VertOff []int32 // len nodes+1
	Verts   []int32 // len n

	// Inverted keyword lists, sorted by (keyword, vertex) within each node:
	// node i owns InvKw/InvV[InvOff[i]:InvOff[i+1]].
	InvOff []int32 // len nodes+1
	InvKw  []int32
	InvV   []int32
}

// Flatten converts the tree to its arena form. The arena slices are fresh
// copies of index data; the result is safe to retain.
func (t *Tree) Flatten() Flat {
	f := Flat{
		Cores:   make([]int32, 0, t.nodes),
		Parents: make([]int32, 0, t.nodes),
		VertOff: make([]int32, 1, t.nodes+1),
		Verts:   make([]int32, 0, t.g.N()),
		InvOff:  make([]int32, 1, t.nodes+1),
	}
	var walk func(n *Node, parent int32)
	walk = func(n *Node, parent int32) {
		f.Cores = append(f.Cores, n.Core)
		f.Parents = append(f.Parents, parent)
		f.Verts = append(f.Verts, n.Vertices...)
		f.VertOff = append(f.VertOff, int32(len(f.Verts)))
		f.InvKw = append(f.InvKw, n.invKw...)
		f.InvV = append(f.InvV, n.invV...)
		f.InvOff = append(f.InvOff, int32(len(f.InvKw)))
		self := int32(len(f.Cores) - 1)
		for _, ch := range n.Children {
			walk(ch, self)
		}
	}
	walk(t.root, -1)
	return f
}

// FromFlat reassembles a Tree over g from its arena form, adopting the
// slices without copying (node vertex and inverted lists alias the arenas).
// It checks the structural envelope — preorder parent links, arena spans,
// vertex partition, strictly increasing child cores — so a corrupt input
// yields an error rather than a panic; the full semantic check against the
// graph remains available via Validate.
func FromFlat(g *graph.Graph, f Flat) (*Tree, error) {
	nodes := len(f.Cores)
	if nodes == 0 {
		return nil, fmt.Errorf("cltree flat: no nodes")
	}
	if len(f.Parents) != nodes {
		return nil, fmt.Errorf("cltree flat: %d parents for %d nodes", len(f.Parents), nodes)
	}
	if len(f.VertOff) != nodes+1 || len(f.InvOff) != nodes+1 {
		return nil, fmt.Errorf("cltree flat: offset arrays sized %d/%d, want %d",
			len(f.VertOff), len(f.InvOff), nodes+1)
	}
	n := g.N()
	if len(f.Verts) != n {
		return nil, fmt.Errorf("cltree flat: %d vertices for a graph with n=%d", len(f.Verts), n)
	}
	if f.VertOff[0] != 0 || int(f.VertOff[nodes]) != len(f.Verts) {
		return nil, fmt.Errorf("cltree flat: vertex offsets do not span arena")
	}
	if len(f.InvKw) != len(f.InvV) {
		return nil, fmt.Errorf("cltree flat: inverted arenas disagree (%d keywords, %d vertices)",
			len(f.InvKw), len(f.InvV))
	}
	if f.InvOff[0] != 0 || int(f.InvOff[nodes]) != len(f.InvKw) {
		return nil, fmt.Errorf("cltree flat: inverted offsets do not span arena")
	}
	if f.Parents[0] != -1 {
		return nil, fmt.Errorf("cltree flat: root parent is %d, want -1", f.Parents[0])
	}
	// Full monotonicity pass before any arena slicing: with the endpoints
	// pinned above, monotone offsets are exactly the in-bounds ones. An
	// adjacent check interleaved with slicing would slice a corrupt spike
	// before reaching the pair that exposes it.
	for i := 0; i < nodes; i++ {
		if f.VertOff[i] > f.VertOff[i+1] || f.InvOff[i] > f.InvOff[i+1] {
			return nil, fmt.Errorf("cltree flat: offsets not monotone at node %d", i)
		}
	}

	t := &Tree{
		g:      g,
		nodeOf: make([]*Node, n),
		core:   make([]int32, n),
		nodes:  nodes,
	}
	built := make([]*Node, nodes)
	for i := 0; i < nodes; i++ {
		nd := &Node{
			Core:     f.Cores[i],
			Vertices: f.Verts[f.VertOff[i]:f.VertOff[i+1]],
			invKw:    f.InvKw[f.InvOff[i]:f.InvOff[i+1]],
			invV:     f.InvV[f.InvOff[i]:f.InvOff[i+1]],
		}
		built[i] = nd
		if i > 0 {
			p := f.Parents[i]
			if p < 0 || p >= int32(i) {
				return nil, fmt.Errorf("cltree flat: node %d has non-preorder parent %d", i, p)
			}
			parent := built[p]
			if nd.Core <= parent.Core {
				return nil, fmt.Errorf("cltree flat: node %d core %d not above parent core %d",
					i, nd.Core, parent.Core)
			}
			nd.Parent = parent
			parent.Children = append(parent.Children, nd)
		}
		for _, v := range nd.Vertices {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("cltree flat: vertex %d out of range", v)
			}
			if t.nodeOf[v] != nil {
				return nil, fmt.Errorf("cltree flat: vertex %d in two nodes", v)
			}
			t.nodeOf[v] = nd
			t.core[v] = nd.Core
		}
	}
	for v := 0; v < n; v++ {
		if t.nodeOf[v] == nil {
			return nil, fmt.Errorf("cltree flat: vertex %d missing from index", v)
		}
	}
	t.root = built[0]
	return t, nil
}
