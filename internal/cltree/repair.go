package cltree

import (
	"cexplorer/internal/graph"
)

// Localized CL-tree maintenance under streaming edge mutations.
//
// The tree's shape is a function of two things only: the per-vertex core
// numbers and the component structure of each k-core H_k. A mutation batch
// therefore leaves the tree bit-for-bit reusable when (a) no core number
// moved, (b) no vertex was added, and (c) no component of any H_k merged or
// split. Repair proves (c) locally, per edge op, without touching the rest
// of the graph:
//
//   - An inserted edge {u,v} can only merge components, and only in H_k for
//     k ≤ A = min(core(u), core(v)). If u and v already share the old
//     tree's anchor node at level A, they were already in one component of
//     H_A — and, since k-cores nest, in one component of every H_k below.
//     The insert changes nothing structural.
//   - A deleted edge can only split components, again only for k ≤ A. If u
//     and v are still connected inside H_A of the post-mutation graph
//     (checked by a bidirectional BFS over vertices with core ≥ A), no H_k
//     splits: connectivity in H_A implies connectivity in every larger
//     H_k below it, and the witness path survives in all of them.
//
// The per-op checks compose across a batch: inserts are checked against the
// old partition (merges can only coarsen it) and deletes against the final
// graph (a deleted edge whose endpoints reconnect through edges inserted in
// the same batch keeps its component whole). When every op passes, the new
// tree shares every node of the old one — O(1) repair. Otherwise the
// skeleton is rebuilt from the (incrementally maintained) core numbers,
// while every node whose vertex set is unchanged adopts the old node's
// inverted keyword lists, so only the lists the repair can no longer trust
// are re-sorted.

// EdgeOp records one applied edge mutation for Repair's locality analysis.
type EdgeOp struct {
	U, V   int32
	Insert bool // true for an insertion, false for a deletion
}

// Repair produces a tree valid for g — the post-mutation graph — given old
// (the tree of the pre-mutation graph), the maintained core numbers of g
// (adopted, not copied), the batch's maximum core-change level (see below;
// 0 when no core number moved), how many vertices the batch added, and the
// batch's edge ops. The boolean result reports whether the structural fast
// path applied (the returned tree shares all nodes with old) or a rebuild
// ran.
//
// changedLevel is the deepest tree level a core-number change can have
// touched: for each promoted vertex its new core, for each demoted vertex
// its old core (new+1), maxed over the batch. Together with each edge op's
// min-endpoint core it bounds the levels whose k-core components can
// differ from old's, so the rebuild is a frontier rebuild: every subtree
// strictly deeper than the bound is preserved (skeleton cloned, arenas
// shared), and the union-find never walks the dense deep-core edges at
// all.
//
// Old trees are never modified; pinned queries on previous versions are
// unaffected. Shared node slices are immutable after build on both paths.
// changed lists the vertices whose core number the batch moved, but is
// consulted only for single-op batches (where a surgical level-move patch
// may apply — see patchLevelMove); multi-op batches may pass nil.
func Repair(old *Tree, g *graph.Graph, core []int32, changedLevel int32, verticesAdded int, ops []EdgeOp, changed []int32) (*Tree, bool) {
	if old != nil && changedLevel == 0 && verticesAdded == 0 && structureUnchanged(old, g, core, ops) {
		return &Tree{
			g:      g,
			root:   old.root,
			nodeOf: old.nodeOf,
			core:   core,
			nodes:  old.nodes,
		}, true
	}
	if old != nil && verticesAdded == 0 && len(ops) == 1 && len(changed) > 0 {
		if t := patchLevelMove(old, g, core, changed, ops[0]); t != nil {
			return t, false
		}
	}
	upTo := changedLevel
	for _, op := range ops {
		a := core[op.U]
		if core[op.V] < a {
			a = core[op.V]
		}
		// a uses final core values; an endpoint whose core moved during the
		// batch is covered by changedLevel, which tracks every level its
		// trajectory touched.
		if a > upTo {
			upTo = a
		}
	}
	if old == nil {
		return buildTree(g, core, nil, -1), false
	}
	return buildTree(g, core, old, upTo), false
}

// patchLevelMove is the surgical repair for the most common non-trivial
// mutation: a single edge op whose only effect on the hierarchy is moving
// the changed vertices between two adjacent levels of one branch — every
// single-edge core promotion or demotion has this shape. When the
// locality conditions below all hold, the new tree is the old one with the
// node skeleton cloned (struct copies; vertex and inverted arenas shared),
// the source node's lists spliced down by the moved vertices, and the
// destination node's spliced up — no union-find, no level scans. Any
// condition failing returns nil and the caller falls back to the frontier
// rebuild, so this path never has to handle a case it cannot prove.
func patchLevelMove(old *Tree, g *graph.Graph, core []int32, changed []int32, op EdgeOp) *Tree {
	newLvl := core[changed[0]]
	inChanged := func(x int32) bool { return containsSorted(changed, x) }
	for _, w := range changed[1:] {
		if core[w] != newLvl {
			return nil // mixed levels: not a pure level move
		}
	}

	var src, dst *Node
	if op.Insert {
		// Promotion: changed rose from newLvl-1 into newLvl.
		r := newLvl - 1
		src = old.nodeOf[changed[0]]
		if src == nil || src.Core != r {
			return nil
		}
		for _, w := range changed[1:] {
			if old.nodeOf[w] != src {
				return nil
			}
		}
		if len(changed) == len(src.Vertices) && src != old.root {
			return nil // source node would empty: structural change
		}
		// No component of H_k (k ≤ r) may merge: the inserted edge's
		// endpoints must already have shared their component at the
		// deepest level the edge reaches in the old graph.
		aOld := oldCoreOf(core, inChanged, op.U)
		if b := oldCoreOf(core, inChanged, op.V); b < aOld {
			aOld = b
		}
		if au, av := old.Anchor(op.U, aOld), old.Anchor(op.V, aOld); au == nil || au != av {
			return nil
		}
		// The promoted set must attach to at most one existing component of
		// H_{newLvl} and every promoted vertex must reach it; with no
		// attachment at all, the promoted set itself becomes one new
		// deepest node under src (the "grew a new top core" shape, e.g.
		// promoting part of the graph's maximum core one level further).
		for _, w := range changed {
			ok := true
			g.ForEachNeighbor(w, func(x int32) bool {
				if core[x] < newLvl || inChanged(x) {
					return true
				}
				a := old.Anchor(x, newLvl)
				if dst == nil {
					dst = a
				}
				if a != dst {
					ok = false
					return false
				}
				return true
			})
			if !ok {
				return nil
			}
		}
		if dst == nil {
			if !connectedAmong(g, changed) {
				return nil // several new components would form
			}
			return cloneRestructure(old, g, core, src, nil, changed, modeCreate, newLvl)
		}
		if dst.Core != newLvl || dst.Parent != src {
			return nil
		}
		if !movedSetAttaches(g, core, changed, old, dst, newLvl) {
			return nil
		}
	} else {
		// Demotion: changed fell from newLvl+1 to newLvl.
		r := newLvl + 1
		src = old.nodeOf[changed[0]]
		if src == nil || src.Core != r {
			return nil
		}
		for _, w := range changed[1:] {
			if old.nodeOf[w] != src {
				return nil
			}
		}
		dst = src.Parent
		if dst == nil || dst.Core != newLvl {
			return nil // level skip below src: a node would need inserting
		}
		// No component of H_k (k ≤ newLvl) may split: the deleted edge's
		// endpoints must still be connected inside H_{newLvl} (vertex sets
		// there are unchanged, so the one removed edge is the only risk).
		if newLvl >= 1 && !connectedWithin(g, core, newLvl, op.U, op.V) {
			return nil
		}
		if len(changed) == len(src.Vertices) {
			// The whole node demotes: a childless src simply dissolves into
			// its parent (the inverse of the node-create case above);
			// anything with children would need reparenting — bail.
			if len(src.Children) > 0 {
				return nil
			}
			return cloneRestructure(old, g, core, src, dst, changed, modeDelete, 0)
		}
		// The component of H_r that lost the demoted vertices (and possibly
		// the edge) must remain a single piece.
		if !componentIntact(g, core, old, src, len(changed), r) {
			return nil
		}
	}
	return cloneRestructure(old, g, core, src, dst, changed, modeMove, 0)
}

// connectedAmong reports whether the vertices of set form one connected
// subgraph of g using only edges inside the set.
func connectedAmong(g *graph.Graph, set []int32) bool {
	if len(set) == 0 {
		return false
	}
	seen := map[int32]bool{set[0]: true}
	queue := []int32{set[0]}
	for len(queue) > 0 {
		w := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, x := range g.Neighbors(w) {
			if containsSorted(set, x) && !seen[x] {
				seen[x] = true
				queue = append(queue, x)
			}
		}
	}
	return len(seen) == len(set)
}

// oldCoreOf recovers a vertex's pre-batch core number: changed vertices of
// an insert were one level lower (this helper is only used on the insert
// path).
func oldCoreOf(core []int32, inChanged func(int32) bool, x int32) int32 {
	if inChanged(x) {
		return core[x] - 1
	}
	return core[x]
}

// movedSetAttaches verifies every promoted vertex reaches the destination
// component through promoted vertices and direct supporters: a promoted
// blob with only internal support would form a new H_{newLvl} component of
// its own, which the surgical patch must not absorb into dst.
func movedSetAttaches(g *graph.Graph, core []int32, changed []int32, old *Tree, dst *Node, newLvl int32) bool {
	attached := make(map[int32]bool, len(changed))
	queue := make([]int32, 0, len(changed))
	for _, w := range changed {
		g.ForEachNeighbor(w, func(x int32) bool {
			if core[x] >= newLvl && !containsSorted(changed, x) && old.Anchor(x, newLvl) == dst {
				if !attached[w] {
					attached[w] = true
					queue = append(queue, w)
				}
				return false
			}
			return true
		})
	}
	for len(queue) > 0 {
		w := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		g.ForEachNeighbor(w, func(x int32) bool {
			if containsSorted(changed, x) && !attached[x] {
				attached[x] = true
				queue = append(queue, x)
			}
			return true
		})
	}
	return len(attached) == len(changed)
}

// componentIntact checks that src's k-core component minus the demoted
// vertices is still one connected piece of H_r in g: a BFS from any
// remaining vertex over core ≥ r must reach them all.
//
// The walk costs O(component), which is the deep-core region — exactly the
// region a frontier rebuild (whose cost is the shallow region, core ≤ r)
// gets to skip. The two are complementary, so the BFS runs whenever the
// component is at most two thirds of the graph (high- and mid-level
// demotions, where the frontier would reprocess almost everything) and
// bails to the frontier only for shallow components, where the frontier is
// nearly free.
func componentIntact(g *graph.Graph, core []int32, old *Tree, src *Node, demoted int, r int32) bool {
	sub := old.SubtreeVertices(src, nil)
	want := len(sub) - demoted
	if want <= 0 || want > 2*g.N()/3 {
		return false
	}
	var start int32 = -1
	for _, v := range sub {
		if core[v] >= r {
			start = v
			break
		}
	}
	if start < 0 {
		return false
	}
	seen := make([]bool, g.N())
	seen[start] = true
	queue := []int32{start}
	reached := 1
	for len(queue) > 0 && reached <= want {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, x := range g.Neighbors(v) {
			if core[x] >= r && !seen[x] {
				seen[x] = true
				reached++
				queue = append(queue, x)
			}
		}
	}
	return reached == want
}

// Surgical restructure modes.
const (
	modeMove   = iota // moved leaves src's vertex list and joins dst's
	modeCreate        // moved leaves src and becomes a new child node of src
	modeDelete        // src (childless, fully demoted) dissolves into dst
)

// cloneRestructure copies the old tree's node skeleton and applies one
// local restructuring: a vertex move between two nodes, the creation of one
// new deepest node, or the dissolution of one childless node. Every
// untouched node shares its vertex and inverted arenas with the old tree;
// the affected nodes' inverted lists are spliced, not re-sorted.
func cloneRestructure(old *Tree, g *graph.Graph, core []int32, src, dst *Node, moved []int32, mode int, createCore int32) *Tree {
	t := &Tree{g: g, core: core, nodeOf: make([]*Node, g.N())}
	filler := newInvFiller(g.Vocab().Len())
	respliceSub := func(on *Node, nn *Node) {
		nn.Vertices = subtractSorted(on.Vertices, moved)
		if kw, vs, ok := spliceLists(g, on, moved, nil); ok {
			nn.invKw, nn.invV = kw, vs
		} else {
			nn.invKw, nn.invV = nil, nil
			filler.fill(g, nn)
		}
	}
	respliceAdd := func(on *Node, nn *Node) {
		nn.Vertices = mergeSorted(on.Vertices, moved)
		if kw, vs, ok := spliceLists(g, on, nil, moved); ok {
			nn.invKw, nn.invV = kw, vs
		} else {
			nn.invKw, nn.invV = nil, nil
			filler.fill(g, nn)
		}
	}
	var walk func(on *Node) *Node
	walk = func(on *Node) *Node {
		nn := &Node{Core: on.Core, Vertices: on.Vertices, invKw: on.invKw, invV: on.invV}
		switch {
		case on == src && mode != modeDelete:
			respliceSub(on, nn)
		case on == dst && mode != modeCreate:
			respliceAdd(on, nn)
		}
		for _, v := range nn.Vertices {
			t.nodeOf[v] = nn
		}
		keep := on.Children
		if mode == modeDelete && on == dst {
			keep = nil
			for _, ch := range on.Children {
				if ch != src {
					keep = append(keep, ch)
				}
			}
		}
		extra := 0
		if mode == modeCreate && on == src {
			extra = 1
		}
		if len(keep)+extra > 0 {
			nn.Children = make([]*Node, 0, len(keep)+extra)
			for _, ch := range keep {
				c := walk(ch)
				c.Parent = nn
				nn.Children = append(nn.Children, c)
			}
			if extra == 1 {
				fresh := &Node{Core: createCore, Vertices: moved, Parent: nn}
				filler.fill(g, fresh)
				for _, v := range moved {
					t.nodeOf[v] = fresh
				}
				nn.Children = append(nn.Children, fresh)
				t.nodes++
			}
		}
		t.nodes++
		return nn
	}
	t.root = walk(old.root)
	return t
}

// subtractSorted returns a ∖ b for ascending slices (b ⊆ a expected).
func subtractSorted(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)-len(b))
	j := 0
	for _, v := range a {
		if j < len(b) && b[j] == v {
			j++
			continue
		}
		out = append(out, v)
	}
	return out
}

// mergeSorted merges two disjoint ascending slices.
func mergeSorted(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		if j >= len(b) || (i < len(a) && a[i] < b[j]) {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	return out
}

func containsSorted(s []int32, v int32) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == v
}

// structureUnchanged reports whether every edge op provably left the
// component structure of every H_k intact (see the package comment above
// for why the per-op checks are sound across a whole batch).
func structureUnchanged(old *Tree, g *graph.Graph, core []int32, ops []EdgeOp) bool {
	for _, op := range ops {
		a := core[op.U]
		if core[op.V] < a {
			a = core[op.V]
		}
		if a < 1 {
			return false
		}
		if op.Insert {
			au, av := old.Anchor(op.U, a), old.Anchor(op.V, a)
			if au == nil || au != av {
				return false
			}
		} else if !connectedWithin(g, core, a, op.U, op.V) {
			return false
		}
	}
	return true
}

// connectedWithin reports whether u and v are connected inside H_k of g
// (the subgraph induced by vertices with core ≥ k), via bidirectional BFS:
// the smaller frontier expands each round, so the walk is bounded by the
// smaller side of any separation rather than the whole component.
func connectedWithin(g *graph.Graph, core []int32, k, u, v int32) bool {
	if u == v {
		return true
	}
	if core[u] < k || core[v] < k {
		return false
	}
	// Triangle shortcut: in clustered graphs a removed edge almost always
	// leaves a two-hop path through a common neighbor; one sorted-list
	// intersection answers that without any BFS.
	nu, nv := g.Neighbors(u), g.Neighbors(v)
	for i, j := 0, 0; i < len(nu) && j < len(nv); {
		switch {
		case nu[i] == nv[j]:
			if core[nu[i]] >= k {
				return true
			}
			i++
			j++
		case nu[i] < nv[j]:
			i++
		default:
			j++
		}
	}
	const sideU, sideV = 1, 2
	side := map[int32]uint8{u: sideU, v: sideV}
	frontU := []int32{u}
	frontV := []int32{v}
	for len(frontU) > 0 && len(frontV) > 0 {
		front, mine, theirs := frontU, uint8(sideU), uint8(sideV)
		if len(frontV) < len(frontU) {
			front, mine, theirs = frontV, sideV, sideU
		}
		var next []int32
		for _, w := range front {
			for _, x := range g.Neighbors(w) {
				if core[x] < k {
					continue
				}
				switch side[x] {
				case theirs:
					return true
				case mine:
					continue
				}
				side[x] = mine
				next = append(next, x)
			}
		}
		if mine == sideU {
			frontU = next
		} else {
			frontV = next
		}
	}
	return false
}
