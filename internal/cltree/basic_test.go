package cltree

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"cexplorer/internal/gen"
)

// pathSignature returns, for every vertex, the chain of (core, vertices)
// node identities from its node up to the root. Two CL-trees are the same
// tree (up to child ordering) iff all path signatures match.
func pathSignature(t *Tree) map[int32]string {
	sig := make(map[int32]string, t.g.N())
	nodeKey := func(n *Node) string {
		vs := append([]int32(nil), n.Vertices...)
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		return fmt.Sprintf("%d:%v", n.Core, vs)
	}
	for v := int32(0); v < int32(t.g.N()); v++ {
		key := ""
		for n := t.NodeOf(v); n != nil; n = n.Parent {
			key += nodeKey(n) + "|"
		}
		sig[v] = key
	}
	return sig
}

func TestBuildBasicMatchesBuildFigure5(t *testing.T) {
	g := gen.Figure5()
	a := Build(g)
	b := BuildBasic(g)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != b.NumNodes() || a.Depth() != b.Depth() {
		t.Fatalf("shape differs: %d/%d vs %d/%d", a.NumNodes(), a.Depth(), b.NumNodes(), b.Depth())
	}
	if !reflect.DeepEqual(pathSignature(a), pathSignature(b)) {
		t.Fatal("trees differ")
	}
}

// TestBuildBasicMatchesBuildRandom: the O(m·α) bottom-up construction and
// the O(k·m) top-down construction must produce identical trees on random
// attributed graphs — the central index-construction equivalence.
func TestBuildBasicMatchesBuildRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAttributedGraph(rng, 2+rng.Intn(80))
		a := Build(g)
		b := BuildBasic(g)
		if b.Validate() != nil {
			return false
		}
		if a.NumNodes() != b.NumNodes() {
			return false
		}
		return reflect.DeepEqual(pathSignature(a), pathSignature(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestBuildBasicQueriesAgree: ACQ anchors agree between the constructions.
func TestBuildBasicQueriesAgree(t *testing.T) {
	g := gen.GenerateDBLP(gen.SmallDBLPConfig()).Graph
	a := Build(g)
	b := BuildBasic(g)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		q := int32(rng.Intn(g.N()))
		k := int32(rng.Intn(6))
		na, nb := a.Anchor(q, k), b.Anchor(q, k)
		if (na == nil) != (nb == nil) {
			t.Fatalf("anchor presence differs at q=%d k=%d", q, k)
		}
		if na == nil {
			continue
		}
		va := a.SubtreeVertices(na, nil)
		vb := b.SubtreeVertices(nb, nil)
		sort.Slice(va, func(i, j int) bool { return va[i] < va[j] })
		sort.Slice(vb, func(i, j int) bool { return vb[i] < vb[j] })
		if !reflect.DeepEqual(va, vb) {
			t.Fatalf("anchor subtree differs at q=%d k=%d", q, k)
		}
	}
}
