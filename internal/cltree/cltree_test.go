package cltree

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"cexplorer/internal/gen"
	"cexplorer/internal/graph"
	"cexplorer/internal/kcore"
)

// TestBuildFigure5 checks the CL-tree against Figure 5(b) of the paper:
// root (core 0) holds J; one child subtree is FG→E→ABCD; the other is HI.
func TestBuildFigure5(t *testing.T) {
	g := gen.Figure5()
	tr := Build(g)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	root := tr.Root()
	if root.Core != 0 {
		t.Fatalf("root core = %d", root.Core)
	}
	if names := vertexNames(g, root.Vertices); !reflect.DeepEqual(names, []string{"J"}) {
		t.Fatalf("root vertices = %v, want [J]", names)
	}
	if len(root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(root.Children))
	}
	// Children sorted by min vertex: the A-side subtree first, then H-I.
	fg := root.Children[0]
	hi := root.Children[1]
	if names := vertexNames(g, fg.Vertices); !reflect.DeepEqual(names, []string{"F", "G"}) {
		t.Fatalf("level-1 node = %v, want [F G]", names)
	}
	if names := vertexNames(g, hi.Vertices); !reflect.DeepEqual(names, []string{"H", "I"}) {
		t.Fatalf("second level-1 node = %v, want [H I]", names)
	}
	if len(fg.Children) != 1 || len(hi.Children) != 0 {
		t.Fatalf("children counts wrong: %d, %d", len(fg.Children), len(hi.Children))
	}
	e := fg.Children[0]
	if e.Core != 2 || !reflect.DeepEqual(vertexNames(g, e.Vertices), []string{"E"}) {
		t.Fatalf("level-2 node = %v core %d", vertexNames(g, e.Vertices), e.Core)
	}
	if len(e.Children) != 1 {
		t.Fatalf("E children = %d", len(e.Children))
	}
	abcd := e.Children[0]
	if abcd.Core != 3 || !reflect.DeepEqual(vertexNames(g, abcd.Vertices), []string{"A", "B", "C", "D"}) {
		t.Fatalf("leaf = %v core %d", vertexNames(g, abcd.Vertices), abcd.Core)
	}
	if tr.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", tr.NumNodes())
	}
	if tr.Depth() != 4 {
		t.Fatalf("Depth = %d, want 4", tr.Depth())
	}
}

func vertexNames(g *graph.Graph, vs []int32) []string {
	names := make([]string, len(vs))
	for i, v := range vs {
		names[i] = g.Name(v)
	}
	sort.Strings(names)
	return names
}

func TestInvertedLists(t *testing.T) {
	g := gen.Figure5()
	tr := Build(g)
	// The ABCD node: keyword x appears on A,B,C,D; w only on A; z only on D.
	abcd := tr.NodeOf(0)
	w, _ := g.Vocab().ID("w")
	x, _ := g.Vocab().ID("x")
	z, _ := g.Vocab().ID("z")
	if got := abcd.KeywordCount(x); got != 4 {
		t.Fatalf("count(x) = %d, want 4", got)
	}
	if got := abcd.VerticesWithKeyword(w); len(got) != 1 || got[0] != 0 {
		t.Fatalf("vertices(w) = %v", got)
	}
	if got := abcd.KeywordCount(z); got != 1 {
		t.Fatalf("count(z) = %d", got)
	}
	// Subtree counts include descendants: from the FG node, y covers
	// F,G,E,A,C,D = 6.
	y, _ := g.Vocab().ID("y")
	fg := tr.NodeOf(5)
	if got := tr.SubtreeKeywordCount(fg, y); got != 6 {
		t.Fatalf("subtree count(y) = %d, want 6", got)
	}
	vs := tr.SubtreeKeywordVertices(fg, y, nil)
	if len(vs) != 6 {
		t.Fatalf("subtree vertices(y) = %v", vs)
	}
}

func TestAnchor(t *testing.T) {
	g := gen.Figure5()
	tr := Build(g)
	// Anchor(A, 2) roots the 2-core component {A,B,C,D,E}.
	a := tr.Anchor(0, 2)
	if a == nil || a.Core != 2 {
		t.Fatalf("Anchor(A,2) = %+v", a)
	}
	vs := tr.SubtreeVertices(a, nil)
	if len(vs) != 5 {
		t.Fatalf("subtree = %v", vs)
	}
	// Anchor(A, 1) roots the whole left component {A..G}.
	a = tr.Anchor(0, 1)
	if a == nil || a.Core != 1 || len(tr.SubtreeVertices(a, nil)) != 7 {
		t.Fatalf("Anchor(A,1) wrong")
	}
	// Anchor(A, 0) is the root (whole graph, by the Figure-5 convention).
	if a = tr.Anchor(0, 0); a != tr.Root() {
		t.Fatal("Anchor(A,0) should be root")
	}
	// Anchor(F, 2): core(F)=1 < 2 → nil.
	if a = tr.Anchor(5, 2); a != nil {
		t.Fatalf("Anchor(F,2) = %+v", a)
	}
	// Out of range q.
	if tr.Anchor(-1, 0) != nil || tr.Anchor(99, 0) != nil {
		t.Fatal("out-of-range anchor should be nil")
	}
}

func randomAttributedGraph(rng *rand.Rand, n int) *graph.Graph {
	words := []string{"w", "x", "y", "z", "p", "q"}
	b := graph.NewBuilder(n, 0)
	for i := 0; i < n; i++ {
		nk := rng.Intn(4)
		kws := make([]string, 0, nk)
		for j := 0; j < nk; j++ {
			kws = append(kws, words[rng.Intn(len(words))])
		}
		b.AddVertex("", kws...)
	}
	m := rng.Intn(4 * n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.MustBuild()
}

// TestBuildValidatesRandom: the full invariant suite on random graphs —
// partition, core agreement, child ordering, subtree==component, inverted
// list fidelity.
func TestBuildValidatesRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAttributedGraph(rng, 2+rng.Intn(80))
		tr := Build(g)
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestAnchorMatchesConnectedKCore: for random (q,k), the anchor subtree must
// equal the connected k-core component of q.
func TestAnchorMatchesConnectedKCore(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAttributedGraph(rng, 2+rng.Intn(60))
		tr := Build(g)
		core := tr.CoreNumbers()
		for trial := 0; trial < 10; trial++ {
			q := int32(rng.Intn(g.N()))
			k := int32(rng.Intn(4))
			anchor := tr.Anchor(q, k)
			want := kcore.ConnectedKCore(g, core, q, k)
			if k == 0 {
				// Convention: anchor(·,0) is the whole graph as one root.
				if anchor != tr.Root() {
					return false
				}
				continue
			}
			if anchor == nil {
				if want != nil {
					return false
				}
				continue
			}
			got := tr.SubtreeVertices(anchor, nil)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	g := gen.GenerateDBLP(gen.SmallDBLPConfig()).Graph
	tr := Build(g)
	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	tr2, err := Read(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr2.NumNodes() != tr.NumNodes() || tr2.Depth() != tr.Depth() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			tr2.NumNodes(), tr2.Depth(), tr.NumNodes(), tr.Depth())
	}
	if !reflect.DeepEqual(tr.CoreNumbers(), tr2.CoreNumbers()) {
		t.Fatal("core numbers differ after round trip")
	}
}

func TestReadRejectsCorrupt(t *testing.T) {
	g := gen.Figure5()
	tr := Build(g)
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := Read(bytes.NewReader([]byte("XXXX")), g); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Read(bytes.NewReader(good[:8]), g); err == nil {
		t.Fatal("truncated header accepted")
	}
	if _, err := Read(bytes.NewReader(good[:len(good)-3]), g); err == nil {
		t.Fatal("truncated body accepted")
	}
	// Wrong graph size.
	b := graph.NewBuilder(0, 0)
	b.AddEdge(0, 1)
	other := b.MustBuild()
	if _, err := Read(bytes.NewReader(good), other); err == nil {
		t.Fatal("graph size mismatch accepted")
	}
}

// TestLinearGrowth sanity-checks the linear space/time claim at small
// scale: doubling n should not quadruple index size.
func TestLinearGrowth(t *testing.T) {
	g1 := gen.GNM(2000, 8000, 3)
	g2 := gen.GNM(4000, 16000, 3)
	b1 := Build(g1).Bytes()
	b2 := Build(g2).Bytes()
	ratio := float64(b2) / float64(b1)
	if ratio > 3.0 {
		t.Fatalf("index growth ratio %.2f for 2x input: not linear", ratio)
	}
}

func TestBuildDeterministic(t *testing.T) {
	g := gen.GenerateDBLP(gen.SmallDBLPConfig()).Graph
	t1, t2 := Build(g), Build(g)
	var b1, b2 bytes.Buffer
	if _, err := t1.WriteTo(&b1); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.WriteTo(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("two builds of the same graph serialized differently")
	}
}
