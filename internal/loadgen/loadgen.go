// Package loadgen is the open-loop load-generation harness for the serving
// stack: it fires requests at a configured arrival rate independent of how
// fast responses come back (the open-loop discipline — a slow server faces
// a growing backlog exactly as it would in production, instead of the
// closed-loop mercy of waiting for each response before sending the next),
// and reports completed/shed/error counts with latency percentiles.
//
// The harness is transport-agnostic: it drives any RequestFunc. The HTTP
// client lives in cmd/loadgen; tests drive in-process Explorer calls
// directly. Outcome classification is pluggable so a 429/ErrOverloaded shed
// — the admission controller doing its job — is tallied separately from a
// real failure.
package loadgen

import (
	"context"
	"math/rand"
	"slices"
	"sync"
	"time"
)

// RequestFunc issues one request and reports its error (nil on success).
type RequestFunc func(ctx context.Context) error

// Outcome classifies one completed request.
type Outcome int

const (
	// OK is a successful response.
	OK Outcome = iota
	// Shed is a load-shedding rejection (HTTP 429 / ErrOverloaded): the
	// server protecting its latency, not a failure.
	Shed
	// Failed is any other error.
	Failed
)

// Classifier maps a RequestFunc error to its outcome; nil errors are always
// OK and never reach the classifier. A nil Classifier treats every error as
// Failed.
type Classifier func(error) Outcome

// Config tunes one load-generation run.
type Config struct {
	// Rate is the arrival rate in requests per second. Required.
	Rate float64
	// Duration bounds the arrival window; in-flight requests are awaited
	// after it closes. Required.
	Duration time.Duration
	// Poisson draws exponential inter-arrival gaps (a Poisson process, the
	// usual open-system model) instead of a fixed-interval drumbeat.
	Poisson bool
	// Seed feeds the Poisson gap sequence; 0 means seed 1.
	Seed int64
	// Timeout bounds each request (0 = none).
	Timeout time.Duration
	// Classify tallies errors as Shed vs Failed; nil means all Failed.
	Classify Classifier
}

// Report is one run's result sheet. Latency quantiles cover completed
// requests of every outcome — a shed response is an answer the client
// waited for, so it belongs in the latency story.
type Report struct {
	Sent   int64 `json:"sent"`
	OK     int64 `json:"ok"`
	Shed   int64 `json:"shed"`
	Failed int64 `json:"failed"`
	// ElapsedMS is the wall time of the whole run, arrival window plus
	// drain; ThroughputRPS is OK completions per elapsed second.
	ElapsedMS     float64 `json:"elapsedMs"`
	ThroughputRPS float64 `json:"throughputRps"`
	P50MS         float64 `json:"p50Ms"`
	P90MS         float64 `json:"p90Ms"`
	P99MS         float64 `json:"p99Ms"`
	MaxMS         float64 `json:"maxMs"`
}

// Run fires requests open-loop per cfg until the duration elapses, waits
// for stragglers, and reports. ctx cancellation stops new arrivals and
// propagates to in-flight requests.
func Run(ctx context.Context, cfg Config, fn RequestFunc) Report {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	gap := func() time.Duration {
		if !cfg.Poisson {
			return interval
		}
		return time.Duration(rng.ExpFloat64() * float64(interval))
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		rep       Report
		wg        sync.WaitGroup
	)
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	// The schedule is absolute (next = previous arrival + gap, not "now +
	// gap"), so a slow spawn path doesn't silently lower the offered rate.
	next := start
	for next.Before(deadline) && ctx.Err() == nil {
		if d := time.Until(next); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			break
		}
		rep.Sent++
		wg.Add(1)
		go func() {
			defer wg.Done()
			rctx := ctx
			cancel := context.CancelFunc(func() {})
			if cfg.Timeout > 0 {
				rctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
			}
			defer cancel()
			t0 := time.Now()
			err := fn(rctx)
			lat := time.Since(t0)
			out := OK
			if err != nil {
				out = Failed
				if cfg.Classify != nil {
					out = cfg.Classify(err)
				}
			}
			mu.Lock()
			latencies = append(latencies, lat)
			switch out {
			case OK:
				rep.OK++
			case Shed:
				rep.Shed++
			default:
				rep.Failed++
			}
			mu.Unlock()
		}()
		next = next.Add(gap())
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep.ElapsedMS = float64(elapsed.Microseconds()) / 1000
	if elapsed > 0 {
		rep.ThroughputRPS = float64(rep.OK) / elapsed.Seconds()
	}
	p := Summarize(latencies)
	rep.P50MS, rep.P90MS, rep.P99MS, rep.MaxMS = p.P50MS, p.P90MS, p.P99MS, p.MaxMS
	return rep
}

// Percentiles is a latency summary over one set of completed requests —
// the per-run block inside Report, and the per-target block a multi-target
// client (cmd/loadgen -target a,b,c) reports for each upstream.
type Percentiles struct {
	Count int64   `json:"count"`
	P50MS float64 `json:"p50Ms"`
	P90MS float64 `json:"p90Ms"`
	P99MS float64 `json:"p99Ms"`
	MaxMS float64 `json:"maxMs"`
}

// Summarize computes latency percentiles (nearest-rank). The input is
// sorted in place.
func Summarize(latencies []time.Duration) Percentiles {
	slices.Sort(latencies)
	p := Percentiles{
		Count: int64(len(latencies)),
		P50MS: quantileMS(latencies, 0.50),
		P90MS: quantileMS(latencies, 0.90),
		P99MS: quantileMS(latencies, 0.99),
	}
	if n := len(latencies); n > 0 {
		p.MaxMS = float64(latencies[n-1].Microseconds()) / 1000
	}
	return p
}

// quantileMS reads the q-quantile (nearest-rank) from sorted latencies.
func quantileMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx].Microseconds()) / 1000
}
