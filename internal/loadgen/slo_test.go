package loadgen

// The SLO smoke test: the harness drives the real HTTP serving stack —
// cache on, hot query — and asserts the serving SLO held. Bounds are
// deliberately loose (CI machines are noisy); the point is a standing
// end-to-end proof that the speed layer serves a hot query fast and
// error-free under sustained open-loop load, not a micro-benchmark.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cexplorer/internal/api"
	"cexplorer/internal/gen"
	"cexplorer/internal/server"
)

func TestServingSLOUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke skipped in -short")
	}
	exp := api.NewExplorer()
	if _, err := exp.AddGraph("fig5", gen.Figure5()); err != nil {
		t.Fatal(err)
	}
	s := server.New(exp, nil)
	s.EnableCache(1024, 16<<20, 0)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(map[string]any{
		"algorithm": "ACQ", "names": []string{"A"}, "k": 2, "keywords": []string{"w", "x", "y"},
	})
	url := ts.URL + "/api/v1/datasets/fig5/search"
	client := ts.Client()
	rep := Run(context.Background(), Config{
		Rate:     300,
		Duration: 2 * time.Second,
		Poisson:  true,
		Seed:     7,
		Timeout:  5 * time.Second,
	}, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, "POST", url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != 200 {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	})
	t.Logf("report: %+v", rep)

	// The SLO: nothing failed, the offered load was served, and the hot
	// (fully cached) query stayed comfortably interactive at the tail.
	if rep.Failed != 0 {
		t.Fatalf("%d failed requests: %+v", rep.Failed, rep)
	}
	if rep.Sent < 300 || rep.OK != rep.Sent {
		t.Fatalf("offered load not served: %+v", rep)
	}
	if rep.P99MS > 250 {
		t.Fatalf("p99 %.1fms blows the 250ms smoke SLO: %+v", rep.P99MS, rep)
	}

	// The load was genuinely absorbed by the cache: one computation total;
	// every other request either hit or coalesced onto the leader.
	st := s.Stats()
	if st.Cache == nil || st.Cache.Computations != 1 ||
		st.Cache.Hits+st.Cache.Coalesced != rep.OK-1 {
		t.Fatalf("cache stats = %+v (ok=%d)", st.Cache, rep.OK)
	}
}
