package loadgen

// The overload experiment (BENCH_7.json): a CPU-burning search algorithm
// is offered 2x the machine's capacity, open-loop, every query distinct (so
// the cache can't help and every request is a leader). With admission
// control bounding in-flight computations at the core count, the excess is
// shed fast and the tail stays near the intrinsic service time; without it,
// the open-loop backlog oversubscribes the CPU and the tail grows with the
// backlog. The test asserts the bounded-tail SLO for the shedding run and
// logs the unbounded contrast for the record.

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"cexplorer/internal/api"
	"cexplorer/internal/gen"
)

// spinSearch is a pluggable CS algorithm that burns CPU for a fixed wall
// budget — a stand-in for an expensive community search. ctx is observed.
type spinSearch struct{ d time.Duration }

func (s spinSearch) Name() string { return "Spin" }

func (s spinSearch) Search(ctx context.Context, ds *api.Dataset, q api.Query) ([]api.Community, error) {
	start := time.Now()
	for time.Since(start) < s.d {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for i := 0; i < 1000; i++ {
			_ = i * i
		}
	}
	return []api.Community{{Method: "Spin", Vertices: q.Vertices}}, nil
}

func runOverload(t *testing.T, shedInflight int) Report {
	t.Helper()
	const service = 20 * time.Millisecond
	cores := runtime.GOMAXPROCS(0)
	e := api.NewExplorer()
	if _, err := e.AddGraph("load", gen.GNMAttributed(2000, 4000, 8, 1)); err != nil {
		t.Fatal(err)
	}
	e.RegisterCS(spinSearch{d: service})
	e.SetCache(api.NewServeCache(4096, 16<<20, shedInflight))

	capacity := float64(cores) / service.Seconds() // sustainable leaders/sec
	var seq atomic.Int64
	return Run(context.Background(), Config{
		Rate:     2 * capacity,
		Duration: 1500 * time.Millisecond,
		Seed:     1,
		Classify: func(err error) Outcome {
			if errors.Is(err, api.ErrOverloaded) {
				return Shed
			}
			return Failed
		},
	}, func(ctx context.Context) error {
		// Every request a distinct query: all misses, no coalescing — pure
		// admission-control territory.
		q := api.Query{Vertices: []int32{int32(seq.Add(1) % 2000)}, K: int(seq.Load()%5) + 1}
		_, err := e.Search(ctx, "load", "Spin", q)
		return err
	})
}

func TestSheddingBoundsTailUnderOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("overload experiment skipped in -short")
	}
	cores := runtime.GOMAXPROCS(0)
	shedded := runOverload(t, cores)
	t.Logf("with shedding (bound=%d): %+v", cores, shedded)
	if shedded.Failed > 0 {
		t.Fatalf("unexpected failures: %+v", shedded)
	}
	if shedded.Shed == 0 {
		t.Fatalf("2x over-capacity never shed: %+v", shedded)
	}
	if shedded.OK == 0 {
		t.Fatalf("everything shed: %+v", shedded)
	}
	// The bounded-tail SLO: with a 20ms intrinsic service time and at most
	// `cores` concurrent computations, no request should wait behind a
	// backlog; 10x the service time absorbs CI scheduling noise.
	if shedded.P99MS > 200 {
		t.Fatalf("p99 %.1fms blows the bounded-tail SLO: %+v", shedded.P99MS, shedded)
	}

	// The contrast run — same offered load, no admission control. Logged,
	// not asserted: its tail depends on machine speed; the claim it backs
	// (shedding keeps the tail bounded when open-loop overload would grow
	// it) is recorded in BENCH_7.json.
	unshedded := runOverload(t, 0)
	t.Logf("without shedding: %+v", unshedded)
}
