package loadgen

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestOpenLoopArrivals proves the open-loop discipline: with a request
// function that never returns until released, arrivals keep coming at the
// offered rate instead of stalling behind the slow responses.
func TestOpenLoopArrivals(t *testing.T) {
	release := make(chan struct{})
	var inflight atomic.Int64
	done := make(chan Report, 1)
	go func() {
		done <- Run(context.Background(), Config{Rate: 200, Duration: 250 * time.Millisecond},
			func(ctx context.Context) error {
				inflight.Add(1)
				<-release
				return nil
			})
	}()
	time.Sleep(300 * time.Millisecond)
	// A closed-loop generator would have exactly 1 in flight.
	if n := inflight.Load(); n < 10 {
		t.Fatalf("open loop stalled: only %d requests in flight", n)
	}
	close(release)
	rep := <-done
	if rep.Sent != rep.OK || rep.Sent < 10 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestOutcomeClassification(t *testing.T) {
	shedErr := errors.New("overloaded")
	failErr := errors.New("boom")
	var i atomic.Int64
	rep := Run(context.Background(), Config{
		Rate: 1000, Duration: 30 * time.Millisecond,
		Classify: func(err error) Outcome {
			if errors.Is(err, shedErr) {
				return Shed
			}
			return Failed
		},
	}, func(ctx context.Context) error {
		switch i.Add(1) % 3 {
		case 0:
			return shedErr
		case 1:
			return failErr
		}
		return nil
	})
	if rep.OK == 0 || rep.Shed == 0 || rep.Failed == 0 {
		t.Fatalf("all outcomes should appear: %+v", rep)
	}
	if rep.OK+rep.Shed+rep.Failed != rep.Sent {
		t.Fatalf("outcome counts don't sum to sent: %+v", rep)
	}
}

func TestQuantiles(t *testing.T) {
	var lats []time.Duration
	for i := 1; i <= 100; i++ {
		lats = append(lats, time.Duration(i)*time.Millisecond)
	}
	if p := quantileMS(lats, 0.50); p != 50 {
		t.Fatalf("p50 = %v", p)
	}
	if p := quantileMS(lats, 0.99); p != 99 {
		t.Fatalf("p99 = %v", p)
	}
	if p := quantileMS(nil, 0.5); p != 0 {
		t.Fatalf("empty p50 = %v", p)
	}
}

func TestContextStopsArrivals(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	rep := Run(ctx, Config{Rate: 100, Duration: time.Hour}, func(context.Context) error { return nil })
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not stop the run")
	}
	if rep.Sent == 0 {
		t.Fatalf("report = %+v", rep)
	}
}
