package codicil

import (
	"context"
	"testing"

	"cexplorer/internal/gen"
	"cexplorer/internal/graph"
)

// attributedCliques: two K5s with distinct vocabularies joined by a bridge.
func attributedCliques(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(10, 21)
	for i := 0; i < 5; i++ {
		b.AddVertex("", "database", "transaction", "query")
	}
	for i := 0; i < 5; i++ {
		b.AddVertex("", "vision", "image", "segmentation")
	}
	for u := int32(0); u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			b.AddEdge(u, v)
			b.AddEdge(u+5, v+5)
		}
	}
	b.AddEdge(4, 5)
	return b.MustBuild()
}

func TestDetectTwoTopicCliques(t *testing.T) {
	g := attributedCliques(t)
	r := Detect(g, Options{Seed: 1, ContentK: 3})
	if r.Partition.Count < 2 {
		t.Fatalf("partition count = %d, want ≥ 2", r.Partition.Count)
	}
	// The two topic groups must not share a community.
	if r.Partition.Labels[0] == r.Partition.Labels[9] {
		t.Fatalf("topics merged: %v", r.Partition.Labels)
	}
	for v := int32(1); v < 5; v++ {
		if r.Partition.Labels[v] != r.Partition.Labels[0] {
			t.Fatalf("db clique split: %v", r.Partition.Labels)
		}
	}
	comm := r.CommunityOf(0)
	if len(comm) != 5 {
		t.Fatalf("CommunityOf(0) = %v", comm)
	}
	if r.ContentEdges == 0 || r.UnionEdges < g.M() || r.SparsifiedEdges == 0 {
		t.Fatalf("pipeline stats: %+v", r)
	}
}

// TestContentOverridesWeakStructure: content similarity must pull together
// same-topic vertices that structure alone would separate. Two stars with
// the same vocabulary and no connecting edge end up bridged by content
// edges, so label propagation over the union can see cross-star pairs.
func TestContentEdgesCreated(t *testing.T) {
	b := graph.NewBuilder(6, 4)
	for i := 0; i < 6; i++ {
		b.AddVertex("", "streaming", "window", "operator")
	}
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	g := b.MustBuild()
	edges, _ := contentEdges(context.Background(), g, func() Options { o := Options{ContentK: 2}; o.fill(g.N()); return o }())
	if len(edges) == 0 {
		t.Fatal("no content edges for identical vocabularies")
	}
	crossFound := false
	for _, e := range edges {
		if (e.u < 3) != (e.v < 3) {
			crossFound = true
		}
	}
	if !crossFound {
		t.Fatal("content edges never cross the structural gap")
	}
}

func TestSparsificationReducesEdges(t *testing.T) {
	g := gen.GenerateDBLP(gen.SmallDBLPConfig()).Graph
	full := Detect(g, Options{Seed: 1, NoSparsify: true})
	sparse := Detect(g, Options{Seed: 1})
	if sparse.SparsifiedEdges >= full.SparsifiedEdges {
		t.Fatalf("sparsify kept %d ≥ %d edges", sparse.SparsifiedEdges, full.SparsifiedEdges)
	}
	if sparse.Partition.Count < 2 {
		t.Fatalf("sparse partition degenerate: %d", sparse.Partition.Count)
	}
}

func TestDetectLabelPropagationVariant(t *testing.T) {
	g := attributedCliques(t)
	r := Detect(g, Options{Seed: 3, UseLabelLP: true})
	if len(r.Partition.Labels) != g.N() {
		t.Fatal("bad partition size")
	}
	if r.Partition.Labels[0] == r.Partition.Labels[9] {
		t.Fatalf("LP variant merged topics: %v", r.Partition.Labels)
	}
}

func TestDetectDeterministic(t *testing.T) {
	g := gen.GenerateDBLP(gen.SmallDBLPConfig()).Graph
	a := Detect(g, Options{Seed: 42})
	b := Detect(g, Options{Seed: 42})
	for v := range a.Partition.Labels {
		if a.Partition.Labels[v] != b.Partition.Labels[v] {
			t.Fatal("CODICIL not deterministic for fixed seed")
		}
	}
}

func TestTFIDFCosine(t *testing.T) {
	b := graph.NewBuilder(3, 0)
	b.AddVertex("", "a", "b")
	b.AddVertex("", "a", "b")
	b.AddVertex("", "c")
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	tf := newTFIDF(g, g.N())
	if sim := tf.cosine(0, 1); sim < 0.999 {
		t.Fatalf("identical sets cosine = %f", sim)
	}
	if sim := tf.cosine(0, 2); sim != 0 {
		t.Fatalf("disjoint sets cosine = %f", sim)
	}
}
