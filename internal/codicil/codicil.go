// Package codicil implements CODICIL (Ruan, Fuhry, Parthasarathy, WWW'13):
// community detection that fuses content and link structure. The pipeline,
// following the original:
//
//  1. Content edges: connect every vertex to its top-c most content-similar
//     vertices (TF-IDF cosine over keyword sets, candidates via an inverted
//     index).
//  2. Union: combine content edges with the topology edges.
//  3. Local sparsification: every vertex ranks its union-graph neighbors by
//     a blend of content similarity and structural (Jaccard) similarity and
//     keeps its top ⌈d^e⌉; an edge survives if either endpoint keeps it.
//  4. Cluster the sparsified weighted graph. The original delegates to
//     METIS/MLR-MCL; here Louvain (default) or label propagation plays that
//     role (see DESIGN.md §2).
//
// CODICIL is a community-*detection* method: it partitions the whole graph
// offline, and the community of a query vertex is looked up from the
// partition — which is why the paper contrasts it with the online CS
// algorithms.
package codicil

import (
	"cmp"
	"context"
	"math"
	"slices"

	"cexplorer/internal/cluster"
	"cexplorer/internal/ds"
	"cexplorer/internal/graph"
)

// cancelCheckStride is how many vertices the context-aware pipeline stages
// process between ctx.Err() polls.
const cancelCheckStride = 512

// Options configures the pipeline.
type Options struct {
	ContentK    int     // content kNN per vertex; default 10
	SparsifyExp float64 // e in ⌈d^e⌉; default 0.5
	Alpha       float64 // similarity blend: α·content + (1-α)·structural; default 0.5
	NoSparsify  bool    // ablation switch: skip step 3
	UseLabelLP  bool    // use label propagation instead of Louvain
	Seed        int64
	// MaxDF caps the document frequency of keywords used for content-edge
	// candidate generation (hub words like "data" pair everyone with
	// everyone); 0 means n/8.
	MaxDF int
}

func (o *Options) fill(n int) {
	if o.ContentK <= 0 {
		o.ContentK = 10
	}
	if o.SparsifyExp <= 0 {
		o.SparsifyExp = 0.5
	}
	if o.Alpha <= 0 || o.Alpha >= 1 {
		o.Alpha = 0.5
	}
	if o.MaxDF <= 0 {
		o.MaxDF = n / 8
		if o.MaxDF < 32 {
			o.MaxDF = 32 // tiny graphs: never filter everything away
		}
	}
}

// Result is a finished CODICIL run.
type Result struct {
	Partition *cluster.Partition
	// Pipeline statistics for the ablation bench.
	ContentEdges    int
	UnionEdges      int
	SparsifiedEdges int
}

// CommunityOf returns the detected community containing q.
func (r *Result) CommunityOf(q int32) []int32 { return r.Partition.CommunityOf(q) }

// Detect runs the full pipeline on g.
func Detect(g *graph.Graph, opts Options) *Result {
	r, _ := DetectContext(context.Background(), g, opts)
	return r
}

// DetectContext is Detect with cooperative cancellation: the content-edge
// scan and the sparsification ranking — the two per-vertex passes that
// dominate the pipeline — poll ctx every few hundred vertices and return
// ctx.Err() when the request is canceled or past its deadline. (The final
// clustering step is not interruptible; it runs on an already-sparsified
// graph and is the cheapest stage.)
func DetectContext(ctx context.Context, g *graph.Graph, opts Options) (*Result, error) {
	opts.fill(g.N())
	content, err := contentEdges(ctx, g, opts)
	if err != nil {
		return nil, err
	}

	// Union adjacency with content-similarity weights (topology edges get
	// weight from their endpoints' similarity too, so the blend is uniform).
	type nbr struct {
		to  int32
		sim float64
	}
	adj := make(map[int32][]nbr, g.N())
	addEdge := func(u, v int32, sim float64) {
		adj[u] = append(adj[u], nbr{v, sim})
		adj[v] = append(adj[v], nbr{u, sim})
	}
	seen := make(map[int64]bool, g.M()+len(content))
	key := func(u, v int32) int64 {
		if u > v {
			u, v = v, u
		}
		return int64(u)<<32 | int64(v)
	}
	tfidf := newTFIDF(g, opts.MaxDF)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	edgeCount := 0
	g.Edges(func(u, v int32) bool {
		edgeCount++
		if edgeCount%cancelCheckStride == 0 && ctx.Err() != nil {
			return false
		}
		seen[key(u, v)] = true
		addEdge(u, v, tfidf.cosine(u, v))
		return true
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	unionEdges := g.M()
	for _, e := range content {
		if !seen[key(e.u, e.v)] {
			seen[key(e.u, e.v)] = true
			addEdge(e.u, e.v, e.sim)
			unionEdges++
		}
	}

	// Structural Jaccard on the union graph + blending.
	nbrSet := make([][]int32, g.N())
	for v := int32(0); v < int32(g.N()); v++ {
		if v%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		lst := make([]int32, 0, len(adj[v]))
		for _, e := range adj[v] {
			lst = append(lst, e.to)
		}
		nbrSet[v] = ds.SortInt32s(lst)
	}

	kept := make(map[int64]float64)
	if opts.NoSparsify {
		for v := int32(0); v < int32(g.N()); v++ {
			if v%cancelCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			for _, e := range adj[v] {
				if v < e.to {
					w := opts.Alpha*e.sim + (1-opts.Alpha)*ds.JaccardSorted(nbrSet[v], nbrSet[e.to])
					kept[key(v, e.to)] = w + 1e-6
				}
			}
		}
	} else {
		type scored struct {
			to int32
			w  float64
		}
		for v := int32(0); v < int32(g.N()); v++ {
			if v%cancelCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			es := adj[v]
			if len(es) == 0 {
				continue
			}
			ss := make([]scored, 0, len(es))
			for _, e := range es {
				w := opts.Alpha*e.sim + (1-opts.Alpha)*ds.JaccardSorted(nbrSet[v], nbrSet[e.to])
				ss = append(ss, scored{e.to, w})
			}
			slices.SortFunc(ss, func(a, b scored) int {
				if a.w != b.w {
					return cmp.Compare(b.w, a.w)
				}
				return int(a.to) - int(b.to)
			})
			keep := int(math.Ceil(math.Pow(float64(len(ss)), opts.SparsifyExp)))
			if keep > len(ss) {
				keep = len(ss)
			}
			for _, s := range ss[:keep] {
				k := key(v, s.to)
				if s.w+1e-6 > kept[k] {
					kept[k] = s.w + 1e-6
				}
			}
		}
	}

	wedges := make([]cluster.WEdge, 0, len(kept))
	for k, w := range kept {
		wedges = append(wedges, cluster.WEdge{U: int32(k >> 32), V: int32(k & 0xffffffff), W: w})
	}
	slices.SortFunc(wedges, func(a, b cluster.WEdge) int {
		if a.U != b.U {
			return int(a.U) - int(b.U)
		}
		return int(a.V) - int(b.V)
	})
	wg := cluster.NewWeighted(g.N(), wedges)

	// Last bail-out point before the (uninterruptible) clustering stage.
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var p *cluster.Partition
	if opts.UseLabelLP {
		p = cluster.LabelPropagation(newWeightedView(g.N(), wedges), 0, opts.Seed)
	} else {
		p = cluster.LouvainWeighted(wg, opts.Seed)
	}
	return &Result{
		Partition:       p,
		ContentEdges:    len(content),
		UnionEdges:      unionEdges,
		SparsifiedEdges: len(kept),
	}, nil
}

// weightedView adapts the sparsified edge list to the unweighted interface
// LabelPropagation expects.
type weightedView struct {
	n   int
	adj [][]int32
}

func newWeightedView(n int, edges []cluster.WEdge) weightedView {
	adj := make([][]int32, n)
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	return weightedView{n: n, adj: adj}
}

func (w weightedView) N() int { return w.n }

func (w weightedView) Neighbors(v int32) []int32 { return w.adj[v] }

type contentEdge struct {
	u, v int32
	sim  float64
}

// tfidf holds per-vertex TF-IDF norms and per-keyword document frequencies.
type tfidf struct {
	g     *graph.Graph
	idf   []float64
	norm  []float64
	maxDF int
}

func newTFIDF(g *graph.Graph, maxDF int) *tfidf {
	nWords := g.Vocab().Len()
	df := make([]int, nWords)
	for v := int32(0); v < int32(g.N()); v++ {
		for _, w := range g.Keywords(v) {
			df[w]++
		}
	}
	t := &tfidf{g: g, idf: make([]float64, nWords), norm: make([]float64, g.N()), maxDF: maxDF}
	n := float64(g.N())
	for w, d := range df {
		if d > 0 {
			t.idf[w] = math.Log(1 + n/float64(d))
		}
	}
	for v := int32(0); v < int32(g.N()); v++ {
		s := 0.0
		for _, w := range g.Keywords(v) {
			s += t.idf[w] * t.idf[w]
		}
		t.norm[v] = math.Sqrt(s)
	}
	return t
}

// cosine returns the TF-IDF cosine similarity of u and v's keyword sets.
func (t *tfidf) cosine(u, v int32) float64 {
	if t.norm[u] == 0 || t.norm[v] == 0 {
		return 0
	}
	dot := 0.0
	a, b := t.g.Keywords(u), t.g.Keywords(v)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dot += t.idf[a[i]] * t.idf[a[i]]
			i++
			j++
		}
	}
	return dot / (t.norm[u] * t.norm[v])
}

// contentEdges computes each vertex's top-c content neighbors via the
// keyword inverted index, skipping keywords with document frequency above
// MaxDF for candidate generation (their IDF contribution is negligible and
// they would pair everyone with everyone).
func contentEdges(ctx context.Context, g *graph.Graph, opts Options) ([]contentEdge, error) {
	t := newTFIDF(g, opts.MaxDF)
	// Inverted index keyword -> vertices, df-filtered.
	nWords := g.Vocab().Len()
	inv := make([][]int32, nWords)
	for v := int32(0); v < int32(g.N()); v++ {
		for _, w := range g.Keywords(v) {
			inv[w] = append(inv[w], v)
		}
	}
	var out []contentEdge
	scores := make(map[int32]float64)
	for v := int32(0); v < int32(g.N()); v++ {
		if v%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if t.norm[v] == 0 {
			continue
		}
		for k := range scores {
			delete(scores, k)
		}
		for _, w := range g.Keywords(v) {
			if len(inv[w]) > opts.MaxDF {
				continue
			}
			contrib := t.idf[w] * t.idf[w]
			for _, u := range inv[w] {
				if u != v {
					scores[u] += contrib
				}
			}
		}
		if len(scores) == 0 {
			continue
		}
		type cand struct {
			u   int32
			sim float64
		}
		cands := make([]cand, 0, len(scores))
		for u, dot := range scores {
			cands = append(cands, cand{u, dot / (t.norm[v] * t.norm[u])})
		}
		slices.SortFunc(cands, func(a, b cand) int {
			if a.sim != b.sim {
				return cmp.Compare(b.sim, a.sim)
			}
			return int(a.u) - int(b.u)
		})
		c := opts.ContentK
		if c > len(cands) {
			c = len(cands)
		}
		for _, cd := range cands[:c] {
			if v < cd.u { // emit once per pair; symmetric kNN union
				out = append(out, contentEdge{v, cd.u, cd.sim})
			} else {
				out = append(out, contentEdge{cd.u, v, cd.sim})
			}
		}
	}
	// Dedup (u,v) pairs keeping max sim.
	slices.SortFunc(out, func(a, b contentEdge) int {
		if a.u != b.u {
			return int(a.u) - int(b.u)
		}
		if a.v != b.v {
			return int(a.v) - int(b.v)
		}
		return cmp.Compare(b.sim, a.sim)
	})
	dedup := out[:0]
	for i, e := range out {
		if i > 0 && e.u == dedup[len(dedup)-1].u && e.v == dedup[len(dedup)-1].v {
			continue
		}
		dedup = append(dedup, e)
	}
	return dedup, nil
}
