// Package gen provides the data substrate of the reproduction: the paper's
// Figure-5 worked-example graph, a synthetic DBLP-like attributed
// co-authorship network (standing in for the proprietary DBLP sample the
// demo uses — see DESIGN.md §2), and standard random-graph models for
// scaling experiments.
package gen

import "cexplorer/internal/graph"

// Figure5 reconstructs the attributed graph of Figure 5(a) in the paper:
// 10 vertices {A..J}, 11 edges, keyword sets as printed. The structure is
// recovered from the core numbers the figure reports ({A,B,C,D}→3, {E}→2,
// {F,G,H,I}→1, {J}→0) and the CL-tree shape of Figure 5(b): a K4 on
// {A,B,C,D}; E adjacent to C and D; F pendant on E; G pendant on A; an
// isolated edge H–I; and the isolated vertex J.
//
// The ACQ walkthrough on this graph (q=A, k=2, S={w,x,y}) must return the
// subgraph {A,C,D} with shared keywords {x,y}; tests and experiment E1
// assert exactly that.
func Figure5() *graph.Graph {
	b := graph.NewBuilder(10, 11)
	for _, spec := range []struct {
		name string
		kws  []string
	}{
		{"A", []string{"w", "x", "y"}},
		{"B", []string{"x"}},
		{"C", []string{"x", "y"}},
		{"D", []string{"x", "y", "z"}},
		{"E", []string{"y", "z"}},
		{"F", []string{"y"}},
		{"G", []string{"x", "y"}},
		{"H", []string{"y", "z"}},
		{"I", []string{"x"}},
		{"J", []string{"x"}},
	} {
		b.AddVertex(spec.name, spec.kws...)
	}
	for _, e := range [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, // K4 on A,B,C,D
		{4, 2}, {4, 3}, // E–C, E–D
		{5, 4}, // F–E
		{6, 0}, // G–A
		{7, 8}, // H–I
	} {
		b.AddEdge(e[0], e[1])
	}
	return b.MustBuild()
}

// Figure5VertexID resolves the single-letter vertex names of the figure.
func Figure5VertexID(name string) int32 {
	return int32(name[0] - 'A')
}
