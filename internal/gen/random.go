package gen

import (
	"fmt"
	"math/rand"

	"cexplorer/internal/graph"
)

// GNM returns an Erdős–Rényi G(n, m) graph (m distinct edges drawn
// uniformly), deterministic in seed. Used by the scaling experiments.
func GNM(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, m)
	b.AddVertexIDs(int32(n - 1))
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		m = maxEdges
	}
	type pair struct{ u, v int32 }
	seen := make(map[pair]bool, m)
	for len(seen) < m {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		p := pair{u, v}
		if seen[p] {
			continue
		}
		seen[p] = true
		b.AddEdge(u, v)
	}
	return b.MustBuild()
}

// GNMAttributed returns a G(n, m) random graph whose vertices carry random
// keyword sets drawn from a synthetic vocabulary of vocab words (each
// vertex gets 1..4 keywords, Zipf-leaning so some words are common and
// some rare — the shape ACQ keyword pruning actually sees). Deterministic
// in seed. The dynamic-graph equivalence harness uses it so incremental
// CL-tree repair is exercised with real inverted lists, not empty ones.
func GNMAttributed(n, m, vocab int, seed int64) *graph.Graph {
	if vocab < 1 {
		vocab = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, m)
	for v := 0; v < n; v++ {
		nk := 1 + rng.Intn(4)
		kws := make([]string, 0, nk)
		for i := 0; i < nk; i++ {
			// Squaring biases draws toward low word ids: a few hot words
			// shared widely, a long tail of rare ones.
			f := rng.Float64()
			kws = append(kws, fmt.Sprintf("w%d", int(f*f*float64(vocab))))
		}
		b.AddVertex("", kws...)
	}
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		m = maxEdges
	}
	type pair struct{ u, v int32 }
	seen := make(map[pair]bool, m)
	for len(seen) < m {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		p := pair{u, v}
		if seen[p] {
			continue
		}
		seen[p] = true
		b.AddEdge(u, v)
	}
	return b.MustBuild()
}

// BarabasiAlbert returns a preferential-attachment graph: each new vertex
// attaches to attach existing vertices chosen proportionally to degree.
// Produces the heavy-tailed degree distribution of co-authorship networks.
func BarabasiAlbert(n, attach int, seed int64) *graph.Graph {
	if attach < 1 {
		attach = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, n*attach)
	b.AddVertexIDs(int32(n - 1))
	// repeated-endpoint list: sampling uniformly from it is degree-biased.
	endpoints := make([]int32, 0, 2*n*attach)
	// Seed clique of attach+1 vertices.
	seedSize := attach + 1
	if seedSize > n {
		seedSize = n
	}
	for u := 0; u < seedSize; u++ {
		for v := u + 1; v < seedSize; v++ {
			b.AddEdge(int32(u), int32(v))
			endpoints = append(endpoints, int32(u), int32(v))
		}
	}
	for v := seedSize; v < n; v++ {
		chosen := map[int32]bool{}
		for len(chosen) < attach {
			var u int32
			if len(endpoints) == 0 || rng.Float64() < 0.05 {
				u = int32(rng.Intn(v))
			} else {
				u = endpoints[rng.Intn(len(endpoints))]
			}
			if u == int32(v) || chosen[u] {
				continue
			}
			chosen[u] = true
			b.AddEdge(int32(v), u)
			endpoints = append(endpoints, int32(v), u)
		}
	}
	return b.MustBuild()
}

// PlantedPartition returns a graph with `blocks` equal-size communities:
// intra-block edges with probability pIn, inter-block with pOut, plus the
// ground-truth partition. Used to test community-detection quality (NMI).
func PlantedPartition(n, blocks int, pIn, pOut float64, seed int64) (*graph.Graph, [][]int32) {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, 0)
	b.AddVertexIDs(int32(n - 1))
	truth := make([][]int32, blocks)
	blockOf := make([]int, n)
	for v := 0; v < n; v++ {
		c := v * blocks / n
		blockOf[v] = c
		truth[c] = append(truth[c], int32(v))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pOut
			if blockOf[u] == blockOf[v] {
				p = pIn
			}
			if rng.Float64() < p {
				b.AddEdge(int32(u), int32(v))
			}
		}
	}
	return b.MustBuild(), truth
}
