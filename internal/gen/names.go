package gen

import "fmt"

// Famous database researchers used for the hub authors, mirroring the
// paper's demonstration ("jim gray", Figure 1) and profile drill-down
// (Michael Stonebraker, Figure 2). Names are lowercase like the paper's
// search box input.
var famousAuthors = []string{
	"jim gray",
	"michael stonebraker",
	"michael l. brodie",
	"bruce g. lindsay",
	"gerhard weikum",
	"hector garcia-molina",
	"stanley b. zdonik",
	"christopher stoughton",
	"alexander s. szalay",
	"jordan raddick",
	"peter z. kunszt",
	"david j. dewitt",
	"jennifer widom",
	"rakesh agrawal",
	"jeffrey d. ullman",
	"serge abiteboul",
}

var firstNames = []string{
	"alice", "bob", "carol", "david", "erin", "frank", "grace", "henry",
	"iris", "jack", "karen", "liam", "mona", "nathan", "olivia", "peter",
	"quinn", "rosa", "samuel", "tina", "ursula", "victor", "wendy", "xavier",
	"yvonne", "zachary", "amelia", "boris", "chloe", "dmitri", "elena",
	"felix", "gina", "hugo", "ingrid", "jonas", "kira", "lucas", "maria",
	"nikolai", "oscar", "paula", "raj", "sofia", "tomas", "uma", "vera",
	"wei", "xin", "yuki",
}

var lastNames = []string{
	"smith", "johnson", "lee", "chen", "wang", "garcia", "mueller", "kim",
	"patel", "nguyen", "silva", "rossi", "kowalski", "tanaka", "sato",
	"ivanov", "petrov", "novak", "jensen", "nielsen", "dubois", "moreau",
	"fischer", "weber", "schmidt", "lopez", "martinez", "gonzalez", "kumar",
	"singh", "gupta", "yamamoto", "suzuki", "zhang", "liu", "huang", "zhou",
	"ferrari", "ricci", "santos", "oliveira", "costa", "andersen", "larsen",
	"virtanen", "korhonen", "papadopoulos", "dimitriou", "horvath", "nagy",
}

// authorName deterministically produces the display name for author i.
// The first len(famousAuthors) IDs get the canonical hub names; the rest are
// synthesized. Collisions are disambiguated with a numeric suffix in the
// style of DBLP ("wei chen 0002").
func authorName(i int) string {
	if i < len(famousAuthors) {
		return famousAuthors[i]
	}
	j := i - len(famousAuthors)
	f := firstNames[j%len(firstNames)]
	l := lastNames[(j/len(firstNames))%len(lastNames)]
	gen := j / (len(firstNames) * len(lastNames))
	if gen == 0 {
		return f + " " + l
	}
	return fmt.Sprintf("%s %s %04d", f, l, gen+1)
}

// NumFamousAuthors reports how many canonical hub names the generator
// embeds; example programs use it to iterate the demo queries.
func NumFamousAuthors() int { return len(famousAuthors) }

// FamousAuthor returns the i-th canonical hub name.
func FamousAuthor(i int) string { return famousAuthors[i] }
