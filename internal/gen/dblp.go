package gen

import (
	"math"
	"math/rand"
	"slices"
	"sort"

	"cexplorer/internal/graph"
)

// DBLPConfig parameterizes the synthetic DBLP-like co-authorship network.
// The defaults approximate the structural profile of the paper's dataset
// (977,288 authors, 3,432,273 edges, ≈7 average degree, ≤20 keywords per
// author) at a laptop-friendly scale; PaperScaleConfig reproduces the full
// size for the latency experiment E7.
type DBLPConfig struct {
	Authors           int     // number of author vertices
	Communities       int     // number of research communities (ground truth)
	EdgeFactor        float64 // intra-community edge attempts per membership (≈ avg degree / 2)
	CrossFrac         float64 // extra cross-community edges, as a fraction of intra edges
	KeywordsPerAuthor int     // cap on keywords per author (paper: 20)
	SecondaryProb     float64 // probability an author joins a second community
	Seed              int64
}

// DefaultDBLPConfig is the configuration used by tests, examples, and the
// default benchmark tables.
func DefaultDBLPConfig() DBLPConfig {
	return DBLPConfig{
		Authors:           20000,
		Communities:       64,
		EdgeFactor:        2.6,
		CrossFrac:         0.06,
		KeywordsPerAuthor: 20,
		SecondaryProb:     0.3,
		Seed:              1,
	}
}

// SmallDBLPConfig is a fast variant for unit tests.
func SmallDBLPConfig() DBLPConfig {
	cfg := DefaultDBLPConfig()
	cfg.Authors = 2000
	cfg.Communities = 16
	return cfg
}

// PaperScaleConfig matches the demo paper's graph size: 977,288 vertices and
// roughly 3.4M edges.
func PaperScaleConfig() DBLPConfig {
	cfg := DefaultDBLPConfig()
	cfg.Authors = 977288
	cfg.Communities = 1200
	return cfg
}

// Profile is the per-author record shown in the profile window (Figure 2 of
// the paper: name, areas, institutes, research interests).
type Profile struct {
	Name       string   `json:"name"`
	Areas      []string `json:"areas"`
	Institutes []string `json:"institutes"`
	Interests  []string `json:"interests"`
}

// DBLP bundles the generated attributed graph with its ground truth and
// profile store.
type DBLP struct {
	Graph *graph.Graph
	// Truth holds the ground-truth communities (per community, sorted member
	// IDs). Authors may belong to more than one.
	Truth [][]int32
	// Profiles keys author vertex IDs to their profile records.
	Profiles map[int32]Profile
	// Topics names each ground-truth community's research area.
	Topics []string
}

var topicNames = []string{
	"transaction", "spatial", "mining", "learning", "stream", "index",
	"storage", "privacy", "security", "cloud", "parallel", "semantic",
	"optimization", "clustering", "retrieval", "visualization",
	"crowdsourcing", "probabilistic", "temporal", "social",
	"recommendation", "integration", "provenance", "hardware",
	"compression", "benchmark", "workflow", "graph", "text", "multimedia",
}

var genericWords = []string{
	"data", "system", "research", "management", "analysis", "model",
	"query", "web", "server", "digital", "information", "network",
	"design", "approach", "framework", "method", "processing",
	"distributed", "efficient", "large",
}

var lexicon = []string{
	"algorithm", "architecture", "cache", "concurrency", "consistency",
	"cost", "coverage", "decomposition", "dependency", "dimension",
	"discovery", "dynamic", "encoding", "engine", "estimation", "evaluation",
	"execution", "extraction", "feature", "filter", "formal", "fusion",
	"generation", "heterogeneous", "hierarchy", "incremental", "inference",
	"interactive", "join", "kernel", "knowledge", "language", "latency",
	"lineage", "locality", "logic", "maintenance", "mapping", "matching",
	"materialized", "memory", "metadata", "migration", "mobile", "monitor",
	"multidimensional", "nearest", "nested", "online", "ontology",
	"operator", "order", "partition", "pattern", "performance", "pipeline",
	"planning", "prediction", "preference", "pruning", "quality", "ranking",
	"recovery", "regression", "relational", "replication", "resilient",
	"sampling", "scalable", "schema", "search", "selection", "sensor",
	"sequence", "similarity", "sketch", "skyline", "snapshot", "sparse",
	"statistics", "structure", "summarization", "synthesis", "throughput",
	"topology", "tracking", "transfer", "traversal", "tuning", "uncertain",
	"update", "validation", "vector", "verification", "view", "warehouse",
	"wavelet", "window", "workload", "adaptive",
}

var institutes = []string{
	"university of california, berkeley", "university of hong kong",
	"stanford university", "mit", "carnegie mellon university",
	"university of wisconsin-madison", "eth zurich", "tsinghua university",
	"national university of singapore", "university of michigan",
	"max planck institute", "university of toronto", "epfl",
	"university of washington", "cornell university", "ibm research",
	"microsoft research", "bell labs", "university of edinburgh",
	"technical university of munich",
}

// topicPool returns the keyword pool of topic t: its own label plus a
// deterministic slice of the technical lexicon. Pools overlap across topics,
// as real research vocabularies do.
func topicPool(t int) []string {
	pool := make([]string, 0, 15)
	pool = append(pool, topicNames[t%len(topicNames)])
	for i := 0; i < 14; i++ {
		pool = append(pool, lexicon[(t*7+i*3)%len(lexicon)])
	}
	return pool
}

// GenerateDBLP builds the synthetic attributed co-authorship network.
// Everything is deterministic in cfg.Seed.
//
// Construction (documented for DESIGN.md §2):
//   - Community sizes follow a Zipf law; each author joins a primary
//     community (Zipf-ranked) and, with SecondaryProb, a secondary one.
//   - The first NumFamousAuthors() authors ("jim gray", ...) join several
//     communities each and head their member lists, so the intra-community
//     preferential attachment below turns them into the high-degree,
//     multi-community hubs the paper's walkthrough queries.
//   - Intra-community edges use preferential attachment toward early list
//     members, producing heavy-tailed degrees and dense nested cores (what
//     k-core search exploits). Cross-community noise edges are added on top.
//   - Keywords are sampled Zipf-wise from the author's communities' topic
//     pools plus a generic pool, capped at KeywordsPerAuthor — mirroring
//     "the 20 most frequent keywords in the titles of her publications".
func GenerateDBLP(cfg DBLPConfig) *DBLP {
	rng := rand.New(rand.NewSource(cfg.Seed))
	nc := cfg.Communities
	if nc < 4 {
		nc = 4
	}
	nFamous := len(famousAuthors)
	if cfg.Authors < nFamous+10 {
		nFamous = cfg.Authors / 2
	}

	// --- community memberships ---
	members := make([][]int32, nc) // per community, in join order
	communityZipf := rand.NewZipf(rng, 1.4, 3, uint64(nc-1))
	memberOf := make([][]int32, cfg.Authors)

	join := func(a int32, c int) {
		members[c] = append(members[c], a)
		memberOf[a] = append(memberOf[a], int32(c))
	}
	// Famous authors first: 3–5 communities each, biased to the big ones.
	for a := 0; a < nFamous; a++ {
		want := 3 + rng.Intn(3)
		if want > nc {
			want = nc // tiny configs: can't join more communities than exist
		}
		seen := map[int]bool{}
		for len(seen) < want {
			c := int(communityZipf.Uint64())
			if !seen[c] {
				seen[c] = true
				join(int32(a), c)
			}
		}
	}
	for a := nFamous; a < cfg.Authors; a++ {
		c := int(communityZipf.Uint64())
		join(int32(a), c)
		if rng.Float64() < cfg.SecondaryProb {
			c2 := int(communityZipf.Uint64())
			if c2 != c {
				join(int32(a), c2)
			}
		}
	}

	// --- edges ---
	b := graph.NewBuilder(cfg.Authors, int(float64(cfg.Authors)*cfg.EdgeFactor*1.4))
	for a := 0; a < cfg.Authors; a++ {
		b.AddVertex(authorName(a))
	}
	intra := 0
	degZipf := rand.NewZipf(rng, 1.6, 2, 16)
	for _, ms := range members {
		for i := 1; i < len(ms); i++ {
			attempts := 1 + int(degZipf.Uint64())
			if attempts > i {
				attempts = i
			}
			for t := 0; t < attempts; t++ {
				// Preferential attachment: bias toward early (hub) members.
				j := int(float64(i) * math.Pow(rng.Float64(), 2.2))
				b.AddEdge(ms[i], ms[j])
				intra++
			}
		}
	}
	cross := int(cfg.CrossFrac * float64(intra))
	for t := 0; t < cross; t++ {
		u := int32(rng.Intn(cfg.Authors))
		v := int32(rng.Intn(cfg.Authors))
		b.AddEdge(u, v)
	}

	// --- keywords ---
	pools := make([][]string, nc)
	for c := 0; c < nc; c++ {
		pools[c] = topicPool(c)
	}
	poolZipf := rand.NewZipf(rng, 1.4, 2, uint64(len(pools[0])-1))
	genericZipf := rand.NewZipf(rng, 1.3, 2, uint64(len(genericWords)-1))
	kwset := map[string]bool{}
	for a := 0; a < cfg.Authors; a++ {
		for k := range kwset {
			delete(kwset, k)
		}
		target := 8 + rng.Intn(cfg.KeywordsPerAuthor-7)
		comms := memberOf[a]
		// A few generic words first ("data", "system", ...), like any DBLP
		// author's title vocabulary.
		nGeneric := 2 + rng.Intn(3)
		for i := 0; i < nGeneric; i++ {
			kwset[genericWords[genericZipf.Uint64()]] = true
		}
		for guard := 0; len(kwset) < target && guard < 6*target; guard++ {
			var pool []string
			if len(comms) > 0 {
				pool = pools[comms[rng.Intn(len(comms))]]
			} else {
				pool = genericWords
			}
			kwset[pool[poolZipf.Uint64()]] = true
		}
		kws := make([]string, 0, len(kwset))
		for k := range kwset {
			kws = append(kws, k)
		}
		// Map iteration order is random; sort so vocabulary interning (and
		// therefore the whole dataset) is deterministic in the seed.
		sort.Strings(kws)
		b.SetKeywords(int32(a), kws...)
	}

	g := b.MustBuild()

	// --- ground truth, topics, profiles ---
	// Member lists are already ascending (join is called in author-ID order),
	// so copying preserves sortedness; assert cheaply via sort.
	truth := make([][]int32, nc)
	for c := range members {
		truth[c] = append([]int32(nil), members[c]...)
		slices.Sort(truth[c])
	}
	topics := make([]string, nc)
	for c := 0; c < nc; c++ {
		topics[c] = topicNames[c%len(topicNames)]
	}
	profiles := make(map[int32]Profile, nFamous+cfg.Authors/100)
	addProfile := func(a int32) {
		areas := make([]string, 0, len(memberOf[a]))
		for _, c := range memberOf[a] {
			areas = append(areas, topics[c])
		}
		insts := []string{institutes[int(a)%len(institutes)]}
		if int(a)%3 == 0 {
			insts = append(insts, institutes[(int(a)+7)%len(institutes)])
		}
		interests := g.KeywordStrings(a)
		if len(interests) > 6 {
			interests = interests[:6]
		}
		profiles[a] = Profile{
			Name:       g.Name(a),
			Areas:      areas,
			Institutes: insts,
			Interests:  interests,
		}
	}
	for a := 0; a < nFamous; a++ {
		addProfile(int32(a))
	}
	// "Several hundreds of renowned researchers": profile every 100th author.
	for a := nFamous; a < cfg.Authors; a += 100 {
		addProfile(int32(a))
	}

	return &DBLP{Graph: g, Truth: truth, Profiles: profiles, Topics: topics}
}
