package gen

import (
	"reflect"
	"testing"

	"cexplorer/internal/kcore"
)

func TestFigure5Structure(t *testing.T) {
	g := Figure5()
	if g.N() != 10 || g.M() != 11 {
		t.Fatalf("N,M = %d,%d, want 10,11 (paper: \"10 vertices ... and 11 edges\")", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Keyword sets exactly as printed in Figure 5(a).
	want := map[string][]string{
		"A": {"w", "x", "y"}, "B": {"x"}, "C": {"x", "y"}, "D": {"x", "y", "z"},
		"E": {"y", "z"}, "F": {"y"}, "G": {"x", "y"}, "H": {"y", "z"},
		"I": {"x"}, "J": {"x"},
	}
	for name, kws := range want {
		v, ok := g.VertexByName(name)
		if !ok {
			t.Fatalf("vertex %s missing", name)
		}
		got := g.KeywordStrings(v)
		sortStrings(got)
		sortStrings(kws)
		if !reflect.DeepEqual(got, kws) {
			t.Fatalf("%s keywords = %v, want %v", name, got, kws)
		}
	}
	// Core numbers exactly as in Figure 5(b).
	core := kcore.Decompose(g)
	wantCore := map[string]int32{
		"A": 3, "B": 3, "C": 3, "D": 3, "E": 2,
		"F": 1, "G": 1, "H": 1, "I": 1, "J": 0,
	}
	for name, k := range wantCore {
		v, _ := g.VertexByName(name)
		if core[v] != k {
			t.Fatalf("core(%s) = %d, want %d", name, core[v], k)
		}
	}
	if Figure5VertexID("A") != 0 || Figure5VertexID("J") != 9 {
		t.Fatal("Figure5VertexID broken")
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestGenerateDBLPDeterministic(t *testing.T) {
	cfg := SmallDBLPConfig()
	a := GenerateDBLP(cfg)
	b := GenerateDBLP(cfg)
	if a.Graph.N() != b.Graph.N() || a.Graph.M() != b.Graph.M() {
		t.Fatalf("not deterministic: %d/%d vs %d/%d", a.Graph.N(), a.Graph.M(), b.Graph.N(), b.Graph.M())
	}
	for v := int32(0); v < int32(a.Graph.N()); v += 97 {
		if !reflect.DeepEqual(a.Graph.Keywords(v), b.Graph.Keywords(v)) {
			t.Fatalf("keywords differ at %d", v)
		}
	}
	cfg2 := cfg
	cfg2.Seed = 999
	c := GenerateDBLP(cfg2)
	if c.Graph.M() == a.Graph.M() && reflect.DeepEqual(c.Graph.Keywords(0), a.Graph.Keywords(0)) {
		t.Log("different seeds produced identical output; suspicious but not fatal")
	}
}

func TestGenerateDBLPShape(t *testing.T) {
	d := GenerateDBLP(SmallDBLPConfig())
	g := d.Graph
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	stats := g.ComputeStats()
	if stats.AvgDegree < 3 || stats.AvgDegree > 14 {
		t.Fatalf("avg degree %.2f outside DBLP-like range", stats.AvgDegree)
	}
	if stats.AvgKeywords < 6 || stats.AvgKeywords > 20 {
		t.Fatalf("avg keywords %.2f outside [6,20]", stats.AvgKeywords)
	}
	// Famous authors exist, are named, and are hubs (well above avg degree).
	jim, ok := g.VertexByName("jim gray")
	if !ok {
		t.Fatal("jim gray missing")
	}
	if d := g.Degree(jim); float64(d) < 2*stats.AvgDegree {
		t.Fatalf("jim gray degree %d not hub-like (avg %.1f)", d, stats.AvgDegree)
	}
	// Hubs must sit in a reasonably deep core so k=4..6 queries succeed.
	core := kcore.Decompose(g)
	if core[jim] < 4 {
		t.Fatalf("core(jim gray) = %d, want ≥ 4 for the paper's degree≥4 queries", core[jim])
	}
	// Ground truth covers all authors.
	seen := make([]bool, g.N())
	for _, comm := range d.Truth {
		for _, v := range comm {
			seen[v] = true
		}
	}
	missing := 0
	for _, s := range seen {
		if !s {
			missing++
		}
	}
	if missing > 0 {
		t.Fatalf("%d authors missing from ground truth", missing)
	}
	// Profiles include the famous authors with areas and interests.
	p, ok := d.Profiles[jim]
	if !ok || p.Name != "jim gray" || len(p.Areas) == 0 || len(p.Interests) == 0 {
		t.Fatalf("jim gray profile = %+v", p)
	}
}

func TestGenerateDBLPKeywordCommunityCorrelation(t *testing.T) {
	// Members of a community must share its topic vocabulary far more than
	// random pairs — the property ACQ exploits.
	d := GenerateDBLP(SmallDBLPConfig())
	g := d.Graph
	comm := d.Truth[0]
	if len(comm) < 10 {
		t.Skip("community 0 too small")
	}
	intra := avgPairJaccard(g, comm[:10])
	random := avgPairJaccard(g, []int32{1, 101, 201, 301, 401, 501, 601, 701, 801, 901})
	if intra <= random {
		t.Fatalf("intra-community keyword similarity %.3f not above random %.3f", intra, random)
	}
}

func avgPairJaccard(g interface {
	Keywords(int32) []int32
}, vs []int32) float64 {
	total, pairs := 0.0, 0
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			a, b := g.Keywords(vs[i]), g.Keywords(vs[j])
			inter := 0
			x, y := 0, 0
			for x < len(a) && y < len(b) {
				switch {
				case a[x] < b[y]:
					x++
				case a[x] > b[y]:
					y++
				default:
					inter++
					x++
					y++
				}
			}
			uni := len(a) + len(b) - inter
			if uni > 0 {
				total += float64(inter) / float64(uni)
			}
			pairs++
		}
	}
	return total / float64(pairs)
}

func TestGNM(t *testing.T) {
	g := GNM(100, 300, 7)
	if g.N() != 100 || g.M() != 300 {
		t.Fatalf("GNM: N,M = %d,%d", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Requesting more edges than possible clamps.
	g2 := GNM(5, 100, 7)
	if g2.M() != 10 {
		t.Fatalf("clamped GNM M = %d, want 10", g2.M())
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(500, 3, 11)
	if g.N() != 500 {
		t.Fatalf("N = %d", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Heavy tail: max degree far above average.
	st := g.ComputeStats()
	if float64(st.MaxDegree) < 3*st.AvgDegree {
		t.Fatalf("BA max degree %d vs avg %.1f: no hub tail", st.MaxDegree, st.AvgDegree)
	}
	if st.Components != 1 {
		t.Fatalf("BA graph should be connected, got %d components", st.Components)
	}
}

func TestPlantedPartition(t *testing.T) {
	g, truth := PlantedPartition(120, 4, 0.3, 0.01, 5)
	if g.N() != 120 || len(truth) != 4 {
		t.Fatalf("n=%d blocks=%d", g.N(), len(truth))
	}
	for _, blk := range truth {
		if len(blk) != 30 {
			t.Fatalf("block size %d, want 30", len(blk))
		}
	}
	// Intra-block edges must dominate inter-block.
	blockOf := make([]int, g.N())
	for c, blk := range truth {
		for _, v := range blk {
			blockOf[v] = c
		}
	}
	intra, inter := 0, 0
	g.Edges(func(u, v int32) bool {
		if blockOf[u] == blockOf[v] {
			intra++
		} else {
			inter++
		}
		return true
	})
	if intra <= inter {
		t.Fatalf("intra=%d inter=%d: partition not planted", intra, inter)
	}
}

func TestAuthorNames(t *testing.T) {
	if authorName(0) != "jim gray" {
		t.Fatalf("author 0 = %q", authorName(0))
	}
	if NumFamousAuthors() < 10 {
		t.Fatal("too few famous authors")
	}
	if FamousAuthor(1) != "michael stonebraker" {
		t.Fatalf("famous 1 = %q", FamousAuthor(1))
	}
	// Uniqueness over a large prefix.
	seen := map[string]bool{}
	for i := 0; i < 30000; i++ {
		n := authorName(i)
		if seen[n] {
			t.Fatalf("duplicate name %q at %d", n, i)
		}
		seen[n] = true
	}
}
