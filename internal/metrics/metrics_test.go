package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cexplorer/internal/gen"
	"cexplorer/internal/graph"
)

func fixture(t testing.TB) *graph.Graph {
	t.Helper()
	return gen.Figure5()
}

func TestCPJ(t *testing.T) {
	g := fixture(t)
	// {A,C,D}: W(A)={w,x,y}, W(C)={x,y}, W(D)={x,y,z}.
	// J(A,C)=2/3, J(A,D)=2/4, J(C,D)=2/3 → mean = (2/3+1/2+2/3)/3.
	got := CPJ(g, []int32{0, 2, 3})
	want := (2.0/3 + 0.5 + 2.0/3) / 3
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("CPJ = %f, want %f", got, want)
	}
	if CPJ(g, []int32{0}) != 0 || CPJ(g, nil) != 0 {
		t.Fatal("degenerate CPJ should be 0")
	}
}

func TestCPJRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.GenerateDBLP(gen.DBLPConfig{
			Authors: 200, Communities: 4, EdgeFactor: 2, CrossFrac: 0.05,
			KeywordsPerAuthor: 10, SecondaryProb: 0.2, Seed: seed,
		})
		vs := make([]int32, 0, 8)
		for i := 0; i < 8; i++ {
			vs = append(vs, int32(rng.Intn(g.Graph.N())))
		}
		c := CPJ(g.Graph, vs)
		return c >= 0 && c <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestCMF(t *testing.T) {
	g := fixture(t)
	// q=A (W={w,x,y}), community {A,C,D}:
	// C: |{x,y}∩{w,x,y}|/3 = 2/3; D: |{x,y,z}∩{w,x,y}|/3 = 2/3.
	got := CMF(g, []int32{0, 2, 3}, 0)
	want := 2.0 / 3
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("CMF = %f, want %f", got, want)
	}
	// q with no keywords (none in Figure 5; use community without others).
	if CMF(g, []int32{0}, 0) != 0 {
		t.Fatal("community of only q should give 0")
	}
}

func TestStatsAndAggregate(t *testing.T) {
	g := fixture(t)
	s := Stats(g, []int32{0, 1, 2, 3}) // the K4
	if s.Vertices != 4 || s.Edges != 6 || s.AvgDegree != 3 || s.MinDegree != 3 {
		t.Fatalf("stats = %+v", s)
	}
	sd := StatsWithDiameter(g, []int32{0, 1, 2, 3})
	if sd.Diameter != 1 {
		t.Fatalf("K4 diameter = %d", sd.Diameter)
	}
	agg := Aggregate([]CommunityStats{s, {Vertices: 2, Edges: 1, AvgDegree: 1}})
	if agg.Communities != 2 || agg.AvgVertices != 3 || agg.AvgEdges != 3.5 || agg.AvgDegree != 2 {
		t.Fatalf("aggregate = %+v", agg)
	}
	if got := Aggregate(nil); got.Communities != 0 {
		t.Fatalf("empty aggregate = %+v", got)
	}
}

func TestSetJaccardAndF1(t *testing.T) {
	a := []int32{1, 2, 3, 4}
	b := []int32{3, 4, 5, 6}
	if got := SetJaccard(a, b); got != 2.0/6 {
		t.Fatalf("SetJaccard = %f", got)
	}
	if got := F1(a, a); got != 1 {
		t.Fatalf("F1 self = %f", got)
	}
	if got := F1(a, []int32{9}); got != 0 {
		t.Fatalf("F1 disjoint = %f", got)
	}
	// F1 of a half-overlap: p=0.5, r=0.5 → 0.5.
	if got := F1([]int32{1, 2}, []int32{2, 3}); got != 0.5 {
		t.Fatalf("F1 = %f", got)
	}
	if F1(nil, a) != 0 || F1(a, nil) != 0 {
		t.Fatal("empty F1 should be 0")
	}
}

func TestNMI(t *testing.T) {
	a := []int32{0, 0, 1, 1}
	if got := NMI(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("NMI self = %f", got)
	}
	// Relabeled partition is identical.
	b := []int32{5, 5, 9, 9}
	if got := NMI(a, b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("NMI relabeled = %f", got)
	}
	// Completely uninformative second partition (all one label).
	c := []int32{7, 7, 7, 7}
	if got := NMI(a, c); got != 0 {
		t.Fatalf("NMI against trivial = %f", got)
	}
	if NMI(a, []int32{1}) != 0 {
		t.Fatal("mismatched lengths should give 0")
	}
	if NMI(c, c) != 1 {
		t.Fatal("identical trivial partitions should give 1")
	}
}

func TestNMIRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		a := make([]int32, n)
		b := make([]int32, n)
		for i := range a {
			a[i] = int32(rng.Intn(5))
			b[i] = int32(rng.Intn(5))
		}
		v := NMI(a, b)
		return v >= -1e-9 && v <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTheme(t *testing.T) {
	g := fixture(t)
	th := Theme(g, []int32{0, 2, 3}, 2)
	if len(th) != 2 || th[0] != "x" && th[0] != "y" {
		t.Fatalf("theme = %v", th)
	}
}

// TestACQBeatsRandomOnQuality reproduces the qualitative claim behind
// Figure 6(a)'s bars: a keyword-cohesive community scores higher CPJ/CMF
// than a random set of the same size around the same query.
func TestACQBeatsRandomOnQuality(t *testing.T) {
	g := fixture(t)
	acq := []int32{0, 2, 3}    // the ACQ answer for (A,2,{w,x,y})
	random := []int32{0, 5, 8} // A, F, I
	if CPJ(g, acq) <= CPJ(g, random) {
		t.Fatalf("CPJ(acq)=%f ≤ CPJ(random)=%f", CPJ(g, acq), CPJ(g, random))
	}
	if CMF(g, acq, 0) <= CMF(g, random, 0) {
		t.Fatalf("CMF(acq) ≤ CMF(random)")
	}
}
