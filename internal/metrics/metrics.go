// Package metrics implements the Comparison Analysis module of C-Explorer
// (§4 "Comparison analysis"): the CPJ and CMF community-quality metrics of
// the ACQ paper, community statistics (the Figure 6(a) table), and the
// partition-overlap measures (Jaccard, F1, NMI) used to compare CR
// algorithms' outputs.
package metrics

import (
	"math"
	"slices"

	"cexplorer/internal/ds"
	"cexplorer/internal/graph"
)

// CPJ — community pair-wise Jaccard — is "the average similarity over all
// pairs of vertices" (§4): the mean Jaccard similarity of the keyword sets
// of every vertex pair in the community. Higher means the members' content
// is more mutually similar. Returns 0 for communities of fewer than 2
// vertices.
func CPJ(g *graph.Graph, community []int32) float64 {
	n := len(community)
	if n < 2 {
		return 0
	}
	total := 0.0
	for i := 0; i < n; i++ {
		wi := g.Keywords(community[i])
		for j := i + 1; j < n; j++ {
			total += ds.JaccardSorted(wi, g.Keywords(community[j]))
		}
	}
	return total / float64(n*(n-1)/2)
}

// CMF — community member frequency — is "the average frequency of keywords
// in W(q) for all the vertices in the community" (§4): for every member v,
// the fraction of q's keywords that v also carries, averaged over members.
// q itself is excluded from the average (it trivially scores 1). Returns 0
// when q has no keywords or the community has no other member.
func CMF(g *graph.Graph, community []int32, q int32) float64 {
	wq := g.Keywords(q)
	if len(wq) == 0 {
		return 0
	}
	total, cnt := 0.0, 0
	for _, v := range community {
		if v == q {
			continue
		}
		total += float64(ds.IntersectionSize(g.Keywords(v), wq)) / float64(len(wq))
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return total / float64(cnt)
}

// CommunityStats is one row of the Figure 6(a) statistics table.
type CommunityStats struct {
	Vertices  int
	Edges     int
	AvgDegree float64
	MinDegree int
	Diameter  int // 0 unless WithDiameter was used
}

// Stats computes the statistics row for one community.
func Stats(g *graph.Graph, community []int32) CommunityStats {
	sub := g.Induce(community)
	return CommunityStats{
		Vertices:  sub.N(),
		Edges:     sub.M(),
		AvgDegree: sub.AvgDegree(),
		MinDegree: sub.MinDegree(),
	}
}

// StatsWithDiameter additionally computes the exact diameter (communities
// are small; BFS from every member).
func StatsWithDiameter(g *graph.Graph, community []int32) CommunityStats {
	s := Stats(g, community)
	if s.Vertices > 0 {
		s.Diameter = g.Diameter(community)
	}
	return s
}

// AggregateStats averages the per-community statistics of one method's
// output, the way the Figure 6(a) table reports "the numbers of returned
// communities, as well as their average numbers of vertices, edges, and
// degrees".
type AggregateStats struct {
	Communities int
	AvgVertices float64
	AvgEdges    float64
	AvgDegree   float64
}

// Aggregate combines per-community stats rows.
func Aggregate(rows []CommunityStats) AggregateStats {
	agg := AggregateStats{Communities: len(rows)}
	if len(rows) == 0 {
		return agg
	}
	for _, r := range rows {
		agg.AvgVertices += float64(r.Vertices)
		agg.AvgEdges += float64(r.Edges)
		agg.AvgDegree += r.AvgDegree
	}
	n := float64(len(rows))
	agg.AvgVertices /= n
	agg.AvgEdges /= n
	agg.AvgDegree /= n
	return agg
}

// SetJaccard returns |A∩B|/|A∪B| over vertex sets (the "similarity
// analysis" of two methods' communities).
func SetJaccard(a, b []int32) float64 {
	as := append([]int32(nil), a...)
	bs := append([]int32(nil), b...)
	slices.Sort(as)
	slices.Sort(bs)
	return ds.JaccardSorted(as, bs)
}

// F1 returns the harmonic mean of precision and recall of predicted vertex
// set `pred` against ground truth `truth`.
func F1(pred, truth []int32) float64 {
	if len(pred) == 0 || len(truth) == 0 {
		return 0
	}
	ps := append([]int32(nil), pred...)
	ts := append([]int32(nil), truth...)
	slices.Sort(ps)
	slices.Sort(ts)
	inter := float64(ds.IntersectionSize(ps, ts))
	if inter == 0 {
		return 0
	}
	p := inter / float64(len(ps))
	r := inter / float64(len(ts))
	return 2 * p * r / (p + r)
}

// NMI computes normalized mutual information between two partitions given
// as label arrays over the same vertex set. 1 = identical partitions,
// 0 = independent. Uses the arithmetic-mean normalization.
func NMI(a, b []int32) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	n := float64(len(a))
	ca := map[int32]float64{}
	cb := map[int32]float64{}
	joint := map[int64]float64{}
	for i := range a {
		ca[a[i]]++
		cb[b[i]]++
		joint[int64(a[i])<<32|int64(uint32(b[i]))]++
	}
	var ia, ib, mi float64
	for _, c := range ca {
		p := c / n
		ia -= p * math.Log(p)
	}
	for _, c := range cb {
		p := c / n
		ib -= p * math.Log(p)
	}
	for key, c := range joint {
		pa := ca[int32(key>>32)] / n
		pb := cb[int32(uint32(key))] / n
		p := c / n
		mi += p * math.Log(p/(pa*pb))
	}
	denom := (ia + ib) / 2
	if denom == 0 {
		return 1 // both partitions trivial and identical
	}
	return mi / denom
}

// Theme returns the community's theme keywords (Figure 1's "Theme:" line):
// the most frequent keywords among members, as strings.
func Theme(g *graph.Graph, community []int32, limit int) []string {
	return g.Vocab().Words(g.TopKeywords(community, limit))
}
