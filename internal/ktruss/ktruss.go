// Package ktruss implements truss decomposition and k-truss community
// search (Huang et al., SIGMOD'14), the alternative structure-cohesiveness
// measure §2 of the paper cites ("Other structure cohesiveness measures,
// including connectivity and k-truss, have also been considered"). It plugs
// into C-Explorer through the same CS-algorithm API as Global/Local.
//
// A k-truss is the maximal subgraph in which every edge is supported by at
// least k−2 triangles; the community of a query vertex q is a maximal
// triangle-connected set of trussness-≥k edges incident to q.
//
// The engine is CSR-native: every per-edge array is indexed by the graph's
// canonical edge IDs (graph.EdgeIDs), so neither support counting nor
// peeling ever resolves a {u,v} pair through a hash map. Support counting is
// an oriented triangle enumeration — edges point from the earlier to the
// later endpoint in the degeneracy order, bounding out-degrees by the graph
// degeneracy — sharded across vertex chunks over a configurable worker pool
// with per-worker counters merged into the shared support array. The peel
// loop is the same bucket-queue structure the k-core peeler uses (supports
// only decrease, one bucket at a time), replacing the former
// sort.Slice + binary-heap pipeline: O(m + Σ support) instead of
// O(m log m).
package ktruss

import (
	"context"
	"slices"
	"sync/atomic"

	"cexplorer/internal/ds"
	"cexplorer/internal/graph"
	"cexplorer/internal/kcore"
	"cexplorer/internal/par"
)

// cancelCheckStride is how many edges the context-aware decomposition
// processes between ctx.Err() polls.
const cancelCheckStride = 4096

// countChunk is how many vertices a support-counting worker claims at a
// time. Chunked claiming (rather than one contiguous span per worker)
// load-balances the skewed per-vertex triangle work.
const countChunk = 256

// Decomposition holds per-edge trussness for one graph. Per-edge arrays are
// indexed by the graph's canonical edge IDs (graph.EdgeIDs order, which is
// also the (u<v)-lexicographic order Edges enumerates).
type Decomposition struct {
	g     *graph.Graph
	edges [][2]int32 // edge id -> (u,v), u < v
	truss []int32    // edge id -> trussness (≥ 2)
}

// Decompose computes the trussness of every edge via support peeling, using
// the process-default worker count (par.Workers) for support counting.
func Decompose(g *graph.Graph) *Decomposition {
	d, _ := DecomposeContext(context.Background(), g)
	return d
}

// DecomposeContext is Decompose with cooperative cancellation: support
// counting and the peel loop poll ctx every few thousand edges and return
// ctx.Err() when the request is canceled or past its deadline.
func DecomposeContext(ctx context.Context, g *graph.Graph) (*Decomposition, error) {
	return DecomposeParallel(ctx, g, 0)
}

// DecomposeParallel is DecomposeContext with an explicit worker count for
// the support-counting phase (≤ 0 = process default). The result is
// identical for every worker count; only wall time differs.
func DecomposeParallel(ctx context.Context, g *graph.Graph, workers int) (*Decomposition, error) {
	d := &Decomposition{g: g, edges: g.EdgeTable(), truss: make([]int32, g.M())}
	support, tris, err := countSupport(ctx, g, workers)
	if err != nil {
		return nil, err
	}
	if err := d.peel(ctx, support, tris); err != nil {
		return nil, err
	}
	return d, nil
}

// orientation is the degeneracy-oriented CSR: for each vertex, the neighbors
// later in the degeneracy order, sorted by vertex id, with the canonical
// edge ID carried alongside each slot.
type orientation struct {
	off []int32 // len n+1
	adj []int32 // len m, out-neighbors (ascending vertex id per vertex)
	eid []int32 // len m, canonical edge id of each out-edge
}

// orient builds the degeneracy orientation. Out-degrees are bounded by the
// graph degeneracy, which caps the quadratic term of triangle merging.
//
// The k-core peel here is independent of any core index the caller may
// hold: after a mutation the dataset's core numbers are maintained
// incrementally and no degeneracy order exists for reuse, so the truss
// build always derives its own (an O(n+m) bin sort, a few percent of the
// build).
func orient(g *graph.Graph) orientation {
	n := g.N()
	_, order := kcore.DecomposeOrder(g)
	rank := make([]int32, n)
	for i, v := range order {
		rank[v] = int32(i)
	}
	o := orientation{
		off: make([]int32, n+1),
		adj: make([]int32, g.M()),
		eid: make([]int32, g.M()),
	}
	for v := int32(0); v < int32(n); v++ {
		out := int32(0)
		for _, u := range g.Neighbors(v) {
			if rank[u] > rank[v] {
				out++
			}
		}
		o.off[v+1] = o.off[v] + out
	}
	for v := int32(0); v < int32(n); v++ {
		nb, ids := g.Neighbors(v), g.EdgeIDs(v)
		w := o.off[v]
		for i, u := range nb {
			if rank[u] > rank[v] {
				o.adj[w] = u
				o.eid[w] = ids[i]
				w++
			}
		}
	}
	return o
}

// triangles is the per-edge triangle incidence in CSR form: for edge e, the
// pairs slice holds (other1, other2) edge-ID pairs, one per triangle through
// e, at pair offsets [off[e], off[e+1]). Materializing it costs O(T) memory
// (3 incidences per triangle) and turns the peel loop into a pure array walk
// — no adjacency re-intersection per removed edge.
type triangles struct {
	off   []int64 // len m+1, pair offsets (int64: the 3T total may exceed int32)
	pairs []int32 // len 2·3T, (e1,e2) flattened
}

// countSupport computes the triangle count of every edge by enumerating each
// triangle exactly once from its earliest-ranked vertex: for every oriented
// edge u→v, the common out-neighbors of u and v close triangles whose three
// edge IDs are all at hand during the merge. Vertex chunks are claimed off a
// shared cursor by `workers` goroutines; each worker accumulates counts into
// its own counter array and records the triangles it finds in its own
// triple buffer, so the hot loop takes no locks and no atomics. The counter
// arrays are merged (in parallel, by edge range) and the triple buffers are
// scattered into the triangle CSR at the end.
func countSupport(ctx context.Context, g *graph.Graph, workers int) ([]int32, triangles, error) {
	n, m := g.N(), g.M()
	o := orient(g)
	w := par.Clamp(workers, n)
	// Each worker beyond the first costs a 4m-byte counter replica, so cap
	// the pool by a memory budget: on huge graphs (hundreds of millions of
	// edges) many-core counting would otherwise allocate workers×4m bytes
	// and OOM where the serial engine ran fine — degrade to fewer workers
	// instead.
	const counterBudget = 1 << 30 // 1 GiB across all replicas
	if maxW := counterBudget / (4 * max(m, 1)); w > maxW {
		w = max(maxW, 1)
	}

	counters := make([][]int32, w)
	counters[0] = make([]int32, m)
	for i := 1; i < w; i++ {
		counters[i] = make([]int32, m)
	}
	triples := make([][]int32, w) // flat (euv, euw, evw) per triangle

	var cursor atomic.Int64
	var canceled atomic.Bool
	par.Range(w, w, func(worker, _, _ int) {
		support := counters[worker]
		buf := triples[worker]
		for {
			lo := int(cursor.Add(countChunk)) - countChunk
			if lo >= n || canceled.Load() {
				break
			}
			if ctx.Err() != nil {
				canceled.Store(true)
				break
			}
			hi := min(lo+countChunk, n)
			for u := int32(lo); u < int32(hi); u++ {
				us, ue := o.off[u], o.off[u+1]
				for p := us; p < ue; p++ {
					v, euv := o.adj[p], o.eid[p]
					// Merge out(u) ∩ out(v); each common w closes the
					// triangle {u,v,w} with rank(u) < rank(v) < rank(w) —
					// counted exactly once across all workers.
					i, j := us, o.off[v]
					je := o.off[v+1]
					for i < ue && j < je {
						switch {
						case o.adj[i] < o.adj[j]:
							i++
						case o.adj[i] > o.adj[j]:
							j++
						default:
							euw, evw := o.eid[i], o.eid[j]
							support[euv]++
							support[euw]++
							support[evw]++
							buf = append(buf, euv, euw, evw)
							i++
							j++
						}
					}
				}
			}
		}
		triples[worker] = buf
	})
	if canceled.Load() {
		return nil, triangles{}, ctx.Err()
	}
	if w > 1 {
		par.Range(m, w, func(_, lo, hi int) {
			dst := counters[0]
			for _, src := range counters[1:] {
				for e := lo; e < hi; e++ {
					dst[e] += src[e]
				}
			}
		})
	}
	support := counters[0]

	// Counting-sort the triples into per-edge CSR: support[e] is exactly the
	// number of triangles through e, so the offsets are its prefix sums.
	tris := triangles{off: make([]int64, m+1)}
	for e := 0; e < m; e++ {
		tris.off[e+1] = tris.off[e] + int64(support[e])
	}
	tris.pairs = make([]int32, 2*tris.off[m])
	next := make([]int64, m)
	copy(next, tris.off[:m])
	put := func(e, o1, o2 int32) {
		tris.pairs[2*next[e]] = o1
		tris.pairs[2*next[e]+1] = o2
		next[e]++
	}
	polled := 0
	for _, buf := range triples {
		for t := 0; t < len(buf); t += 3 {
			if polled%cancelCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, triangles{}, err
				}
			}
			polled++
			a, b, c := buf[t], buf[t+1], buf[t+2]
			put(a, b, c)
			put(b, a, c)
			put(c, a, b)
		}
	}
	return support, tris, nil
}

// peel removes edges in nondecreasing support order with the bucket-queue
// structure of the k-core peeler: a counting sort seeds the order, and a
// support decrement moves an edge one bucket down by swapping it with its
// bucket's front. Supports only ever decrease and never below the current
// peel level, so position i is final once iteration i reaches it. Removing
// an edge walks its materialized triangle list rather than re-intersecting
// adjacency — O(m + Σ support) total, no heap, no pre-sort, no lookups.
func (d *Decomposition) peel(ctx context.Context, support []int32, tris triangles) error {
	m := len(support)
	if m == 0 {
		return nil
	}
	maxSup := int32(0)
	for _, s := range support {
		if s > maxSup {
			maxSup = s
		}
	}
	// bin[s] = start offset of the support-s block in vert.
	bin := make([]int32, maxSup+2)
	for _, s := range support {
		bin[s+1]++
	}
	for s := int32(1); s <= maxSup+1; s++ {
		bin[s] += bin[s-1]
	}
	vert := make([]int32, m) // edge ids sorted by current support
	pos := make([]int32, m)  // position of each edge id in vert
	next := make([]int32, maxSup+1)
	copy(next, bin[:maxSup+1])
	for id := int32(0); id < int32(m); id++ {
		p := next[support[id]]
		vert[p] = id
		pos[id] = p
		next[support[id]]++
	}

	removed := make([]bool, m)
	for i := 0; i < m; i++ {
		if i%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		id := vert[i]
		s := support[id]
		removed[id] = true
		d.truss[id] = s + 2
		// Every still-alive triangle through this edge loses it: drop the
		// supports of the two other sides one bucket each, floored at the
		// current level.
		for t := tris.off[id]; t < tris.off[id+1]; t++ {
			e1, e2 := tris.pairs[2*t], tris.pairs[2*t+1]
			if removed[e1] || removed[e2] {
				continue
			}
			if support[e1] > s {
				demote(support, bin, vert, pos, e1)
			}
			if support[e2] > s {
				demote(support, bin, vert, pos, e2)
			}
		}
	}
	return nil
}

// demote moves edge e one support bucket down: swap it with the front of its
// current block, advance the block start, decrement its support.
func demote(support, bin, vert, pos []int32, e int32) {
	se := support[e]
	pe := pos[e]
	pf := bin[se]
	f := vert[pf]
	if e != f {
		vert[pe], vert[pf] = f, e
		pos[e], pos[f] = pf, pe
	}
	bin[se]++
	support[e]--
}

// lookup resolves edge {u,v} to its canonical id via the graph's edge-ID
// surface (binary search on the shorter adjacency list — no hash map). IDs
// follow g.Edges order, which is exactly the order Parts serializes and
// FromParts validates, so decompositions loaded from a snapshot resolve
// through the same surface.
func (d *Decomposition) lookup(u, v int32) (int32, bool) {
	return d.g.EdgeID(u, v)
}

// Trussness returns the trussness of edge {u,v}; ok is false if not an edge.
func (d *Decomposition) Trussness(u, v int32) (int32, bool) {
	id, ok := d.lookup(u, v)
	if !ok {
		return 0, false
	}
	return d.truss[id], true
}

// MaxTruss returns the maximum edge trussness (0 for edgeless graphs).
func (d *Decomposition) MaxTruss() int32 {
	var mx int32
	for _, t := range d.truss {
		if t > mx {
			mx = t
		}
	}
	return mx
}

// Graph returns the decomposed graph.
func (d *Decomposition) Graph() *graph.Graph { return d.g }

// Community is one triangle-connected k-truss community: its vertex set and
// the edge class that defines it.
type Community struct {
	Vertices []int32    // ascending
	Edges    [][2]int32 // the triangle-connected edge class, (u<v) pairs
}

// Communities returns the triangle-connected k-truss communities containing
// q as ascending vertex sets, largest first. Following Huang et al., two
// edges are connected when they share a triangle whose three edges all have
// trussness ≥ k.
func (d *Decomposition) Communities(q int32, k int32) [][]int32 {
	out, _ := d.CommunitiesContext(context.Background(), q, k)
	return out
}

// CommunitiesContext is Communities with cooperative cancellation: the
// triangle-connectivity BFS polls ctx every few thousand edge expansions.
func (d *Decomposition) CommunitiesContext(ctx context.Context, q int32, k int32) ([][]int32, error) {
	full, err := d.communitiesWithEdges(ctx, q, k)
	if err != nil || full == nil {
		return nil, err
	}
	out := make([][]int32, len(full))
	for i, c := range full {
		out[i] = c.Vertices
	}
	return out, nil
}

// CommunitiesWithEdges is Communities with the defining edge classes
// retained (used by analysis and by invariant tests).
func (d *Decomposition) CommunitiesWithEdges(q int32, k int32) []Community {
	out, _ := d.communitiesWithEdges(context.Background(), q, k)
	return out
}

func (d *Decomposition) communitiesWithEdges(ctx context.Context, q int32, k int32) ([]Community, error) {
	if q < 0 || int(q) >= d.g.N() || k < 2 {
		return nil, nil
	}
	g := d.g
	visited := make(map[int32]bool)
	var out []Community
	expansions := 0
	qnb, qids := g.Neighbors(q), g.EdgeIDs(q)
	for qi := range qnb {
		seed := qids[qi]
		if d.truss[seed] < k || visited[seed] {
			continue
		}
		// BFS over triangle-adjacent edges of trussness ≥ k.
		verts := map[int32]bool{}
		var classEdges [][2]int32
		queue := []int32{seed}
		visited[seed] = true
		for len(queue) > 0 {
			if expansions%cancelCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			expansions++
			id := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			u, w := d.edges[id][0], d.edges[id][1]
			verts[u] = true
			verts[w] = true
			classEdges = append(classEdges, d.edges[id])
			forEachCommonEdge(g.Neighbors(u), g.EdgeIDs(u), g.Neighbors(w), g.EdgeIDs(w),
				func(_, e1, e2 int32) {
					if d.truss[e1] < k || d.truss[e2] < k {
						return
					}
					if !visited[e1] {
						visited[e1] = true
						queue = append(queue, e1)
					}
					if !visited[e2] {
						visited[e2] = true
						queue = append(queue, e2)
					}
				})
		}
		vs := make([]int32, 0, len(verts))
		for v := range verts {
			vs = append(vs, v)
		}
		slices.Sort(vs)
		slices.SortFunc(classEdges, func(a, b [2]int32) int {
			if a[0] != b[0] {
				return int(a[0] - b[0])
			}
			return int(a[1] - b[1])
		})
		out = append(out, Community{Vertices: vs, Edges: classEdges})
	}
	slices.SortFunc(out, func(a, b Community) int {
		if len(a.Vertices) != len(b.Vertices) {
			return len(b.Vertices) - len(a.Vertices)
		}
		return int(a.Vertices[0] - b.Vertices[0])
	})
	return out, nil
}

// forEachCommonEdge intersects two sorted adjacency lists, calling fn with
// each common neighbor w and the canonical edge IDs of (a,w) and (b,w)
// taken from the parallel edge-ID spans — triangle enumeration without a
// single edge lookup. Comparable sizes intersect by linear merge; skewed
// pairs (a hub against a low-degree vertex) probe the longer list by binary
// search instead, turning O(d_max) into O(d_min·log d_max).
func forEachCommonEdge(nbA, eidA, nbB, eidB []int32, fn func(w, ea, eb int32)) {
	if len(nbA) > len(nbB) {
		nbA, nbB = nbB, nbA
		eidA, eidB = eidB, eidA
		inner := fn
		fn = func(w, ea, eb int32) { inner(w, eb, ea) }
	}
	if len(nbA)*16 < len(nbB) {
		for i, w := range nbA {
			if j, ok := ds.IndexSorted(nbB, w); ok {
				fn(w, eidA[i], eidB[j])
			}
		}
		return
	}
	i, j := 0, 0
	for i < len(nbA) && j < len(nbB) {
		switch {
		case nbA[i] < nbB[j]:
			i++
		case nbA[i] > nbB[j]:
			j++
		default:
			fn(nbA[i], eidA[i], eidB[j])
			i++
			j++
		}
	}
}
