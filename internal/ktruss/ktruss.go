// Package ktruss implements truss decomposition and k-truss community
// search (Huang et al., SIGMOD'14), the alternative structure-cohesiveness
// measure §2 of the paper cites ("Other structure cohesiveness measures,
// including connectivity and k-truss, have also been considered"). It plugs
// into C-Explorer through the same CS-algorithm API as Global/Local.
//
// A k-truss is the maximal subgraph in which every edge is supported by at
// least k−2 triangles; the community of a query vertex q is a maximal
// triangle-connected set of trussness-≥k edges incident to q.
package ktruss

import (
	"context"
	"sort"

	"cexplorer/internal/graph"
)

// cancelCheckStride is how many edges the context-aware decomposition
// processes between ctx.Err() polls.
const cancelCheckStride = 4096

// Decomposition holds per-edge trussness for one graph.
type Decomposition struct {
	g     *graph.Graph
	edges [][2]int32 // edge id -> (u,v), u < v
	truss []int32    // edge id -> trussness (≥ 2)
	index map[int64]int32
}

func edgeKey(u, v int32) int64 {
	if u > v {
		u, v = v, u
	}
	return int64(u)<<32 | int64(v)
}

// Decompose computes the trussness of every edge via support peeling.
func Decompose(g *graph.Graph) *Decomposition {
	d, _ := DecomposeContext(context.Background(), g)
	return d
}

// DecomposeContext is Decompose with cooperative cancellation: the support
// computation and the peel loop poll ctx every few thousand edges and return
// ctx.Err() when the request is canceled or past its deadline.
func DecomposeContext(ctx context.Context, g *graph.Graph) (*Decomposition, error) {
	m := g.M()
	d := &Decomposition{
		g:     g,
		edges: make([][2]int32, 0, m),
		truss: make([]int32, m),
		index: make(map[int64]int32, m),
	}
	g.Edges(func(u, v int32) bool {
		d.index[edgeKey(u, v)] = int32(len(d.edges))
		d.edges = append(d.edges, [2]int32{u, v})
		return true
	})

	// Support = triangle count per edge.
	support := make([]int32, m)
	for id, e := range d.edges {
		if id%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		support[id] = int32(countCommon(g.Neighbors(e[0]), g.Neighbors(e[1])))
	}

	// Peel edges in nondecreasing support order (lazy heap via buckets).
	removed := make([]bool, m)
	order := make([]int32, m)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool { return support[order[i]] < support[order[j]] })
	// A simple re-sift loop: since supports only decrease, process with a
	// priority queue keyed by current support.
	pq := &supportQueue{support: support}
	for _, id := range order {
		pq.push(id)
	}
	pops := 0
	for pq.len() > 0 {
		if pops%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		pops++
		id := pq.popMin()
		if removed[id] {
			continue
		}
		removed[id] = true
		s := support[id]
		d.truss[id] = s + 2
		u, v := d.edges[id][0], d.edges[id][1]
		forEachCommon(d.g.Neighbors(u), d.g.Neighbors(v), func(w int32) {
			e1, ok1 := d.lookup(u, w)
			e2, ok2 := d.lookup(v, w)
			if !ok1 || !ok2 || removed[e1] || removed[e2] {
				return
			}
			if support[e1] > s {
				support[e1]--
				pq.push(e1)
			}
			if support[e2] > s {
				support[e2]--
				pq.push(e2)
			}
		})
	}
	return d, nil
}

// lookup resolves edge {u,v} to its id via the hash index when present
// (Decompose builds one — its peeling loop does random lookups), else by
// binary search over the (u<v)-lexicographically sorted edge table
// (FromParts skips the index build so snapshot loads stay O(read)).
func (d *Decomposition) lookup(u, v int32) (int32, bool) {
	if u > v {
		u, v = v, u
	}
	if d.index != nil {
		id, ok := d.index[edgeKey(u, v)]
		return id, ok
	}
	lo, hi := 0, len(d.edges)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		e := d.edges[mid]
		if e[0] < u || (e[0] == u && e[1] < v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(d.edges) && d.edges[lo][0] == u && d.edges[lo][1] == v {
		return int32(lo), true
	}
	return 0, false
}

// Trussness returns the trussness of edge {u,v}; ok is false if not an edge.
func (d *Decomposition) Trussness(u, v int32) (int32, bool) {
	id, ok := d.lookup(u, v)
	if !ok {
		return 0, false
	}
	return d.truss[id], true
}

// MaxTruss returns the maximum edge trussness (0 for edgeless graphs).
func (d *Decomposition) MaxTruss() int32 {
	var mx int32
	for _, t := range d.truss {
		if t > mx {
			mx = t
		}
	}
	return mx
}

// Graph returns the decomposed graph.
func (d *Decomposition) Graph() *graph.Graph { return d.g }

// Community is one triangle-connected k-truss community: its vertex set and
// the edge class that defines it.
type Community struct {
	Vertices []int32    // ascending
	Edges    [][2]int32 // the triangle-connected edge class, (u<v) pairs
}

// Communities returns the triangle-connected k-truss communities containing
// q as ascending vertex sets, largest first. Following Huang et al., two
// edges are connected when they share a triangle whose three edges all have
// trussness ≥ k.
func (d *Decomposition) Communities(q int32, k int32) [][]int32 {
	out, _ := d.CommunitiesContext(context.Background(), q, k)
	return out
}

// CommunitiesContext is Communities with cooperative cancellation: the
// triangle-connectivity BFS polls ctx every few thousand edge expansions.
func (d *Decomposition) CommunitiesContext(ctx context.Context, q int32, k int32) ([][]int32, error) {
	full, err := d.communitiesWithEdges(ctx, q, k)
	if err != nil || full == nil {
		return nil, err
	}
	out := make([][]int32, len(full))
	for i, c := range full {
		out[i] = c.Vertices
	}
	return out, nil
}

// CommunitiesWithEdges is Communities with the defining edge classes
// retained (used by analysis and by invariant tests).
func (d *Decomposition) CommunitiesWithEdges(q int32, k int32) []Community {
	out, _ := d.communitiesWithEdges(context.Background(), q, k)
	return out
}

func (d *Decomposition) communitiesWithEdges(ctx context.Context, q int32, k int32) ([]Community, error) {
	if q < 0 || int(q) >= d.g.N() || k < 2 {
		return nil, nil
	}
	visited := make(map[int32]bool)
	var out []Community
	expansions := 0
	for _, v := range d.g.Neighbors(q) {
		seed, ok := d.lookup(q, v)
		if !ok || d.truss[seed] < k || visited[seed] {
			continue
		}
		// BFS over triangle-adjacent edges of trussness ≥ k.
		verts := map[int32]bool{}
		var classEdges [][2]int32
		queue := []int32{seed}
		visited[seed] = true
		for len(queue) > 0 {
			if expansions%cancelCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			expansions++
			id := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			u, w := d.edges[id][0], d.edges[id][1]
			verts[u] = true
			verts[w] = true
			classEdges = append(classEdges, d.edges[id])
			forEachCommon(d.g.Neighbors(u), d.g.Neighbors(w), func(x int32) {
				e1, ok1 := d.lookup(u, x)
				e2, ok2 := d.lookup(w, x)
				if !ok1 || !ok2 || d.truss[e1] < k || d.truss[e2] < k {
					return
				}
				if !visited[e1] {
					visited[e1] = true
					queue = append(queue, e1)
				}
				if !visited[e2] {
					visited[e2] = true
					queue = append(queue, e2)
				}
			})
		}
		vs := make([]int32, 0, len(verts))
		for v := range verts {
			vs = append(vs, v)
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		sort.Slice(classEdges, func(i, j int) bool {
			if classEdges[i][0] != classEdges[j][0] {
				return classEdges[i][0] < classEdges[j][0]
			}
			return classEdges[i][1] < classEdges[j][1]
		})
		out = append(out, Community{Vertices: vs, Edges: classEdges})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Vertices) != len(out[j].Vertices) {
			return len(out[i].Vertices) > len(out[j].Vertices)
		}
		return out[i].Vertices[0] < out[j].Vertices[0]
	})
	return out, nil
}

// supportQueue is a monotone lazy priority queue over edge ids keyed by
// current support. Stale entries (pushed before a support decrement) are
// skipped on pop because the stored key no longer matches.
type supportQueue struct {
	support []int32
	heap    []int32 // edge ids
	keys    []int32 // key at push time
}

func (q *supportQueue) len() int { return len(q.heap) }

func (q *supportQueue) push(id int32) {
	q.heap = append(q.heap, id)
	q.keys = append(q.keys, q.support[id])
	i := len(q.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if q.keys[p] <= q.keys[i] {
			break
		}
		q.swap(i, p)
		i = p
	}
}

func (q *supportQueue) popMin() int32 {
	for {
		id := q.heap[0]
		key := q.keys[0]
		last := len(q.heap) - 1
		q.swap(0, last)
		q.heap = q.heap[:last]
		q.keys = q.keys[:last]
		if last > 0 {
			q.down(0)
		}
		if key == q.support[id] {
			return id
		}
		// Stale entry: the edge was re-pushed with a smaller key; skip.
		if last == 0 {
			return id
		}
	}
}

func (q *supportQueue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.keys[i], q.keys[j] = q.keys[j], q.keys[i]
}

func (q *supportQueue) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && q.keys[l] < q.keys[min] {
			min = l
		}
		if r < n && q.keys[r] < q.keys[min] {
			min = r
		}
		if min == i {
			return
		}
		q.swap(i, min)
		i = min
	}
}

func countCommon(a, b []int32) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

func forEachCommon(a, b []int32, fn func(w int32)) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			fn(a[i])
			i++
			j++
		}
	}
}
