package ktruss

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"slices"
	"testing"
	"testing/quick"

	"cexplorer/internal/gen"
	"cexplorer/internal/graph"
)

func TestDecomposeFigure5(t *testing.T) {
	g := gen.Figure5()
	d := Decompose(g)
	want := map[[2]string]int32{
		{"A", "B"}: 4, {"A", "C"}: 4, {"A", "D"}: 4,
		{"B", "C"}: 4, {"B", "D"}: 4, {"C", "D"}: 4,
		{"C", "E"}: 3, {"D", "E"}: 3,
		{"E", "F"}: 2, {"A", "G"}: 2, {"H", "I"}: 2,
	}
	for pair, k := range want {
		u, _ := g.VertexByName(pair[0])
		v, _ := g.VertexByName(pair[1])
		got, ok := d.Trussness(u, v)
		if !ok {
			t.Fatalf("edge %v missing", pair)
		}
		if got != k {
			t.Fatalf("truss(%v) = %d, want %d", pair, got, k)
		}
	}
	if d.MaxTruss() != 4 {
		t.Fatalf("MaxTruss = %d", d.MaxTruss())
	}
	if _, ok := d.Trussness(0, 9); ok {
		t.Fatal("non-edge reported trussness")
	}
}

func TestCommunitiesFigure5(t *testing.T) {
	g := gen.Figure5()
	d := Decompose(g)
	// k=4: the K4.
	comms := d.Communities(0, 4)
	if len(comms) != 1 || !reflect.DeepEqual(comms[0], []int32{0, 1, 2, 3}) {
		t.Fatalf("k=4 communities = %v", comms)
	}
	// k=3: K4 plus E through the CDE triangle.
	comms = d.Communities(0, 3)
	if len(comms) != 1 || !reflect.DeepEqual(comms[0], []int32{0, 1, 2, 3, 4}) {
		t.Fatalf("k=3 communities = %v", comms)
	}
	// k=2: triangle component {A..E} and the triangle-less pendant edge A–G.
	comms = d.Communities(0, 2)
	if len(comms) != 2 {
		t.Fatalf("k=2 communities = %v", comms)
	}
	if !reflect.DeepEqual(comms[0], []int32{0, 1, 2, 3, 4}) || !reflect.DeepEqual(comms[1], []int32{0, 6}) {
		t.Fatalf("k=2 communities = %v", comms)
	}
	// k beyond max truss: none.
	if got := d.Communities(0, 5); got != nil {
		t.Fatalf("k=5 communities = %v", got)
	}
	// Invalid args.
	if d.Communities(-1, 3) != nil || d.Communities(0, 1) != nil {
		t.Fatal("invalid args accepted")
	}
}

// naiveTrussness computes trussness by definition: for each k, repeatedly
// delete edges with < k-2 triangles until fixpoint; an edge's trussness is
// the largest k at which it survives.
func naiveTrussness(g *graph.Graph) map[int64]int32 {
	type edge struct{ u, v int32 }
	edges := map[edge]bool{}
	g.Edges(func(u, v int32) bool {
		edges[edge{u, v}] = true
		return true
	})
	alive := func(u, v int32) bool {
		if u > v {
			u, v = v, u
		}
		return edges[edge{u, v}]
	}
	result := map[int64]int32{}
	for e := range edges {
		result[int64(e.u)<<32|int64(e.v)] = 2
	}
	for k := int32(2); len(edges) > 0; k++ {
		// Mark survivors at this k.
		for e := range edges {
			result[int64(e.u)<<32|int64(e.v)] = k
		}
		// Peel for k+1.
		for changed := true; changed; {
			changed = false
			for e := range edges {
				cnt := 0
				for _, w := range g.Neighbors(e.u) {
					if w != e.v && alive(e.u, w) && g.HasEdge(e.v, w) && alive(e.v, w) {
						cnt++
					}
				}
				if int32(cnt) < k+1-2 {
					delete(edges, e)
					changed = true
				}
			}
		}
	}
	return result
}

// TestDecomposeMatchesNaive validates the CSR-native parallel engine
// against the by-definition oracle on random graphs, at one worker, two
// workers, and the process default (GOMAXPROCS) — the result must be
// identical at every worker count.
func TestDecomposeMatchesNaive(t *testing.T) {
	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0)}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(25)
		b := graph.NewBuilder(n, 0)
		b.AddVertexIDs(int32(n - 1))
		for i := 0; i < 3*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.MustBuild()
		want := naiveTrussness(g)
		for _, workers := range workerCounts {
			d, err := DecomposeParallel(context.Background(), g, workers)
			if err != nil {
				t.Errorf("seed %d workers %d: %v", seed, workers, err)
				return false
			}
			ok := true
			g.Edges(func(u, v int32) bool {
				got, _ := d.Trussness(u, v)
				if got != want[int64(u)<<32|int64(v)] {
					t.Errorf("seed %d workers %d: truss(%d,%d) = %d, want %d",
						seed, workers, u, v, got, want[int64(u)<<32|int64(v)])
					ok = false
					return false
				}
				return true
			})
			if !ok {
				return false
			}
			// The exported array-indexed oracle must agree with the map one.
			if !slices.Equal(d.truss, Naive(g)) {
				t.Errorf("seed %d: Naive disagrees with decomposition", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestDecomposeParallelCancel: a pre-canceled context must abort both the
// support-counting and peel phases with ctx.Err, at any worker count.
func TestDecomposeParallelCancel(t *testing.T) {
	g := gen.GenerateDBLP(gen.SmallDBLPConfig()).Graph
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 2} {
		if _, err := DecomposeParallel(ctx, g, workers); err == nil {
			t.Fatalf("workers=%d: canceled decomposition returned nil error", workers)
		}
	}
}

// TestEdgeTableMatchesParts: the decomposition's edge table is the graph's
// canonical edge table in (u<v)-lexicographic order — the contract
// Parts/FromParts and the snapshot layer rely on.
func TestEdgeTableMatchesParts(t *testing.T) {
	g := gen.Figure5()
	d := Decompose(g)
	edges, truss := d.Parts()
	if len(edges) != g.M() || len(truss) != g.M() {
		t.Fatalf("parts sized %d/%d for m=%d", len(edges), len(truss), g.M())
	}
	var want [][2]int32
	g.Edges(func(u, v int32) bool {
		want = append(want, [2]int32{u, v})
		return true
	})
	if !slices.Equal(edges, want) {
		t.Fatalf("edge table %v, want %v", edges, want)
	}
	// Round-trip through FromParts and verify lookups still resolve.
	d2, err := FromParts(g, edges, truss)
	if err != nil {
		t.Fatal(err)
	}
	for id, e := range edges {
		got, ok := d2.Trussness(e[0], e[1])
		if !ok || got != truss[id] {
			t.Fatalf("FromParts truss(%d,%d) = %d,%v want %d", e[0], e[1], got, ok, truss[id])
		}
	}
}

// TestCommunityInvariants: every edge inside a returned k-truss community
// joins ≥ k-2 triangles within the community's trussness-filtered edges,
// and the community contains q.
func TestCommunityInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		b := graph.NewBuilder(n, 0)
		b.AddVertexIDs(int32(n - 1))
		for i := 0; i < 4*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.MustBuild()
		d := Decompose(g)
		for trial := 0; trial < 5; trial++ {
			q := int32(rng.Intn(n))
			k := int32(3 + rng.Intn(2))
			for _, comm := range d.CommunitiesWithEdges(q, k) {
				hasQ := false
				for _, v := range comm.Vertices {
					if v == q {
						hasQ = true
					}
				}
				if !hasQ {
					return false
				}
				// Each edge of the triangle-connected class must close
				// ≥ k-2 triangles with other class edges.
				classEdge := map[int64]bool{}
				for _, e := range comm.Edges {
					classEdge[int64(e[0])<<32|int64(e[1])] = true
				}
				isClass := func(u, v int32) bool {
					if u > v {
						u, v = v, u
					}
					return classEdge[int64(u)<<32|int64(v)]
				}
				for _, e := range comm.Edges {
					u, v := e[0], e[1]
					cnt := 0
					for _, w := range g.Neighbors(u) {
						if isClass(u, w) && g.HasEdge(v, w) && isClass(v, w) {
							cnt++
						}
					}
					if int32(cnt) < k-2 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
