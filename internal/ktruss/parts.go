package ktruss

import (
	"fmt"

	"cexplorer/internal/graph"
)

// Parts exposes the decomposition's frozen arrays — the (u<v) edge table in
// canonical edge-ID order (the order g.Edges enumerates) and the parallel
// trussness array — so that persistence layers can serialize them with bulk
// writes. Both slices alias internal storage and must not be modified.
func (d *Decomposition) Parts() (edges [][2]int32, truss []int32) {
	return d.edges, d.truss
}

// FromParts reassembles a Decomposition over g from a previously computed
// edge table and trussness array, adopting the slices without copying. The
// table must be (u<v)-lexicographically sorted — the canonical edge-ID
// order, which is how Decompose emits it — so the per-edge arrays line up
// with the graph's edge-ID surface; lookups then go through that surface
// (materialized lazily, once per graph) and the snapshot load itself stays
// O(read). The sortedness, range, and count envelope is checked so a
// corrupt input yields an error rather than a panic; the trussness values
// themselves are trusted, as recomputing them would defeat the point of
// loading.
func FromParts(g *graph.Graph, edges [][2]int32, truss []int32) (*Decomposition, error) {
	m := g.M()
	if len(edges) != m {
		return nil, fmt.Errorf("ktruss parts: %d edges for a graph with m=%d", len(edges), m)
	}
	if len(truss) != m {
		return nil, fmt.Errorf("ktruss parts: %d trussness values for %d edges", len(truss), m)
	}
	n := int32(g.N())
	for id, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || v >= n || u >= v {
			return nil, fmt.Errorf("ktruss parts: bad edge (%d,%d)", u, v)
		}
		if id > 0 {
			p := edges[id-1]
			if p[0] > u || (p[0] == u && p[1] >= v) {
				return nil, fmt.Errorf("ktruss parts: edge table not sorted at id %d", id)
			}
		}
	}
	return &Decomposition{g: g, edges: edges, truss: truss}, nil
}
