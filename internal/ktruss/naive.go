package ktruss

import "cexplorer/internal/graph"

// Naive computes trussness by definition — for each k, repeatedly delete
// edges closing fewer than k−2 triangles until fixpoint; an edge's
// trussness is the largest k at which it survives — returning the values
// indexed by canonical edge ID. O(m²)-ish worst case; it exists as the
// oracle for property tests and the dynamic-graph equivalence harness,
// mirroring kcore.NaiveDecompose.
func Naive(g *graph.Graph) []int32 {
	edges := g.EdgeTable()
	truss := make([]int32, len(edges))
	alive := make([]bool, len(edges))
	remaining := len(edges)
	for i := range alive {
		alive[i] = true
	}
	for k := int32(2); remaining > 0; k++ {
		// Mark survivors at this k, then peel for k+1: an edge survives at
		// k+1 only with ≥ (k+1)−2 triangles among surviving edges.
		for id, a := range alive {
			if a {
				truss[id] = k
			}
		}
		for changed := true; changed; {
			changed = false
			for id, a := range alive {
				if !a {
					continue
				}
				u, v := edges[id][0], edges[id][1]
				cnt := int32(0)
				forEachCommonEdge(g.Neighbors(u), g.EdgeIDs(u), g.Neighbors(v), g.EdgeIDs(v),
					func(_, e1, e2 int32) {
						if alive[e1] && alive[e2] {
							cnt++
						}
					})
				if cnt < k-1 {
					alive[id] = false
					remaining--
					changed = true
				}
			}
		}
	}
	return truss
}
