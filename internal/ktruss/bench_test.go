package ktruss

import (
	"sync"
	"testing"

	"cexplorer/internal/gen"
	"cexplorer/internal/graph"
)

var (
	benchOnce  sync.Once
	benchGraph *graph.Graph
)

// benchDBLP is the ~120k-edge synthetic DBLP benchmark graph (the same
// 20k-author configuration the top-level experiment harness uses), built
// once and shared across benchmarks.
func benchDBLP(b *testing.B) *graph.Graph {
	benchOnce.Do(func() {
		benchGraph = gen.GenerateDBLP(gen.DefaultDBLPConfig()).Graph
	})
	b.Logf("graph: %d vertices, %d edges", benchGraph.N(), benchGraph.M())
	return benchGraph
}

// BenchmarkTrussDecompose times a cold truss decomposition of the ~120k-edge
// benchmark graph. Run with -cpu 1,2,4 to see worker scaling: the support
// counting shards across GOMAXPROCS workers.
func BenchmarkTrussDecompose(b *testing.B) {
	g := benchDBLP(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Decompose(g)
	}
}
