package chaos

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// upstream serves a fixed body so byte-level faults are observable.
func upstream(t *testing.T, body string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// An explicit length keeps the response unchunked, so body byte N
		// of the HTTP payload is byte N on the wire — the unit tests here
		// assert exact offsets. (Chunked responses still get faulted, just
		// at transfer-encoded offsets.)
		w.Header().Set("Content-Length", fmt.Sprint(len(body)))
		io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// oneShotClient maps one request to one proxy connection, so plan index ==
// request index.
func oneShotClient(timeout time.Duration) *http.Client {
	return &http.Client{
		Timeout:   timeout,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
}

func startProxy(t *testing.T, upstreamURL string, plan Plan, opt Options) *Proxy {
	t.Helper()
	p, err := NewProxy(upstreamURL, plan, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestGenPlanDeterministic(t *testing.T) {
	a := GenPlan(42, 200, Mix{})
	b := GenPlan(42, 200, Mix{})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	if a.Faults() == 0 {
		t.Fatal("default mix produced a fault-free plan")
	}
	if c := GenPlan(43, 200, Mix{}); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestProxyTransparentAndDrop(t *testing.T) {
	ts := upstream(t, "hello")
	p := startProxy(t, ts.URL, Plan{{}, {Kind: Drop}, {}}, Options{Logf: t.Logf})
	client := oneShotClient(5 * time.Second)

	resp, err := client.Get(p.URL())
	if err != nil {
		t.Fatalf("transparent conn failed: %v", err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(b) != "hello" {
		t.Fatalf("transparent body %q", b)
	}

	if _, err := client.Get(p.URL()); err == nil {
		t.Fatal("dropped connection produced a response")
	}

	resp, err = client.Get(p.URL())
	if err != nil {
		t.Fatalf("post-drop transparent conn failed: %v", err)
	}
	resp.Body.Close()
	if p.Injected(Drop) != 1 || p.Conns() != 3 {
		t.Fatalf("counters: conns=%d drops=%d", p.Conns(), p.Injected(Drop))
	}
}

func TestProxyBlackholeIsBounded(t *testing.T) {
	ts := upstream(t, "hello")
	p := startProxy(t, ts.URL, Plan{{Kind: Blackhole}}, Options{BlackholeHold: 3 * time.Second})
	client := oneShotClient(300 * time.Millisecond)

	start := time.Now()
	_, err := client.Get(p.URL())
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("blackholed request got a response")
	}
	// The bounded client gave up on its own timeout, well before the hold:
	// exactly the behavior the replica's per-phase deadlines must show.
	if elapsed > 2*time.Second {
		t.Fatalf("client stalled %v against a blackhole", elapsed)
	}
}

func TestProxyLatency(t *testing.T) {
	ts := upstream(t, "hello")
	delay := 120 * time.Millisecond
	p := startProxy(t, ts.URL, Plan{{Kind: Latency, Delay: delay}}, Options{})
	client := oneShotClient(5 * time.Second)

	start := time.Now()
	resp, err := client.Get(p.URL())
	if err != nil {
		t.Fatalf("delayed conn failed: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < delay {
		t.Fatalf("latency fault took only %v, scheduled %v", elapsed, delay)
	}
}

func TestProxyTruncateMidBody(t *testing.T) {
	body := strings.Repeat("x", 64<<10)
	ts := upstream(t, body)
	p := startProxy(t, ts.URL, Plan{{Kind: Truncate, After: 1024}}, Options{})
	client := oneShotClient(5 * time.Second)

	resp, err := client.Get(p.URL())
	if err != nil {
		t.Fatalf("truncated conn refused before headers: %v", err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("truncated body read cleanly (%d of %d bytes): clients must see an error", len(got), len(body))
	}
	if len(got) > 1024 {
		t.Fatalf("cut at %d bytes, scheduled 1024", len(got))
	}
}

func TestProxyCorruptFlipsExactlyOneByte(t *testing.T) {
	body := strings.Repeat("abcdefgh", 512)
	ts := upstream(t, body)
	p := startProxy(t, ts.URL, Plan{{Kind: Corrupt, After: 777}}, Options{})
	client := oneShotClient(5 * time.Second)

	resp, err := client.Get(p.URL())
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("corrupt conn died: %v", err)
	}
	if len(got) != len(body) {
		t.Fatalf("corrupt changed length: %d vs %d", len(got), len(body))
	}
	diffs := 0
	for i := range got {
		if got[i] != body[i] {
			diffs++
			if i != 777 {
				t.Fatalf("byte %d corrupted, scheduled 777", i)
			}
			if got[i] != body[i]^0xFF {
				t.Fatalf("byte %d = %#x, want %#x", i, got[i], body[i]^0xFF)
			}
		}
	}
	if diffs != 1 {
		t.Fatalf("%d bytes corrupted, want exactly 1", diffs)
	}
}

func TestProxyErr5xx(t *testing.T) {
	ts := upstream(t, "hello")
	p := startProxy(t, ts.URL, Plan{{Kind: Err5xx, Status: 503}}, Options{})
	client := oneShotClient(5 * time.Second)

	resp, err := client.Get(p.URL())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(b), "chaos_injected") {
		t.Fatalf("body %q lacks the chaos marker", b)
	}
}

func TestProxyDisableEndsTheStorm(t *testing.T) {
	ts := upstream(t, "hello")
	plan := make(Plan, 16)
	for i := range plan {
		plan[i] = Fault{Kind: Drop}
	}
	p := startProxy(t, ts.URL, plan, Options{})
	client := oneShotClient(5 * time.Second)

	if _, err := client.Get(p.URL()); err == nil {
		t.Fatal("pre-disable request survived an all-drop plan")
	}
	p.Disable()
	resp, err := client.Get(p.URL())
	if err != nil {
		t.Fatalf("post-disable request failed: %v", err)
	}
	resp.Body.Close()
}

func TestShrinkPlanIsolatesTheFault(t *testing.T) {
	plan := GenPlan(7, 64, Mix{})
	plan[33] = Fault{Kind: Drop}
	// The "scenario" fails iff connection 33 is dropped: shrinking must
	// neutralize everything else and keep that fault at its index.
	fails := func(p Plan) bool { return p[33].Kind == Drop }
	minimal := ShrinkPlan(plan, 500, fails)
	if minimal.Faults() != 1 {
		t.Fatalf("shrunk plan keeps %d faults, want 1", minimal.Faults())
	}
	if minimal[33].Kind != Drop {
		t.Fatalf("shrunk plan lost the failing fault: %+v", minimal[33])
	}
}
