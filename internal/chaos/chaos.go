// Package chaos is a deterministic fault-injection proxy for hardening the
// replication fleet: a TCP-level proxy that sits on one link (router →
// replica, replica → primary, client → router) and injects the failure
// modes real networks produce — dropped connections, blackholes (accept,
// then never respond), added latency, responses truncated mid-body,
// corrupted response bytes, and synthetic 5xx answers.
//
// Faults are scheduled, not random-at-runtime: a Plan is a seed-generated
// list of faults indexed by connection accept order, so the nth connection
// through a proxy always suffers plan[n]. Re-running a scenario with the
// same seed replays the same schedule, and a failing schedule shrinks with
// ShrinkPlan (ddmin over the plan, neutralizing chunks to transparent) to a
// minimal fault list that still reproduces the failure — the same
// repro-first discipline the dyntest equivalence harness applies to
// mutation streams.
//
// The proxy never interprets HTTP beyond locating the end of the response
// headers (so Truncate and Corrupt target response bodies, where journal
// frames and JSON payloads live). Everything else is byte-level, which is
// exactly what makes the faults honest: the components under test see the
// same torn streams, stalls, and garbage a faulty network would hand them.
package chaos

import (
	"fmt"
	"math/rand"
	"slices"
	"time"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// None proxies the connection transparently.
	None Kind = iota
	// Drop closes the client connection immediately on accept — the
	// "connection refused / reset" class.
	Drop
	// Blackhole accepts the connection and reads the request but never
	// responds, holding the socket open up to Options.BlackholeHold — the
	// fault an unbounded client wedges on forever.
	Blackhole
	// Latency delays the connection by Delay before proxying transparently.
	Latency
	// Truncate proxies, then hard-closes both sides after After response
	// body bytes — the client sees a mid-body EOF under a 200 header.
	Truncate
	// Corrupt proxies but XORs the response body byte at offset After —
	// the bit-flip a checksum (journal frame CRC) must catch.
	Corrupt
	// Err5xx answers a canned HTTP error without contacting the upstream.
	Err5xx

	numKinds
)

// String names a fault kind for logs and repro reports.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Drop:
		return "drop"
	case Blackhole:
		return "blackhole"
	case Latency:
		return "latency"
	case Truncate:
		return "truncate"
	case Corrupt:
		return "corrupt"
	case Err5xx:
		return "err5xx"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Fault is one scheduled fault. The zero value is transparent.
type Fault struct {
	Kind Kind `json:"kind"`
	// Delay is the injected latency (Latency only).
	Delay time.Duration `json:"delay,omitempty"`
	// After is the response-body byte offset at which Truncate cuts or
	// Corrupt flips. A body shorter than After escapes the fault — faults
	// are opportunities, not guarantees, exactly like a real flaky link.
	After int `json:"after,omitempty"`
	// Status is the synthetic response code (Err5xx only; default 503).
	Status int `json:"status,omitempty"`
}

// Plan is a deterministic fault schedule: the nth connection accepted by a
// proxy suffers Plan[n]; connections past the end are transparent.
type Plan []Fault

// Mix weights the fault classes for plan generation. Zero-valued fields get
// no share; the zero Mix is replaced by DefaultMix.
type Mix struct {
	None, Drop, Blackhole, Latency, Truncate, Corrupt, Err5xx int
	// MaxDelay caps injected latency (default 150ms); MaxAfter caps the
	// truncate/corrupt body offset (default 2048).
	MaxDelay time.Duration
	MaxAfter int
}

// DefaultMix is a balanced storm: plenty of transparent connections so the
// system makes progress, with every fault class represented.
var DefaultMix = Mix{None: 6, Drop: 2, Blackhole: 1, Latency: 3, Truncate: 2, Corrupt: 2, Err5xx: 2}

func (m Mix) total() int {
	return m.None + m.Drop + m.Blackhole + m.Latency + m.Truncate + m.Corrupt + m.Err5xx
}

// GenPlan derives a length-n schedule from seed. Identical (seed, n, mix)
// always produce the identical plan.
func GenPlan(seed int64, n int, mix Mix) Plan {
	if mix.total() == 0 {
		mix = DefaultMix
	}
	if mix.MaxDelay <= 0 {
		mix.MaxDelay = 150 * time.Millisecond
	}
	if mix.MaxAfter <= 0 {
		mix.MaxAfter = 2048
	}
	rng := rand.New(rand.NewSource(seed))
	plan := make(Plan, n)
	for i := range plan {
		r := rng.Intn(mix.total())
		pick := func(w int) bool {
			if r < w {
				return true
			}
			r -= w
			return false
		}
		switch {
		case pick(mix.None):
			// transparent
		case pick(mix.Drop):
			plan[i] = Fault{Kind: Drop}
		case pick(mix.Blackhole):
			plan[i] = Fault{Kind: Blackhole}
		case pick(mix.Latency):
			plan[i] = Fault{Kind: Latency, Delay: time.Duration(1 + rng.Int63n(int64(mix.MaxDelay)))}
		case pick(mix.Truncate):
			plan[i] = Fault{Kind: Truncate, After: rng.Intn(mix.MaxAfter)}
		case pick(mix.Corrupt):
			plan[i] = Fault{Kind: Corrupt, After: rng.Intn(mix.MaxAfter)}
		default:
			plan[i] = Fault{Kind: Err5xx, Status: 500 + []int{0, 2, 3, 4}[rng.Intn(4)]}
		}
	}
	return plan
}

// Faults counts the non-transparent entries of the plan.
func (p Plan) Faults() int {
	n := 0
	for _, f := range p {
		if f.Kind != None {
			n++
		}
	}
	return n
}

// ShrinkPlan reduces a failing plan to a (locally) minimal one that still
// fails, ddmin-style: chunks of halving size are neutralized to None — not
// removed, so every surviving fault keeps its connection index and the
// schedule replays against the same accept order — and any neutralization
// that preserves the failure is kept. trials bounds the total re-runs;
// chaos scenarios are whole-fleet replays, so budgets are small.
func ShrinkPlan(p Plan, trials int, fails func(Plan) bool) Plan {
	plan := slices.Clone(p)
	neutralize := func(from, to int) (Plan, int) {
		cand := slices.Clone(plan)
		cleared := 0
		for i := from; i < to; i++ {
			if cand[i].Kind != None {
				cand[i] = Fault{}
				cleared++
			}
		}
		return cand, cleared
	}
	for chunk := len(plan); chunk >= 1 && trials > 0; chunk /= 2 {
		for start := 0; start+chunk <= len(plan) && trials > 0; start += chunk {
			cand, cleared := neutralize(start, start+chunk)
			if cleared == 0 {
				continue
			}
			trials--
			if fails(cand) {
				plan = cand
			}
		}
	}
	return plan
}
