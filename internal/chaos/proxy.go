package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Options tune a Proxy. Zero values take the noted defaults.
type Options struct {
	// BlackholeHold bounds how long a blackholed connection is held open
	// before the proxy closes it (default 2s). The bound exists so chaos
	// runs terminate; the component under test must NOT rely on it — its
	// own deadlines are exactly what the blackhole fault probes.
	BlackholeHold time.Duration
	// DialTimeout bounds the upstream dial (default 5s).
	DialTimeout time.Duration
	Logf        func(format string, args ...any)
}

// Proxy is one faulty link: it listens on a loopback port and forwards TCP
// connections to a fixed upstream, injecting the scheduled fault for each
// connection in accept order. Connections past the end of the plan — and
// all connections after Disable — are proxied transparently.
type Proxy struct {
	upstream string
	ln       net.Listener
	opt      Options
	plan     Plan

	next     atomic.Int64
	disabled atomic.Bool
	forced   atomic.Int64 // Kind forced on every new connection; -1 = none
	closed   chan struct{}
	closeOne sync.Once
	wg       sync.WaitGroup

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	injected [numKinds]atomic.Int64
}

// NewProxy starts a proxy in front of upstream (a base URL like
// "http://127.0.0.1:8080" or a bare host:port) with the given schedule.
func NewProxy(upstream string, plan Plan, opt Options) (*Proxy, error) {
	upstream = strings.TrimPrefix(strings.TrimPrefix(upstream, "http://"), "tcp://")
	upstream = strings.TrimSuffix(upstream, "/")
	if opt.BlackholeHold <= 0 {
		opt.BlackholeHold = 2 * time.Second
	}
	if opt.DialTimeout <= 0 {
		opt.DialTimeout = 5 * time.Second
	}
	if opt.Logf == nil {
		opt.Logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	p := &Proxy{
		upstream: upstream,
		ln:       ln,
		opt:      opt,
		plan:     plan,
		closed:   make(chan struct{}),
		conns:    map[net.Conn]struct{}{},
	}
	p.forced.Store(int64(None) - 1)
	p.wg.Add(1)
	go p.serve()
	return p, nil
}

// URL returns the proxy's listen address as an http base URL — what the
// component under test is pointed at instead of the real upstream.
func (p *Proxy) URL() string { return "http://" + p.ln.Addr().String() }

// Addr returns the raw listen address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Conns reports how many connections the proxy has accepted.
func (p *Proxy) Conns() int64 { return p.next.Load() }

// Injected reports how many connections suffered the given fault kind.
func (p *Proxy) Injected(k Kind) int64 {
	if k < 0 || k >= numKinds {
		return 0
	}
	return p.injected[k].Load()
}

// Force overrides the plan: every connection accepted from now on suffers
// the given fault kind until Restore. Unlike the per-connection plan
// (consumed in accept order), Force is a toggleable condition — what a
// partition looks like: Force(Blackhole) takes the upstream off the network,
// Restore puts it back. Forcing also severs in-flight connections so the
// condition applies immediately, not only to the next dial.
func (p *Proxy) Force(k Kind) {
	if k < 0 || k >= numKinds {
		return
	}
	p.forced.Store(int64(k))
	p.closeActive()
}

// Restore lifts a Force: subsequent connections fall back to the plan (or
// transparency after Disable). In-flight forced connections are severed so
// recovery is immediate.
func (p *Proxy) Restore() {
	p.forced.Store(int64(None) - 1)
	p.closeActive()
}

// Disable ends the storm: every connection from now on is transparent, and
// all in-flight faulty connections are severed so the components under test
// reconnect cleanly instead of waiting out blackhole holds.
func (p *Proxy) Disable() {
	p.disabled.Store(true)
	p.closeActive()
}

// Close shuts the proxy down, severing active connections.
func (p *Proxy) Close() {
	p.closeOne.Do(func() { close(p.closed) })
	p.ln.Close()
	p.closeActive()
	p.wg.Wait()
}

func (p *Proxy) closeActive() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
	c.Close()
}

func (p *Proxy) serve() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		i := int(p.next.Add(1) - 1)
		var f Fault
		if forced := p.forced.Load(); forced >= 0 {
			f = Fault{Kind: Kind(forced)}
		} else if !p.disabled.Load() && i < len(p.plan) {
			f = p.plan[i]
		}
		p.injected[f.Kind].Add(1)
		if f.Kind != None {
			p.opt.Logf("chaos: conn %d -> %s: %s", i, p.upstream, f.Kind)
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handle(c, f)
		}()
	}
}

func (p *Proxy) handle(c net.Conn, f Fault) {
	p.track(c)
	defer p.untrack(c)
	switch f.Kind {
	case Drop:
		return // deferred untrack closes: an immediate reset
	case Blackhole:
		// Read (and discard) whatever the client sends so the request is
		// fully accepted, then go silent until the hold expires or the
		// client gives up — the classic wedge for unbounded clients.
		c.SetReadDeadline(time.Now().Add(p.opt.BlackholeHold))
		io.Copy(io.Discard, c)
		return
	case Err5xx:
		p.answer5xx(c, f.Status)
		return
	case Latency:
		t := time.NewTimer(f.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-p.closed:
			return
		}
	}
	up, err := net.DialTimeout("tcp", p.upstream, p.opt.DialTimeout)
	if err != nil {
		p.opt.Logf("chaos: dial %s: %v", p.upstream, err)
		return
	}
	p.track(up)
	defer p.untrack(up)

	// Client -> upstream is always clean; faults target the response.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		io.Copy(up, c)
		if tc, ok := up.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()
	dst := io.Writer(c)
	if f.Kind == Truncate || f.Kind == Corrupt {
		dst = &bodyFaulter{w: c, kind: f.Kind, after: f.After}
	}
	_, err = io.Copy(dst, up)
	if errors.Is(err, errTruncated) {
		// Hard-close so the client observes a mid-body connection death,
		// not a polite half-close it could mistake for a clean EOF.
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
	}
}

// answer5xx reads the request head (bounded) and replies with a canned
// error without touching the upstream.
func (p *Proxy) answer5xx(c net.Conn, status int) {
	if status < 500 || status > 599 {
		status = 503
	}
	c.SetReadDeadline(time.Now().Add(250 * time.Millisecond))
	buf := make([]byte, 4096)
	for {
		// Drain up to one buffer past the header terminator so simple
		// requests are fully read before the canned answer goes out.
		n, err := c.Read(buf)
		if err != nil || bytes.Contains(buf[:n], []byte("\r\n\r\n")) || n < len(buf) {
			break
		}
	}
	const body = `{"error":"injected fault","code":"chaos_injected"}`
	fmt.Fprintf(c, "HTTP/1.1 %d Chaos\r\nContent-Type: application/json\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s",
		status, len(body), body)
}

// errTruncated aborts the response copy at the scheduled cut point.
var errTruncated = errors.New("chaos: truncated")

// bodyFaulter applies Truncate/Corrupt to the upstream->client byte stream.
// It forwards response headers untouched, locating their end (CRLFCRLF)
// across write boundaries, then counts body bytes: Corrupt XORs the byte at
// offset `after`; Truncate forwards exactly `after` body bytes and then
// fails the copy. On a keep-alive connection carrying several responses the
// offsets are counted from the first body — chaos, not surgery.
type bodyFaulter struct {
	w        io.Writer
	kind     Kind
	after    int
	inBody   bool
	bodySeen int
	tail     [3]byte // last bytes of the previous chunk, for split CRLFCRLF
	tailLen  int
}

func (b *bodyFaulter) Write(chunk []byte) (int, error) {
	if b.inBody {
		return b.writeBody(chunk)
	}
	// Look for the header terminator, including across the chunk seam.
	seam := append(append([]byte{}, b.tail[:b.tailLen]...), chunk...)
	if i := bytes.Index(seam, []byte("\r\n\r\n")); i >= 0 {
		split := i + 4 - b.tailLen // body starts here within chunk
		if split < 0 {
			split = 0
		}
		if _, err := b.w.Write(chunk[:split]); err != nil {
			return 0, err
		}
		b.inBody = true
		n, err := b.writeBody(chunk[split:])
		return split + n, err
	}
	b.tailLen = copy(b.tail[:], seam[max(0, len(seam)-3):])
	n, err := b.w.Write(chunk)
	return n, err
}

func (b *bodyFaulter) writeBody(chunk []byte) (int, error) {
	switch b.kind {
	case Corrupt:
		if off := b.after - b.bodySeen; off >= 0 && off < len(chunk) {
			chunk = append([]byte{}, chunk...)
			chunk[off] ^= 0xFF
		}
		b.bodySeen += len(chunk)
		return b.w.Write(chunk)
	case Truncate:
		keep := b.after - b.bodySeen
		if keep <= 0 {
			return 0, errTruncated
		}
		if keep >= len(chunk) {
			b.bodySeen += len(chunk)
			return b.w.Write(chunk)
		}
		n, err := b.w.Write(chunk[:keep])
		b.bodySeen += n
		if err != nil {
			return n, err
		}
		return n, errTruncated
	default:
		return b.w.Write(chunk)
	}
}
