// Package csearch implements the non-attributed community-search baselines
// that C-Explorer ships alongside ACQ (§2, §3): Global [Sozio & Gionis,
// SIGKDD'10] and Local [Cui et al., SIGMOD'14]. Both use minimum degree as
// the structure-cohesiveness measure, as the paper notes.
//
// Every search has a Context variant (GlobalContext, LocalContext) that
// polls ctx cooperatively and returns ctx.Err() when the request is
// canceled or past its deadline; the plain functions run uncancellable on
// context.Background for callers that do not serve requests.
package csearch

import (
	"context"
	"slices"

	"cexplorer/internal/graph"
	"cexplorer/internal/kcore"
)

// GlobalResult reports a Global search outcome.
type GlobalResult struct {
	Vertices  []int32 // the community, ascending
	MinDegree int32   // minimum internal degree achieved
	Visited   int     // vertices touched (for the E8 Global-vs-Local bench)
}

// Global answers the community-search problem of Sozio & Gionis on the
// whole graph. With k ≥ 0 given (the C-Explorer UI's "Structure: degree≥k"
// selector), it returns the connected k-core containing q — the maximal
// subgraph the greedy peel retains. It returns nil when core(q) < k.
//
// core may be nil (recomputed, touching the whole graph — Global's defining
// cost); pass a cached decomposition for repeated queries.
func Global(g *graph.Graph, core []int32, q int32, k int32) *GlobalResult {
	r, _ := GlobalContext(context.Background(), g, core, q, k)
	return r
}

// GlobalContext is Global with cooperative cancellation: the whole-graph
// core decomposition (Global's defining cost when core is nil) observes ctx
// and the search returns ctx.Err() promptly after cancellation. A nil
// result with a nil error means q has no community at this k.
func GlobalContext(ctx context.Context, g *graph.Graph, core []int32, q int32, k int32) (*GlobalResult, error) {
	if q < 0 || int(q) >= g.N() || k < 0 {
		return nil, nil
	}
	visited := 0
	if core == nil {
		var err error
		core, err = kcore.DecomposeContext(ctx, g)
		if err != nil {
			return nil, err
		}
		visited = g.N()
	}
	comp := kcore.ConnectedKCore(g, core, q, k)
	if comp == nil {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	slices.Sort(comp)
	if visited == 0 {
		visited = len(comp)
	}
	return &GlobalResult{
		Vertices:  comp,
		MinDegree: minInducedDegree(g, comp),
		Visited:   visited,
	}, nil
}

// GlobalMax solves the original optimization form: maximize the minimum
// degree of a connected subgraph containing q. Greedily peeling minimum-
// degree vertices while protecting q is equivalent to returning the
// connected core(q)-core around q, which is what this does.
func GlobalMax(g *graph.Graph, core []int32, q int32) *GlobalResult {
	if q < 0 || int(q) >= g.N() {
		return nil
	}
	if core == nil {
		core = kcore.Decompose(g)
	}
	return Global(g, core, q, core[q])
}

func minInducedDegree(g *graph.Graph, comp []int32) int32 {
	in := make(map[int32]bool, len(comp))
	for _, v := range comp {
		in[v] = true
	}
	minDeg := int32(-1)
	for _, v := range comp {
		d := int32(0)
		for _, u := range g.Neighbors(v) {
			if in[u] {
				d++
			}
		}
		if minDeg == -1 || d < minDeg {
			minDeg = d
		}
	}
	if minDeg < 0 {
		minDeg = 0
	}
	return minDeg
}
