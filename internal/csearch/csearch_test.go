package csearch

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"cexplorer/internal/gen"
	"cexplorer/internal/graph"
	"cexplorer/internal/kcore"
)

func TestGlobalFigure5(t *testing.T) {
	g := gen.Figure5()
	core := kcore.Decompose(g)
	// Global(A, 3) = the K4.
	r := Global(g, core, 0, 3)
	if r == nil || !reflect.DeepEqual(r.Vertices, []int32{0, 1, 2, 3}) {
		t.Fatalf("Global(A,3) = %+v", r)
	}
	if r.MinDegree != 3 {
		t.Fatalf("min degree = %d", r.MinDegree)
	}
	// Global(A, 2) = {A,B,C,D,E}.
	r = Global(g, core, 0, 2)
	if r == nil || len(r.Vertices) != 5 {
		t.Fatalf("Global(A,2) = %+v", r)
	}
	// Unreachable k.
	if r = Global(g, core, 0, 4); r != nil {
		t.Fatalf("Global(A,4) = %+v", r)
	}
	// nil core path.
	if r = Global(g, nil, 0, 3); r == nil || r.Visited != g.N() {
		t.Fatalf("Global with nil core = %+v", r)
	}
	// Bad args.
	if Global(g, core, -1, 1) != nil || Global(g, core, 0, -1) != nil {
		t.Fatal("bad args accepted")
	}
}

func TestGlobalMax(t *testing.T) {
	g := gen.Figure5()
	core := kcore.Decompose(g)
	// A's best achievable min degree is 3 (the K4).
	r := GlobalMax(g, core, 0)
	if r == nil || r.MinDegree != 3 || len(r.Vertices) != 4 {
		t.Fatalf("GlobalMax(A) = %+v", r)
	}
	// F's best is 1 (its component of the 1-core).
	r = GlobalMax(g, nil, 5)
	if r == nil || r.MinDegree != 1 {
		t.Fatalf("GlobalMax(F) = %+v", r)
	}
	if GlobalMax(g, core, -1) != nil {
		t.Fatal("bad q accepted")
	}
}

func TestLocalFigure5(t *testing.T) {
	g := gen.Figure5()
	r := Local(g, 0, 2, LocalOptions{})
	if r == nil {
		t.Fatal("Local(A,2) found nothing")
	}
	if r.MinDegree < 2 {
		t.Fatalf("min degree = %d", r.MinDegree)
	}
	// Must contain q.
	found := false
	for _, v := range r.Vertices {
		if v == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("community does not contain q")
	}
	// Local should not exceed Global here.
	core := kcore.Decompose(g)
	gr := Global(g, core, 0, 2)
	if len(r.Vertices) > len(gr.Vertices) {
		t.Fatalf("Local (%d) larger than Global (%d)", len(r.Vertices), len(gr.Vertices))
	}
	// Impossible k.
	if Local(g, 0, 5, LocalOptions{}) != nil {
		t.Fatal("Local(A,5) should fail")
	}
	if Local(g, -1, 1, LocalOptions{}) != nil {
		t.Fatal("bad q accepted")
	}
}

// TestLocalInvariants: any Local community is connected, contains q, and
// has min degree ≥ k, on random graphs.
func TestLocalInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		b := graph.NewBuilder(n, 0)
		b.AddVertexIDs(int32(n - 1))
		for i := 0; i < 4*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.MustBuild()
		for trial := 0; trial < 6; trial++ {
			q := int32(rng.Intn(n))
			k := int32(1 + rng.Intn(3))
			r := Local(g, q, k, LocalOptions{})
			if r == nil {
				continue
			}
			sub := g.Induce(r.Vertices)
			if _, ok := sub.LocalID(q); !ok {
				return false
			}
			if !sub.IsConnected() || int32(sub.MinDegree()) < k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestLocalFindsWhenGlobalDoes: with an unbounded budget, Local must
// succeed whenever the connected k-core containing q exists (completeness
// at full budget).
func TestLocalFindsWhenGlobalDoes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		b := graph.NewBuilder(n, 0)
		b.AddVertexIDs(int32(n - 1))
		for i := 0; i < 3*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.MustBuild()
		core := kcore.Decompose(g)
		for trial := 0; trial < 6; trial++ {
			q := int32(rng.Intn(n))
			k := int32(1 + rng.Intn(3))
			gr := Global(g, core, q, k)
			lr := Local(g, q, k, LocalOptions{Budget: n + 1})
			if (gr == nil) != (lr == nil) {
				return false
			}
			if gr != nil && len(lr.Vertices) > len(gr.Vertices) {
				return false // Local must be ⊆ the maximal k-core community
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestLocalSmallerThanGlobalOnDBLP reproduces the qualitative Figure 6(a)
// relationship: on the DBLP-like graph, Local's community for a hub query
// is much smaller than Global's, while touching fewer vertices.
func TestLocalSmallerThanGlobalOnDBLP(t *testing.T) {
	d := gen.GenerateDBLP(gen.SmallDBLPConfig())
	g := d.Graph
	core := kcore.Decompose(g)
	q, ok := g.VertexByName("jim gray")
	if !ok {
		t.Fatal("no jim gray")
	}
	k := int32(4)
	if core[q] < k {
		t.Skipf("core(jim gray)=%d < %d in small config", core[q], k)
	}
	gr := Global(g, core, q, k)
	lr := Local(g, q, k, LocalOptions{})
	if gr == nil || lr == nil {
		t.Fatalf("global=%v local=%v", gr, lr)
	}
	if len(lr.Vertices) >= len(gr.Vertices) {
		t.Fatalf("Local %d ≥ Global %d: expected Local ≪ Global (paper Fig 6a: 50 vs 305)",
			len(lr.Vertices), len(gr.Vertices))
	}
}
