package csearch

import (
	"context"
	"slices"

	"cexplorer/internal/ds"
	"cexplorer/internal/graph"
	"cexplorer/internal/kcore"
)

// LocalResult reports a Local search outcome.
type LocalResult struct {
	Vertices  []int32 // the community, ascending
	MinDegree int32
	Visited   int // vertices pulled into the candidate set (Local's cost)
}

// LocalOptions tunes the expansion.
type LocalOptions struct {
	// Budget caps the candidate-set size; 0 means 256·(k+1), after which the
	// search gives up (Local trades completeness for locality, exactly the
	// Cui et al. positioning: fast small communities near q).
	Budget int
}

// Local implements local-expansion community search in the style of Cui et
// al. (SIGMOD'14): grow a candidate set outward from q, preferring vertices
// best connected to the current set, and periodically test whether the
// candidates already contain a connected k-core around q. The first success
// is returned — a *small* community, in contrast to Global's maximal one.
// Returns nil if the budget is exhausted without success.
func Local(g *graph.Graph, q int32, k int32, opts LocalOptions) *LocalResult {
	r, _ := LocalContext(context.Background(), g, q, k, opts)
	return r
}

// LocalContext is Local with cooperative cancellation: the expansion loop
// polls ctx between frontier pops and returns ctx.Err() when the request is
// canceled or past its deadline. A nil result with a nil error means the
// budget was exhausted without success.
func LocalContext(ctx context.Context, g *graph.Graph, q int32, k int32, opts LocalOptions) (*LocalResult, error) {
	if q < 0 || int(q) >= g.N() || k < 0 {
		return nil, nil
	}
	if int32(g.Degree(q)) < k {
		return nil, nil // q can never reach internal degree k
	}
	budget := opts.Budget
	if budget <= 0 {
		budget = 256 * int(k+1)
	}

	inCand := map[int32]bool{q: true}
	cand := []int32{q}
	// Frontier priority: more edges into the candidate set = better
	// (min-heap on negated connection count, degree as tiebreak to prefer
	// low-degree vertices, keeping candidate sets small).
	frontier := ds.NewPairHeap(64)
	conn := map[int32]int{}
	push := func(v int32) {
		if inCand[v] {
			return
		}
		conn[v]++
		frontier.Push(v, -float64(conn[v])+float64(g.Degree(v))*1e-9)
	}
	for _, u := range g.Neighbors(q) {
		push(u)
	}

	peeler := kcore.NewPeeler(g)
	nextCheck := int(k) + 1
	for {
		if len(cand) >= nextCheck {
			// Each periodic k-core test is the expensive step of the loop, so
			// polling ctx here bounds the work done after a cancellation by
			// one peel plus one back-off window of cheap expansions.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if comp := peeler.ConnectedKCoreContaining(cand, k, q); comp != nil {
				slices.Sort(comp)
				return &LocalResult{
					Vertices:  comp,
					MinDegree: minInducedDegree(g, comp),
					Visited:   len(cand),
				}, nil
			}
			// Exponential back-off on checks to amortize peeling.
			nextCheck = len(cand) + len(cand)/2 + 1
		}
		if frontier.Len() == 0 || len(cand) >= budget {
			break
		}
		v, _ := frontier.Pop()
		inCand[v] = true
		cand = append(cand, v)
		for _, u := range g.Neighbors(v) {
			push(u)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Final check before giving up.
	if comp := peeler.ConnectedKCoreContaining(cand, k, q); comp != nil {
		slices.Sort(comp)
		return &LocalResult{
			Vertices:  comp,
			MinDegree: minInducedDegree(g, comp),
			Visited:   len(cand),
		}, nil
	}
	return nil, nil
}
