package dyntest

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"cexplorer/internal/api"
	"cexplorer/internal/cltree"
	"cexplorer/internal/gen"
	"cexplorer/internal/graph"
)

// The acceptance benchmark of the dynamic-graph subsystem: on a ~120k-edge
// attributed co-authorship graph (the synthetic DBLP of internal/gen — the
// community-structured shape this system actually serves), amortized
// single-edge incremental maintenance (the full Mutate path — overlay, CSR
// re-materialization, subcore core update, CL-tree repair, version publish)
// must beat a full index rebuild (Decompose + cltree.Build, what a
// non-incremental server pays per update) by ≥ 10x. The incremental
// benchmark reports the measured multiple as the "x_speedup_vs_rebuild"
// metric so the claim is recorded in bench output.

func benchGraph() *graph.Graph {
	cfg := gen.DefaultDBLPConfig()
	cfg.Authors = 23000 // ≈ 120k edges at the generator's degree profile
	cfg.Communities = 96
	return gen.GenerateDBLP(cfg).Graph
}

func benchDataset(b *testing.B) *api.Dataset {
	b.Helper()
	g := benchGraph()
	if m := g.M(); m < 100000 || m > 140000 {
		b.Fatalf("benchmark graph drifted: %d edges, want ~120k", m)
	}
	ds := api.NewDataset("bench", g)
	ds.CoreNumbers()
	ds.Tree()
	return ds
}

func BenchmarkSingleEdgeUpdate(b *testing.B) {
	ds := benchDataset(b)

	// Reference cost: one full index rebuild on the same graph.
	rebuildStart := time.Now()
	const rebuildSamples = 3
	for i := 0; i < rebuildSamples; i++ {
		cltree.Build(ds.Graph)
	}
	rebuild := time.Since(rebuildStart) / rebuildSamples

	b.Run("incremental", func(b *testing.B) {
		rng := rand.New(rand.NewSource(2))
		ctx := context.Background()
		cur := ds
		n := int32(ds.Graph.N())
		var u, v int32
		adding := true
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if adding {
				for {
					u, v = rng.Int31n(n), rng.Int31n(n)
					if u != v && !cur.Graph.HasEdge(u, v) {
						break
					}
				}
			}
			op := api.Mutation{Op: api.OpAddEdge, U: u, V: v}
			if !adding {
				op.Op = api.OpRemoveEdge // undo: the graph stays ~120k edges
			}
			next, _, err := cur.Mutate(ctx, []api.Mutation{op})
			if err != nil {
				b.Fatal(err)
			}
			cur = next
			adding = !adding
		}
		b.StopTimer()
		perOp := b.Elapsed() / time.Duration(b.N)
		if perOp > 0 {
			b.ReportMetric(float64(rebuild)/float64(perOp), "x_speedup_vs_rebuild")
		}
	})

	b.Run("incremental-batch8", func(b *testing.B) {
		// The serving write path batches naturally (one POST, one journal
		// append, one version swap); eight single-edge updates per batch
		// amortize the copy-on-write materialization and tree repair that
		// dominate the single-op case. The metric is per single-edge
		// update, against the same full-rebuild reference.
		rng := rand.New(rand.NewSource(3))
		ctx := context.Background()
		cur := ds
		n := int32(ds.Graph.N())
		var pending [][2]int32
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var ops []api.Mutation
			if len(pending) >= 8 {
				for _, e := range pending[:8] {
					ops = append(ops, api.Mutation{Op: api.OpRemoveEdge, U: e[0], V: e[1]})
				}
				pending = pending[8:]
			} else {
				for len(ops) < 8 {
					u, v := rng.Int31n(n), rng.Int31n(n)
					if u == v || cur.Graph.HasEdge(u, v) {
						continue
					}
					dup := false
					for _, o := range ops {
						if (o.U == u && o.V == v) || (o.U == v && o.V == u) {
							dup = true
							break
						}
					}
					if dup {
						continue
					}
					ops = append(ops, api.Mutation{Op: api.OpAddEdge, U: u, V: v})
					pending = append(pending, [2]int32{u, v})
				}
			}
			next, _, err := cur.Mutate(ctx, ops)
			if err != nil {
				b.Fatal(err)
			}
			cur = next
		}
		b.StopTimer()
		perUpdate := b.Elapsed() / time.Duration(8*b.N)
		if perUpdate > 0 {
			b.ReportMetric(float64(rebuild)/float64(perUpdate), "x_speedup_vs_rebuild")
			b.ReportMetric(float64(perUpdate), "ns/update")
		}
	})

	b.Run("full-rebuild", func(b *testing.B) {
		// cltree.Build peels core numbers internally and the tree exposes
		// them (Tree.CoreNumbers), so one Build IS the honest full rebuild
		// of everything the incremental path maintains.
		g := ds.Graph
		for i := 0; i < b.N; i++ {
			tree := cltree.Build(g)
			_ = tree.CoreNumbers()
		}
	})
}
