package dyntest

import (
	"fmt"
	"testing"

	"cexplorer/internal/api"
)

// TestCachedEquivalence is the serve-time speed layer's acceptance gate:
// for many random seeds, cached reads interleave with the mutation stream
// and every cached answer must equal the uncached oracle at the served
// version. Failures shrink with the same ddmin machinery as the index gate
// before reporting.
func TestCachedEquivalence(t *testing.T) {
	seeds := 10
	nOps := 600
	if testing.Short() {
		seeds, nOps = 3, 150
	}
	for seed := 1; seed <= seeds; seed++ {
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			sc := Scenario{
				Seed:      int64(seed),
				N:         50 + 10*(seed%5),
				M:         120 + 20*(seed%4),
				Vocab:     10,
				BatchSize: 20 + 10*(seed%3),
			}
			sc.Ops = GenOps(baseGraph(sc), nOps, sc.Seed*6271)
			if err := RunCached(sc); err != nil {
				base := baseGraph(sc)
				minimal := sc
				minimal.Ops = shrinkWith(sc.Ops, 150, func(ops []api.Mutation) bool {
					cand := sc
					cand.Ops = Sanitize(base, ops)
					if len(cand.Ops) == 0 {
						return false
					}
					return RunCached(cand) != nil
				})
				minimal.Ops = Sanitize(base, minimal.Ops)
				t.Fatalf("cached equivalence violated: %v\nminimal repro (%d ops):\n%s",
					err, len(minimal.Ops), Repro(minimal))
			}
		})
	}
}
