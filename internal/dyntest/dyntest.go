// Package dyntest is the randomized equivalence harness of the
// dynamic-graph subsystem: the executable proof that incremental index
// maintenance is indistinguishable from rebuilding from scratch.
//
// A scenario is a seeded random attributed graph plus a stream of random
// interleaved mutations (edge inserts, edge deletes, occasional vertex
// additions). The harness applies the stream through the real serving path
// — Dataset.Mutate, batch by batch — and after every batch asserts three
// layers of equivalence against from-scratch computation on the current
// graph:
//
//  1. core numbers: the incrementally maintained array equals a full
//     Batagelj–Zaveršnik re-peel, element for element;
//  2. CL-tree communities: the repaired tree passes the full structural
//     validator and answers every (vertex, k) community query identically
//     to a freshly built tree;
//  3. truss decomposition: the truss index is invalidated by mutation and
//     lazily rebuilt by the CSR-native parallel engine; its per-edge
//     trussness must match the by-definition oracle (ktruss.Naive) on the
//     mutated graph;
//  4. ACQ answers: the query engine over the repaired tree returns the
//     same attributed communities as one over a rebuilt tree, for a panel
//     of query vertices at several k.
//
// When a scenario fails, the harness shrinks the op stream (ddmin-style
// chunk removal, re-running the scenario on each candidate) and reports the
// minimal failing sequence as copy-pasteable JSON, so a regression arrives
// with its own repro attached.
package dyntest

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"slices"

	"cexplorer/internal/api"
	"cexplorer/internal/cltree"
	"cexplorer/internal/core"
	"cexplorer/internal/gen"
	"cexplorer/internal/graph"
	"cexplorer/internal/kcore"
	"cexplorer/internal/ktruss"
)

// Scenario is one generated workload.
type Scenario struct {
	Seed      int64
	N, M      int // base graph size
	Vocab     int
	Ops       []api.Mutation
	BatchSize int
}

// edgeKey packs an undirected edge for the generator's model.
type edgeKey struct{ u, v int32 }

func key(u, v int32) edgeKey {
	if u > v {
		u, v = v, u
	}
	return edgeKey{u, v}
}

// GenOps generates nOps random mutations that are valid when applied in
// order to g: ~half delete a live edge, ~half insert an absent one, and a
// small fraction append a fresh vertex (immediately wired in, so new
// vertices participate in the churn).
func GenOps(g *graph.Graph, nOps int, seed int64) []api.Mutation {
	rng := rand.New(rand.NewSource(seed))
	n := int32(g.N())
	live := make(map[edgeKey]int) // edge -> index in edges
	var edges []edgeKey
	g.Edges(func(u, v int32) bool {
		live[key(u, v)] = len(edges)
		edges = append(edges, key(u, v))
		return true
	})
	addEdge := func(k edgeKey) {
		live[k] = len(edges)
		edges = append(edges, k)
	}
	removeEdge := func(k edgeKey) {
		i := live[k]
		last := edges[len(edges)-1]
		edges[i] = last
		live[last] = i
		edges = edges[:len(edges)-1]
		delete(live, k)
	}

	ops := make([]api.Mutation, 0, nOps)
	for len(ops) < nOps {
		switch r := rng.Float64(); {
		case r < 0.02:
			// Fresh vertex with a couple of random keywords, wired to a
			// random existing vertex by the next iteration's inserts.
			ops = append(ops, api.Mutation{
				Op:       api.OpAddVertex,
				Keywords: []string{fmt.Sprintf("w%d", rng.Intn(8))},
			})
			n++
		case r < 0.50 && len(edges) > 0:
			k := edges[rng.Intn(len(edges))]
			removeEdge(k)
			ops = append(ops, api.Mutation{Op: api.OpRemoveEdge, U: k.u, V: k.v})
		default:
			u, v := int32(rng.Intn(int(n))), int32(rng.Intn(int(n)))
			if u == v {
				continue
			}
			k := key(u, v)
			if _, ok := live[k]; ok {
				continue
			}
			addEdge(k)
			ops = append(ops, api.Mutation{Op: api.OpAddEdge, U: k.u, V: k.v})
		}
	}
	return ops
}

// Sanitize filters ops down to the subsequence that stays valid when
// applied in order to g — the shrinker removes arbitrary chunks, which can
// orphan a later delete or duplicate a later insert, and those must become
// no-ops rather than abort the replay.
func Sanitize(g *graph.Graph, ops []api.Mutation) []api.Mutation {
	n := int32(g.N())
	live := make(map[edgeKey]bool)
	g.Edges(func(u, v int32) bool {
		live[key(u, v)] = true
		return true
	})
	out := make([]api.Mutation, 0, len(ops))
	for _, op := range ops {
		switch op.Op {
		case api.OpAddEdge:
			k := key(op.U, op.V)
			if op.U == op.V || op.U < 0 || op.V < 0 || op.U >= n || op.V >= n || live[k] {
				continue
			}
			live[k] = true
		case api.OpRemoveEdge:
			k := key(op.U, op.V)
			if !live[k] {
				continue
			}
			delete(live, k)
		case api.OpAddVertex:
			n++
		default:
			continue
		}
		out = append(out, op)
	}
	return out
}

// Run replays the scenario through Dataset.Mutate and checks equivalence
// after every batch. A non-nil error describes the first divergence.
func Run(sc Scenario) error {
	base := baseGraph(sc)
	ds := api.NewDataset("dyn", base)
	ds.CoreNumbers()
	ds.Tree()

	for off := 0; off < len(sc.Ops); off += sc.BatchSize {
		end := min(off+sc.BatchSize, len(sc.Ops))
		next, res, err := ds.Mutate(context.Background(), sc.Ops[off:end])
		if err != nil {
			return fmt.Errorf("batch at op %d: %w", off, err)
		}
		ds = next
		if err := CheckEquivalence(ds); err != nil {
			return fmt.Errorf("batch at op %d (version %d, repair=%s): %w", off, res.Version, res.TreeRepair, err)
		}
	}
	return nil
}

func baseGraph(sc Scenario) *graph.Graph {
	return gen.GNMAttributed(sc.N, sc.M, sc.Vocab, sc.Seed)
}

// CheckEquivalence asserts the dataset's incrementally maintained indexes
// are indistinguishable from a from-scratch rebuild of its current graph.
func CheckEquivalence(ds *api.Dataset) error {
	g := ds.Graph

	// Layer 1: core numbers.
	gotCore := ds.CoreNumbers()
	wantCore := kcore.Decompose(g)
	if !slices.Equal(gotCore, wantCore) {
		for v := range gotCore {
			if gotCore[v] != wantCore[v] {
				return fmt.Errorf("core[%d] = %d, rebuild says %d", v, gotCore[v], wantCore[v])
			}
		}
	}

	// Layer 2: CL-tree structure and communities.
	tree := ds.Tree()
	if err := tree.Validate(); err != nil {
		return fmt.Errorf("maintained tree fails validation: %w", err)
	}
	fresh := cltree.Build(g)
	for v := int32(0); int(v) < g.N(); v++ {
		for k := int32(1); k <= wantCore[v]; k++ {
			got := tree.SubtreeVertices(tree.Anchor(v, k), nil)
			want := fresh.SubtreeVertices(fresh.Anchor(v, k), nil)
			slices.Sort(got)
			slices.Sort(want)
			if !slices.Equal(got, want) {
				return fmt.Errorf("k-cover of v=%d k=%d: maintained %v, rebuild %v", v, k, got, want)
			}
		}
	}

	// Layer 3: truss decomposition. Mutations invalidate the truss index,
	// so Truss() here exercises the lazy rebuild of the CSR-native parallel
	// engine on the mutated graph; the by-definition oracle pins it down.
	truss := ds.Truss()
	wantTruss := ktruss.Naive(g)
	gotEdges, gotTruss := truss.Parts()
	if len(gotTruss) != len(wantTruss) {
		return fmt.Errorf("truss rebuild covers %d edges, graph has %d", len(gotTruss), len(wantTruss))
	}
	for id := range gotTruss {
		if gotTruss[id] != wantTruss[id] {
			e := gotEdges[id]
			return fmt.Errorf("truss({%d,%d}) = %d, naive says %d", e[0], e[1], gotTruss[id], wantTruss[id])
		}
	}

	// Layer 4: ACQ answers on a vertex panel.
	engGot := core.NewEngine(tree)
	engWant := core.NewEngine(fresh)
	stride := g.N()/12 + 1
	for q := int32(0); int(q) < g.N(); q += int32(stride) {
		for _, k := range []int32{1, 2, wantCore[q]} {
			if k < 1 {
				continue
			}
			got, err := engGot.Search(q, k, nil, core.Dec)
			if err != nil {
				return fmt.Errorf("acq on maintained tree (q=%d k=%d): %w", q, k, err)
			}
			want, err := engWant.Search(q, k, nil, core.Dec)
			if err != nil {
				return fmt.Errorf("acq on rebuilt tree (q=%d k=%d): %w", q, k, err)
			}
			if err := sameAnswers(got, want); err != nil {
				return fmt.Errorf("acq answers diverge at q=%d k=%d: %w", q, k, err)
			}
		}
	}
	return nil
}

// sameAnswers compares two ACQ answer lists up to ordering.
func sameAnswers(got, want []core.Community) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d communities vs %d", len(got), len(want))
	}
	canon := func(cs []core.Community) []string {
		out := make([]string, len(cs))
		for i, c := range cs {
			vs := slices.Clone(c.Vertices)
			slices.Sort(vs)
			out[i] = fmt.Sprint(c.SharedKeywords, vs)
		}
		slices.Sort(out)
		return out
	}
	g, w := canon(got), canon(want)
	for i := range g {
		if g[i] != w[i] {
			return fmt.Errorf("community %d: %s vs %s", i, g[i], w[i])
		}
	}
	return nil
}

// Shrink reduces a failing op stream to a (locally) minimal one that still
// fails, by repeatedly deleting chunks of halving size and keeping any
// deletion that preserves the failure. The sanitized candidate is what gets
// replayed, so removals never produce invalid streams. trials bounds the
// total number of replays.
func Shrink(sc Scenario, trials int) Scenario {
	base := baseGraph(sc)
	sc.Ops = shrinkWith(sc.Ops, trials, func(ops []api.Mutation) bool {
		cand := sc
		cand.Ops = Sanitize(base, ops)
		if len(cand.Ops) == 0 {
			return false
		}
		return Run(cand) != nil
	})
	sc.Ops = Sanitize(base, sc.Ops)
	return sc
}

// shrinkWith is the predicate-generic core of Shrink (also exercised
// directly by the shrinker's own tests).
func shrinkWith(in []api.Mutation, trials int, fails func([]api.Mutation) bool) []api.Mutation {
	return ShrinkSlice(in, trials, fails)
}

// ShrinkSlice is the element-generic ddmin core: it reduces a failing slice
// to a (locally) minimal one that still fails by deleting chunks of halving
// size and keeping any deletion that preserves the failure. trials bounds
// the total number of predicate calls. Harnesses over other element types
// (the chaos suite's fault schedules, for one) reuse it instead of
// re-deriving the chunk walk.
func ShrinkSlice[T any](in []T, trials int, fails func([]T) bool) []T {
	ops := slices.Clone(in)
	for chunk := len(ops) / 2; chunk >= 1 && trials > 0; {
		removedAny := false
		for start := 0; start+chunk <= len(ops) && trials > 0; {
			cand := slices.Concat(ops[:start], ops[start+chunk:])
			trials--
			if fails(cand) {
				ops = cand
				removedAny = true
			} else {
				start += chunk
			}
		}
		if chunk == 1 && !removedAny {
			break
		}
		if chunk > 1 {
			chunk /= 2
		} else if !removedAny {
			break
		}
	}
	return ops
}

// Repro renders the scenario as JSON for the failure report.
func Repro(sc Scenario) string {
	type repro struct {
		Seed      int64          `json:"seed"`
		N         int            `json:"n"`
		M         int            `json:"m"`
		Vocab     int            `json:"vocab"`
		BatchSize int            `json:"batchSize"`
		Ops       []api.Mutation `json:"ops"`
	}
	b, err := json.Marshal(repro{sc.Seed, sc.N, sc.M, sc.Vocab, sc.BatchSize, sc.Ops})
	if err != nil {
		return fmt.Sprintf("<unmarshalable scenario: %v>", err)
	}
	return string(b)
}
