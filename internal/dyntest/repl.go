package dyntest

// Replication oracle: after a replica has caught up to the primary's
// version, the two datasets must be indistinguishable — same graph bit for
// bit, and the replica's incrementally maintained indexes equivalent to a
// rebuild (CheckEquivalence), which together with graph equality makes its
// answers equal to the primary's.

import (
	"fmt"
	"slices"

	"cexplorer/internal/api"
)

// CheckConverged asserts a replica dataset is an exact copy of the primary
// dataset at the same version: identical version number, identical graph
// (vertices, edges, names, keywords), and — via CheckEquivalence — indexes
// that answer exactly like a from-scratch rebuild of that graph. Call it
// only after waiting for the replica to reach the primary's version.
func CheckConverged(primary, replica *api.Dataset) error {
	if primary.Version != replica.Version {
		return fmt.Errorf("version skew: primary at %d, replica at %d", primary.Version, replica.Version)
	}
	pg, rg := primary.Graph, replica.Graph
	if pg.N() != rg.N() {
		return fmt.Errorf("vertex count: primary %d, replica %d", pg.N(), rg.N())
	}
	if pg.M() != rg.M() {
		return fmt.Errorf("edge count: primary %d, replica %d", pg.M(), rg.M())
	}
	for v := int32(0); int(v) < pg.N(); v++ {
		if pn, rn := pg.Name(v), rg.Name(v); pn != rn {
			return fmt.Errorf("name of v=%d: primary %q, replica %q", v, pn, rn)
		}
		pw := slices.Clone(pg.KeywordStrings(v))
		rw := slices.Clone(rg.KeywordStrings(v))
		slices.Sort(pw)
		slices.Sort(rw)
		if !slices.Equal(pw, rw) {
			return fmt.Errorf("keywords of v=%d: primary %v, replica %v", v, pw, rw)
		}
		pa := slices.Clone(pg.Neighbors(v))
		ra := slices.Clone(rg.Neighbors(v))
		slices.Sort(pa)
		slices.Sort(ra)
		if !slices.Equal(pa, ra) {
			return fmt.Errorf("adjacency of v=%d: primary %v, replica %v", v, pa, ra)
		}
	}
	// The graphs match; now the replica's maintained indexes must answer
	// like a rebuild of that graph — the same bar every primary batch
	// passes in Run. Equal graphs + rebuild-equivalent indexes on both
	// sides ⇒ bit-equal query results for this version.
	if err := CheckEquivalence(replica); err != nil {
		return fmt.Errorf("replica indexes: %w", err)
	}
	return nil
}
