package dyntest

// The serve-time cache's equivalence layer: RunCached replays a scenario's
// mutation stream through Explorer.Mutate while issuing the same query
// panel against two Explorers over identical graph lineages — one serving
// through the version-keyed result cache, one computing uncached — and
// requires every cached answer to equal the uncached oracle at the served
// version. Each query runs twice per round, so the comparison covers both
// the miss path (leader computes, result cached) and the hit path (the
// stored value is served verbatim); mutating between rounds then proves
// version keying makes every stale entry unreachable: a cache serving any
// pre-mutation answer after the version bump diverges from the oracle and
// fails the run.

import (
	"context"
	"fmt"
	"slices"

	"cexplorer/internal/api"
)

// CachedQueries is how many (vertex, k, keywords) probes each round of
// RunCached issues; the panel strides the vertex range so coverage follows
// the graph as it grows.
const CachedQueries = 8

// RunCached replays the scenario and checks cached-vs-oracle equivalence
// after every batch. A non-nil error describes the first divergence.
func RunCached(sc Scenario) error {
	ctx := context.Background()
	cached := api.NewExplorer()
	if _, err := cached.AddGraph("dyn", baseGraph(sc)); err != nil {
		return err
	}
	cached.SetCache(api.NewServeCache(256, 4<<20, 0))
	oracle := api.NewExplorer()
	if _, err := oracle.AddGraph("dyn", baseGraph(sc)); err != nil {
		return err
	}

	check := func(round string) error {
		ds, _ := cached.Dataset("dyn")
		n := int32(ds.Graph.N())
		stride := n/CachedQueries + 1
		for q := int32(0); q < n; q += stride {
			for _, k := range []int{1, 2, 3} {
				query := api.Query{Vertices: []int32{q}, K: k}
				if q%2 == 0 {
					query.Keywords = []string{"w0", "w1"}
				}
				// Twice: first resolves a miss (or an earlier round's hit),
				// second is a guaranteed hit at this version.
				for pass := 0; pass < 2; pass++ {
					got, gotErr := cached.Search(ctx, "dyn", "ACQ", query)
					want, wantErr := oracle.Search(ctx, "dyn", "ACQ", query)
					if (gotErr == nil) != (wantErr == nil) {
						return fmt.Errorf("%s q=%d k=%d pass %d: cached err %v, oracle err %v",
							round, q, k, pass, gotErr, wantErr)
					}
					if gotErr != nil {
						continue
					}
					if err := sameAPIAnswers(got, want); err != nil {
						return fmt.Errorf("%s q=%d k=%d pass %d (version %d): %w",
							round, q, k, pass, ds.Version, err)
					}
				}
			}
		}
		return nil
	}

	if err := check("pre-mutation"); err != nil {
		return err
	}
	for off := 0; off < len(sc.Ops); off += sc.BatchSize {
		end := min(off+sc.BatchSize, len(sc.Ops))
		batch := sc.Ops[off:end]
		if _, err := cached.Mutate(ctx, "dyn", batch); err != nil {
			return fmt.Errorf("cached mutate at op %d: %w", off, err)
		}
		if _, err := oracle.Mutate(ctx, "dyn", batch); err != nil {
			return fmt.Errorf("oracle mutate at op %d: %w", off, err)
		}
		if err := check(fmt.Sprintf("after op %d", end)); err != nil {
			return err
		}
	}

	// The run must have exercised both cache paths, or the equivalence it
	// proved is vacuous.
	st := cached.Cache().Stats()
	if st.Hits == 0 || st.Computations == 0 {
		return fmt.Errorf("cache paths not exercised: %+v", st)
	}
	return nil
}

// sameAPIAnswers compares two api-level community lists up to ordering,
// mirroring sameAnswers for the core engine's type.
func sameAPIAnswers(got, want []api.Community) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d communities vs %d", len(got), len(want))
	}
	canon := func(cs []api.Community) []string {
		out := make([]string, len(cs))
		for i, c := range cs {
			vs := slices.Clone(c.Vertices)
			slices.Sort(vs)
			out[i] = fmt.Sprint(c.SharedKeywords, vs)
		}
		slices.Sort(out)
		return out
	}
	g, w := canon(got), canon(want)
	for i := range g {
		if g[i] != w[i] {
			return fmt.Errorf("community %d: %s vs %s", i, g[i], w[i])
		}
	}
	return nil
}
