package dyntest

import (
	"slices"
	"testing"

	"cexplorer/internal/api"
)

// TestShrinkFindsMinimalRepro proves the shrinker minimizes for real: a
// synthetic "bug" — any scenario whose final graph contains edge {2,5} —
// is planted in a 600-op stream, and shrinking must isolate the single op
// that triggers it.
func TestShrinkFindsMinimalRepro(t *testing.T) {
	sc := Scenario{Seed: 11, N: 50, M: 100, Vocab: 8, BatchSize: 25}
	base := baseGraph(sc)
	if base.HasEdge(2, 5) {
		t.Skip("edge in base")
	}
	sc.Ops = GenOps(base, 600, 123)
	// ensure the stream inserts {2,5} at some point
	has := slices.ContainsFunc(sc.Ops, func(m api.Mutation) bool {
		return m.Op == api.OpAddEdge && ((m.U == 2 && m.V == 5) || (m.U == 5 && m.V == 2))
	})
	if !has {
		sc.Ops = append(sc.Ops, api.Mutation{Op: api.OpAddEdge, U: 2, V: 5})
	}
	min := shrinkWith(sc.Ops, 600, func(ops []api.Mutation) bool {
		cand := sc
		cand.Ops = Sanitize(base, ops)
		if len(cand.Ops) == 0 {
			return false
		}
		// replay and test the synthetic property on the final graph
		ds := api.NewDataset("p", base)
		for off := 0; off < len(cand.Ops); off += cand.BatchSize {
			end := off + cand.BatchSize
			if end > len(cand.Ops) {
				end = len(cand.Ops)
			}
			next, _, err := ds.Mutate(t.Context(), cand.Ops[off:end])
			if err != nil {
				return false
			}
			ds = next
		}
		return ds.Graph.HasEdge(2, 5)
	})
	t.Logf("shrunk from %d to %d ops: %v", len(sc.Ops), len(min), min)
	if len(min) > 3 {
		t.Fatalf("shrinker left %d ops", len(min))
	}
}
