package dyntest

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"cexplorer/internal/api"
	"cexplorer/internal/snapshot"
)

// TestDynamicEquivalenceOnMmapBase reruns the equivalence gate with the base
// dataset opened zero-copy from a v3 snapshot file: version 0 serves every
// read straight off the mapping, the first Mutate materializes a fully
// heap-owned successor, and the lineage keeps satisfying the rebuild oracle
// after the original mapping is released mid-stream. This is the
// acceptance check that borrowed arenas and copy-on-write mutation compose.
func TestDynamicEquivalenceOnMmapBase(t *testing.T) {
	seeds := 6
	nOps := 400
	if testing.Short() {
		seeds, nOps = 2, 120
	}
	for seed := 1; seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			sc := Scenario{
				Seed:      int64(seed),
				N:         50 + 10*(seed%5),
				M:         120 + 15*(seed%4),
				Vocab:     10,
				BatchSize: 30,
			}
			base := baseGraph(sc)
			sc.Ops = GenOps(base, nOps, sc.Seed*104729)

			// Freeze the base with pre-built indexes and reopen it mapped.
			src := api.NewDataset("dyn", base)
			src.BuildIndexes()
			path := filepath.Join(t.TempDir(), "base.cxsnap")
			if _, err := src.WriteSnapshotFile(path); err != nil {
				t.Fatalf("write snapshot: %v", err)
			}
			ds, err := api.OpenSnapshotFileMode("", path, snapshot.OpenMmap)
			if err != nil {
				if _, _, merr := snapshot.OpenFile(path, snapshot.OpenMmap); merr != nil && !errors.Is(merr, snapshot.ErrNotZeroCopy) {
					t.Skipf("mmap unavailable: %v", merr)
				}
				t.Fatalf("mmap open: %v", err)
			}
			v0 := ds
			defer v0.Close()

			// The mapped v0 itself must pass the oracle before any mutation.
			if err := CheckEquivalence(ds); err != nil {
				t.Fatalf("mapped base fails equivalence before mutation: %v", err)
			}

			closedAt := len(sc.Ops) / 2
			for off := 0; off < len(sc.Ops); off += sc.BatchSize {
				end := min(off+sc.BatchSize, len(sc.Ops))
				next, res, err := ds.Mutate(context.Background(), sc.Ops[off:end])
				if err != nil {
					t.Fatalf("batch at op %d: %v", off, err)
				}
				ds = next
				if ds.Graph.Borrowed() {
					t.Fatalf("batch at op %d: successor still borrows the mapping", off)
				}
				if off >= closedAt && v0.MappedBytes() != 0 {
					// Halfway through, drop the original mapping: successors
					// must not notice.
					v0.Close()
				}
				if err := CheckEquivalence(ds); err != nil {
					t.Fatalf("batch at op %d (version %d, repair=%s): %v", off, res.Version, res.TreeRepair, err)
				}
			}
		})
	}
}
