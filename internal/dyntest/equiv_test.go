package dyntest

import (
	"fmt"
	"testing"

	"cexplorer/internal/api"
)

// TestDynamicEquivalence is the acceptance gate of the dynamic-graph
// subsystem: for many random seeds, a 1000+-op stream of interleaved
// inserts/deletes/vertex-adds is applied in batches through the real
// Dataset.Mutate path, and after every batch the incrementally maintained
// core numbers, CL-tree communities, and ACQ answers must be identical to
// a from-scratch rebuild. Failures shrink to a minimal repro before
// reporting.
func TestDynamicEquivalence(t *testing.T) {
	seeds := 24
	nOps := 1200
	if testing.Short() {
		seeds, nOps = 6, 300
	}
	for seed := 1; seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			sc := Scenario{
				Seed:      int64(seed),
				N:         60 + 10*(seed%7),
				M:         150 + 20*(seed%5),
				Vocab:     10,
				BatchSize: 25 + 10*(seed%4),
				Ops:       nil,
			}
			seedOps := nOps
			if seed%4 == 0 {
				// Single-op batches exercise the surgical level-move repair,
				// which only arms when a batch is exactly one edge op. The
				// per-batch check runs per op here, so the stream is shorter.
				sc.BatchSize = 1
				seedOps = nOps / 5
			}
			sc.Ops = GenOps(baseGraph(sc), seedOps, sc.Seed*7919)
			if err := Run(sc); err != nil {
				minimal := Shrink(sc, 400)
				t.Fatalf("equivalence violated: %v\nminimal repro (%d ops):\n%s",
					err, len(minimal.Ops), Repro(minimal))
			}
		})
	}
}

// TestShrinkProducesMinimalRepro plants a deliberate divergence detector —
// a scenario known to fail is simulated by checking the shrinker machinery
// itself: sanitization keeps streams valid, and shrinking a passing
// scenario is a no-op (Run must hold on every sanitized subsequence the
// shrinker would try).
func TestShrinkSanitizeKeepsStreamsValid(t *testing.T) {
	sc := Scenario{Seed: 3, N: 40, M: 90, Vocab: 8, BatchSize: 20}
	base := baseGraph(sc)
	ops := GenOps(base, 200, 42)

	// Remove arbitrary chunks and verify every sanitized subsequence still
	// applies cleanly (the property Shrink relies on).
	for start := 0; start < len(ops); start += 37 {
		end := min(start+23, len(ops))
		cand := append(append([]api.Mutation{}, ops[:start]...), ops[end:]...)
		sub := Sanitize(base, cand)
		run := sc
		run.Ops = sub
		if err := Run(run); err != nil {
			t.Fatalf("sanitized subsequence [cut %d:%d) failed to apply: %v", start, end, err)
		}
	}
}
