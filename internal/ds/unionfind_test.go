package ds

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUnionFindBasic(t *testing.T) {
	uf := NewUnionFind(10)
	if uf.Count() != 10 {
		t.Fatalf("Count = %d, want 10", uf.Count())
	}
	if uf.Len() != 10 {
		t.Fatalf("Len = %d, want 10", uf.Len())
	}
	if _, merged := uf.Union(1, 2); !merged {
		t.Fatal("Union(1,2) should merge")
	}
	if _, merged := uf.Union(2, 1); merged {
		t.Fatal("Union(2,1) should not merge twice")
	}
	if !uf.Same(1, 2) {
		t.Fatal("1 and 2 should be in the same set")
	}
	if uf.Same(1, 3) {
		t.Fatal("1 and 3 should differ")
	}
	if uf.Count() != 9 {
		t.Fatalf("Count = %d, want 9", uf.Count())
	}
}

func TestUnionFindChain(t *testing.T) {
	const n = 1000
	uf := NewUnionFind(n)
	for i := int32(0); i < n-1; i++ {
		uf.Union(i, i+1)
	}
	if uf.Count() != 1 {
		t.Fatalf("Count = %d, want 1", uf.Count())
	}
	root := uf.Find(0)
	for i := int32(0); i < n; i++ {
		if uf.Find(i) != root {
			t.Fatalf("Find(%d) = %d, want %d", i, uf.Find(i), root)
		}
	}
}

func TestUnionFindReset(t *testing.T) {
	uf := NewUnionFind(5)
	uf.Union(0, 1)
	uf.Union(2, 3)
	uf.Reset()
	if uf.Count() != 5 {
		t.Fatalf("after Reset Count = %d, want 5", uf.Count())
	}
	for i := int32(0); i < 5; i++ {
		if uf.Find(i) != i {
			t.Fatalf("after Reset Find(%d) = %d", i, uf.Find(i))
		}
	}
}

// TestUnionFindMatchesNaive checks union-find against a naive label-array
// implementation under random unions.
func TestUnionFindMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		uf := NewUnionFind(n)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = i
		}
		relabel := func(from, to int) {
			for i := range labels {
				if labels[i] == from {
					labels[i] = to
				}
			}
		}
		for op := 0; op < 120; op++ {
			x, y := int32(rng.Intn(n)), int32(rng.Intn(n))
			sameNaive := labels[x] == labels[y]
			if uf.Same(x, y) != sameNaive {
				return false
			}
			uf.Union(x, y)
			relabel(labels[y], labels[x])
		}
		// Count must agree with the number of distinct labels.
		seen := map[int]bool{}
		for _, l := range labels {
			seen[l] = true
		}
		return uf.Count() == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
