package ds

import (
	"slices"
	"sort"
)

// SortedInt32s provides merge-style set operations over sorted []int32
// slices, the representation used for interned keyword sets throughout the
// engine. All inputs must be strictly increasing; outputs are too.

// SortInt32s sorts s in place and removes duplicates, returning the
// (possibly shorter) slice.
func SortInt32s(s []int32) []int32 {
	if len(s) < 2 {
		return s
	}
	slices.Sort(s)
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// IntersectSorted returns a ∩ b as a new slice.
func IntersectSorted(a, b []int32) []int32 {
	out := make([]int32, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// IntersectSortedInto writes a ∩ b into dst (which is reset first) and
// returns it, avoiding allocation when dst has capacity. dst may share its
// backing array with a (e.g. dst = a[:0]): the write index never passes the
// read index, so repeated in-place intersection is safe.
func IntersectSortedInto(dst, a, b []int32) []int32 {
	dst = dst[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// IntersectionSize returns |a ∩ b| without allocating.
func IntersectionSize(a, b []int32) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// UnionSize returns |a ∪ b| without allocating.
func UnionSize(a, b []int32) int {
	return len(a) + len(b) - IntersectionSize(a, b)
}

// UnionSorted returns a ∪ b as a new slice.
func UnionSorted(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// ContainsAllSorted reports whether sub ⊆ super.
func ContainsAllSorted(super, sub []int32) bool {
	i, j := 0, 0
	for i < len(super) && j < len(sub) {
		switch {
		case super[i] < sub[j]:
			i++
		case super[i] > sub[j]:
			return false
		default:
			i++
			j++
		}
	}
	return j == len(sub)
}

// ContainsSorted reports whether x ∈ s using binary search.
func ContainsSorted(s []int32, x int32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	return i < len(s) && s[i] == x
}

// IndexSorted returns the position of x in the sorted slice s via binary
// search; ok is false when x is absent.
func IndexSorted(s []int32, x int32) (int, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	if i < len(s) && s[i] == x {
		return i, true
	}
	return 0, false
}

// JaccardSorted returns |a∩b| / |a∪b|, and 0 when both are empty.
func JaccardSorted(a, b []int32) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := IntersectionSize(a, b)
	return float64(inter) / float64(len(a)+len(b)-inter)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
