package ds

import "math/bits"

// BitSet is a dense, fixed-capacity bitset over [0, n). It backs the
// keyword-support intersections of the ACQ verifier, where candidate vertex
// sets are intersected against per-keyword membership sets.
type BitSet struct {
	words []uint64
	n     int
}

// NewBitSet returns an empty bitset with capacity for n bits.
func NewBitSet(n int) *BitSet {
	return &BitSet{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the bit capacity.
func (b *BitSet) Len() int { return b.n }

// Set sets bit i.
func (b *BitSet) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b *BitSet) Clear(i int) { b.words[i>>6] &^= 1 << (uint(i) & 63) }

// Test reports whether bit i is set.
func (b *BitSet) Test(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the number of set bits.
func (b *BitSet) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset clears all bits.
func (b *BitSet) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// CopyFrom overwrites b with the contents of src. The two sets must have the
// same capacity.
func (b *BitSet) CopyFrom(src *BitSet) {
	copy(b.words, src.words)
}

// IntersectWith replaces b with b ∩ other.
func (b *BitSet) IntersectWith(other *BitSet) {
	for i := range b.words {
		b.words[i] &= other.words[i]
	}
}

// UnionWith replaces b with b ∪ other.
func (b *BitSet) UnionWith(other *BitSet) {
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
}

// AndNot replaces b with b \ other.
func (b *BitSet) AndNot(other *BitSet) {
	for i := range b.words {
		b.words[i] &^= other.words[i]
	}
}

// Clone returns a copy of b.
func (b *BitSet) Clone() *BitSet {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &BitSet{words: w, n: b.n}
}

// ForEach calls fn for every set bit in ascending order. If fn returns false
// the iteration stops early.
func (b *BitSet) ForEach(fn func(i int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			if !fn(wi<<6 + tz) {
				return
			}
			w &= w - 1
		}
	}
}

// AppendBits appends the indices of all set bits to dst and returns it.
func (b *BitSet) AppendBits(dst []int32) []int32 {
	b.ForEach(func(i int) bool {
		dst = append(dst, int32(i))
		return true
	})
	return dst
}

// Any reports whether at least one bit is set.
func (b *BitSet) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}
