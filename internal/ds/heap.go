package ds

// PairHeap is a binary min-heap of (id, priority) pairs with a
// decrease/increase-key operation, used by the Local expansion strategy and
// by layout refinement. Priorities are float64; ties break on insertion
// order (heap order is unspecified for equal priorities, which is fine for
// all users in this repo because they re-check priorities on pop).
type PairHeap struct {
	ids   []int32
	prio  []float64
	index map[int32]int // id -> position in ids; -1 when absent
}

// NewPairHeap returns an empty heap with the given initial capacity hint.
func NewPairHeap(capHint int) *PairHeap {
	return &PairHeap{
		ids:   make([]int32, 0, capHint),
		prio:  make([]float64, 0, capHint),
		index: make(map[int32]int, capHint),
	}
}

// Len returns the number of queued items.
func (h *PairHeap) Len() int { return len(h.ids) }

// Contains reports whether id is currently queued.
func (h *PairHeap) Contains(id int32) bool {
	_, ok := h.index[id]
	return ok
}

// Priority returns the current priority of id; ok is false if absent.
func (h *PairHeap) Priority(id int32) (p float64, ok bool) {
	i, ok := h.index[id]
	if !ok {
		return 0, false
	}
	return h.prio[i], true
}

// Push inserts id with priority p, or updates its priority if already
// present (moving it up or down as needed).
func (h *PairHeap) Push(id int32, p float64) {
	if i, ok := h.index[id]; ok {
		old := h.prio[i]
		h.prio[i] = p
		if p < old {
			h.up(i)
		} else if p > old {
			h.down(i)
		}
		return
	}
	h.ids = append(h.ids, id)
	h.prio = append(h.prio, p)
	h.index[id] = len(h.ids) - 1
	h.up(len(h.ids) - 1)
}

// Pop removes and returns the minimum-priority item. It panics on an empty
// heap; callers guard with Len.
func (h *PairHeap) Pop() (id int32, p float64) {
	id, p = h.ids[0], h.prio[0]
	last := len(h.ids) - 1
	h.swap(0, last)
	h.ids = h.ids[:last]
	h.prio = h.prio[:last]
	delete(h.index, id)
	if last > 0 {
		h.down(0)
	}
	return id, p
}

// Remove deletes id from the heap if present.
func (h *PairHeap) Remove(id int32) {
	i, ok := h.index[id]
	if !ok {
		return
	}
	last := len(h.ids) - 1
	h.swap(i, last)
	h.ids = h.ids[:last]
	h.prio = h.prio[:last]
	delete(h.index, id)
	if i < last {
		h.down(i)
		h.up(i)
	}
}

func (h *PairHeap) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.prio[i], h.prio[j] = h.prio[j], h.prio[i]
	h.index[h.ids[i]] = i
	h.index[h.ids[j]] = j
}

func (h *PairHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.prio[parent] <= h.prio[i] {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *PairHeap) down(i int) {
	n := len(h.ids)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.prio[l] < h.prio[smallest] {
			smallest = l
		}
		if r < n && h.prio[r] < h.prio[smallest] {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
