// Package ds provides the small shared data structures used across the
// C-Explorer engine: union-find forests, dense bitsets, and bounded heaps.
//
// Everything in this package is allocation-conscious: the structures back the
// hot paths of core decomposition, CL-tree construction, and ACQ
// verification, where they are created once per graph (or per query) and
// reused.
package ds

// UnionFind is a classic disjoint-set forest with union by rank and path
// compression. Element IDs are dense ints in [0, n).
//
// The zero value is not usable; construct with NewUnionFind.
type UnionFind struct {
	parent []int32
	rank   []int8
	count  int // number of disjoint sets
}

// NewUnionFind returns a union-find over n singleton elements.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int32, n),
		rank:   make([]int8, n),
		count:  n,
	}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
	}
	return uf
}

// Len returns the number of elements (not sets).
func (uf *UnionFind) Len() int { return len(uf.parent) }

// Count returns the current number of disjoint sets.
func (uf *UnionFind) Count() int { return uf.count }

// Find returns the canonical representative of x's set, compressing paths
// as it goes.
func (uf *UnionFind) Find(x int32) int32 {
	root := x
	for uf.parent[root] != root {
		root = uf.parent[root]
	}
	for uf.parent[x] != root {
		uf.parent[x], x = root, uf.parent[x]
	}
	return root
}

// Union merges the sets containing x and y and returns the representative of
// the merged set. It reports whether a merge actually happened (false when x
// and y were already in the same set).
func (uf *UnionFind) Union(x, y int32) (root int32, merged bool) {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return rx, false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.count--
	return rx, true
}

// Same reports whether x and y are currently in the same set.
func (uf *UnionFind) Same(x, y int32) bool { return uf.Find(x) == uf.Find(y) }

// Reset returns the structure to n singletons without reallocating.
func (uf *UnionFind) Reset() {
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.rank[i] = 0
	}
	uf.count = len(uf.parent)
}
