package ds

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitSetBasic(t *testing.T) {
	b := NewBitSet(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d", b.Len())
	}
	if b.Any() {
		t.Fatal("new bitset should be empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		b.Set(i)
	}
	if got := b.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	if !b.Test(64) || b.Test(2) {
		t.Fatal("Test results wrong")
	}
	b.Clear(64)
	if b.Test(64) {
		t.Fatal("Clear(64) failed")
	}
	if got := b.Count(); got != 7 {
		t.Fatalf("Count after clear = %d, want 7", got)
	}
	b.Reset()
	if b.Any() {
		t.Fatal("Reset should empty the set")
	}
}

func TestBitSetForEachOrder(t *testing.T) {
	b := NewBitSet(200)
	want := []int{3, 64, 65, 100, 199}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEach(func(i int) bool {
		got = append(got, i)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	b.ForEach(func(i int) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("early stop visited %d, want 2", n)
	}
}

func TestBitSetAppendBits(t *testing.T) {
	b := NewBitSet(70)
	b.Set(5)
	b.Set(69)
	got := b.AppendBits(nil)
	if len(got) != 2 || got[0] != 5 || got[1] != 69 {
		t.Fatalf("AppendBits = %v", got)
	}
}

// TestBitSetOpsMatchMaps cross-checks set algebra against map-based sets.
func TestBitSetOpsMatchMaps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		a, b := NewBitSet(n), NewBitSet(n)
		ma, mb := map[int]bool{}, map[int]bool{}
		for i := 0; i < n/2; i++ {
			x, y := rng.Intn(n), rng.Intn(n)
			a.Set(x)
			ma[x] = true
			b.Set(y)
			mb[y] = true
		}
		inter := a.Clone()
		inter.IntersectWith(b)
		union := a.Clone()
		union.UnionWith(b)
		diff := a.Clone()
		diff.AndNot(b)
		for i := 0; i < n; i++ {
			if inter.Test(i) != (ma[i] && mb[i]) {
				return false
			}
			if union.Test(i) != (ma[i] || mb[i]) {
				return false
			}
			if diff.Test(i) != (ma[i] && !mb[i]) {
				return false
			}
		}
		return inter.Count()+union.Count() == a.Count()+b.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBitSetCopyFrom(t *testing.T) {
	a := NewBitSet(100)
	a.Set(10)
	a.Set(90)
	b := NewBitSet(100)
	b.Set(50)
	b.CopyFrom(a)
	if !b.Test(10) || !b.Test(90) || b.Test(50) {
		t.Fatal("CopyFrom did not overwrite")
	}
}
