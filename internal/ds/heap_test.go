package ds

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPairHeapOrdering(t *testing.T) {
	h := NewPairHeap(8)
	h.Push(1, 3.0)
	h.Push(2, 1.0)
	h.Push(3, 2.0)
	if h.Len() != 3 {
		t.Fatalf("Len = %d", h.Len())
	}
	id, p := h.Pop()
	if id != 2 || p != 1.0 {
		t.Fatalf("Pop = (%d,%f), want (2,1)", id, p)
	}
	id, _ = h.Pop()
	if id != 3 {
		t.Fatalf("Pop = %d, want 3", id)
	}
	id, _ = h.Pop()
	if id != 1 {
		t.Fatalf("Pop = %d, want 1", id)
	}
	if h.Len() != 0 {
		t.Fatal("heap should be empty")
	}
}

func TestPairHeapDecreaseKey(t *testing.T) {
	h := NewPairHeap(8)
	h.Push(1, 10)
	h.Push(2, 20)
	h.Push(2, 1) // decrease
	id, p := h.Pop()
	if id != 2 || p != 1 {
		t.Fatalf("decrease-key broken: got (%d,%f)", id, p)
	}
	h.Push(1, 100) // increase existing
	id, p = h.Pop()
	if id != 1 || p != 100 {
		t.Fatalf("increase-key broken: got (%d,%f)", id, p)
	}
}

func TestPairHeapRemove(t *testing.T) {
	h := NewPairHeap(8)
	for i := int32(0); i < 10; i++ {
		h.Push(i, float64(10-i))
	}
	h.Remove(9)  // currently minimum (priority 1)
	h.Remove(0)  // maximum
	h.Remove(42) // absent: no-op
	id, _ := h.Pop()
	if id != 8 {
		t.Fatalf("after removals Pop = %d, want 8", id)
	}
	if h.Contains(9) || h.Contains(0) {
		t.Fatal("removed ids still present")
	}
}

func TestPairHeapPriorityLookup(t *testing.T) {
	h := NewPairHeap(4)
	h.Push(7, 3.5)
	if p, ok := h.Priority(7); !ok || p != 3.5 {
		t.Fatalf("Priority(7) = %v,%v", p, ok)
	}
	if _, ok := h.Priority(8); ok {
		t.Fatal("Priority(8) should be absent")
	}
}

// TestPairHeapSortsRandom drains random pushes and checks the output is
// sorted by priority.
func TestPairHeapSortsRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		h := NewPairHeap(n)
		want := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			p := rng.Float64()
			h.Push(int32(i), p)
			want = append(want, p)
		}
		sort.Float64s(want)
		for i := 0; i < n; i++ {
			_, p := h.Pop()
			if p != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
