package ds

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSortInt32s(t *testing.T) {
	got := SortInt32s([]int32{5, 1, 3, 1, 5, 2})
	want := []int32{1, 2, 3, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if got := SortInt32s(nil); len(got) != 0 {
		t.Fatalf("nil input gave %v", got)
	}
	if got := SortInt32s([]int32{7}); !reflect.DeepEqual(got, []int32{7}) {
		t.Fatalf("single elem gave %v", got)
	}
}

func TestSetOpsBasic(t *testing.T) {
	a := []int32{1, 3, 5, 7}
	b := []int32{3, 4, 5, 8}
	if got := IntersectSorted(a, b); !reflect.DeepEqual(got, []int32{3, 5}) {
		t.Fatalf("Intersect = %v", got)
	}
	if got := UnionSorted(a, b); !reflect.DeepEqual(got, []int32{1, 3, 4, 5, 7, 8}) {
		t.Fatalf("Union = %v", got)
	}
	if got := IntersectionSize(a, b); got != 2 {
		t.Fatalf("IntersectionSize = %d", got)
	}
	if got := UnionSize(a, b); got != 6 {
		t.Fatalf("UnionSize = %d", got)
	}
	if !ContainsAllSorted(a, []int32{1, 7}) {
		t.Fatal("ContainsAllSorted(a, {1,7}) = false")
	}
	if ContainsAllSorted(a, []int32{1, 4}) {
		t.Fatal("ContainsAllSorted(a, {1,4}) = true")
	}
	if !ContainsSorted(a, 5) || ContainsSorted(a, 6) {
		t.Fatal("ContainsSorted broken")
	}
	if got := JaccardSorted(a, b); got != 2.0/6.0 {
		t.Fatalf("Jaccard = %f", got)
	}
	if got := JaccardSorted(nil, nil); got != 0 {
		t.Fatalf("Jaccard(∅,∅) = %f", got)
	}
}

func TestIntersectSortedInto(t *testing.T) {
	buf := make([]int32, 0, 8)
	got := IntersectSortedInto(buf, []int32{1, 2, 3}, []int32{2, 3, 4})
	if !reflect.DeepEqual(got, []int32{2, 3}) {
		t.Fatalf("got %v", got)
	}
	// Reuse must reset.
	got = IntersectSortedInto(got, []int32{9}, []int32{9})
	if !reflect.DeepEqual(got, []int32{9}) {
		t.Fatalf("reuse got %v", got)
	}
}

// TestSetOpsMatchMaps cross-checks merge-based set algebra against maps.
func TestSetOpsMatchMaps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() ([]int32, map[int32]bool) {
			n := rng.Intn(40)
			m := map[int32]bool{}
			for i := 0; i < n; i++ {
				m[int32(rng.Intn(60))] = true
			}
			s := make([]int32, 0, len(m))
			for v := range m {
				s = append(s, v)
			}
			return SortInt32s(s), m
		}
		a, ma := mk()
		b, mb := mk()
		inter := IntersectSorted(a, b)
		for _, v := range inter {
			if !ma[v] || !mb[v] {
				return false
			}
		}
		cnt := 0
		for v := range ma {
			if mb[v] {
				cnt++
			}
		}
		if cnt != len(inter) || cnt != IntersectionSize(a, b) {
			return false
		}
		if UnionSize(a, b) != len(ma)+len(mb)-cnt {
			return false
		}
		union := UnionSorted(a, b)
		if len(union) != UnionSize(a, b) {
			return false
		}
		for i := 1; i < len(union); i++ {
			if union[i-1] >= union[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
