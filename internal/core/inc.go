package core

import "slices"

// The incremental algorithms verify candidate keyword sets from small to
// large (paper §3.2: "incremental algorithms (from examining smaller
// candidate sets to larger ones)"). Both walk the admissible-set lattice
// Apriori-style — a size-(ℓ+1) candidate is generated only from two
// admissible size-ℓ sets sharing a prefix, exploiting anti-monotonicity —
// and differ in what they retain:
//
//   - Inc-S stores only the admissible keyword sets themselves (minimum
//     space) and re-verifies the winners once at the end.
//   - Inc-T additionally caches each admissible set's community and verifies
//     a child set by re-peeling the parent's community restricted to the new
//     keyword — strictly less work per verification, more memory.

type levelEntry struct {
	set  []int32
	comm []int32 // Inc-T only: the AC for set, ascending (refineVerify needs sorted parents)
}

// searchIncS is the space-efficient incremental algorithm.
func (e *Engine) searchIncS(qc *queryContext, S []int32) ([]Community, error) {
	admissible, _, err := qc.filterAdmissibleKeywords(S)
	if err != nil {
		return nil, err
	}
	e.stats.CandidateSets += len(S)
	if len(admissible) == 0 {
		return nil, nil
	}
	level := make([]levelEntry, 0, len(admissible))
	for _, w := range admissible {
		level = append(level, levelEntry{set: []int32{w}})
	}
	for {
		next, err := joinAndVerify(qc, level, false)
		if err != nil {
			return nil, err
		}
		e.stats.CandidateSets += len(next) // generated candidates that passed
		if len(next) == 0 {
			break
		}
		level = next
	}
	// Re-verify the top level to materialize the communities (Inc-S did not
	// keep them).
	answers := make([]Community, 0, len(level))
	for _, ent := range level {
		comp, err := qc.verify(ent.set)
		if err != nil {
			return nil, err
		}
		if comp != nil {
			answers = append(answers, qc.finish(comp, S))
		}
	}
	return qc.dedupAnswers(answers), nil
}

// searchIncT is the time-efficient incremental algorithm.
func (e *Engine) searchIncT(qc *queryContext, S []int32) ([]Community, error) {
	admissible, comms, err := qc.filterAdmissibleKeywords(S)
	if err != nil {
		return nil, err
	}
	e.stats.CandidateSets += len(S)
	if len(admissible) == 0 {
		return nil, nil
	}
	level := make([]levelEntry, 0, len(admissible))
	for _, w := range admissible {
		slices.Sort(comms[w]) // refineVerify needs ascending parents
		level = append(level, levelEntry{set: []int32{w}, comm: comms[w]})
	}
	for {
		next, err := joinAndVerify(qc, level, true)
		if err != nil {
			return nil, err
		}
		e.stats.CandidateSets += len(next)
		if len(next) == 0 {
			break
		}
		level = next
	}
	answers := make([]Community, 0, len(level))
	for _, ent := range level {
		answers = append(answers, qc.finish(ent.comm, S))
	}
	return qc.dedupAnswers(answers), nil
}

// joinAndVerify produces the next lattice level: Apriori join of the
// current admissible level, subset pruning, then verification — refined
// from the parent community when refine is true (Inc-T), from scratch
// otherwise (Inc-S).
func joinAndVerify(qc *queryContext, level []levelEntry, refine bool) ([]levelEntry, error) {
	if len(level) < 2 {
		return nil, nil
	}
	sets := &qc.e.sets
	admissibleKeys := make(map[int32]int, len(level))
	for i, ent := range level {
		admissibleKeys[sets.id(ent.set)] = i
	}
	var next []levelEntry
	seen := make(map[int32]bool)
	r := len(level[0].set)
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			a, b := level[i].set, level[j].set
			if !samePrefix(a, b, r-1) {
				continue
			}
			cand := make([]int32, r+1)
			copy(cand, a)
			last := b[r-1]
			if last == a[r-1] {
				continue
			}
			if last < a[r-1] {
				cand[r-1], cand[r] = last, a[r-1]
			} else {
				cand[r] = last
			}
			key := sets.id(cand)
			if seen[key] {
				continue
			}
			seen[key] = true
			// Apriori prune: every r-subset must be admissible.
			if !allSubsetsAdmissible(cand, admissibleKeys, sets) {
				continue
			}
			var comp []int32
			var err error
			if refine {
				// cand = a ∪ {b[r-1]} by construction, so restricting a's
				// community to the vertices carrying b[r-1] and re-peeling
				// yields exactly cand's AC (see refineVerify).
				comp, err = qc.refineVerify(level[i].comm, last)
			} else {
				comp, err = qc.verify(cand)
			}
			if err != nil {
				return nil, err
			}
			if comp != nil {
				if refine {
					// Keep Inc-T level communities ascending for the next
					// refine; Inc-S never reads comm, so skip the sort there.
					slices.Sort(comp)
				}
				next = append(next, levelEntry{set: cand, comm: comp})
			}
		}
	}
	return next, nil
}

func samePrefix(a, b []int32, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func allSubsetsAdmissible(cand []int32, admissible map[int32]int, sets *setIDs) bool {
	buf := make([]int32, len(cand)-1)
	for drop := range cand {
		copy(buf, cand[:drop])
		copy(buf[drop:], cand[drop+1:])
		if _, ok := admissible[sets.id(buf)]; !ok {
			return false
		}
	}
	return true
}
