package core

import (
	"context"
	"fmt"

	"cexplorer/internal/ds"
)

// SearchMulti answers the multi-query-vertex variant of §3.2: given a set Q
// of query vertices, return connected subgraphs containing all of Q with
// minimum degree ≥ k maximizing the shared keyword set L ⊆ S. A nil S
// defaults to the intersection of the query vertices' keyword sets (the
// natural generalization of S ⊆ W(q)).
//
// The algorithm is Dec over a universe restricted to the common k-core
// component of all query vertices; a query whose vertices sit in different
// k-core components has no answer.
func (e *Engine) SearchMulti(qs []int32, k int32, S []int32) ([]Community, error) {
	return e.SearchMultiContext(context.Background(), qs, k, S)
}

// SearchMultiContext is SearchMulti with cooperative cancellation, observing
// ctx exactly as SearchContext does.
func (e *Engine) SearchMultiContext(ctx context.Context, qs []int32, k int32, S []int32) ([]Community, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("acq: empty query vertex set")
	}
	for _, q := range qs {
		if q < 0 || int(q) >= e.g.N() {
			return nil, fmt.Errorf("acq: query vertex %d out of range", q)
		}
	}
	if k < 0 {
		return nil, fmt.Errorf("acq: negative k")
	}
	e.stats = Stats{}
	e.sets.reset()
	qs = sortedCopy(qs)
	qs = dedupSorted(qs)
	if len(qs) == 1 {
		return e.SearchContext(ctx, qs[0], k, S, Dec)
	}

	// All query vertices must share one k-core component: same anchor node.
	anchor := e.tree.Anchor(qs[0], k)
	if anchor == nil {
		return nil, nil
	}
	for _, q := range qs[1:] {
		if e.tree.Anchor(q, k) != anchor {
			return nil, nil
		}
	}

	// Default S: common keywords of all query vertices.
	if S == nil {
		S = sortedCopy(e.g.Keywords(qs[0]))
	} else {
		S = ds.IntersectSorted(sortedCopy(S), e.g.Keywords(qs[0]))
	}
	for _, q := range qs[1:] {
		S = ds.IntersectSorted(S, e.g.Keywords(q))
	}

	qc := newQueryContext(ctx, e, qs[0], k)
	if qc == nil {
		return nil, nil
	}
	e.stats.UniverseSize = len(qc.universe)
	qc.multi = qs

	answers, err := e.searchDec(qc, S)
	if err != nil {
		return nil, err
	}
	if len(answers) == 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		comp := e.peeler.ConnectedKCoreContainingAll(qc.universe, k, qs)
		if comp == nil {
			return nil, nil
		}
		answers = []Community{{Vertices: sortedCopy(comp)}}
	}
	return sortAnswers(answers), nil
}

func dedupSorted(s []int32) []int32 {
	if len(s) < 2 {
		return s
	}
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
