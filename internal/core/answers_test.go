package core

import (
	"reflect"
	"testing"
)

// TestSortAnswersDedup is the regression test for the duplicate-answer
// guard: sortAnswers used to assume "equal keyword sets cannot happen for
// distinct answers", so identical communities surfaced by different
// candidate orders were returned twice. They must collapse to one answer.
func TestSortAnswersDedup(t *testing.T) {
	answers := []Community{
		{Vertices: []int32{3, 1, 2}, SharedKeywords: []int32{5, 7}},
		{Vertices: []int32{2, 3, 1}, SharedKeywords: []int32{5, 7}}, // duplicate, different order
		{Vertices: []int32{1, 2, 3}, SharedKeywords: []int32{5}},
	}
	got := sortAnswers(answers)
	want := []Community{
		{Vertices: []int32{1, 2, 3}, SharedKeywords: []int32{5}},
		{Vertices: []int32{1, 2, 3}, SharedKeywords: []int32{5, 7}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sortAnswers = %+v, want %+v", got, want)
	}
}

// TestSortAnswersKeepsDistinctCommunities checks the guard only collapses
// exact duplicates: two answers sharing a keyword set but covering different
// vertices both survive.
func TestSortAnswersKeepsDistinctCommunities(t *testing.T) {
	answers := []Community{
		{Vertices: []int32{4, 5, 6}, SharedKeywords: []int32{5, 7}},
		{Vertices: []int32{1, 2, 3}, SharedKeywords: []int32{5, 7}},
	}
	got := sortAnswers(answers)
	if len(got) != 2 {
		t.Fatalf("distinct communities collapsed: %+v", got)
	}
	if got[0].Vertices[0] != 1 || got[1].Vertices[0] != 4 {
		t.Fatalf("unexpected order: %+v", got)
	}
}

// TestSetIDs exercises the interned set-ID scheme that replaced string map
// keys: equal sets get equal IDs, distinct sets distinct IDs, the empty set
// is 0, and reset starts a fresh namespace.
func TestSetIDs(t *testing.T) {
	var si setIDs
	si.reset()
	if id := si.id(nil); id != 0 {
		t.Fatalf("empty set id = %d", id)
	}
	a := si.id([]int32{1, 2, 3})
	b := si.id([]int32{1, 2, 4})
	c := si.id([]int32{1, 2}) // prefix of a
	if a == b || a == c || b == c {
		t.Fatalf("distinct sets collided: %d %d %d", a, b, c)
	}
	if again := si.id([]int32{1, 2, 3}); again != a {
		t.Fatalf("same set interned twice: %d vs %d", again, a)
	}
	si.reset()
	if si.n != 0 || len(si.steps) != 0 {
		t.Fatalf("reset left state: n=%d steps=%d", si.n, len(si.steps))
	}
	if fresh := si.id([]int32{9}); fresh != 1 {
		t.Fatalf("post-reset id = %d", fresh)
	}
}
