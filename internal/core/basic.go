package core

// searchBasic is the index-free baseline of §3.2: "first to consider all
// the possible keyword combinations of S, and then return the subgraphs
// which satisfy the minimum degree constraint and have the most shared
// keywords. This method requires the enumeration of all the subsets of S."
//
// It still receives the query context (built from the CL-tree) so that the
// candidate universe is comparable across algorithms; its defining cost is
// the exhaustive top-down enumeration without anti-monotone pruning or
// keyword pre-filtering. Complexity is exponential in |S|.
func (e *Engine) searchBasic(qc *queryContext, S []int32) ([]Community, error) {
	var answers []Community
	for size := len(S); size >= 1 && len(answers) == 0; size-- {
		err := forEachSubset(S, size, func(T []int32) error {
			e.stats.CandidateSets++
			comp, err := qc.verify(T)
			if err != nil {
				return err
			}
			if comp != nil {
				answers = append(answers, qc.finish(comp, S))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return qc.dedupAnswers(answers), nil
}

// forEachSubset enumerates all size-r subsets of S in lexicographic order,
// invoking fn with a reused buffer (fn must not retain it). A non-nil error
// from fn stops the enumeration and is returned — the escape hatch that lets
// a canceled query abandon the exponential walk mid-way.
func forEachSubset(S []int32, r int, fn func(T []int32) error) error {
	if r > len(S) || r <= 0 {
		return nil
	}
	idx := make([]int, r)
	for i := range idx {
		idx[i] = i
	}
	buf := make([]int32, r)
	for {
		for i, x := range idx {
			buf[i] = S[x]
		}
		if err := fn(buf); err != nil {
			return err
		}
		// Advance.
		i := r - 1
		for i >= 0 && idx[i] == len(S)-r+i {
			i--
		}
		if i < 0 {
			return nil
		}
		idx[i]++
		for j := i + 1; j < r; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// dedupAnswers drops answers with duplicate keyword sets (two verified sets
// can expand to the same maximal L).
func (qc *queryContext) dedupAnswers(answers []Community) []Community {
	if len(answers) < 2 {
		return answers
	}
	seen := make(map[int32]bool, len(answers))
	out := answers[:0]
	for _, a := range answers {
		k := qc.e.sets.id(a.SharedKeywords)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, a)
	}
	return out
}
