package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"cexplorer/internal/cltree"
	"cexplorer/internal/ds"
	"cexplorer/internal/gen"
	"cexplorer/internal/graph"
)

func figure5Engine(t testing.TB) *Engine {
	t.Helper()
	g := gen.Figure5()
	return NewEngine(cltree.Build(g))
}

// TestPaperWorkedExample is experiment E1: "If q=A, k=2 and S={w,x,y}, then
// the output of the ACQ query is the subgraph of three vertices {A, C, D},
// and all the vertices share two keywords x and y."
func TestPaperWorkedExample(t *testing.T) {
	e := figure5Engine(t)
	g := e.Graph()
	S := mustIDs(t, g, "w", "x", "y")
	for _, algo := range []Algorithm{Dec, IncS, IncT, Basic} {
		got, err := e.Search(gen.Figure5VertexID("A"), 2, S, algo)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if len(got) != 1 {
			t.Fatalf("%v: %d answers, want 1: %+v", algo, len(got), got)
		}
		wantV := []int32{0, 2, 3} // A, C, D
		if !reflect.DeepEqual(got[0].Vertices, wantV) {
			t.Fatalf("%v: vertices = %v, want %v", algo, got[0].Vertices, wantV)
		}
		wantL := mustIDs(t, g, "x", "y")
		if !reflect.DeepEqual(got[0].SharedKeywords, wantL) {
			t.Fatalf("%v: L = %v, want %v", algo, got[0].SharedKeywords, wantL)
		}
	}
}

func mustIDs(t testing.TB, g *graph.Graph, words ...string) []int32 {
	t.Helper()
	ids := make([]int32, 0, len(words))
	for _, w := range words {
		id, ok := g.Vocab().ID(w)
		if !ok {
			t.Fatalf("keyword %q not in vocab", w)
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestSearchDefaultsToQueryKeywords(t *testing.T) {
	e := figure5Engine(t)
	// nil S must behave as S = W(A) = {w,x,y}.
	got, err := e.Search(0, 2, nil, Dec)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].SharedKeywords) != 2 {
		t.Fatalf("got %+v", got)
	}
}

func TestSearchEnforcesSSubsetOfWq(t *testing.T) {
	e := figure5Engine(t)
	g := e.Graph()
	// z ∉ W(A): including it must not change the answer.
	S := mustIDs(t, g, "w", "x", "y", "z")
	got, err := e.Search(0, 2, S, Dec)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].SharedKeywords) != 2 {
		t.Fatalf("got %+v", got)
	}
}

func TestKeywordlessFallback(t *testing.T) {
	e := figure5Engine(t)
	// q=B, k=3, S={x}: B's 3-core is the K4 but D,A,C,B all have x... B does
	// have x, so {x} admits the K4. Use q=H, k=1, S=∅ candidates: H,I share
	// no keyword (H:{y,z}, I:{x}) so the fallback returns the plain 1-core
	// component {H,I} with empty L.
	g := e.Graph()
	got, err := e.Search(gen.Figure5VertexID("H"), 1, nil, Dec)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("answers = %+v", got)
	}
	if len(got[0].SharedKeywords) != 0 {
		t.Fatalf("L = %v, want empty", g.Vocab().Words(got[0].SharedKeywords))
	}
	if !reflect.DeepEqual(got[0].Vertices, []int32{7, 8}) {
		t.Fatalf("vertices = %v", got[0].Vertices)
	}
}

func TestNoCommunity(t *testing.T) {
	e := figure5Engine(t)
	// J is isolated: k=1 yields nothing.
	got, err := e.Search(gen.Figure5VertexID("J"), 1, nil, Dec)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("J at k=1 = %+v", got)
	}
	// F has core 1: k=2 yields nothing.
	if got, _ := e.Search(gen.Figure5VertexID("F"), 2, nil, Dec); got != nil {
		t.Fatalf("F at k=2 = %+v", got)
	}
}

func TestSearchErrors(t *testing.T) {
	e := figure5Engine(t)
	if _, err := e.Search(-1, 1, nil, Dec); err == nil {
		t.Fatal("negative q accepted")
	}
	if _, err := e.Search(999, 1, nil, Dec); err == nil {
		t.Fatal("out-of-range q accepted")
	}
	if _, err := e.Search(0, -1, nil, Dec); err == nil {
		t.Fatal("negative k accepted")
	}
	if _, err := e.Search(0, 1, nil, Algorithm(99)); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestMultiVertex(t *testing.T) {
	e := figure5Engine(t)
	g := e.Graph()
	// Q={A,D}, k=2: A and D share keywords {x,y}; answer {A,C,D} as before.
	got, err := e.SearchMulti([]int32{0, 3}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0].Vertices, []int32{0, 2, 3}) {
		t.Fatalf("multi answer = %+v", got)
	}
	if !reflect.DeepEqual(got[0].SharedKeywords, mustIDs(t, g, "x", "y")) {
		t.Fatalf("multi L = %v", got[0].SharedKeywords)
	}
	// Q={A,H}: different components → nil.
	if got, _ := e.SearchMulti([]int32{0, 7}, 1, nil); got != nil {
		t.Fatalf("disconnected multi = %+v", got)
	}
	// Single-vertex degenerate case routes to Search.
	got, err = e.SearchMulti([]int32{0, 0}, 2, nil)
	if err != nil || len(got) != 1 {
		t.Fatalf("degenerate multi: %v %+v", err, got)
	}
	// Errors.
	if _, err := e.SearchMulti(nil, 1, nil); err == nil {
		t.Fatal("empty Q accepted")
	}
	if _, err := e.SearchMulti([]int32{0, 88}, 1, nil); err == nil {
		t.Fatal("out-of-range member accepted")
	}
}

func TestStatsPopulated(t *testing.T) {
	e := figure5Engine(t)
	if _, err := e.Search(0, 2, nil, Dec); err != nil {
		t.Fatal(err)
	}
	st := e.LastStats()
	if st.Verifications == 0 || st.UniverseSize == 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

// --- cross-algorithm equivalence against an independent oracle ---

// oracleACQ answers Problem 1 by exhaustive enumeration with its own naive
// peeling (sharing no code with the engine beyond the graph type).
func oracleACQ(g *graph.Graph, q int32, k int32, S []int32) []Community {
	var best []Community
	bestSize := 0
	for mask := 1; mask < 1<<len(S); mask++ {
		var T []int32
		for i, w := range S {
			if mask&(1<<i) != 0 {
				T = append(T, w)
			}
		}
		if len(T) < bestSize {
			continue
		}
		comp := oracleVerify(g, q, k, T)
		if comp == nil {
			continue
		}
		sub := g.Induce(comp)
		L := sub.SharedKeywords(S)
		if len(L) > bestSize {
			bestSize = len(L)
			best = nil
		}
		if len(L) == bestSize {
			best = append(best, Community{Vertices: sub.Vertices, SharedKeywords: L})
		}
	}
	return dedupOracleAnswers(best)
}

// dedupOracleAnswers mirrors the engine's keyword-set dedup for the oracle
// (which has no query context to intern through).
func dedupOracleAnswers(answers []Community) []Community {
	seen := make(map[string]bool, len(answers))
	out := answers[:0]
	for _, a := range answers {
		k := fmt.Sprint(a.SharedKeywords)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, a)
	}
	return out
}

func oracleVerify(g *graph.Graph, q int32, k int32, T []int32) []int32 {
	in := make(map[int32]bool)
	for v := int32(0); v < int32(g.N()); v++ {
		if ds.ContainsAllSorted(g.Keywords(v), T) {
			in[v] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for v := range in {
			d := 0
			for _, u := range g.Neighbors(v) {
				if in[u] {
					d++
				}
			}
			if int32(d) < k {
				delete(in, v)
				changed = true
			}
		}
	}
	if !in[q] {
		return nil
	}
	// BFS component of q.
	comp := []int32{q}
	seen := map[int32]bool{q: true}
	for head := 0; head < len(comp); head++ {
		for _, u := range g.Neighbors(comp[head]) {
			if in[u] && !seen[u] {
				seen[u] = true
				comp = append(comp, u)
			}
		}
	}
	return comp
}

func randomAttributed(rng *rand.Rand, n int) *graph.Graph {
	words := []string{"a", "b", "c", "d", "e"}
	b := graph.NewBuilder(n, 0)
	for i := 0; i < n; i++ {
		nk := 1 + rng.Intn(4)
		kws := make([]string, 0, nk)
		for j := 0; j < nk; j++ {
			kws = append(kws, words[rng.Intn(len(words))])
		}
		b.AddVertex("", kws...)
	}
	m := 2 + rng.Intn(4*n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.MustBuild()
}

func canonicalize(answers []Community) []Community {
	sortAnswers(answers)
	return answers
}

// TestAlgorithmsAgreeWithOracle is the central correctness property: Dec,
// Inc-S, Inc-T and Basic must all return exactly the oracle's communities
// (same maximal keyword sets, same maximal vertex sets) on random graphs.
func TestAlgorithmsAgreeWithOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAttributed(rng, 4+rng.Intn(22))
		tr := cltree.Build(g)
		e := NewEngine(tr)
		for trial := 0; trial < 6; trial++ {
			q := int32(rng.Intn(g.N()))
			k := int32(1 + rng.Intn(3))
			S := g.Keywords(q)
			if tr.CoreNumbers()[q] < k {
				if got, _ := e.Search(q, k, nil, Dec); got != nil {
					return false
				}
				continue
			}
			want := canonicalize(oracleACQ(g, q, k, S))
			for _, algo := range []Algorithm{Dec, IncS, IncT, Basic} {
				got, err := e.Search(q, k, nil, algo)
				if err != nil {
					return false
				}
				if len(want) == 0 {
					// Oracle found no keyword-sharing AC; engine must return
					// the keywordless fallback (plain k-core component).
					if len(got) != 1 || len(got[0].SharedKeywords) != 0 {
						return false
					}
					continue
				}
				got = canonicalize(got)
				if !reflect.DeepEqual(got, want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestAnswerInvariants checks Problem 1's three properties on every answer
// over random graphs: connectivity (with q), structure cohesiveness
// (min degree ≥ k), and keyword cohesiveness (every member ⊇ L, L ⊆ S).
func TestAnswerInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAttributed(rng, 4+rng.Intn(40))
		e := NewEngine(cltree.Build(g))
		for trial := 0; trial < 8; trial++ {
			q := int32(rng.Intn(g.N()))
			k := int32(1 + rng.Intn(3))
			answers, err := e.Search(q, k, nil, Dec)
			if err != nil {
				return false
			}
			for _, a := range answers {
				sub := g.Induce(a.Vertices)
				if _, ok := sub.LocalID(q); !ok {
					return false
				}
				if !sub.IsConnected() {
					return false
				}
				if int32(sub.MinDegree()) < k {
					return false
				}
				for _, v := range a.Vertices {
					if !ds.ContainsAllSorted(g.Keywords(v), a.SharedKeywords) {
						return false
					}
				}
				if !ds.ContainsAllSorted(g.Keywords(q), a.SharedKeywords) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMultiVertexInvariants: multi-vertex answers contain every query
// vertex and satisfy the same cohesiveness properties.
func TestMultiVertexInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomAttributed(rng, 6+rng.Intn(30))
		e := NewEngine(cltree.Build(g))
		for trial := 0; trial < 5; trial++ {
			qs := []int32{int32(rng.Intn(g.N())), int32(rng.Intn(g.N()))}
			k := int32(1 + rng.Intn(2))
			answers, err := e.SearchMulti(qs, k, nil)
			if err != nil {
				return false
			}
			for _, a := range answers {
				sub := g.Induce(a.Vertices)
				for _, q := range qs {
					if _, ok := sub.LocalID(q); !ok {
						return false
					}
				}
				if !sub.IsConnected() || int32(sub.MinDegree()) < k {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestDecFasterThanBasicWorkload sanity-checks the work ordering the paper
// claims (E5 shape): on a DBLP-like graph Dec performs far fewer
// verifications than Basic's exhaustive enumeration.
func TestDecWorkBelowBasic(t *testing.T) {
	d := gen.GenerateDBLP(gen.SmallDBLPConfig())
	e := NewEngine(cltree.Build(d.Graph))
	q, ok := d.Graph.VertexByName("jim gray")
	if !ok {
		t.Fatal("no jim gray")
	}
	S := d.Graph.Keywords(q)
	if len(S) > 10 {
		S = S[:10]
	}
	if _, err := e.Search(q, 4, S, Dec); err != nil {
		t.Fatal(err)
	}
	decWork := e.LastStats().CandidateSets
	if _, err := e.Search(q, 4, S, Basic); err != nil {
		t.Fatal(err)
	}
	basicWork := e.LastStats().CandidateSets
	if decWork >= basicWork {
		t.Fatalf("Dec generated %d candidate sets, Basic %d: expected Dec ≪ Basic", decWork, basicWork)
	}
}

func TestAlgorithmString(t *testing.T) {
	for algo, want := range map[Algorithm]string{
		Dec: "Dec", IncS: "Inc-S", IncT: "Inc-T", Basic: "Basic",
	} {
		if algo.String() != want {
			t.Fatalf("%d.String() = %q", algo, algo.String())
		}
	}
	if Algorithm(42).String() == "" {
		t.Fatal("unknown algorithm should still print")
	}
}
