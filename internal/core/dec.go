package core

import "slices"

// searchDec is the decremental algorithm — the system default (§3.2: "the
// decremental algorithm ... from examining larger candidate sets to smaller
// ones", "Since Dec is generally faster than Inc-S and Inc-T, we choose Dec
// for the system").
//
// Dec first verifies every singleton keyword; by anti-monotonicity a
// keyword that alone admits no AC can appear in no admissible set, so the
// candidate alphabet shrinks to the admissible keywords S*. It then walks
// the subset lattice of S* top-down, level by level: verify every candidate
// of the current size; on success record an answer and stop expanding; on
// failure enqueue the candidate's (size-1)-subsets for the next level. The
// first level with an admissible set holds exactly the maximal-L answers,
// because the top-down walk generates every subset of S* of each size while
// no larger set has succeeded.
func (e *Engine) searchDec(qc *queryContext, S []int32) ([]Community, error) {
	admissible, comms, err := qc.filterAdmissibleKeywords(S)
	if err != nil {
		return nil, err
	}
	e.stats.CandidateSets += len(S)
	if len(admissible) == 0 {
		return nil, nil
	}
	if len(admissible) == 1 {
		return []Community{qc.finish(comms[admissible[0]], S)}, nil
	}

	current := [][]int32{admissible} // start from the full admissible set
	seen := map[int32]bool{qc.e.sets.id(admissible): true}

	for len(current) > 0 {
		size := len(current[0])
		var answers []Community
		var next [][]int32
		for _, T := range current {
			e.stats.CandidateSets++
			var comp []int32
			if size == 1 {
				comp = comms[T[0]] // already verified by the filter
			} else {
				comp, err = qc.verify(T)
				if err != nil {
					return nil, err
				}
			}
			if comp != nil {
				answers = append(answers, qc.finish(comp, S))
				continue
			}
			// Enqueue all (size-1)-subsets.
			for drop := 0; drop < size; drop++ {
				sub := make([]int32, 0, size-1)
				sub = append(sub, T[:drop]...)
				sub = append(sub, T[drop+1:]...)
				key := qc.e.sets.id(sub)
				if !seen[key] {
					seen[key] = true
					next = append(next, sub)
				}
			}
		}
		if len(answers) > 0 {
			return qc.dedupAnswers(answers), nil
		}
		// Deterministic processing order for the next level.
		slices.SortFunc(next, slices.Compare)
		current = next
	}
	return nil, nil
}
