// Package core implements the ACQ query engine — the primary contribution
// of the paper (Problem 1, §3.2): given an attributed graph G, a query
// vertex q, a minimum degree k, and a keyword set S ⊆ W(q), return the
// connected subgraphs containing q whose vertices all have degree ≥ k inside
// the subgraph and share a maximum-size keyword subset L ⊆ S.
//
// Four query algorithms are provided, as in the paper:
//
//   - Basic: subset enumeration without the index ("impractical,
//     especially when there are many keywords in S").
//   - Inc-S: incremental (small → large candidate keyword sets),
//     space-efficient — stores only the admissible keyword sets.
//   - Inc-T: incremental, time-efficient — caches each admissible set's
//     partial community and refines it for the set's supersets.
//   - Dec: decremental (large → small), the system default ("Since Dec is
//     generally faster than Inc-S and Inc-T, we choose Dec for the system").
//
// All three indexed algorithms restrict work to the CL-tree anchor subtree
// of (q,k) — the connected k-core component containing q — and exploit the
// anti-monotonicity of admissibility: if T admits an AC then so does every
// subset of T.
package core

import (
	"context"
	"fmt"
	"slices"

	"cexplorer/internal/cltree"
	"cexplorer/internal/ds"
	"cexplorer/internal/graph"
	"cexplorer/internal/kcore"
)

// Algorithm selects an ACQ query algorithm.
type Algorithm int

// The query algorithms of the paper, §3.2.
const (
	Dec Algorithm = iota // decremental; system default
	IncS
	IncT
	Basic // no index; exponential
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Dec:
		return "Dec"
	case IncS:
		return "Inc-S"
	case IncT:
		return "Inc-T"
	case Basic:
		return "Basic"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Community is one attributed community (AC): a connected subgraph
// containing the query vertex/vertices with minimum internal degree ≥ k
// whose members all carry SharedKeywords.
type Community struct {
	Vertices       []int32 // ascending
	SharedKeywords []int32 // L(Gq, S), ascending interned keyword IDs
}

// Stats reports work done by the last query, for the E5 experiment and the
// Analysis panel.
type Stats struct {
	Verifications int // candidate keyword sets verified by peeling
	CandidateSets int // candidate keyword sets generated
	UniverseSize  int // vertices in the CL-tree anchor subtree
}

// Engine executes ACQ queries against one CL-tree index. An Engine is not
// safe for concurrent use (it carries per-query scratch); create one per
// goroutine — they can share the same *cltree.Tree — or check warm engines
// out of a pool (api.Dataset does this for query serving).
//
// Under streaming mutations an Engine doubles as a version pin: it holds
// one tree and that tree's graph, both immutable, so every search it runs
// observes a single consistent dataset version no matter how many
// successor versions are published meanwhile. Engine pools are therefore
// per-version (each api.Dataset owns its own), and exploration sessions
// keep their pinned engine — and with it their version — for their whole
// lifetime.
type Engine struct {
	tree   *cltree.Tree
	g      *graph.Graph
	peeler *kcore.Peeler
	stats  Stats

	// Per-query scratch, reused across Search calls.
	sets    setIDs  // interned keyword-set IDs
	candBuf []int32 // candidate-intersection workspace
}

// NewEngine returns an engine over the given index.
func NewEngine(tree *cltree.Tree) *Engine {
	return &Engine{tree: tree, g: tree.Graph(), peeler: kcore.NewPeeler(tree.Graph())}
}

// Graph returns the underlying graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Tree returns the underlying CL-tree index.
func (e *Engine) Tree() *cltree.Tree { return e.tree }

// LastStats returns work counters from the most recent Search call.
func (e *Engine) LastStats() Stats { return e.stats }

// Search runs an ACQ query. S lists the query keywords (interned IDs); a
// nil S means "all of W(q)" as the C-Explorer UI defaults to. The result
// holds every community of maximum shared-keyword size; when no keyword
// admits a community but the connected k-core containing q exists, that
// k-core is returned with an empty SharedKeywords (the keywordless answer).
// A nil result means q has no community at this k.
func (e *Engine) Search(q int32, k int32, S []int32, algo Algorithm) ([]Community, error) {
	return e.SearchContext(context.Background(), q, k, S, algo)
}

// SearchContext is Search with cooperative cancellation: every candidate
// verification — the unit of work all four query algorithms are built from —
// polls ctx first, so a canceled or deadline-expired request stops after at
// most one in-flight peel and returns ctx.Err() instead of burning a worker
// to the end of the lattice walk.
func (e *Engine) SearchContext(ctx context.Context, q int32, k int32, S []int32, algo Algorithm) ([]Community, error) {
	if q < 0 || int(q) >= e.g.N() {
		return nil, fmt.Errorf("acq: query vertex %d out of range", q)
	}
	if k < 0 {
		return nil, fmt.Errorf("acq: negative k")
	}
	e.stats = Stats{}
	e.sets.reset()

	// Problem 1 requires S ⊆ W(q); intersect to enforce.
	if S == nil {
		S = e.g.Keywords(q)
	} else {
		S = ds.IntersectSorted(sortedCopy(S), e.g.Keywords(q))
	}

	qc := newQueryContext(ctx, e, q, k)
	if qc == nil {
		return nil, nil // core(q) < k: no community at all
	}
	e.stats.UniverseSize = len(qc.universe)

	var answers []Community
	var err error
	switch algo {
	case Basic:
		answers, err = e.searchBasic(qc, S)
	case IncS:
		answers, err = e.searchIncS(qc, S)
	case IncT:
		answers, err = e.searchIncT(qc, S)
	case Dec:
		answers, err = e.searchDec(qc, S)
	default:
		return nil, fmt.Errorf("acq: unknown algorithm %v", algo)
	}
	if err != nil {
		return nil, err
	}

	if len(answers) == 0 {
		// Keywordless fallback: the connected k-core containing q.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		comp := e.peeler.ConnectedKCoreContaining(qc.universe, k, q)
		if comp == nil {
			return nil, nil
		}
		answers = []Community{{Vertices: sortedCopy(comp)}}
	}
	return sortAnswers(answers), nil
}

// queryContext carries the per-query candidate universe: the CL-tree anchor
// subtree for (q,k) and lazily materialized per-keyword vertex lists.
type queryContext struct {
	ctx      context.Context
	e        *Engine
	q        int32
	k        int32
	universe []int32           // ascending
	kwLists  map[int32][]int32 // keyword -> ascending universe vertices carrying it
	anchor   *cltree.Node
	multi    []int32 // non-nil for multi-vertex queries: all must be in the AC
}

func newQueryContext(ctx context.Context, e *Engine, q, k int32) *queryContext {
	anchor := e.tree.Anchor(q, k)
	if anchor == nil {
		return nil
	}
	universe := e.tree.SubtreeVertices(anchor, nil)
	slices.Sort(universe)
	return &queryContext{
		ctx:      ctx,
		e:        e,
		q:        q,
		k:        k,
		universe: universe,
		kwLists:  make(map[int32][]int32),
		anchor:   anchor,
	}
}

// keywordVertices returns the ascending list of universe vertices carrying
// w, materializing it from the CL-tree inverted lists on first use.
func (qc *queryContext) keywordVertices(w int32) []int32 {
	if lst, ok := qc.kwLists[w]; ok {
		return lst
	}
	lst := qc.e.tree.SubtreeKeywordVertices(qc.anchor, w, nil)
	slices.Sort(lst)
	qc.kwLists[w] = lst
	return lst
}

// candidates returns the ascending vertex list {v ∈ universe : T ⊆ W(v)},
// or nil if any query vertex is excluded (then no AC for T can exist). The
// result may alias the engine's candidate buffer: it is valid only until the
// next candidates/refineVerify call (verification peels it immediately, so
// nothing downstream retains it).
func (qc *queryContext) candidates(T []int32) []int32 {
	if len(T) == 0 {
		return qc.universe
	}
	cur := qc.keywordVertices(T[0])
	if len(T) > 1 {
		// Intersections land in the engine's reusable buffer: the first
		// merge writes into it from the cached keyword lists, later merges
		// shrink it in place (the write index never passes the read index).
		buf := ds.IntersectSortedInto(qc.e.candBuf[:0], cur, qc.keywordVertices(T[1]))
		for _, w := range T[2:] {
			if len(buf) == 0 {
				break
			}
			buf = ds.IntersectSortedInto(buf[:0], buf, qc.keywordVertices(w))
		}
		qc.e.candBuf = buf
		cur = buf
	}
	if len(cur) == 0 {
		return nil
	}
	for _, q := range qc.queryVertices() {
		if !ds.ContainsSorted(cur, q) {
			return nil
		}
	}
	return cur
}

func (qc *queryContext) queryVertices() []int32 {
	if qc.multi != nil {
		return qc.multi
	}
	return []int32{qc.q}
}

// peelContaining runs the k-core peel over cand and returns the component
// holding every query vertex (nil if any is evicted or separated).
func (qc *queryContext) peelContaining(cand []int32) []int32 {
	if qc.multi != nil {
		return qc.e.peeler.ConnectedKCoreContainingAll(cand, qc.k, qc.multi)
	}
	return qc.e.peeler.ConnectedKCoreContaining(cand, qc.k, qc.q)
}

// verify checks whether keyword set T admits an AC: it computes the k-core
// of the subgraph induced by T's candidates and returns the connected
// component containing the query vertices (nil if none). The returned
// vertices are in BFS order. It polls the query context first — every
// candidate keyword set funnels through here (or refineVerify), so this is
// the cancellation point of all four query algorithms.
func (qc *queryContext) verify(T []int32) ([]int32, error) {
	if err := qc.ctx.Err(); err != nil {
		return nil, err
	}
	qc.e.stats.Verifications++
	cand := qc.candidates(T)
	if len(cand) < int(qc.k)+1 {
		return nil, nil
	}
	return qc.peelContaining(cand), nil
}

// refineVerify re-peels an already-known parent community restricted to the
// vertices carrying one extra keyword — the Inc-T sharing step. parent must
// be the AC for some T' with the refined set being T' ∪ {w}, in ascending
// order (level entries store their communities sorted so the parent is
// sorted once, not once per join partner).
func (qc *queryContext) refineVerify(parent []int32, w int32) ([]int32, error) {
	if err := qc.ctx.Err(); err != nil {
		return nil, err
	}
	qc.e.stats.Verifications++
	e := qc.e
	cand := ds.IntersectSortedInto(e.candBuf[:0], parent, qc.keywordVertices(w))
	e.candBuf = cand
	if len(cand) < int(qc.k)+1 {
		return nil, nil
	}
	return qc.peelContaining(cand), nil
}

// finish converts a verified vertex set into a Community, recomputing the
// exact shared keyword set L(Gq,S) for reporting.
func (qc *queryContext) finish(vertices []int32, S []int32) Community {
	vs := sortedCopy(vertices)
	sub := qc.e.g.Induce(vs)
	return Community{Vertices: vs, SharedKeywords: sub.SharedKeywords(S)}
}

// filterAdmissibleKeywords verifies every singleton {w}, w ∈ S, and returns
// the admissible keywords with their communities (in BFS order, as verify
// produces them). Anti-monotonicity makes this a complete filter: a keyword
// whose singleton fails appears in no admissible set.
func (qc *queryContext) filterAdmissibleKeywords(S []int32) ([]int32, map[int32][]int32, error) {
	admissible := make([]int32, 0, len(S))
	comms := make(map[int32][]int32, len(S))
	for _, w := range S {
		comp, err := qc.verify([]int32{w})
		if err != nil {
			return nil, nil, err
		}
		if comp != nil {
			admissible = append(admissible, w)
			comms[w] = comp
		}
	}
	return admissible, comms, nil
}

func sortedCopy(s []int32) []int32 {
	out := slices.Clone(s)
	slices.Sort(out)
	return out
}

// sortAnswers orders answers deterministically (by keyword set, then vertex
// set) and collapses exact duplicates. For a fixed keyword set the AC is
// unique, so distinct answers should never coincide — but different
// candidate orders can surface the same community more than once, and the
// guard makes that a collapse instead of a duplicated result.
func sortAnswers(answers []Community) []Community {
	for _, a := range answers {
		slices.Sort(a.Vertices)
	}
	slices.SortFunc(answers, func(x, y Community) int {
		if c := slices.Compare(x.SharedKeywords, y.SharedKeywords); c != 0 {
			return c
		}
		return slices.Compare(x.Vertices, y.Vertices)
	})
	return slices.CompactFunc(answers, func(x, y Community) bool {
		return slices.Equal(x.SharedKeywords, y.SharedKeywords) &&
			slices.Equal(x.Vertices, y.Vertices)
	})
}

// setIDs interns keyword sets (ascending int32 IDs) into dense int32 set IDs
// via a path trie: each (node, word) step maps to a child node, and the node
// reached after consuming all of T identifies T. Replaces the old
// string-key scheme (setKey built a fresh byte string per lookup); a trie
// walk allocates nothing in the steady state, and IDs stay small because the
// table is reset per query.
type setIDs struct {
	steps map[setStep]int32
	n     int32
}

type setStep struct{ node, word int32 }

// reset clears the table, keeping its storage for the next query.
func (si *setIDs) reset() {
	if si.steps == nil {
		si.steps = make(map[setStep]int32, 64)
	} else {
		clear(si.steps)
	}
	si.n = 0
}

// id returns the interned ID of T, which must be ascending. The empty set is
// 0; equal sets get equal IDs, distinct sets distinct IDs.
func (si *setIDs) id(T []int32) int32 {
	node := int32(0)
	for _, w := range T {
		step := setStep{node, w}
		next, ok := si.steps[step]
		if !ok {
			si.n++
			next = si.n
			si.steps[step] = next
		}
		node = next
	}
	return node
}
