package server

// Fleet control: the node-side half of the self-healing protocol (the
// router-side half lives in repl.Router). Every node serves GET
// /api/v1/health; a node with fleet control enabled additionally accepts the
// role-transition verbs the router's supervision loop issues —
//
//	POST /api/v1/promote  {epoch, peers}    replica → primary
//	POST /api/v1/demote   {epoch, primary}  stale primary → replica
//	POST /api/v1/retarget {epoch, primary}  replica → replica of a new primary
//
// — each fenced by the fleet epoch: a transition not strictly advancing the
// node's own epoch is refused with 409 epoch_fenced, which makes every verb
// idempotent and makes a partitioned router harmless (its stale epoch can
// demote nobody). The same epoch fences data: writes the router forwards are
// stamped with X-CExplorer-Fleet-Epoch, and fleetFence refuses a mismatch
// before anything is applied — the guarantee that a stale primary never
// acknowledges a routed write.

import (
	"context"
	"net/http"
	"strconv"
	"time"

	"cexplorer/internal/repl"
)

// FleetControl wires the role transitions a self-healing fleet needs into
// the server. The server cannot build its own tailer (that would invert the
// package dependency and hardcode tailing options), so the command layer
// hands it a factory.
type FleetControl struct {
	// StartTailer builds and starts a tailer against primaryURL, returning
	// the replica source backing reads and a stop function that cancels
	// the tailing goroutine. Called on demotion (and by StartFleetReplica
	// at boot).
	StartTailer func(primaryURL string) (ReplicaSource, func())
	// Feed configures the journal feed a promotion opens.
	Feed repl.FeedOptions
	// ReplicaWait bounds read-your-writes gate waits after a demotion
	// (default 2s).
	ReplicaWait time.Duration
}

// EnableFleet arms the role-transition endpoints. Call before Handler, on
// every node that may be promoted or demoted.
func (s *Server) EnableFleet(fc FleetControl) {
	s.mu.Lock()
	s.fleet = &fc
	s.mu.Unlock()
}

// StartFleetReplica boots the node as a fleet replica: the fleet's tailer
// factory builds the tailer and the server registers it. EnableFleet first.
func (s *Server) StartFleetReplica(primaryURL string) {
	s.mu.RLock()
	fc := s.fleet
	s.mu.RUnlock()
	src, stop := fc.StartTailer(primaryURL)
	s.EnableReplicationReplica(src, fc.ReplicaWait)
	s.mu.Lock()
	s.tailerStop = stop
	s.mu.Unlock()
}

// FleetEpoch reports the node's promotion counter (0 = never fenced).
func (s *Server) FleetEpoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fleetEpoch
}

func (s *Server) fleetControl() *FleetControl {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fleet
}

// fleetFence is the split-brain guard on the write path: a request stamped
// with a fleet epoch (the router stamps every routed write) is refused with
// 409 epoch_fenced unless it matches this node's own epoch. Unstamped
// requests pass — direct writes against a standalone server know nothing of
// fleets — as does everything on a node that has no epoch yet. Returns true
// when the request was refused.
func (s *Server) fleetFence(w http.ResponseWriter, r *http.Request) bool {
	hdr := r.Header.Get(repl.HeaderFleetEpoch)
	if hdr == "" {
		return false
	}
	stamped, err := strconv.ParseUint(hdr, 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad %s header: %v", repl.HeaderFleetEpoch, err)
		return true
	}
	own := s.FleetEpoch()
	if own == 0 || stamped == own {
		return false
	}
	writeEnvelope(w, http.StatusConflict,
		"write stamped with fleet epoch "+hdr+" but node is at "+strconv.FormatUint(own, 10)+
			": topology changed, retry through the router", repl.CodeEpochFenced)
	return true
}

// healthStatus builds the node's health payload.
func (s *Server) healthStatus() repl.HealthStatus {
	role := s.Role()
	if role == "" {
		role = "standalone"
	}
	h := repl.HealthStatus{
		Role:       role,
		FleetEpoch: s.FleetEpoch(),
		UptimeSec:  int64(time.Since(s.started).Seconds()),
		Datasets:   map[string]repl.DatasetHealth{},
		Promotions: uint64(s.stats.promotions.Load()),
		Demotions:  uint64(s.stats.demotions.Load()),
	}
	src, _ := s.replicaSource()
	feed := s.feed()
	for _, name := range s.exp.Datasets() {
		ds, ok := s.exp.Dataset(name)
		if !ok {
			continue
		}
		dh := repl.DatasetHealth{AppliedSeq: ds.Version, HeadSeq: ds.Version}
		if src != nil {
			if st, ok := src.Status(name); ok {
				dh = repl.DatasetHealth{Epoch: st.Epoch, AppliedSeq: st.AppliedSeq, HeadSeq: st.HeadSeq, Phase: st.Phase}
			}
		} else if feed != nil {
			if e, ok := feed.Epoch(name); ok {
				dh.Epoch = e
			}
		}
		h.Datasets[name] = dh
	}
	if src != nil {
		h.Primary = src.Primary()
	}
	return h
}

// appliedTotal sums dataset versions: the node's position in the election
// order. Versions are journal sequences, so this is comparable across nodes
// tailing the same lineage.
func (s *Server) appliedTotal() uint64 {
	var total uint64
	for _, name := range s.exp.Datasets() {
		if ds, ok := s.exp.Dataset(name); ok {
			total += ds.Version
		}
	}
	return total
}

// v1Health serves GET /api/v1/health: role, fleet epoch, per-dataset applied
// position, uptime. Cheap by design — the router probes it every second.
func (s *Server) v1Health(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.healthStatus())
}

// v1Promote serves POST /api/v1/promote: flip this replica to primary at the
// given fleet epoch. The candidate re-verifies the router's choice — it must
// be at least as caught up as every reachable peer — so an election based on
// stale health data cannot promote a lagging node past a fresher one.
func (s *Server) v1Promote(w http.ResponseWriter, r *http.Request) {
	fc := s.fleetControl()
	if fc == nil {
		writeEnvelope(w, http.StatusForbidden, "fleet control not enabled on this node", "fleet_disabled")
		return
	}
	var req struct {
		Epoch uint64   `json:"epoch"`
		Peers []string `json:"peers"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Epoch == 0 {
		httpError(w, http.StatusBadRequest, "epoch must be positive")
		return
	}
	own := s.FleetEpoch()
	if s.Role() == "primary" {
		if req.Epoch >= own {
			// Idempotent retry (or an epoch refresh): already primary.
			s.mu.Lock()
			if req.Epoch > s.fleetEpoch {
				s.fleetEpoch = req.Epoch
			}
			s.mu.Unlock()
			writeJSON(w, s.healthStatus())
			return
		}
		writeEnvelope(w, http.StatusConflict,
			"already primary at higher fleet epoch "+strconv.FormatUint(own, 10), repl.CodeEpochFenced)
		return
	}
	if req.Epoch <= own {
		writeEnvelope(w, http.StatusConflict,
			"promotion epoch "+strconv.FormatUint(req.Epoch, 10)+" not above own "+strconv.FormatUint(own, 10),
			repl.CodeEpochFenced)
		return
	}
	// Catch-up verification: every reachable peer must be at or behind us.
	// Unreachable peers are skipped — they are the nodes the fleet is
	// healing around, and blocking the election on them would deadlock it.
	local := s.appliedTotal()
	for _, peer := range req.Peers {
		ctx, cancel := context.WithTimeout(r.Context(), time.Second)
		ph, err := repl.FetchHealth(ctx, nil, peer)
		cancel()
		if err != nil {
			s.logf("fleet: promote: peer %s unreachable (%v); skipping", peer, err)
			continue
		}
		if pa := ph.AppliedTotal(); pa > local {
			writeEnvelope(w, http.StatusConflict,
				"peer "+peer+" has applied "+strconv.FormatUint(pa, 10)+" > own "+strconv.FormatUint(local, 10),
				repl.CodeNotCaughtUp)
			return
		}
	}
	// Transition: stop tailing first — from here no record of the old
	// lineage is applied — then open our own feed and flip to primary.
	// Writes stay refused (read_only) until replSrc clears, so there is no
	// window where a write is accepted but not published.
	s.mu.Lock()
	stop := s.tailerStop
	s.tailerStop = nil
	s.mu.Unlock()
	if stop != nil {
		stop()
	}
	s.EnableReplicationPrimary(fc.Feed)
	s.mu.Lock()
	s.replSrc = nil
	s.fleetEpoch = req.Epoch
	s.mu.Unlock()
	s.stats.promotions.Add(1)
	s.logf("fleet: promoted to primary at fleet epoch %d (applied %d)", req.Epoch, local)
	writeJSON(w, s.healthStatus())
}

// v1Demote serves POST /api/v1/demote: fence this (stale) primary and turn
// it into a replica of the given primary. Only an epoch strictly above the
// node's own can demote it — the guarantee that the current primary can
// never be clobbered by a partitioned router replaying old state.
func (s *Server) v1Demote(w http.ResponseWriter, r *http.Request) {
	fc := s.fleetControl()
	if fc == nil {
		writeEnvelope(w, http.StatusForbidden, "fleet control not enabled on this node", "fleet_disabled")
		return
	}
	var req struct {
		Epoch   uint64 `json:"epoch"`
		Primary string `json:"primary"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Primary == "" {
		httpError(w, http.StatusBadRequest, "missing primary")
		return
	}
	own := s.FleetEpoch()
	if s.Role() == "replica" && req.Epoch >= own {
		// Idempotent retry: already demoted. Re-point the tailer if needed.
		s.mu.Lock()
		if req.Epoch > s.fleetEpoch {
			s.fleetEpoch = req.Epoch
		}
		src := s.replSrc
		s.mu.Unlock()
		if src != nil && src.Primary() != req.Primary {
			src.Retarget(req.Primary)
		}
		writeJSON(w, s.healthStatus())
		return
	}
	if req.Epoch <= own {
		writeEnvelope(w, http.StatusConflict,
			"demotion epoch "+strconv.FormatUint(req.Epoch, 10)+" not above own "+strconv.FormatUint(own, 10),
			repl.CodeEpochFenced)
		return
	}
	// Fence the old lineage: detach the publish hook and the feed so no
	// further write is acknowledged or shipped, release parked pollers,
	// then start tailing the new primary.
	s.exp.SetMutateHook(nil)
	s.mu.Lock()
	feed := s.replFeed
	s.replFeed = nil
	stop := s.tailerStop
	s.tailerStop = nil
	s.mu.Unlock()
	if feed != nil {
		feed.Drain()
	}
	if stop != nil {
		stop()
	}
	src, stopNew := fc.StartTailer(req.Primary)
	s.EnableReplicationReplica(src, fc.ReplicaWait)
	s.mu.Lock()
	s.tailerStop = stopNew
	s.fleetEpoch = req.Epoch
	s.mu.Unlock()
	s.stats.demotions.Add(1)
	s.logf("fleet: demoted to replica of %s at fleet epoch %d", req.Primary, req.Epoch)
	writeJSON(w, s.healthStatus())
}

// v1Retarget serves POST /api/v1/retarget: point this replica's tailer at a
// new primary (after a promotion elsewhere). Requires epoch ≥ own; the node
// adopts a higher epoch.
func (s *Server) v1Retarget(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Epoch   uint64 `json:"epoch"`
		Primary string `json:"primary"`
	}
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Primary == "" {
		httpError(w, http.StatusBadRequest, "missing primary")
		return
	}
	src, _ := s.replicaSource()
	if src == nil {
		writeEnvelope(w, http.StatusConflict, "node is not a replica", "invalid_role")
		return
	}
	own := s.FleetEpoch()
	if req.Epoch < own {
		writeEnvelope(w, http.StatusConflict,
			"retarget epoch "+strconv.FormatUint(req.Epoch, 10)+" below own "+strconv.FormatUint(own, 10),
			repl.CodeEpochFenced)
		return
	}
	s.mu.Lock()
	if req.Epoch > s.fleetEpoch {
		s.fleetEpoch = req.Epoch
	}
	s.mu.Unlock()
	src.Retarget(req.Primary)
	writeJSON(w, s.healthStatus())
}
