package server

// Node-side fleet-control tests: the health payload per role, the epoch
// fencing matrix of the promote/demote/retarget verbs, the split-brain write
// fence, the Retry-After funnel, and graceful shutdown releasing parked
// journal long-polls. The fleet-wide behavior (election, convergence after
// failover) lives in internal/repl's failover suite; these tests pin the
// single-node contracts it builds on.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"cexplorer/internal/api"
	"cexplorer/internal/gen"
	"cexplorer/internal/repl"
)

// fakeTailer is a ReplicaSource test double recording retargets.
type fakeTailer struct {
	mu      sync.Mutex
	primary string
	stopped bool
}

func (f *fakeTailer) WaitVersion(ctx context.Context, dataset string, version uint64) error {
	return nil
}
func (f *fakeTailer) Status(dataset string) (repl.DatasetStatus, bool) {
	return repl.DatasetStatus{}, false
}
func (f *fakeTailer) Stats() repl.ReplicaStats { return repl.ReplicaStats{} }
func (f *fakeTailer) Primary() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.primary
}
func (f *fakeTailer) Retarget(primaryURL string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.primary = primaryURL
}

// fleetTestControl is a FleetControl whose tailer factory hands out
// fakeTailers and records every (re)start.
func fleetTestControl() (FleetControl, *[]*fakeTailer) {
	var mu sync.Mutex
	var made []*fakeTailer
	fc := FleetControl{
		StartTailer: func(primaryURL string) (ReplicaSource, func()) {
			f := &fakeTailer{primary: primaryURL}
			mu.Lock()
			made = append(made, f)
			mu.Unlock()
			return f, func() {
				f.mu.Lock()
				f.stopped = true
				f.mu.Unlock()
			}
		},
		Feed: repl.FeedOptions{},
	}
	return fc, &made
}

func getHealth(t *testing.T, baseURL string) repl.HealthStatus {
	t.Helper()
	resp, err := http.Get(baseURL + "/api/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health: status %d", resp.StatusCode)
	}
	var h repl.HealthStatus
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHealthEndpointPerRole(t *testing.T) {
	// Standalone: role named, epoch zero, positions = dataset versions.
	_, ts := testServer(t)
	h := getHealth(t, ts.URL)
	if h.Role != "standalone" || h.FleetEpoch != 0 {
		t.Fatalf("standalone health: role %q epoch %d", h.Role, h.FleetEpoch)
	}
	d, ok := h.Datasets["fig5"]
	if !ok || d.AppliedSeq != d.HeadSeq {
		t.Fatalf("standalone health datasets: %+v", h.Datasets)
	}

	// Primary: epoch 1 by definition, per-dataset snapshot epoch stamped.
	exp := api.NewExplorer()
	if _, err := exp.AddGraph("fig5", gen.Figure5()); err != nil {
		t.Fatal(err)
	}
	s := New(exp, nil)
	s.EnableReplicationPrimary(repl.FeedOptions{})
	pts := httptest.NewServer(s.Handler())
	defer pts.Close()
	h = getHealth(t, pts.URL)
	if h.Role != "primary" || h.FleetEpoch != 1 {
		t.Fatalf("primary health: role %q epoch %d", h.Role, h.FleetEpoch)
	}
	if d := h.Datasets["fig5"]; d.Epoch == 0 {
		t.Fatalf("primary health carries no snapshot epoch: %+v", h.Datasets)
	}
}

// TestFleetFenceOnWrites pins the split-brain guard: a primary at fleet
// epoch 1 refuses writes stamped with any other epoch before applying
// anything, accepts matching or unstamped writes, and 400s garbage.
func TestFleetFenceOnWrites(t *testing.T) {
	exp := api.NewExplorer()
	if _, err := exp.AddGraph("fig5", gen.Figure5()); err != nil {
		t.Fatal(err)
	}
	s := New(exp, nil)
	s.EnableReplicationPrimary(repl.FeedOptions{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(epochHdr string) (int, string) {
		t.Helper()
		req, _ := http.NewRequest("POST", ts.URL+"/api/v1/datasets/fig5/mutations",
			jsonBody(t, api.Mutation{Op: api.OpAddVertex, Name: "fence-probe"}))
		req.Header.Set("Content-Type", "application/json")
		if epochHdr != "" {
			req.Header.Set(repl.HeaderFleetEpoch, epochHdr)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env struct {
			Code string `json:"code"`
		}
		json.NewDecoder(resp.Body).Decode(&env)
		return resp.StatusCode, env.Code
	}

	ds, _ := exp.Dataset("fig5")
	before := ds.Version
	if status, code := post("2"); status != http.StatusConflict || code != repl.CodeEpochFenced {
		t.Fatalf("mismatched stamp: status %d code %q, want 409 %q", status, code, repl.CodeEpochFenced)
	}
	if ds, _ := exp.Dataset("fig5"); ds.Version != before {
		t.Fatal("fenced write was applied")
	}
	if status, _ := post("junk"); status != http.StatusBadRequest {
		t.Fatalf("garbage stamp: status %d, want 400", status)
	}
	if status, _ := post("1"); status != http.StatusOK {
		t.Fatalf("matching stamp: status %d, want 200", status)
	}
	if status, _ := post(""); status != http.StatusOK {
		t.Fatalf("unstamped write: status %d, want 200", status)
	}
}

// TestFleetVerbsRequireEnable: promote/demote are 403 fleet_disabled until
// the command layer arms fleet control.
func TestFleetVerbsRequireEnable(t *testing.T) {
	_, ts := testServer(t)
	for _, path := range []string{"/api/v1/promote", "/api/v1/demote"} {
		resp, err := http.Post(ts.URL+path, "application/json",
			jsonBody(t, map[string]any{"epoch": 2, "primary": "http://x"}))
		if err != nil {
			t.Fatal(err)
		}
		var env struct {
			Code string `json:"code"`
		}
		json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden || env.Code != "fleet_disabled" {
			t.Fatalf("%s without fleet control: status %d code %q", path, resp.StatusCode, env.Code)
		}
	}
}

// TestPromoteDemoteRetargetMatrix drives one node through the full role
// cycle over HTTP and pins the epoch fencing on every edge: only strictly
// advancing epochs transition, replays are idempotent 200s, stale epochs
// are 409 epoch_fenced, and a candidate behind a reachable peer refuses
// promotion with 409 not_caught_up.
func TestPromoteDemoteRetargetMatrix(t *testing.T) {
	exp := api.NewExplorer()
	if _, err := exp.AddGraph("fig5", gen.Figure5()); err != nil {
		t.Fatal(err)
	}
	s := New(exp, t.Logf)
	fc, made := fleetTestControl()
	s.EnableFleet(fc)
	s.StartFleetReplica("http://old-primary")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path string, body any) (int, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", jsonBody(t, body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var env struct {
			Code string `json:"code"`
		}
		json.NewDecoder(resp.Body).Decode(&env)
		return resp.StatusCode, env.Code
	}

	// Retarget while a replica: tailer re-pointed, epoch adopted.
	if status, code := post("/api/v1/retarget", map[string]any{"epoch": 0, "primary": "http://other-primary"}); status != http.StatusOK {
		t.Fatalf("retarget: status %d code %q", status, code)
	}
	if got := (*made)[0].Primary(); got != "http://other-primary" {
		t.Fatalf("retarget did not re-point the tailer: %q", got)
	}

	// Promotion needs a positive epoch.
	if status, _ := post("/api/v1/promote", map[string]any{"epoch": 0}); status != http.StatusBadRequest {
		t.Fatalf("promote epoch 0: status %d, want 400", status)
	}

	// A reachable peer further ahead vetoes the promotion.
	ahead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(repl.HealthStatus{
			Role:     "replica",
			Datasets: map[string]repl.DatasetHealth{"fig5": {AppliedSeq: 1000, HeadSeq: 1000}},
		})
	}))
	defer ahead.Close()
	if status, code := post("/api/v1/promote", map[string]any{"epoch": 5, "peers": []string{ahead.URL}}); status != http.StatusConflict || code != repl.CodeNotCaughtUp {
		t.Fatalf("promote behind a peer: status %d code %q, want 409 %q", status, code, repl.CodeNotCaughtUp)
	}
	if s.Role() != "replica" {
		t.Fatalf("vetoed promotion changed role to %q", s.Role())
	}

	// Unreachable peers are skipped (they are what the fleet heals around).
	if status, code := post("/api/v1/promote", map[string]any{"epoch": 5, "peers": []string{"http://127.0.0.1:1"}}); status != http.StatusOK {
		t.Fatalf("promote: status %d code %q", status, code)
	}
	if s.Role() != "primary" || s.FleetEpoch() != 5 {
		t.Fatalf("after promote: role %q epoch %d, want primary 5", s.Role(), s.FleetEpoch())
	}
	if !(*made)[0].stopped {
		t.Fatal("promotion did not stop the old tailer")
	}
	// Promotion replay is idempotent; a stale epoch is fenced.
	if status, _ := post("/api/v1/promote", map[string]any{"epoch": 5}); status != http.StatusOK {
		t.Fatalf("promote replay: status %d, want 200", status)
	}
	if status, code := post("/api/v1/promote", map[string]any{"epoch": 4}); status != http.StatusConflict || code != repl.CodeEpochFenced {
		t.Fatalf("stale promote: status %d code %q, want 409 %q", status, code, repl.CodeEpochFenced)
	}

	// The promoted node serves writes and ships its own journal.
	resp := postJSON(t, ts.URL+"/api/v1/datasets/fig5/mutations", api.Mutation{Op: api.OpAddEdge, U: 0, V: 5}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("write on promoted node: status %d", resp.StatusCode)
	}

	// Retarget is a replica verb: a primary refuses with 409 invalid_role.
	if status, code := post("/api/v1/retarget", map[string]any{"epoch": 5, "primary": "http://x"}); status != http.StatusConflict || code != "invalid_role" {
		t.Fatalf("retarget on primary: status %d code %q, want 409 invalid_role", status, code)
	}

	// Demotion: only a strictly higher epoch fences the primary.
	if status, code := post("/api/v1/demote", map[string]any{"epoch": 5, "primary": "http://new-primary"}); status != http.StatusConflict || code != repl.CodeEpochFenced {
		t.Fatalf("same-epoch demote: status %d code %q, want 409 %q", status, code, repl.CodeEpochFenced)
	}
	if status, code := post("/api/v1/demote", map[string]any{"epoch": 6, "primary": "http://new-primary"}); status != http.StatusOK {
		t.Fatalf("demote: status %d code %q", status, code)
	}
	if s.Role() != "replica" || s.FleetEpoch() != 6 {
		t.Fatalf("after demote: role %q epoch %d, want replica 6", s.Role(), s.FleetEpoch())
	}
	if len(*made) != 2 || (*made)[1].Primary() != "http://new-primary" {
		t.Fatalf("demotion did not start a tailer against the new primary: %d tailers", len(*made))
	}
	// Demote replay with a newer target re-points instead of erroring.
	if status, _ := post("/api/v1/demote", map[string]any{"epoch": 6, "primary": "http://newer-primary"}); status != http.StatusOK {
		t.Fatal("demote replay failed")
	}
	if got := (*made)[1].Primary(); got != "http://newer-primary" {
		t.Fatalf("demote replay did not retarget: %q", got)
	}
	// Retarget fencing on the demoted replica: a target is required, and an
	// epoch below the node's own cannot move its tailer.
	if status, _ := post("/api/v1/retarget", map[string]any{"epoch": 6}); status != http.StatusBadRequest {
		t.Fatalf("retarget without a primary: status %d, want 400", status)
	}
	if status, code := post("/api/v1/retarget", map[string]any{"epoch": 5, "primary": "http://stale"}); status != http.StatusConflict || code != repl.CodeEpochFenced {
		t.Fatalf("stale retarget: status %d code %q, want 409 %q", status, code, repl.CodeEpochFenced)
	}
	if got := (*made)[1].Primary(); got != "http://newer-primary" {
		t.Fatalf("fenced retarget moved the tailer: %q", got)
	}

	// Demoted node: writes 403 read_only, journal shipping 503 no_primary.
	resp = postJSON(t, ts.URL+"/api/v1/datasets/fig5/mutations", api.Mutation{Op: api.OpAddEdge, U: 1, V: 4}, nil)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("write on demoted node: status %d, want 403", resp.StatusCode)
	}
	shipResp, err := http.Get(ts.URL + "/api/v1/datasets/fig5/journal?fromSeq=1")
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Code string `json:"code"`
	}
	json.NewDecoder(shipResp.Body).Decode(&env)
	shipResp.Body.Close()
	if shipResp.StatusCode != http.StatusServiceUnavailable || env.Code != repl.CodeNoPrimary {
		t.Fatalf("journal ship on demoted node: status %d code %q, want 503 %q",
			shipResp.StatusCode, env.Code, repl.CodeNoPrimary)
	}

	// Health reflects the journey.
	h := getHealth(t, ts.URL)
	if h.Role != "replica" || h.FleetEpoch != 6 || h.Promotions != 1 || h.Demotions != 1 {
		t.Fatalf("health after the cycle: %+v", h)
	}
}

// TestRetryAfterFunnel: every 429/503 envelope carries Retry-After so
// clients can back off instead of hammering, and explicit values win.
func TestRetryAfterFunnel(t *testing.T) {
	cases := []struct {
		status int
		preset string
		want   string
	}{
		{http.StatusTooManyRequests, "", "1"},
		{http.StatusServiceUnavailable, "", "1"},
		{http.StatusServiceUnavailable, "7", "7"},
		{http.StatusForbidden, "", ""},
		{http.StatusConflict, "", ""},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		if tc.preset != "" {
			rec.Header().Set("Retry-After", tc.preset)
		}
		writeEnvelope(rec, tc.status, "msg", "some_code")
		if got := rec.Header().Get("Retry-After"); got != tc.want {
			t.Errorf("status %d (preset %q): Retry-After %q, want %q", tc.status, tc.preset, got, tc.want)
		}
	}
}

// TestShutdownReleasesJournalLongPoll: graceful shutdown drains the feed, so
// a parked journal long-poll returns promptly instead of riding out its full
// wait (which would hold the listener open past any drain budget).
func TestShutdownReleasesJournalLongPoll(t *testing.T) {
	exp := api.NewExplorer()
	if _, err := exp.AddGraph("fig5", gen.Figure5()); err != nil {
		t.Fatal(err)
	}
	s := New(exp, t.Logf)
	feed := s.EnableReplicationPrimary(repl.FeedOptions{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	epoch, ok := feed.Epoch("fig5")
	if !ok {
		t.Fatal("feed does not know fig5")
	}
	type pollResult struct {
		status  int
		elapsed time.Duration
		err     error
	}
	done := make(chan pollResult, 1)
	go func() {
		start := time.Now()
		url := ts.URL + "/api/v1/datasets/fig5/journal?fromSeq=1&epoch=" +
			strconv.FormatUint(epoch, 10) + "&wait=25s"
		resp, err := http.Get(url)
		if err != nil {
			done <- pollResult{err: err, elapsed: time.Since(start)}
			return
		}
		resp.Body.Close()
		done <- pollResult{status: resp.StatusCode, elapsed: time.Since(start)}
	}()

	// Give the poll time to park, then shut down.
	time.Sleep(200 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case res := <-done:
		if res.err != nil {
			t.Fatalf("long-poll errored: %v", res.err)
		}
		if res.status != http.StatusOK {
			t.Fatalf("long-poll status %d", res.status)
		}
		if res.elapsed > 5*time.Second {
			t.Fatalf("long-poll held for %s; drain did not release it", res.elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("long-poll never returned after shutdown")
	}
}

// jsonBody marshals a value into a request body reader.
func jsonBody(t *testing.T, v any) io.Reader {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}
