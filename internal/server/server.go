// Package server implements the browser–server model of Figure 3: a JSON
// HTTP API over the api.Explorer engine plus an embedded single-page UI.
// The paper's stack is JSP + Tomcat; here it is net/http.
//
// The stable, versioned surface is the resource-oriented /api/v1 tree (see
// v1.go): datasets are resources, searches and explorations are
// sub-resources, community lists paginate, and errors arrive in one typed
// JSON envelope. The original flat routes remain as thin aliases that
// delegate to the same handler cores:
//
//	POST /api/upload    — upload a graph (JSON wire format)
//	GET  /api/graphs    — list datasets and registered algorithms
//	GET  /api/vertex    — resolve an author name → id, keywords, profile
//	POST /api/search    — run a CS algorithm for a query vertex
//	POST /api/detect    — run a CD algorithm on the whole graph
//	POST /api/analyze   — CPJ/CMF + statistics for a community
//	POST /api/display   — force-directed layout for a community
//	POST /api/compare   — the Figure-6 comparison table in one call
//	GET  /api/stats     — request-level serving statistics
//
// Handlers run concurrently (one goroutine per request, as net/http does);
// search-class work (search, detect, compare, explore) is additionally
// bounded by a worker limit so a burst of heavy queries cannot
// oversubscribe the CPU — excess requests queue for a slot rather than
// piling onto the scheduler. Every search-class request carries a
// context.Context derived from the client connection (plus the optional
// server-wide search timeout): a dropped client or an expired deadline
// cancels the computation inside the algorithm kernels and frees the
// worker slot instead of burning it.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"cexplorer/internal/api"
	"cexplorer/internal/gen"
	"cexplorer/internal/layout"
	"cexplorer/internal/par"
	"cexplorer/internal/repl"
	"cexplorer/internal/servecache"
	"cexplorer/internal/snapshot"
)

// Server wraps the explorer engine with HTTP plumbing.
type Server struct {
	exp *api.Explorer

	mu       sync.RWMutex
	profiles map[string]map[int32]gen.Profile // dataset -> vertex -> profile
	dataDir  string                           // snapshot catalog directory; "" disables persistence
	openMode snapshot.OpenMode                // how LoadSnapshots materializes catalog files

	// journalMu serializes every journal append, reset, and compaction (a
	// compaction persists the dataset it re-fetches under this lock, so a
	// record appended by a concurrent batch can never be deleted before
	// the snapshot that supersedes it exists). journalOps tracks ops
	// journaled per dataset since its last full persist; crossing
	// journalCompactAfter triggers compaction.
	journalMu           sync.Mutex
	journalOps          map[string]int
	journalCompactAfter int

	logf func(format string, args ...any)

	// searchSem bounds the number of searches executing at once; cap is the
	// worker limit. Acquisition queues (fairly, via channel semantics) until
	// a slot frees or the client gives up.
	searchSem chan struct{}

	// searchTimeout, when positive, deadline-bounds every search-class
	// request (queue wait + computation). Atomic so SetSearchTimeout is safe
	// mid-serve.
	searchTimeout atomic.Int64 // nanoseconds

	// batcher, when non-nil, coalesces concurrent mutation submissions into
	// combined Mutate batches (EnableBatcher); its apply seam is
	// applyMutations, so batched and unbatched writes share the same
	// journal-and-count path.
	batcher *api.MutationBatcher

	// Replication wiring (see repl.go): role is "" (standalone),
	// "primary" (replFeed ships the journal), or "replica" (replSrc tails
	// a primary; replicaWait bounds read-your-writes gate waits).
	role        string
	replFeed    *repl.Feed
	replSrc     ReplicaSource
	replicaWait time.Duration

	// Fleet wiring (see health.go): fleetEpoch is the promotion counter a
	// stamped write must match (0 = never fenced); fleet holds the
	// transition hooks EnableFleet installed; tailerStop cancels the
	// running tailer (set on replicas, swapped on demotion).
	fleetEpoch uint64
	fleet      *FleetControl
	tailerStop func()

	// started anchors the health endpoint's uptime; httpSrv is the
	// listener ListenAndServe built, kept so Shutdown can drain it.
	started time.Time
	httpSrv *http.Server

	stats serverStats
}

// serverStats holds request-level counters, all updated atomically so the
// hot path takes no lock.
type serverStats struct {
	requests       atomic.Int64
	errors         atomic.Int64
	searches       atomic.Int64
	searchInFlight atomic.Int64
	searchNanos    atomic.Int64

	// Snapshot catalog counters: cumulative load/persist counts and wall
	// time, so the cold-start trajectory is observable at /api/stats.
	snapshotLoads        atomic.Int64
	snapshotLoadNanos    atomic.Int64
	snapshotLoadErrors   atomic.Int64
	snapshotPersists     atomic.Int64
	snapshotPersistNanos atomic.Int64

	// Early-exit counters for search-class requests.
	canceled atomic.Int64
	timedOut atomic.Int64

	// Mutation counters: applied batches/ops, rejected requests, and the
	// wall time spent inside Explorer.Mutate.
	mutationBatches atomic.Int64
	mutationOps     atomic.Int64
	mutationErrors  atomic.Int64
	mutationNanos   atomic.Int64

	// Replication shipping counters (primary role): journal ship responses
	// and bytes, bootstrap snapshot streams and bytes.
	replShipRequests  atomic.Int64
	replShipBytes     atomic.Int64
	replSnapshotShips atomic.Int64
	replSnapshotBytes atomic.Int64

	// Fleet role transitions (see health.go).
	promotions atomic.Int64
	demotions  atomic.Int64
}

// StatsSnapshot is the /api/stats payload.
type StatsSnapshot struct {
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	Searches int64 `json:"searches"`
	// SearchInFlight counts current worker-slot holders across all
	// search-class endpoints (search, detect, compare).
	SearchInFlight        int64   `json:"searchInFlight"`
	AvgSearchMS           float64 `json:"avgSearchMs"`
	MaxConcurrentSearches int     `json:"maxConcurrentSearches"`

	// Datasets counts currently registered datasets; the snapshot fields
	// accumulate catalog activity since boot (counts and total wall time),
	// making warm-restart performance observable over time.
	Datasets int `json:"datasets"`
	// MmapDatasets counts datasets served zero-copy off a file mapping;
	// MappedBytes totals their live mapping sizes (memory shared with the
	// page cache rather than held on the Go heap).
	MmapDatasets       int     `json:"mmapDatasets"`
	MappedBytes        int64   `json:"mappedBytes"`
	SnapshotLoads      int64   `json:"snapshotLoads"`
	SnapshotLoadMS     float64 `json:"snapshotLoadMs"`
	SnapshotLoadErrors int64   `json:"snapshotLoadErrors,omitempty"`
	SnapshotPersists   int64   `json:"snapshotPersists"`
	SnapshotPersistMS  float64 `json:"snapshotPersistMs"`

	// Mutation counters: applied batches and ops, rejected mutation
	// requests, and the average in-engine apply time.
	MutationBatches int64   `json:"mutationBatches"`
	MutationOps     int64   `json:"mutationOps"`
	MutationErrors  int64   `json:"mutationErrors,omitempty"`
	AvgMutationMS   float64 `json:"avgMutationMs"`

	// Canceled and TimedOut count search-class requests that ended early
	// because the client went away or the search timeout expired — both
	// freed their worker slot at that moment.
	Canceled int64 `json:"canceled"`
	TimedOut int64 `json:"timedOut"`
	// SearchTimeoutMS echoes the configured search deadline (0 = none).
	SearchTimeoutMS float64 `json:"searchTimeoutMs"`

	// Explore reports the exploration-session manager (the /api/v1
	// explore sub-resources): live sessions, cumulative creations, steps,
	// TTL evictions, and explicit closes.
	Explore api.ExploreStats `json:"explore"`

	// IndexWorkers is the worker-pool size every CPU-bound index
	// construction and the snapshot codec use (the -index.workers flag;
	// default GOMAXPROCS). IndexBuilds accumulates the per-index build wall
	// time paid in this process across all datasets and versions — a
	// monotone counter (mutation successors and deletions never subtract),
	// so the cold-build bill is observable next to the snapshot counters.
	IndexWorkers int              `json:"indexWorkers"`
	IndexBuilds  api.IndexTimings `json:"indexBuilds"`

	// Cache reports the serve-time result cache (hits, misses, coalesced,
	// negativeHits, shedded, occupancy); absent when caching is off.
	Cache *servecache.Stats `json:"cache,omitempty"`
	// Batcher reports the mutation batcher (submissions, batches,
	// opsPerBatch); absent when batching is off.
	Batcher *api.BatcherStats `json:"batcher,omitempty"`
	// Replication reports the replication role and its counters (feed
	// shipping on a primary, tail/apply on a replica); absent standalone.
	Replication *ReplInfo `json:"replication,omitempty"`
}

// New returns a server over the given engine. logf may be nil (silent). The
// search worker limit defaults to 2×GOMAXPROCS; tune it with SetSearchLimit
// before serving.
func New(exp *api.Explorer, logf func(string, ...any)) *Server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Server{
		exp:       exp,
		profiles:  make(map[string]map[int32]gen.Profile),
		logf:      logf,
		searchSem: make(chan struct{}, 2*runtime.GOMAXPROCS(0)),
		started:   time.Now(),
	}
}

// SetOpenMode selects how LoadSnapshots materializes catalog files: auto
// (the default — zero-copy mmap when the file and host are eligible, copy
// otherwise), mmap (require zero-copy, fail ineligible files), or copy
// (always heap-decode, the pre-v3 behavior). Set it before LoadSnapshots;
// already-loaded datasets keep the mode they were opened with.
func (s *Server) SetOpenMode(mode snapshot.OpenMode) {
	s.mu.Lock()
	s.openMode = mode
	s.mu.Unlock()
}

// OpenMode reports the configured catalog open mode (OpenAuto if unset).
func (s *Server) OpenMode() snapshot.OpenMode {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.openMode == "" {
		return snapshot.OpenAuto
	}
	return s.openMode
}

// SetSearchLimit caps concurrent search execution at n workers (n ≥ 1).
// The new limit governs requests that arrive after the call; requests
// already executing or already queued stay on the old semaphore and drain
// under the old limit (so best set it once at startup, as cmd/cexplorer's
// -search.limit does).
func (s *Server) SetSearchLimit(n int) {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	s.searchSem = make(chan struct{}, n)
	s.mu.Unlock()
}

// searchSemaphore reads the current semaphore under the lock so that
// SetSearchLimit is safe even while requests are in flight.
func (s *Server) searchSemaphore() chan struct{} {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.searchSem
}

// EnableCache installs the serve-time result cache: Search/Detect/Analyze
// become version-keyed cache lookups with singleflight coalescing, negative
// caching, and — when shedInflight > 0 — per-dataset admission control that
// sheds excess computations with a 429 instead of queueing them. entries
// and bytes bound the cache (≤ 0 take the servecache defaults). Call before
// serving.
func (s *Server) EnableCache(entries int, bytes int64, shedInflight int) {
	s.exp.SetCache(api.NewServeCache(entries, bytes, shedInflight))
}

// EnableBatcher turns on write-side mutation batching: concurrent
// submissions to one dataset coalesce into a single atomic Mutate batch
// (size and maxWait triggers), amortizing overlay materialization and
// CL-tree repair across callers. Call before serving.
func (s *Server) EnableBatcher(opts api.BatcherOptions) {
	s.mu.Lock()
	s.batcher = api.NewMutationBatcher(opts, s.applyMutations)
	s.mu.Unlock()
}

// mutationBatcher reads the configured batcher (nil = unbatched writes).
func (s *Server) mutationBatcher() *api.MutationBatcher {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.batcher
}

// SetSearchTimeout deadline-bounds every search-class request (search,
// detect, compare, explore): the budget covers both the wait for a worker
// slot and the computation itself, and an expired deadline cancels the
// kernel and answers 504. d ≤ 0 disables the bound (the default).
func (s *Server) SetSearchTimeout(d time.Duration) {
	s.searchTimeout.Store(int64(d))
}

// searchContext derives the context a search-class request runs under:
// the client connection's context, deadline-bounded when a search timeout
// is configured.
func (s *Server) searchContext(r *http.Request) (context.Context, context.CancelFunc) {
	if d := time.Duration(s.searchTimeout.Load()); d > 0 {
		return context.WithTimeout(r.Context(), d)
	}
	return r.Context(), func() {}
}

// Stats returns a snapshot of the serving counters.
func (s *Server) Stats() StatsSnapshot {
	snap := StatsSnapshot{
		Requests:              s.stats.requests.Load(),
		Errors:                s.stats.errors.Load(),
		Searches:              s.stats.searches.Load(),
		SearchInFlight:        s.stats.searchInFlight.Load(),
		MaxConcurrentSearches: cap(s.searchSemaphore()),
		Datasets:              len(s.exp.Datasets()),
		SnapshotLoads:         s.stats.snapshotLoads.Load(),
		SnapshotLoadMS:        float64(s.stats.snapshotLoadNanos.Load()) / 1e6,
		SnapshotLoadErrors:    s.stats.snapshotLoadErrors.Load(),
		SnapshotPersists:      s.stats.snapshotPersists.Load(),
		SnapshotPersistMS:     float64(s.stats.snapshotPersistNanos.Load()) / 1e6,
		Canceled:              s.stats.canceled.Load(),
		TimedOut:              s.stats.timedOut.Load(),
		SearchTimeoutMS:       float64(time.Duration(s.searchTimeout.Load())) / float64(time.Millisecond),
		Explore:               s.exp.ExploreStats(),
	}
	for _, name := range s.exp.Datasets() {
		if ds, ok := s.exp.Dataset(name); ok {
			if mb := ds.MappedBytes(); mb > 0 {
				snap.MmapDatasets++
				snap.MappedBytes += mb
			}
		}
	}
	if snap.Searches > 0 {
		snap.AvgSearchMS = float64(s.stats.searchNanos.Load()) / float64(snap.Searches) / 1e6
	}
	snap.IndexWorkers = par.Workers()
	snap.IndexBuilds = api.BuildTotals()
	if c := s.exp.Cache(); c != nil {
		cs := c.Stats()
		snap.Cache = &cs
	}
	if b := s.mutationBatcher(); b != nil {
		bs := b.Stats()
		snap.Batcher = &bs
	}
	snap.MutationBatches = s.stats.mutationBatches.Load()
	snap.MutationOps = s.stats.mutationOps.Load()
	snap.MutationErrors = s.stats.mutationErrors.Load()
	if snap.MutationBatches > 0 {
		snap.AvgMutationMS = float64(s.stats.mutationNanos.Load()) / float64(snap.MutationBatches) / 1e6
	}
	snap.Replication = s.replInfo()
	return snap
}

// Explorer returns the wrapped engine.
func (s *Server) Explorer() *api.Explorer { return s.exp }

// SetProfiles installs the profile store for a dataset (the "renowned
// researchers" records of §4).
func (s *Server) SetProfiles(dataset string, profiles map[int32]gen.Profile) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.profiles[dataset] = profiles
}

// Handler returns the root http.Handler (API + embedded UI).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", s.handleIndex)

	// Legacy flat routes: thin aliases over the same handler cores the v1
	// tree uses, kept so pre-v1 clients and the embedded UI work unchanged.
	mux.HandleFunc("POST /api/upload", s.handleUpload)
	mux.HandleFunc("GET /api/graphs", s.handleGraphs)
	mux.HandleFunc("GET /api/vertex", s.handleVertex)
	mux.HandleFunc("POST /api/search", s.handleSearch)
	mux.HandleFunc("POST /api/detect", s.handleDetect)
	mux.HandleFunc("POST /api/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /api/display", s.handleDisplay)
	mux.HandleFunc("POST /api/compare", s.handleCompare)
	mux.HandleFunc("GET /api/stats", s.handleStats)

	// The versioned, resource-oriented surface (see v1.go) and the
	// role-specific replication routes (see repl.go).
	s.registerV1(mux)
	s.registerRepl(mux)
	// The read-your-writes gate wraps the whole tree; it is a no-op on
	// every role but replica.
	return s.logging(s.minVersionGate(mux))
}

// ListenAndServe runs the server until the listener fails or Shutdown
// drains it (a drained shutdown returns nil, not http.ErrServerClosed).
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
	}
	s.mu.Lock()
	s.httpSrv = srv
	s.mu.Unlock()
	s.logf("C-Explorer listening on %s", addr)
	err := srv.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains the server gracefully within ctx's deadline: the tailer
// stops first (a replica un-claims its position cleanly instead of dying
// mid-apply), the feed's parked long-polls are released (replicas tailing us
// return within one round trip instead of waiting out their poll), and then
// the HTTP listener stops accepting and waits for in-flight requests.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	stop := s.tailerStop
	s.tailerStop = nil
	feed := s.replFeed
	srv := s.httpSrv
	s.mu.Unlock()
	if stop != nil {
		stop()
	}
	if feed != nil {
		feed.Drain()
	}
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}

func (s *Server) logging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.stats.requests.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			if rec := recover(); rec != nil {
				s.logf("panic serving %s %s: %v", r.Method, r.URL.Path, rec)
				s.stats.errors.Add(1)
				httpError(sw, http.StatusInternalServerError, "internal error")
				return
			}
			if sw.status >= 400 {
				s.stats.errors.Add(1)
			}
		}()
		next.ServeHTTP(sw, r)
		s.logf("%s %s %d %s", r.Method, r.URL.Path, sw.status, time.Since(start))
	})
}

// statusWriter records the response code for the stats counters.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// acquireSearchSlot blocks until a search worker slot is free or ctx is
// done (client gone, or past the search deadline while still queued); the
// returned release must be called when the work is done. It covers every
// search-class endpoint (search, detect, compare, explore), so a burst of
// heavy queries of any flavor is bounded by the same worker limit. On
// failure it returns the typed error for the envelope (ErrTimeout or
// ErrCanceled).
func (s *Server) acquireSearchSlot(ctx context.Context) (release func(), err error) {
	sem := s.searchSemaphore()
	select {
	case sem <- struct{}{}:
		// When a slot and the cancellation are both ready, select may pick
		// the slot: recheck so a disconnected client queued behind a slow
		// search does not burn a worker on a response nobody reads.
		if ctx.Err() != nil {
			<-sem
			return nil, slotErr(ctx)
		}
		// The in-flight gauge counts slot holders — search, detect, and
		// compare alike — so /api/stats reflects true worker saturation.
		s.stats.searchInFlight.Add(1)
		return func() {
			s.stats.searchInFlight.Add(-1)
			<-sem
		}, nil
	case <-ctx.Done():
		return nil, slotErr(ctx)
	}
}

func slotErr(ctx context.Context) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return fmt.Errorf("%w: while queued for a search slot", api.ErrTimeout)
	}
	return fmt.Errorf("%w: while queued for a search slot", api.ErrCanceled)
}

// writeError renders the shared error envelope (see http.go) for a typed
// error. Cancellations and timeouts also bump their stats counters here,
// the one funnel every search-class failure passes through.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, api.ErrCanceled):
		s.stats.canceled.Add(1)
	case errors.Is(err, api.ErrTimeout):
		s.stats.timedOut.Add(1)
	}
	writeEnvelope(w, errStatus(err), err.Error(), api.ErrorCode(err))
}

// --- request/response DTOs ---

type uploadRequest struct {
	Name  string          `json:"name"`
	Graph json.RawMessage `json:"graph"`
}

type searchRequest struct {
	Dataset   string   `json:"dataset"` // legacy routes only; v1 takes it from the path
	Algorithm string   `json:"algorithm"`
	Names     []string `json:"names,omitempty"` // author names (resolved server-side)
	Vertices  []int32  `json:"vertices,omitempty"`
	K         int      `json:"k"`
	Keywords  []string `json:"keywords,omitempty"`
	// Params carries algorithm-specific knobs (api.Query.Params): budget,
	// variant, maxResults. Unknown keys are rejected with invalid_query.
	Params map[string]string `json:"params,omitempty"`
	// Layout=true attaches a Placement per community.
	Layout bool `json:"layout,omitempty"`
	// Limit/Offset paginate the community list (v1 routes only).
	Limit  int `json:"limit,omitempty"`
	Offset int `json:"offset,omitempty"`
}

type searchResponse struct {
	Communities []communityDTO `json:"communities"`
	ElapsedMS   float64        `json:"elapsedMs"`
}

type communityDTO struct {
	api.Community
	Names     []string       `json:"names"`
	Placement *api.Placement `json:"placement,omitempty"`
}

type detectRequest struct {
	Dataset   string `json:"dataset"` // legacy routes only; v1 takes it from the path
	Algorithm string `json:"algorithm"`
	// MinSize filters out tiny detected communities from the response.
	MinSize int `json:"minSize,omitempty"`
	// Limit caps the number of returned communities (largest first). On the
	// v1 route it is the page size, combined with Offset.
	Limit int `json:"limit,omitempty"`
	// Offset is the v1 pagination offset into the largest-first order.
	Offset int `json:"offset,omitempty"`
}

type analyzeRequest struct {
	Dataset  string  `json:"dataset"`
	Vertices []int32 `json:"vertices"`
	Query    int32   `json:"query"`
	Method   string  `json:"method,omitempty"`
}

type displayRequest struct {
	Dataset  string  `json:"dataset"`
	Vertices []int32 `json:"vertices"`
	Width    float64 `json:"width,omitempty"`
	Height   float64 `json:"height,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
}

type compareRequest struct {
	Dataset    string   `json:"dataset"`
	Name       string   `json:"name,omitempty"`
	Vertex     int32    `json:"vertex,omitempty"`
	K          int      `json:"k"`
	Algorithms []string `json:"algorithms,omitempty"` // default: all CS + CODICIL
}

type compareRow struct {
	Method      string  `json:"method"`
	Communities int     `json:"communities"`
	AvgVertices float64 `json:"avgVertices"`
	AvgEdges    float64 `json:"avgEdges"`
	AvgDegree   float64 `json:"avgDegree"`
	CPJ         float64 `json:"cpj"`
	CMF         float64 `json:"cmf"`
	ElapsedMS   float64 `json:"elapsedMs"`
	Error       string  `json:"error,omitempty"`
}

// --- handlers ---

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	if s.fleetFence(w, r) || s.rejectReadOnly(w) {
		return
	}
	var req uploadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if req.Name == "" {
		httpError(w, http.StatusBadRequest, "missing dataset name")
		return
	}
	ds, err := s.exp.Upload(req.Name, bytesReader(req.Graph))
	if err != nil {
		httpError(w, http.StatusBadRequest, "upload: %v", err)
		return
	}
	if f := s.feed(); f != nil {
		// A re-upload replaces the lineage wholesale: fence every shipping
		// cursor so replicas re-bootstrap instead of applying the new
		// lineage's records onto the old graph.
		f.Reset(ds.Name)
	}
	st := ds.Graph.ComputeStats()
	resp := map[string]any{"name": ds.Name, "stats": st}
	// With a catalog configured, the upload persists before the response:
	// a 200 with persistedBytes means the dataset survives a restart. The
	// persist builds all indexes, so it also warms the dataset for queries.
	if s.DataDir() != "" {
		start := time.Now()
		n, perr := s.PersistDataset(ds)
		if perr != nil {
			// The dataset is still served from memory; surface the broken
			// durability loudly rather than failing the upload outright.
			s.logf("upload %s: persist failed: %v", ds.Name, perr)
			resp["persistError"] = perr.Error()
		} else {
			resp["persistedBytes"] = n
			resp["persistMs"] = float64(time.Since(start).Microseconds()) / 1000
		}
	}
	writeJSON(w, resp)
}

// graphInfo is the per-dataset record of /api/graphs and /api/v1/datasets.
type graphInfo struct {
	Name     string `json:"name"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	// Version counts the mutation batches absorbed by this dataset's
	// lineage (0 for a never-mutated dataset).
	Version uint64 `json:"version"`
	// Bytes is the in-memory graph footprint; Source, LoadMS, and
	// SnapshotBytes describe provenance (built in process vs loaded
	// from the catalog); Indexes reports which indexes are resident.
	Bytes         int64   `json:"bytes"`
	Source        string  `json:"source"`
	LoadMS        float64 `json:"loadMs,omitempty"`
	SnapshotBytes int64   `json:"snapshotBytes,omitempty"`
	// OpenMode reports how a snapshot-sourced dataset was materialized
	// ("copy" or "mmap"); MappedBytes and HeapBytes split Bytes into the
	// portion resident in the backing file mapping (shared with the page
	// cache) and the portion on the Go heap. Heap-built datasets report
	// everything under HeapBytes.
	OpenMode    string          `json:"openMode,omitempty"`
	MappedBytes int64           `json:"mappedBytes,omitempty"`
	HeapBytes   int64           `json:"heapBytes"`
	Indexes     api.IndexStatus `json:"indexes"`
	// IndexBuildMS is the wall time each resident index cost this dataset
	// version to build (zero when pre-seeded from a snapshot or carried
	// over from the predecessor version).
	IndexBuildMS api.IndexTimings `json:"indexBuildMs"`
	// CacheEntries/CacheBytes are this dataset's slice of the serve-time
	// result cache, across all its versions (zero when caching is off).
	CacheEntries int   `json:"cacheEntries,omitempty"`
	CacheBytes   int64 `json:"cacheBytes,omitempty"`
	// Replication is the node's replication position for this dataset
	// (appliedSeq, replicaLag, phase); absent on a standalone server.
	Replication *datasetRepl `json:"replication,omitempty"`
}

func (s *Server) datasetInfo(name string, ds *api.Dataset) graphInfo {
	borrowed := ds.Graph.BorrowedBytes()
	info := graphInfo{
		Name:          name,
		Vertices:      ds.Graph.N(),
		Edges:         ds.Graph.M(),
		Version:       ds.Version,
		Bytes:         ds.Graph.Bytes(),
		Source:        ds.Info.Source,
		LoadMS:        float64(ds.Info.LoadDuration.Microseconds()) / 1000,
		SnapshotBytes: ds.Info.SnapshotBytes,
		OpenMode:      ds.Info.OpenMode,
		MappedBytes:   ds.MappedBytes(),
		HeapBytes:     ds.Graph.Bytes() - borrowed,
		Indexes:       ds.Indexes(),
		IndexBuildMS:  ds.BuildTimings(),
	}
	if c := s.exp.Cache(); c != nil {
		cs := c.DatasetStats(name)
		info.CacheEntries = cs.Entries
		info.CacheBytes = cs.Bytes
	}
	info.Replication = s.datasetReplInfo(name, ds)
	return info
}

func (s *Server) datasetInfos() []graphInfo {
	var infos []graphInfo
	for _, name := range s.exp.Datasets() {
		ds, _ := s.exp.Dataset(name)
		infos = append(infos, s.datasetInfo(name, ds))
	}
	return infos
}

// handleGraphs is the legacy flat alias of GET /api/v1/datasets.
func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"graphs":       s.datasetInfos(),
		"csAlgorithms": s.exp.CSAlgorithms(),
		"cdAlgorithms": s.exp.CDAlgorithms(),
		"dataDir":      s.DataDir(),
	})
}

// vertexPayload builds the vertex-resource record shared by the legacy
// /api/vertex route and GET /api/v1/datasets/{name}/vertices/{id}.
func (s *Server) vertexPayload(dataset string, ds *api.Dataset, v int32) map[string]any {
	resp := map[string]any{
		"id":       v,
		"name":     ds.Graph.Name(v),
		"degree":   ds.Graph.Degree(v),
		"core":     ds.CoreNumbers()[v],
		"keywords": ds.Graph.KeywordStrings(v),
	}
	s.mu.RLock()
	if profs, ok := s.profiles[dataset]; ok {
		if p, ok := profs[v]; ok {
			resp["profile"] = p
		}
	}
	s.mu.RUnlock()
	return resp
}

// handleVertex is the legacy flat alias of the vertex resource (lookup by
// name only, as the original UI does).
func (s *Server) handleVertex(w http.ResponseWriter, r *http.Request) {
	dataset := r.URL.Query().Get("dataset")
	name := r.URL.Query().Get("name")
	ds, ok := s.exp.Dataset(dataset)
	if !ok {
		s.writeError(w, fmt.Errorf("%w: %q", api.ErrDatasetNotFound, dataset))
		return
	}
	v, ok := ds.Graph.VertexByName(name)
	if !ok {
		s.writeError(w, fmt.Errorf("%w: %q", api.ErrVertexNotFound, name))
		return
	}
	writeJSON(w, s.vertexPayload(dataset, ds, v))
}

func (s *Server) resolveQuery(ds *api.Dataset, names []string, vertices []int32) ([]int32, error) {
	out := append([]int32(nil), vertices...)
	for _, v := range out {
		if v < 0 || int(v) >= ds.Graph.N() {
			return nil, fmt.Errorf("%w: vertex %d out of range", api.ErrInvalidQuery, v)
		}
	}
	for _, n := range names {
		v, ok := ds.Graph.VertexByName(n)
		if !ok {
			return nil, fmt.Errorf("%w: %q", api.ErrVertexNotFound, n)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: no query vertex given", api.ErrInvalidQuery)
	}
	return out, nil
}

// handleSearch is the legacy flat alias: dataset comes from the body, no
// pagination. It delegates to the same execSearch core as POST
// /api/v1/datasets/{name}/search.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	comms, _, elapsed, err := s.execSearch(r, req.Dataset, req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, searchResponse{Communities: comms, ElapsedMS: msec(elapsed)})
}

// execSearch is the shared search core: resolve the query, wait for a
// worker slot under the request's (possibly deadline-bounded) context, run
// the algorithm, paginate, and build the community DTOs. Pagination
// happens BEFORE the DTO loop so per-community layout (the expensive part
// when Layout is set) is computed only for the page actually returned.
// Both the legacy route (no limit/offset in its requests — full list) and
// the v1 sub-resource funnel through here; total is the pre-pagination
// community count.
func (s *Server) execSearch(r *http.Request, dataset string, req searchRequest) ([]communityDTO, int, time.Duration, error) {
	ctx, cancel := s.searchContext(r)
	defer cancel()
	ds, ok := s.exp.Dataset(dataset)
	if !ok {
		return nil, 0, 0, fmt.Errorf("%w: %q", api.ErrDatasetNotFound, dataset)
	}
	qv, err := s.resolveQuery(ds, req.Names, req.Vertices)
	if err != nil {
		return nil, 0, 0, err
	}
	if req.Algorithm == "" {
		req.Algorithm = "ACQ"
	}
	comms, elapsed, err := s.runSearch(ctx, dataset, req, qv)
	if err != nil {
		return nil, 0, 0, err
	}
	page, total := pageOf(comms, req.Limit, req.Offset)
	out := make([]communityDTO, 0, len(page))
	for _, c := range page {
		dto := communityDTO{Community: c, Names: vertexNames(ds, c.Vertices)}
		if req.Layout {
			pl, err := s.exp.Display(ctx, dataset, c, layout.Options{Seed: 1})
			if err == nil {
				dto.Placement = pl
			}
		}
		out = append(out, dto)
	}
	return out, total, elapsed, nil
}

// handleDetect is the legacy flat alias; it delegates to the execDetect
// core (legacy Limit semantics: cap after the largest-first sort).
func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	var req detectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	comms, elapsed, err := s.execDetect(r, req.Dataset, req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if req.Limit > 0 && len(comms) > req.Limit {
		comms = comms[:req.Limit]
	}
	writeJSON(w, map[string]any{
		"communities": comms,
		"elapsedMs":   msec(elapsed),
	})
}

// execDetect is the shared detection core: run the CD algorithm under the
// request context, filter by MinSize, and sort largest-first. Pagination or
// the legacy Limit cap is applied by the caller.
func (s *Server) execDetect(r *http.Request, dataset string, req detectRequest) ([]api.Community, time.Duration, error) {
	ctx, cancel := s.searchContext(r)
	defer cancel()
	if req.Algorithm == "" {
		req.Algorithm = "CODICIL"
	}
	release, err := s.acquireSearchSlot(ctx)
	if err != nil {
		return nil, 0, err
	}
	defer release()
	start := time.Now()
	comms, err := s.exp.Detect(ctx, dataset, req.Algorithm)
	if err != nil {
		return nil, 0, err
	}
	// Detect may hand back the slice shared with the result cache and with
	// concurrent requests; the filter and sort below mutate in place, so
	// work on a private copy.
	comms = slices.Clone(comms)
	if req.MinSize > 0 {
		filtered := comms[:0]
		for _, c := range comms {
			if len(c.Vertices) >= req.MinSize {
				filtered = append(filtered, c)
			}
		}
		comms = filtered
	}
	slices.SortFunc(comms, func(a, b api.Community) int { return len(b.Vertices) - len(a.Vertices) })
	return comms, time.Since(start), nil
}

// handleAnalyze is the legacy flat alias over the analyze core.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req analyzeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	s.execAnalyze(w, r, req.Dataset, req)
}

func (s *Server) execAnalyze(w http.ResponseWriter, r *http.Request, dataset string, req analyzeRequest) {
	a, err := s.exp.Analyze(r.Context(), dataset, api.Community{Method: req.Method, Vertices: req.Vertices}, req.Query)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, a)
}

// handleDisplay is the legacy flat alias over the display core.
func (s *Server) handleDisplay(w http.ResponseWriter, r *http.Request) {
	var req displayRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	s.execDisplay(w, r, req.Dataset, req)
}

func (s *Server) execDisplay(w http.ResponseWriter, r *http.Request, dataset string, req displayRequest) {
	pl, err := s.exp.Display(r.Context(), dataset, api.Community{Vertices: req.Vertices}, layout.Options{
		Width: req.Width, Height: req.Height, Seed: req.Seed,
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, pl)
}

// runSearch executes the bounded, instrumented part of the search core. The
// worker slot and in-flight gauge are released by defer so that a panicking
// search (recovered by the logging middleware) cannot leak a slot and wedge
// the search path — and a canceled or timed-out search frees its slot the
// moment the kernel observes ctx and returns.
func (s *Server) runSearch(ctx context.Context, dataset string, req searchRequest, qv []int32) (comms []api.Community, elapsed time.Duration, err error) {
	release, err := s.acquireSearchSlot(ctx)
	if err != nil {
		return nil, 0, err
	}
	defer release()
	start := time.Now()
	comms, err = s.exp.Search(ctx, dataset, req.Algorithm, api.Query{
		Vertices: qv, K: req.K, Keywords: req.Keywords, Params: req.Params,
	})
	elapsed = time.Since(start)
	s.stats.searchNanos.Add(elapsed.Nanoseconds())
	s.stats.searches.Add(1)
	return comms, elapsed, err
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

// handleCompare is the legacy flat alias over the compare core, which
// renders the Figure 6(a) experience as one API call: run several
// algorithms for the same query and report statistics + CPJ/CMF.
func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	var req compareRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	s.execCompare(w, r, req.Dataset, req)
}

func (s *Server) execCompare(w http.ResponseWriter, r *http.Request, dataset string, req compareRequest) {
	ctx, cancel := s.searchContext(r)
	defer cancel()
	ds, ok := s.exp.Dataset(dataset)
	if !ok {
		s.writeError(w, fmt.Errorf("%w: %q", api.ErrDatasetNotFound, dataset))
		return
	}
	var q int32
	if req.Name != "" {
		v, ok := ds.Graph.VertexByName(req.Name)
		if !ok {
			s.writeError(w, fmt.Errorf("%w: %q", api.ErrVertexNotFound, req.Name))
			return
		}
		q = v
	} else {
		q = req.Vertex
	}
	if q < 0 || int(q) >= ds.Graph.N() {
		s.writeError(w, fmt.Errorf("%w: vertex %d out of range", api.ErrInvalidQuery, q))
		return
	}
	algos := req.Algorithms
	if len(algos) == 0 {
		algos = []string{"Global", "Local", "CODICIL", "ACQ"}
	}
	// One worker slot covers the whole comparison: the rows run serially,
	// so a compare request is one unit of heavy work like a search.
	release, err := s.acquireSearchSlot(ctx)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer release()
	rows := make([]compareRow, 0, len(algos))
	for _, name := range algos {
		rows = append(rows, s.compareOne(ctx, dataset, ds, name, q, req.K))
	}
	writeJSON(w, map[string]any{"query": q, "rows": rows})
}

func (s *Server) compareOne(ctx context.Context, dataset string, ds *api.Dataset, algo string, q int32, k int) compareRow {
	row := compareRow{Method: algo}
	start := time.Now()
	var comms []api.Community
	var err error
	isCD := false
	for _, cd := range s.exp.CDAlgorithms() {
		if cd == algo {
			isCD = true
		}
	}
	if isCD {
		var all []api.Community
		all, err = s.exp.Detect(ctx, dataset, algo)
		if err == nil {
			for _, c := range all {
				for _, v := range c.Vertices {
					if v == q {
						comms = append(comms, c)
						break
					}
				}
			}
		}
	} else {
		comms, err = s.exp.Search(ctx, dataset, algo, api.Query{Vertices: []int32{q}, K: k})
	}
	row.ElapsedMS = msec(time.Since(start))
	if err != nil {
		row.Error = err.Error()
		return row
	}
	stats := make([]metricsRow, 0, len(comms))
	for _, c := range comms {
		a, aerr := s.exp.Analyze(ctx, dataset, c, q)
		if aerr != nil {
			continue
		}
		stats = append(stats, metricsRow{a: a})
	}
	row.Communities = len(stats)
	if len(stats) == 0 {
		return row
	}
	for _, st := range stats {
		row.AvgVertices += float64(st.a.Stats.Vertices)
		row.AvgEdges += float64(st.a.Stats.Edges)
		row.AvgDegree += st.a.Stats.AvgDegree
		row.CPJ += st.a.CPJ
		row.CMF += st.a.CMF
	}
	n := float64(len(stats))
	row.AvgVertices /= n
	row.AvgEdges /= n
	row.AvgDegree /= n
	row.CPJ /= n
	row.CMF /= n
	return row
}

type metricsRow struct{ a *api.Analysis }

func vertexNames(ds *api.Dataset, vs []int32) []string {
	names := make([]string, len(vs))
	for i, v := range vs {
		names[i] = ds.Graph.Name(v)
	}
	return names
}
