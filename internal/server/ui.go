package server

import (
	"bytes"
	"io"
	"net/http"
)

func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		httpError(w, http.StatusNotFound, "not found")
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = io.WriteString(w, indexHTML)
}

// indexHTML is the embedded single-page UI: the Exploration and Analysis
// panels of Figures 1 and 6, rendered with a plain canvas. It speaks the
// JSON API only — everything it does can be scripted the same way.
const indexHTML = `<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>C-Explorer: Browsing Communities in Large Graphs</title>
<style>
body { font-family: sans-serif; margin: 0; display: flex; height: 100vh; }
#left { width: 300px; padding: 16px; border-right: 1px solid #ccc; overflow-y: auto; }
#right { flex: 1; padding: 16px; overflow-y: auto; }
h1 { font-size: 18px; } h2 { font-size: 15px; }
label { display: block; margin-top: 10px; font-weight: bold; font-size: 13px; }
input, select { width: 95%; padding: 4px; margin-top: 2px; }
button { margin-top: 12px; padding: 6px 18px; }
canvas { border: 1px solid #ddd; margin-top: 8px; }
table { border-collapse: collapse; margin-top: 10px; font-size: 13px; }
td, th { border: 1px solid #bbb; padding: 4px 10px; }
.tabs button { margin-right: 6px; }
#theme { color: #555; font-size: 13px; margin-top: 6px; }
.err { color: #b00; }
</style>
</head>
<body>
<div id="left">
  <h1>C-Explorer</h1>
  <div class="tabs">
    <button onclick="mode='explore';render()">Exploration</button>
    <button onclick="mode='analyze';render()">Analysis</button>
  </div>
  <label>Graph</label><select id="graph"></select>
  <label>Name</label><input id="name" value="jim gray">
  <label>Structure: degree &ge;</label><input id="k" type="number" value="4" min="0">
  <label>Keywords (space-separated, optional)</label><input id="keywords">
  <label>Algorithm</label><select id="algo"></select>
  <button onclick="go()">Search</button>
  <div id="status"></div>
</div>
<div id="right">
  <h2 id="title">Communities</h2>
  <div id="theme"></div>
  <div id="tabsC" class="tabs"></div>
  <canvas id="cv" width="820" height="560"></canvas>
  <div id="tableWrap"></div>
</div>
<script>
let mode = 'explore';
let communities = [], current = 0;

async function init() {
  const res = await fetch('/api/graphs');
  const data = await res.json();
  const gsel = document.getElementById('graph');
  (data.graphs||[]).forEach(g => {
    const o = document.createElement('option');
    o.value = g.name; o.textContent = g.name + ' (' + g.vertices + 'v/' + g.edges + 'e)';
    gsel.appendChild(o);
  });
  const asel = document.getElementById('algo');
  (data.csAlgorithms||[]).forEach(a => {
    const o = document.createElement('option');
    o.value = a; o.textContent = a;
    if (a === 'ACQ') o.selected = true;
    asel.appendChild(o);
  });
}

function render() {
  document.getElementById('title').textContent = mode === 'explore' ? 'Communities' : 'Comparison Analysis';
}

async function go() {
  const status = document.getElementById('status');
  status.textContent = 'running...'; status.className = '';
  try {
    if (mode === 'explore') await search(); else await compare();
    status.textContent = 'done';
  } catch (e) { status.textContent = e; status.className = 'err'; }
}

async function search() {
  const body = {
    dataset: document.getElementById('graph').value,
    algorithm: document.getElementById('algo').value,
    names: [document.getElementById('name').value],
    k: parseInt(document.getElementById('k').value),
    keywords: document.getElementById('keywords').value.split(/\s+/).filter(x=>x),
    layout: true
  };
  const res = await fetch('/api/search', {method:'POST', body: JSON.stringify(body)});
  const data = await res.json();
  if (data.error) throw data.error;
  communities = data.communities || [];
  const tabs = document.getElementById('tabsC');
  tabs.innerHTML = 'Communities: ';
  communities.forEach((c, i) => {
    const b = document.createElement('button');
    b.textContent = (i+1);
    b.onclick = () => draw(i);
    tabs.appendChild(b);
  });
  document.getElementById('tableWrap').innerHTML = '';
  if (communities.length) draw(0); else {
    document.getElementById('theme').textContent = 'no community found';
    const ctx = document.getElementById('cv').getContext('2d');
    ctx.clearRect(0,0,820,560);
  }
}

function draw(i) {
  current = i;
  const c = communities[i];
  document.getElementById('theme').textContent =
    'Theme: ' + (c.theme||[]).join(', ') +
    (c.sharedKeywords && c.sharedKeywords.length ? ' | Shared: ' + c.sharedKeywords.join(', ') : '');
  const cv = document.getElementById('cv'), ctx = cv.getContext('2d');
  ctx.clearRect(0,0,cv.width,cv.height);
  const pl = c.placement; if (!pl) return;
  const sx = cv.width/820, sy = cv.height/620;
  ctx.strokeStyle = '#999';
  (pl.edges||[]).forEach(e => {
    ctx.beginPath();
    ctx.moveTo(pl.points[e[0]].x*sx, pl.points[e[0]].y*sy);
    ctx.lineTo(pl.points[e[1]].x*sx, pl.points[e[1]].y*sy);
    ctx.stroke();
  });
  (pl.points||[]).forEach((p, j) => {
    ctx.fillStyle = '#4a7';
    ctx.beginPath(); ctx.arc(p.x*sx, p.y*sy, 6, 0, 7); ctx.fill();
    ctx.fillStyle = '#000';
    ctx.fillText(pl.names[j]||('v'+pl.vertices[j]), p.x*sx+8, p.y*sy+3);
  });
}

async function compare() {
  const body = {
    dataset: document.getElementById('graph').value,
    name: document.getElementById('name').value,
    k: parseInt(document.getElementById('k').value)
  };
  const res = await fetch('/api/compare', {method:'POST', body: JSON.stringify(body)});
  const data = await res.json();
  if (data.error) throw data.error;
  let html = '<table><tr><th>Method</th><th>Communities</th><th>Vertices</th><th>Edges</th><th>Degree</th><th>CPJ</th><th>CMF</th><th>ms</th></tr>';
  (data.rows||[]).forEach(r => {
    html += '<tr><td>'+r.method+'</td><td>'+r.communities+'</td><td>'+r.avgVertices.toFixed(1)+
      '</td><td>'+r.avgEdges.toFixed(1)+'</td><td>'+r.avgDegree.toFixed(1)+
      '</td><td>'+r.cpj.toFixed(3)+'</td><td>'+r.cmf.toFixed(3)+'</td><td>'+r.elapsedMs.toFixed(1)+'</td></tr>';
  });
  html += '</table>';
  document.getElementById('tableWrap').innerHTML = html;
  document.getElementById('theme').textContent = '';
  document.getElementById('tabsC').innerHTML = '';
}

init(); render();
</script>
</body>
</html>
`
