package server

import (
	"errors"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"cexplorer/internal/api"
	"cexplorer/internal/gen"
	"cexplorer/internal/snapshot"
)

// TestMmapCatalogBoot boots a server over a catalog in strict mmap mode and
// checks the whole observable surface: zero-copy datasets serve searches,
// /api/graphs breaks the footprint into mapped vs heap bytes, /api/stats
// aggregates the mappings, and a mutation detaches the lineage onto the
// heap (the successor no longer reports a mapping).
func TestMmapCatalogBoot(t *testing.T) {
	dir := t.TempDir()
	ds := api.NewDataset("persisted", gen.Figure5())
	if _, err := ds.WriteSnapshotFile(filepath.Join(dir, "persisted"+snapshot.FileExt)); err != nil {
		t.Fatalf("write snapshot: %v", err)
	}
	if _, _, err := snapshot.OpenFile(filepath.Join(dir, "persisted"+snapshot.FileExt), snapshot.OpenMmap); err != nil {
		if !errors.Is(err, snapshot.ErrNotZeroCopy) {
			t.Skipf("mmap unavailable: %v", err)
		}
		t.Fatalf("strict open of fresh v3 file: %v", err)
	}

	s := New(api.NewExplorer(), nil)
	s.SetOpenMode(snapshot.OpenMmap)
	if err := s.SetDataDir(dir); err != nil {
		t.Fatalf("set data dir: %v", err)
	}
	if n, err := s.LoadSnapshots(); err != nil || n != 1 {
		t.Fatalf("load snapshots: n=%d err=%v", n, err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	searchFig5(t, ts.URL) // zero-copy dataset answers the worked example

	var graphs struct {
		Graphs []graphInfo `json:"graphs"`
	}
	doJSON(t, "GET", ts.URL+"/api/graphs", nil, &graphs)
	if len(graphs.Graphs) != 1 {
		t.Fatalf("got %d graphs", len(graphs.Graphs))
	}
	gi := graphs.Graphs[0]
	if gi.OpenMode != "mmap" || gi.MappedBytes <= 0 {
		t.Fatalf("graph info: openMode=%q mappedBytes=%d", gi.OpenMode, gi.MappedBytes)
	}
	if gi.HeapBytes < 0 || gi.HeapBytes >= gi.Bytes {
		t.Fatalf("heap/total split: heap=%d total=%d", gi.HeapBytes, gi.Bytes)
	}

	if st := s.Stats(); st.MmapDatasets != 1 || st.MappedBytes != gi.MappedBytes {
		t.Fatalf("stats: mmapDatasets=%d mappedBytes=%d, want 1/%d", st.MmapDatasets, st.MappedBytes, gi.MappedBytes)
	}

	// One mutation: the successor is heap-owned and says so.
	var resp mutationResponse
	r := doJSON(t, "POST", ts.URL+"/api/v1/datasets/persisted/mutations",
		map[string]any{"op": "addEdge", "u": 0, "v": 9}, &resp)
	if r.StatusCode != 200 || resp.Applied != 1 {
		t.Fatalf("mutation: status %d %+v", r.StatusCode, resp)
	}
	graphs.Graphs = nil // fresh decode: omitted fields must read as zero
	doJSON(t, "GET", ts.URL+"/api/graphs", nil, &graphs)
	gi = graphs.Graphs[0]
	if gi.OpenMode == "mmap" || gi.MappedBytes != 0 {
		t.Fatalf("mutation successor still reports a mapping: %+v", gi)
	}
	if st := s.Stats(); st.MmapDatasets != 0 || st.MappedBytes != 0 {
		t.Fatalf("stats after mutation: mmapDatasets=%d mappedBytes=%d", st.MmapDatasets, st.MappedBytes)
	}
	searchFig5(t, ts.URL) // and it still answers
}

// TestCopyCatalogBoot pins the fallback: -open.mode=copy serves the same
// catalog entirely off the heap.
func TestCopyCatalogBoot(t *testing.T) {
	dir := t.TempDir()
	ds := api.NewDataset("persisted", gen.Figure5())
	if _, err := ds.WriteSnapshotFile(filepath.Join(dir, "persisted"+snapshot.FileExt)); err != nil {
		t.Fatalf("write snapshot: %v", err)
	}
	s := New(api.NewExplorer(), nil)
	s.SetOpenMode(snapshot.OpenCopy)
	if err := s.SetDataDir(dir); err != nil {
		t.Fatalf("set data dir: %v", err)
	}
	if n, err := s.LoadSnapshots(); err != nil || n != 1 {
		t.Fatalf("load snapshots: n=%d err=%v", n, err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var graphs struct {
		Graphs []graphInfo `json:"graphs"`
	}
	doJSON(t, "GET", ts.URL+"/api/graphs", nil, &graphs)
	if len(graphs.Graphs) != 1 {
		t.Fatalf("got %d graphs", len(graphs.Graphs))
	}
	gi := graphs.Graphs[0]
	if gi.OpenMode != "copy" || gi.MappedBytes != 0 || gi.HeapBytes != gi.Bytes {
		t.Fatalf("copy-mode graph info: %+v", gi)
	}
	if st := s.Stats(); st.MmapDatasets != 0 || st.MappedBytes != 0 {
		t.Fatalf("copy-mode stats: %+v", st)
	}
	searchFig5(t, ts.URL)
}
