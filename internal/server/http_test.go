package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"slices"
	"testing"

	"cexplorer/internal/api"
)

// The consolidated HTTP plumbing (http.go) is the single funnel both route
// families share; these tables pin its behavior.

func TestPageOf(t *testing.T) {
	list := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	cases := []struct {
		name          string
		limit, offset int
		want          []int
	}{
		{"all", 0, 0, list},
		{"first page", 3, 0, []int{0, 1, 2}},
		{"middle page", 3, 3, []int{3, 4, 5}},
		{"ragged last page", 4, 8, []int{8, 9}},
		{"offset past end", 5, 99, []int{}},
		{"offset at end", 5, 10, []int{}},
		{"negative offset", 2, -7, []int{0, 1}},
		{"negative limit means all", -1, 4, []int{4, 5, 6, 7, 8, 9}},
		{"limit beyond length", 100, 0, list},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			page, total := pageOf(list, tc.limit, tc.offset)
			if total != len(list) {
				t.Fatalf("total = %d, want %d", total, len(list))
			}
			if !slices.Equal(page, tc.want) {
				t.Fatalf("page = %v, want %v", page, tc.want)
			}
		})
	}
	// Empty input never faults.
	if page, total := pageOf([]int(nil), 5, 5); total != 0 || len(page) != 0 {
		t.Fatalf("nil list: page=%v total=%d", page, total)
	}
}

func TestErrStatusMapping(t *testing.T) {
	cases := []struct {
		err    error
		status int
		code   string
	}{
		{api.ErrDatasetNotFound, 404, "dataset_not_found"},
		{api.ErrVertexNotFound, 404, "vertex_not_found"},
		{api.ErrSessionNotFound, 404, "session_not_found"},
		{api.ErrUnknownAlgorithm, 400, "unknown_algorithm"},
		{api.ErrInvalidQuery, 400, "invalid_query"},
		{api.ErrInvalidMutation, 400, "invalid_mutation"},
		{api.ErrMutationConflict, 409, "mutation_conflict"},
		{api.ErrCanceled, StatusClientClosedRequest, "canceled"},
		{api.ErrTimeout, 504, "timeout"},
		{errors.New("mystery"), 500, "internal"},
		{fmt.Errorf("wrapped: %w", api.ErrMutationConflict), 409, "mutation_conflict"},
	}
	for _, tc := range cases {
		t.Run(tc.code, func(t *testing.T) {
			if got := errStatus(tc.err); got != tc.status {
				t.Errorf("errStatus(%v) = %d, want %d", tc.err, got, tc.status)
			}
			if got := api.ErrorCode(tc.err); got != tc.code {
				t.Errorf("ErrorCode(%v) = %q, want %q", tc.err, got, tc.code)
			}
		})
	}
}

func TestHTTPErrorEnvelope(t *testing.T) {
	cases := []struct {
		status int
		code   string
	}{
		{http.StatusBadRequest, "bad_request"},
		{http.StatusNotFound, "not_found"},
		{http.StatusServiceUnavailable, "unavailable"},
		{http.StatusInternalServerError, "internal"},
		{http.StatusTeapot, "internal"}, // anything unmapped stays internal
	}
	for _, tc := range cases {
		t.Run(tc.code, func(t *testing.T) {
			rec := httptest.NewRecorder()
			httpError(rec, tc.status, "boom %d", tc.status)
			if rec.Code != tc.status {
				t.Fatalf("status = %d, want %d", rec.Code, tc.status)
			}
			if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
				t.Fatalf("content type %q", ct)
			}
			var env envelope
			if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
				t.Fatal(err)
			}
			if env.Code != tc.code || env.Error != fmt.Sprintf("boom %d", tc.status) {
				t.Fatalf("envelope = %+v", env)
			}
		})
	}
}
