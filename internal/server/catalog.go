package server

import (
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"cexplorer/internal/api"
	"cexplorer/internal/snapshot"
)

// The disk-backed catalog: when a data directory is configured (the
// -data.dir flag), every dataset the server accepts is persisted as one
// snapshot file (atomically, via temp-file + rename) and every snapshot in
// the directory is loaded at boot with its indexes pre-seeded — so a
// restarted server serves searches on its old datasets immediately, without
// re-upload and without rebuilding a single index.
//
// Layout: <dataDir>/<escaped-dataset-name>.cxsnap, one file per dataset.
// The dataset name is also embedded in the file; the filename is just a
// stable, filesystem-safe handle derived from it.

// SetDataDir configures the catalog directory, creating it if needed. Call
// once at startup, before LoadSnapshots and before serving.
func (s *Server) SetDataDir(dir string) error {
	if dir == "" {
		return fmt.Errorf("data dir: empty path")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("data dir: %w", err)
	}
	s.mu.Lock()
	s.dataDir = dir
	s.mu.Unlock()
	return nil
}

// DataDir returns the configured catalog directory ("" when persistence is
// disabled).
func (s *Server) DataDir() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dataDir
}

// snapshotPath maps a dataset name to its catalog file.
func snapshotPath(dir, name string) string {
	return filepath.Join(dir, url.PathEscape(name)+snapshot.FileExt)
}

// LoadSnapshots opens every snapshot in the data directory and registers
// the datasets, returning how many loaded. Individual corrupt files are
// skipped (logged, counted as errors in /api/stats) rather than failing the
// boot: one damaged dataset must not take down the rest of the catalog.
func (s *Server) LoadSnapshots() (int, error) {
	dir := s.DataDir()
	if dir == "" {
		return 0, fmt.Errorf("load snapshots: no data dir configured")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("load snapshots: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), snapshot.FileExt) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	mode := s.OpenMode()
	loaded := 0
	for _, fname := range names {
		path := filepath.Join(dir, fname)
		start := time.Now()
		ds, err := api.OpenSnapshotFileMode("", path, mode)
		if err != nil {
			s.logf("catalog: skipping %s: %v", path, err)
			s.stats.snapshotLoadErrors.Add(1)
			continue
		}
		if err := s.exp.AddDataset(ds); err != nil {
			s.logf("catalog: skipping %s: %v", path, err)
			s.stats.snapshotLoadErrors.Add(1)
			continue
		}
		elapsed := time.Since(start)
		s.stats.snapshotLoads.Add(1)
		s.stats.snapshotLoadNanos.Add(elapsed.Nanoseconds())
		s.logf("catalog: %s ready from %s in %s (%d vertices, %d edges, %d bytes, %s)",
			ds.Name, fname, elapsed.Round(time.Millisecond),
			ds.Graph.N(), ds.Graph.M(), ds.Info.SnapshotBytes, ds.Info.OpenMode)
		// Replay the mutation journal's tail: batches acknowledged after
		// the snapshot was last written, so a warm restart resumes at the
		// exact version the previous process served.
		if n, err := s.replayJournal(ds.Name, ds.Version); err != nil {
			s.logf("catalog: %s: journal replay stopped after %d ops: %v", ds.Name, n, err)
			s.stats.snapshotLoadErrors.Add(1)
		} else if n > 0 {
			cur, _ := s.exp.Dataset(ds.Name)
			s.logf("catalog: %s replayed %d journaled ops (now version %d)", ds.Name, n, cur.Version)
		}
		loaded++
	}
	return loaded, nil
}

// PersistDataset writes the dataset's snapshot into the catalog (building
// any missing indexes first) and returns the encoded size. It is a no-op
// returning (0, nil) when no data dir is configured.
func (s *Server) PersistDataset(ds *api.Dataset) (int64, error) {
	s.journalMu.Lock()
	defer s.journalMu.Unlock()
	return s.persistDatasetLocked(ds, false)
}

// persistDatasetLocked is PersistDataset under an already-held journalMu
// (the compaction path holds it across the append that triggered it).
// residentOnly skips forced index builds — compaction runs on the mutation
// request path and must not pay a from-scratch truss decomposition there.
func (s *Server) persistDatasetLocked(ds *api.Dataset, residentOnly bool) (int64, error) {
	dir := s.DataDir()
	if dir == "" {
		return 0, nil
	}
	start := time.Now()
	var (
		n   int64
		err error
	)
	if residentOnly {
		n, err = ds.WriteResidentSnapshotFile(snapshotPath(dir, ds.Name))
	} else {
		n, err = ds.WriteSnapshotFile(snapshotPath(dir, ds.Name))
	}
	if err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	s.stats.snapshotPersists.Add(1)
	s.stats.snapshotPersistNanos.Add(elapsed.Nanoseconds())
	// A full persist supersedes every journaled batch (the snapshot now
	// embeds the dataset's version); drop the journal so a restart does not
	// replay stale records onto a newer — or, after a re-upload, entirely
	// different — base.
	s.resetJournalLocked(ds.Name)
	s.logf("catalog: persisted %s (%d bytes) in %s", ds.Name, n, elapsed.Round(time.Millisecond))
	return n, nil
}

// HasSnapshot reports whether the catalog already holds a snapshot for the
// dataset name (used at boot to decide whether built-ins need generating).
func (s *Server) HasSnapshot(name string) bool {
	dir := s.DataDir()
	if dir == "" {
		return false
	}
	_, err := os.Stat(snapshotPath(dir, name))
	return err == nil
}
