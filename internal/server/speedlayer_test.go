package server

// Contract tests for the serve-time speed layer: the version-keyed result
// cache behind the search routes, the overload envelope, and the batched
// mutation route. Named TestV1* so the CI API-contract gate runs them.

import (
	"context"
	"net/http"
	"slices"
	"sync"
	"testing"
	"time"

	"cexplorer/internal/api"
	"cexplorer/internal/servecache"
)

// statsOut decodes the speed-layer slice of /api/stats.
type statsOut struct {
	Cache   *servecache.Stats `json:"cache"`
	Batcher *api.BatcherStats `json:"batcher"`
}

func TestV1CacheServesRepeatsAndSurfacesStats(t *testing.T) {
	s, ts := testServer(t)
	s.EnableCache(128, 1<<20, 0)
	body := map[string]any{"algorithm": "ACQ", "names": []string{"A"}, "k": 2, "keywords": []string{"w", "x", "y"}}
	var first, second v1SearchOut
	doJSON(t, "POST", ts.URL+"/api/v1/datasets/fig5/search", body, &first)
	doJSON(t, "POST", ts.URL+"/api/v1/datasets/fig5/search", body, &second)
	if len(first.Communities) == 0 || len(first.Communities) != len(second.Communities) {
		t.Fatalf("cached answer differs: %+v vs %+v", first, second)
	}
	var st statsOut
	doJSON(t, "GET", ts.URL+"/api/stats", nil, &st)
	if st.Cache == nil {
		t.Fatal("stats carry no cache block")
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 || st.Cache.Computations != 1 {
		t.Fatalf("cache stats = %+v", st.Cache)
	}
	if st.Cache.Entries == 0 || st.Cache.Bytes == 0 {
		t.Fatalf("cache occupancy not surfaced: %+v", st.Cache)
	}
	// Per-dataset occupancy on the dataset resource.
	var info graphInfo
	doJSON(t, "GET", ts.URL+"/api/v1/datasets/fig5", nil, &info)
	if info.CacheEntries != 1 || info.CacheBytes == 0 {
		t.Fatalf("dataset cache occupancy = %+v", info)
	}
	// A deterministic failure from inside the kernel (an unknown param key,
	// rejected by the algorithm itself) is negatively cached. Handler-level
	// rejections (missing vertices, bad names) never reach the cache.
	bad := map[string]any{"algorithm": "ACQ", "names": []string{"A"}, "k": 2,
		"params": map[string]string{"bogus": "1"}}
	wantEnvelope(t, "POST", ts.URL+"/api/v1/datasets/fig5/search", bad, 400, "invalid_query")
	wantEnvelope(t, "POST", ts.URL+"/api/v1/datasets/fig5/search", bad, 400, "invalid_query")
	doJSON(t, "GET", ts.URL+"/api/stats", nil, &st)
	if st.Cache.NegativeHits != 1 {
		t.Fatalf("negative hit not recorded: %+v", st.Cache)
	}
}

// TestV1DetectMinSizeDoesNotCorruptCache: execDetect filters and sorts the
// detection result in place, and with the cache enabled Detect hands every
// caller the slice the cache itself holds — so a minSize-filtered request
// must work on a private copy, or it permanently clobbers the entry later
// unfiltered requests are served from.
func TestV1DetectMinSizeDoesNotCorruptCache(t *testing.T) {
	s, ts := testServer(t)
	s.EnableCache(128, 1<<20, 0)
	type detOut struct {
		Communities []struct {
			Vertices []int32 `json:"vertices"`
		} `json:"communities"`
		Total int `json:"total"`
	}
	var full detOut
	doJSON(t, "POST", ts.URL+"/api/v1/datasets/fig5/detect",
		map[string]any{"algorithm": "CODICIL"}, &full)
	if full.Total < 2 {
		t.Fatalf("fixture too small to exercise filtering: %+v", full)
	}
	// Largest-first order: minSize = |largest| drops every smaller community.
	var filtered detOut
	doJSON(t, "POST", ts.URL+"/api/v1/datasets/fig5/detect",
		map[string]any{"algorithm": "CODICIL", "minSize": len(full.Communities[0].Vertices)}, &filtered)
	if filtered.Total >= full.Total {
		t.Fatalf("minSize filtered nothing (total %d vs %d); fixture no longer exercises the filter", filtered.Total, full.Total)
	}
	var again detOut
	doJSON(t, "POST", ts.URL+"/api/v1/datasets/fig5/detect",
		map[string]any{"algorithm": "CODICIL"}, &again)
	if again.Total != full.Total {
		t.Fatalf("filtered request corrupted the cached entry: total %d, want %d", again.Total, full.Total)
	}
	for i := range full.Communities {
		if !slices.Equal(again.Communities[i].Vertices, full.Communities[i].Vertices) {
			t.Fatalf("community %d changed after the filtered request:\n got %v\nwant %v",
				i, again.Communities[i].Vertices, full.Communities[i].Vertices)
		}
	}
	// All three responses came from one computation: the filtered view was
	// derived from (a copy of) the cached slice, not recomputed.
	var st statsOut
	doJSON(t, "GET", ts.URL+"/api/stats", nil, &st)
	if st.Cache.Computations != 1 {
		t.Fatalf("computations = %d, want 1: %+v", st.Cache.Computations, st.Cache)
	}
}

func TestV1OverloadedEnvelope(t *testing.T) {
	s, ts := testServer(t)
	s.EnableCache(128, 1<<20, 1)
	c := s.exp.Cache()
	// Occupy fig5's single computation slot with a blocking leader, then
	// hit the search route: the HTTP request becomes a second leader and is
	// shed with the 429 envelope.
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := c.Do(context.Background(), "fig5", 999, "occupier", func(context.Context) (any, int64, error) {
			close(started)
			<-release
			return "x", 1, nil
		})
		done <- err
	}()
	<-started
	wantEnvelope(t, "POST", ts.URL+"/api/v1/datasets/fig5/search",
		map[string]any{"algorithm": "ACQ", "names": []string{"A"}, "k": 2}, http.StatusTooManyRequests, "overloaded")
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("occupier: %v", err)
	}
	// Slot free again: the same search now computes.
	var out v1SearchOut
	resp := doJSON(t, "POST", ts.URL+"/api/v1/datasets/fig5/search",
		map[string]any{"algorithm": "ACQ", "names": []string{"A"}, "k": 2}, &out)
	if resp.StatusCode != 200 || len(out.Communities) == 0 {
		t.Fatalf("post-release search: status %d, %+v", resp.StatusCode, out)
	}
	var st statsOut
	doJSON(t, "GET", ts.URL+"/api/stats", nil, &st)
	if st.Cache.Shedded != 1 {
		t.Fatalf("shed not counted: %+v", st.Cache)
	}
}

func TestV1BatchedMutationRoute(t *testing.T) {
	s, ts := testServer(t)
	s.EnableBatcher(api.BatcherOptions{MaxOps: 2, MaxWait: time.Hour})
	// Two concurrent single-op requests: with MaxOps = 2 and an effectively
	// infinite maxWait, neither answers until both arrive, so they must
	// coalesce into exactly one applied batch.
	type mutOut struct {
		api.MutationResult
		ElapsedMS float64 `json:"elapsedMs"`
	}
	outs := make([]mutOut, 2)
	codes := make([]int, 2)
	ops := []map[string]any{
		{"op": "addEdge", "u": 5, "v": 9},
		{"op": "addEdge", "u": 6, "v": 9},
	}
	var wg sync.WaitGroup
	for i := range ops {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := doJSON(t, "POST", ts.URL+"/api/v1/datasets/fig5/mutations", ops[i], &outs[i])
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	for i := range outs {
		if codes[i] != 200 {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		// applied reflects the caller's own single op; version and the graph
		// sizes reflect the combined batch.
		if outs[i].Coalesced != 2 || outs[i].Applied != 1 || outs[i].Version != 1 {
			t.Fatalf("request %d: result = %+v", i, outs[i].MutationResult)
		}
		if outs[i].Journaled { // no data dir configured
			t.Fatalf("request %d: journaled without a catalog", i)
		}
	}
	var st statsOut
	doJSON(t, "GET", ts.URL+"/api/stats", nil, &st)
	if st.Batcher == nil {
		t.Fatal("stats carry no batcher block")
	}
	if st.Batcher.Submissions != 2 || st.Batcher.Batches != 1 || st.Batcher.Ops != 2 || st.Batcher.Coalesced != 2 {
		t.Fatalf("batcher stats = %+v", st.Batcher)
	}
	// Fallback isolation over HTTP: pair a conflicting op (F–J now exists)
	// with a valid one so the size trigger flushes; the combined batch
	// fails, the batcher re-applies per submission, and each caller gets its
	// own verdict.
	var okOut mutOut
	var env envelope
	var okCode, envCode int
	wg.Add(2)
	go func() {
		defer wg.Done()
		resp := doJSON(t, "POST", ts.URL+"/api/v1/datasets/fig5/mutations",
			map[string]any{"op": "addEdge", "u": 7, "v": 9}, &okOut)
		okCode = resp.StatusCode
	}()
	go func() {
		defer wg.Done()
		resp := doJSON(t, "POST", ts.URL+"/api/v1/datasets/fig5/mutations",
			map[string]any{"op": "addEdge", "u": 5, "v": 9}, &env)
		envCode = resp.StatusCode
	}()
	wg.Wait()
	if okCode != 200 || okOut.Applied != 1 || okOut.Coalesced != 0 {
		t.Fatalf("valid half: status %d, %+v", okCode, okOut.MutationResult)
	}
	if envCode != http.StatusConflict || env.Code != "mutation_conflict" {
		t.Fatalf("conflicting half: status %d, envelope %+v", envCode, env)
	}
	doJSON(t, "GET", ts.URL+"/api/stats", nil, &st)
	if st.Batcher.Fallbacks != 1 {
		t.Fatalf("fallback not counted: %+v", st.Batcher)
	}
}
