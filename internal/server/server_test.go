package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"cexplorer/internal/api"
	"cexplorer/internal/gen"
)

func testServer(t testing.TB) (*Server, *httptest.Server) {
	t.Helper()
	exp := api.NewExplorer()
	if _, err := exp.AddGraph("fig5", gen.Figure5()); err != nil {
		t.Fatal(err)
	}
	s := New(exp, nil)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t testing.TB, url string, body any, out any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp
}

func TestIndexServed(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/html; charset=utf-8" {
		t.Fatalf("content type = %q", ct)
	}
	// Unknown paths 404.
	resp2, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != 404 {
		t.Fatalf("unknown path status = %d", resp2.StatusCode)
	}
}

func TestGraphsEndpoint(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/api/graphs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var data struct {
		Graphs []struct {
			Name     string `json:"name"`
			Vertices int    `json:"vertices"`
		} `json:"graphs"`
		CS []string `json:"csAlgorithms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&data); err != nil {
		t.Fatal(err)
	}
	if len(data.Graphs) != 1 || data.Graphs[0].Name != "fig5" || data.Graphs[0].Vertices != 10 {
		t.Fatalf("graphs = %+v", data.Graphs)
	}
	if len(data.CS) == 0 {
		t.Fatal("no CS algorithms listed")
	}
}

func TestSearchEndpoint(t *testing.T) {
	_, ts := testServer(t)
	var out struct {
		Communities []struct {
			Method         string   `json:"method"`
			Vertices       []int32  `json:"vertices"`
			SharedKeywords []string `json:"sharedKeywords"`
			Names          []string `json:"names"`
			Placement      *struct {
				Points []struct{ X, Y float64 } `json:"points"`
			} `json:"placement"`
		} `json:"communities"`
		ElapsedMS float64 `json:"elapsedMs"`
	}
	postJSON(t, ts.URL+"/api/search", map[string]any{
		"dataset": "fig5", "algorithm": "ACQ",
		"names": []string{"A"}, "k": 2, "keywords": []string{"w", "x", "y"},
		"layout": true,
	}, &out)
	if len(out.Communities) != 1 {
		t.Fatalf("communities = %+v", out.Communities)
	}
	c := out.Communities[0]
	if len(c.Vertices) != 3 || len(c.SharedKeywords) != 2 {
		t.Fatalf("community = %+v", c)
	}
	if c.Names[0] != "A" {
		t.Fatalf("names = %v", c.Names)
	}
	if c.Placement == nil || len(c.Placement.Points) != 3 {
		t.Fatalf("placement missing: %+v", c.Placement)
	}
}

func TestSearchEndpointErrors(t *testing.T) {
	_, ts := testServer(t)
	cases := []map[string]any{
		{"dataset": "nope", "names": []string{"A"}, "k": 1},
		{"dataset": "fig5", "names": []string{"ZZ"}, "k": 1},
		{"dataset": "fig5", "k": 1},
		{"dataset": "fig5", "names": []string{"A"}, "algorithm": "nope", "k": 1},
	}
	for i, c := range cases {
		resp := postJSON(t, ts.URL+"/api/search", c, nil)
		if resp.StatusCode == 200 {
			t.Fatalf("case %d: status 200 for bad request", i)
		}
	}
	// Malformed body.
	resp, err := http.Post(ts.URL+"/api/search", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed body status = %d", resp.StatusCode)
	}
}

func TestVertexEndpointWithProfile(t *testing.T) {
	s, ts := testServer(t)
	s.SetProfiles("fig5", map[int32]gen.Profile{
		0: {Name: "A", Areas: []string{"databases"}, Institutes: []string{"hku"}},
	})
	resp, err := http.Get(ts.URL + "/api/vertex?dataset=fig5&name=A")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var data struct {
		ID       int32    `json:"id"`
		Degree   int      `json:"degree"`
		Core     int32    `json:"core"`
		Keywords []string `json:"keywords"`
		Profile  *gen.Profile
	}
	if err := json.NewDecoder(resp.Body).Decode(&data); err != nil {
		t.Fatal(err)
	}
	if data.ID != 0 || data.Degree != 4 || data.Core != 3 || len(data.Keywords) != 3 {
		t.Fatalf("vertex = %+v", data)
	}
	if data.Profile == nil || data.Profile.Areas[0] != "databases" {
		t.Fatalf("profile = %+v", data.Profile)
	}
	// Missing vertex → 404.
	r2, err := http.Get(ts.URL + "/api/vertex?dataset=fig5&name=ZZ")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != 404 {
		t.Fatalf("missing vertex status = %d", r2.StatusCode)
	}
}

func TestDetectEndpoint(t *testing.T) {
	_, ts := testServer(t)
	var out struct {
		Communities []struct {
			Vertices []int32 `json:"vertices"`
		} `json:"communities"`
	}
	postJSON(t, ts.URL+"/api/detect", map[string]any{
		"dataset": "fig5", "algorithm": "CODICIL", "minSize": 2, "limit": 3,
	}, &out)
	if len(out.Communities) == 0 || len(out.Communities) > 3 {
		t.Fatalf("communities = %+v", out.Communities)
	}
	for _, c := range out.Communities {
		if len(c.Vertices) < 2 {
			t.Fatalf("minSize violated: %v", c.Vertices)
		}
	}
}

func TestAnalyzeAndDisplayEndpoints(t *testing.T) {
	_, ts := testServer(t)
	var analysis struct {
		CPJ   float64 `json:"cpj"`
		CMF   float64 `json:"cmf"`
		Stats struct {
			Vertices int `json:"Vertices"`
		} `json:"stats"`
	}
	postJSON(t, ts.URL+"/api/analyze", map[string]any{
		"dataset": "fig5", "vertices": []int32{0, 2, 3}, "query": 0,
	}, &analysis)
	if analysis.CPJ <= 0 || analysis.CMF <= 0 {
		t.Fatalf("analysis = %+v", analysis)
	}
	var placement struct {
		Points []struct{ X, Y float64 } `json:"points"`
		Edges  [][2]int32               `json:"edges"`
	}
	postJSON(t, ts.URL+"/api/display", map[string]any{
		"dataset": "fig5", "vertices": []int32{0, 1, 2, 3}, "width": 100, "height": 100,
	}, &placement)
	if len(placement.Points) != 4 || len(placement.Edges) != 6 {
		t.Fatalf("placement = %+v", placement)
	}
	for _, p := range placement.Points {
		if p.X < 0 || p.X > 100 || p.Y < 0 || p.Y > 100 {
			t.Fatalf("point out of bounds: %+v", p)
		}
	}
}

func TestCompareEndpoint(t *testing.T) {
	_, ts := testServer(t)
	var out struct {
		Rows []struct {
			Method      string  `json:"method"`
			Communities int     `json:"communities"`
			AvgVertices float64 `json:"avgVertices"`
			CPJ         float64 `json:"cpj"`
			Error       string  `json:"error"`
		} `json:"rows"`
	}
	postJSON(t, ts.URL+"/api/compare", map[string]any{
		"dataset": "fig5", "name": "A", "k": 2,
	}, &out)
	if len(out.Rows) != 4 {
		t.Fatalf("rows = %+v", out.Rows)
	}
	byMethod := map[string]int{}
	for i, r := range out.Rows {
		byMethod[r.Method] = i
		if r.Error != "" {
			t.Fatalf("row %s error: %s", r.Method, r.Error)
		}
	}
	for _, m := range []string{"Global", "Local", "CODICIL", "ACQ"} {
		if _, ok := byMethod[m]; !ok {
			t.Fatalf("missing method %s", m)
		}
	}
	// Global's community (2-core of A = 5 vertices) must be ≥ ACQ's (3).
	g := out.Rows[byMethod["Global"]]
	a := out.Rows[byMethod["ACQ"]]
	if g.AvgVertices < a.AvgVertices {
		t.Fatalf("Global %f < ACQ %f vertices", g.AvgVertices, a.AvgVertices)
	}
	// ACQ must win on CPJ (the Figure-6a bars shape).
	if a.CPJ < g.CPJ {
		t.Fatalf("ACQ CPJ %f < Global CPJ %f", a.CPJ, g.CPJ)
	}
}

func TestUploadEndpoint(t *testing.T) {
	_, ts := testServer(t)
	jg := gen.Figure5().ToJSONGraph("up")
	var out struct {
		Name  string `json:"name"`
		Stats struct {
			Vertices int `json:"Vertices"`
		} `json:"stats"`
	}
	postJSON(t, ts.URL+"/api/upload", map[string]any{
		"name": "up", "graph": jg,
	}, &out)
	if out.Name != "up" || out.Stats.Vertices != 10 {
		t.Fatalf("upload = %+v", out)
	}
	// Search the uploaded graph end to end.
	var sr struct {
		Communities []struct {
			Vertices []int32 `json:"vertices"`
		} `json:"communities"`
	}
	postJSON(t, ts.URL+"/api/search", map[string]any{
		"dataset": "up", "algorithm": "ACQ", "names": []string{"A"}, "k": 2,
	}, &sr)
	if len(sr.Communities) != 1 || len(sr.Communities[0].Vertices) != 3 {
		t.Fatalf("search on uploaded = %+v", sr)
	}
	// Missing name rejected.
	resp := postJSON(t, ts.URL+"/api/upload", map[string]any{"graph": jg}, nil)
	if resp.StatusCode != 400 {
		t.Fatalf("missing name status = %d", resp.StatusCode)
	}
}

func TestConcurrentSearches(t *testing.T) {
	_, ts := testServer(t)
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func(i int) {
			b, _ := json.Marshal(map[string]any{
				"dataset": "fig5", "algorithm": "ACQ",
				"names": []string{"A"}, "k": 1 + i%3,
			})
			resp, err := http.Post(ts.URL+"/api/search", "application/json", bytes.NewReader(b))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < 16; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := testServer(t)
	postJSON(t, ts.URL+"/api/search", map[string]any{
		"dataset": "fig5", "algorithm": "ACQ", "names": []string{"A"}, "k": 2,
	}, nil)
	resp, err := http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Searches != 1 || snap.Requests < 2 || snap.MaxConcurrentSearches < 1 {
		t.Fatalf("stats = %+v", snap)
	}
	if snap.SearchInFlight != 0 {
		t.Fatalf("searches still in flight: %+v", snap)
	}
	// Errors counter sees a failed request.
	postJSON(t, ts.URL+"/api/search", map[string]any{"dataset": "nope", "k": 1}, nil)
	resp2, err := http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Errors == 0 {
		t.Fatalf("error not counted: %+v", snap)
	}
}

// TestSearchLimitQueues pins the worker limit to 1 and fires a burst of
// searches: all must queue for the single slot and still succeed.
func TestSearchLimitQueues(t *testing.T) {
	s, ts := testServer(t)
	s.SetSearchLimit(1)
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, _ := json.Marshal(map[string]any{
				"dataset": "fig5", "algorithm": "ACQ", "names": []string{"A"}, "k": 1 + i%3,
			})
			resp, err := http.Post(ts.URL+"/api/search", "application/json", bytes.NewReader(b))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := s.Stats().Searches; got != 12 {
		t.Fatalf("searches counted = %d, want 12", got)
	}
}

// TestConcurrentMixedRequestsRace drives every mutable code path reachable
// from Handler() at once — searches, vertex lookups with profile reads,
// profile installs, uploads, stats reads, and a worker-limit change — so
// `go test -race ./internal/server` audits the server's shared state.
func TestConcurrentMixedRequestsRace(t *testing.T) {
	s, ts := testServer(t)
	var wg sync.WaitGroup
	do := func(fn func(i int)) {
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) { defer wg.Done(); fn(i) }(i)
		}
	}
	do(func(i int) {
		b, _ := json.Marshal(map[string]any{
			"dataset": "fig5", "algorithm": "ACQ", "names": []string{"A"}, "k": 1 + i%3,
		})
		resp, err := http.Post(ts.URL+"/api/search", "application/json", bytes.NewReader(b))
		if err == nil {
			resp.Body.Close()
		}
	})
	do(func(i int) {
		s.SetProfiles("fig5", map[int32]gen.Profile{int32(i): {Name: "p"}})
	})
	do(func(i int) {
		resp, err := http.Get(ts.URL + "/api/vertex?dataset=fig5&name=A")
		if err == nil {
			resp.Body.Close()
		}
	})
	do(func(i int) {
		resp, err := http.Get(ts.URL + "/api/stats")
		if err == nil {
			resp.Body.Close()
		}
	})
	do(func(i int) {
		if i == 0 {
			s.SetSearchLimit(4)
		}
		jg := gen.Figure5().ToJSONGraph("up")
		b, _ := json.Marshal(map[string]any{"name": fmt.Sprintf("up%d", i), "graph": jg})
		resp, err := http.Post(ts.URL+"/api/upload", "application/json", bytes.NewReader(b))
		if err == nil {
			resp.Body.Close()
		}
	})
	wg.Wait()
}
