package server

import (
	"errors"
	"testing"

	"cexplorer/internal/api"
)

// FuzzParseMutationRequest drives arbitrary bytes through the mutation
// request parser: every rejection must be a typed ErrInvalidMutation (so
// the HTTP layer answers a clean 400) and every acceptance a well-formed,
// non-empty batch. Panics are outlawed.
func FuzzParseMutationRequest(f *testing.F) {
	f.Add([]byte(`{"op":"addEdge","u":1,"v":2}`))
	f.Add([]byte(`{"mutations":[{"op":"addEdge","u":1,"v":2},{"op":"removeEdge","u":3,"v":4}]}`))
	f.Add([]byte(`{"op":"addVertex","name":"x","keywords":["a","b"]}`))
	f.Add([]byte(`{"mutations":[],"op":""}`))
	f.Add([]byte(`{"mutations":[{"op":"addEdge"}],"op":"addVertex"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"op":123}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, body []byte) {
		ops, err := parseMutationRequest(body)
		if err != nil {
			if !errors.Is(err, api.ErrInvalidMutation) {
				t.Fatalf("untyped parse error: %v", err)
			}
			return
		}
		if len(ops) == 0 {
			t.Fatalf("parser accepted %q but returned an empty batch", body)
		}
	})
}
