package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cexplorer/internal/api"
	"cexplorer/internal/gen"
	"cexplorer/internal/graph"
	"cexplorer/internal/snapshot"
)

// uploadBody builds the /api/upload payload for a graph.
func uploadBody(t testing.TB, name string, g *graph.Graph) map[string]any {
	t.Helper()
	jg := g.ToJSONGraph(name)
	raw, err := json.Marshal(jg)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]any{"name": name, "graph": json.RawMessage(raw)}
}

func searchFig5(t testing.TB, url string) []byte {
	t.Helper()
	var out struct {
		Communities []struct {
			Method         string   `json:"method"`
			Vertices       []int32  `json:"vertices"`
			SharedKeywords []string `json:"sharedKeywords"`
			Names          []string `json:"names"`
		} `json:"communities"`
	}
	resp := postJSON(t, url+"/api/search", map[string]any{
		"dataset": "persisted", "algorithm": "ACQ", "names": []string{"A"}, "k": 2,
	}, &out)
	if resp.StatusCode != 200 {
		t.Fatalf("search status = %d", resp.StatusCode)
	}
	if len(out.Communities) == 0 {
		t.Fatalf("no communities")
	}
	b, _ := json.Marshal(out)
	return b
}

// TestWarmRestart is the serving half of the acceptance criterion: a server
// restarted against a populated -data.dir serves searches on its old
// datasets without re-upload, with identical results.
func TestWarmRestart(t *testing.T) {
	dir := t.TempDir()

	// --- first server: upload persists to the catalog ---
	exp1 := api.NewExplorer()
	s1 := New(exp1, nil)
	if err := s1.SetDataDir(dir); err != nil {
		t.Fatalf("set data dir: %v", err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	var up struct {
		Name           string  `json:"name"`
		PersistedBytes int64   `json:"persistedBytes"`
		PersistMS      float64 `json:"persistMs"`
		PersistError   string  `json:"persistError"`
	}
	resp := postJSON(t, ts1.URL+"/api/upload", uploadBody(t, "persisted", gen.Figure5()), &up)
	if resp.StatusCode != 200 {
		t.Fatalf("upload status = %d", resp.StatusCode)
	}
	if up.PersistError != "" || up.PersistedBytes == 0 {
		t.Fatalf("upload did not persist: %+v", up)
	}
	path := filepath.Join(dir, "persisted"+snapshot.FileExt)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("snapshot file missing: %v", err)
	}
	want := searchFig5(t, ts1.URL)
	ts1.Close()

	// --- second server: fresh explorer, same directory, no re-upload ---
	exp2 := api.NewExplorer()
	s2 := New(exp2, nil)
	if err := s2.SetDataDir(dir); err != nil {
		t.Fatalf("set data dir: %v", err)
	}
	loaded, err := s2.LoadSnapshots()
	if err != nil {
		t.Fatalf("load snapshots: %v", err)
	}
	if loaded != 1 {
		t.Fatalf("loaded %d snapshots, want 1", loaded)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	got := searchFig5(t, ts2.URL)
	if !bytes.Equal(want, got) {
		t.Fatalf("search results differ across restart:\nbefore: %s\nafter:  %s", want, got)
	}

	// The reloaded dataset must advertise its provenance and warm indexes.
	var graphs struct {
		Graphs []struct {
			Name    string `json:"name"`
			Source  string `json:"source"`
			Indexes struct {
				CLTree bool `json:"cltree"`
				Core   bool `json:"core"`
				Truss  bool `json:"truss"`
			} `json:"indexes"`
		} `json:"graphs"`
		DataDir string `json:"dataDir"`
	}
	gresp, err := http.Get(ts2.URL + "/api/graphs")
	if err != nil {
		t.Fatal(err)
	}
	defer gresp.Body.Close()
	if err := json.NewDecoder(gresp.Body).Decode(&graphs); err != nil {
		t.Fatal(err)
	}
	if graphs.DataDir != dir {
		t.Fatalf("dataDir = %q, want %q", graphs.DataDir, dir)
	}
	found := false
	for _, g := range graphs.Graphs {
		if g.Name != "persisted" {
			continue
		}
		found = true
		if g.Source != "snapshot" {
			t.Fatalf("source = %q, want snapshot", g.Source)
		}
		if !g.Indexes.CLTree || !g.Indexes.Core || !g.Indexes.Truss {
			t.Fatalf("indexes not pre-seeded: %+v", g.Indexes)
		}
	}
	if !found {
		t.Fatalf("persisted dataset missing from /api/graphs: %+v", graphs.Graphs)
	}

	// Catalog activity shows up in /api/stats.
	sresp, err := http.Get(ts2.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st StatsSnapshot
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Datasets != 1 || st.SnapshotLoads != 1 || st.SnapshotLoadMS <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCorruptSnapshotSkippedAtBoot pins the availability property: one
// damaged catalog file is skipped with an error counter, the rest load.
func TestCorruptSnapshotSkippedAtBoot(t *testing.T) {
	dir := t.TempDir()

	ds := api.NewDataset("good", gen.Figure5())
	if _, err := ds.WriteSnapshotFile(filepath.Join(dir, "good"+snapshot.FileExt)); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bad"+snapshot.FileExt), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	s := New(api.NewExplorer(), nil)
	if err := s.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := s.LoadSnapshots()
	if err != nil {
		t.Fatalf("load snapshots: %v", err)
	}
	if loaded != 1 {
		t.Fatalf("loaded %d, want 1", loaded)
	}
	if got := s.Stats().SnapshotLoadErrors; got != 1 {
		t.Fatalf("load errors = %d, want 1", got)
	}
	if _, ok := s.Explorer().Dataset("good"); !ok {
		t.Fatalf("good dataset missing")
	}
}

// TestPersistDisabledWithoutDataDir: no data dir, uploads stay memory-only
// and report no persistence fields.
func TestPersistDisabledWithoutDataDir(t *testing.T) {
	_, ts := testServer(t)
	var up map[string]any
	resp := postJSON(t, ts.URL+"/api/upload", uploadBody(t, "mem", gen.Figure5()), &up)
	if resp.StatusCode != 200 {
		t.Fatalf("upload status = %d", resp.StatusCode)
	}
	for _, k := range []string{"persistedBytes", "persistMs", "persistError"} {
		if _, present := up[k]; present {
			t.Fatalf("unexpected %s in response: %+v", k, up)
		}
	}
}

// TestSnapshotPathEscaping: dataset names with separators or dots cannot
// escape the catalog directory.
func TestSnapshotPathEscaping(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"../evil", "a/b", "c:\\d", ".."} {
		p := snapshotPath(dir, name)
		if !strings.HasPrefix(p, dir+string(filepath.Separator)) {
			t.Fatalf("name %q maps outside the catalog: %q", name, p)
		}
		rel, err := filepath.Rel(dir, p)
		if err != nil || strings.Contains(rel, string(filepath.Separator)) || rel == ".." {
			t.Fatalf("name %q maps to nested/parent path %q", name, p)
		}
	}
}
