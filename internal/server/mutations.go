package server

// The streaming-mutation surface:
//
//	POST /api/v1/datasets/{name}/mutations
//
// accepts one op or a batch, applies it through Explorer.Mutate (atomic
// copy-on-write version swap; in-flight searches keep their version), and —
// when a data directory is configured — appends the batch to the dataset's
// mutation journal before answering, so a warm restart replays the tail
// instead of losing acknowledged writes. Once a journal accumulates enough
// ops the catalog compacts: the snapshot is rewritten at the current
// version and the journal dropped.

import (
	"cmp"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"slices"
	"time"

	"cexplorer/internal/api"
	"cexplorer/internal/repl"
	"cexplorer/internal/snapshot"
)

// DefaultJournalCompactAfter is how many journaled ops trigger a snapshot
// rewrite + journal reset. Batches are appended whole, so the threshold is
// a floor, not an exact trigger point.
const DefaultJournalCompactAfter = 4096

// mutationRequest is the wire shape of the mutations route: either a batch
// under "mutations" or a single op inline (both at once is rejected).
type mutationRequest struct {
	Mutations []api.Mutation `json:"mutations,omitempty"`
	// Inline single-op fields.
	Op       string   `json:"op,omitempty"`
	U        int32    `json:"u,omitempty"`
	V        int32    `json:"v,omitempty"`
	Name     string   `json:"name,omitempty"`
	Keywords []string `json:"keywords,omitempty"`
}

// parseMutationRequest decodes a request body into the op batch it
// denotes. It is pure (fuzzable) and returns api.ErrInvalidMutation
// wrappers for every rejection.
func parseMutationRequest(body []byte) ([]api.Mutation, error) {
	var req mutationRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, fmt.Errorf("%w: bad request body: %v", api.ErrInvalidMutation, err)
	}
	if len(req.Mutations) > 0 && req.Op != "" {
		return nil, fmt.Errorf("%w: both a batch and an inline op given", api.ErrInvalidMutation)
	}
	if len(req.Mutations) > 0 {
		return req.Mutations, nil
	}
	if req.Op == "" {
		return nil, fmt.Errorf("%w: no mutations given", api.ErrInvalidMutation)
	}
	return []api.Mutation{{Op: req.Op, U: req.U, V: req.V, Name: req.Name, Keywords: req.Keywords}}, nil
}

// mutationResponse is the route's success payload. Journaled/Compacted
// (and, when batching is on, Coalesced) arrive embedded in the
// MutationResult, set by applyMutations.
type mutationResponse struct {
	api.MutationResult
	ElapsedMS float64 `json:"elapsedMs"`
}

// applyMutations is the one write path every mutation takes — the apply
// seam the batcher wraps and the direct route calls. It runs the engine
// apply, keeps the mutation counters, and (with a catalog configured)
// journals the batch, recording durability in the result:
//
//   - Journaled reflects the append alone: a batch whose record was fsynced
//     IS durable even when the follow-up compaction failed, and reporting
//     otherwise would invite a client retry that applies the batch twice.
//     Failures (append or compaction) are logged loudly.
//   - With batching enabled, one call here may speak for several coalesced
//     HTTP requests; the batch journals once, under the combined batch's
//     version, so replay sees exactly the applied lineage.
func (s *Server) applyMutations(ctx context.Context, name string, ops []api.Mutation) (*api.MutationResult, error) {
	start := time.Now()
	res, err := s.exp.Mutate(ctx, name, ops)
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	s.stats.mutationBatches.Add(1)
	s.stats.mutationOps.Add(int64(len(ops)))
	s.stats.mutationNanos.Add(elapsed.Nanoseconds())
	if s.DataDir() != "" {
		journaled, compacted, jerr := s.journalBatch(name, res.Version, ops)
		res.Journaled = journaled
		res.Compacted = compacted
		if jerr != nil {
			s.logf("mutations %s: %v (journaled=%v)", name, jerr, journaled)
		}
	}
	return res, nil
}

func (s *Server) v1Mutations(w http.ResponseWriter, r *http.Request) {
	if s.fleetFence(w, r) || s.rejectReadOnly(w) {
		return
	}
	var body json.RawMessage
	if !decodeBody(w, r, &body) {
		return
	}
	ops, err := parseMutationRequest(body)
	if err != nil {
		s.stats.mutationErrors.Add(1)
		s.writeError(w, err)
		return
	}
	name := r.PathValue("name")
	start := time.Now()
	var res *api.MutationResult
	if b := s.mutationBatcher(); b != nil {
		res, err = b.Mutate(r.Context(), name, ops)
	} else {
		res, err = s.applyMutations(r.Context(), name, ops)
	}
	elapsed := time.Since(start)
	if err != nil {
		s.stats.mutationErrors.Add(1)
		s.writeError(w, err)
		return
	}
	writeJSON(w, mutationResponse{MutationResult: *res, ElapsedMS: msec(elapsed)})
}

// journalPath maps a dataset name to its mutation journal file.
func journalPath(dir, name string) string {
	return snapshotPath(dir, name) + snapshot.JournalExt
}

// journalBatch appends one applied batch to the dataset's journal and runs
// compaction when the journal has absorbed enough ops. The whole operation
// — append, counter, and any compaction — holds journalMu, so the dataset
// re-fetched for a compaction snapshot is always at least as new as every
// record the compaction deletes (concurrent batches publish before they
// append, and their appends queue behind the lock).
func (s *Server) journalBatch(name string, version uint64, ops []api.Mutation) (journaled, compacted bool, err error) {
	dir := s.DataDir()
	if dir == "" {
		return false, false, nil
	}
	s.journalMu.Lock()
	defer s.journalMu.Unlock()
	rec := snapshot.JournalRecord{Version: version, Ops: toJournalOps(ops)}
	if err := snapshot.AppendJournal(journalPath(dir, name), rec); err != nil {
		return false, false, err
	}
	s.mu.Lock()
	if s.journalOps == nil {
		s.journalOps = make(map[string]int)
	}
	s.journalOps[name] += len(ops)
	pending := s.journalOps[name]
	threshold := s.journalCompactAfter
	s.mu.Unlock()
	if threshold <= 0 {
		threshold = DefaultJournalCompactAfter
	}
	if pending < threshold {
		return true, false, nil
	}
	ds, ok := s.exp.Dataset(name)
	if !ok {
		return true, false, nil
	}
	if _, err := s.persistDatasetLocked(ds, true); err != nil {
		return true, false, fmt.Errorf("compaction: %w", err)
	}
	return true, true, nil
}

// SetJournalCompactAfter overrides the compaction threshold (ops per
// journal); n ≤ 0 restores the default. Test hook and ops knob.
func (s *Server) SetJournalCompactAfter(n int) {
	s.mu.Lock()
	s.journalCompactAfter = n
	s.mu.Unlock()
}

// resetJournalLocked drops the dataset's journal and pending-op counter;
// called after every full snapshot persist (upload, compaction), which
// supersedes the journal's records. Caller holds journalMu.
func (s *Server) resetJournalLocked(name string) {
	dir := s.DataDir()
	if dir == "" {
		return
	}
	if err := os.Remove(journalPath(dir, name)); err != nil && !os.IsNotExist(err) {
		s.logf("catalog: removing journal for %s: %v", name, err)
	}
	s.mu.Lock()
	delete(s.journalOps, name)
	s.mu.Unlock()
}

// replayJournal applies the journal records a freshly loaded snapshot
// predates, bringing the dataset to its last acknowledged version. Records
// at or below the snapshot's version are skipped (the snapshot already
// contains them). Versions are unique per lineage but append order is not
// publish order (the journal lock is taken after the version swap), so
// records are sorted by version and required to be contiguous — a gap
// means records are missing and replay stops rather than applying batches
// against the wrong base. Returns how many ops were replayed.
func (s *Server) replayJournal(name string, baseVersion uint64) (int, error) {
	dir := s.DataDir()
	if dir == "" {
		return 0, nil
	}
	recs, dropped, err := snapshot.ReadJournal(journalPath(dir, name))
	if err != nil {
		return 0, err
	}
	if dropped > 0 {
		s.logf("catalog: journal for %s: dropped %d trailing bytes (crash tail)", name, dropped)
		// Truncate the torn tail away: appends go to the end of the file,
		// so leaving garbage in place would strand every record written
		// after it beyond the reach of replay and of journal cursors.
		path := journalPath(dir, name)
		if st, serr := os.Stat(path); serr == nil {
			if terr := os.Truncate(path, st.Size()-int64(dropped)); terr != nil {
				s.logf("catalog: truncating torn journal tail for %s: %v", name, terr)
			}
		}
	}
	slices.SortFunc(recs, func(a, b snapshot.JournalRecord) int { return cmp.Compare(a.Version, b.Version) })
	replayed := 0
	next := baseVersion + 1
	for _, rec := range recs {
		if rec.Version <= baseVersion {
			continue
		}
		if rec.Version != next {
			return replayed, fmt.Errorf("journal gap: have version %d, want %d", rec.Version, next)
		}
		ops := fromJournalOps(rec.Ops)
		if _, err := s.exp.Mutate(context.Background(), name, ops); err != nil {
			return replayed, fmt.Errorf("replaying batch for version %d: %w", rec.Version, err)
		}
		replayed += len(ops)
		next++
	}
	if replayed > 0 {
		s.mu.Lock()
		if s.journalOps == nil {
			s.journalOps = make(map[string]int)
		}
		s.journalOps[name] += replayed
		s.mu.Unlock()
	}
	return replayed, nil
}

// toJournalOps/fromJournalOps are the shared api↔journal mapping, now owned
// by the replication package (the shipping stream and the on-disk journal
// use the same encoding by design).
func toJournalOps(ops []api.Mutation) []snapshot.JournalOp { return repl.ToJournalOps(ops) }

func fromJournalOps(ops []snapshot.JournalOp) []api.Mutation { return repl.FromJournalOps(ops) }
