package server

// The /api/v1 contract suite. Every test here is named TestV1* so CI can
// run it as a standalone API-contract gate (go test -run TestV1 -count=2):
// the names are part of the contract too.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"cexplorer/internal/api"
	"cexplorer/internal/gen"
)

// doJSON issues a request with a JSON body and decodes the JSON response.
func doJSON(t testing.TB, method, url string, body any, out any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s %s response: %v", method, url, err)
		}
	}
	return resp
}

// envelope is the v1 error shape.
type envelope struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func wantEnvelope(t testing.TB, method, url string, body any, status int, code string) {
	t.Helper()
	var env envelope
	resp := doJSON(t, method, url, body, &env)
	if resp.StatusCode != status {
		t.Fatalf("%s %s: status = %d, want %d (envelope %+v)", method, url, resp.StatusCode, status, env)
	}
	if env.Code != code {
		t.Fatalf("%s %s: code = %q, want %q (error %q)", method, url, env.Code, code, env.Error)
	}
	if env.Error == "" {
		t.Fatalf("%s %s: empty error message", method, url)
	}
}

func TestV1DatasetsResource(t *testing.T) {
	_, ts := testServer(t)
	var list struct {
		Datasets []graphInfo `json:"datasets"`
		Total    int         `json:"total"`
	}
	doJSON(t, "GET", ts.URL+"/api/v1/datasets", nil, &list)
	if list.Total != 1 || len(list.Datasets) != 1 || list.Datasets[0].Name != "fig5" {
		t.Fatalf("datasets = %+v", list)
	}
	var one graphInfo
	resp := doJSON(t, "GET", ts.URL+"/api/v1/datasets/fig5", nil, &one)
	if resp.StatusCode != 200 || one.Vertices != 10 {
		t.Fatalf("dataset fig5 = %+v (status %d)", one, resp.StatusCode)
	}
	wantEnvelope(t, "GET", ts.URL+"/api/v1/datasets/nope", nil, 404, "dataset_not_found")

	var algos struct {
		CS []string `json:"cs"`
		CD []string `json:"cd"`
	}
	doJSON(t, "GET", ts.URL+"/api/v1/algorithms", nil, &algos)
	if len(algos.CS) == 0 || len(algos.CD) == 0 {
		t.Fatalf("algorithms = %+v", algos)
	}
}

// TestV1DeleteDataset pins the delete contract: the dataset disappears from
// the registry AND the on-disk catalog (snapshot + journal), open exploration
// sessions on it close, and unknown names answer the typed 404. Replicas
// lean on this — their tailers turn the resulting 404s into an un-claim.
func TestV1DeleteDataset(t *testing.T) {
	dir := t.TempDir()
	exp := api.NewExplorer()
	if _, err := exp.AddGraph("fig5", gen.Figure5()); err != nil {
		t.Fatal(err)
	}
	s := New(exp, t.Logf)
	if err := s.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	ds, _ := exp.Dataset("fig5")
	if _, err := s.PersistDataset(ds); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A mutation grows a journal tail on disk; an explore create opens a
	// session — delete must clean up both.
	var mresp mutationResponse
	doJSON(t, "POST", ts.URL+"/api/v1/datasets/fig5/mutations",
		map[string]any{"op": "addEdge", "u": 0, "v": 9}, &mresp)
	if mresp.Version != 1 || !mresp.Journaled {
		t.Fatalf("mutation: %+v", mresp)
	}
	var st v1State
	doJSON(t, "POST", ts.URL+"/api/v1/datasets/fig5/explore",
		map[string]any{"name": "A", "k": 2}, &st)
	if st.ID == "" {
		t.Fatalf("explore create: %+v", st)
	}

	var del struct {
		Deleted string `json:"deleted"`
	}
	resp := doJSON(t, "DELETE", ts.URL+"/api/v1/datasets/fig5", nil, &del)
	if resp.StatusCode != 200 || del.Deleted != "fig5" {
		t.Fatalf("delete: status %d body %+v", resp.StatusCode, del)
	}

	// Gone everywhere: registry, session table, and the catalog files.
	wantEnvelope(t, "GET", ts.URL+"/api/v1/datasets/fig5", nil, 404, "dataset_not_found")
	wantEnvelope(t, "GET", ts.URL+"/api/v1/datasets/fig5/explore/"+st.ID, nil, 404, "session_not_found")
	if _, err := os.Stat(snapshotPath(dir, "fig5")); !os.IsNotExist(err) {
		t.Fatalf("catalog snapshot survived delete: err=%v", err)
	}
	if _, err := os.Stat(journalPath(dir, "fig5")); !os.IsNotExist(err) {
		t.Fatalf("journal survived delete: err=%v", err)
	}
	if snap := s.Stats(); snap.Explore.Active != 0 {
		t.Fatalf("sessions not closed on delete: %+v", snap.Explore)
	}

	// Deleting again (or any unknown name) is the typed 404.
	wantEnvelope(t, "DELETE", ts.URL+"/api/v1/datasets/fig5", nil, 404, "dataset_not_found")
}

func TestV1VertexResource(t *testing.T) {
	_, ts := testServer(t)
	var byName struct {
		ID   int32  `json:"id"`
		Name string `json:"name"`
		Core int32  `json:"core"`
	}
	doJSON(t, "GET", ts.URL+"/api/v1/datasets/fig5/vertices/A", nil, &byName)
	if byName.ID != 0 || byName.Name != "A" || byName.Core != 3 {
		t.Fatalf("vertex by name = %+v", byName)
	}
	var byID struct {
		ID   int32  `json:"id"`
		Name string `json:"name"`
	}
	doJSON(t, "GET", ts.URL+"/api/v1/datasets/fig5/vertices/0", nil, &byID)
	if byID.ID != 0 || byID.Name != "A" {
		t.Fatalf("vertex by id = %+v", byID)
	}
	wantEnvelope(t, "GET", ts.URL+"/api/v1/datasets/fig5/vertices/ZZ", nil, 404, "vertex_not_found")
	wantEnvelope(t, "GET", ts.URL+"/api/v1/datasets/fig5/vertices/999", nil, 404, "vertex_not_found")
	wantEnvelope(t, "GET", ts.URL+"/api/v1/datasets/nope/vertices/0", nil, 404, "dataset_not_found")
}

// v1SearchOut is the paginated v1 search response.
type v1SearchOut struct {
	Communities []struct {
		Vertices []int32  `json:"vertices"`
		Names    []string `json:"names"`
	} `json:"communities"`
	Total  int `json:"total"`
	Limit  int `json:"limit"`
	Offset int `json:"offset"`
}

func TestV1SearchMatchesLegacy(t *testing.T) {
	_, ts := testServer(t)
	var v1 v1SearchOut
	doJSON(t, "POST", ts.URL+"/api/v1/datasets/fig5/search", map[string]any{
		"algorithm": "ACQ", "names": []string{"A"}, "k": 2, "keywords": []string{"w", "x", "y"},
	}, &v1)
	var legacy struct {
		Communities []struct {
			Vertices []int32 `json:"vertices"`
		} `json:"communities"`
	}
	postJSON(t, ts.URL+"/api/search", map[string]any{
		"dataset": "fig5", "algorithm": "ACQ", "names": []string{"A"}, "k": 2, "keywords": []string{"w", "x", "y"},
	}, &legacy)
	if len(v1.Communities) != len(legacy.Communities) || v1.Total != len(legacy.Communities) {
		t.Fatalf("v1 %d communities (total %d), legacy %d", len(v1.Communities), v1.Total, len(legacy.Communities))
	}
	for i := range v1.Communities {
		if fmt.Sprint(v1.Communities[i].Vertices) != fmt.Sprint(legacy.Communities[i].Vertices) {
			t.Fatalf("community %d differs: v1 %v legacy %v", i, v1.Communities[i].Vertices, legacy.Communities[i].Vertices)
		}
	}
}

func TestV1SearchPagination(t *testing.T) {
	_, ts := testServer(t)
	// KTruss at k=2 on fig5 yields multiple communities for A.
	var full v1SearchOut
	doJSON(t, "POST", ts.URL+"/api/v1/datasets/fig5/search", map[string]any{
		"algorithm": "KTruss", "names": []string{"A"}, "k": 2,
	}, &full)
	if full.Total < 2 {
		t.Skipf("need ≥ 2 communities to paginate, got %d", full.Total)
	}
	var page v1SearchOut
	doJSON(t, "POST", ts.URL+"/api/v1/datasets/fig5/search", map[string]any{
		"algorithm": "KTruss", "names": []string{"A"}, "k": 2, "limit": 1, "offset": 1,
	}, &page)
	if page.Total != full.Total || len(page.Communities) != 1 || page.Limit != 1 || page.Offset != 1 {
		t.Fatalf("page = %+v (full total %d)", page, full.Total)
	}
	if fmt.Sprint(page.Communities[0].Vertices) != fmt.Sprint(full.Communities[1].Vertices) {
		t.Fatalf("offset 1 returned %v, want %v", page.Communities[0].Vertices, full.Communities[1].Vertices)
	}
	// Offset past the end: empty page, correct total.
	var empty v1SearchOut
	doJSON(t, "POST", ts.URL+"/api/v1/datasets/fig5/search", map[string]any{
		"algorithm": "KTruss", "names": []string{"A"}, "k": 2, "offset": 100,
	}, &empty)
	if len(empty.Communities) != 0 || empty.Total != full.Total {
		t.Fatalf("past-the-end page = %+v", empty)
	}
}

func TestV1SearchErrors(t *testing.T) {
	_, ts := testServer(t)
	wantEnvelope(t, "POST", ts.URL+"/api/v1/datasets/nope/search",
		map[string]any{"names": []string{"A"}, "k": 1}, 404, "dataset_not_found")
	wantEnvelope(t, "POST", ts.URL+"/api/v1/datasets/fig5/search",
		map[string]any{"names": []string{"ZZ"}, "k": 1}, 404, "vertex_not_found")
	wantEnvelope(t, "POST", ts.URL+"/api/v1/datasets/fig5/search",
		map[string]any{"k": 1}, 400, "invalid_query")
	wantEnvelope(t, "POST", ts.URL+"/api/v1/datasets/fig5/search",
		map[string]any{"names": []string{"A"}, "algorithm": "nope", "k": 1}, 400, "unknown_algorithm")
	// Unknown Params key and malformed value are invalid_query.
	wantEnvelope(t, "POST", ts.URL+"/api/v1/datasets/fig5/search",
		map[string]any{"names": []string{"A"}, "k": 1, "params": map[string]string{"bogus": "1"}}, 400, "invalid_query")
	wantEnvelope(t, "POST", ts.URL+"/api/v1/datasets/fig5/search",
		map[string]any{"names": []string{"A"}, "k": 1, "params": map[string]string{"maxResults": "many"}}, 400, "invalid_query")
}

func TestV1SearchParams(t *testing.T) {
	_, ts := testServer(t)
	// maxResults=1 caps the KTruss community list before pagination.
	var out v1SearchOut
	doJSON(t, "POST", ts.URL+"/api/v1/datasets/fig5/search", map[string]any{
		"algorithm": "KTruss", "names": []string{"A"}, "k": 2,
		"params": map[string]string{"maxResults": "1"},
	}, &out)
	if out.Total != 1 || len(out.Communities) != 1 {
		t.Fatalf("maxResults=1: %+v", out)
	}
	// variant selects the ACQ algorithm flavor; all variants agree on fig5.
	for _, variant := range []string{"Dec", "Inc-S", "Inc-T", "Basic"} {
		var v v1SearchOut
		doJSON(t, "POST", ts.URL+"/api/v1/datasets/fig5/search", map[string]any{
			"algorithm": "ACQ", "names": []string{"A"}, "k": 2,
			"params": map[string]string{"variant": variant},
		}, &v)
		if len(v.Communities) != 1 || len(v.Communities[0].Vertices) != 3 {
			t.Fatalf("variant %s: %+v", variant, v)
		}
	}
	// Local accepts a budget override.
	var l v1SearchOut
	doJSON(t, "POST", ts.URL+"/api/v1/datasets/fig5/search", map[string]any{
		"algorithm": "Local", "names": []string{"A"}, "k": 2,
		"params": map[string]string{"budget": "64"},
	}, &l)
	if len(l.Communities) != 1 {
		t.Fatalf("Local budget: %+v", l)
	}
	// budget is not a Global param.
	wantEnvelope(t, "POST", ts.URL+"/api/v1/datasets/fig5/search",
		map[string]any{"algorithm": "Global", "names": []string{"A"}, "k": 2,
			"params": map[string]string{"budget": "64"}}, 400, "invalid_query")
}

func TestV1DetectPagination(t *testing.T) {
	_, ts := testServer(t)
	var full struct {
		Communities []struct {
			Vertices []int32 `json:"vertices"`
		} `json:"communities"`
		Total int `json:"total"`
	}
	doJSON(t, "POST", ts.URL+"/api/v1/datasets/fig5/detect", map[string]any{
		"algorithm": "CODICIL",
	}, &full)
	if full.Total == 0 || len(full.Communities) != full.Total {
		t.Fatalf("detect full = %+v", full)
	}
	var page struct {
		Communities []struct {
			Vertices []int32 `json:"vertices"`
		} `json:"communities"`
		Total int `json:"total"`
	}
	doJSON(t, "POST", ts.URL+"/api/v1/datasets/fig5/detect", map[string]any{
		"algorithm": "CODICIL", "limit": 1,
	}, &page)
	if page.Total != full.Total || len(page.Communities) != 1 {
		t.Fatalf("detect page = %+v", page)
	}
	wantEnvelope(t, "POST", ts.URL+"/api/v1/datasets/nope/detect", map[string]any{}, 404, "dataset_not_found")
}

func TestV1CompareAnalyzeDisplay(t *testing.T) {
	_, ts := testServer(t)
	var cmp struct {
		Rows []struct {
			Method string `json:"method"`
			Error  string `json:"error"`
		} `json:"rows"`
	}
	doJSON(t, "POST", ts.URL+"/api/v1/datasets/fig5/compare", map[string]any{
		"name": "A", "k": 2,
	}, &cmp)
	if len(cmp.Rows) != 4 {
		t.Fatalf("compare rows = %+v", cmp.Rows)
	}
	var analysis struct {
		CPJ float64 `json:"cpj"`
	}
	doJSON(t, "POST", ts.URL+"/api/v1/datasets/fig5/analyze", map[string]any{
		"vertices": []int32{0, 2, 3}, "query": 0,
	}, &analysis)
	if analysis.CPJ <= 0 {
		t.Fatalf("analysis = %+v", analysis)
	}
	var pl struct {
		Points []struct{ X, Y float64 } `json:"points"`
	}
	doJSON(t, "POST", ts.URL+"/api/v1/datasets/fig5/display", map[string]any{
		"vertices": []int32{0, 1, 2, 3}, "width": 100, "height": 100,
	}, &pl)
	if len(pl.Points) != 4 {
		t.Fatalf("placement = %+v", pl)
	}
	wantEnvelope(t, "POST", ts.URL+"/api/v1/datasets/fig5/analyze",
		map[string]any{"vertices": []int32{0}, "query": -1}, 400, "invalid_query")
}

// v1State mirrors api.ExploreState for decoding.
type v1State struct {
	ID          string  `json:"id"`
	K           int     `json:"k"`
	MaxK        int     `json:"maxK"`
	Steps       int     `json:"steps"`
	Ring        []int32 `json:"ring"`
	RingSize    int     `json:"ringSize"`
	Communities []struct {
		Vertices []int32 `json:"vertices"`
	} `json:"communities"`
}

func TestV1ExploreRoundTrip(t *testing.T) {
	s, ts := testServer(t)
	base := ts.URL + "/api/v1/datasets/fig5/explore"

	var st v1State
	resp := doJSON(t, "POST", base, map[string]any{"name": "A", "k": 2}, &st)
	if resp.StatusCode != 200 || st.ID == "" || st.K != 2 || st.RingSize != 5 {
		t.Fatalf("create: status %d state %+v", resp.StatusCode, st)
	}

	// Contract to k=3: the ring shrinks to the K4.
	var st3 v1State
	doJSON(t, "POST", base+"/"+st.ID+"/step", map[string]any{"action": "contract"}, &st3)
	if st3.K != 3 || st3.RingSize >= st.RingSize || st3.Steps != 1 {
		t.Fatalf("contract: %+v", st3)
	}
	in2 := map[int32]bool{}
	for _, v := range st.Ring {
		in2[v] = true
	}
	for _, v := range st3.Ring {
		if !in2[v] {
			t.Fatalf("ring at k=3 not nested in k=2: %v vs %v", st3.Ring, st.Ring)
		}
	}

	// Past the max: typed 400, session unmoved.
	wantEnvelope(t, "POST", base+"/"+st.ID+"/step", map[string]any{"action": "contract"}, 400, "invalid_query")

	// Expand back: the k=2 ring returns.
	var back v1State
	doJSON(t, "POST", base+"/"+st.ID+"/step", map[string]any{"action": "expand"}, &back)
	if back.K != 2 || back.RingSize != st.RingSize {
		t.Fatalf("expand: %+v", back)
	}

	// GET reads without stepping.
	var got v1State
	doJSON(t, "GET", base+"/"+st.ID, nil, &got)
	if got.K != 2 || got.Steps != 2 {
		t.Fatalf("get: %+v", got)
	}

	// Session stats are visible in /api/stats.
	snap := s.Stats()
	if snap.Explore.Active != 1 || snap.Explore.Created != 1 || snap.Explore.Steps != 2 {
		t.Fatalf("explore stats = %+v", snap.Explore)
	}

	// DELETE closes; the id is gone.
	var closed struct {
		Closed bool `json:"closed"`
	}
	doJSON(t, "DELETE", base+"/"+st.ID, nil, &closed)
	if !closed.Closed {
		t.Fatalf("close = %+v", closed)
	}
	wantEnvelope(t, "GET", base+"/"+st.ID, nil, 404, "session_not_found")
	if snap := s.Stats(); snap.Explore.Active != 0 || snap.Explore.Closed != 1 {
		t.Fatalf("explore stats after close = %+v", snap.Explore)
	}
}

func TestV1ExploreErrors(t *testing.T) {
	_, ts := testServer(t)
	wantEnvelope(t, "POST", ts.URL+"/api/v1/datasets/nope/explore",
		map[string]any{"name": "A", "k": 2}, 404, "dataset_not_found")
	wantEnvelope(t, "POST", ts.URL+"/api/v1/datasets/fig5/explore",
		map[string]any{"name": "ZZ", "k": 2}, 404, "vertex_not_found")
	wantEnvelope(t, "POST", ts.URL+"/api/v1/datasets/fig5/explore",
		map[string]any{"name": "A", "k": 9}, 400, "invalid_query")
	// Neither name nor vertex: rejected, never silently anchored at 0.
	wantEnvelope(t, "POST", ts.URL+"/api/v1/datasets/fig5/explore",
		map[string]any{"k": 2}, 400, "invalid_query")
	// vertex 0 explicitly is a legitimate anchor.
	var st v1State
	if resp := doJSON(t, "POST", ts.URL+"/api/v1/datasets/fig5/explore",
		map[string]any{"vertex": 0, "k": 2}, &st); resp.StatusCode != 200 {
		t.Fatalf("explicit vertex 0: status %d", resp.StatusCode)
	}
	wantEnvelope(t, "POST", ts.URL+"/api/v1/datasets/fig5/explore/nosuch/step",
		map[string]any{"action": "expand"}, 404, "session_not_found")
	wantEnvelope(t, "DELETE", ts.URL+"/api/v1/datasets/fig5/explore/nosuch", nil, 404, "session_not_found")
}

// slowCS is a test CS plugin that blocks until its context is canceled —
// the deterministic "search that outlives the deadline".
type slowCS struct{}

func (slowCS) Name() string { return "Slow" }

func (slowCS) Search(ctx context.Context, ds *api.Dataset, q api.Query) ([]api.Community, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestV1SearchTimeoutFreesSlot pins the worker limit to 1, sets a short
// search timeout, and fires a request at an algorithm that never returns on
// its own: the response must be a typed 504, the semaphore slot must be
// free again afterwards (a fast follow-up search succeeds), and the
// in-flight gauge must drop to zero.
func TestV1SearchTimeoutFreesSlot(t *testing.T) {
	exp := api.NewExplorer()
	if _, err := exp.AddGraph("fig5", gen.Figure5()); err != nil {
		t.Fatal(err)
	}
	exp.RegisterCS(slowCS{})
	s := New(exp, nil)
	s.SetSearchLimit(1)
	s.SetSearchTimeout(50 * time.Millisecond)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	start := time.Now()
	wantEnvelope(t, "POST", ts.URL+"/api/v1/datasets/fig5/search",
		map[string]any{"algorithm": "Slow", "names": []string{"A"}, "k": 2}, 504, "timeout")
	if lat := time.Since(start); lat > 2*time.Second {
		t.Fatalf("timed-out request took %v", lat)
	}
	if snap := s.Stats(); snap.SearchInFlight != 0 || snap.TimedOut == 0 {
		t.Fatalf("stats after timeout = %+v", snap)
	}

	// The single slot is free again: a normal search completes.
	var out v1SearchOut
	resp := doJSON(t, "POST", ts.URL+"/api/v1/datasets/fig5/search", map[string]any{
		"algorithm": "ACQ", "names": []string{"A"}, "k": 2,
	}, &out)
	if resp.StatusCode != 200 || len(out.Communities) != 1 {
		t.Fatalf("follow-up search: status %d out %+v", resp.StatusCode, out)
	}
}

// TestV1LegacyAliasParity: the flat routes and the v1 tree return the same
// vertex payloads and dataset listings — they delegate to the same cores.
func TestV1LegacyAliasParity(t *testing.T) {
	_, ts := testServer(t)
	var legacy, v1 map[string]any
	resp, err := http.Get(ts.URL + "/api/vertex?dataset=fig5&name=B")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&legacy); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	doJSON(t, "GET", ts.URL+"/api/v1/datasets/fig5/vertices/B", nil, &v1)
	if fmt.Sprint(legacy) != fmt.Sprint(v1) {
		t.Fatalf("vertex payloads differ:\nlegacy %v\nv1     %v", legacy, v1)
	}
}
