package server

// Batched-ingestion benchmark (BENCH_7.json): per-op cost of the full
// serving write path — engine apply plus durable journal append — with one
// op per call versus 64-op batches. This is the path the MutationBatcher
// fronts: each applyMutations call fsyncs one journal record whatever the
// batch size, so coalescing 64 concurrent single-op requests into one batch
// divides the dominant fsync cost by 64.
//
// Run: go test -bench Ingest -cpu 1,2 ./internal/server

import (
	"context"
	"fmt"
	"testing"

	"cexplorer/internal/api"
	"cexplorer/internal/gen"
)

// benchIngestOps emits n addEdge ops absent from g and mutually distinct,
// walking a deterministic prime stride so no randomness is needed.
func benchIngestOps(b *testing.B, g interface {
	N() int
	HasEdge(u, v int32) bool
}, n int) []api.Mutation {
	b.Helper()
	nv := int32(g.N())
	ops := make([]api.Mutation, 0, n)
	var u, v int32 = 0, 1
	for len(ops) < n {
		v += 7919
		if v >= nv {
			u++
			v = u + 1 + (v % 97)
			if u >= nv-1 {
				b.Fatalf("generated only %d of %d ops", len(ops), n)
			}
		}
		if u != v && v < nv && !g.HasEdge(u, v) {
			ops = append(ops, api.Mutation{Op: api.OpAddEdge, U: u, V: v})
		}
	}
	return ops
}

func benchIngest(b *testing.B, batchSize int) {
	exp := api.NewExplorer()
	g := gen.GNMAttributed(20000, 60000, 32, 1)
	if _, err := exp.AddGraph("bench", g); err != nil {
		b.Fatal(err)
	}
	s := New(exp, nil)
	if err := s.SetDataDir(b.TempDir()); err != nil {
		b.Fatal(err)
	}
	ops := benchIngestOps(b, g, b.N)
	ctx := context.Background()
	b.ResetTimer()
	for off := 0; off < len(ops); off += batchSize {
		end := min(off+batchSize, len(ops))
		res, err := s.applyMutations(ctx, "bench", ops[off:end])
		if err != nil {
			b.Fatal(fmt.Errorf("batch at %d: %w", off, err))
		}
		if !res.Journaled {
			b.Fatal("write path did not journal")
		}
	}
}

func BenchmarkIngestSingleOps(b *testing.B) { benchIngest(b, 1) }
func BenchmarkIngestBatched64(b *testing.B) { benchIngest(b, 64) }
