package server

import (
	"net/http/httptest"
	"os"
	"sync"
	"testing"

	"cexplorer/internal/api"
	"cexplorer/internal/gen"
)

func TestV1MutationsSingleAndBatch(t *testing.T) {
	s, ts := testServer(t)
	url := ts.URL + "/api/v1/datasets/fig5/mutations"

	// Figure5 has 10 vertices; {0,9} is absent in the fixture.
	var resp mutationResponse
	r := doJSON(t, "POST", url, map[string]any{"op": "addEdge", "u": 0, "v": 9}, &resp)
	if r.StatusCode != 200 {
		t.Fatalf("single op: status %d", r.StatusCode)
	}
	if resp.Version != 1 || resp.Applied != 1 || resp.Journaled {
		t.Fatalf("single op: %+v", resp)
	}

	r = doJSON(t, "POST", url, map[string]any{"mutations": []map[string]any{
		{"op": "removeEdge", "u": 0, "v": 9},
		{"op": "addVertex", "name": "newcomer", "keywords": []string{"fresh"}},
	}}, &resp)
	if r.StatusCode != 200 || resp.Version != 2 || resp.Applied != 2 {
		t.Fatalf("batch: status %d %+v", r.StatusCode, resp)
	}
	if resp.Vertices != 11 {
		t.Fatalf("vertex add not applied: %+v", resp)
	}

	// The dataset resource reports the new version.
	var info graphInfo
	doJSON(t, "GET", ts.URL+"/api/v1/datasets/fig5", nil, &info)
	if info.Version != 2 {
		t.Fatalf("dataset version = %d, want 2", info.Version)
	}

	// Mutation counters surface in /api/stats.
	st := s.Stats()
	if st.MutationBatches != 2 || st.MutationOps != 3 {
		t.Fatalf("stats: batches=%d ops=%d", st.MutationBatches, st.MutationOps)
	}
}

func TestV1MutationsTypedErrors(t *testing.T) {
	s, ts := testServer(t)
	url := ts.URL + "/api/v1/datasets/fig5/mutations"

	wantEnvelope(t, "POST", url, map[string]any{}, 400, "invalid_mutation")
	wantEnvelope(t, "POST", url, map[string]any{"op": "explode"}, 400, "invalid_mutation")
	wantEnvelope(t, "POST", url, map[string]any{"op": "addEdge", "u": 3, "v": 3}, 400, "invalid_mutation")
	wantEnvelope(t, "POST", url, map[string]any{"op": "removeEdge", "u": 0, "v": 9}, 409, "mutation_conflict")
	wantEnvelope(t, "POST", ts.URL+"/api/v1/datasets/nope/mutations",
		map[string]any{"op": "addVertex"}, 404, "dataset_not_found")
	// Both a batch and an inline op at once is ambiguous.
	wantEnvelope(t, "POST", url, map[string]any{
		"op": "addVertex", "mutations": []map[string]any{{"op": "addVertex"}},
	}, 400, "invalid_mutation")

	if st := s.Stats(); st.MutationErrors != 6 || st.MutationBatches != 0 {
		t.Fatalf("stats after rejections: %+v", st)
	}
}

// TestV1MutationsJournalAndWarmRestart is the durability loop: mutate a
// persisted dataset, kill the server, boot a fresh one over the same data
// directory, and find the mutations still there — replayed from the journal
// tail the snapshot predates.
func TestV1MutationsJournalAndWarmRestart(t *testing.T) {
	dir := t.TempDir()

	exp := api.NewExplorer()
	if _, err := exp.AddGraph("fig5", gen.Figure5()); err != nil {
		t.Fatal(err)
	}
	s := New(exp, t.Logf)
	if err := s.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	ds, _ := exp.Dataset("fig5")
	if _, err := s.PersistDataset(ds); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	url := ts.URL + "/api/v1/datasets/fig5/mutations"
	var resp mutationResponse
	doJSON(t, "POST", url, map[string]any{"op": "addEdge", "u": 0, "v": 9}, &resp)
	if !resp.Journaled || resp.Version != 1 {
		t.Fatalf("first mutation not journaled: %+v", resp)
	}
	doJSON(t, "POST", url, map[string]any{"mutations": []map[string]any{
		{"op": "addVertex", "name": "nova", "keywords": []string{"dyn"}},
	}}, &resp)
	if !resp.Journaled || resp.Version != 2 {
		t.Fatalf("second mutation not journaled: %+v", resp)
	}
	if _, err := os.Stat(journalPath(dir, "fig5")); err != nil {
		t.Fatalf("journal file missing: %v", err)
	}

	// Cold boot over the same catalog.
	exp2 := api.NewExplorer()
	s2 := New(exp2, t.Logf)
	if err := s2.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	if n, err := s2.LoadSnapshots(); err != nil || n != 1 {
		t.Fatalf("LoadSnapshots: n=%d err=%v", n, err)
	}
	ds2, ok := exp2.Dataset("fig5")
	if !ok {
		t.Fatal("dataset missing after restart")
	}
	if ds2.Version != 2 {
		t.Fatalf("restarted version = %d, want 2", ds2.Version)
	}
	if !ds2.Graph.HasEdge(0, 9) {
		t.Fatal("journaled edge lost across restart")
	}
	if ds2.Graph.N() != 11 {
		t.Fatalf("journaled vertex lost: n=%d", ds2.Graph.N())
	}
	if v, ok := ds2.Graph.VertexByName("nova"); !ok || int(v) != 10 {
		t.Fatalf("journaled vertex attributes lost: %d %v", v, ok)
	}
}

// TestV1MutationsCompaction drives the journal past its threshold and
// verifies the snapshot absorbs the mutations and the journal resets — and
// that a restart after compaction still lands on the right version.
func TestV1MutationsCompaction(t *testing.T) {
	dir := t.TempDir()
	exp := api.NewExplorer()
	if _, err := exp.AddGraph("fig5", gen.Figure5()); err != nil {
		t.Fatal(err)
	}
	s := New(exp, nil)
	if err := s.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	ds, _ := exp.Dataset("fig5")
	if _, err := s.PersistDataset(ds); err != nil {
		t.Fatal(err)
	}
	s.SetJournalCompactAfter(3)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	url := ts.URL + "/api/v1/datasets/fig5/mutations"

	var resp mutationResponse
	for i := 0; i < 2; i++ {
		doJSON(t, "POST", url, map[string]any{"op": "addVertex"}, &resp)
		if resp.Compacted {
			t.Fatalf("op %d compacted below threshold", i)
		}
	}
	doJSON(t, "POST", url, map[string]any{"op": "addVertex"}, &resp)
	if !resp.Compacted {
		t.Fatalf("threshold crossing did not compact: %+v", resp)
	}
	if _, err := os.Stat(journalPath(dir, "fig5")); !os.IsNotExist(err) {
		t.Fatalf("journal survived compaction: %v", err)
	}

	// Restart: the compacted snapshot alone must carry version 3.
	exp2 := api.NewExplorer()
	s2 := New(exp2, nil)
	if err := s2.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.LoadSnapshots(); err != nil {
		t.Fatal(err)
	}
	ds2, _ := exp2.Dataset("fig5")
	if ds2.Version != 3 || ds2.Graph.N() != 13 {
		t.Fatalf("after compacted restart: version=%d n=%d", ds2.Version, ds2.Graph.N())
	}
}

// TestV1MutationsConcurrentDurability hammers the mutation route from
// several goroutines with an aggressive compaction threshold, then cold
// boots over the catalog: every acknowledged (journaled or compacted)
// batch must survive — the invariant the journal lock exists to protect.
func TestV1MutationsConcurrentDurability(t *testing.T) {
	dir := t.TempDir()
	exp := api.NewExplorer()
	if _, err := exp.AddGraph("fig5", gen.Figure5()); err != nil {
		t.Fatal(err)
	}
	s := New(exp, nil)
	if err := s.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	ds, _ := exp.Dataset("fig5")
	if _, err := s.PersistDataset(ds); err != nil {
		t.Fatal(err)
	}
	s.SetJournalCompactAfter(2)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	url := ts.URL + "/api/v1/datasets/fig5/mutations"

	const workers, perWorker = 4, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				var resp mutationResponse
				r := doJSON(t, "POST", url, map[string]any{"op": "addVertex"}, &resp)
				if r.StatusCode != 200 {
					t.Errorf("status %d", r.StatusCode)
					return
				}
				if !resp.Journaled && !resp.Compacted {
					t.Errorf("acknowledged batch neither journaled nor compacted: %+v", resp)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	live, _ := exp.Dataset("fig5")
	wantN, wantV := live.Graph.N(), live.Version
	if wantV != workers*perWorker {
		t.Fatalf("live version %d, want %d", wantV, workers*perWorker)
	}

	exp2 := api.NewExplorer()
	s2 := New(exp2, nil)
	if err := s2.SetDataDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.LoadSnapshots(); err != nil {
		t.Fatal(err)
	}
	ds2, _ := exp2.Dataset("fig5")
	if ds2.Version != wantV || ds2.Graph.N() != wantN {
		t.Fatalf("restart lost acknowledged writes: version=%d n=%d, want version=%d n=%d",
			ds2.Version, ds2.Graph.N(), wantV, wantN)
	}
}

// TestV1MutationsPinnedSearch: a mutation between two searches must not
// disturb the first search's view — checked end to end over HTTP by racing
// nothing at all (the sequential contract): results reflect the version at
// request time.
func TestV1MutationsVersioningVisibleToSearch(t *testing.T) {
	_, ts := testServer(t)

	// Global community of vertex 0 at k=1 before and after adding edge {0,9}.
	search := func() int {
		var out struct {
			Communities []struct {
				Vertices []int32 `json:"vertices"`
			} `json:"communities"`
		}
		doJSON(t, "POST", ts.URL+"/api/v1/datasets/fig5/search",
			map[string]any{"algorithm": "Global", "vertices": []int32{0}, "k": 1}, &out)
		if len(out.Communities) == 0 {
			return 0
		}
		return len(out.Communities[0].Vertices)
	}
	before := search()
	var resp mutationResponse
	doJSON(t, "POST", ts.URL+"/api/v1/datasets/fig5/mutations",
		map[string]any{"op": "addVertex"}, &resp)
	doJSON(t, "POST", ts.URL+"/api/v1/datasets/fig5/mutations",
		map[string]any{"op": "addEdge", "u": 0, "v": int32(resp.Vertices - 1)}, &resp)
	after := search()
	if after != before+1 {
		t.Fatalf("search did not observe the new version: before=%d after=%d", before, after)
	}
}
