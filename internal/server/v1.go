package server

// The versioned, resource-oriented REST surface. Datasets are resources;
// searches, detections, comparisons, vertices, and exploration sessions
// are sub-resources of a dataset:
//
//	GET    /api/v1/datasets                         — list datasets
//	GET    /api/v1/datasets/{name}                  — one dataset
//	GET    /api/v1/datasets/{name}/vertices/{id}    — vertex by id or name
//	POST   /api/v1/datasets/{name}/mutations        — streaming graph edits
//	POST   /api/v1/datasets/{name}/search           — CS query (paginated)
//	POST   /api/v1/datasets/{name}/detect           — CD run (paginated)
//	POST   /api/v1/datasets/{name}/compare          — Figure-6 table
//	POST   /api/v1/datasets/{name}/analyze          — community metrics
//	POST   /api/v1/datasets/{name}/display          — community layout
//	POST   /api/v1/datasets/{name}/explore          — open a browse session
//	GET    /api/v1/datasets/{name}/explore/{id}     — session state
//	POST   /api/v1/datasets/{name}/explore/{id}/step — expand/contract/set k
//	DELETE /api/v1/datasets/{name}/explore/{id}     — close a session
//	DELETE /api/v1/datasets/{name}                  — drop a dataset (primary)
//	GET    /api/v1/algorithms                       — registered algorithms
//
// Community lists paginate with limit/offset and always report the total,
// and every failure arrives as the JSON error envelope {"error", "code"}
// mapped onto 404 / 400 / 499 / 504 by errStatus. The legacy flat routes
// delegate to the same handler cores, so both surfaces return identical
// results for identical queries.

import (
	"fmt"
	"net/http"
	"os"
	"strconv"
	"time"

	"cexplorer/internal/api"
)

func (s *Server) registerV1(mux *http.ServeMux) {
	mux.HandleFunc("GET /api/v1/datasets", s.v1ListDatasets)
	mux.HandleFunc("GET /api/v1/datasets/{name}", s.v1GetDataset)
	mux.HandleFunc("DELETE /api/v1/datasets/{name}", s.v1DeleteDataset)
	mux.HandleFunc("GET /api/v1/datasets/{name}/vertices/{id}", s.v1GetVertex)
	mux.HandleFunc("POST /api/v1/datasets/{name}/mutations", s.v1Mutations)
	mux.HandleFunc("POST /api/v1/datasets/{name}/search", s.v1Search)
	mux.HandleFunc("POST /api/v1/datasets/{name}/detect", s.v1Detect)
	mux.HandleFunc("POST /api/v1/datasets/{name}/compare", s.v1Compare)
	mux.HandleFunc("POST /api/v1/datasets/{name}/analyze", s.v1Analyze)
	mux.HandleFunc("POST /api/v1/datasets/{name}/display", s.v1Display)
	mux.HandleFunc("POST /api/v1/datasets/{name}/explore", s.v1ExploreCreate)
	mux.HandleFunc("GET /api/v1/datasets/{name}/explore/{id}", s.v1ExploreGet)
	mux.HandleFunc("POST /api/v1/datasets/{name}/explore/{id}/step", s.v1ExploreStep)
	mux.HandleFunc("DELETE /api/v1/datasets/{name}/explore/{id}", s.v1ExploreClose)
	mux.HandleFunc("GET /api/v1/algorithms", s.v1Algorithms)
}

func (s *Server) v1ListDatasets(w http.ResponseWriter, r *http.Request) {
	infos := s.datasetInfos()
	writeJSON(w, map[string]any{"datasets": infos, "total": len(infos)})
}

func (s *Server) v1GetDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ds, ok := s.exp.Dataset(name)
	if !ok {
		s.writeError(w, fmt.Errorf("%w: %q", api.ErrDatasetNotFound, name))
		return
	}
	writeJSON(w, s.datasetInfo(name, ds))
}

// v1DeleteDataset drops a dataset wholesale: registry, exploration
// sessions, cached results, catalog snapshot + journal, and the replication
// feed buffer. Parked journal long-polls wake and see 404 from then on, so
// replicas un-claim and drop the dataset too instead of serving a stale
// ghost forever. Replicas refuse the call — dataset lifecycle is the
// primary's to decide and replicate, never a per-node edit.
func (s *Server) v1DeleteDataset(w http.ResponseWriter, r *http.Request) {
	if s.fleetFence(w, r) || s.rejectReadOnly(w) {
		return
	}
	name := r.PathValue("name")
	if !s.exp.RemoveDataset(name) {
		s.writeError(w, fmt.Errorf("%w: %q", api.ErrDatasetNotFound, name))
		return
	}
	if f := s.feed(); f != nil {
		f.Reset(name)
	}
	if dir := s.DataDir(); dir != "" {
		s.journalMu.Lock()
		s.resetJournalLocked(name)
		if err := os.Remove(snapshotPath(dir, name)); err != nil && !os.IsNotExist(err) {
			s.logf("catalog: removing snapshot for %s: %v", name, err)
		}
		s.journalMu.Unlock()
	}
	s.logf("dataset %s deleted", name)
	writeJSON(w, map[string]any{"deleted": name})
}

// v1GetVertex resolves the {id} path segment as a vertex id when numeric,
// else as a vertex name — so both canonical resource links and
// human-friendly lookups work.
func (s *Server) v1GetVertex(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ds, ok := s.exp.Dataset(name)
	if !ok {
		s.writeError(w, fmt.Errorf("%w: %q", api.ErrDatasetNotFound, name))
		return
	}
	idStr := r.PathValue("id")
	var v int32
	if id, err := strconv.Atoi(idStr); err == nil {
		if id < 0 || id >= ds.Graph.N() {
			s.writeError(w, fmt.Errorf("%w: id %d", api.ErrVertexNotFound, id))
			return
		}
		v = int32(id)
	} else {
		var found bool
		v, found = ds.Graph.VertexByName(idStr)
		if !found {
			s.writeError(w, fmt.Errorf("%w: %q", api.ErrVertexNotFound, idStr))
			return
		}
	}
	writeJSON(w, s.vertexPayload(name, ds, v))
}

// pagedResponse is the v1 shape for community lists.
type pagedResponse struct {
	Communities any     `json:"communities"`
	Total       int     `json:"total"`
	Limit       int     `json:"limit"`
	Offset      int     `json:"offset"`
	ElapsedMS   float64 `json:"elapsedMs"`
}

func (s *Server) v1Search(w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	page, total, elapsed, err := s.execSearch(r, r.PathValue("name"), req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, pagedResponse{
		Communities: page, Total: total,
		Limit: req.Limit, Offset: req.Offset, ElapsedMS: msec(elapsed),
	})
}

func (s *Server) v1Detect(w http.ResponseWriter, r *http.Request) {
	var req detectRequest
	if !decodeBody(w, r, &req) {
		return
	}
	comms, elapsed, err := s.execDetect(r, r.PathValue("name"), req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	page, total := pageOf(comms, req.Limit, req.Offset)
	writeJSON(w, pagedResponse{
		Communities: page, Total: total,
		Limit: req.Limit, Offset: req.Offset, ElapsedMS: msec(elapsed),
	})
}

func (s *Server) v1Compare(w http.ResponseWriter, r *http.Request) {
	var req compareRequest
	if !decodeBody(w, r, &req) {
		return
	}
	s.execCompare(w, r, r.PathValue("name"), req)
}

func (s *Server) v1Analyze(w http.ResponseWriter, r *http.Request) {
	var req analyzeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	s.execAnalyze(w, r, r.PathValue("name"), req)
}

func (s *Server) v1Display(w http.ResponseWriter, r *http.Request) {
	var req displayRequest
	if !decodeBody(w, r, &req) {
		return
	}
	s.execDisplay(w, r, r.PathValue("name"), req)
}

func (s *Server) v1Algorithms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"cs": s.exp.CSAlgorithms(),
		"cd": s.exp.CDAlgorithms(),
	})
}

// --- exploration sessions: the paper's browse loop as sub-resources ---

type exploreCreateRequest struct {
	// Name or Vertex anchors the session (name wins when both are set).
	// Vertex is a pointer so an absent field is distinguishable from
	// vertex 0: a request with neither anchor is rejected, not silently
	// anchored at 0.
	Name     string   `json:"name,omitempty"`
	Vertex   *int32   `json:"vertex,omitempty"`
	K        int      `json:"k"`
	Keywords []string `json:"keywords,omitempty"`
}

type exploreStepRequest struct {
	// Action is "expand" (k-1), "contract" (k+1), or "set" (explicit K).
	Action string `json:"action"`
	K      int    `json:"k,omitempty"`
}

func (s *Server) v1ExploreCreate(w http.ResponseWriter, r *http.Request) {
	var req exploreCreateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	ctx, cancel := s.searchContext(r)
	defer cancel()
	dataset := r.PathValue("name")
	ds, ok := s.exp.Dataset(dataset)
	if !ok {
		s.writeError(w, fmt.Errorf("%w: %q", api.ErrDatasetNotFound, dataset))
		return
	}
	var v int32
	switch {
	case req.Name != "":
		var found bool
		v, found = ds.Graph.VertexByName(req.Name)
		if !found {
			s.writeError(w, fmt.Errorf("%w: %q", api.ErrVertexNotFound, req.Name))
			return
		}
	case req.Vertex != nil:
		v = *req.Vertex
	default:
		s.writeError(w, fmt.Errorf("%w: explore: no anchor vertex given (set name or vertex)", api.ErrInvalidQuery))
		return
	}
	// Session creation runs a search, so it pays for a worker slot like any
	// other search-class request.
	release, err := s.acquireSearchSlot(ctx)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer release()
	start := time.Now()
	st, err := s.exp.Explore(ctx, dataset, api.Query{Vertices: []int32{v}, K: req.K, Keywords: req.Keywords})
	elapsed := time.Since(start)
	s.stats.searchNanos.Add(elapsed.Nanoseconds())
	s.stats.searches.Add(1)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, st)
}

func (s *Server) v1ExploreGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.exp.ExploreGet(r.PathValue("name"), r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, st)
}

func (s *Server) v1ExploreStep(w http.ResponseWriter, r *http.Request) {
	var req exploreStepRequest
	if !decodeBody(w, r, &req) {
		return
	}
	ctx, cancel := s.searchContext(r)
	defer cancel()
	release, err := s.acquireSearchSlot(ctx)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer release()
	start := time.Now()
	st, err := s.exp.ExploreStep(ctx, r.PathValue("name"), r.PathValue("id"), req.Action, req.K)
	elapsed := time.Since(start)
	s.stats.searchNanos.Add(elapsed.Nanoseconds())
	s.stats.searches.Add(1)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, st)
}

func (s *Server) v1ExploreClose(w http.ResponseWriter, r *http.Request) {
	if err := s.exp.ExploreClose(r.PathValue("name"), r.PathValue("id")); err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, map[string]any{"closed": true})
}
