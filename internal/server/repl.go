package server

// Replication wiring (see internal/repl): a primary publishes every applied
// mutation batch into a repl.Feed and serves two shipping endpoints —
//
//	GET /api/v1/datasets/{name}/journal?fromSeq=N&epoch=E[&wait=20s][&maxRecords=512]
//	GET /api/v1/datasets/{name}/snapshot
//
// — while a replica applies the tailed records through Explorer.Mutate and
// guards reads with the X-CExplorer-Min-Version gate. Both roles surface
// their counters in /api/stats and their per-dataset positions in the
// dataset resources.

import (
	"context"
	"net/http"
	"strconv"
	"time"

	"cexplorer/internal/api"
	"cexplorer/internal/repl"
)

// maxShipWait caps a journal long-poll; it must stay under ListenAndServe's
// 60s WriteTimeout or parked polls would be killed mid-response.
const maxShipWait = 30 * time.Second

// defaultShipRecords bounds one shipping response when the client does not
// say; maxShipRecords bounds what it may ask for.
const (
	defaultShipRecords = 512
	maxShipRecords     = 4096
)

// ReplicaSource is what a replica-role server needs from its tailer (the
// concrete type is *repl.Replica; the seam keeps tests light).
type ReplicaSource interface {
	WaitVersion(ctx context.Context, dataset string, version uint64) error
	Status(dataset string) (repl.DatasetStatus, bool)
	Stats() repl.ReplicaStats
	Primary() string
	// Retarget re-points the tailer at a new primary (the promotion
	// protocol's re-target step); tailers re-bootstrap from it.
	Retarget(primaryURL string)
}

// EnableReplicationPrimary makes this server a replication primary: every
// applied mutation batch (direct, batched, or journal-replayed) is
// published into the returned feed, and Handler registers the
// journal/snapshot shipping endpoints. Call before Handler.
func (s *Server) EnableReplicationPrimary(opt repl.FeedOptions) *repl.Feed {
	feed := repl.NewFeed(func(name string) (uint64, bool) {
		ds, ok := s.exp.Dataset(name)
		if !ok {
			return 0, false
		}
		return ds.Version, true
	}, opt)
	s.exp.SetMutateHook(func(name string, res *api.MutationResult, ops []api.Mutation) {
		feed.Publish(name, res.Version, repl.ToJournalOps(ops))
	})
	s.mu.Lock()
	s.role = "primary"
	s.replFeed = feed
	if s.fleetEpoch == 0 {
		// A primary is fleet epoch 1 by definition; promotions go up from
		// here. (A promoted replica sets its epoch explicitly afterward.)
		s.fleetEpoch = 1
	}
	s.mu.Unlock()
	return feed
}

// EnableReplicationReplica makes this server a read-only replica: mutations
// and uploads answer 403 read_only, and dataset reads carrying
// X-CExplorer-Min-Version wait up to maxWait for the tailer to catch up
// before answering 503 replica_lagging. Call before Handler; run the
// tailer (repl.Replica.Run) separately.
func (s *Server) EnableReplicationReplica(src ReplicaSource, maxWait time.Duration) {
	if maxWait <= 0 {
		maxWait = 2 * time.Second
	}
	s.mu.Lock()
	s.role = "replica"
	s.replSrc = src
	s.replicaWait = maxWait
	s.mu.Unlock()
}

// Role reports the replication role: "" (standalone), "primary", or
// "replica".
func (s *Server) Role() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.role
}

func (s *Server) feed() *repl.Feed {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.replFeed
}

func (s *Server) replicaSource() (ReplicaSource, time.Duration) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.replSrc, s.replicaWait
}

// rejectReadOnly answers 403 read_only on a replica; true when handled.
func (s *Server) rejectReadOnly(w http.ResponseWriter) bool {
	if src, _ := s.replicaSource(); src == nil {
		return false
	}
	writeEnvelope(w, http.StatusForbidden,
		"replica is read-only: send writes to the primary (or through the router)", repl.CodeReadOnly)
	return true
}

// registerRepl adds the replication and fleet routes to the v1 tree. The
// shipping endpoints register unconditionally — roles change at runtime now
// (promotion, demotion), so a node without a feed answers 503 no_primary
// (retryable: a tailing replica backs off and retries, and succeeds once
// this node is promoted) rather than being a route-table hole.
func (s *Server) registerRepl(mux *http.ServeMux) {
	mux.HandleFunc("GET /api/v1/datasets/{name}/journal", s.v1JournalShip)
	mux.HandleFunc("GET /api/v1/datasets/{name}/snapshot", s.v1SnapshotShip)
	mux.HandleFunc("GET /api/v1/health", s.v1Health)
	mux.HandleFunc("POST /api/v1/promote", s.v1Promote)
	mux.HandleFunc("POST /api/v1/demote", s.v1Demote)
	mux.HandleFunc("POST /api/v1/retarget", s.v1Retarget)
}

// requireFeed answers 503 no_primary when this node hosts no feed (it is a
// replica or was demoted); true when the request may proceed.
func (s *Server) requireFeed(w http.ResponseWriter) (*repl.Feed, bool) {
	feed := s.feed()
	if feed == nil {
		writeEnvelope(w, http.StatusServiceUnavailable,
			"this node hosts no journal feed (not a primary)", repl.CodeNoPrimary)
		return nil, false
	}
	return feed, true
}

// minVersionGate is the replica's read-your-writes middleware: a dataset
// read carrying X-CExplorer-Min-Version blocks until the tailer has applied
// that version, else answers 503 replica_lagging (which the router treats
// as "forward to the primary"). Standalone and primary servers serve the
// newest version by construction, so the gate is a no-op there.
func (s *Server) minVersionGate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		src, maxWait := s.replicaSource()
		hdr := r.Header.Get(repl.HeaderMinVersion)
		if src == nil || hdr == "" {
			next.ServeHTTP(w, r)
			return
		}
		name := repl.DatasetFromPath(r.URL.Path)
		if name == "" {
			next.ServeHTTP(w, r)
			return
		}
		want, err := strconv.ParseUint(hdr, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad %s header: %v", repl.HeaderMinVersion, err)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), maxWait)
		err = src.WaitVersion(ctx, name, want)
		cancel()
		if err != nil {
			if st, ok := src.Status(name); ok {
				w.Header().Set(repl.HeaderHeadSeq, strconv.FormatUint(st.AppliedSeq, 10))
			}
			w.Header().Set("Retry-After", "1")
			writeEnvelope(w, http.StatusServiceUnavailable,
				"replica has not applied version "+hdr+" yet", repl.CodeReplicaLagging)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// v1JournalShip serves framed journal records from the feed: the body is a
// concatenation of CXJRNL frames starting at fromSeq, or — when the cursor
// is at the head and wait > 0 — a long-poll that returns as soon as a batch
// is published. A cursor the feed cannot serve contiguously answers 409
// epoch_fenced: throw away the position and re-bootstrap from the snapshot
// endpoint.
func (s *Server) v1JournalShip(w http.ResponseWriter, r *http.Request) {
	feed, ok := s.requireFeed(w)
	if !ok {
		return
	}
	name := r.PathValue("name")
	if _, ok := s.exp.Dataset(name); !ok {
		writeEnvelope(w, http.StatusNotFound, "dataset not found: "+name, "dataset_not_found")
		return
	}
	q := r.URL.Query()
	fromSeq, err := strconv.ParseUint(q.Get("fromSeq"), 10, 64)
	if err != nil || fromSeq == 0 {
		httpError(w, http.StatusBadRequest, "fromSeq must be a positive integer")
		return
	}
	var epoch uint64
	if v := q.Get("epoch"); v != "" {
		if epoch, err = strconv.ParseUint(v, 10, 64); err != nil {
			httpError(w, http.StatusBadRequest, "bad epoch: %v", err)
			return
		}
	}
	var wait time.Duration
	if v := q.Get("wait"); v != "" {
		if wait, err = time.ParseDuration(v); err != nil {
			httpError(w, http.StatusBadRequest, "bad wait: %v", err)
			return
		}
		wait = min(wait, maxShipWait)
	}
	maxRecords := defaultShipRecords
	if v := q.Get("maxRecords"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, "bad maxRecords")
			return
		}
		maxRecords = min(n, maxShipRecords)
	}
	res, ok := feed.Ship(r.Context(), name, epoch, fromSeq, maxRecords, 0, wait)
	if !ok {
		writeEnvelope(w, http.StatusNotFound, "dataset not found: "+name, "dataset_not_found")
		return
	}
	h := w.Header()
	h.Set(repl.HeaderEpoch, strconv.FormatUint(res.Epoch, 10))
	h.Set(repl.HeaderBaseSeq, strconv.FormatUint(res.Base, 10))
	h.Set(repl.HeaderHeadSeq, strconv.FormatUint(res.Head, 10))
	if res.Fenced {
		writeEnvelope(w, http.StatusConflict,
			"cursor cannot be served contiguously (epoch or sequence out of window): re-bootstrap from the snapshot endpoint",
			repl.CodeEpochFenced)
		return
	}
	h.Set("Content-Type", repl.ContentTypeJournal)
	var sent int64
	for _, frame := range res.Frames {
		n, err := w.Write(frame)
		sent += int64(n)
		if err != nil {
			break
		}
	}
	s.stats.replShipRequests.Add(1)
	s.stats.replShipBytes.Add(sent)
}

// v1SnapshotShip streams the dataset's resident-index snapshot — the
// replica bootstrap image — stamped with the epoch and Version the stream
// represents. The epoch is read before and after fetching the dataset so a
// concurrent re-upload cannot pair the new lineage's bytes with the old
// lineage's epoch (or vice versa); a mismatch simply retries.
func (s *Server) v1SnapshotShip(w http.ResponseWriter, r *http.Request) {
	feed, ok := s.requireFeed(w)
	if !ok {
		return
	}
	name := r.PathValue("name")
	var (
		ds    *api.Dataset
		epoch uint64
	)
	for {
		e1, ok := feed.Epoch(name)
		if !ok {
			writeEnvelope(w, http.StatusNotFound, "dataset not found: "+name, "dataset_not_found")
			return
		}
		ds, ok = s.exp.Dataset(name)
		if !ok {
			writeEnvelope(w, http.StatusNotFound, "dataset not found: "+name, "dataset_not_found")
			return
		}
		e2, ok := feed.Epoch(name)
		if ok && e1 == e2 {
			epoch = e1
			break
		}
	}
	unpin, err := ds.Pin()
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer unpin()
	h := w.Header()
	h.Set(repl.HeaderEpoch, strconv.FormatUint(epoch, 10))
	h.Set(repl.HeaderVersion, strconv.FormatUint(ds.Version, 10))
	h.Set("Content-Type", "application/octet-stream")
	n, err := ds.WriteResidentSnapshot(w)
	if err != nil {
		// Headers are gone; all we can do is log and let the replica's
		// decoder reject the truncated stream.
		s.logf("replication: snapshot ship %s: %v", name, err)
	}
	s.stats.replSnapshotShips.Add(1)
	s.stats.replSnapshotBytes.Add(n)
}

// ReplInfo is the replication block of /api/stats.
type ReplInfo struct {
	Role string `json:"role"`
	// FleetEpoch is the promotion counter; Promotions/Demotions count this
	// node's role transitions since boot.
	FleetEpoch uint64 `json:"fleetEpoch,omitempty"`
	Promotions int64  `json:"promotions,omitempty"`
	Demotions  int64  `json:"demotions,omitempty"`
	// Primary-side: the feed counters plus bootstrap-snapshot traffic.
	Feed              *repl.FeedStats `json:"feed,omitempty"`
	ShipRequests      int64           `json:"shipRequests,omitempty"`
	ShipBytes         int64           `json:"shipBytes,omitempty"`
	SnapshotShips     int64           `json:"snapshotShips,omitempty"`
	SnapshotShipBytes int64           `json:"snapshotShipBytes,omitempty"`
	// Replica-side: the tailer counters.
	Replica *repl.ReplicaStats `json:"replica,omitempty"`
}

// replInfo builds the stats block; nil for a standalone server.
func (s *Server) replInfo() *ReplInfo {
	switch s.Role() {
	case "primary":
		fs := s.feed().Stats()
		return &ReplInfo{
			Role:              "primary",
			FleetEpoch:        s.FleetEpoch(),
			Promotions:        s.stats.promotions.Load(),
			Demotions:         s.stats.demotions.Load(),
			Feed:              &fs,
			ShipRequests:      s.stats.replShipRequests.Load(),
			ShipBytes:         s.stats.replShipBytes.Load(),
			SnapshotShips:     s.stats.replSnapshotShips.Load(),
			SnapshotShipBytes: s.stats.replSnapshotBytes.Load(),
		}
	case "replica":
		src, _ := s.replicaSource()
		rs := src.Stats()
		return &ReplInfo{
			Role:       "replica",
			FleetEpoch: s.FleetEpoch(),
			Promotions: s.stats.promotions.Load(),
			Demotions:  s.stats.demotions.Load(),
			Replica:    &rs,
		}
	default:
		return nil
	}
}

// datasetRepl is the per-dataset replication block of dataset resources.
type datasetRepl struct {
	Role  string `json:"role"`
	Epoch uint64 `json:"epoch,omitempty"`
	// AppliedSeq is the newest sequence (== Version) this node has applied:
	// the head on a primary, the tail position on a replica.
	AppliedSeq uint64 `json:"appliedSeq"`
	// BaseSeq (primary) is the oldest sequence still in the shipping
	// buffer; HeadSeq (replica) the last observed primary head, and
	// ReplicaLag = HeadSeq − AppliedSeq.
	BaseSeq    uint64 `json:"baseSeq,omitempty"`
	HeadSeq    uint64 `json:"headSeq,omitempty"`
	ReplicaLag uint64 `json:"replicaLag"`
	// Phase (replica) is bootstrapping | tailing | degraded.
	Phase string `json:"phase,omitempty"`
}

// datasetRepl builds the per-dataset block; nil for a standalone server or
// a replica dataset the tailer has not claimed.
func (s *Server) datasetReplInfo(name string, ds *api.Dataset) *datasetRepl {
	switch s.Role() {
	case "primary":
		info := &datasetRepl{Role: "primary", AppliedSeq: ds.Version}
		if st, ok := s.feed().Status(name); ok {
			info.Epoch = st.Epoch
			info.BaseSeq = st.Base
			info.AppliedSeq = st.Head
		}
		return info
	case "replica":
		src, _ := s.replicaSource()
		st, ok := src.Status(name)
		if !ok {
			return &datasetRepl{Role: "replica", AppliedSeq: ds.Version, Phase: "unclaimed"}
		}
		info := &datasetRepl{
			Role:       "replica",
			Epoch:      st.Epoch,
			AppliedSeq: st.AppliedSeq,
			HeadSeq:    st.HeadSeq,
			Phase:      st.Phase,
		}
		if st.HeadSeq > st.AppliedSeq {
			info.ReplicaLag = st.HeadSeq - st.AppliedSeq
		}
		return info
	default:
		return nil
	}
}
