package server

// The one home of the HTTP plumbing shared by the legacy flat routes and
// the /api/v1 tree: the JSON error envelope, status mapping for typed API
// errors, response encoding, request decoding, and list pagination. Both
// route families funnel through these helpers, so the two surfaces cannot
// drift apart in how they report failures or slice pages.

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"time"

	"cexplorer/internal/api"
)

// StatusClientClosedRequest is the (de facto, nginx-originated) status for
// a request whose client went away before the response: our mapping for
// api.ErrCanceled.
const StatusClientClosedRequest = 499

// errStatus maps a typed API error to its HTTP status.
func errStatus(err error) int {
	switch {
	case errors.Is(err, api.ErrDatasetNotFound),
		errors.Is(err, api.ErrVertexNotFound),
		errors.Is(err, api.ErrSessionNotFound):
		return http.StatusNotFound
	case errors.Is(err, api.ErrUnknownAlgorithm),
		errors.Is(err, api.ErrInvalidQuery),
		errors.Is(err, api.ErrInvalidMutation):
		return http.StatusBadRequest
	case errors.Is(err, api.ErrMutationConflict):
		return http.StatusConflict
	case errors.Is(err, api.ErrOverloaded):
		// Admission control shed the request: the dataset is at its
		// in-flight computation bound. Retryable — unlike 503, the server
		// is healthy, just protecting its latency under overload.
		return http.StatusTooManyRequests
	case errors.Is(err, api.ErrCanceled):
		return StatusClientClosedRequest
	case errors.Is(err, api.ErrTimeout):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// writeEnvelope renders the single JSON error envelope every failure on
// both route families arrives in:
//
//	{"error": "<human message>", "code": "<machine code>"}
//
// The "error" field stays a plain string for compatibility with pre-v1
// clients (and the embedded UI) that surface it directly.
func writeEnvelope(w http.ResponseWriter, status int, msg, code string) {
	w.Header().Set("Content-Type", "application/json")
	// Every retryable degradation (429 overloaded, 503 replica_lagging /
	// no_primary / unavailable) carries Retry-After, so well-behaved clients
	// back off instead of hammering a node that is protecting itself.
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		if w.Header().Get("Retry-After") == "" {
			w.Header().Set("Retry-After", "1")
		}
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg, "code": code})
}

// httpError is the envelope writer for handler-level failures that carry no
// typed error (malformed bodies, upload validation); the code is derived
// from the status.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	c := "internal"
	switch code {
	case http.StatusBadRequest:
		c = "bad_request"
	case http.StatusNotFound:
		c = "not_found"
	case http.StatusServiceUnavailable:
		c = "unavailable"
	}
	writeEnvelope(w, code, fmt.Sprintf(format, args...), c)
}

// writeJSON encodes a success payload.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encoding response: %v", err)
	}
}

// decodeBody decodes a JSON request body into v, answering the envelope's
// 400 itself on failure.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return false
	}
	return true
}

// pageOf slices list to the (limit, offset) window and reports the total.
// limit ≤ 0 means "everything after offset"; a negative offset is treated
// as 0; an offset past the end yields an empty page.
func pageOf[T any](list []T, limit, offset int) ([]T, int) {
	total := len(list)
	if offset < 0 {
		offset = 0
	}
	if offset > total {
		offset = total
	}
	list = list[offset:]
	if limit > 0 && len(list) > limit {
		list = list[:limit]
	}
	return list, total
}

// msec renders a duration as fractional milliseconds for JSON payloads.
func msec(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
