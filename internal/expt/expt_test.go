package expt

import (
	"bytes"
	"strings"
	"testing"

	"cexplorer/internal/gen"
)

// The harness itself gets a smoke test at small scale so a broken
// experiment fails fast rather than only in the (slow) bench run.

func smallEnv(t testing.TB) *Env {
	t.Helper()
	cfg := gen.SmallDBLPConfig()
	return NewEnv(cfg)
}

func TestE1Output(t *testing.T) {
	var buf bytes.Buffer
	if err := E1Figure5(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"10 vertices, 11 edges",
		"core=0: {J}",
		"core=3: {A,B,C,D}",
		"{A,C,D} sharing {x,y}",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("E1 output missing %q:\n%s", want, out)
		}
	}
}

func TestE2E3Rows(t *testing.T) {
	env := smallEnv(t)
	var buf bytes.Buffer
	rows, err := E2Fig6aTable(&buf, env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	methods := map[string]Fig6aRow{}
	for _, r := range rows {
		methods[r.Method] = r
	}
	for _, m := range []string{"Global", "Local", "CODICIL", "ACQ"} {
		if _, ok := methods[m]; !ok {
			t.Fatalf("missing method %s", m)
		}
	}
	// The Figure-6a shape: Global's community is the largest.
	if g, a := methods["Global"], methods["ACQ"]; g.Communities > 0 && a.Communities > 0 {
		if g.AvgVertices < a.AvgVertices {
			t.Fatalf("Global avg vertices %.0f < ACQ %.0f", g.AvgVertices, a.AvgVertices)
		}
	}
	E3QualityBars(&buf, rows)
	if !strings.Contains(buf.String(), "CPJ") {
		t.Fatal("E3 output missing CPJ bars")
	}
}

func TestE4E9E10(t *testing.T) {
	env := smallEnv(t)
	var buf bytes.Buffer
	if err := E4Exploration(&buf, env); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "community of") {
		t.Fatalf("E4 output: %s", buf.String())
	}
	buf.Reset()
	if err := E9Visual(&buf, env); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := E10APIRoundTrip(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "display:") {
		t.Fatalf("E10 output: %s", buf.String())
	}
}

func TestE5SweepShape(t *testing.T) {
	env := smallEnv(t)
	var buf bytes.Buffer
	rows, err := E5ACQAlgorithms(&buf, env, []int{2, 4}, []int32{3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 2 sizes × 1 k × 4 algorithms
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	// Basic's work grows with |S| (exponential enumeration); at tiny |S| it
	// can beat the pruned algorithms, which pay a fixed singleton
	// pre-filter, so compare Basic against itself across sizes.
	var basic2, basic4 int
	for _, r := range rows {
		if r.Algorithm == "Basic" {
			switch r.SLen {
			case 2:
				basic2 = r.Verifications
			case 4:
				basic4 = r.Verifications
			}
		}
		if r.Verifications <= 0 {
			t.Fatalf("row %+v has no verifications", r)
		}
	}
	if basic4 < basic2 {
		t.Fatalf("Basic verifications fell from %d (|S|=2) to %d (|S|=4)", basic2, basic4)
	}
}

func TestE6E7E8Ablations(t *testing.T) {
	env := smallEnv(t)
	var buf bytes.Buffer
	E6CLTreeScaling(&buf, []int{500, 1000})
	if !strings.Contains(buf.String(), "bytes/n") {
		t.Fatal("E6 output malformed")
	}
	buf.Reset()
	if err := E7PaperScale(&buf, env, 3); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	E8GlobalVsLocal(&buf, env)
	if !strings.Contains(buf.String(), "Global") {
		t.Fatal("E8 output malformed")
	}
	buf.Reset()
	if err := AblationIndexVsNoIndex(&buf, env, 4); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	AblationCoreDecomposition(&buf, 2000)
	AblationLayout(&buf, []int{100})
	AblationCodicilSparsify(&buf, env)
	if !strings.Contains(buf.String(), "sparsify") {
		t.Fatal("ablation output malformed")
	}
}

func TestHubQuery(t *testing.T) {
	env := smallEnv(t)
	q, k := env.HubQuery()
	if q < 0 || int(q) >= env.DBLP.Graph.N() {
		t.Fatalf("hub query %d out of range", q)
	}
	if k < 1 {
		t.Fatalf("hub k = %d", k)
	}
	if env.Core[q] < k {
		t.Fatalf("hub core %d < k %d", env.Core[q], k)
	}
}
