// Package expt is the experiment harness: one function per table/figure of
// the paper (see DESIGN.md §4 for the experiment index E1–E10). Both
// bench_test.go and cmd/experiments call these, so EXPERIMENTS.md and the
// benchmark output always agree.
package expt

import (
	"context"
	"fmt"
	"io"
	"slices"
	"strings"
	"time"

	"cexplorer/internal/api"
	"cexplorer/internal/cltree"
	"cexplorer/internal/codicil"
	"cexplorer/internal/core"
	"cexplorer/internal/csearch"
	"cexplorer/internal/gen"
	"cexplorer/internal/graph"
	"cexplorer/internal/kcore"
	"cexplorer/internal/layout"
	"cexplorer/internal/metrics"
)

// Env carries the shared dataset so experiments reuse one generation.
type Env struct {
	DBLP *gen.DBLP
	Tree *cltree.Tree
	Core []int32
}

// NewEnv generates the benchmark dataset and indexes once.
func NewEnv(cfg gen.DBLPConfig) *Env {
	d := gen.GenerateDBLP(cfg)
	t := cltree.Build(d.Graph)
	return &Env{DBLP: d, Tree: t, Core: t.CoreNumbers()}
}

// HubQuery returns the canonical demo query: the highest-core famous author
// ("jim gray" in the walkthrough) and a k it can satisfy.
func (e *Env) HubQuery() (q int32, k int32) {
	g := e.DBLP.Graph
	best, bestCore := int32(0), int32(-1)
	for i := 0; i < gen.NumFamousAuthors(); i++ {
		if v, ok := g.VertexByName(gen.FamousAuthor(i)); ok {
			if e.Core[v] > bestCore {
				best, bestCore = v, e.Core[v]
			}
		}
	}
	k = 4
	if bestCore < k {
		k = bestCore
	}
	return best, k
}

// E1Figure5 reproduces the paper's worked example (Figure 5): the graph,
// its CL-tree, and the ACQ query (q=A, k=2, S={w,x,y}) → {A,C,D} sharing
// {x,y}.
func E1Figure5(w io.Writer) error {
	g := gen.Figure5()
	tr := cltree.Build(g)
	fmt.Fprintf(w, "E1  Figure 5 worked example\n")
	fmt.Fprintf(w, "graph: %d vertices, %d edges (paper: 10, 11)\n", g.N(), g.M())
	fmt.Fprintf(w, "CL-tree: %d nodes, depth %d\n", tr.NumNodes(), tr.Depth())
	// Print the tree level by level, as in Figure 5(b).
	var walk func(n *cltree.Node, indent string)
	walk = func(n *cltree.Node, indent string) {
		names := make([]string, 0, len(n.Vertices))
		for _, v := range n.Vertices {
			names = append(names, g.Name(v))
		}
		fmt.Fprintf(w, "%score=%d: {%s}\n", indent, n.Core, strings.Join(names, ","))
		for _, ch := range n.Children {
			walk(ch, indent+"  ")
		}
	}
	walk(tr.Root(), "  ")

	eng := core.NewEngine(tr)
	S := []int32{}
	for _, kw := range []string{"w", "x", "y"} {
		id, _ := g.Vocab().ID(kw)
		S = append(S, id)
	}
	slices.Sort(S)
	res, err := eng.Search(0, 2, S, core.Dec)
	if err != nil {
		return err
	}
	for _, c := range res {
		names := make([]string, 0, len(c.Vertices))
		for _, v := range c.Vertices {
			names = append(names, g.Name(v))
		}
		fmt.Fprintf(w, "ACQ(q=A, k=2, S={w,x,y}) -> {%s} sharing {%s}  (paper: {A,C,D} sharing {x,y})\n",
			strings.Join(names, ","), strings.Join(g.Vocab().Words(c.SharedKeywords), ","))
	}
	return nil
}

// Fig6aRow is one row of the Figure 6(a) table.
type Fig6aRow struct {
	Method      string
	Communities int
	AvgVertices float64
	AvgEdges    float64
	AvgDegree   float64
	CPJ         float64
	CMF         float64
	Elapsed     time.Duration
}

// E2Fig6aTable runs Global, Local, CODICIL, and ACQ for the hub query and
// prints the statistics table of Figure 6(a).
func E2Fig6aTable(w io.Writer, env *Env) ([]Fig6aRow, error) {
	g := env.DBLP.Graph
	q, k := env.HubQuery()
	fmt.Fprintf(w, "E2  Figure 6(a) statistics table — query %q, degree ≥ %d, graph %dv/%de\n",
		g.Name(q), k, g.N(), g.M())
	rows := make([]Fig6aRow, 0, 4)

	addRow := func(method string, comms [][]int32, elapsed time.Duration) {
		row := Fig6aRow{Method: method, Communities: len(comms), Elapsed: elapsed}
		for _, c := range comms {
			st := metrics.Stats(g, c)
			row.AvgVertices += float64(st.Vertices)
			row.AvgEdges += float64(st.Edges)
			row.AvgDegree += st.AvgDegree
			row.CPJ += metrics.CPJ(g, c)
			row.CMF += metrics.CMF(g, c, q)
		}
		if len(comms) > 0 {
			n := float64(len(comms))
			row.AvgVertices /= n
			row.AvgEdges /= n
			row.AvgDegree /= n
			row.CPJ /= n
			row.CMF /= n
		}
		rows = append(rows, row)
	}

	start := time.Now()
	gr := csearch.Global(g, env.Core, q, k)
	var globalComms [][]int32
	if gr != nil {
		globalComms = [][]int32{gr.Vertices}
	}
	addRow("Global", globalComms, time.Since(start))

	start = time.Now()
	lr := csearch.Local(g, q, k, csearch.LocalOptions{})
	var localComms [][]int32
	if lr != nil {
		localComms = [][]int32{lr.Vertices}
	}
	addRow("Local", localComms, time.Since(start))

	start = time.Now()
	cd := codicil.Detect(g, codicil.Options{Seed: 1})
	var codicilComms [][]int32
	codicilComms = append(codicilComms, cd.CommunityOf(q))
	addRow("CODICIL", codicilComms, time.Since(start))

	start = time.Now()
	eng := core.NewEngine(env.Tree)
	acq, err := eng.Search(q, k, nil, core.Dec)
	if err != nil {
		return nil, err
	}
	var acqComms [][]int32
	for _, c := range acq {
		acqComms = append(acqComms, c.Vertices)
	}
	addRow("ACQ", acqComms, time.Since(start))

	fmt.Fprintf(w, "%-8s %12s %9s %7s %7s %7s %7s %10s\n",
		"Method", "Communities", "Vertices", "Edges", "Degree", "CPJ", "CMF", "Time")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %12d %9.1f %7.1f %7.1f %7.3f %7.3f %10s\n",
			r.Method, r.Communities, r.AvgVertices, r.AvgEdges, r.AvgDegree, r.CPJ, r.CMF, r.Elapsed.Round(time.Microsecond))
	}
	return rows, nil
}

// E3QualityBars prints the CPJ/CMF bar chart of Figure 6(a) in ASCII.
func E3QualityBars(w io.Writer, rows []Fig6aRow) {
	fmt.Fprintf(w, "E3  Figure 6(a) quality bars (CPJ, CMF)\n")
	bar := func(v float64) string {
		n := int(v * 60)
		if n > 60 {
			n = 60
		}
		return strings.Repeat("#", n)
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s CPJ %.3f |%s\n", r.Method, r.CPJ, bar(r.CPJ))
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s CMF %.3f |%s\n", r.Method, r.CMF, bar(r.CMF))
	}
}

// E4Exploration scripts the Figures 1–2 scenario: search an author, show
// the community + theme, open a member profile, continue from there.
func E4Exploration(w io.Writer, env *Env) error {
	g := env.DBLP.Graph
	q, k := env.HubQuery()
	fmt.Fprintf(w, "E4  Exploration scenario (Figures 1-2)\n")
	eng := core.NewEngine(env.Tree)
	res, err := eng.Search(q, k, nil, core.Dec)
	if err != nil {
		return err
	}
	if len(res) == 0 {
		fmt.Fprintf(w, "no community for %q at k=%d\n", g.Name(q), k)
		return nil
	}
	c := res[0]
	fmt.Fprintf(w, "query %q (degree %d): community of %d members\n", g.Name(q), g.Degree(q), len(c.Vertices))
	fmt.Fprintf(w, "theme: %s\n", strings.Join(metrics.Theme(g, c.Vertices, 5), ", "))
	// Profile drill-down: first other member with a profile.
	for _, v := range c.Vertices {
		if v == q {
			continue
		}
		if p, ok := env.DBLP.Profiles[v]; ok {
			fmt.Fprintf(w, "profile of %q: areas=%v institutes=%v\n", p.Name, p.Areas, p.Institutes)
			// Continue exploring from that member.
			res2, err := eng.Search(v, k, nil, core.Dec)
			if err != nil {
				return err
			}
			if len(res2) > 0 {
				fmt.Fprintf(w, "follow-on community of %q: %d members\n", p.Name, len(res2[0].Vertices))
			}
			break
		}
	}
	return nil
}

// E5Row is one row of the ACQ algorithm comparison.
type E5Row struct {
	SLen          int
	K             int32
	Algorithm     string
	Elapsed       time.Duration
	Verifications int
}

// E5ACQAlgorithms measures Basic/Inc-S/Inc-T/Dec latency sweeping |S| and k
// (the §3.2 performance claim: Dec fastest, Basic impractical).
func E5ACQAlgorithms(w io.Writer, env *Env, sizes []int, ks []int32) ([]E5Row, error) {
	g := env.DBLP.Graph
	q, _ := env.HubQuery()
	S := g.Keywords(q)
	fmt.Fprintf(w, "E5  ACQ query algorithms — query %q, |W(q)|=%d\n", g.Name(q), len(S))
	fmt.Fprintf(w, "%4s %3s %8s %12s %14s\n", "|S|", "k", "algo", "time", "verifications")
	var rows []E5Row
	for _, sz := range sizes {
		if sz > len(S) {
			continue
		}
		sub := S[:sz]
		for _, k := range ks {
			for _, algo := range []core.Algorithm{core.Basic, core.IncS, core.IncT, core.Dec} {
				eng := core.NewEngine(env.Tree)
				start := time.Now()
				if _, err := eng.Search(q, k, sub, algo); err != nil {
					return nil, err
				}
				el := time.Since(start)
				row := E5Row{SLen: sz, K: k, Algorithm: algo.String(), Elapsed: el,
					Verifications: eng.LastStats().Verifications}
				rows = append(rows, row)
				fmt.Fprintf(w, "%4d %3d %8s %12s %14d\n", sz, k, algo, el.Round(time.Microsecond), row.Verifications)
			}
		}
	}
	return rows, nil
}

// E6CLTreeScaling measures index build time and size across graph sizes
// (the "linear space and time" claim).
func E6CLTreeScaling(w io.Writer, sizes []int) {
	fmt.Fprintf(w, "E6  CL-tree scaling (G(n, 4n) graphs)\n")
	fmt.Fprintf(w, "%10s %10s %12s %12s %10s\n", "n", "m", "build", "bytes", "bytes/n")
	for _, n := range sizes {
		g := gen.GNM(n, 4*n, 7)
		start := time.Now()
		tr := cltree.Build(g)
		el := time.Since(start)
		fmt.Fprintf(w, "%10d %10d %12s %12d %10.1f\n",
			n, g.M(), el.Round(time.Microsecond), tr.Bytes(), float64(tr.Bytes())/float64(n))
	}
}

// E7PaperScale measures warm-index query latency at the given scale — the
// "online and interactive" claim (§1: queries on a 977k-vertex DBLP graph
// return "instantly").
func E7PaperScale(w io.Writer, env *Env, queries int) error {
	g := env.DBLP.Graph
	fmt.Fprintf(w, "E7  query latency at scale — graph %dv/%de\n", g.N(), g.M())
	q, k := env.HubQuery()
	eng := core.NewEngine(env.Tree)
	var total time.Duration
	var worst time.Duration
	for i := 0; i < queries; i++ {
		start := time.Now()
		if _, err := eng.Search(q, k, nil, core.Dec); err != nil {
			return err
		}
		el := time.Since(start)
		total += el
		if el > worst {
			worst = el
		}
	}
	fmt.Fprintf(w, "ACQ(Dec) warm: avg %s, worst %s over %d queries (interactive: < 1s)\n",
		(total / time.Duration(queries)).Round(time.Microsecond), worst.Round(time.Microsecond), queries)
	return nil
}

// E8GlobalVsLocal compares Global and Local latency and touched vertices
// (the §2 claim: Local's local expansion beats Global's whole-graph work).
func E8GlobalVsLocal(w io.Writer, env *Env) {
	g := env.DBLP.Graph
	q, k := env.HubQuery()
	fmt.Fprintf(w, "E8  Global vs Local — query %q, k=%d\n", g.Name(q), k)

	start := time.Now()
	gr := csearch.Global(g, nil, q, k) // nil core: pay the full decomposition, as Global does cold
	gTime := time.Since(start)

	start = time.Now()
	lr := csearch.Local(g, q, k, csearch.LocalOptions{})
	lTime := time.Since(start)

	fmt.Fprintf(w, "%-8s %12s %10s %10s\n", "Method", "time", "visited", "|community|")
	if gr != nil {
		fmt.Fprintf(w, "%-8s %12s %10d %10d\n", "Global", gTime.Round(time.Microsecond), gr.Visited, len(gr.Vertices))
	}
	if lr != nil {
		fmt.Fprintf(w, "%-8s %12s %10d %10d\n", "Local", lTime.Round(time.Microsecond), lr.Visited, len(lr.Vertices))
	}
}

// E9Visual reproduces Figure 6(b): layouts of the ACQ and Local communities
// for the same query, with their overlap.
func E9Visual(w io.Writer, env *Env) error {
	g := env.DBLP.Graph
	q, k := env.HubQuery()
	fmt.Fprintf(w, "E9  Figure 6(b) visual comparison — query %q\n", g.Name(q))
	eng := core.NewEngine(env.Tree)
	acq, err := eng.Search(q, k, nil, core.Dec)
	if err != nil {
		return err
	}
	lr := csearch.Local(g, q, k, csearch.LocalOptions{})
	if len(acq) == 0 || lr == nil {
		fmt.Fprintf(w, "one of the methods found nothing; skipping\n")
		return nil
	}
	a := acq[0].Vertices
	l := lr.Vertices
	placeA := layoutFor(g, a)
	placeL := layoutFor(g, l)
	fmt.Fprintf(w, "ACQ community: %d vertices, layout computed (%d points)\n", len(a), len(placeA))
	fmt.Fprintf(w, "Local community: %d vertices, layout computed (%d points)\n", len(l), len(placeL))
	fmt.Fprintf(w, "vertex overlap (Jaccard): %.3f\n", metrics.SetJaccard(a, l))
	return nil
}

func layoutFor(g *graph.Graph, vs []int32) []layout.Point {
	sub := g.Induce(vs)
	el := layout.EdgeList{Count: sub.N()}
	for l := int32(0); l < int32(sub.N()); l++ {
		for _, u := range sub.Neighbors(l) {
			if l < u {
				el.Pairs = append(el.Pairs, [2]int32{l, u})
			}
		}
	}
	return layout.FruchtermanReingold(el, layout.Options{Seed: 1, Iterations: 50})
}

// E10APIRoundTrip exercises the five Figure-4 functions end to end.
func E10APIRoundTrip(w io.Writer) error {
	fmt.Fprintf(w, "E10 API round trip (Figure 4: upload/search/detect/analyze/display)\n")
	exp := api.NewExplorer()
	if _, err := exp.AddGraph("fig5", gen.Figure5()); err != nil {
		return err
	}
	comms, err := exp.Search(context.Background(), "fig5", "ACQ", api.Query{Vertices: []int32{0}, K: 2})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "search: %d communities\n", len(comms))
	det, err := exp.Detect(context.Background(), "fig5", "CODICIL")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "detect: %d communities\n", len(det))
	if len(comms) > 0 {
		a, err := exp.Analyze(context.Background(), "fig5", comms[0], 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "analyze: CPJ=%.3f CMF=%.3f vertices=%d\n", a.CPJ, a.CMF, a.Stats.Vertices)
		pl, err := exp.Display(context.Background(), "fig5", comms[0], layout.Options{Seed: 1})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "display: %d points, %d edges\n", len(pl.Points), len(pl.Edges))
	}
	return nil
}

// AblationIndexVsNoIndex compares Dec (CL-tree) with Basic (enumeration).
func AblationIndexVsNoIndex(w io.Writer, env *Env, sLen int) error {
	g := env.DBLP.Graph
	q, k := env.HubQuery()
	S := g.Keywords(q)
	if sLen > len(S) {
		sLen = len(S)
	}
	S = S[:sLen]
	fmt.Fprintf(w, "Ablation: Dec (indexed) vs Basic (enumeration), |S|=%d\n", sLen)
	eng := core.NewEngine(env.Tree)
	start := time.Now()
	if _, err := eng.Search(q, k, S, core.Dec); err != nil {
		return err
	}
	decT := time.Since(start)
	decV := eng.LastStats().Verifications
	start = time.Now()
	if _, err := eng.Search(q, k, S, core.Basic); err != nil {
		return err
	}
	basicT := time.Since(start)
	basicV := eng.LastStats().Verifications
	fmt.Fprintf(w, "Dec:   %12s (%d verifications)\nBasic: %12s (%d verifications)\nspeedup: %.1fx\n",
		decT.Round(time.Microsecond), decV, basicT.Round(time.Microsecond), basicV,
		float64(basicT)/float64(decT+1))
	return nil
}

// AblationCoreDecomposition compares bin-sort vs naive peeling. The
// preferential-attachment graph forces the long removal cascades where the
// naive full-rescan algorithm degrades.
func AblationCoreDecomposition(w io.Writer, n int) {
	g := gen.BarabasiAlbert(n, 5, 13)
	fmt.Fprintf(w, "Ablation: core decomposition on BA(%d, 5) (%d edges)\n", n, g.M())
	start := time.Now()
	kcore.Decompose(g)
	fast := time.Since(start)
	start = time.Now()
	kcore.NaiveDecompose(g)
	slow := time.Since(start)
	fmt.Fprintf(w, "bin-sort: %12s\nnaive:    %12s (%.1fx slower)\n",
		fast.Round(time.Microsecond), slow.Round(time.Microsecond), float64(slow)/float64(fast+1))
}

// AblationCodicilSparsify compares CODICIL with and without local
// sparsification.
func AblationCodicilSparsify(w io.Writer, env *Env) {
	g := env.DBLP.Graph
	fmt.Fprintf(w, "Ablation: CODICIL sparsification\n")
	start := time.Now()
	full := codicil.Detect(g, codicil.Options{Seed: 1, NoSparsify: true})
	fullT := time.Since(start)
	start = time.Now()
	sparse := codicil.Detect(g, codicil.Options{Seed: 1})
	sparseT := time.Since(start)
	fmt.Fprintf(w, "no-sparsify: %12s, %d edges clustered, %d communities\n",
		fullT.Round(time.Millisecond), full.SparsifiedEdges, full.Partition.Count)
	fmt.Fprintf(w, "sparsify:    %12s, %d edges clustered, %d communities\n",
		sparseT.Round(time.Millisecond), sparse.SparsifiedEdges, sparse.Partition.Count)
}

// AblationLayout compares exact vs Barnes–Hut FR at growing sizes.
func AblationLayout(w io.Writer, sizes []int) {
	fmt.Fprintf(w, "Ablation: layout exact vs Barnes-Hut\n")
	fmt.Fprintf(w, "%8s %12s %12s\n", "n", "exact", "barnes-hut")
	for _, n := range sizes {
		g := gen.BarabasiAlbert(n, 3, 5)
		el := layout.EdgeList{Count: n}
		g.Edges(func(u, v int32) bool {
			el.Pairs = append(el.Pairs, [2]int32{u, v})
			return true
		})
		start := time.Now()
		layout.FruchtermanReingold(el, layout.Options{Seed: 1, Iterations: 20, ForceExact: true})
		exact := time.Since(start)
		start = time.Now()
		layout.FruchtermanReingold(el, layout.Options{Seed: 1, Iterations: 20, BarnesHut: true})
		bh := time.Since(start)
		fmt.Fprintf(w, "%8d %12s %12s\n", n, exact.Round(time.Microsecond), bh.Round(time.Microsecond))
	}
}
