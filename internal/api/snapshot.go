package api

import (
	"fmt"
	"io"
	"sync"
	"time"

	"cexplorer/internal/snapshot"
)

// This file is the bridge between datasets and the persistence subsystem
// (internal/snapshot): WriteSnapshot freezes a dataset — graph plus every
// index, building any that are missing — and OpenSnapshot materializes one
// with its indexes pre-seeded, so the sync.Once builders never run and a
// restart costs a sequential read instead of a rebuild.

// WriteSnapshot serializes the dataset to w, building any missing indexes
// first so the snapshot always carries all three (that one-time cost is the
// point: pay it offline, never at boot). Returns the encoded byte count.
func (d *Dataset) WriteSnapshot(w io.Writer) (int64, error) {
	return snapshot.Write(w, d.makeSnapshot())
}

// WriteSnapshotFile persists the dataset at path atomically (temp file +
// rename), building any missing indexes first.
func (d *Dataset) WriteSnapshotFile(path string) (int64, error) {
	return snapshot.WriteFile(path, d.makeSnapshot())
}

// WriteSnapshotFileFormat is WriteSnapshotFile with an explicit format
// version (`cexplorer snapshot build -format`): FormatV3 for the aligned
// zero-copy layout, FormatV2 for files older builds must read.
func (d *Dataset) WriteSnapshotFileFormat(path string, format uint16) (int64, error) {
	return snapshot.WriteFileFormat(path, d.makeSnapshot(), format)
}

func (d *Dataset) makeSnapshot() *snapshot.Snapshot {
	d.BuildIndexes()
	return &snapshot.Snapshot{
		Name:    d.Name,
		Version: d.Version,
		Graph:   d.Graph,
		Core:    d.CoreNumbers(),
		Tree:    d.Tree(),
		Truss:   d.Truss(),
	}
}

// WriteResidentSnapshotFile persists the dataset with whatever indexes it
// currently holds — no forced builds. Journal compaction uses it from the
// mutation request path, where forcing a from-scratch truss decomposition
// (mutations always invalidate the truss) would stall the response; a
// snapshot without an index simply reloads with that index lazy, exactly
// like an unindexed upload.
func (d *Dataset) WriteResidentSnapshotFile(path string) (int64, error) {
	return snapshot.WriteFile(path, d.residentSnapshot())
}

// WriteResidentSnapshot streams the resident-index snapshot to w. This is
// the replica-bootstrap encoding: it runs on the primary's request path, so
// like compaction it must never force an index build.
func (d *Dataset) WriteResidentSnapshot(w io.Writer) (int64, error) {
	return snapshot.Write(w, d.residentSnapshot())
}

func (d *Dataset) residentSnapshot() *snapshot.Snapshot {
	s := &snapshot.Snapshot{Name: d.Name, Version: d.Version, Graph: d.Graph}
	if d.coreReady.Load() {
		s.Core = d.coreNum
	}
	if d.treeReady.Load() {
		s.Tree = d.tree
	}
	if d.trussReady.Load() {
		s.Truss = d.truss
	}
	return s
}

// OpenSnapshot materializes a dataset from a snapshot stream. Every index
// the snapshot carries is pre-seeded — its sync.Once is consumed here — so
// the lazy builders become no-ops; anything absent still builds lazily on
// first use. name overrides the snapshot's embedded dataset name when
// non-empty. The graph's structural invariants were validated at
// upload/build time and the file is checksummed, so the load path
// deliberately skips the O(m log m) Validate re-check.
func OpenSnapshot(name string, r io.Reader) (*Dataset, error) {
	start := time.Now()
	s, err := snapshot.Read(r)
	if err != nil {
		return nil, err
	}
	return datasetFromSnapshot(name, s, time.Since(start))
}

// OpenSnapshotFile materializes a dataset from a snapshot file; the
// embedded dataset name is used unless name is non-empty. It always
// heap-decodes (snapshot.OpenCopy); use OpenSnapshotFileMode for the
// zero-copy mmap path.
func OpenSnapshotFile(name, path string) (*Dataset, error) {
	return OpenSnapshotFileMode(name, path, snapshot.OpenCopy)
}

// OpenSnapshotFileMode materializes a dataset from a snapshot file under an
// explicit open mode. With snapshot.OpenMmap (or OpenAuto on an eligible
// file) the dataset's graph and pre-seeded indexes are views over a file
// mapping: the open costs O(index stitch) instead of O(bytes) heap copies,
// and the caller owns a Close obligation — release the mapping with
// Dataset.Close when the dataset is retired (queries running through the
// Explorer pin the mapping and are safe against a concurrent Close).
func OpenSnapshotFileMode(name, path string, mode snapshot.OpenMode) (*Dataset, error) {
	start := time.Now()
	s, m, err := snapshot.OpenFile(path, mode)
	if err != nil {
		return nil, err
	}
	d, err := datasetFromSnapshot(name, s, time.Since(start))
	if err != nil {
		if m != nil {
			m.Release()
		}
		return nil, err
	}
	if m != nil {
		attachBacking(d, m)
		d.Info.OpenMode = "mmap"
		d.Info.MappedBytes = m.Size()
	}
	return d, nil
}

func datasetFromSnapshot(name string, s *snapshot.Snapshot, elapsed time.Duration) (*Dataset, error) {
	if name == "" {
		name = s.Name
	}
	if name == "" {
		return nil, fmt.Errorf("snapshot: no dataset name (none embedded, none given)")
	}
	d := &Dataset{
		Name:    name,
		Graph:   s.Graph,
		Version: s.Version,
		mutMu:   &sync.Mutex{},
		Info: DatasetInfo{
			Source:        "snapshot",
			LoadDuration:  elapsed,
			SnapshotBytes: s.Bytes,
			OpenMode:      "copy", // the file-open path overrides for mmap
		},
	}
	if s.Tree != nil {
		d.treeOnce.Do(func() {
			d.tree = s.Tree
			d.treeReady.Store(true)
		})
	}
	core := s.Core
	if core == nil && s.Tree != nil {
		// The CL-tree carries per-vertex core numbers; reuse them rather
		// than re-peeling.
		core = s.Tree.CoreNumbers()
	}
	if core != nil {
		d.coreOnce.Do(func() {
			d.coreNum = core
			d.coreReady.Store(true)
		})
	}
	if s.Truss != nil {
		d.trussOnce.Do(func() {
			d.truss = s.Truss
			d.trussReady.Store(true)
		})
	}
	return d, nil
}

// AddDataset registers an already-materialized dataset (typically one from
// OpenSnapshot) under its own name, replacing any dataset with that name.
// Unlike AddGraph it does not re-run Validate: snapshot integrity is the
// checksum's job, and re-validating would forfeit the warm-start win.
func (e *Explorer) AddDataset(ds *Dataset) error {
	if ds == nil || ds.Name == "" {
		return fmt.Errorf("add dataset: missing dataset or name")
	}
	if ds.Graph == nil {
		return fmt.Errorf("add dataset %q: nil graph", ds.Name)
	}
	if ds.mutMu == nil {
		ds.mutMu = &sync.Mutex{}
	}
	e.mu.Lock()
	e.datasets[ds.Name] = ds
	c := e.cache
	e.mu.Unlock()
	if c != nil && ds.Version == 0 {
		// Same rule as AddGraph: a name re-registered at Version 0 must not
		// inherit cache entries from the graph it replaced. Successor
		// versions (Explorer.Mutate republishing a lineage) keep the cache —
		// their keys are version-disambiguated already.
		c.Purge(ds.Name)
	}
	return nil
}
