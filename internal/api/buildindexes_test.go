package api

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"cexplorer/internal/gen"
	"cexplorer/internal/ktruss"
	"cexplorer/internal/par"
)

// TestBuildIndexesConcurrentWithSearches races an eager BuildIndexes (which
// builds CL-tree, core, and truss concurrently) against searches that
// trigger the same lazy builds on their own goroutines. Every combination
// must produce consistent results — the per-index sync.Once guards are the
// contract — and the run is meaningful under -race, where any unsynchronized
// build would trip the detector.
func TestBuildIndexesConcurrentWithSearches(t *testing.T) {
	d := gen.GenerateDBLP(gen.SmallDBLPConfig())
	for _, workers := range []int{1, 2} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			par.SetWorkers(workers)
			defer par.SetWorkers(0)
			ds := NewDataset("dblp", d.Graph)

			var wg sync.WaitGroup
			errs := make(chan error, 16)
			for i := 0; i < 3; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					ds.BuildIndexes()
				}()
			}
			algos := []CSAlgorithm{
				&ACQAlgorithm{},
				GlobalAlgorithm{},
				KTrussAlgorithm{},
			}
			for i := 0; i < 9; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					q := Query{Vertices: []int32{int32((i * 131) % ds.Graph.N())}, K: 2 + i%3}
					if _, err := algos[i%len(algos)].Search(context.Background(), ds, q); err != nil {
						errs <- fmt.Errorf("search %d: %w", i, err)
					}
				}(i)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}

			st := ds.Indexes()
			if !st.CLTree || !st.Core || !st.Truss {
				t.Fatalf("indexes not all resident after BuildIndexes: %+v", st)
			}
			tm := ds.BuildTimings()
			if tm.CLTreeMS <= 0 || tm.CoreMS <= 0 || tm.TrussMS <= 0 {
				t.Fatalf("build timings not recorded: %+v", tm)
			}

			// The concurrently built truss must equal a serial rebuild.
			want, err := ktruss.DecomposeParallel(context.Background(), d.Graph, 1)
			if err != nil {
				t.Fatal(err)
			}
			_, gotTruss := ds.Truss().Parts()
			_, wantTruss := want.Parts()
			for id := range gotTruss {
				if gotTruss[id] != wantTruss[id] {
					t.Fatalf("edge %d: concurrent build trussness %d, serial %d", id, gotTruss[id], wantTruss[id])
				}
			}
		})
	}
}

// TestBuildTimingsZeroWhenPreSeeded: a dataset whose indexes arrive from a
// snapshot reports zero build cost — the warm-restart contract /api/stats
// surfaces.
func TestBuildTimingsZeroWhenPreSeeded(t *testing.T) {
	g := gen.Figure5()
	ds := NewDataset("fig5", g)
	if tm := ds.BuildTimings(); tm != (IndexTimings{}) {
		t.Fatalf("fresh dataset reports nonzero timings: %+v", tm)
	}
}
