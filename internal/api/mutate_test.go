package api

import (
	"context"
	"errors"
	"slices"
	"testing"

	"cexplorer/internal/gen"
	"cexplorer/internal/kcore"
)

func TestDatasetMutateSuccessor(t *testing.T) {
	g := gen.GNMAttributed(30, 60, 8, 1)
	ds := NewDataset("d", g)
	ds.CoreNumbers()
	ds.Tree()

	// Pick a definitely-absent edge.
	var u, v int32 = -1, -1
findEdge:
	for a := int32(0); a < int32(g.N()); a++ {
		for b := a + 1; b < int32(g.N()); b++ {
			if !g.HasEdge(a, b) {
				u, v = a, b
				break findEdge
			}
		}
	}

	next, res, err := ds.Mutate(context.Background(), []Mutation{{Op: OpAddEdge, U: u, V: v}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 1 || next.Version != 1 {
		t.Errorf("version = %d/%d, want 1", res.Version, next.Version)
	}
	if res.Edges != g.M()+1 || next.Graph.M() != g.M()+1 {
		t.Errorf("edge count: res %d, graph %d, want %d", res.Edges, next.Graph.M(), g.M()+1)
	}
	if res.TreeRepair != "shared" && res.TreeRepair != "rebuilt" {
		t.Errorf("tree repair %q with resident indexes", res.TreeRepair)
	}

	// Receiver untouched: same graph, same version, edge still absent.
	if ds.Graph.HasEdge(u, v) || ds.Version != 0 {
		t.Errorf("receiver mutated: HasEdge=%v version=%d", ds.Graph.HasEdge(u, v), ds.Version)
	}
	if !next.Graph.HasEdge(u, v) {
		t.Errorf("successor missing the inserted edge")
	}

	// Successor's pre-seeded indexes agree with from-scratch computation.
	if !slices.Equal(next.CoreNumbers(), kcore.Decompose(next.Graph)) {
		t.Errorf("successor core numbers diverge from rebuild")
	}
	if err := next.Tree().Validate(); err != nil {
		t.Errorf("successor tree invalid: %v", err)
	}
	if next.Indexes().Truss {
		t.Errorf("truss must be invalidated, not carried over")
	}
}

func TestDatasetMutateLazyWhenUnindexed(t *testing.T) {
	ds := NewDataset("d", gen.GNMAttributed(20, 40, 5, 2))
	next, res, err := ds.Mutate(context.Background(), []Mutation{{Op: OpAddVertex, Name: "n", Keywords: []string{"z"}}})
	if err != nil {
		t.Fatal(err)
	}
	if st := next.Indexes(); st.Core || st.CLTree || st.Truss {
		t.Errorf("unindexed base must yield unindexed successor, got %+v", st)
	}
	if res.TreeRepair != "lazy" {
		t.Errorf("tree repair %q, want lazy", res.TreeRepair)
	}
	if next.Graph.N() != ds.Graph.N()+1 {
		t.Errorf("vertex not added")
	}
	// Lazy indexes still build correctly on the successor.
	if err := next.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDatasetMutateTypedErrors(t *testing.T) {
	ds := NewDataset("d", gen.GNMAttributed(10, 20, 5, 3))
	ctx := context.Background()
	cases := []struct {
		name string
		ops  []Mutation
		want error
	}{
		{"empty batch", nil, ErrInvalidMutation},
		{"unknown op", []Mutation{{Op: "explode"}}, ErrInvalidMutation},
		{"self loop", []Mutation{{Op: OpAddEdge, U: 1, V: 1}}, ErrInvalidMutation},
		{"out of range", []Mutation{{Op: OpAddEdge, U: 0, V: 99}}, ErrInvalidMutation},
		{"remove missing", []Mutation{{Op: OpRemoveEdge, U: 0, V: removeMissingV(ds)}}, ErrMutationConflict},
	}
	for _, tc := range cases {
		if _, _, err := ds.Mutate(ctx, tc.ops); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}

	// Duplicate insert conflicts; the batch is all-or-nothing, so an op
	// before the failure must not leak into a successor.
	g := ds.Graph
	var eu, ev int32
	g.Edges(func(a, b int32) bool { eu, ev = a, b; return false })
	_, _, err := ds.Mutate(ctx, []Mutation{
		{Op: OpAddVertex, Name: "ghost"},
		{Op: OpAddEdge, U: eu, V: ev},
	})
	if !errors.Is(err, ErrMutationConflict) {
		t.Fatalf("duplicate insert: got %v, want ErrMutationConflict", err)
	}
	if ds.Graph.N() != 10 || ds.Version != 0 {
		t.Errorf("failed batch leaked into the dataset")
	}
}

func removeMissingV(ds *Dataset) int32 {
	for v := int32(1); v < int32(ds.Graph.N()); v++ {
		if !ds.Graph.HasEdge(0, v) {
			return v
		}
	}
	return 0
}

func TestExplorerMutatePublishesAndPins(t *testing.T) {
	exp := NewExplorer()
	g := gen.GNMAttributed(40, 100, 8, 4)
	if _, err := exp.AddGraph("d", g); err != nil {
		t.Fatal(err)
	}
	before, _ := exp.Dataset("d")
	before.CoreNumbers()
	before.Tree()

	var u, v int32 = -1, -1
findEdge:
	for a := int32(0); a < int32(g.N()); a++ {
		for b := a + 1; b < int32(g.N()); b++ {
			if !g.HasEdge(a, b) {
				u, v = a, b
				break findEdge
			}
		}
	}
	res, err := exp.Mutate(context.Background(), "d", []Mutation{{Op: OpAddEdge, U: u, V: v}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 1 {
		t.Fatalf("version %d, want 1", res.Version)
	}
	after, _ := exp.Dataset("d")
	if after == before {
		t.Fatal("Mutate did not publish a successor")
	}
	if before.Graph.HasEdge(u, v) {
		t.Error("pinned pre-mutation dataset sees the new edge")
	}
	if !after.Graph.HasEdge(u, v) {
		t.Error("published dataset missing the new edge")
	}

	// The unknown-dataset path.
	if _, err := exp.Mutate(context.Background(), "nope", []Mutation{{Op: OpAddVertex}}); !errors.Is(err, ErrDatasetNotFound) {
		t.Errorf("unknown dataset: got %v", err)
	}

	// A search on the new version returns vertices of the new graph and the
	// old version keeps serving its own.
	comms, err := exp.Search(context.Background(), "d", "Global", Query{Vertices: []int32{u}, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = comms
}

func TestExplorerMutateVersionChain(t *testing.T) {
	exp := NewExplorer()
	if _, err := exp.AddGraph("d", gen.GNMAttributed(15, 20, 4, 5)); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		res, err := exp.Mutate(context.Background(), "d", []Mutation{{Op: OpAddVertex}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Version != uint64(i) {
			t.Fatalf("batch %d produced version %d", i, res.Version)
		}
	}
	ds, _ := exp.Dataset("d")
	if ds.Graph.N() != 20 {
		t.Errorf("vertex count %d, want 20", ds.Graph.N())
	}
}
