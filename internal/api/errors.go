package api

import (
	"context"
	"errors"
	"fmt"

	"cexplorer/internal/servecache"
)

// The typed error model of the v1 API. Every error the Explorer returns
// wraps exactly one of these sentinels, so callers branch with errors.Is
// instead of string matching, and the HTTP layer maps each sentinel to one
// status code (404, 400, 499, 504) instead of a blanket 500.
var (
	// ErrDatasetNotFound: the named dataset is not registered.
	ErrDatasetNotFound = errors.New("dataset not found")
	// ErrVertexNotFound: a vertex referenced by name or id does not exist
	// in the dataset.
	ErrVertexNotFound = errors.New("vertex not found")
	// ErrSessionNotFound: the exploration session id is unknown, expired,
	// or belongs to a different dataset.
	ErrSessionNotFound = errors.New("exploration session not found")
	// ErrUnknownAlgorithm: the named CS/CD algorithm is not registered.
	ErrUnknownAlgorithm = errors.New("unknown algorithm")
	// ErrInvalidQuery: the request is structurally valid but semantically
	// wrong — no query vertex, out-of-range vertex, unknown Params key,
	// malformed parameter value.
	ErrInvalidQuery = errors.New("invalid query")
	// ErrInvalidMutation: a mutation op is structurally invalid — unknown
	// op name, out-of-range endpoint, self-loop, empty batch.
	ErrInvalidMutation = errors.New("invalid mutation")
	// ErrMutationConflict: a mutation op is well-formed but conflicts with
	// the current graph state — inserting an edge that already exists, or
	// deleting one that does not.
	ErrMutationConflict = errors.New("mutation conflict")
	// ErrDatasetClosed: the dataset's backing file mapping was released by
	// Close; its borrowed memory is gone and it can serve no more queries.
	ErrDatasetClosed = errors.New("dataset closed")
	// ErrCanceled: the caller canceled the request mid-computation.
	ErrCanceled = errors.New("request canceled")
	// ErrTimeout: the request exceeded its deadline mid-computation.
	ErrTimeout = errors.New("request timed out")
	// ErrOverloaded: the dataset is at its admission-control bound and this
	// request was shed instead of queued (HTTP 429). The alias keeps the
	// sentinel identity with the servecache layer that raises it.
	ErrOverloaded = servecache.ErrOverloaded
)

// ErrorCode returns the stable machine-readable code for err — the "code"
// field of the JSON error envelope. Unrecognized errors map to "internal".
func ErrorCode(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrDatasetNotFound):
		return "dataset_not_found"
	case errors.Is(err, ErrVertexNotFound):
		return "vertex_not_found"
	case errors.Is(err, ErrSessionNotFound):
		return "session_not_found"
	case errors.Is(err, ErrUnknownAlgorithm):
		return "unknown_algorithm"
	case errors.Is(err, ErrInvalidQuery):
		return "invalid_query"
	case errors.Is(err, ErrInvalidMutation):
		return "invalid_mutation"
	case errors.Is(err, ErrMutationConflict):
		return "mutation_conflict"
	case errors.Is(err, ErrDatasetClosed):
		return "dataset_closed"
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	case errors.Is(err, ErrCanceled):
		return "canceled"
	case errors.Is(err, ErrTimeout):
		return "timeout"
	default:
		return "internal"
	}
}

// wrapContextErr lifts the raw context errors that the internal kernels
// return (context.Canceled, context.DeadlineExceeded) into the API's typed
// sentinels. Errors already carrying an API sentinel, and nil, pass through
// unchanged.
func wrapContextErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrCanceled) || errors.Is(err, ErrTimeout):
		return err
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("%w: %v", ErrCanceled, err)
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %v", ErrTimeout, err)
	default:
		return err
	}
}
