package api

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"cexplorer/internal/core"
	"cexplorer/internal/gen"
)

// roundTrip freezes ds to a snapshot and opens it back as a new dataset.
func roundTrip(t *testing.T, ds *Dataset) *Dataset {
	t.Helper()
	var buf bytes.Buffer
	n, err := ds.WriteSnapshot(&buf)
	if err != nil {
		t.Fatalf("write snapshot: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("write reported %d bytes, buffer has %d", n, buf.Len())
	}
	got, err := OpenSnapshot("", &buf)
	if err != nil {
		t.Fatalf("open snapshot: %v", err)
	}
	return got
}

// TestSnapshotRoundTripSearchFidelity is the round-trip acceptance test:
// upload → snapshot → reload must yield a graph that passes Validate and
// gives byte-identical results for every search algorithm, against both the
// worked example and a DBLP-like graph.
func TestSnapshotRoundTripSearchFidelity(t *testing.T) {
	cfg := gen.DefaultDBLPConfig()
	cfg.Authors = 1500
	cfg.Seed = 5
	for _, tc := range []struct {
		name string
		ds   *Dataset
		k    int
	}{
		{"figure5", NewDataset("figure5", gen.Figure5()), 2},
		{"dblp", NewDataset("dblp", gen.GenerateDBLP(cfg).Graph), 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			orig := tc.ds
			loaded := roundTrip(t, orig)

			if loaded.Name != tc.name {
				t.Fatalf("loaded name = %q, want %q", loaded.Name, tc.name)
			}
			if loaded.Info.Source != "snapshot" {
				t.Fatalf("loaded source = %q", loaded.Info.Source)
			}
			st := loaded.Indexes()
			if !st.CLTree || !st.Core || !st.Truss {
				t.Fatalf("loaded dataset indexes not pre-seeded: %+v", st)
			}
			if err := loaded.Graph.Validate(); err != nil {
				t.Fatalf("loaded graph invalid: %v", err)
			}
			if err := loaded.Tree().Validate(); err != nil {
				t.Fatalf("loaded CL-tree invalid: %v", err)
			}

			algos := []CSAlgorithm{
				&ACQAlgorithm{Variant: core.Dec},
				&ACQAlgorithm{Variant: core.IncS},
				&ACQAlgorithm{Variant: core.IncT},
				GlobalAlgorithm{},
				KTrussAlgorithm{},
			}
			n := orig.Graph.N()
			stride := n/7 + 1
			for _, a := range algos {
				for q := 0; q < n; q += stride {
					query := Query{Vertices: []int32{int32(q)}, K: tc.k}
					want, werr := a.Search(context.Background(), orig, query)
					got, gerr := a.Search(context.Background(), loaded, query)
					if (werr == nil) != (gerr == nil) {
						t.Fatalf("%s q=%d: error mismatch: %v vs %v", a.Name(), q, werr, gerr)
					}
					if werr != nil {
						continue
					}
					wj, _ := json.Marshal(want)
					gj, _ := json.Marshal(got)
					if !bytes.Equal(wj, gj) {
						t.Fatalf("%s q=%d: results differ:\noriginal: %s\nreloaded: %s",
							a.Name(), q, wj, gj)
					}
				}
			}
		})
	}
}

// TestOpenSnapshotNameOverride checks the name precedence rules.
func TestOpenSnapshotNameOverride(t *testing.T) {
	ds := NewDataset("embedded", gen.Figure5())
	var buf bytes.Buffer
	if _, err := ds.WriteSnapshot(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	data := buf.Bytes()

	got, err := OpenSnapshot("", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if got.Name != "embedded" {
		t.Fatalf("name = %q, want embedded", got.Name)
	}
	got, err = OpenSnapshot("override", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if got.Name != "override" {
		t.Fatalf("name = %q, want override", got.Name)
	}
}

// TestAddDataset registers a snapshot-loaded dataset and searches through
// the Explorer front door.
func TestAddDataset(t *testing.T) {
	exp := NewExplorer()
	src, err := exp.AddGraph("g", gen.Figure5())
	if err != nil {
		t.Fatalf("add graph: %v", err)
	}
	loaded := roundTrip(t, src)
	if err := exp.AddDataset(loaded); err != nil {
		t.Fatalf("add dataset: %v", err)
	}
	ds, ok := exp.Dataset("g")
	if !ok || ds != loaded {
		t.Fatalf("registered dataset not returned")
	}
	comms, err := exp.Search(context.Background(), "g", "ACQ", Query{Vertices: []int32{0}, K: 2})
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if len(comms) == 0 {
		t.Fatalf("no communities from snapshot-loaded dataset")
	}
	if err := exp.AddDataset(nil); err == nil {
		t.Fatalf("AddDataset(nil) succeeded")
	}
	if err := exp.AddDataset(&Dataset{Name: "x"}); err == nil {
		t.Fatalf("AddDataset with nil graph succeeded")
	}
}

// TestLazyBuildStillWorks pins the "load if present, else build" behavior:
// a dataset built in process reports no indexes until they are first used.
func TestLazyBuildStillWorks(t *testing.T) {
	ds := NewDataset("lazy", gen.Figure5())
	if st := ds.Indexes(); st.CLTree || st.Core || st.Truss {
		t.Fatalf("fresh dataset claims resident indexes: %+v", st)
	}
	ds.Tree()
	if st := ds.Indexes(); !st.CLTree || st.Truss {
		t.Fatalf("after Tree(): %+v", st)
	}
	ds.BuildIndexes()
	if st := ds.Indexes(); !st.CLTree || !st.Core || !st.Truss {
		t.Fatalf("after BuildIndexes(): %+v", st)
	}
}
