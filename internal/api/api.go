// Package api implements the developer API of Figure 4 — the CExplorer
// interface with its five functions (upload, search, detect, analyze,
// display) — together with the pluggable CS/CD algorithm registries that
// let users "plug in their own CR solution on C-Explorer through a simple
// application programmer interface".
package api

import (
	"context"
	"fmt"
	"io"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cexplorer/internal/cltree"
	"cexplorer/internal/codicil"
	"cexplorer/internal/core"
	"cexplorer/internal/csearch"
	"cexplorer/internal/graph"
	"cexplorer/internal/kcore"
	"cexplorer/internal/ktruss"
	"cexplorer/internal/layout"
	"cexplorer/internal/metrics"
	"cexplorer/internal/par"
	"cexplorer/internal/servecache"
)

// Query is the search request: the query vertices (by ID), the minimum
// degree, and optional keywords (strings, matched against the graph
// vocabulary).
type Query struct {
	Vertices []int32
	K        int
	Keywords []string
	// Params carries algorithm-specific knobs as strings. Every built-in
	// accepts "maxResults" (cap the community list); ACQ additionally
	// accepts "variant" (Dec, Inc-S, Inc-T, Basic) and Local accepts
	// "budget" (candidate-set cap). Unknown keys are rejected with
	// ErrInvalidQuery so typos fail loudly instead of being ignored.
	Params map[string]string
}

// queryParams is the parsed form of Query.Params shared by the built-ins.
type queryParams struct {
	maxResults int
	budget     int
	variant    core.Algorithm
	hasVariant bool
}

// parseParams validates q.Params against the keys an algorithm accepts
// ("maxResults" is always accepted) and parses the values. Unknown keys and
// malformed values wrap ErrInvalidQuery.
func parseParams(q Query, accepted ...string) (queryParams, error) {
	p := queryParams{}
	for key, val := range q.Params {
		switch {
		case key == "maxResults":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return p, fmt.Errorf("%w: param maxResults=%q (want a non-negative integer)", ErrInvalidQuery, val)
			}
			p.maxResults = n
		case key == "budget" && slices.Contains(accepted, "budget"):
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return p, fmt.Errorf("%w: param budget=%q (want a non-negative integer)", ErrInvalidQuery, val)
			}
			p.budget = n
		case key == "variant" && slices.Contains(accepted, "variant"):
			switch val {
			case "Dec", "dec":
				p.variant = core.Dec
			case "Inc-S", "IncS", "inc-s", "incs":
				p.variant = core.IncS
			case "Inc-T", "IncT", "inc-t", "inct":
				p.variant = core.IncT
			case "Basic", "basic":
				p.variant = core.Basic
			default:
				return p, fmt.Errorf("%w: param variant=%q (want Dec, Inc-S, Inc-T, or Basic)", ErrInvalidQuery, val)
			}
			p.hasVariant = true
		default:
			return p, fmt.Errorf("%w: unknown param %q", ErrInvalidQuery, key)
		}
	}
	return p, nil
}

// truncate applies the maxResults cap (0 = unlimited).
func (p queryParams) truncate(comms []Community) []Community {
	if p.maxResults > 0 && len(comms) > p.maxResults {
		return comms[:p.maxResults]
	}
	return comms
}

// resolveKeywords maps query keyword strings to sorted interned vocab IDs.
// The nil/empty distinction is load-bearing for the ACQ engine: nil (no
// keywords requested) means "default to W(q)", while a non-nil empty slice
// (keywords requested, none exist in this graph) must stay empty so the
// engine does not silently fall back to W(q).
func resolveKeywords(g *graph.Graph, words []string) []int32 {
	if len(words) == 0 {
		return nil
	}
	var S []int32
	for _, w := range words {
		if id, ok := g.Vocab().ID(w); ok {
			S = append(S, id)
		}
	}
	slices.Sort(S)
	if S == nil {
		S = []int32{}
	}
	return S
}

// Community is the algorithm-independent result record shown in the UI.
type Community struct {
	Method         string   `json:"method"`
	Vertices       []int32  `json:"vertices"`
	SharedKeywords []string `json:"sharedKeywords,omitempty"`
	Theme          []string `json:"theme,omitempty"`
}

// CSAlgorithm is a pluggable community-search algorithm (query-based,
// online — Global, Local, ACQ, k-truss, or user-provided). Search must
// observe ctx: return ctx.Err() (or a wrapper) promptly once the context is
// canceled, so a dropped client or an expired deadline frees the worker.
type CSAlgorithm interface {
	Name() string
	Search(ctx context.Context, ds *Dataset, q Query) ([]Community, error)
}

// CDAlgorithm is a pluggable community-detection algorithm (whole-graph,
// offline — CODICIL or user-provided). Detect must observe ctx like
// CSAlgorithm.Search does.
type CDAlgorithm interface {
	Name() string
	Detect(ctx context.Context, ds *Dataset) ([]Community, error)
}

// Dataset bundles a graph with its indexes and a pool of warm query
// engines. All methods are safe for concurrent use; each index is guarded
// by its own sync.Once, so the first builder of one index never blocks
// searches that need another, and once built, reads take no lock at all —
// searches on the same dataset run fully in parallel.
//
// Indexes follow a "load if present, else build" discipline: a dataset
// opened from a snapshot (OpenSnapshot) arrives with its indexes pre-seeded
// and never pays construction again, while a freshly uploaded graph builds
// each index lazily on first use exactly as before.
type Dataset struct {
	Name  string
	Graph *graph.Graph

	// Info records how the dataset was materialized (see DatasetInfo). It
	// is set before the dataset is published and read-only afterwards.
	Info DatasetInfo

	// Version counts the mutation batches applied along this dataset's
	// lineage. A Dataset is an immutable version: Mutate derives a
	// successor (Version+1) rather than editing in place, and the Explorer
	// swaps the successor into its map — so queries holding this Dataset
	// keep a fully consistent graph+index snapshot for their whole
	// lifetime, while new queries see the new version.
	Version uint64

	// mutMu serializes mutation batches along the lineage; every successor
	// shares the pointer. It is never held by the read path.
	mutMu *sync.Mutex

	// backing is non-nil when the graph and pre-seeded indexes borrow a
	// mapped snapshot file (see backing.go); nil for heap-backed datasets.
	backing *backingRef

	treeOnce  sync.Once
	tree      *cltree.Tree
	treeReady atomic.Bool
	treeNanos atomic.Int64

	coreOnce  sync.Once
	coreNum   []int32
	coreReady atomic.Bool
	coreNanos atomic.Int64

	trussOnce  sync.Once
	truss      *ktruss.Decomposition
	trussReady atomic.Bool
	trussNanos atomic.Int64

	// engines holds warm *core.Engine values (each with its peeler and
	// per-query scratch already sized to the graph) so concurrent handlers
	// check one out instead of paying O(n) construction per request.
	engines sync.Pool
}

// DatasetInfo records a dataset's provenance for the catalog and the
// /api/graphs status report.
type DatasetInfo struct {
	// Source is "built" for graphs constructed in process (uploads,
	// generators) and "snapshot" for datasets opened from a snapshot file.
	Source string `json:"source"`
	// LoadDuration is the time OpenSnapshot spent materializing the
	// dataset (zero for built datasets).
	LoadDuration time.Duration `json:"-"`
	// SnapshotBytes is the encoded snapshot size when Source=="snapshot".
	SnapshotBytes int64 `json:"snapshotBytes,omitempty"`
	// OpenMode reports how a snapshot-sourced dataset was materialized:
	// "copy" (heap-decoded) or "mmap" (view-decoded over a file mapping).
	// Empty for built datasets and for mutation successors, which are
	// heap-materialized regardless of their base.
	OpenMode string `json:"openMode,omitempty"`
	// MappedBytes is the size of the backing file mapping (mmap opens only).
	MappedBytes int64 `json:"mappedBytes,omitempty"`
}

// IndexStatus reports which indexes a dataset currently holds in memory,
// without triggering any builds.
type IndexStatus struct {
	CLTree bool `json:"cltree"`
	Core   bool `json:"core"`
	Truss  bool `json:"truss"`
}

// NewDataset wraps a graph.
func NewDataset(name string, g *graph.Graph) *Dataset {
	return &Dataset{Name: name, Graph: g, Info: DatasetInfo{Source: "built"}, mutMu: &sync.Mutex{}}
}

// buildTotals accumulates index-build wall time across every dataset and
// version in the process — a monotone counter (datasets deleted or
// superseded by mutation never subtract), which is what /api/stats
// surfaces so rate()-style monitoring works.
var buildTotals struct {
	tree, core, truss atomic.Int64
}

// BuildTotals reports the cumulative per-index build wall time paid in this
// process. Monotone: it only ever grows.
func BuildTotals() IndexTimings {
	return IndexTimings{
		CLTreeMS: float64(buildTotals.tree.Load()) / 1e6,
		CoreMS:   float64(buildTotals.core.Load()) / 1e6,
		TrussMS:  float64(buildTotals.truss.Load()) / 1e6,
	}
}

// Tree returns the CL-tree, building it on first use if the dataset was not
// opened from a snapshot that already carried it.
func (d *Dataset) Tree() *cltree.Tree {
	d.treeOnce.Do(func() {
		start := time.Now()
		d.tree = cltree.Build(d.Graph)
		n := int64(time.Since(start))
		d.treeNanos.Store(n)
		buildTotals.tree.Add(n)
		d.treeReady.Store(true)
	})
	return d.tree
}

// CoreNumbers returns the core decomposition, computing it on first use if
// it was not pre-seeded from a snapshot.
func (d *Dataset) CoreNumbers() []int32 {
	d.coreOnce.Do(func() {
		start := time.Now()
		d.coreNum = kcore.Decompose(d.Graph)
		n := int64(time.Since(start))
		d.coreNanos.Store(n)
		buildTotals.core.Add(n)
		d.coreReady.Store(true)
	})
	return d.coreNum
}

// Truss returns the truss decomposition, computing it on first use if it
// was not pre-seeded from a snapshot. The build parallelizes its support
// counting across par.Workers() workers (the -index.workers knob).
func (d *Dataset) Truss() *ktruss.Decomposition {
	d.trussOnce.Do(func() {
		start := time.Now()
		d.truss = ktruss.Decompose(d.Graph)
		n := int64(time.Since(start))
		d.trussNanos.Store(n)
		buildTotals.truss.Add(n)
		d.trussReady.Store(true)
	})
	return d.truss
}

// Indexes reports which indexes are resident, without building any.
func (d *Dataset) Indexes() IndexStatus {
	return IndexStatus{
		CLTree: d.treeReady.Load(),
		Core:   d.coreReady.Load(),
		Truss:  d.trussReady.Load(),
	}
}

// IndexTimings reports the wall time each index build cost (zero for
// indexes pre-seeded from a snapshot or not yet built). Builds overlap
// under BuildIndexes, so the sum can exceed elapsed wall time.
type IndexTimings struct {
	CLTreeMS float64 `json:"cltreeMs"`
	CoreMS   float64 `json:"coreMs"`
	TrussMS  float64 `json:"trussMs"`
}

// BuildTimings reports this dataset version's build wall times, without
// building any index. Per-version, not cumulative: a successor derived by
// Mutate starts at zero and pays only for what it rebuilds (use
// BuildTotals for the process-wide monotone counter).
func (d *Dataset) BuildTimings() IndexTimings {
	return IndexTimings{
		CLTreeMS: float64(d.treeNanos.Load()) / 1e6,
		CoreMS:   float64(d.coreNanos.Load()) / 1e6,
		TrussMS:  float64(d.trussNanos.Load()) / 1e6,
	}
}

// BuildIndexes eagerly builds every index the dataset does not yet hold
// (the offline precomputation step of `cexplorer snapshot build` and the
// warm-up step of the upload path). The three builds fan out across the
// par.Workers() pool — each index is guarded by its own sync.Once, so
// racing with lazy builders is safe — and the call returns when the
// slowest finishes: at ≥3 workers the wall time is max(individual builds),
// not their sum; at 1 worker the builds run strictly sequentially. The
// truss build's internal counting pool is sized by the same knob but is
// nested, so total build goroutines can briefly exceed the knob while the
// fan-out and the counting phase overlap.
func (d *Dataset) BuildIndexes() {
	builds := []func(){
		func() { d.Tree() },
		func() { d.CoreNumbers() },
		func() { d.Truss() },
	}
	par.Each(len(builds), 0, func(i int) { builds[i]() })
}

// AcquireEngine checks a warm ACQ engine out of the dataset's pool, building
// one over the CL-tree if the pool is empty. The caller owns the engine
// until ReleaseEngine; engines are single-goroutine objects (they carry
// per-query scratch), so never share one across goroutines.
func (d *Dataset) AcquireEngine() *core.Engine {
	if e, ok := d.engines.Get().(*core.Engine); ok {
		return e
	}
	return core.NewEngine(d.Tree())
}

// ReleaseEngine returns an engine to the pool for the next query.
func (d *Dataset) ReleaseEngine(e *core.Engine) {
	if e != nil {
		d.engines.Put(e)
	}
}

// --- built-in CS algorithms ---

// ACQAlgorithm runs the ACQ engine (default: Dec).
type ACQAlgorithm struct {
	Variant core.Algorithm
}

// Name implements CSAlgorithm.
func (a *ACQAlgorithm) Name() string {
	if a.Variant == core.Dec {
		return "ACQ"
	}
	return "ACQ-" + a.Variant.String()
}

// Search implements CSAlgorithm.
func (a *ACQAlgorithm) Search(ctx context.Context, ds *Dataset, q Query) ([]Community, error) {
	if len(q.Vertices) == 0 {
		return nil, fmt.Errorf("%w: acq: no query vertex", ErrInvalidQuery)
	}
	p, err := parseParams(q, "variant", "maxResults")
	if err != nil {
		return nil, err
	}
	variant := a.Variant
	if p.hasVariant {
		variant = p.variant
	}
	eng := ds.AcquireEngine()
	defer ds.ReleaseEngine(eng)
	S := resolveKeywords(ds.Graph, q.Keywords)
	var res []core.Community
	if len(q.Vertices) == 1 {
		res, err = eng.SearchContext(ctx, q.Vertices[0], int32(q.K), S, variant)
	} else {
		res, err = eng.SearchMultiContext(ctx, q.Vertices, int32(q.K), S)
	}
	if err != nil {
		return nil, err
	}
	out := make([]Community, 0, len(res))
	for _, c := range res {
		out = append(out, Community{
			Method:         a.Name(),
			Vertices:       c.Vertices,
			SharedKeywords: ds.Graph.Vocab().Words(c.SharedKeywords),
			Theme:          metrics.Theme(ds.Graph, c.Vertices, 5),
		})
	}
	return p.truncate(out), nil
}

// GlobalAlgorithm is the Sozio–Gionis baseline.
type GlobalAlgorithm struct{}

// Name implements CSAlgorithm.
func (GlobalAlgorithm) Name() string { return "Global" }

// Search implements CSAlgorithm.
func (GlobalAlgorithm) Search(ctx context.Context, ds *Dataset, q Query) ([]Community, error) {
	if len(q.Vertices) == 0 {
		return nil, fmt.Errorf("%w: global: no query vertex", ErrInvalidQuery)
	}
	p, err := parseParams(q)
	if err != nil {
		return nil, err
	}
	r, err := csearch.GlobalContext(ctx, ds.Graph, ds.CoreNumbers(), q.Vertices[0], int32(q.K))
	if err != nil {
		return nil, err
	}
	if r == nil {
		return nil, nil
	}
	return p.truncate([]Community{{
		Method:   "Global",
		Vertices: r.Vertices,
		Theme:    metrics.Theme(ds.Graph, r.Vertices, 5),
	}}), nil
}

// LocalAlgorithm is the Cui et al. baseline.
type LocalAlgorithm struct {
	Budget int
}

// Name implements CSAlgorithm.
func (LocalAlgorithm) Name() string { return "Local" }

// Search implements CSAlgorithm.
func (l LocalAlgorithm) Search(ctx context.Context, ds *Dataset, q Query) ([]Community, error) {
	if len(q.Vertices) == 0 {
		return nil, fmt.Errorf("%w: local: no query vertex", ErrInvalidQuery)
	}
	p, err := parseParams(q, "budget")
	if err != nil {
		return nil, err
	}
	budget := l.Budget
	if p.budget > 0 {
		budget = p.budget
	}
	r, err := csearch.LocalContext(ctx, ds.Graph, q.Vertices[0], int32(q.K), csearch.LocalOptions{Budget: budget})
	if err != nil {
		return nil, err
	}
	if r == nil {
		return nil, nil
	}
	return p.truncate([]Community{{
		Method:   "Local",
		Vertices: r.Vertices,
		Theme:    metrics.Theme(ds.Graph, r.Vertices, 5),
	}}), nil
}

// KTrussAlgorithm is the Huang et al. k-truss community search.
type KTrussAlgorithm struct{}

// Name implements CSAlgorithm.
func (KTrussAlgorithm) Name() string { return "KTruss" }

// Search implements CSAlgorithm.
func (KTrussAlgorithm) Search(ctx context.Context, ds *Dataset, q Query) ([]Community, error) {
	if len(q.Vertices) == 0 {
		return nil, fmt.Errorf("%w: ktruss: no query vertex", ErrInvalidQuery)
	}
	p, err := parseParams(q)
	if err != nil {
		return nil, err
	}
	k := int32(q.K)
	if k < 2 {
		k = 2
	}
	comms, err := ds.Truss().CommunitiesContext(ctx, q.Vertices[0], k)
	if err != nil {
		return nil, err
	}
	out := make([]Community, 0, len(comms))
	for _, vs := range comms {
		out = append(out, Community{
			Method:   "KTruss",
			Vertices: vs,
			Theme:    metrics.Theme(ds.Graph, vs, 5),
		})
	}
	return p.truncate(out), nil
}

// --- built-in CD algorithm ---

// CODICILAlgorithm wraps the CODICIL pipeline as a CD plugin.
type CODICILAlgorithm struct {
	Opts codicil.Options
}

// Name implements CDAlgorithm.
func (CODICILAlgorithm) Name() string { return "CODICIL" }

// Detect implements CDAlgorithm.
func (c CODICILAlgorithm) Detect(ctx context.Context, ds *Dataset) ([]Community, error) {
	r, err := codicil.DetectContext(ctx, ds.Graph, c.Opts)
	if err != nil {
		return nil, err
	}
	comms := r.Partition.Communities()
	out := make([]Community, 0, len(comms))
	for _, vs := range comms {
		out = append(out, Community{
			Method:   "CODICIL",
			Vertices: vs,
			Theme:    metrics.Theme(ds.Graph, vs, 5),
		})
	}
	return out, nil
}

// --- the CExplorer interface of Figure 4 ---

// Explorer is the Go rendering of the paper's Java interface:
//
//	public interface CExplorer {
//	    public void upload(String filePath);
//	    public List<Community> search(CSAlgorithm algo, Query query);
//	    public List<Community> detect(CDAlgorithm algo);
//	    public void analyze(Community community);
//	    public void display(Community community);
//	}
//
// plus registration hooks for user algorithms. All query methods take a
// context.Context as their first argument (the go-native rendering of the
// paper's request lifecycle): cancellation and deadlines propagate from the
// HTTP layer down into the algorithm kernels.
type Explorer struct {
	mu       sync.RWMutex
	datasets map[string]*Dataset
	cs       map[string]CSAlgorithm
	cd       map[string]CDAlgorithm

	// cache, when non-nil, is the serve-time result cache (see cache.go):
	// Search/Detect/Analyze become version-keyed cache lookups with
	// singleflight coalescing and per-dataset admission control.
	cache *servecache.Cache

	// explore holds the live exploration sessions (the paper's Figure 1/6
	// browse loop as server-side state; see explore.go).
	explore exploreManager

	// mutateHook, when non-nil, observes every successful Mutate while the
	// dataset's lineage lock is still held, so invocations for one dataset
	// are strictly ordered by the Version they produced. The replication
	// feed hangs off this seam.
	mutateHook MutateHook
}

// MutateHook observes a successful mutation batch: the dataset name, the
// result (res.Version is the version the batch produced), and the applied
// ops. It runs on the mutating goroutine under the lineage lock — keep it
// cheap and never call back into Mutate.
type MutateHook func(dataset string, res *MutationResult, ops []Mutation)

// SetMutateHook installs the mutation observer. Install before serving;
// a nil hook disables observation.
func (e *Explorer) SetMutateHook(h MutateHook) {
	e.mu.Lock()
	e.mutateHook = h
	e.mu.Unlock()
}

// NewExplorer returns an Explorer with the built-in algorithms registered
// (ACQ, Global, Local, KTruss; CODICIL).
func NewExplorer() *Explorer {
	e := &Explorer{
		datasets: make(map[string]*Dataset),
		cs:       make(map[string]CSAlgorithm),
		cd:       make(map[string]CDAlgorithm),
	}
	e.explore.init()
	e.RegisterCS(&ACQAlgorithm{Variant: core.Dec})
	e.RegisterCS(GlobalAlgorithm{})
	e.RegisterCS(LocalAlgorithm{})
	e.RegisterCS(KTrussAlgorithm{})
	e.RegisterCD(CODICILAlgorithm{})
	return e
}

// RegisterCS installs a community-search plugin (replacing any with the
// same name).
func (e *Explorer) RegisterCS(a CSAlgorithm) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cs[a.Name()] = a
}

// RegisterCD installs a community-detection plugin.
func (e *Explorer) RegisterCD(a CDAlgorithm) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cd[a.Name()] = a
}

// CSAlgorithms lists registered CS algorithm names, sorted.
func (e *Explorer) CSAlgorithms() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.cs))
	for n := range e.cs {
		names = append(names, n)
	}
	slices.Sort(names)
	return names
}

// CDAlgorithms lists registered CD algorithm names, sorted.
func (e *Explorer) CDAlgorithms() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.cd))
	for n := range e.cd {
		names = append(names, n)
	}
	slices.Sort(names)
	return names
}

// Upload ingests a graph in the JSON wire format under the given name
// (Figure 4's upload; the file-path variant lives in cmd/cexplorer-cli).
func (e *Explorer) Upload(name string, r io.Reader) (*Dataset, error) {
	g, err := graph.LoadJSON(r)
	if err != nil {
		return nil, err
	}
	return e.AddGraph(name, g)
}

// AddGraph registers an in-memory graph as a dataset.
func (e *Explorer) AddGraph(name string, g *graph.Graph) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("upload: empty dataset name")
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("upload: %w", err)
	}
	ds := NewDataset(name, g)
	e.mu.Lock()
	e.datasets[name] = ds
	c := e.cache
	e.mu.Unlock()
	if c != nil {
		// A re-registered name restarts its lineage at Version 0, which
		// would collide with cached keys from the previous graph — purge.
		c.Purge(name)
	}
	return ds, nil
}

// RemoveDataset unregisters a dataset: reads from this point on see
// ErrDatasetNotFound, exploration sessions anchored on it are closed, its
// cached results are purged, and its backing file mapping (if any) is
// released once in-flight pinned reads finish. Reports whether the name was
// registered. Used by the admin delete endpoint on a primary and by a
// replica un-claiming a dataset its primary no longer serves.
func (e *Explorer) RemoveDataset(name string) bool {
	e.mu.Lock()
	ds, ok := e.datasets[name]
	delete(e.datasets, name)
	c := e.cache
	e.mu.Unlock()
	if !ok {
		return false
	}
	m := &e.explore
	m.mu.Lock()
	evicted := m.dropDatasetLocked(name)
	m.mu.Unlock()
	closeSessions(evicted)
	if c != nil {
		c.Purge(name)
	}
	ds.Close()
	return true
}

// Dataset returns a registered dataset.
func (e *Explorer) Dataset(name string) (*Dataset, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	d, ok := e.datasets[name]
	return d, ok
}

// Datasets lists registered dataset names, sorted.
func (e *Explorer) Datasets() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	names := make([]string, 0, len(e.datasets))
	for n := range e.datasets {
		names = append(names, n)
	}
	slices.Sort(names)
	return names
}

// Search runs a registered CS algorithm (Figure 4's search). It observes
// ctx: cancellation or an expired deadline stops the computation inside the
// algorithm kernel, and the error wraps ErrCanceled or ErrTimeout. With a
// result cache installed (SetCache), the call is a version-keyed cache
// lookup: hits skip the kernel entirely, concurrent misses for one query
// coalesce onto a single computation, and the per-dataset admission bound
// can shed it with ErrOverloaded.
func (e *Explorer) Search(ctx context.Context, dataset, algo string, q Query) ([]Community, error) {
	if err := ctx.Err(); err != nil {
		return nil, wrapContextErr(err)
	}
	ds, ok := e.Dataset(dataset)
	if !ok {
		return nil, fmt.Errorf("%w: search: %q", ErrDatasetNotFound, dataset)
	}
	e.mu.RLock()
	a, ok := e.cs[algo]
	c := e.cache
	e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: search: no CS algorithm %q", ErrUnknownAlgorithm, algo)
	}
	if c == nil {
		return e.searchOn(ctx, ds, a, q)
	}
	return e.cachedCommunities(ctx, c, dataset, ds.Version, searchKey(algo, q), func(ctx context.Context) ([]Community, error) {
		return e.searchOn(ctx, ds, a, q)
	})
}

// searchOn is the uncached search core: pin the dataset version for the
// computation's lifetime and run the kernel.
func (e *Explorer) searchOn(ctx context.Context, ds *Dataset, a CSAlgorithm, q Query) ([]Community, error) {
	unpin, err := ds.Pin()
	if err != nil {
		return nil, err
	}
	defer unpin()
	out, err := a.Search(ctx, ds, q)
	return out, wrapContextErr(err)
}

// Detect runs a registered CD algorithm (Figure 4's detect), observing ctx
// and the result cache like Search does.
func (e *Explorer) Detect(ctx context.Context, dataset, algo string) ([]Community, error) {
	if err := ctx.Err(); err != nil {
		return nil, wrapContextErr(err)
	}
	ds, ok := e.Dataset(dataset)
	if !ok {
		return nil, fmt.Errorf("%w: detect: %q", ErrDatasetNotFound, dataset)
	}
	e.mu.RLock()
	a, ok := e.cd[algo]
	c := e.cache
	e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: detect: no CD algorithm %q", ErrUnknownAlgorithm, algo)
	}
	if c == nil {
		return e.detectOn(ctx, ds, a)
	}
	return e.cachedCommunities(ctx, c, dataset, ds.Version, detectKey(algo), func(ctx context.Context) ([]Community, error) {
		return e.detectOn(ctx, ds, a)
	})
}

// detectOn is the uncached detection core.
func (e *Explorer) detectOn(ctx context.Context, ds *Dataset, a CDAlgorithm) ([]Community, error) {
	unpin, err := ds.Pin()
	if err != nil {
		return nil, err
	}
	defer unpin()
	out, err := a.Detect(ctx, ds)
	return out, wrapContextErr(err)
}

// Analysis is the report the analyze function produces for one community —
// the quality metrics and statistics panel of Figure 6(a).
type Analysis struct {
	Method string                 `json:"method"`
	CPJ    float64                `json:"cpj"`
	CMF    float64                `json:"cmf"`
	Stats  metrics.CommunityStats `json:"stats"`
	Theme  []string               `json:"theme"`
}

// Analyze computes quality metrics for a community against query vertex q
// (Figure 4's analyze), consulting the result cache when one is installed.
func (e *Explorer) Analyze(ctx context.Context, dataset string, c Community, q int32) (*Analysis, error) {
	if err := ctx.Err(); err != nil {
		return nil, wrapContextErr(err)
	}
	ds, ok := e.Dataset(dataset)
	if !ok {
		return nil, fmt.Errorf("%w: analyze: %q", ErrDatasetNotFound, dataset)
	}
	e.mu.RLock()
	sc := e.cache
	e.mu.RUnlock()
	if sc == nil {
		return e.analyzeOn(ds, c, q)
	}
	v, err := sc.Do(ctx, dataset, ds.Version, analyzeKey(c, q), func(context.Context) (any, int64, error) {
		a, err := e.analyzeOn(ds, c, q)
		if err != nil {
			return nil, 0, err
		}
		return a, int64(len(a.Method)) + 256, nil
	})
	if err != nil {
		return nil, wrapContextErr(err)
	}
	return v.(*Analysis), nil
}

// analyzeOn is the uncached analysis core.
func (e *Explorer) analyzeOn(ds *Dataset, c Community, q int32) (*Analysis, error) {
	unpin, err := ds.Pin()
	if err != nil {
		return nil, err
	}
	defer unpin()
	if q < 0 || int(q) >= ds.Graph.N() {
		return nil, fmt.Errorf("%w: analyze: query vertex %d out of range", ErrInvalidQuery, q)
	}
	return &Analysis{
		Method: c.Method,
		CPJ:    metrics.CPJ(ds.Graph, c.Vertices),
		CMF:    metrics.CMF(ds.Graph, c.Vertices, q),
		Stats:  metrics.Stats(ds.Graph, c.Vertices),
		Theme:  metrics.Theme(ds.Graph, c.Vertices, 8),
	}, nil
}

// Placement is display's output: positions keyed to the community's
// vertices plus the induced edges, ready for the browser canvas.
type Placement struct {
	Vertices []int32        `json:"vertices"`
	Names    []string       `json:"names"`
	Points   []layout.Point `json:"points"`
	Edges    [][2]int32     `json:"edges"` // indexes into Vertices
}

// Display computes the community layout (Figure 4's display).
func (e *Explorer) Display(ctx context.Context, dataset string, c Community, opts layout.Options) (*Placement, error) {
	if err := ctx.Err(); err != nil {
		return nil, wrapContextErr(err)
	}
	ds, ok := e.Dataset(dataset)
	if !ok {
		return nil, fmt.Errorf("%w: display: %q", ErrDatasetNotFound, dataset)
	}
	unpin, err := ds.Pin()
	if err != nil {
		return nil, err
	}
	defer unpin()
	sub := ds.Graph.Induce(c.Vertices)
	el := layout.EdgeList{Count: sub.N()}
	for l := int32(0); l < int32(sub.N()); l++ {
		for _, u := range sub.Neighbors(l) {
			if l < u {
				el.Pairs = append(el.Pairs, [2]int32{l, u})
			}
		}
	}
	pts := layout.FruchtermanReingold(el, opts)
	names := make([]string, sub.N())
	for i, v := range sub.Vertices {
		names[i] = ds.Graph.Name(v)
	}
	return &Placement{
		Vertices: sub.Vertices,
		Names:    names,
		Points:   pts,
		Edges:    el.Pairs,
	}, nil
}
