package api

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"cexplorer/internal/core"
	"cexplorer/internal/gen"
)

// TestConcurrentPooledSearchMatchesSerial fires many goroutines of
// ACQ search (Dec, Inc-S, Inc-T) against one shared CL-tree through the
// dataset's engine pool and asserts every result is identical to serial
// execution. This is the contract the concurrent serving layer rests on:
// pooled engines may carry scratch from arbitrary previous queries, and a
// query must not be able to observe it.
func TestConcurrentPooledSearchMatchesSerial(t *testing.T) {
	d := gen.GenerateDBLP(gen.SmallDBLPConfig())
	ds := NewDataset("dblp", d.Graph)
	ds.Tree() // build the shared index once, outside the timed/raced region

	variants := []core.Algorithm{core.Dec, core.IncS, core.IncT}
	type job struct {
		q    int32
		k    int
		algo core.Algorithm
	}
	var jobs []job
	n := int32(d.Graph.N())
	for i := int32(0); i < 12; i++ {
		v := (i * 97) % n
		jobs = append(jobs, job{q: v, k: 2 + int(i%3), algo: variants[i%3]})
	}

	// Serial ground truth, one algorithm object per variant.
	expected := make([][]Community, len(jobs))
	for i, j := range jobs {
		alg := &ACQAlgorithm{Variant: j.algo}
		res, err := alg.Search(context.Background(), ds, Query{Vertices: []int32{j.q}, K: j.k})
		if err != nil {
			t.Fatalf("serial job %d: %v", i, err)
		}
		expected[i] = res
	}

	// Concurrent run: every job several times, all goroutines drawing
	// engines from the shared pool.
	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan error, len(jobs)*rounds)
	mismatch := make(chan int, len(jobs)*rounds)
	for r := 0; r < rounds; r++ {
		for i, j := range jobs {
			wg.Add(1)
			go func(i int, j job) {
				defer wg.Done()
				alg := &ACQAlgorithm{Variant: j.algo}
				res, err := alg.Search(context.Background(), ds, Query{Vertices: []int32{j.q}, K: j.k})
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(res, expected[i]) {
					mismatch <- i
				}
			}(i, j)
		}
	}
	wg.Wait()
	close(errs)
	close(mismatch)
	for err := range errs {
		t.Errorf("concurrent search: %v", err)
	}
	for i := range mismatch {
		t.Errorf("job %d: concurrent result differs from serial (q=%d k=%d algo=%v)",
			i, jobs[i].q, jobs[i].k, jobs[i].algo)
	}
}

// TestEnginePoolReuse checks that a released engine is actually handed back
// out and still answers correctly after serving a different query.
func TestEnginePoolReuse(t *testing.T) {
	_, ds := figure5Explorer(t)
	e1 := ds.AcquireEngine()
	if _, err := e1.Search(0, 2, nil, core.Dec); err != nil {
		t.Fatal(err)
	}
	ds.ReleaseEngine(e1)
	e2 := ds.AcquireEngine()
	defer ds.ReleaseEngine(e2)
	if e2 != e1 {
		t.Log("pool did not return the same engine (allowed, but unexpected in a serial test)")
	}
	res, err := e2.Search(0, 2, nil, core.Dec)
	if err != nil || len(res) != 1 || len(res[0].Vertices) != 3 {
		t.Fatalf("reused engine result = %+v, err %v", res, err)
	}
}
