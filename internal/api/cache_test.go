package api

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"cexplorer/internal/gen"
	"cexplorer/internal/servecache"
)

// cachedExplorer is figure5Explorer with a small result cache installed.
func cachedExplorer(t testing.TB) (*Explorer, *servecache.Cache) {
	t.Helper()
	e, _ := figure5Explorer(t)
	c := NewServeCache(128, 1<<20, 0)
	e.SetCache(c)
	return e, c
}

var acqQuery = Query{Vertices: []int32{0}, K: 2, Keywords: []string{"w", "x", "y"}}

func TestCachedSearchHitThenVersionBump(t *testing.T) {
	e, c := cachedExplorer(t)
	ctx := context.Background()
	first, err := e.Search(ctx, "fig5", "ACQ", acqQuery)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Search(ctx, "fig5", "ACQ", acqQuery)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Computations != 1 {
		t.Fatalf("stats after repeat = %+v", st)
	}
	if len(first) != len(second) || len(first) == 0 || first[0].Method != second[0].Method {
		t.Fatalf("cached answer differs: %+v vs %+v", first, second)
	}

	// A mutation publishes a successor version; the same query misses (new
	// key) and recomputes against the new graph.
	if _, err := e.Mutate(ctx, "fig5", []Mutation{{Op: OpAddEdge, U: 5, V: 9}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Search(ctx, "fig5", "ACQ", acqQuery); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.Misses != 2 || st.Computations != 2 {
		t.Fatalf("stats after version bump = %+v", st)
	}
}

func TestCachedSearchNegativeCaching(t *testing.T) {
	e, c := cachedExplorer(t)
	ctx := context.Background()
	bad := Query{K: 2} // no query vertex: deterministic ErrInvalidQuery
	for i := 0; i < 2; i++ {
		if _, err := e.Search(ctx, "fig5", "ACQ", bad); !errors.Is(err, ErrInvalidQuery) {
			t.Fatalf("call %d: err = %v", i, err)
		}
	}
	st := c.Stats()
	if st.NegativeHits != 1 || st.Computations != 1 {
		t.Fatalf("negative caching stats = %+v", st)
	}
}

func TestCachedDetectAndAnalyze(t *testing.T) {
	e, c := cachedExplorer(t)
	ctx := context.Background()
	algos := e.CDAlgorithms()
	if len(algos) == 0 {
		t.Fatal("no CD algorithms")
	}
	if _, err := e.Detect(ctx, "fig5", algos[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Detect(ctx, "fig5", algos[0]); err != nil {
		t.Fatal(err)
	}
	comm := Community{Method: "ACQ", Vertices: []int32{0, 2, 3}}
	a1, err := e.Analyze(ctx, "fig5", comm, 0)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := e.Analyze(ctx, "fig5", comm, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 { // pointer identity: the second call served the cached value
		t.Fatal("analyze did not serve the cached result")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Computations != 2 {
		t.Fatalf("detect+analyze stats = %+v", st)
	}
}

func TestReuploadPurgesCache(t *testing.T) {
	e, c := cachedExplorer(t)
	ctx := context.Background()
	if _, err := e.Search(ctx, "fig5", "ACQ", acqQuery); err != nil {
		t.Fatal(err)
	}
	if n := c.DatasetStats("fig5").Entries; n != 1 {
		t.Fatalf("entries before re-upload = %d", n)
	}
	// Re-registering the name restarts the version counter at 0; stale
	// entries keyed (fig5, 0, …) would collide, so registration purges.
	if _, err := e.AddGraph("fig5", gen.Figure5()); err != nil {
		t.Fatal(err)
	}
	if n := c.DatasetStats("fig5").Entries; n != 0 {
		t.Fatalf("entries after re-upload = %d", n)
	}
	if _, err := e.Search(ctx, "fig5", "ACQ", acqQuery); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 0 {
		t.Fatalf("hit served across re-upload: %+v", st)
	}
}

func TestSearchKeyCanonical(t *testing.T) {
	a := searchKey("ACQ", Query{Vertices: []int32{0}, K: 2,
		Keywords: []string{"y", "x", "w"},
		Params:   map[string]string{"variant": "Dec", "maxResults": "3"}})
	b := searchKey("ACQ", Query{Vertices: []int32{0}, K: 2,
		Keywords: []string{"w", "y", "x"},
		Params:   map[string]string{"maxResults": "3", "variant": "Dec"}})
	if a != b {
		t.Fatalf("canonicalization failed:\n%q\n%q", a, b)
	}
	if c := searchKey("ACQ", Query{Vertices: []int32{0}, K: 3}); c == a {
		t.Fatal("distinct queries share a key")
	}
	// Huge queries collapse to a digest bounded at maxRawKeyLen.
	long := searchKey("ACQ", Query{Vertices: make([]int32, 512), K: 2})
	if len(long) > maxRawKeyLen {
		t.Fatalf("long key not digested: %d bytes", len(long))
	}
	if long2 := searchKey("ACQ", Query{Vertices: make([]int32, 513), K: 2}); long2 == long {
		t.Fatal("distinct long queries share a digest")
	}
}

// TestConcurrentCachedSearchMutateShed is the designated -race workout for
// the serve-time speed layer: cached searches, streaming mutations (version
// churn), and a tight admission bound all running against one dataset.
func TestConcurrentCachedSearchMutateShed(t *testing.T) {
	e, _ := figure5Explorer(t)
	e.SetCache(NewServeCache(64, 1<<20, 2))
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				q := Query{Vertices: []int32{int32((w + i) % 4)}, K: 2}
				if _, err := e.Search(ctx, "fig5", "ACQ", q); err != nil &&
					!errors.Is(err, ErrOverloaded) {
					t.Errorf("search: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			op := Mutation{Op: OpAddEdge, U: 7, V: 9}
			if i%2 == 1 {
				op.Op = OpRemoveEdge
			}
			if _, err := e.Mutate(ctx, "fig5", []Mutation{op}); err != nil {
				t.Errorf("mutate %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	st := e.Cache().Stats()
	if st.Computations == 0 {
		t.Fatalf("no computations recorded: %+v", st)
	}
}

func TestNewServeCacheClassifiers(t *testing.T) {
	c := NewServeCache(4, 1<<10, 0)
	ctx := context.Background()
	// Transient errors must not be cached: two calls, two computations.
	calls := 0
	for i := 0; i < 2; i++ {
		_, err := c.Do(ctx, "d", 1, "q", func(context.Context) (any, int64, error) {
			calls++
			return nil, 0, wrapContextErr(context.Canceled)
		})
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v", err)
		}
	}
	if calls != 2 {
		t.Fatalf("transient error was cached (calls = %d)", calls)
	}
	// Deterministic typed errors are cached: one computation serves both.
	calls = 0
	for i := 0; i < 2; i++ {
		_, err := c.Do(ctx, "d", 1, "neg", func(context.Context) (any, int64, error) {
			calls++
			return nil, 0, ErrVertexNotFound
		})
		if !errors.Is(err, ErrVertexNotFound) {
			t.Fatalf("err = %v", err)
		}
	}
	if calls != 1 {
		t.Fatalf("negative result not cached (calls = %d)", calls)
	}
	if !strings.Contains(ErrOverloaded.Error(), "overloaded") {
		t.Fatalf("ErrOverloaded = %v", ErrOverloaded)
	}
}
