package api

// The serve-time result cache (see internal/servecache). Search, Detect,
// and Analyze are pure functions of (dataset version, query): once an
// Explorer is given a cache, each of them becomes a cache lookup keyed by
// the dataset name, its immutable Version, and a canonicalized rendering of
// the request — a mutation publishes a successor version, so stale entries
// are unreachable by construction and age out of the LRU. Concurrent
// requests for one missing key coalesce onto a single computation
// (singleflight), deterministic failures (unknown vertex, invalid query)
// negative-cache, and per-dataset admission control sheds work beyond the
// configured in-flight bound with ErrOverloaded instead of queueing.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"slices"
	"strconv"
	"strings"

	"cexplorer/internal/servecache"
)

// NewServeCache builds a result cache wired with the API's error policy:
// cancellations and timeouts are transient (never cached, never adopted by
// coalesced followers), while vertex-not-found and invalid-query failures
// are deterministic and negative-cache. maxInflight ≤ 0 disables admission
// control; maxEntries/maxBytes ≤ 0 take the servecache defaults.
func NewServeCache(maxEntries int, maxBytes int64, maxInflight int) *servecache.Cache {
	return servecache.New(servecache.Config{
		MaxEntries:  maxEntries,
		MaxBytes:    maxBytes,
		MaxInflight: maxInflight,
		Transient: func(err error) bool {
			return errors.Is(err, ErrCanceled) || errors.Is(err, ErrTimeout) ||
				errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
		},
		Cacheable: func(err error) bool {
			return errors.Is(err, ErrVertexNotFound) || errors.Is(err, ErrInvalidQuery) ||
				errors.Is(err, ErrUnknownAlgorithm)
		},
	})
}

// SetCache installs (or, with nil, removes) the serve-time result cache.
// Set it before serving; it is safe to swap mid-flight, but in-flight
// requests finish on the cache they started with.
func (e *Explorer) SetCache(c *servecache.Cache) {
	e.mu.Lock()
	e.cache = c
	e.mu.Unlock()
}

// Cache returns the installed result cache (nil when caching is off).
func (e *Explorer) Cache() *servecache.Cache {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.cache
}

// maxRawKeyLen is the longest canonical query rendering stored verbatim;
// anything longer (an Analyze over a huge community, say) is replaced by
// its SHA-256 so cache keys stay small.
const maxRawKeyLen = 160

func finishKey(b *strings.Builder) string {
	s := b.String()
	if len(s) <= maxRawKeyLen {
		return s
	}
	sum := sha256.Sum256([]byte(s))
	return "sha256:" + hex.EncodeToString(sum[:])
}

// searchKey canonicalizes a search request: keyword order and Params map
// order never matter (keywords resolve to a sorted ID set; params are a
// map), so equivalent requests render to one key and coalesce.
func searchKey(algo string, q Query) string {
	var b strings.Builder
	b.WriteString("search\x1f")
	b.WriteString(algo)
	b.WriteString("\x1fk=")
	b.WriteString(strconv.Itoa(q.K))
	b.WriteString("\x1fv=")
	for i, v := range q.Vertices {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(int64(v), 10))
	}
	if len(q.Keywords) > 0 {
		kws := slices.Clone(q.Keywords)
		slices.Sort(kws)
		b.WriteString("\x1fw=")
		for i, w := range kws {
			if i > 0 {
				b.WriteByte('\x1e')
			}
			b.WriteString(w)
		}
	}
	if len(q.Params) > 0 {
		keys := make([]string, 0, len(q.Params))
		for k := range q.Params {
			keys = append(keys, k)
		}
		slices.Sort(keys)
		b.WriteString("\x1fp=")
		for i, k := range keys {
			if i > 0 {
				b.WriteByte('\x1e')
			}
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(q.Params[k])
		}
	}
	return finishKey(&b)
}

// detectKey canonicalizes a whole-graph detection request.
func detectKey(algo string) string {
	return "detect\x1f" + algo
}

// analyzeKey canonicalizes an Analyze request (community + query vertex).
func analyzeKey(c Community, q int32) string {
	var b strings.Builder
	b.WriteString("analyze\x1f")
	b.WriteString(c.Method)
	b.WriteString("\x1fq=")
	b.WriteString(strconv.FormatInt(int64(q), 10))
	b.WriteString("\x1fv=")
	for i, v := range c.Vertices {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(int64(v), 10))
	}
	return finishKey(&b)
}

// communitiesBytes estimates the heap footprint of a community list for the
// cache's byte accounting (slice headers + vertex IDs + string bytes).
func communitiesBytes(cs []Community) int64 {
	n := int64(len(cs)) * 96
	for i := range cs {
		c := &cs[i]
		n += int64(len(c.Method)) + int64(4*len(c.Vertices))
		for _, s := range c.SharedKeywords {
			n += int64(len(s)) + 16
		}
		for _, s := range c.Theme {
			n += int64(len(s)) + 16
		}
	}
	return n
}

// cachedCommunities adapts a community-list computation to the cache's
// (value, error) contract and recovers the typed slice on the way out. The
// cached slice is shared across callers and with the cache itself: callers
// must treat it as read-only (pagination subslicing and DTO building are
// fine) and clone it before any in-place filter or sort.
func (e *Explorer) cachedCommunities(ctx context.Context, c *servecache.Cache, dataset string, version uint64, key string, compute func(context.Context) ([]Community, error)) ([]Community, error) {
	v, err := c.Do(ctx, dataset, version, key, func(ctx context.Context) (any, int64, error) {
		out, err := compute(ctx)
		if err != nil {
			return nil, 0, err
		}
		return out, communitiesBytes(out), nil
	})
	if err != nil {
		return nil, wrapContextErr(err)
	}
	if v == nil {
		return nil, nil
	}
	return v.([]Community), nil
}
