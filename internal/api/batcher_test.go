package api

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// batcherOverExplorer wires a MutationBatcher straight onto Explorer.Mutate
// — the embedded (no journaling) configuration.
func batcherOverExplorer(e *Explorer, opts BatcherOptions) *MutationBatcher {
	return NewMutationBatcher(opts, func(ctx context.Context, dataset string, ops []Mutation) (*MutationResult, error) {
		return e.Mutate(ctx, dataset, ops)
	})
}

func TestBatcherSingleSubmission(t *testing.T) {
	e, ds := figure5Explorer(t)
	b := batcherOverExplorer(e, BatcherOptions{MaxOps: 64, MaxWait: 5 * time.Millisecond})
	res, err := b.Mutate(context.Background(), "fig5", []Mutation{{Op: OpAddEdge, U: 5, V: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 || res.Version != ds.Version+1 || res.Coalesced != 0 {
		t.Fatalf("res = %+v", res)
	}
	st := b.Stats()
	if st.Submissions != 1 || st.Batches != 1 || st.Ops != 1 || st.Coalesced != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBatcherEmptySubmission(t *testing.T) {
	e, _ := figure5Explorer(t)
	b := batcherOverExplorer(e, BatcherOptions{})
	if _, err := b.Mutate(context.Background(), "fig5", nil); !errors.Is(err, ErrInvalidMutation) {
		t.Fatalf("err = %v", err)
	}
}

// TestBatcherSizeTriggerCoalesces proves deterministic coalescing: with
// MaxOps = 4 and a maxWait far beyond the test, nothing flushes until the
// fourth single-op submission arrives, so all four share one applied batch.
func TestBatcherSizeTriggerCoalesces(t *testing.T) {
	e, _ := figure5Explorer(t)
	b := batcherOverExplorer(e, BatcherOptions{MaxOps: 4, MaxWait: time.Hour})
	// Four distinct valid edges on figure 5 (J is isolated; H–I is a dyad).
	edges := [][2]int32{{5, 9}, {6, 9}, {7, 9}, {8, 9}}
	var wg sync.WaitGroup
	results := make([]*MutationResult, len(edges))
	for i, uv := range edges {
		wg.Add(1)
		go func(i int, uv [2]int32) {
			defer wg.Done()
			res, err := b.Mutate(context.Background(), "fig5", []Mutation{{Op: OpAddEdge, U: uv[0], V: uv[1]}})
			if err != nil {
				t.Errorf("sub %d: %v", i, err)
				return
			}
			results[i] = res
		}(i, uv)
	}
	wg.Wait()
	for i, res := range results {
		if res == nil {
			t.Fatalf("sub %d: no result", i)
		}
		// Applied answers for the caller's own single op even though four
		// submissions shared one applied batch.
		if res.Coalesced != 4 || res.Applied != 1 {
			t.Fatalf("sub %d: res = %+v", i, res)
		}
	}
	st := b.Stats()
	if st.Submissions != 4 || st.Batches != 1 || st.Ops != 4 || st.Coalesced != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if st.AvgOpsPerBatch != 4 {
		t.Fatalf("avg ops per batch = %v", st.AvgOpsPerBatch)
	}
	// One version advance for the whole coalesced batch.
	ds, _ := e.Dataset("fig5")
	if ds.Version != 1 {
		t.Fatalf("version = %d", ds.Version)
	}
}

func TestBatcherMaxWaitFlushes(t *testing.T) {
	e, _ := figure5Explorer(t)
	b := batcherOverExplorer(e, BatcherOptions{MaxOps: 1 << 20, MaxWait: 2 * time.Millisecond})
	done := make(chan error, 1)
	go func() {
		_, err := b.Mutate(context.Background(), "fig5", []Mutation{{Op: OpAddEdge, U: 5, V: 9}})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("maxWait flush never fired")
	}
}

// TestBatcherFallbackIsolation: one submission's conflicting op poisons the
// combined all-or-nothing batch; the batcher re-applies per submission so
// the innocent caller still succeeds and only the conflicting one fails.
func TestBatcherFallbackIsolation(t *testing.T) {
	e, _ := figure5Explorer(t)
	b := batcherOverExplorer(e, BatcherOptions{MaxOps: 2, MaxWait: time.Hour})
	var wg sync.WaitGroup
	errs := make([]error, 2)
	ops := [][]Mutation{
		{{Op: OpAddEdge, U: 5, V: 9}}, // valid: F–J is a new edge
		{{Op: OpAddEdge, U: 0, V: 1}}, // conflict: A–B already exists
	}
	for i := range ops {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = b.Mutate(context.Background(), "fig5", ops[i])
		}(i)
	}
	wg.Wait()
	if errs[0] != nil {
		t.Fatalf("valid submission failed: %v", errs[0])
	}
	if !errors.Is(errs[1], ErrMutationConflict) {
		t.Fatalf("conflicting submission: %v", errs[1])
	}
	st := b.Stats()
	if st.Fallbacks != 1 {
		t.Fatalf("stats = %+v", st)
	}
	ds, _ := e.Dataset("fig5")
	if ds.Version != 1 {
		t.Fatalf("version = %d (want exactly the valid batch applied)", ds.Version)
	}
}

func TestBatcherCanceledCallerOpsStillApply(t *testing.T) {
	e, _ := figure5Explorer(t)
	b := batcherOverExplorer(e, BatcherOptions{MaxOps: 1 << 20, MaxWait: 50 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.Mutate(ctx, "fig5", []Mutation{{Op: OpAddEdge, U: 5, V: 9}}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v", err)
	}
}

// TestBatcherConcurrentLoad hammers one dataset from many goroutines and
// checks conservation: every acknowledged op is in the final graph.
func TestBatcherConcurrentLoad(t *testing.T) {
	e, _ := figure5Explorer(t)
	b := batcherOverExplorer(e, BatcherOptions{MaxOps: 8, MaxWait: time.Millisecond})
	const writers = 16
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each writer adds one fresh vertex; addVertex never conflicts.
			if _, err := b.Mutate(context.Background(), "fig5",
				[]Mutation{{Op: OpAddVertex, Name: "W", Keywords: []string{"z"}}}); err != nil {
				t.Errorf("writer %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
	ds, _ := e.Dataset("fig5")
	if got := ds.Graph.N(); got != 10+writers {
		t.Fatalf("vertices = %d, want %d", got, 10+writers)
	}
	st := b.Stats()
	if st.Submissions != writers || st.Ops != writers {
		t.Fatalf("stats = %+v", st)
	}
	if st.Batches > st.Submissions {
		t.Fatalf("more batches than submissions: %+v", st)
	}
}
