package api

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"

	"cexplorer/internal/cltree"
	"cexplorer/internal/graph"
	"cexplorer/internal/kcore"
)

// Streaming mutations. A Dataset is an immutable version of a graph plus
// its indexes; Mutate applies a batch of ops and returns the successor
// version with its indexes maintained incrementally:
//
//   - The graph evolves through a graph.Overlay, so the batch accumulates
//     over the frozen CSR and materializes into a fresh immutable graph
//     sharing every untouched arena.
//   - Core numbers are maintained op by op with the kcore subcore kernels
//     (only the vertices a mutation can actually move are visited), when
//     the base version holds them; otherwise they stay lazy.
//   - The CL-tree is repaired through cltree.Repair: shared wholesale when
//     the batch provably changed no k-core component, otherwise reskeleted
//     with unchanged inverted lists adopted from the old tree.
//   - The truss decomposition is invalidated (no incremental maintenance
//     yet); it rebuilds lazily on the next k-truss query.
//
// Explorer.Mutate is the serving entry point: it serializes batches per
// dataset lineage and publishes the successor with one map swap, the
// copy-on-write step that keeps every in-flight search and exploration
// session on the exact version it started with.

// Mutation op names accepted by Mutate.
const (
	OpAddEdge    = "addEdge"
	OpRemoveEdge = "removeEdge"
	OpAddVertex  = "addVertex"
)

// Mutation is one streaming graph edit.
type Mutation struct {
	// Op is one of addEdge, removeEdge, addVertex.
	Op string `json:"op"`
	// U and V are the edge endpoints (edge ops only).
	U int32 `json:"u,omitempty"`
	V int32 `json:"v,omitempty"`
	// Name and Keywords attribute a new vertex (addVertex only).
	Name     string   `json:"name,omitempty"`
	Keywords []string `json:"keywords,omitempty"`
}

// MutationResult reports one applied batch.
type MutationResult struct {
	Dataset string `json:"dataset"`
	// Version is the successor's version number.
	Version uint64 `json:"version"`
	Applied int    `json:"applied"`
	// Vertices and Edges are the successor graph's sizes.
	Vertices int `json:"vertices"`
	Edges    int `json:"edges"`
	// CoreChanged counts vertices whose core number moved (0 when core
	// numbers were not resident and maintenance stayed lazy).
	CoreChanged int `json:"coreChanged"`
	// TreeRepair reports how the CL-tree was maintained: "shared" (the
	// structural fast path — no k-core component changed), "rebuilt"
	// (skeleton rebuilt, unchanged inverted lists adopted), or "lazy" (the
	// base version held no tree).
	TreeRepair string `json:"treeRepair"`
	// Coalesced is set by the MutationBatcher: the number of caller
	// submissions that shared this applied batch (0 when unbatched).
	Coalesced int `json:"coalesced,omitempty"`
	// Journaled and Compacted are set by the serving layer after durable
	// logging: the batch's journal record was fsynced, and (rarely) the
	// append tripped a snapshot-rewrite compaction.
	Journaled bool `json:"journaled"`
	Compacted bool `json:"compacted,omitempty"`
}

// Mutate applies a batch of ops to this version and returns the successor
// Dataset; the receiver is never modified. Ops apply in order and the batch
// is all-or-nothing: the first invalid or conflicting op aborts with a
// typed error (ErrInvalidMutation / ErrMutationConflict) identifying its
// index, and no successor is produced. ctx is polled between ops.
//
// Callers that publish successors concurrently must serialize; the
// Explorer does this per lineage. Calling Mutate directly is the embedded
// use (tests, harnesses): derive, inspect, discard.
func (d *Dataset) Mutate(ctx context.Context, ops []Mutation) (*Dataset, *MutationResult, error) {
	if len(ops) == 0 {
		return nil, nil, fmt.Errorf("%w: empty batch", ErrInvalidMutation)
	}
	// The batch reads the base graph (overlay queries, materialization,
	// tree repair) up to the last line; pin mmap-backed bases for the whole
	// derivation.
	unpin, err := d.Pin()
	if err != nil {
		return nil, nil, err
	}
	defer unpin()

	// Core numbers ride along incrementally only when this version already
	// holds them (directly or through its CL-tree); an unindexed dataset
	// stays lazy end to end. One Maintainer (dense epoch-stamped scratch,
	// pooled across batches so steady-state mutation allocates no scratch)
	// serves the whole batch.
	var maint *kcore.Maintainer
	switch {
	case d.coreReady.Load():
		maint = acquireMaintainer(slices.Clone(d.coreNum))
	case d.treeReady.Load():
		maint = acquireMaintainer(slices.Clone(d.tree.CoreNumbers()))
	}
	if maint != nil {
		defer maintainerPool.Put(maint)
	}

	ov := graph.NewOverlay(d.Graph)
	var (
		edgeOps     []cltree.EdgeOp
		coreChanged int
		// changedLevel is the deepest CL-tree level any core change can
		// have touched (promoted vertices land at their new core, demoted
		// vertices leave their old one); cltree.Repair uses it to bound the
		// frontier rebuild.
		changedLevel int32
		added        int
		// singleChanged holds the changed vertices of a single-op batch,
		// the case cltree.Repair can patch surgically.
		singleChanged []int32
	)
	for i, op := range ops {
		if err := ctx.Err(); err != nil {
			return nil, nil, wrapContextErr(err)
		}
		switch op.Op {
		case OpAddEdge:
			if err := ov.AddEdge(op.U, op.V); err != nil {
				return nil, nil, mutationErr(i, op, err)
			}
			if maint != nil {
				ch := maint.InsertEdge(ov, op.U, op.V)
				coreChanged += len(ch)
				if len(ch) > 0 {
					if lvl := maint.Core()[ch[0]]; lvl > changedLevel {
						changedLevel = lvl
					}
					if len(ops) == 1 {
						singleChanged = slices.Clone(ch)
					}
				}
			}
			edgeOps = append(edgeOps, cltree.EdgeOp{U: op.U, V: op.V, Insert: true})
		case OpRemoveEdge:
			if err := ov.RemoveEdge(op.U, op.V); err != nil {
				return nil, nil, mutationErr(i, op, err)
			}
			if maint != nil {
				ch := maint.RemoveEdge(ov, op.U, op.V)
				coreChanged += len(ch)
				if len(ch) > 0 {
					// Demoted vertices left the level one above their new core.
					if lvl := maint.Core()[ch[0]] + 1; lvl > changedLevel {
						changedLevel = lvl
					}
					if len(ops) == 1 {
						singleChanged = slices.Clone(ch)
					}
				}
			}
			edgeOps = append(edgeOps, cltree.EdgeOp{U: op.U, V: op.V})
		case OpAddVertex:
			ov.AddVertex(op.Name, op.Keywords)
			if maint != nil {
				maint.AddVertex()
			}
			added++
		default:
			return nil, nil, fmt.Errorf("%w: op[%d]: unknown op %q (want %s, %s, or %s)",
				ErrInvalidMutation, i, op.Op, OpAddEdge, OpRemoveEdge, OpAddVertex)
		}
	}

	g, err := ov.Materialize()
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrInvalidMutation, err)
	}
	info := d.Info
	// Successors are heap-materialized whatever their base was; they carry
	// no mapping and no Close obligation.
	info.OpenMode = ""
	info.MappedBytes = 0
	next := &Dataset{
		Name:    d.Name,
		Graph:   g,
		Info:    info,
		Version: d.Version + 1,
		mutMu:   d.mutMu,
	}
	res := &MutationResult{
		Dataset:     d.Name,
		Version:     next.Version,
		Applied:     len(ops),
		Vertices:    g.N(),
		Edges:       g.M(),
		CoreChanged: coreChanged,
		TreeRepair:  "lazy",
	}
	if maint != nil {
		next.coreOnce.Do(func() {
			next.coreNum = maint.Core()
			next.coreReady.Store(true)
		})
	}
	if d.treeReady.Load() && maint != nil && !d.Graph.Borrowed() {
		// Repair is skipped on a borrowed (mmap-backed) base: the repaired
		// tree would share nodes whose vertex and inverted-list arenas alias
		// the mapping, outliving it once this version is closed. The
		// successor's tree rebuilds lazily on the heap instead.
		tree, shared := cltree.Repair(d.tree, g, maint.Core(), changedLevel, added, edgeOps, singleChanged)
		next.treeOnce.Do(func() {
			next.tree = tree
			next.treeReady.Store(true)
		})
		if shared {
			res.TreeRepair = "shared"
		} else {
			res.TreeRepair = "rebuilt"
		}
	}
	return next, res, nil
}

// maintainerPool recycles kcore.Maintainer scratch (four n-sized arrays)
// across mutation batches; Reset re-targets one at a new core array without
// clearing anything.
var maintainerPool sync.Pool

func acquireMaintainer(core []int32) *kcore.Maintainer {
	if m, ok := maintainerPool.Get().(*kcore.Maintainer); ok {
		m.Reset(core)
		return m
	}
	return kcore.NewMaintainer(core)
}

// mutationErr maps overlay errors onto the typed mutation sentinels,
// tagging the failing op's index.
func mutationErr(i int, op Mutation, err error) error {
	sentinel := ErrInvalidMutation
	if errors.Is(err, graph.ErrEdgeExists) || errors.Is(err, graph.ErrEdgeMissing) {
		sentinel = ErrMutationConflict
	}
	return fmt.Errorf("%w: op[%d] %s: %v", sentinel, i, op.Op, err)
}

// Mutate applies a batch to the named dataset and publishes the successor
// version. Batches on one dataset serialize (a lineage-wide mutex), while
// reads never block: searches in flight keep the version they resolved, and
// requests arriving after Mutate returns see the successor.
func (e *Explorer) Mutate(ctx context.Context, dataset string, ops []Mutation) (*MutationResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, wrapContextErr(err)
	}
	for {
		ds, ok := e.Dataset(dataset)
		if !ok {
			return nil, fmt.Errorf("%w: mutate: %q", ErrDatasetNotFound, dataset)
		}
		// Every registration path (NewDataset, OpenSnapshot, AddDataset)
		// installs the lineage lock before the dataset is published.
		mu := ds.mutMu
		mu.Lock()
		cur, ok := e.Dataset(dataset)
		if !ok || cur.mutMu != mu {
			// The dataset was removed or replaced wholesale (re-upload)
			// while we waited; retry against whatever is there now.
			mu.Unlock()
			continue
		}
		next, res, err := cur.Mutate(ctx, ops)
		if err != nil {
			mu.Unlock()
			return nil, err
		}
		e.mu.Lock()
		e.datasets[dataset] = next
		hook := e.mutateHook
		e.mu.Unlock()
		if hook != nil {
			// Still under the lineage lock: hook calls for this dataset are
			// serialized in exactly the order versions were published.
			hook(dataset, res, ops)
		}
		mu.Unlock()
		return res, nil
	}
}
