package api

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"cexplorer/internal/gen"
)

// TestMutateConcurrency runs mutations concurrently with searches,
// exploration-session steps, and snapshot persistence. Its assertions
// encode the copy-on-write consistency contract: every search resolves one
// Dataset and must observe a graph+index snapshot that is internally
// consistent for its whole execution (community members within bounds and
// meeting the degree constraint in that exact graph), and an exploration
// session stays pinned to the version it was created on no matter how many
// versions are published afterwards. Run under -race, the test also makes
// the memory model do the torn-read hunting.
func TestMutateConcurrency(t *testing.T) {
	exp := NewExplorer()
	base := gen.GNMAttributed(300, 900, 12, 42)
	baseN := base.N()
	if _, err := exp.AddGraph("d", base); err != nil {
		t.Fatal(err)
	}
	ds, _ := exp.Dataset("d")
	ds.CoreNumbers()
	ds.Tree()

	deadline := time.Now().Add(600 * time.Millisecond)
	if testing.Short() {
		deadline = time.Now().Add(150 * time.Millisecond)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	fail := make(chan error, 64)
	report := func(format string, args ...any) {
		select {
		case fail <- fmt.Errorf(format, args...):
		default:
		}
	}

	// Mutators: random interleaved inserts/deletes/vertex adds. Conflicts
	// with a concurrently published version are expected and tolerated;
	// any other error is a bug.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for time.Now().Before(deadline) {
				cur, _ := exp.Dataset("d")
				n := int32(cur.Graph.N())
				var op Mutation
				u, v := rng.Int31n(n), rng.Int31n(n)
				switch {
				case rng.Intn(20) == 0:
					op = Mutation{Op: OpAddVertex, Keywords: []string{"fresh"}}
				case u == v:
					continue
				case cur.Graph.HasEdge(u, v):
					op = Mutation{Op: OpRemoveEdge, U: u, V: v}
				default:
					op = Mutation{Op: OpAddEdge, U: u, V: v}
				}
				if _, err := exp.Mutate(ctx, "d", []Mutation{op}); err != nil &&
					!errors.Is(err, ErrMutationConflict) && !errors.Is(err, ErrInvalidMutation) {
					report("mutator: %v", err)
					return
				}
			}
		}(int64(w) + 1)
	}

	// Searchers: pin a version, search on it, and verify the answer against
	// that same pinned version — the observable definition of "no torn
	// reads across a version swap".
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for time.Now().Before(deadline) {
				pinned, ok := exp.Dataset("d")
				if !ok {
					report("searcher: dataset vanished")
					return
				}
				q := int32(rng.Intn(baseN)) // base vertices exist in every version
				k := 1 + rng.Intn(3)
				eng := pinned.AcquireEngine()
				res, err := eng.SearchContext(ctx, q, int32(k), nil, 0)
				pinned.ReleaseEngine(eng)
				if err != nil {
					report("searcher: %v", err)
					return
				}
				g := pinned.Graph
				for _, c := range res {
					member := make(map[int32]bool, len(c.Vertices))
					for _, v := range c.Vertices {
						if int(v) >= g.N() {
							report("searcher: vertex %d outside pinned graph (n=%d)", v, g.N())
							return
						}
						member[v] = true
					}
					for _, v := range c.Vertices {
						deg := 0
						for _, u := range g.Neighbors(v) {
							if member[u] {
								deg++
							}
						}
						if deg < k {
							report("searcher: community member %d has induced degree %d < k=%d on its own version", v, deg, k)
							return
						}
					}
				}
			}
		}(int64(w))
	}

	// Explore-session driver: the session must keep serving its pinned
	// version (ring vertices bounded by the creation-time graph) while
	// mutations publish successors underneath it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		st, err := exp.Explore(ctx, "d", Query{Vertices: []int32{1}, K: 1})
		if err != nil {
			report("explore create: %v", err)
			return
		}
		// Vertex counts only grow along a lineage, so a bound taken right
		// after creation can never under-count the session's pinned graph;
		// a ring escaping it means the session left its version.
		pinned, _ := exp.Dataset("d")
		pinnedN := pinned.Graph.N()
		actions := []string{"contract", "expand"}
		for i := 0; time.Now().Before(deadline); i++ {
			next, err := exp.ExploreStep(ctx, "d", st.ID, actions[i%2], 0)
			if err != nil {
				if errors.Is(err, ErrInvalidQuery) {
					continue // probing past the boundary is part of the loop
				}
				report("explore step: %v", err)
				return
			}
			for _, v := range next.Ring {
				if int(v) >= pinnedN {
					report("explore: ring vertex %d beyond pinned n=%d (session escaped its version)", v, pinnedN)
					return
				}
			}
		}
	}()

	// Persister: snapshot the current version concurrently with swaps.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			cur, _ := exp.Dataset("d")
			if _, err := cur.WriteSnapshot(io.Discard); err != nil {
				report("persist: %v", err)
				return
			}
		}
	}()

	wg.Wait()
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}

	// The surviving dataset must still be fully coherent.
	final, _ := exp.Dataset("d")
	if err := final.Graph.Validate(); err != nil {
		t.Fatalf("final graph invalid: %v", err)
	}
	if err := final.Tree().Validate(); err != nil {
		t.Fatalf("final tree invalid: %v", err)
	}
}
