package api

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"cexplorer/internal/snapshot"
)

// Backing lifecycle for mmap-opened datasets. A dataset opened with
// snapshot.OpenMmap (or OpenAuto on an eligible file) borrows every bulk
// array — the CSR graph, pre-seeded index arenas, name and vocabulary
// string contents — from a file mapping instead of the heap. The mapping
// must outlive every reader, so:
//
//   - The Dataset holds the OpenFile reference until Close releases it.
//   - Query entry points Pin the backing for the duration of a request;
//     a Close racing an in-flight query just defers the munmap until the
//     last pin drops, and a pin attempted after Close fails with the
//     typed ErrDatasetClosed instead of touching dead pages.
//   - Mutation successors are materialized onto the heap (graph.Overlay
//     deep-copies shared arenas from a borrowed base), so a lineage keeps
//     evolving after its v0 mapping is gone.
//   - A mutate-superseded version that is dropped without Close has its
//     mapping released by a GC cleanup, so long-running servers do not
//     accumulate dead mappings.
//
// Heap-backed datasets have a nil backing; Pin and Close are free no-ops.

// backingRef ties a dataset version to its file mapping.
type backingRef struct {
	m      *snapshot.Mapping
	closed atomic.Bool
}

// attachBacking installs the mapping reference on a freshly opened dataset
// (before it is published) and arranges for GC to release the mapping if
// the dataset is dropped without Close.
func attachBacking(d *Dataset, m *snapshot.Mapping) {
	b := &backingRef{m: m}
	d.backing = b
	runtime.AddCleanup(d, func(b *backingRef) {
		if b.closed.CompareAndSwap(false, true) {
			b.m.Release()
		}
	}, b)
}

// Close releases the dataset's backing file mapping, if any. The unmap
// happens once every pinned query finishes; new pins fail from this point
// on with ErrDatasetClosed. Close is idempotent and a no-op for heap-backed
// datasets. After Close, direct method calls on the dataset (embedded use,
// bypassing Pin) are invalid.
func (d *Dataset) Close() error {
	b := d.backing
	if b == nil {
		return nil
	}
	if b.closed.CompareAndSwap(false, true) {
		b.m.Release()
	}
	return nil
}

// Pin guards the dataset's backing memory for the duration of a read. It
// returns a release func that must be called when the read finishes (safe
// to call more than once). For heap-backed datasets it is a free no-op.
// Pinning a closed dataset fails with ErrDatasetClosed.
func (d *Dataset) Pin() (release func(), err error) {
	b := d.backing
	if b == nil {
		return func() {}, nil
	}
	if b.closed.Load() || !b.m.Retain() {
		return nil, fmt.Errorf("%w: %q", ErrDatasetClosed, d.Name)
	}
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			b.m.Release()
		}
	}, nil
}

// MappedBytes returns the size of the live file mapping backing the
// dataset, or zero for heap-backed (or closed) datasets.
func (d *Dataset) MappedBytes() int64 {
	b := d.backing
	if b == nil || b.closed.Load() {
		return 0
	}
	return b.m.Size()
}
