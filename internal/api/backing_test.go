package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"cexplorer/internal/gen"
	"cexplorer/internal/layout"
	"cexplorer/internal/snapshot"
)

// openMmapDataset persists ds as a v3 snapshot and reopens it strictly
// mmap-backed, skipping the test where the platform has no mmap.
func openMmapDataset(t *testing.T, ds *Dataset) *Dataset {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ds.cxsnap")
	if _, err := ds.WriteSnapshotFile(path); err != nil {
		t.Fatalf("write snapshot: %v", err)
	}
	got, err := OpenSnapshotFileMode("", path, snapshot.OpenMmap)
	if err != nil {
		if _, _, merr := snapshot.OpenFile(path, snapshot.OpenMmap); merr != nil && !errors.Is(merr, snapshot.ErrNotZeroCopy) {
			t.Skipf("mmap unavailable: %v", merr)
		}
		t.Fatalf("mmap open: %v", err)
	}
	return got
}

// searchJSON runs one ACQ search and returns the marshaled answer.
func searchJSON(t *testing.T, e *Explorer, dataset string, q Query) []byte {
	t.Helper()
	comms, err := e.Search(context.Background(), dataset, "ACQ", q)
	if err != nil {
		t.Fatalf("search %s: %v", dataset, err)
	}
	out, _ := json.Marshal(comms)
	return out
}

func TestMmapDatasetServesQueries(t *testing.T) {
	heap := NewDataset("g", gen.Figure5())
	mapped := openMmapDataset(t, heap)
	defer mapped.Close()

	if mapped.Info.OpenMode != "mmap" || mapped.Info.MappedBytes <= 0 {
		t.Fatalf("Info = mode %q, %d mapped bytes", mapped.Info.OpenMode, mapped.Info.MappedBytes)
	}
	if mb := mapped.MappedBytes(); mb != mapped.Info.MappedBytes {
		t.Fatalf("MappedBytes() = %d, Info says %d", mb, mapped.Info.MappedBytes)
	}
	if !mapped.Graph.Borrowed() {
		t.Fatalf("mmap-opened graph not borrowed")
	}

	exp := NewExplorer()
	for _, ds := range []*Dataset{heap, mapped} {
		if err := exp.AddDataset(ds); err != nil {
			t.Fatalf("add %s: %v", ds.Name, err)
		}
	}
	// Same answers off the mapping as off the heap, across entry points
	// that touch adjacency, keyword arenas, and name contents.
	q := Query{Vertices: []int32{0}, K: 2}
	if want, got := searchJSON(t, exp, "g", q), searchJSON(t, exp, "g", q); !bytes.Equal(want, got) {
		t.Fatalf("mmap search diverges from heap:\n%s\n%s", want, got)
	}
	comms, err := exp.Search(context.Background(), "g", "ACQ", q)
	if err != nil || len(comms) == 0 {
		t.Fatalf("search for analyze: %v (%d communities)", err, len(comms))
	}
	if _, err := exp.Analyze(context.Background(), "g", comms[0], 0); err != nil {
		t.Fatalf("analyze on mmap dataset: %v", err)
	}
	if _, err := exp.Display(context.Background(), "g", comms[0], layout.Options{}); err != nil {
		t.Fatalf("display on mmap dataset: %v", err)
	}
}

func TestPinAfterCloseFails(t *testing.T) {
	mapped := openMmapDataset(t, NewDataset("g", gen.Figure5()))
	unpin, err := mapped.Pin()
	if err != nil {
		t.Fatalf("pin live dataset: %v", err)
	}
	unpin()
	unpin() // release must be idempotent

	if err := mapped.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := mapped.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := mapped.Pin(); !errors.Is(err, ErrDatasetClosed) {
		t.Fatalf("pin after close = %v, want ErrDatasetClosed", err)
	} else if ErrorCode(err) != "dataset_closed" {
		t.Fatalf("error code = %q", ErrorCode(err))
	}
	if mb := mapped.MappedBytes(); mb != 0 {
		t.Fatalf("MappedBytes after close = %d", mb)
	}

	// The explorer front door surfaces the typed error too.
	exp := NewExplorer()
	if err := exp.AddDataset(mapped); err != nil {
		t.Fatalf("add: %v", err)
	}
	_, err = exp.Search(context.Background(), "g", "ACQ", Query{Vertices: []int32{0}, K: 2})
	if !errors.Is(err, ErrDatasetClosed) {
		t.Fatalf("search on closed dataset = %v, want ErrDatasetClosed", err)
	}
}

// TestCloseWhilePinnedRace hammers searches while Close lands mid-flight:
// every request must either finish normally (it pinned the mapping first)
// or fail with the typed closed error — never touch unmapped pages. Run
// with -race to check the pin/close handoff.
func TestCloseWhilePinnedRace(t *testing.T) {
	mapped := openMmapDataset(t, NewDataset("g", gen.Figure5()))
	exp := NewExplorer()
	if err := exp.AddDataset(mapped); err != nil {
		t.Fatalf("add: %v", err)
	}

	const searchers = 8
	var (
		start sync.WaitGroup
		done  sync.WaitGroup
	)
	start.Add(1)
	done.Add(searchers)
	errs := make(chan error, searchers*64)
	for i := 0; i < searchers; i++ {
		go func(seed int) {
			defer done.Done()
			start.Wait()
			for j := 0; j < 64; j++ {
				q := Query{Vertices: []int32{int32((seed + j) % 6)}, K: 2}
				if _, err := exp.Search(context.Background(), "g", "ACQ", q); err != nil && !errors.Is(err, ErrDatasetClosed) {
					errs <- err
					return
				}
			}
		}(i)
	}
	start.Done()
	mapped.Close()
	done.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("search during close: %v", err)
	}
}

// TestMutateDetachesFromMapping proves a mutation successor owns all of its
// memory: after the mapped base is closed (and its pages gone), the
// successor keeps answering, identically to a heap-built twin.
func TestMutateDetachesFromMapping(t *testing.T) {
	g := gen.Figure5()
	mapped := openMmapDataset(t, NewDataset("g", g))
	ops := []Mutation{
		{Op: OpAddVertex, Name: "newcomer", Keywords: []string{"db"}},
		{Op: OpAddEdge, U: 0, V: int32(g.N())},
		{Op: OpRemoveEdge, U: 0, V: 1},
	}
	next, res, err := mapped.Mutate(context.Background(), ops)
	if err != nil {
		t.Fatalf("mutate: %v", err)
	}
	if res.Applied != len(ops) {
		t.Fatalf("applied %d of %d ops", res.Applied, len(ops))
	}
	if next.Graph.Borrowed() {
		t.Fatalf("successor graph still borrows the mapping")
	}
	if next.Info.OpenMode != "" || next.Info.MappedBytes != 0 || next.MappedBytes() != 0 {
		t.Fatalf("successor Info claims a mapping: mode %q, %d bytes", next.Info.OpenMode, next.Info.MappedBytes)
	}

	// Heap twin: same base graph, same ops, never near a mapping.
	twin, _, err := NewDataset("g", g).Mutate(context.Background(), ops)
	if err != nil {
		t.Fatalf("twin mutate: %v", err)
	}

	// Unmap the base, then touch everything the successor has: adjacency,
	// names, keywords, and a fresh index build.
	mapped.Close()
	if err := next.Graph.Validate(); err != nil {
		t.Fatalf("successor graph invalid after base close: %v", err)
	}
	exp := NewExplorer()
	if err := exp.AddDataset(next); err != nil {
		t.Fatalf("add successor: %v", err)
	}
	expTwin := NewExplorer()
	if err := expTwin.AddDataset(twin); err != nil {
		t.Fatalf("add twin: %v", err)
	}
	for q := 0; q < next.Graph.N(); q += 2 {
		query := Query{Vertices: []int32{int32(q)}, K: 2}
		got := searchJSON(t, exp, "g", query)
		want := searchJSON(t, expTwin, "g", query)
		if !bytes.Equal(got, want) {
			t.Fatalf("q=%d: successor diverges from heap twin:\n%s\n%s", q, got, want)
		}
	}
	nc, err := exp.Search(context.Background(), "g", "ACQ", Query{Vertices: []int32{int32(g.N())}, K: 1})
	if err != nil || len(nc) == 0 {
		t.Fatalf("search from new vertex: %v (%d communities)", err, len(nc))
	}
	if _, err := exp.Display(context.Background(), "g", nc[0], layout.Options{}); err != nil {
		t.Fatalf("display touching new vertex name: %v", err)
	}
	if next.Truss() == nil {
		t.Fatalf("successor truss build failed")
	}
}

// TestExploreSessionOutlivesClose pins the mapping through an exploration
// session: the session took its own pin at creation, so closing the dataset
// does not pull pages out from under subsequent steps.
func TestExploreSessionOutlivesClose(t *testing.T) {
	mapped := openMmapDataset(t, NewDataset("g", gen.Figure5()))
	exp := NewExplorer()
	if err := exp.AddDataset(mapped); err != nil {
		t.Fatalf("add: %v", err)
	}
	st, err := exp.Explore(context.Background(), "g", Query{Vertices: []int32{0}, K: 2})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	mapped.Close()
	if _, err := exp.ExploreStep(context.Background(), "g", st.ID, "expand", 0); err != nil {
		t.Fatalf("step after dataset close: %v", err)
	}
	if err := exp.ExploreClose("g", st.ID); err != nil {
		t.Fatalf("close session: %v", err)
	}
	// New sessions on the closed dataset must fail typed, not crash.
	if _, err := exp.Explore(context.Background(), "g", Query{Vertices: []int32{0}, K: 2}); !errors.Is(err, ErrDatasetClosed) {
		t.Fatalf("explore on closed dataset = %v, want ErrDatasetClosed", err)
	}
}
