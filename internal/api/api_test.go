package api

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"cexplorer/internal/gen"
	"cexplorer/internal/graph"
	"cexplorer/internal/layout"
)

func figure5Explorer(t testing.TB) (*Explorer, *Dataset) {
	t.Helper()
	e := NewExplorer()
	ds, err := e.AddGraph("fig5", gen.Figure5())
	if err != nil {
		t.Fatal(err)
	}
	return e, ds
}

func TestBuiltinsRegistered(t *testing.T) {
	e := NewExplorer()
	cs := strings.Join(e.CSAlgorithms(), ",")
	for _, want := range []string{"ACQ", "Global", "Local", "KTruss"} {
		if !strings.Contains(cs, want) {
			t.Fatalf("CS registry missing %s: %s", want, cs)
		}
	}
	cd := strings.Join(e.CDAlgorithms(), ",")
	if !strings.Contains(cd, "CODICIL") {
		t.Fatalf("CD registry missing CODICIL: %s", cd)
	}
}

func TestSearchACQ(t *testing.T) {
	e, _ := figure5Explorer(t)
	comms, err := e.Search(context.Background(), "fig5", "ACQ", Query{Vertices: []int32{0}, K: 2, Keywords: []string{"w", "x", "y"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(comms) != 1 {
		t.Fatalf("communities = %+v", comms)
	}
	c := comms[0]
	if c.Method != "ACQ" || len(c.Vertices) != 3 {
		t.Fatalf("community = %+v", c)
	}
	if len(c.SharedKeywords) != 2 {
		t.Fatalf("shared = %v", c.SharedKeywords)
	}
	if len(c.Theme) == 0 {
		t.Fatal("no theme")
	}
}

func TestSearchACQMultiVertex(t *testing.T) {
	e, _ := figure5Explorer(t)
	comms, err := e.Search(context.Background(), "fig5", "ACQ", Query{Vertices: []int32{0, 3}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(comms) != 1 || len(comms[0].Vertices) != 3 {
		t.Fatalf("multi = %+v", comms)
	}
}

func TestSearchUnknownKeywordsFallBack(t *testing.T) {
	e, _ := figure5Explorer(t)
	// Nonexistent keyword: ACQ treats it as an empty S → keywordless k-core.
	comms, err := e.Search(context.Background(), "fig5", "ACQ", Query{Vertices: []int32{0}, K: 2, Keywords: []string{"nosuch"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(comms) != 1 || len(comms[0].SharedKeywords) != 0 {
		t.Fatalf("fallback = %+v", comms)
	}
}

func TestSearchGlobalLocalKTruss(t *testing.T) {
	e, _ := figure5Explorer(t)
	for _, algo := range []string{"Global", "Local", "KTruss"} {
		comms, err := e.Search(context.Background(), "fig5", algo, Query{Vertices: []int32{0}, K: 3})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(comms) == 0 {
			t.Fatalf("%s returned nothing", algo)
		}
		if comms[0].Method != algo {
			t.Fatalf("%s: method = %q", algo, comms[0].Method)
		}
		// All should find the K4 for A at k=3 (KTruss interprets k as truss).
		if len(comms[0].Vertices) < 4 {
			t.Fatalf("%s: vertices = %v", algo, comms[0].Vertices)
		}
	}
}

func TestSearchErrors(t *testing.T) {
	e, _ := figure5Explorer(t)
	if _, err := e.Search(context.Background(), "nope", "ACQ", Query{Vertices: []int32{0}}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := e.Search(context.Background(), "fig5", "nope", Query{Vertices: []int32{0}}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := e.Search(context.Background(), "fig5", "ACQ", Query{}); err == nil {
		t.Fatal("empty query accepted")
	}
}

func TestDetectCODICIL(t *testing.T) {
	e, _ := figure5Explorer(t)
	comms, err := e.Detect(context.Background(), "fig5", "CODICIL")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int32]bool{}
	for _, c := range comms {
		for _, v := range c.Vertices {
			if seen[v] {
				t.Fatalf("vertex %d in two communities", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("partition covers %d vertices", len(seen))
	}
	if _, err := e.Detect(context.Background(), "fig5", "nope"); err == nil {
		t.Fatal("unknown CD accepted")
	}
}

func TestAnalyze(t *testing.T) {
	e, _ := figure5Explorer(t)
	a, err := e.Analyze(context.Background(), "fig5", Community{Method: "ACQ", Vertices: []int32{0, 2, 3}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.CPJ <= 0 || a.CMF <= 0 {
		t.Fatalf("metrics = %+v", a)
	}
	if a.Stats.Vertices != 3 || a.Stats.Edges != 3 {
		t.Fatalf("stats = %+v", a.Stats)
	}
	if _, err := e.Analyze(context.Background(), "fig5", Community{}, -1); err == nil {
		t.Fatal("bad q accepted")
	}
	if _, err := e.Analyze(context.Background(), "nope", Community{}, 0); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestDisplay(t *testing.T) {
	e, _ := figure5Explorer(t)
	pl, err := e.Display(context.Background(), "fig5", Community{Vertices: []int32{0, 1, 2, 3}}, layout.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Points) != 4 || len(pl.Vertices) != 4 || len(pl.Names) != 4 {
		t.Fatalf("placement = %+v", pl)
	}
	if len(pl.Edges) != 6 {
		t.Fatalf("K4 edges = %d", len(pl.Edges))
	}
	if pl.Names[0] != "A" {
		t.Fatalf("names = %v", pl.Names)
	}
	if _, err := e.Display(context.Background(), "nope", Community{}, layout.Options{}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestUploadJSON(t *testing.T) {
	e := NewExplorer()
	jg := gen.Figure5().ToJSONGraph("fig5")
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(jg); err != nil {
		t.Fatal(err)
	}
	ds, err := e.Upload("uploaded", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Graph.N() != 10 {
		t.Fatalf("uploaded N = %d", ds.Graph.N())
	}
	if got := e.Datasets(); len(got) != 1 || got[0] != "uploaded" {
		t.Fatalf("datasets = %v", got)
	}
	if _, err := e.Upload("bad", strings.NewReader("{")); err == nil {
		t.Fatal("bad json accepted")
	}
	if _, err := e.AddGraph("", gen.Figure5()); err == nil {
		t.Fatal("empty name accepted")
	}
}

// customCS is a user plugin: returns q's neighborhood as the community —
// the "plug in her own CR solution" path of §1.
type customCS struct{}

func (customCS) Name() string { return "Neighborhood" }

func (customCS) Search(ctx context.Context, ds *Dataset, q Query) ([]Community, error) {
	v := q.Vertices[0]
	vs := append([]int32{v}, ds.Graph.Neighbors(v)...)
	return []Community{{Method: "Neighborhood", Vertices: vs}}, nil
}

func TestCustomPluginRegistration(t *testing.T) {
	e, _ := figure5Explorer(t)
	e.RegisterCS(customCS{})
	comms, err := e.Search(context.Background(), "fig5", "Neighborhood", Query{Vertices: []int32{0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(comms) != 1 || len(comms[0].Vertices) != 5 { // A + B,C,D,G
		t.Fatalf("plugin result = %+v", comms)
	}
}

func TestDatasetLazyIndexes(t *testing.T) {
	g := gen.Figure5()
	ds := NewDataset("x", g)
	if tr := ds.Tree(); tr == nil || tr.NumNodes() == 0 {
		t.Fatal("Tree not built")
	}
	if c := ds.CoreNumbers(); len(c) != g.N() {
		t.Fatal("CoreNumbers wrong")
	}
	if td := ds.Truss(); td.MaxTruss() != 4 {
		t.Fatal("Truss wrong")
	}
	// Second calls hit the cache (same pointer).
	if ds.Tree() != ds.Tree() {
		t.Fatal("Tree not cached")
	}
}

func TestVertexNameResolutionViaGraph(t *testing.T) {
	var _ *graph.Graph = gen.Figure5() // type sanity
}
