package api

// The write-side half of the serve-time speed layer: a mutation batcher
// that coalesces concurrent single-op mutation requests into one atomic
// Mutate batch. PR 4 measured batched incremental maintenance at ~2x the
// per-op throughput (one overlay materialization and one CL-tree repair
// amortize over the whole batch), so under concurrent write load, batching
// is free speedup. The idiom is the audit-log batcher's: a per-dataset
// pending buffer with a size trigger and a maxWait deadline, and a
// per-caller result channel each submission blocks on.
//
// Semantics: Dataset.Mutate is all-or-nothing per batch, but callers
// submitted independent requests — one caller's conflicting op must not
// reject its neighbors. When a combined batch fails, the batcher falls back
// to applying each submission in isolation, so every caller gets exactly
// the result it would have gotten unbatched (at per-op cost for that rare
// batch). Ops within one submission stay contiguous and ordered; the order
// of concurrent submissions within the combined batch is arrival order.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Batching defaults: flush at DefaultBatchMaxOps pending ops or
// DefaultBatchMaxWait after the first pending submission, whichever first.
const (
	DefaultBatchMaxOps  = 64
	DefaultBatchMaxWait = 2 * time.Millisecond
)

// BatcherOptions tunes a MutationBatcher; zero values take the defaults.
type BatcherOptions struct {
	// MaxOps flushes the pending buffer once it holds this many ops.
	MaxOps int
	// MaxWait flushes the pending buffer this long after its first
	// submission arrived, so a lone mutation is never delayed by more than
	// this bound waiting for company.
	MaxWait time.Duration
}

// ApplyFunc applies one op batch to a dataset and reports the result — the
// seam between the batcher and the serving stack. The HTTP layer supplies a
// closure over Explorer.Mutate plus journaling; embedded users can pass
// Explorer.Mutate directly.
type ApplyFunc func(ctx context.Context, dataset string, ops []Mutation) (*MutationResult, error)

// BatcherStats is the counter snapshot surfaced at /api/stats.
type BatcherStats struct {
	// Submissions counts caller-level Mutate calls; Batches counts apply
	// invocations that reached the engine. Batches < Submissions means
	// coalescing is happening.
	Submissions int64 `json:"submissions"`
	Batches     int64 `json:"batches"`
	// Ops counts ops applied across all batches.
	Ops int64 `json:"ops"`
	// Coalesced counts submissions that shared their apply with at least
	// one other submission.
	Coalesced int64 `json:"coalesced"`
	// Fallbacks counts combined batches that failed and were re-applied
	// per submission to isolate the failing caller.
	Fallbacks int64 `json:"fallbacks,omitempty"`
	// AvgOpsPerBatch is Ops/Batches — the amortization factor.
	AvgOpsPerBatch float64 `json:"avgOpsPerBatch"`
}

type batchOut struct {
	res *MutationResult
	err error
}

type batchSub struct {
	ops []Mutation
	ch  chan batchOut
}

type pendingBatch struct {
	dataset string
	subs    []*batchSub
	opCount int
	timer   *time.Timer
}

// MutationBatcher coalesces concurrent mutation submissions per dataset.
// Safe for concurrent use.
type MutationBatcher struct {
	apply ApplyFunc
	opts  BatcherOptions

	mu      sync.Mutex
	pending map[string]*pendingBatch

	submissions, batches, ops    atomic.Int64
	coalescedSubs, fallbackCount atomic.Int64
}

// NewMutationBatcher wraps apply with batching. apply is invoked with a
// background context: a batch speaks for several callers, so no single
// caller's cancellation may abort it.
func NewMutationBatcher(opts BatcherOptions, apply ApplyFunc) *MutationBatcher {
	if opts.MaxOps <= 0 {
		opts.MaxOps = DefaultBatchMaxOps
	}
	if opts.MaxWait <= 0 {
		opts.MaxWait = DefaultBatchMaxWait
	}
	return &MutationBatcher{
		apply:   apply,
		opts:    opts,
		pending: make(map[string]*pendingBatch),
	}
}

// Mutate submits ops for the dataset and blocks until the batch containing
// them is applied (or ctx is done). The result's Coalesced field reports
// how many submissions shared the applied batch. A caller that gives up
// (ctx done) stops waiting, but its ops remain in the batch and may still
// apply — the usual contract for an acknowledged-after-cancel write.
func (b *MutationBatcher) Mutate(ctx context.Context, dataset string, ops []Mutation) (*MutationResult, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrInvalidMutation)
	}
	if err := ctx.Err(); err != nil {
		return nil, wrapContextErr(err)
	}
	b.submissions.Add(1)
	sub := &batchSub{ops: ops, ch: make(chan batchOut, 1)}

	b.mu.Lock()
	pb := b.pending[dataset]
	if pb == nil {
		pb = &pendingBatch{dataset: dataset}
		b.pending[dataset] = pb
		pb.timer = time.AfterFunc(b.opts.MaxWait, func() { b.flushIfPending(dataset, pb) })
	}
	pb.subs = append(pb.subs, sub)
	pb.opCount += len(ops)
	var flushNow *pendingBatch
	if pb.opCount >= b.opts.MaxOps {
		delete(b.pending, dataset)
		pb.timer.Stop()
		flushNow = pb
	}
	b.mu.Unlock()

	if flushNow != nil {
		b.flush(flushNow)
	}
	select {
	case out := <-sub.ch:
		return out.res, out.err
	case <-ctx.Done():
		return nil, wrapContextErr(ctx.Err())
	}
}

// flushIfPending is the maxWait trigger: flush pb unless the size trigger
// already detached it.
func (b *MutationBatcher) flushIfPending(dataset string, pb *pendingBatch) {
	b.mu.Lock()
	if b.pending[dataset] != pb {
		b.mu.Unlock()
		return
	}
	delete(b.pending, dataset)
	b.mu.Unlock()
	b.flush(pb)
}

// flush applies a detached batch and fans results out to its submitters.
func (b *MutationBatcher) flush(pb *pendingBatch) {
	ctx := context.Background()
	if len(pb.subs) == 1 {
		sub := pb.subs[0]
		res, err := b.applyOne(ctx, pb.dataset, sub.ops)
		sub.ch <- batchOut{res, err}
		return
	}
	combined := make([]Mutation, 0, pb.opCount)
	for _, sub := range pb.subs {
		combined = append(combined, sub.ops...)
	}
	res, err := b.applyOne(ctx, pb.dataset, combined)
	if err == nil {
		b.coalescedSubs.Add(int64(len(pb.subs)))
		for _, sub := range pb.subs {
			// Each caller gets its own copy: Applied answers for the
			// caller's own ops (so applied == len(ops) holds whether or not
			// the request was coalesced), while Version, the graph sizes,
			// and CoreChanged describe the state after the combined batch.
			out := *res
			out.Applied = len(sub.ops)
			out.Coalesced = len(pb.subs)
			sub.ch <- batchOut{&out, nil}
		}
		return
	}
	// The combined batch was rejected as a whole (Mutate is all-or-nothing,
	// and one submission's conflict poisons the batch). Re-apply each
	// submission in isolation so every caller gets its unbatched outcome.
	b.fallbackCount.Add(1)
	for _, sub := range pb.subs {
		res, err := b.applyOne(ctx, pb.dataset, sub.ops)
		sub.ch <- batchOut{res, err}
	}
}

// applyOne runs the apply seam and keeps the throughput counters.
func (b *MutationBatcher) applyOne(ctx context.Context, dataset string, ops []Mutation) (*MutationResult, error) {
	res, err := b.apply(ctx, dataset, ops)
	if err == nil {
		b.batches.Add(1)
		b.ops.Add(int64(len(ops)))
	}
	return res, err
}

// Stats snapshots the batcher counters.
func (b *MutationBatcher) Stats() BatcherStats {
	st := BatcherStats{
		Submissions: b.submissions.Load(),
		Batches:     b.batches.Load(),
		Ops:         b.ops.Load(),
		Coalesced:   b.coalescedSubs.Load(),
		Fallbacks:   b.fallbackCount.Load(),
	}
	if st.Batches > 0 {
		st.AvgOpsPerBatch = float64(st.Ops) / float64(st.Batches)
	}
	return st
}
