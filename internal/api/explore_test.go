package api

import (
	"context"
	"errors"
	"testing"
	"time"

	"cexplorer/internal/gen"
)

// TestExploreRoundTrip drives the paper's browse loop through the session
// API: anchor at A on Figure 5, contract to a denser ring, expand back out,
// and check the Figure-6(b) nesting invariant (the ring at k+1 is a strict
// subset of the ring at k).
func TestExploreRoundTrip(t *testing.T) {
	e, _ := figure5Explorer(t)
	ctx := context.Background()

	st, err := e.Explore(ctx, "fig5", Query{Vertices: []int32{0}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.K != 2 || st.Dataset != "fig5" || st.Vertex != 0 {
		t.Fatalf("state = %+v", st)
	}
	if len(st.Communities) == 0 {
		t.Fatal("no attributed community at k=2")
	}
	if st.MaxK != 3 { // core(A) = 3 in Figure 5
		t.Fatalf("MaxK = %d, want 3", st.MaxK)
	}
	// Figure 5: the 2-core component of A is {A,B,C,D,E}.
	if st.RingSize != 5 || len(st.Ring) != 5 {
		t.Fatalf("ring at k=2 = %v", st.Ring)
	}
	at2 := intSet(st.Ring)
	// The attributed communities live inside the ring.
	for v := range vertexSet(st.Communities) {
		if !at2[v] {
			t.Fatalf("ACQ vertex %d outside the k=2 ring", v)
		}
	}

	// Contract: k 2→3, the ring must shrink to a strict subset (the K4).
	st3, err := e.ExploreStep(ctx, "fig5", st.ID, "contract", 0)
	if err != nil {
		t.Fatal(err)
	}
	if st3.K != 3 || st3.Steps != 1 {
		t.Fatalf("after contract: %+v", st3)
	}
	at3 := intSet(st3.Ring)
	if len(at3) == 0 || len(at3) >= len(at2) {
		t.Fatalf("contract did not shrink the ring: %d -> %d vertices", len(at2), len(at3))
	}
	for v := range at3 {
		if !at2[v] {
			t.Fatalf("vertex %d at k=3 missing from k=2 ring", v)
		}
	}

	// Contract past core(q) fails typed and leaves the session in place.
	if _, err := e.ExploreStep(ctx, "fig5", st.ID, "contract", 0); !errors.Is(err, ErrInvalidQuery) {
		t.Fatalf("contract past MaxK: err = %v, want ErrInvalidQuery", err)
	}
	got, err := e.ExploreGet("fig5", st.ID)
	if err != nil || got.K != 3 {
		t.Fatalf("session moved after failed step: %+v, %v", got, err)
	}

	// Expand back out: k 3→2 reproduces the k=2 ring exactly.
	st2, err := e.ExploreStep(ctx, "fig5", st.ID, "expand", 0)
	if err != nil {
		t.Fatal(err)
	}
	if st2.K != 2 || st2.Steps != 2 {
		t.Fatalf("after expand: %+v", st2)
	}
	if len(st2.Ring) != len(st.Ring) {
		t.Fatalf("expand did not restore the k=2 ring: %v vs %v", st2.Ring, st.Ring)
	}

	// Set jumps directly; expand below k=1 fails typed.
	if _, err := e.ExploreStep(ctx, "fig5", st.ID, "set", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExploreStep(ctx, "fig5", st.ID, "expand", 0); !errors.Is(err, ErrInvalidQuery) {
		t.Fatalf("expand below 1: err = %v, want ErrInvalidQuery", err)
	}

	// Close; the id is gone afterwards, also under the dataset check.
	if err := e.ExploreClose("fig5", st.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExploreGet("fig5", st.ID); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("get after close: err = %v, want ErrSessionNotFound", err)
	}
	if err := e.ExploreClose("fig5", st.ID); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("double close: err = %v, want ErrSessionNotFound", err)
	}
}

func vertexSet(comms []Community) map[int32]bool {
	set := map[int32]bool{}
	for _, c := range comms {
		for _, v := range c.Vertices {
			set[v] = true
		}
	}
	return set
}

func intSet(vs []int32) map[int32]bool {
	set := map[int32]bool{}
	for _, v := range vs {
		set[v] = true
	}
	return set
}

// TestExploreErrors covers the typed failure modes of session creation.
func TestExploreErrors(t *testing.T) {
	e, _ := figure5Explorer(t)
	ctx := context.Background()
	if _, err := e.Explore(ctx, "nope", Query{Vertices: []int32{0}, K: 2}); !errors.Is(err, ErrDatasetNotFound) {
		t.Fatalf("unknown dataset: %v", err)
	}
	if _, err := e.Explore(ctx, "fig5", Query{K: 2}); !errors.Is(err, ErrInvalidQuery) {
		t.Fatalf("no vertex: %v", err)
	}
	if _, err := e.Explore(ctx, "fig5", Query{Vertices: []int32{999}, K: 2}); !errors.Is(err, ErrVertexNotFound) {
		t.Fatalf("out-of-range vertex: %v", err)
	}
	// Vertex I (id 8) has core 1: k=3 is unreachable.
	if _, err := e.Explore(ctx, "fig5", Query{Vertices: []int32{8}, K: 3}); !errors.Is(err, ErrInvalidQuery) {
		t.Fatalf("k beyond core: %v", err)
	}
	if _, err := e.ExploreStep(ctx, "fig5", "nosuch", "expand", 0); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("step on unknown session: %v", err)
	}
	// A session is scoped to its dataset path.
	st, err := e.Explore(ctx, "fig5", Query{Vertices: []int32{0}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExploreGet("other", st.ID); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("cross-dataset get: %v", err)
	}
	if _, err := e.ExploreStep(ctx, "fig5", st.ID, "sideways", 0); !errors.Is(err, ErrInvalidQuery) {
		t.Fatalf("bad action: %v", err)
	}
}

// TestExploreTTLEviction shrinks the TTL to nearly nothing and checks that
// idle sessions are swept and counted.
func TestExploreTTLEviction(t *testing.T) {
	e, _ := figure5Explorer(t)
	ctx := context.Background()
	st, err := e.Explore(ctx, "fig5", Query{Vertices: []int32{0}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	e.SetExploreTTL(time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	stats := e.ExploreStats() // stats sweep evicts
	if stats.Active != 0 || stats.Expired != 1 || stats.Created != 1 {
		t.Fatalf("stats after TTL = %+v", stats)
	}
	if _, err := e.ExploreGet("fig5", st.ID); !errors.Is(err, ErrSessionNotFound) {
		t.Fatalf("expired session still resolvable: %v", err)
	}
}

// TestExploreStatsCounts checks the created/steps/closed counters.
func TestExploreStatsCounts(t *testing.T) {
	e, _ := figure5Explorer(t)
	ctx := context.Background()
	st, err := e.Explore(ctx, "fig5", Query{Vertices: []int32{0}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExploreStep(ctx, "fig5", st.ID, "contract", 0); err != nil {
		t.Fatal(err)
	}
	if err := e.ExploreClose("fig5", st.ID); err != nil {
		t.Fatal(err)
	}
	stats := e.ExploreStats()
	if stats.Created != 1 || stats.Steps != 1 || stats.Closed != 1 || stats.Active != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestExploreConcurrentStepCloseRace hammers one session with concurrent
// steps, gets, closes, and fresh searches on the same dataset. Under
// -race this pins the engine-handoff contract: a DELETE or eviction racing
// an in-flight step must never hand the session's pinned engine to a new
// query while the step still uses it.
func TestExploreConcurrentStepCloseRace(t *testing.T) {
	e, _ := figure5Explorer(t)
	ctx := context.Background()
	for round := 0; round < 8; round++ {
		st, err := e.Explore(ctx, "fig5", Query{Vertices: []int32{0}, K: 2})
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < 4; i++ {
				action := "contract"
				if i%2 == 1 {
					action = "expand"
				}
				// ErrSessionNotFound / ErrInvalidQuery are fine here — the
				// close may win; data races are what the test hunts.
				_, _ = e.ExploreStep(ctx, "fig5", st.ID, action, 0)
				_, _ = e.ExploreGet("fig5", st.ID)
			}
		}()
		go func() {
			// Concurrent searches pull engines from the same pool: if a
			// closed session's engine were double-released or released
			// mid-step, scratch corruption shows up here under -race.
			_, _ = e.Search(ctx, "fig5", "ACQ", Query{Vertices: []int32{0}, K: 2})
		}()
		_ = e.ExploreClose("fig5", st.ID)
		<-done
	}
	if stats := e.ExploreStats(); stats.Active != 0 {
		t.Fatalf("sessions leaked: %+v", stats)
	}
}

// TestExploreKeywordScope: a session created with keywords reports shared
// keywords from that scope at every k.
func TestExploreKeywordScope(t *testing.T) {
	e, _ := figure5Explorer(t)
	st, err := e.Explore(context.Background(), "fig5", Query{Vertices: []int32{0}, K: 2, Keywords: []string{"w", "x", "y"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Communities) == 0 || len(st.Communities[0].SharedKeywords) == 0 {
		t.Fatalf("keyword-scoped session lost its keywords: %+v", st.Communities)
	}
	d := gen.GenerateDBLP(gen.SmallDBLPConfig())
	if _, err := e.AddGraph("dblp", d.Graph); err != nil {
		t.Fatal(err)
	}
	q, _ := d.Graph.VertexByName("jim gray")
	st2, err := e.Explore(context.Background(), "dblp", Query{Vertices: []int32{q}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.Communities) == 0 || st2.RingSize == 0 {
		t.Fatalf("dblp session = %+v", st2)
	}
}
