package api

import (
	"sync"
	"testing"

	"cexplorer/internal/gen"
	"cexplorer/internal/graph"
)

var (
	benchOnce  sync.Once
	benchGraph *graph.Graph
)

// benchDBLP is the ~120k-edge synthetic DBLP benchmark graph, built once.
func benchDBLP() *graph.Graph {
	benchOnce.Do(func() {
		benchGraph = gen.GenerateDBLP(gen.DefaultDBLPConfig()).Graph
	})
	return benchGraph
}

// BenchmarkBuildIndexes times building all three indexes (CL-tree, core
// numbers, truss) on a cold dataset over the ~120k-edge benchmark graph.
// The three builds run concurrently, so the wall time should approach the
// slowest individual build rather than the sum. Run with -cpu 1,2,4 to see
// scaling.
func BenchmarkBuildIndexes(b *testing.B) {
	g := benchDBLP()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds := NewDataset("bench", g)
		ds.BuildIndexes()
	}
}
