package api

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"cexplorer/internal/cltree"
	"cexplorer/internal/core"
	"cexplorer/internal/metrics"
)

// Exploration sessions are the paper's defining interaction — the Figure
// 1/6 browse loop, where a user anchors at a query vertex and repeatedly
// expands (smaller k, larger community) or contracts (larger k, smaller,
// denser community) — lifted into server-side state. A session pins one
// warm query engine for its whole lifetime, so every step reuses the
// engine's peeler scratch and interned keyword tables instead of paying
// pool checkout + rewarming per step, and it tracks its CL-tree anchor so
// each step reports where in the k-core hierarchy the browse currently
// sits. VCExplorer and GMine (PAPERS.md) take the same position: stateful
// drill-down sessions, not one-shot queries, are the natural API for
// interactive graph exploration.

// DefaultExploreTTL is how long an idle session survives before eviction
// reclaims its pinned engine.
const DefaultExploreTTL = 15 * time.Minute

// maxExploreSessions caps live sessions; creating one past the cap evicts
// the least-recently-used session first (each pins an engine, which is O(n)
// scratch, so unbounded growth would be a memory leak with a public face).
const maxExploreSessions = 1024

// ExploreState is the client-visible snapshot of a session after creation
// or a step.
type ExploreState struct {
	ID      string `json:"id"`
	Dataset string `json:"dataset"`
	Vertex  int32  `json:"vertex"`
	// K is the current minimum-degree position of the browse loop.
	K        int      `json:"k"`
	Keywords []string `json:"keywords,omitempty"`
	// Steps counts completed expand/contract moves.
	Steps int `json:"steps"`
	// MaxK is the largest k with any community at this anchor (core(q)):
	// the depth limit of the contract direction.
	MaxK int `json:"maxK"`
	// AnchorCore describes the session's CL-tree position: the core level
	// of the anchor node whose subtree spells out the current ring.
	AnchorCore int32 `json:"anchorCore"`
	// Ring is the structural community at the current k — the connected
	// k-core containing the anchor vertex, i.e. the Figure-6(b) ring the
	// browse loop walks. Rings nest: contract always yields a subset,
	// expand a superset.
	Ring []int32 `json:"ring"`
	// RingSize is len(Ring), kept explicit for clients that drop the list.
	RingSize int `json:"ringSize"`
	// Communities holds the attributed (ACQ) communities at the current k:
	// the keyword-maximal subsets of the ring around the anchor vertex.
	Communities []Community `json:"communities"`
	CreatedAt   time.Time   `json:"createdAt"`
	ExpiresAt   time.Time   `json:"expiresAt"`
}

// ExploreStats is the session-manager section of /api/stats.
type ExploreStats struct {
	Active  int   `json:"active"`
	Created int64 `json:"created"`
	Steps   int64 `json:"steps"`
	Expired int64 `json:"expired"`
	Closed  int64 `json:"closed"`
}

// exploreSession is one live browse loop.
type exploreSession struct {
	// mu serializes steps: the pinned engine carries per-query scratch and
	// must never run two searches at once. The engine is released back to
	// the pool only under mu with closed set (see closeAndRelease), so an
	// eviction or DELETE racing an in-flight step can never hand the
	// engine to a new query while the step still uses it.
	mu       sync.Mutex
	closed   bool
	id       string
	ds       *Dataset
	unpin    func() // releases the dataset backing pinned at creation
	q        int32
	k        int
	keywords []string
	eng      *core.Engine
	anchor   *cltree.Node
	ring     []int32
	comms    []Community
	steps    int
	created  time.Time
	lastUsed time.Time
}

// exploreManager owns the session table. It lives inside Explorer.
type exploreManager struct {
	mu       sync.Mutex
	sessions map[string]*exploreSession
	ttl      time.Duration

	created atomic.Int64
	steps   atomic.Int64
	expired atomic.Int64
	closed  atomic.Int64
}

func (m *exploreManager) init() {
	m.sessions = make(map[string]*exploreSession)
	m.ttl = DefaultExploreTTL
}

// SetExploreTTL overrides the idle lifetime of exploration sessions (test
// hook and ops knob); d must be positive.
func (e *Explorer) SetExploreTTL(d time.Duration) {
	if d <= 0 {
		return
	}
	m := &e.explore
	m.mu.Lock()
	m.ttl = d
	m.mu.Unlock()
}

// ExploreStats reports session counters for /api/stats. It sweeps expired
// sessions first so Active reflects reality even on an idle server.
func (e *Explorer) ExploreStats() ExploreStats {
	m := &e.explore
	m.mu.Lock()
	evicted := m.sweepLocked(time.Now())
	active := len(m.sessions)
	m.mu.Unlock()
	closeSessions(evicted)
	return ExploreStats{
		Active:  active,
		Created: m.created.Load(),
		Steps:   m.steps.Load(),
		Expired: m.expired.Load(),
		Closed:  m.closed.Load(),
	}
}

// sweepLocked removes every session idle past the TTL from the table and
// returns them for the caller to close OUTSIDE m.mu (closing may block on
// a session's own lock while a step finishes; doing that under the table
// lock would stall every other session). Caller holds m.mu.
func (m *exploreManager) sweepLocked(now time.Time) []*exploreSession {
	var evicted []*exploreSession
	for id, s := range m.sessions {
		if now.Sub(s.lastUsed) > m.ttl {
			delete(m.sessions, id)
			evicted = append(evicted, s)
			m.expired.Add(1)
		}
	}
	return evicted
}

// dropDatasetLocked removes every session anchored on the named dataset and
// returns them for the caller to close outside m.mu (same discipline as
// sweepLocked). Used when the dataset itself is unregistered.
func (m *exploreManager) dropDatasetLocked(name string) []*exploreSession {
	var evicted []*exploreSession
	for id, s := range m.sessions {
		if s.ds.Name == name {
			delete(m.sessions, id)
			evicted = append(evicted, s)
			m.closed.Add(1)
		}
	}
	return evicted
}

// evictOldestLocked removes the least-recently-used session (cap pressure)
// and returns it for the caller to close outside m.mu (nil if none).
func (m *exploreManager) evictOldestLocked() *exploreSession {
	var oldest *exploreSession
	for _, s := range m.sessions {
		if oldest == nil || s.lastUsed.Before(oldest.lastUsed) {
			oldest = s
		}
	}
	if oldest != nil {
		delete(m.sessions, oldest.id)
		m.expired.Add(1)
	}
	return oldest
}

// closeAndRelease marks the session closed and returns its pinned engine
// to the pool. Taking s.mu first means an in-flight step finishes before
// the engine changes hands; the closed flag stops any step that was
// already queued on the lock from touching the engine afterwards.
func (s *exploreSession) closeAndRelease() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.ds.ReleaseEngine(s.eng)
		s.unpin()
	}
	s.mu.Unlock()
}

func closeSessions(sessions []*exploreSession) {
	for _, s := range sessions {
		s.closeAndRelease()
	}
}

func newSessionID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// Explore creates an exploration session on the dataset, anchored at
// q.Vertices[0] with minimum degree q.K (clamped to ≥ 1), optionally scoped
// to q.Keywords. The initial search runs under ctx; the session itself
// lives until closed or idle past the TTL.
func (e *Explorer) Explore(ctx context.Context, dataset string, q Query) (*ExploreState, error) {
	if err := ctx.Err(); err != nil {
		return nil, wrapContextErr(err)
	}
	ds, ok := e.Dataset(dataset)
	if !ok {
		return nil, fmt.Errorf("%w: explore: %q", ErrDatasetNotFound, dataset)
	}
	// The session reads the dataset's graph and indexes on every step; an
	// mmap-backed dataset stays pinned for the session's whole lifetime
	// (released by closeAndRelease once the session is published).
	unpin, err := ds.Pin()
	if err != nil {
		return nil, err
	}
	published := false
	defer func() {
		if !published {
			unpin()
		}
	}()
	if len(q.Vertices) != 1 {
		return nil, fmt.Errorf("%w: explore: exactly one query vertex required", ErrInvalidQuery)
	}
	if _, err := parseParams(q); err != nil {
		return nil, err
	}
	v := q.Vertices[0]
	if v < 0 || int(v) >= ds.Graph.N() {
		return nil, fmt.Errorf("%w: explore: vertex %d", ErrVertexNotFound, v)
	}
	k := q.K
	if k < 1 {
		k = 1
	}
	if core := ds.CoreNumbers(); int(core[v]) < k {
		return nil, fmt.Errorf("%w: explore: vertex %d has no community at k=%d (max k=%d)",
			ErrInvalidQuery, v, k, core[v])
	}

	s := &exploreSession{
		id:       newSessionID(),
		ds:       ds,
		unpin:    unpin,
		q:        v,
		k:        k,
		keywords: append([]string(nil), q.Keywords...),
		eng:      ds.AcquireEngine(),
		created:  time.Now(),
	}
	if err := s.run(ctx); err != nil {
		ds.ReleaseEngine(s.eng)
		return nil, wrapContextErr(err)
	}
	published = true

	m := &e.explore
	m.mu.Lock()
	evicted := m.sweepLocked(time.Now())
	if len(m.sessions) >= maxExploreSessions {
		if lru := m.evictOldestLocked(); lru != nil {
			evicted = append(evicted, lru)
		}
	}
	s.lastUsed = time.Now()
	m.sessions[s.id] = s
	ttl := m.ttl
	m.mu.Unlock()
	closeSessions(evicted)
	m.created.Add(1)
	return s.state(dataset, ttl), nil
}

// lookupSession resolves (dataset, id) to a live session, refreshing its
// idle timer.
func (e *Explorer) lookupSession(dataset, id string) (*exploreSession, time.Duration, error) {
	m := &e.explore
	m.mu.Lock()
	evicted := m.sweepLocked(time.Now())
	s, ok := m.sessions[id]
	if ok && s.ds.Name == dataset {
		s.lastUsed = time.Now()
	}
	ttl := m.ttl
	m.mu.Unlock()
	closeSessions(evicted)
	if !ok || s.ds.Name != dataset {
		return nil, 0, fmt.Errorf("%w: %q", ErrSessionNotFound, id)
	}
	return s, ttl, nil
}

// ExploreStep moves a session along the browse loop. action is "expand"
// (k-1: a larger, looser community), "contract" (k+1: a smaller, denser
// one), or "set" with an explicit k. The step reuses the session's pinned
// engine; if the new k admits no community the session keeps its previous
// position and an ErrInvalidQuery is returned, so a client can probe the
// boundary freely.
func (e *Explorer) ExploreStep(ctx context.Context, dataset, id, action string, k int) (*ExploreState, error) {
	if err := ctx.Err(); err != nil {
		return nil, wrapContextErr(err)
	}
	s, ttl, err := e.lookupSession(dataset, id)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		// Evicted or deleted while this step was queued on the session
		// lock; the engine is no longer ours.
		return nil, fmt.Errorf("%w: %q", ErrSessionNotFound, id)
	}
	newK := s.k
	switch action {
	case "expand":
		newK = s.k - 1
	case "contract":
		newK = s.k + 1
	case "set":
		newK = k
	default:
		return nil, fmt.Errorf("%w: explore step: action %q (want expand, contract, or set)", ErrInvalidQuery, action)
	}
	if newK < 1 {
		return nil, fmt.Errorf("%w: explore step: already at the loosest community (k=1)", ErrInvalidQuery)
	}
	if core := s.ds.CoreNumbers(); int(core[s.q]) < newK {
		return nil, fmt.Errorf("%w: explore step: no community at k=%d (max k=%d)", ErrInvalidQuery, newK, core[s.q])
	}

	oldK, oldAnchor, oldRing, oldComms := s.k, s.anchor, s.ring, s.comms
	s.k = newK
	if err := s.run(ctx); err != nil {
		s.k, s.anchor, s.ring, s.comms = oldK, oldAnchor, oldRing, oldComms
		return nil, wrapContextErr(err)
	}
	s.steps++
	e.explore.steps.Add(1)
	return s.state(dataset, ttl), nil
}

// ExploreGet returns a session's current state without moving it.
func (e *Explorer) ExploreGet(dataset, id string) (*ExploreState, error) {
	s, ttl, err := e.lookupSession(dataset, id)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("%w: %q", ErrSessionNotFound, id)
	}
	return s.state(dataset, ttl), nil
}

// ExploreClose ends a session, returning its pinned engine to the pool
// once any in-flight step on it has finished.
func (e *Explorer) ExploreClose(dataset, id string) error {
	m := &e.explore
	m.mu.Lock()
	s, ok := m.sessions[id]
	if ok && s.ds.Name == dataset {
		delete(m.sessions, id)
	} else {
		ok = false
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrSessionNotFound, id)
	}
	s.closeAndRelease()
	m.closed.Add(1)
	return nil
}

// run recomputes the session's ring and attributed communities at the
// current k on the pinned engine. The CL-tree anchor moves incrementally:
// an expand step climbs Parent pointers from the current ring (O(levels)
// instead of a fresh root-to-leaf walk), a contract step re-anchors from
// the vertex's leaf node. Caller must hold s.mu (or own s exclusively, as
// Explore does before publishing).
func (s *exploreSession) run(ctx context.Context) error {
	tree := s.eng.Tree()
	k := int32(s.k)
	a := s.anchor
	switch {
	case a == nil || k > a.Core:
		// First run, or contracting into a deeper ring: locate from the
		// leaf. (For k ≤ a.Core no node above a can host the new anchor —
		// everything above the old anchor has a strictly smaller core.)
		a = tree.Anchor(s.q, k)
	default:
		// Expanding (or staying): the new anchor is an ancestor of the
		// current one; climb from where the session already sits.
		for a.Parent != nil && a.Parent.Core >= k {
			a = a.Parent
		}
	}
	if a == nil {
		return fmt.Errorf("%w: no community at k=%d", ErrInvalidQuery, s.k)
	}
	ring := tree.SubtreeVertices(a, nil)
	slices.Sort(ring)

	res, err := s.eng.SearchContext(ctx, s.q, k, resolveKeywords(s.ds.Graph, s.keywords), core.Dec)
	if err != nil {
		return err
	}
	s.anchor = a
	s.ring = ring
	s.comms = make([]Community, 0, len(res))
	for _, c := range res {
		s.comms = append(s.comms, Community{
			Method:         "ACQ",
			Vertices:       c.Vertices,
			SharedKeywords: s.ds.Graph.Vocab().Words(c.SharedKeywords),
			Theme:          metrics.Theme(s.ds.Graph, c.Vertices, 5),
		})
	}
	return nil
}

// state renders the client-visible snapshot. Caller must hold s.mu (or own
// s exclusively).
func (s *exploreSession) state(dataset string, ttl time.Duration) *ExploreState {
	st := &ExploreState{
		ID:          s.id,
		Dataset:     dataset,
		Vertex:      s.q,
		K:           s.k,
		Keywords:    s.keywords,
		Steps:       s.steps,
		MaxK:        int(s.ds.CoreNumbers()[s.q]),
		Ring:        s.ring,
		RingSize:    len(s.ring),
		Communities: s.comms,
		CreatedAt:   s.created,
		ExpiresAt:   time.Now().Add(ttl),
	}
	if s.anchor != nil {
		st.AnchorCore = s.anchor.Core
	}
	return st
}
