//go:build race

package api

// raceEnabled reports that the race detector instruments this build; the
// cancellation-promptness bounds are loosened there (instrumented kernels
// run an order of magnitude slower between ctx polls).
const raceEnabled = true
