package api

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"cexplorer/internal/csearch"
	"cexplorer/internal/gen"
	"cexplorer/internal/graph"
)

// promptBound is the latency allowed between cancellation and return:
// 100ms in a normal build, relaxed under the race detector, whose
// instrumentation stretches the work between ctx polls.
func promptBound() time.Duration {
	if raceEnabled {
		return time.Second
	}
	return 100 * time.Millisecond
}

// slowSearchGraph builds a graph on which an ACQ Dec search takes long
// enough to cancel mid-flight, deterministically: a hub q carrying nw
// keywords, each keyword shared with its own (k+1)-clique through q. Every
// singleton keyword admits a community (its clique), but no pair does (the
// cliques are vertex-disjoint apart from q), so Dec walks the subset
// lattice of all nw admissible keywords from the top — ~2^nw candidate
// verifications before it concludes only singletons work.
func slowSearchGraph(nw, k int) (*graph.Graph, int32) {
	b := graph.NewBuilder(1+nw*(k+1), nw*(k+1)*(k+2)/2)
	kws := make([]string, nw)
	for i := range kws {
		kws[i] = fmt.Sprintf("w%02d", i)
	}
	q := b.AddVertex("q", kws...)
	for i := 0; i < nw; i++ {
		members := []int32{q}
		for j := 0; j < k+1; j++ {
			members = append(members, b.AddVertex(fmt.Sprintf("c%02d_%d", i, j), kws[i]))
		}
		for x := 0; x < len(members); x++ {
			for y := x + 1; y < len(members); y++ {
				b.AddEdge(members[x], members[y])
			}
		}
	}
	return b.MustBuild(), q
}

// TestCancelACQSearchPrompt cancels an in-flight ACQ search and requires it
// to return ErrCanceled within 100ms of the cancellation — the contract
// that a dropped connection frees its worker slot promptly instead of
// finishing a doomed lattice walk.
func TestCancelACQSearchPrompt(t *testing.T) {
	g, q := slowSearchGraph(18, 3)
	e := NewExplorer()
	ds, err := e.AddGraph("slow", g)
	if err != nil {
		t.Fatal(err)
	}
	ds.Tree() // index outside the timed region

	ctx, cancel := context.WithCancel(context.Background())
	type result struct {
		comms []Community
		err   error
	}
	done := make(chan result, 1)
	go func() {
		comms, err := e.Search(ctx, "slow", "ACQ", Query{Vertices: []int32{q}, K: 3})
		done <- result{comms, err}
	}()

	// Let the search get going, then pull the plug.
	time.Sleep(20 * time.Millisecond)
	cancel()
	canceledAt := time.Now()
	select {
	case r := <-done:
		if !errors.Is(r.err, ErrCanceled) {
			t.Fatalf("err = %v (communities %d), want ErrCanceled", r.err, len(r.comms))
		}
		if lat := time.Since(canceledAt); lat > promptBound() {
			t.Fatalf("search returned %v after cancel, want < %v", lat, promptBound())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("search did not observe cancellation within 5s")
	}
}

// TestCancelGlobalDecomposePrompt cancels a Global search mid whole-graph
// core decomposition (Global's defining cost on a cold graph) and requires
// a prompt context.Canceled from the kernel.
func TestCancelGlobalDecomposePrompt(t *testing.T) {
	g := gen.GNM(300_000, 1_500_000, 7)
	ctx, cancel := context.WithCancel(context.Background())
	type result struct {
		r   *csearch.GlobalResult
		err error
	}
	done := make(chan result, 1)
	go func() {
		r, err := csearch.GlobalContext(ctx, g, nil, 0, 2)
		done <- result{r, err}
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	canceledAt := time.Now()
	select {
	case r := <-done:
		// The decomposition may have finished before the cancel landed (fast
		// machines): a nil error with a result is then legitimate. What is
		// never legitimate is running long past the cancellation.
		if lat := time.Since(canceledAt); lat > promptBound() {
			t.Fatalf("Global returned %v after cancel, want < %v", lat, promptBound())
		}
		if r.err != nil && !errors.Is(r.err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Global did not observe cancellation within 5s")
	}
}

// TestSearchDeadlineMapsToErrTimeout runs the slow search under a tiny
// deadline and requires the typed timeout error.
func TestSearchDeadlineMapsToErrTimeout(t *testing.T) {
	g, q := slowSearchGraph(16, 3)
	e := NewExplorer()
	ds, err := e.AddGraph("slow", g)
	if err != nil {
		t.Fatal(err)
	}
	ds.Tree()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = e.Search(ctx, "slow", "ACQ", Query{Vertices: []int32{q}, K: 3})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if lat := time.Since(start); lat > 500*time.Millisecond+promptBound() {
		t.Fatalf("deadline observed after %v, want well under 500ms", lat)
	}
}

// TestPreCanceledContextShortCircuits: every Explorer query method must
// reject an already-canceled context with ErrCanceled without doing work.
func TestPreCanceledContextShortCircuits(t *testing.T) {
	e, _ := figure5Explorer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Search(ctx, "fig5", "ACQ", Query{Vertices: []int32{0}, K: 2}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Search err = %v, want ErrCanceled", err)
	}
	if _, err := e.Detect(ctx, "fig5", "CODICIL"); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Detect err = %v, want ErrCanceled", err)
	}
	if _, err := e.Analyze(ctx, "fig5", Community{Vertices: []int32{0, 2, 3}}, 0); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Analyze err = %v, want ErrCanceled", err)
	}
	if _, err := e.Explore(ctx, "fig5", Query{Vertices: []int32{0}, K: 2}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Explore err = %v, want ErrCanceled", err)
	}
}

// TestCancelDetectPrompt cancels an in-flight CODICIL detection on a
// mid-size graph.
func TestCancelDetectPrompt(t *testing.T) {
	d := gen.GenerateDBLP(gen.SmallDBLPConfig())
	e := NewExplorer()
	if _, err := e.AddGraph("dblp", d.Graph); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.Detect(ctx, "dblp", "CODICIL")
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	canceledAt := time.Now()
	select {
	case err := <-done:
		if lat := time.Since(canceledAt); lat > promptBound() {
			t.Fatalf("Detect returned %v after cancel, want < %v", lat, promptBound())
		}
		if err != nil && !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled (or nil if it finished first)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Detect did not observe cancellation within 5s")
	}
}
