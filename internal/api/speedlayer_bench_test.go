package api

// Serve-time speed layer benchmarks (BENCH_7.json):
//
// BenchmarkHotQueryUncached vs BenchmarkHotQueryCached: throughput of a
// repeated ACQ query with and without the result cache. The cached run also
// proves singleflight: the computation count must equal the number of
// distinct (version, query) pairs the run touched (here: 1).
//
// The batched-ingestion counterpart lives in internal/server — batching's
// win is at the serving layer (one journal fsync per batch); at the engine
// layer a resident CL-tree actually favors single-op batches (surgical
// repair) over the full reskeleton a multi-op batch forces.
//
// Run: go test -bench HotQuery -cpu 1,2 ./internal/api

import (
	"context"
	"testing"

	"cexplorer/internal/gen"
)

// benchExplorer serves a mid-sized random attributed graph.
func benchExplorer(b *testing.B, cached bool) *Explorer {
	b.Helper()
	e := NewExplorer()
	g := gen.GNMAttributed(20000, 60000, 32, 1)
	if _, err := e.AddGraph("bench", g); err != nil {
		b.Fatal(err)
	}
	if cached {
		e.SetCache(NewServeCache(4096, 64<<20, 0))
	}
	// Build the indexes up front so both variants measure query serving,
	// not lazy index construction.
	ds, _ := e.Dataset("bench")
	ds.Tree()
	ds.CoreNumbers()
	return e
}

var hotQuery = Query{Vertices: []int32{17}, K: 4, Keywords: []string{"w0", "w1"}}

func BenchmarkHotQueryUncached(b *testing.B) {
	e := benchExplorer(b, false)
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := e.Search(ctx, "bench", "ACQ", hotQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkHotQueryCached(b *testing.B) {
	e := benchExplorer(b, true)
	ctx := context.Background()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := e.Search(ctx, "bench", "ACQ", hotQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	// Singleflight proof: one distinct (version, query) pair was served, so
	// exactly one computation may have run, no matter how parallel the herd.
	if st := e.Cache().Stats(); st.Computations != 1 {
		b.Fatalf("singleflight violated: %d computations for 1 distinct (version, query) pair", st.Computations)
	}
}
