package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefaultAndOverride(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(0)
	if got := Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default Workers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetWorkers(3)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", got)
	}
	SetWorkers(-5)
	if got := Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d after SetWorkers(-5), want default", got)
	}
}

func TestClamp(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	for _, tc := range []struct{ n, work, want int }{
		{0, 100, 4},  // default from knob
		{2, 100, 2},  // explicit
		{8, 3, 3},    // never more than the work
		{0, 0, 1},    // at least one
		{-1, 100, 4}, // negative = default
	} {
		if got := Clamp(tc.n, tc.work); got != tc.want {
			t.Fatalf("Clamp(%d,%d) = %d, want %d", tc.n, tc.work, got, tc.want)
		}
	}
}

func TestDoRunsAll(t *testing.T) {
	var n atomic.Int64
	Do(func() { n.Add(1) })
	Do(func() { n.Add(1) }, func() { n.Add(1) }, func() { n.Add(1) })
	if n.Load() != 4 {
		t.Fatalf("Do ran %d closures, want 4", n.Load())
	}
}

func TestRangeCoversExactly(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7} {
		const n = 101
		seen := make([]atomic.Int32, n)
		Range(n, workers, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				seen[i].Add(1)
			}
		})
		for i := range seen {
			if seen[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, seen[i].Load())
			}
		}
	}
	Range(0, 4, func(_, lo, hi int) {
		if lo != hi {
			t.Fatalf("empty range got span [%d,%d)", lo, hi)
		}
	})
}

func TestEachCoversExactly(t *testing.T) {
	for _, workers := range []int{1, 2, 5} {
		const n = 53
		seen := make([]atomic.Int32, n)
		Each(n, workers, func(i int) { seen[i].Add(1) })
		for i := range seen {
			if seen[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, seen[i].Load())
			}
		}
	}
	Each(0, 2, func(i int) { t.Fatalf("Each(0) called fn(%d)", i) })
}
