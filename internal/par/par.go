// Package par is the shared worker-count knob and fork/join helpers of the
// parallel index-build pipeline. Index construction (truss support counting,
// the concurrent BuildIndexes fan-out) and snapshot section encode/decode all
// size their worker pools from one place, so the server's -index.workers
// flag governs every CPU-bound build in the process.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers is the configured override; 0 means "use GOMAXPROCS".
var workers atomic.Int64

// Workers returns the effective build worker count: the value set with
// SetWorkers, or GOMAXPROCS(0) when unset.
func Workers() int {
	if n := int(workers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers sets the process-wide build worker count. n ≤ 0 restores the
// GOMAXPROCS default. It is safe to call while builds are running; in-flight
// builds keep the count they started with.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workers.Store(int64(n))
}

// Clamp normalizes a per-call worker count: n ≤ 0 means the process default
// (Workers()), and the result never exceeds the amount of work available.
func Clamp(n, work int) int {
	if n <= 0 {
		n = Workers()
	}
	if n > work {
		n = work
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Do runs every fn concurrently on its own goroutine and waits for all of
// them. It is the fork/join of the concurrent index build: callers pass one
// closure per independent build step.
func Do(fns ...func()) {
	if len(fns) == 1 {
		fns[0]()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		go func() {
			defer wg.Done()
			fn()
		}()
	}
	wg.Wait()
}

// Each runs fn(i) for every i in [0, n), handing indices out dynamically so
// skewed per-item work (a snapshot's big adjacency section next to a tiny
// meta section) load-balances across workers. workers follows Clamp
// semantics; a single worker runs inline with no goroutines.
func Each(n, workers int, fn func(i int)) {
	w := Clamp(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Range splits [0, n) into contiguous spans, one per worker, and runs
// fn(worker, lo, hi) concurrently. workers follows Clamp semantics (≤ 0 =
// process default, never more than n). With a single worker the call runs
// inline — no goroutine, no synchronization — so serial callers pay nothing.
func Range(n, workers int, fn func(worker, lo, hi int)) {
	w := Clamp(workers, n)
	if w == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		lo := i * n / w
		hi := (i + 1) * n / w
		go func(worker, lo, hi int) {
			defer wg.Done()
			fn(worker, lo, hi)
		}(i, lo, hi)
	}
	wg.Wait()
}
