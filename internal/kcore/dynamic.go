// Incremental core-number maintenance under streaming edge mutations: the
// subcore algorithms of Sarıyüce et al. ("Streaming Algorithms for k-Core
// Decomposition", VLDB 2013). A single edge insertion can raise core
// numbers by at most one, and only for vertices in the subcore reachable
// from the lower-core endpoint; a single deletion can lower them by at most
// one, and the drop propagates only through vertices at that exact core
// level. Both updates therefore visit O(|affected region|) vertices instead
// of re-peeling the whole graph — the step the community-search survey
// names as what separates an offline index demo from an online system.
package kcore

import "slices"

// Adjacency is the read surface the incremental kernels need. Both
// *graph.Graph (frozen CSR) and *graph.Overlay (CSR plus an in-flight
// mutation batch) satisfy it, so core numbers can be maintained op by op
// while a batch is still accumulating.
type Adjacency interface {
	N() int
	ForEachNeighbor(v int32, fn func(u int32) bool)
}

// FlatAdjacency is the optional slice fast path: both graph types provide
// it, and the kernels use it to iterate adjacency with plain range loops
// instead of per-neighbor callback dispatch.
type FlatAdjacency interface {
	FlatNeighbors(v int32) ([]int32, bool)
}

// Maintainer owns a core-number array and updates it in place as edges
// stream in and out. All bookkeeping is epoch-stamped dense scratch (the
// same discipline as Peeler): starting an update is O(1) and the steady
// state allocates nothing, so a large affected region costs array walks,
// never hash-map traffic. A Maintainer is a single-goroutine object; create
// one per mutation batch — or take one from a pool and Reset it, which
// reuses the scratch without any clearing.
type Maintainer struct {
	core []int32

	mark    []int32 // visited by the current update iff mark[v] == epoch
	dead    []int32 // evicted from current update iff dead[v] == epoch
	cd      []int32 // qualified degree, valid while stamped
	seen    []int32 // candidate / cd-computed iff seen[v] == epoch
	epoch   int32
	stack   []int32
	queue   []int32
	subcore []int32
	nbufA   []int32 // neighbor-gather scratch, outer nesting level
	nbufB   []int32 // neighbor-gather scratch, inner nesting level
}

// NewMaintainer adopts core (it is updated in place; the caller may keep
// reading it between updates but must not write it).
func NewMaintainer(core []int32) *Maintainer {
	m := &Maintainer{}
	m.Reset(core)
	return m
}

// Reset re-targets the maintainer at a new core array, growing scratch as
// needed. Existing epoch stamps stay valid (they are all below the next
// epoch), so a reset costs no clearing — the point of pooling Maintainers
// across mutation batches.
func (m *Maintainer) Reset(core []int32) {
	m.core = core
	n := len(core)
	if cap(m.mark) < n {
		m.mark = make([]int32, n)
		m.dead = make([]int32, n)
		m.cd = make([]int32, n)
		m.seen = make([]int32, n)
		// Fresh arrays are all zero; keep the running epoch (stamps in the
		// new arrays can never collide with it, and stamps in any retained
		// older arrays stay below it).
		return
	}
	m.mark = m.mark[:n]
	m.dead = m.dead[:n]
	m.cd = m.cd[:n]
	m.seen = m.seen[:n]
}

// Core returns the maintained array.
func (m *Maintainer) Core() []int32 { return m.core }

// AddVertex extends the array for one appended (isolated, core-0) vertex.
func (m *Maintainer) AddVertex() {
	m.core = append(m.core, 0)
	m.mark = append(m.mark, 0)
	m.dead = append(m.dead, 0)
	m.cd = append(m.cd, 0)
	m.seen = append(m.seen, 0)
}

// bump starts a new update epoch.
func (m *Maintainer) bump() {
	m.epoch++
	if m.epoch == 0 { // wrapped; re-zero and restart
		for i := range m.mark {
			m.mark[i], m.dead[i], m.seen[i] = 0, 0, 0
		}
		m.epoch = 1
	}
}

// neighborsInto returns w's adjacency as a plain slice: the graph's own
// storage on the flat fast path, else gathered into buf. Nested sweeps must
// pass distinct buffers (nbufA for the outer level, nbufB for the inner).
func neighborsInto(g Adjacency, flat FlatAdjacency, w int32, buf *[]int32) []int32 {
	if flat != nil {
		if ns, ok := flat.FlatNeighbors(w); ok {
			return ns
		}
	}
	out := (*buf)[:0]
	g.ForEachNeighbor(w, func(x int32) bool {
		out = append(out, x)
		return true
	})
	*buf = out
	return out
}

// InsertEdge updates core numbers after the edge {u,v} has been inserted
// into g (the edge must already be visible through g). It returns the
// vertices whose core number rose (by exactly one), ascending; the slice is
// only valid until the next update.
//
// Let r = min(core[u], core[v]). Only vertices with core number exactly r
// reachable from the root endpoint(s) through promotable vertices of core r
// can change. The walk is MCD-pruned: a level-r vertex with fewer than r+1
// neighbors at core ≥ r can never reach degree r+1 in the (r+1)-core, so it
// is a barrier the search never expands — promoted vertices always form a
// connected set through promotable vertices, so nothing behind a barrier
// can change. The kernel then counts each candidate's qualified degree
// (neighbors already above r, or fellow candidates) and peels candidates
// that cannot reach degree r+1; the survivors are exactly the vertices
// promoted to r+1.
func (m *Maintainer) InsertEdge(g Adjacency, u, v int32) []int32 {
	flat, _ := g.(FlatAdjacency)
	core := m.core
	r := core[u]
	if core[v] < r {
		r = core[v]
	}
	m.bump()

	mcdOK := func(w int32) bool {
		n := int32(0)
		for _, x := range neighborsInto(g, flat, w, &m.nbufB) {
			if core[x] >= r {
				n++
				if n > r {
					return true
				}
			}
		}
		return false
	}
	m.stack = m.stack[:0]
	m.subcore = m.subcore[:0]
	if core[u] == r {
		m.mark[u] = m.epoch
		if mcdOK(u) {
			m.stack = append(m.stack, u)
		}
	}
	if core[v] == r && m.mark[v] != m.epoch {
		m.mark[v] = m.epoch
		if mcdOK(v) {
			m.stack = append(m.stack, v)
		}
	}
	for len(m.stack) > 0 {
		w := m.stack[len(m.stack)-1]
		m.stack = m.stack[:len(m.stack)-1]
		m.subcore = append(m.subcore, w)
		for _, x := range neighborsInto(g, flat, w, &m.nbufA) {
			if core[x] == r && m.mark[x] != m.epoch {
				m.mark[x] = m.epoch
				if mcdOK(x) {
					m.stack = append(m.stack, x)
				}
			}
		}
	}
	// mark stamped every visited vertex, barriers included; candidacy is
	// "collected into subcore". Restamp candidates in seen so the passes
	// below tell the two apart in O(1).
	for _, w := range m.subcore {
		m.seen[w] = m.epoch
	}

	// Qualified degree: support a candidate would have in the (r+1)-core if
	// every current candidate survived. Barriers never qualify, so they are
	// excluded exactly like any other level-r outsider.
	for _, w := range m.subcore {
		n := int32(0)
		for _, x := range neighborsInto(g, flat, w, &m.nbufA) {
			if core[x] > r || m.seen[x] == m.epoch {
				n++
			}
		}
		m.cd[w] = n
	}

	// Peel candidates that cannot reach degree r+1; evictions propagate.
	m.queue = m.queue[:0]
	for _, w := range m.subcore {
		if m.cd[w] < r+1 {
			m.dead[w] = m.epoch
			m.queue = append(m.queue, w)
		}
	}
	for len(m.queue) > 0 {
		w := m.queue[len(m.queue)-1]
		m.queue = m.queue[:len(m.queue)-1]
		for _, x := range neighborsInto(g, flat, w, &m.nbufA) {
			if m.seen[x] == m.epoch && m.dead[x] != m.epoch {
				m.cd[x]--
				if m.cd[x] < r+1 {
					m.dead[x] = m.epoch
					m.queue = append(m.queue, x)
				}
			}
		}
	}

	changed := m.subcore[:0]
	for _, w := range m.subcore {
		if m.dead[w] != m.epoch {
			core[w] = r + 1
			changed = append(changed, w)
		}
	}
	m.subcore = changed
	slices.Sort(changed)
	return changed
}

// RemoveEdge updates core numbers after the edge {u,v} has been removed
// from g (the edge must no longer be visible through g). It returns the
// vertices whose core number dropped (by exactly one), ascending; the slice
// is only valid until the next update.
//
// Let r = min(core[u], core[v]). Only vertices at level r can drop, and
// only via an eviction cascade seeded at the endpoint(s) sitting at r: a
// vertex stays at r iff it keeps at least r neighbors with core ≥ r.
// Qualified degrees are computed lazily, so the kernel touches exactly the
// cascade's frontier and nothing else.
func (m *Maintainer) RemoveEdge(g Adjacency, u, v int32) []int32 {
	flat, _ := g.(FlatAdjacency)
	core := m.core
	r := core[u]
	if core[v] < r {
		r = core[v]
	}
	if r <= 0 {
		return nil
	}
	m.bump()

	// An evicted vertex has its core set to r-1 when dequeued — before its
	// neighbors are examined — so a lazy qualified-degree computation never
	// counts a vertex that has already fallen, and the explicit decrement
	// covers exactly the vertices that fall later.
	qualified := func(w int32) int32 {
		n := int32(0)
		for _, x := range neighborsInto(g, flat, w, &m.nbufB) {
			if core[x] >= r {
				n++
			}
		}
		return n
	}
	m.queue = m.queue[:0]
	seed := func(w int32) {
		if core[w] != r || m.seen[w] == m.epoch {
			return
		}
		m.seen[w] = m.epoch
		m.cd[w] = qualified(w)
		if m.cd[w] < r {
			m.dead[w] = m.epoch
			m.queue = append(m.queue, w)
		}
	}
	seed(u)
	seed(v)

	m.subcore = m.subcore[:0]
	for len(m.queue) > 0 {
		w := m.queue[len(m.queue)-1]
		m.queue = m.queue[:len(m.queue)-1]
		core[w] = r - 1
		m.subcore = append(m.subcore, w)
		for _, x := range neighborsInto(g, flat, w, &m.nbufA) {
			if core[x] != r || m.dead[x] == m.epoch {
				continue
			}
			if m.seen[x] != m.epoch {
				// First touch: the count below already excludes w (its core
				// was lowered above), so no extra decrement.
				m.seen[x] = m.epoch
				m.cd[x] = qualified(x)
			} else {
				m.cd[x]--
			}
			if m.cd[x] < r {
				m.dead[x] = m.epoch
				m.queue = append(m.queue, x)
			}
		}
	}
	changed := m.subcore
	slices.Sort(changed)
	return changed
}

// InsertEdge is the one-shot form of Maintainer.InsertEdge: it updates core
// in place and returns the promoted vertices. Convenient for tests and
// single updates; batch paths should hold a Maintainer instead (this
// allocates O(n) scratch per call).
func InsertEdge(g Adjacency, core []int32, u, v int32) []int32 {
	return slices.Clone(NewMaintainer(core).InsertEdge(g, u, v))
}

// RemoveEdge is the one-shot form of Maintainer.RemoveEdge.
func RemoveEdge(g Adjacency, core []int32, u, v int32) []int32 {
	return slices.Clone(NewMaintainer(core).RemoveEdge(g, u, v))
}
