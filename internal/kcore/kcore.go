// Package kcore implements k-core decomposition and extraction, the
// structure-cohesiveness substrate of C-Explorer: the ACQ engine, the
// Global and Local baselines, and the CL-tree index are all defined in terms
// of k-cores (paper §3.2: "the k-core, Hk, is the largest subgraph of the
// graph G, such that for any vertex in Hk, its degree is at least k").
package kcore

import (
	"context"

	"cexplorer/internal/graph"
)

// cancelCheckStride is how many loop iterations the context-aware kernels
// run between ctx.Err() polls: frequent enough that a canceled request stops
// within a few microseconds of work, rare enough that the poll (a mutex-free
// load for the common context kinds) never shows up in profiles.
const cancelCheckStride = 4096

// Decompose computes the core number of every vertex with the
// Batagelj–Zaveršnik bin-sort peeling algorithm in O(n+m) time.
func Decompose(g *graph.Graph) []int32 {
	core, _ := DecomposeContext(context.Background(), g)
	return core
}

// DecomposeContext is Decompose with cooperative cancellation: the peel loop
// polls ctx every few thousand vertices and returns ctx.Err() when the
// request is canceled or past its deadline, so a dropped connection stops
// the O(n+m) walk instead of burning a worker.
func DecomposeContext(ctx context.Context, g *graph.Graph) ([]int32, error) {
	core, _, err := decompose(ctx, g)
	return core, err
}

// DecomposeOrder computes core numbers together with the degeneracy order:
// the order the bin-sort peel removes vertices in (nondecreasing current
// degree). Orienting every edge from the earlier to the later endpoint in
// this order bounds each vertex's out-degree by the graph degeneracy, which
// is what the truss engine's oriented triangle counting relies on for its
// O(m·degeneracy) bound.
func DecomposeOrder(g *graph.Graph) (core, order []int32) {
	core, order, _ = decompose(context.Background(), g)
	return core, order
}

func decompose(ctx context.Context, g *graph.Graph) (core, order []int32, err error) {
	n := g.N()
	core = make([]int32, n)
	if n == 0 {
		return core, nil, nil
	}
	maxDeg := 0
	deg := make([]int32, n)
	for v := 0; v < n; v++ {
		d := g.Degree(int32(v))
		deg[v] = int32(d)
		if d > maxDeg {
			maxDeg = d
		}
	}
	// bin[d] = start offset of degree-d block in vert.
	bin := make([]int32, maxDeg+2)
	for v := 0; v < n; v++ {
		bin[deg[v]+1]++
	}
	for d := 1; d <= maxDeg+1; d++ {
		bin[d] += bin[d-1]
	}
	vert := make([]int32, n) // vertices sorted by current degree
	pos := make([]int32, n)  // position of vertex in vert
	next := make([]int32, maxDeg+1)
	copy(next, bin[:maxDeg+1])
	for v := 0; v < n; v++ {
		p := next[deg[v]]
		vert[p] = int32(v)
		pos[v] = p
		next[deg[v]]++
	}

	for i := 0; i < n; i++ {
		if i%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		v := vert[i]
		core[v] = deg[v]
		for _, u := range g.Neighbors(v) {
			if deg[u] <= deg[v] {
				continue
			}
			// Move u to the front of its degree block, then shrink its degree.
			du := deg[u]
			pu := pos[u]
			pw := bin[du]
			w := vert[pw]
			if u != w {
				vert[pu], vert[pw] = w, u
				pos[u], pos[w] = pw, pu
			}
			bin[du]++
			deg[u]--
		}
	}
	// Position i of vert is final once iteration i takes it, so the array is
	// now exactly the peel (degeneracy) order.
	return core, vert, nil
}

// NaiveDecompose computes core numbers by repeated vertex removal, O(n·m)
// worst case. It exists as the oracle for property tests and as the
// baseline of the core-decomposition ablation bench.
func NaiveDecompose(g *graph.Graph) []int32 {
	n := g.N()
	core := make([]int32, n)
	deg := make([]int32, n)
	removed := make([]bool, n)
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(int32(v)))
	}
	for remaining := n; remaining > 0; {
		// Find the minimum remaining degree.
		minDeg := int32(-1)
		for v := 0; v < n; v++ {
			if !removed[v] && (minDeg == -1 || deg[v] < minDeg) {
				minDeg = deg[v]
			}
		}
		// Remove every vertex at that degree (repeat until none at <= minDeg).
		for {
			again := false
			for v := int32(0); v < int32(n); v++ {
				if removed[v] || deg[v] > minDeg {
					continue
				}
				removed[v] = true
				core[v] = minDeg
				remaining--
				for _, u := range g.Neighbors(v) {
					if !removed[u] {
						deg[u]--
						if deg[u] <= minDeg {
							again = true
						}
					}
				}
			}
			if !again {
				break
			}
		}
	}
	return core
}

// Degeneracy returns the maximum core number (the graph degeneracy).
func Degeneracy(core []int32) int32 {
	var d int32
	for _, c := range core {
		if c > d {
			d = c
		}
	}
	return d
}

// VerticesWithCoreAtLeast returns all vertices with core number ≥ k, in ID
// order. This is the vertex set of the (possibly disconnected) k-core Hk.
func VerticesWithCoreAtLeast(core []int32, k int32) []int32 {
	var out []int32
	for v, c := range core {
		if c >= k {
			out = append(out, int32(v))
		}
	}
	return out
}

// ConnectedKCore returns the connected component of q inside the k-core of
// g, or nil when core(q) < k. core may be nil, in which case it is computed.
// This is exactly the Global [Sozio–Gionis] community with parameter k as the
// C-Explorer UI exposes it ("Structure: degree ≥ k").
func ConnectedKCore(g *graph.Graph, core []int32, q int32, k int32) []int32 {
	if core == nil {
		core = Decompose(g)
	}
	if q < 0 || int(q) >= g.N() || core[q] < k {
		return nil
	}
	return g.BFSWithin(q, func(v int32) bool { return core[v] >= k })
}
