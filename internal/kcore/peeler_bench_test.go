package kcore

import (
	"math/rand"
	"testing"

	"cexplorer/internal/graph"
)

func benchGraph(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, m)
	for i := 0; i < n; i++ {
		b.AddVertex("")
	}
	for i := 0; i < m; i++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// BenchmarkPeelerSteadyState measures the verification hot path of the ACQ
// engine: repeated ConnectedKCoreContaining calls over one reused Peeler.
// The membership and visited sets are epoch-stamped dense scratch, so the
// only allocation per call is the returned component slice (callers retain
// it) — allocs/op must stay at 1 regardless of working-set size.
func BenchmarkPeelerSteadyState(b *testing.B) {
	g := benchGraph(20000, 100000, 42)
	vertices := make([]int32, g.N())
	for i := range vertices {
		vertices[i] = int32(i)
	}
	p := NewPeeler(g)
	// Locate a vertex that survives a k=4 peel so the BFS runs a real
	// component walk each iteration.
	surv := p.KCore(vertices, 4)
	if len(surv) == 0 {
		b.Skip("no 4-core in benchmark graph")
	}
	q := surv[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if comp := p.ConnectedKCoreContaining(vertices, 4, q); comp == nil {
			b.Fatal("component vanished")
		}
	}
}

// BenchmarkPeelerMultiContaining exercises the multi-query-vertex variant,
// whose per-call component membership checks used to build a map.
func BenchmarkPeelerMultiContaining(b *testing.B) {
	g := benchGraph(20000, 100000, 42)
	vertices := make([]int32, g.N())
	for i := range vertices {
		vertices[i] = int32(i)
	}
	p := NewPeeler(g)
	surv := p.KCore(vertices, 4)
	if len(surv) < 2 {
		b.Skip("no 4-core in benchmark graph")
	}
	comp := p.ConnectedKCoreContaining(vertices, 4, surv[0])
	if len(comp) < 2 {
		b.Skip("component too small")
	}
	qs := []int32{comp[0], comp[len(comp)/2], comp[len(comp)-1]}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := p.ConnectedKCoreContainingAll(vertices, 4, qs); got == nil {
			b.Fatal("component vanished")
		}
	}
}
