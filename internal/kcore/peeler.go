package kcore

import "cexplorer/internal/graph"

// Peeler computes k-cores of induced subgraphs without allocating per call.
// It is the verification workhorse of the ACQ engine: every candidate
// keyword set is checked by peeling the keyword-induced vertex set down to
// its k-core (paper §3.2, "verify whether a keyword combination results in
// an AC"). The Local baseline uses it on expansion frontiers too.
//
// All membership bookkeeping is epoch-stamped dense scratch: starting a new
// working set or BFS is O(1) (bump the epoch), and the steady-state peel and
// component walk allocate nothing. Only slices returned to the caller are
// freshly allocated, because callers retain them (the engine caches
// per-keyword-set communities across a query).
//
// A Peeler carries O(n) scratch space bound to one graph; it is not safe for
// concurrent use (each query goroutine owns its own Peeler).
type Peeler struct {
	g     *graph.Graph
	mark  []int32 // epoch stamp: in current working set iff mark[v] == epoch
	deg   []int32 // induced degree while peeling
	epoch int32
	queue []int32 // peel worklist, reused across calls

	// BFS scratch for componentWithin, separate from the peel marking so a
	// component walk never disturbs the working-set stamps.
	seen      []int32 // visited iff seen[v] == seenEpoch
	seenEpoch int32
	bfs       []int32 // frontier/output order, reused across calls
}

// NewPeeler returns a Peeler for g.
func NewPeeler(g *graph.Graph) *Peeler {
	return &Peeler{
		g:    g,
		mark: make([]int32, g.N()),
		deg:  make([]int32, g.N()),
		seen: make([]int32, g.N()),
		// epoch 0 would match the zero-valued mark array; begin() bumps to 1
		// before first use.
		epoch:     0,
		seenEpoch: 0,
	}
}

// begin starts a new working set containing vertices.
func (p *Peeler) begin(vertices []int32) {
	p.epoch++
	if p.epoch == 0 { // wrapped; re-zero and restart
		for i := range p.mark {
			p.mark[i] = 0
		}
		p.epoch = 1
	}
	for _, v := range vertices {
		p.mark[v] = p.epoch
	}
}

func (p *Peeler) inSet(v int32) bool { return p.mark[v] == p.epoch }

// peel runs the k-core peel over vertices and returns the number of
// survivors. Afterwards p.mark identifies survivors (mark[v] == epoch);
// nothing is allocated.
func (p *Peeler) peel(vertices []int32, k int32) int {
	p.begin(vertices)
	g := p.g
	p.queue = p.queue[:0]
	// Pass 1: induced degrees with the full set marked. Evictions must not
	// start until all degrees are computed, or vertices initialized after an
	// eviction would be decremented twice for the same neighbor.
	for _, v := range vertices {
		d := int32(0)
		for _, u := range g.Neighbors(v) {
			if p.inSet(u) {
				d++
			}
		}
		p.deg[v] = d
	}
	// Pass 2: seed the peel queue.
	survivors := 0
	for _, v := range vertices {
		if p.inSet(v) {
			survivors++
			if p.deg[v] < k {
				p.queue = append(p.queue, v)
				p.mark[v] = p.epoch - 1
				survivors--
			}
		}
	}
	for len(p.queue) > 0 {
		v := p.queue[len(p.queue)-1]
		p.queue = p.queue[:len(p.queue)-1]
		for _, u := range g.Neighbors(v) {
			if !p.inSet(u) {
				continue
			}
			p.deg[u]--
			if p.deg[u] < k {
				p.mark[u] = p.epoch - 1
				p.queue = append(p.queue, u)
				survivors--
			}
		}
	}
	return survivors
}

// KCore peels the subgraph induced by vertices down to its k-core and
// returns the surviving vertices in input order (nil when the k-core is
// empty). The input slice is not modified and should not contain duplicates
// (a surviving duplicate would be echoed twice in the output).
func (p *Peeler) KCore(vertices []int32, k int32) []int32 {
	n := p.peel(vertices, k)
	if n == 0 {
		return nil
	}
	out := make([]int32, 0, n)
	for _, v := range vertices {
		if p.inSet(v) {
			out = append(out, v)
		}
	}
	return out
}

// ConnectedKCoreContaining peels vertices to the k-core and returns the
// connected component containing q, or nil if q did not survive. The result
// is in BFS order from q.
func (p *Peeler) ConnectedKCoreContaining(vertices []int32, k int32, q int32) []int32 {
	if p.peel(vertices, k) == 0 {
		return nil
	}
	// p.mark still identifies survivors (epoch unchanged since peel).
	if !p.inSet(q) {
		return nil
	}
	return p.componentWithin(q)
}

// ConnectedKCoreContainingAll is the multi-query-vertex variant: all of qs
// must survive the peel and lie in one component; that component is
// returned, else nil.
func (p *Peeler) ConnectedKCoreContainingAll(vertices []int32, k int32, qs []int32) []int32 {
	if len(qs) == 0 {
		return nil
	}
	if p.peel(vertices, k) == 0 {
		return nil
	}
	for _, q := range qs {
		if !p.inSet(q) {
			return nil
		}
	}
	comp := p.componentWithin(qs[0])
	// componentWithin leaves seen stamps valid for exactly the vertices of
	// comp, so the remaining query vertices are membership-checked in O(1)
	// each — no per-call set allocation.
	for _, q := range qs[1:] {
		if p.seen[q] != p.seenEpoch {
			return nil
		}
	}
	return comp
}

// componentWithin runs BFS from q over the current working set (survivors of
// the last peel). It does not disturb the epoch marking; visited bookkeeping
// lives in the separate seen/seenEpoch scratch. The returned slice is fresh
// (callers retain results), but the frontier buffer is reused.
func (p *Peeler) componentWithin(q int32) []int32 {
	g := p.g
	p.seenEpoch++
	if p.seenEpoch == 0 { // wrapped; re-zero and restart
		for i := range p.seen {
			p.seen[i] = 0
		}
		p.seenEpoch = 1
	}
	p.seen[q] = p.seenEpoch
	p.bfs = append(p.bfs[:0], q)
	for head := 0; head < len(p.bfs); head++ {
		v := p.bfs[head]
		for _, u := range g.Neighbors(v) {
			if p.inSet(u) && p.seen[u] != p.seenEpoch {
				p.seen[u] = p.seenEpoch
				p.bfs = append(p.bfs, u)
			}
		}
	}
	out := make([]int32, len(p.bfs))
	copy(out, p.bfs)
	return out
}
