package kcore

import "cexplorer/internal/graph"

// Peeler computes k-cores of induced subgraphs without allocating per call.
// It is the verification workhorse of the ACQ engine: every candidate
// keyword set is checked by peeling the keyword-induced vertex set down to
// its k-core (paper §3.2, "verify whether a keyword combination results in
// an AC"). The Local baseline uses it on expansion frontiers too.
//
// A Peeler carries O(n) scratch space bound to one graph; it is not safe for
// concurrent use (each query goroutine owns its own Peeler).
type Peeler struct {
	g     *graph.Graph
	mark  []int32 // epoch stamp: in current working set iff mark[v] == epoch
	deg   []int32 // induced degree while peeling
	epoch int32
	queue []int32
}

// NewPeeler returns a Peeler for g.
func NewPeeler(g *graph.Graph) *Peeler {
	return &Peeler{
		g:    g,
		mark: make([]int32, g.N()),
		deg:  make([]int32, g.N()),
		// epoch 0 would match the zero-valued mark array; start at 1.
		epoch: 0,
	}
}

// begin starts a new working set containing vertices.
func (p *Peeler) begin(vertices []int32) {
	p.epoch++
	if p.epoch == 0 { // wrapped; re-zero and restart
		for i := range p.mark {
			p.mark[i] = 0
		}
		p.epoch = 1
	}
	for _, v := range vertices {
		p.mark[v] = p.epoch
	}
}

func (p *Peeler) inSet(v int32) bool { return p.mark[v] == p.epoch }

// KCore peels the subgraph induced by vertices down to its k-core and
// returns the surviving vertices in input order (nil when the k-core is
// empty). The input slice is not modified and should not contain duplicates
// (a surviving duplicate would be echoed twice in the output).
func (p *Peeler) KCore(vertices []int32, k int32) []int32 {
	p.begin(vertices)
	g := p.g
	p.queue = p.queue[:0]
	// Pass 1: induced degrees with the full set marked. Evictions must not
	// start until all degrees are computed, or vertices initialized after an
	// eviction would be decremented twice for the same neighbor.
	for _, v := range vertices {
		d := int32(0)
		for _, u := range g.Neighbors(v) {
			if p.inSet(u) {
				d++
			}
		}
		p.deg[v] = d
	}
	// Pass 2: seed the peel queue.
	for _, v := range vertices {
		if p.inSet(v) && p.deg[v] < k {
			p.queue = append(p.queue, v)
			p.mark[v] = p.epoch - 1
		}
	}
	for len(p.queue) > 0 {
		v := p.queue[len(p.queue)-1]
		p.queue = p.queue[:len(p.queue)-1]
		for _, u := range g.Neighbors(v) {
			if !p.inSet(u) {
				continue
			}
			p.deg[u]--
			if p.deg[u] < k {
				p.mark[u] = p.epoch - 1
				p.queue = append(p.queue, u)
			}
		}
	}
	var out []int32
	for _, v := range vertices {
		if p.inSet(v) {
			out = append(out, v)
		}
	}
	return out
}

// ConnectedKCoreContaining peels vertices to the k-core and returns the
// connected component containing q, or nil if q did not survive. The result
// is in BFS order from q.
func (p *Peeler) ConnectedKCoreContaining(vertices []int32, k int32, q int32) []int32 {
	survivors := p.KCore(vertices, k)
	if survivors == nil {
		return nil
	}
	// p.mark still identifies survivors (epoch unchanged since KCore).
	if !p.inSet(q) {
		return nil
	}
	return p.componentWithin(q)
}

// ConnectedKCoreContainingAll is the multi-query-vertex variant: all of qs
// must survive the peel and lie in one component; that component is
// returned, else nil.
func (p *Peeler) ConnectedKCoreContainingAll(vertices []int32, k int32, qs []int32) []int32 {
	if len(qs) == 0 {
		return nil
	}
	survivors := p.KCore(vertices, k)
	if survivors == nil {
		return nil
	}
	for _, q := range qs {
		if !p.inSet(q) {
			return nil
		}
	}
	comp := p.componentWithin(qs[0])
	// Component membership stamps mark[v] = epoch+1... instead re-check:
	inComp := make(map[int32]bool, len(comp))
	for _, v := range comp {
		inComp[v] = true
	}
	for _, q := range qs[1:] {
		if !inComp[q] {
			return nil
		}
	}
	return comp
}

// componentWithin runs BFS from q over the current working set (survivors of
// the last peel). It does not disturb the epoch marking.
func (p *Peeler) componentWithin(q int32) []int32 {
	g := p.g
	visited := map[int32]bool{q: true}
	out := []int32{q}
	for head := 0; head < len(out); head++ {
		v := out[head]
		for _, u := range g.Neighbors(v) {
			if p.inSet(u) && !visited[u] {
				visited[u] = true
				out = append(out, u)
			}
		}
	}
	return out
}
