package kcore

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"cexplorer/internal/graph"
)

// buildPaperGraph reconstructs the Figure 5(a) graph of the paper: a K4 on
// {A,B,C,D}, E attached to C and D, F pendant on E, G pendant on A, an
// isolated edge H–I, and an isolated vertex J. Core numbers per the figure:
// {A,B,C,D}→3, {E}→2, {F,G,H,I}→1, {J}→0.
func buildPaperGraph(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(10, 11)
	for _, spec := range []struct {
		name string
		kws  []string
	}{
		{"A", []string{"w", "x", "y"}},
		{"B", []string{"x"}},
		{"C", []string{"x", "y"}},
		{"D", []string{"x", "y", "z"}},
		{"E", []string{"y", "z"}},
		{"F", []string{"y"}},
		{"G", []string{"x", "y"}},
		{"H", []string{"y", "z"}},
		{"I", []string{"x"}},
		{"J", []string{"x"}},
	} {
		b.AddVertex(spec.name, spec.kws...)
	}
	edges := [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, // K4 ABCD
		{4, 2}, {4, 3}, // E-C, E-D
		{5, 4}, // F-E
		{6, 0}, // G-A
		{7, 8}, // H-I
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.MustBuild()
}

func TestDecomposePaperGraph(t *testing.T) {
	g := buildPaperGraph(t)
	if g.N() != 10 || g.M() != 11 {
		t.Fatalf("fixture: N,M = %d,%d, want 10,11 (paper: 10 vertices, 11 edges)", g.N(), g.M())
	}
	core := Decompose(g)
	want := []int32{3, 3, 3, 3, 2, 1, 1, 1, 1, 0}
	if !reflect.DeepEqual(core, want) {
		t.Fatalf("core = %v, want %v", core, want)
	}
	if Degeneracy(core) != 3 {
		t.Fatalf("degeneracy = %d", Degeneracy(core))
	}
}

func TestVerticesWithCoreAtLeast(t *testing.T) {
	g := buildPaperGraph(t)
	core := Decompose(g)
	got := VerticesWithCoreAtLeast(core, 2)
	want := []int32{0, 1, 2, 3, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("H2 = %v, want %v", got, want)
	}
	if got := VerticesWithCoreAtLeast(core, 4); got != nil {
		t.Fatalf("H4 = %v, want empty", got)
	}
}

func TestConnectedKCore(t *testing.T) {
	g := buildPaperGraph(t)
	core := Decompose(g)
	// 3-core containing A = the K4.
	comp := ConnectedKCore(g, core, 0, 3)
	if len(comp) != 4 {
		t.Fatalf("3-core of A = %v", comp)
	}
	// 1-core containing H = {H, I} only.
	comp = ConnectedKCore(g, core, 7, 1)
	if len(comp) != 2 {
		t.Fatalf("1-core of H = %v", comp)
	}
	// J has core 0; asking k=1 yields nil.
	if got := ConnectedKCore(g, core, 9, 1); got != nil {
		t.Fatalf("1-core of J = %v", got)
	}
	// k=0 containing J is just J.
	if got := ConnectedKCore(g, core, 9, 0); len(got) != 1 {
		t.Fatalf("0-core of J = %v", got)
	}
	// nil core argument recomputes.
	if got := ConnectedKCore(g, nil, 0, 3); len(got) != 4 {
		t.Fatalf("nil-core variant = %v", got)
	}
	// Out-of-range q.
	if got := ConnectedKCore(g, core, -1, 1); got != nil {
		t.Fatal("negative q should be nil")
	}
	if got := ConnectedKCore(g, core, 99, 1); got != nil {
		t.Fatal("out-of-range q should be nil")
	}
}

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder(n, m)
	b.AddVertexIDs(int32(n - 1))
	for i := 0; i < m; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.MustBuild()
}

// TestDecomposeMatchesNaive is the core correctness property: the O(n+m)
// bin-sort peeling must agree with naive repeated removal on random graphs.
func TestDecomposeMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		g := randomGraph(rng, n, rng.Intn(4*n))
		fast := Decompose(g)
		slow := NaiveDecompose(g)
		return reflect.DeepEqual(fast, slow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestKCoreInvariant: every vertex of the k-core has ≥ k neighbors inside
// it, and the k-core is the *maximal* such subgraph (no removed vertex could
// have been kept, verified by checking the naive fixpoint).
func TestKCoreInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		g := randomGraph(rng, n, rng.Intn(5*n))
		core := Decompose(g)
		for k := int32(1); k <= Degeneracy(core); k++ {
			members := VerticesWithCoreAtLeast(core, k)
			inSet := make(map[int32]bool, len(members))
			for _, v := range members {
				inSet[v] = true
			}
			for _, v := range members {
				d := 0
				for _, u := range g.Neighbors(v) {
					if inSet[u] {
						d++
					}
				}
				if int32(d) < k {
					return false
				}
			}
		}
		// Nesting: (k+1)-core ⊆ k-core holds trivially by core numbers, but
		// check the count monotonicity anyway.
		prev := n + 1
		for k := int32(0); k <= Degeneracy(core)+1; k++ {
			cur := len(VerticesWithCoreAtLeast(core, k))
			if cur > prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPeelerKCore(t *testing.T) {
	g := buildPaperGraph(t)
	p := NewPeeler(g)
	// Full graph at k=3 leaves the K4.
	all := make([]int32, g.N())
	for i := range all {
		all[i] = int32(i)
	}
	got := p.KCore(all, 3)
	if !reflect.DeepEqual(got, []int32{0, 1, 2, 3}) {
		t.Fatalf("KCore(all,3) = %v", got)
	}
	// Restricted set {A,C,D,E} at k=2: triangle ACD plus E connected to C,D —
	// all four survive (each has ≥2 neighbors inside).
	got = p.KCore([]int32{0, 2, 3, 4}, 2)
	if !reflect.DeepEqual(got, []int32{0, 2, 3, 4}) {
		t.Fatalf("KCore({A,C,D,E},2) = %v", got)
	}
	// Restricted set {A,C,E} at k=2: A-C edge, E-C edge: peels to empty.
	if got = p.KCore([]int32{0, 2, 4}, 2); got != nil {
		t.Fatalf("KCore({A,C,E},2) = %v", got)
	}
	// k=0 keeps everything.
	if got = p.KCore([]int32{9}, 0); !reflect.DeepEqual(got, []int32{9}) {
		t.Fatalf("KCore({J},0) = %v", got)
	}
}

func TestPeelerConnectedContaining(t *testing.T) {
	g := buildPaperGraph(t)
	p := NewPeeler(g)
	all := make([]int32, g.N())
	for i := range all {
		all[i] = int32(i)
	}
	// 1-core has components {A..G} and {H,I}; component of H has 2 vertices.
	comp := p.ConnectedKCoreContaining(all, 1, 7)
	if len(comp) != 2 {
		t.Fatalf("component of H = %v", comp)
	}
	// q evicted by the peel → nil.
	if got := p.ConnectedKCoreContaining(all, 2, 5); got != nil {
		t.Fatalf("F should not survive k=2: %v", got)
	}
	// Multi-vertex: A and E share the 2-core component.
	comp = p.ConnectedKCoreContainingAll(all, 2, []int32{0, 4})
	if len(comp) != 5 {
		t.Fatalf("2-core containing A,E = %v", comp)
	}
	// A and H are never in one component.
	if got := p.ConnectedKCoreContainingAll(all, 1, []int32{0, 7}); got != nil {
		t.Fatalf("A,H joint community = %v", got)
	}
	// Empty query set.
	if got := p.ConnectedKCoreContainingAll(all, 1, nil); got != nil {
		t.Fatal("empty query set should be nil")
	}
}

// TestPeelerMatchesGlobalKCore: peeling the full vertex set must equal the
// decomposition-derived k-core, for all k, on random graphs.
func TestPeelerMatchesGlobalKCore(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		g := randomGraph(rng, n, rng.Intn(4*n))
		core := Decompose(g)
		p := NewPeeler(g)
		all := make([]int32, n)
		for i := range all {
			all[i] = int32(i)
		}
		for k := int32(0); k <= Degeneracy(core)+1; k++ {
			want := VerticesWithCoreAtLeast(core, k)
			got := p.KCore(all, k)
			if len(want) != len(got) {
				return false
			}
			for i := range want {
				if want[i] != got[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPeelerEpochReuse hammers one Peeler with many queries to exercise the
// epoch-stamping reuse logic.
func TestPeelerEpochReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomGraph(rng, 80, 300)
	p := NewPeeler(g)
	core := Decompose(g)
	all := make([]int32, g.N())
	for i := range all {
		all[i] = int32(i)
	}
	for iter := 0; iter < 500; iter++ {
		k := int32(rng.Intn(5))
		got := p.KCore(all, k)
		want := VerticesWithCoreAtLeast(core, k)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d k=%d: %v != %v", iter, k, got, want)
		}
	}
}

// TestDecomposeOrder: the returned order is a permutation of the vertex set
// in which every vertex's forward degree (neighbors later in the order) is
// bounded by its core number — the degeneracy-orientation property the
// parallel truss engine's triangle counting relies on.
func TestDecomposeOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		b := graph.NewBuilder(n, 0)
		b.AddVertexIDs(int32(n - 1))
		for i := 0; i < 3*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.MustBuild()
		core, order := DecomposeOrder(g)
		if !reflect.DeepEqual(core, Decompose(g)) {
			t.Errorf("seed %d: DecomposeOrder core numbers diverge from Decompose", seed)
			return false
		}
		if len(order) != n {
			t.Errorf("seed %d: order has %d entries for n=%d", seed, len(order), n)
			return false
		}
		rank := make([]int, n)
		seen := make([]bool, n)
		for i, v := range order {
			if v < 0 || int(v) >= n || seen[v] {
				t.Errorf("seed %d: order is not a permutation at %d", seed, i)
				return false
			}
			seen[v] = true
			rank[v] = i
		}
		for v := int32(0); v < int32(n); v++ {
			forward := int32(0)
			for _, u := range g.Neighbors(v) {
				if rank[u] > rank[v] {
					forward++
				}
			}
			if forward > core[v] {
				t.Errorf("seed %d: vertex %d has forward degree %d > core %d", seed, v, forward, core[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
