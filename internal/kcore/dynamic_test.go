package kcore

import (
	"math/rand"
	"slices"
	"testing"

	"cexplorer/internal/graph"
)

// TestIncrementalMatchesDecompose drives long random insert/delete streams
// through the subcore kernels and checks, after every single op, that the
// maintained core numbers equal a from-scratch Batagelj–Zaveršnik peel of
// the current graph — the defining invariant of the dynamic subsystem.
func TestIncrementalMatchesDecompose(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 24 + rng.Intn(40)
		b := graph.NewBuilder(n, 2*n)
		b.AddVertexIDs(int32(n - 1))
		for i := 0; i < 2*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		o := graph.NewOverlay(b.MustBuild())
		core := Decompose(mustMaterialize(t, o))

		for step := 0; step < 400; step++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			if u == v {
				continue
			}
			var changed []int32
			if o.HasEdge(u, v) {
				if err := o.RemoveEdge(u, v); err != nil {
					t.Fatal(err)
				}
				changed = RemoveEdge(o, core, u, v)
			} else {
				if err := o.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
				changed = InsertEdge(o, core, u, v)
			}
			want := Decompose(mustMaterialize(t, o))
			if !slices.Equal(core, want) {
				t.Fatalf("seed %d step %d: after op on {%d,%d} (changed %v):\n got %v\nwant %v",
					seed, step, u, v, changed, core, want)
			}
			for _, c := range changed {
				if core[c] != want[c] {
					t.Fatalf("seed %d step %d: changed list lies about %d", seed, step, c)
				}
			}
		}
	}
}

// TestIncrementalOnOverlayMidBatch checks the kernels read the overlay's
// merged adjacency, not the frozen base: several ops accumulate without
// materializing and the final numbers still match a rebuild.
func TestIncrementalOnOverlayMidBatch(t *testing.T) {
	b := graph.NewBuilder(8, 10)
	b.AddVertexIDs(7)
	// Two triangles joined by a bridge.
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}} {
		b.AddEdge(e[0], e[1])
	}
	o := graph.NewOverlay(b.MustBuild())
	core := Decompose(mustMaterialize(t, o))

	ops := [][3]int32{ // {u, v, 1=insert 0=delete}
		{0, 3, 1}, {1, 4, 1}, {2, 5, 1}, // weld the triangles into a dense block
		{2, 3, 0},            // then cut the original bridge
		{6, 7, 1}, {6, 0, 1}, // and grow a pendant path
	}
	for _, op := range ops {
		u, v := op[0], op[1]
		if op[2] == 1 {
			if err := o.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
			InsertEdge(o, core, u, v)
		} else {
			if err := o.RemoveEdge(u, v); err != nil {
				t.Fatal(err)
			}
			RemoveEdge(o, core, u, v)
		}
	}
	want := Decompose(mustMaterialize(t, o))
	if !slices.Equal(core, want) {
		t.Fatalf("mid-batch maintenance diverged:\n got %v\nwant %v", core, want)
	}
}

// TestInsertIsolatedVertices covers the r=0 boundary: the first edge of an
// isolated vertex, and a fresh vertex appended mid-stream.
func TestInsertIsolatedVertices(t *testing.T) {
	b := graph.NewBuilder(3, 1)
	b.AddVertexIDs(2)
	o := graph.NewOverlay(b.MustBuild())
	core := []int32{0, 0, 0}

	if err := o.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	changed := InsertEdge(o, core, 0, 1)
	if !slices.Equal(core, []int32{1, 1, 0}) {
		t.Fatalf("after first edge: core %v", core)
	}
	if !slices.Equal(changed, []int32{0, 1}) {
		t.Fatalf("changed %v, want [0 1]", changed)
	}

	id := o.AddVertex("", nil)
	core = append(core, 0)
	if err := o.AddEdge(id, 0); err != nil {
		t.Fatal(err)
	}
	InsertEdge(o, core, id, 0)
	want := Decompose(mustMaterialize(t, o))
	if !slices.Equal(core, want) {
		t.Fatalf("after appending vertex: core %v want %v", core, want)
	}
}

func mustMaterialize(t *testing.T, o *graph.Overlay) *graph.Graph {
	t.Helper()
	g, err := o.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	return g
}
