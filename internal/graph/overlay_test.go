package graph

import (
	"errors"
	"math/rand"
	"slices"
	"testing"
)

// rebuildReference re-applies an overlay's current edge set through a fresh
// Builder, yielding the graph the overlay ought to materialize.
func rebuildReference(t *testing.T, o *Overlay) *Graph {
	t.Helper()
	b := NewBuilder(o.N(), o.M())
	for v := int32(0); v < int32(o.N()); v++ {
		b.AddVertexIDs(v)
	}
	for v := int32(0); v < int32(o.N()); v++ {
		o.ForEachNeighbor(v, func(u int32) bool {
			if v < u {
				b.AddEdge(v, u)
			}
			return true
		})
	}
	return b.MustBuild()
}

func requireSameAdjacency(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("size mismatch: got n=%d m=%d, want n=%d m=%d", got.N(), got.M(), want.N(), want.M())
	}
	for v := int32(0); v < int32(want.N()); v++ {
		if !slices.Equal(got.Neighbors(v), want.Neighbors(v)) {
			t.Fatalf("vertex %d adjacency: got %v want %v", v, got.Neighbors(v), want.Neighbors(v))
		}
	}
}

func TestOverlayRandomMutationsMatchRebuild(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(30, 60)
		for i := 0; i < 30; i++ {
			b.AddVertex("", "k"+string(rune('a'+i%5)))
		}
		for i := 0; i < 60; i++ {
			b.AddEdge(int32(rng.Intn(30)), int32(rng.Intn(30)))
		}
		base := b.MustBuild()
		o := NewOverlay(base)

		for step := 0; step < 300; step++ {
			u := int32(rng.Intn(o.N()))
			v := int32(rng.Intn(o.N()))
			switch {
			case rng.Intn(20) == 0:
				o.AddVertex("", []string{"fresh"})
			case o.HasEdge(u, v):
				if err := o.RemoveEdge(u, v); err != nil {
					t.Fatalf("seed %d step %d: remove existing {%d,%d}: %v", seed, step, u, v, err)
				}
			case u != v:
				if err := o.AddEdge(u, v); err != nil {
					t.Fatalf("seed %d step %d: add missing {%d,%d}: %v", seed, step, u, v, err)
				}
			}
		}
		got, err := o.Materialize()
		if err != nil {
			t.Fatalf("seed %d: materialize: %v", seed, err)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("seed %d: materialized graph invalid: %v", seed, err)
		}
		requireSameAdjacency(t, got, rebuildReference(t, o))
	}
}

func TestOverlayTypedErrors(t *testing.T) {
	b := NewBuilder(3, 2)
	b.AddVertexIDs(2)
	b.AddEdge(0, 1)
	o := NewOverlay(b.MustBuild())

	if err := o.AddEdge(0, 1); !errors.Is(err, ErrEdgeExists) {
		t.Errorf("duplicate add: got %v, want ErrEdgeExists", err)
	}
	if err := o.RemoveEdge(1, 2); !errors.Is(err, ErrEdgeMissing) {
		t.Errorf("missing remove: got %v, want ErrEdgeMissing", err)
	}
	if err := o.AddEdge(0, 99); !errors.Is(err, ErrVertexRange) {
		t.Errorf("out of range: got %v, want ErrVertexRange", err)
	}
	if err := o.AddEdge(2, 2); !errors.Is(err, ErrSelfLoop) {
		t.Errorf("self loop: got %v, want ErrSelfLoop", err)
	}

	// Delete-then-readd of a base edge and add-then-delete of a fresh edge
	// both cancel to a no-op.
	if err := o.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := o.AddEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := o.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := o.RemoveEdge(2, 1); err != nil {
		t.Fatal(err)
	}
	if o.Dirty() {
		t.Errorf("canceling mutations should leave the overlay clean")
	}
	g, err := o.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	requireSameAdjacency(t, g, o.base)
}

func TestOverlayBaseUntouched(t *testing.T) {
	b := NewBuilder(4, 3)
	b.AddVertex("a", "x")
	b.AddVertex("b", "y")
	b.AddVertex("c")
	b.AddVertex("d")
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	base := b.MustBuild()
	baseM, baseVocab := base.M(), base.Vocab().Len()

	o := NewOverlay(base)
	if err := o.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := o.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	id := o.AddVertex("e", []string{"brand-new-word"})
	if err := o.AddEdge(id, 0); err != nil {
		t.Fatal(err)
	}
	g, err := o.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	// The base graph — including its vocabulary, which the new vertex's
	// unseen keyword must not have leaked into — is bit-for-bit intact.
	if base.M() != baseM || !base.HasEdge(0, 1) || base.HasEdge(2, 3) {
		t.Errorf("base adjacency mutated")
	}
	if base.Vocab().Len() != baseVocab {
		t.Errorf("base vocab grew from %d to %d", baseVocab, base.Vocab().Len())
	}
	if _, ok := base.Vocab().ID("brand-new-word"); ok {
		t.Errorf("new keyword leaked into base vocab")
	}
	if _, ok := g.Vocab().ID("brand-new-word"); !ok {
		t.Errorf("new keyword missing from materialized vocab")
	}
	if name := g.Name(id); name != "e" {
		t.Errorf("new vertex name %q, want e", name)
	}
	if got, ok := g.VertexByName("e"); !ok || got != id {
		t.Errorf("VertexByName(e) = %d,%v", got, ok)
	}
}
