package graph

import "slices"

// Stats summarizes a graph for the Analysis panel and for dataset
// descriptions in experiment output.
type Stats struct {
	Vertices    int
	Edges       int
	MinDegree   int
	MaxDegree   int
	AvgDegree   float64
	Components  int
	Keywords    int     // distinct keywords in the vocabulary
	AvgKeywords float64 // average keyword-set size
}

// ComputeStats walks the graph once and returns its Stats.
func (g *Graph) ComputeStats() Stats {
	n := g.N()
	s := Stats{
		Vertices: n,
		Edges:    g.M(),
		Keywords: g.vocab.Len(),
	}
	if n == 0 {
		return s
	}
	s.MinDegree = g.Degree(0)
	totalKw := 0
	for v := int32(0); v < int32(n); v++ {
		d := g.Degree(v)
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		totalKw += len(g.Keywords(v))
	}
	s.AvgDegree = 2 * float64(g.M()) / float64(n)
	s.AvgKeywords = float64(totalKw) / float64(n)
	_, s.Components = g.ConnectedComponents()
	return s
}

// DegreeHistogram returns counts[d] = number of vertices with degree d.
func (g *Graph) DegreeHistogram() []int {
	counts := make([]int, g.MaxDegree()+1)
	for v := int32(0); v < int32(g.N()); v++ {
		counts[g.Degree(v)]++
	}
	return counts
}

// TopKeywords returns the most frequent keyword IDs among the given
// vertices, by descending frequency (ties broken by ID). This powers the
// community "Theme" display of Figure 1.
func (g *Graph) TopKeywords(vertices []int32, limit int) []int32 {
	freq := make(map[int32]int)
	for _, v := range vertices {
		for _, w := range g.Keywords(v) {
			freq[w]++
		}
	}
	ids := make([]int32, 0, len(freq))
	for w := range freq {
		ids = append(ids, w)
	}
	slices.SortFunc(ids, func(a, b int32) int {
		if freq[a] != freq[b] {
			return freq[b] - freq[a]
		}
		return int(a) - int(b)
	})
	if limit > 0 && len(ids) > limit {
		ids = ids[:limit]
	}
	return ids
}
