package graph

import (
	"slices"
	"testing"
)

// borrowedGraph builds a small attributed graph and reassembles it via
// FromRaw with Borrowed set, the shape a view-decoded snapshot produces.
func borrowedGraph(t testing.TB) *Graph {
	t.Helper()
	b := NewBuilder(4, 4)
	b.AddVertex("a", "x", "y")
	b.AddVertex("b", "x")
	b.AddVertex("c", "y")
	b.AddVertex("d", "z")
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	g := b.MustBuild()
	r := g.Raw()
	r.Borrowed = true
	bg, err := FromRaw(r)
	if err != nil {
		t.Fatalf("from raw: %v", err)
	}
	return bg
}

func TestFromRawBorrowedPropagates(t *testing.T) {
	g := borrowedGraph(t)
	if !g.Borrowed() {
		t.Fatalf("FromRaw dropped the borrowed mark")
	}
	if !g.Raw().Borrowed {
		t.Fatalf("Raw() dropped the borrowed mark")
	}
	if g.BorrowedBytes() <= 0 {
		t.Fatalf("BorrowedBytes = %d on a borrowed graph", g.BorrowedBytes())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("borrowed graph invalid: %v", err)
	}

	// A heap-owned graph reports neither.
	own := NewBuilder(2, 1)
	own.AddVertex("p")
	own.AddVertex("q")
	own.AddEdge(0, 1)
	og := own.MustBuild()
	if og.Borrowed() || og.BorrowedBytes() != 0 {
		t.Fatalf("fresh graph claims borrowed arenas: %v/%d", og.Borrowed(), og.BorrowedBytes())
	}
}

// TestMaterializeDisownsBorrowedBase is the copy-on-write half of the
// zero-copy contract: any overlay materialized over a borrowed base must
// come out fully heap-owned — keyword arenas, name contents, and
// vocabulary deep-copied — so the successor survives the base's mapping
// being released.
func TestMaterializeDisownsBorrowedBase(t *testing.T) {
	base := borrowedGraph(t)
	braw := base.Raw()

	for _, tc := range []struct {
		name   string
		mutate func(o *Overlay) error
	}{
		{"remove-edge", func(o *Overlay) error { return o.RemoveEdge(0, 1) }},
		{"grow", func(o *Overlay) error {
			o.AddVertex("e", []string{"x", "w"})
			return o.AddEdge(0, 4)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			o := NewOverlay(base)
			if err := tc.mutate(o); err != nil {
				t.Fatalf("mutate: %v", err)
			}
			g, err := o.Materialize()
			if err != nil {
				t.Fatalf("materialize: %v", err)
			}
			if g.Borrowed() || g.BorrowedBytes() != 0 {
				t.Fatalf("successor still borrowed (%d bytes)", g.BorrowedBytes())
			}
			raw := g.Raw()
			for i, name := range raw.Names[:4] {
				if name != braw.Names[i] {
					t.Fatalf("name[%d] = %q, want %q", i, name, braw.Names[i])
				}
				// Equal contents, distinct backing: the successor must not
				// alias the base's name bytes.
				if len(name) > 0 && &raw.Names[i] == &braw.Names[i] {
					t.Fatalf("name[%d] header aliases base", i)
				}
			}
			if len(raw.KwData) > 0 && len(braw.KwData) > 0 && &raw.KwData[0] == &braw.KwData[0] {
				t.Fatalf("keyword arena aliases base")
			}
			// Name and keyword lookups run off the successor's own copies.
			if id, ok := g.VertexByName("a"); !ok || id != 0 {
				t.Fatalf("VertexByName(a) = %d, %v", id, ok)
			}
			xid, ok := g.Vocab().ID("x")
			if !ok {
				t.Fatalf("keyword x missing from successor vocab")
			}
			if kws := g.Keywords(0); !slices.Contains(kws, xid) {
				t.Fatalf("Keywords(0) = %v, want to contain %d", kws, xid)
			}
		})
	}
}

func TestVocabCloneOwned(t *testing.T) {
	v, err := VocabFromWords([]string{"alpha", "beta"})
	if err != nil {
		t.Fatalf("from words: %v", err)
	}
	c := v.CloneOwned()
	if c.Len() != v.Len() {
		t.Fatalf("clone len %d, want %d", c.Len(), v.Len())
	}
	for id := int32(0); int(id) < v.Len(); id++ {
		if c.Word(id) != v.Word(id) {
			t.Fatalf("word %d = %q, want %q", id, c.Word(id), v.Word(id))
		}
	}
	if id, ok := c.ID("beta"); !ok || id != 1 {
		t.Fatalf("clone lookup beta = %d, %v", id, ok)
	}
	// The clone is independently growable.
	if c.Intern("gamma") != 2 || v.Len() != 2 {
		t.Fatalf("clone growth leaked into original (len %d)", v.Len())
	}
	if _, err := VocabFromWords([]string{"dup", "dup"}); err == nil {
		t.Fatalf("duplicate vocabulary accepted")
	}
}
