package graph

import (
	"fmt"
	"slices"
)

// Builder accumulates vertices, edges, and attributes, then freezes them
// into an immutable Graph. Duplicate edges and self-loops are dropped
// silently (the DBLP export formats the paper uses contain both).
type Builder struct {
	vocab     *Vocab
	names     []string
	nameIndex map[string]int32
	keywords  [][]int32
	edgesU    []int32
	edgesV    []int32
	named     bool
}

// NewBuilder returns a builder with capacity hints for n vertices and m
// edges. Either hint may be zero.
func NewBuilder(n, m int) *Builder {
	return &Builder{
		vocab:     NewVocab(),
		names:     make([]string, 0, n),
		nameIndex: make(map[string]int32, n),
		keywords:  make([][]int32, 0, n),
		edgesU:    make([]int32, 0, m),
		edgesV:    make([]int32, 0, m),
	}
}

// Vocab exposes the vocabulary being built so callers can intern keyword
// query strings consistently.
func (b *Builder) Vocab() *Vocab { return b.vocab }

// AddVertex appends a vertex with the given display name (may be empty) and
// keyword strings, returning its ID.
func (b *Builder) AddVertex(name string, keywords ...string) int32 {
	id := int32(len(b.names))
	b.names = append(b.names, name)
	if name != "" {
		b.named = true
		if _, dup := b.nameIndex[name]; !dup {
			b.nameIndex[name] = id
		}
	}
	b.keywords = append(b.keywords, b.vocab.InternAll(keywords))
	return id
}

// AddVertexIDs grows the vertex set to include id (creating anonymous,
// keyword-less vertices as needed). Used by edge-list loaders where vertices
// are implicit.
func (b *Builder) AddVertexIDs(id int32) {
	for int32(len(b.names)) <= id {
		b.names = append(b.names, "")
		b.keywords = append(b.keywords, nil)
	}
}

// SetKeywords replaces the keyword set of an existing vertex.
func (b *Builder) SetKeywords(v int32, keywords ...string) {
	b.keywords[v] = b.vocab.InternAll(keywords)
}

// SetKeywordIDs replaces the keyword set of an existing vertex with
// already-interned IDs (they are sorted and deduplicated here).
func (b *Builder) SetKeywordIDs(v int32, ids []int32) {
	b.keywords[v] = sortDedup(ids)
}

// AddEdge records the undirected edge {u,v}. Self-loops are ignored.
// Vertices are created implicitly if needed.
func (b *Builder) AddEdge(u, v int32) {
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.AddVertexIDs(v)
	b.edgesU = append(b.edgesU, u)
	b.edgesV = append(b.edgesV, v)
}

// NumVertices returns the current number of vertices.
func (b *Builder) NumVertices() int { return len(b.names) }

// Build freezes the builder into a Graph. The builder must not be used
// afterwards.
func (b *Builder) Build() (*Graph, error) {
	n := len(b.names)
	if n == 0 {
		return nil, fmt.Errorf("graph: empty vertex set")
	}

	// Sort edge list by (u,v) and deduplicate.
	order := make([]int32, len(b.edgesU))
	for i := range order {
		order[i] = int32(i)
	}
	slices.SortFunc(order, func(a, c int32) int {
		if b.edgesU[a] != b.edgesU[c] {
			return int(b.edgesU[a]) - int(b.edgesU[c])
		}
		return int(b.edgesV[a]) - int(b.edgesV[c])
	})

	deg := make([]int64, n+1)
	var lastU, lastV int32 = -1, -1
	edgesU := make([]int32, 0, len(order))
	edgesV := make([]int32, 0, len(order))
	for _, idx := range order {
		u, v := b.edgesU[idx], b.edgesV[idx]
		if u == lastU && v == lastV {
			continue
		}
		lastU, lastV = u, v
		edgesU = append(edgesU, u)
		edgesV = append(edgesV, v)
		deg[u+1]++
		deg[v+1]++
	}
	m := len(edgesU)
	b.edgesU, b.edgesV = edgesU, edgesV

	offsets := make([]int64, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + deg[i+1]
	}
	adj := make([]int32, offsets[n])
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for i := 0; i < m; i++ {
		u, v := b.edgesU[i], b.edgesV[i]
		adj[cursor[u]] = v
		cursor[u]++
		adj[cursor[v]] = u
		cursor[v]++
	}
	// Adjacency lists were filled in edge-sorted order. Each vertex's "v"
	// entries (from edges where it is the smaller endpoint) are sorted, and
	// its "u" entries likewise, but the interleaving is not; sort each list.
	for v := 0; v < n; v++ {
		slices.Sort(adj[offsets[v]:offsets[v+1]])
	}

	// Keyword arena.
	kwOffsets := make([]int32, n+1)
	total := 0
	for i, kw := range b.keywords {
		total += len(kw)
		kwOffsets[i+1] = int32(total)
	}
	kwData := make([]int32, 0, total)
	for _, kw := range b.keywords {
		kwData = append(kwData, kw...)
	}

	names := b.names
	nameIndex := b.nameIndex
	if !b.named {
		names = nil
		nameIndex = nil
	}
	g := &Graph{
		offsets:   offsets,
		adj:       adj,
		names:     names,
		nameIndex: nameIndex,
		kwOffsets: kwOffsets,
		kwData:    kwData,
		vocab:     b.vocab,
	}
	return g, nil
}

// MustBuild is Build that panics on error, for tests and fixtures where the
// input is statically known to be valid.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
