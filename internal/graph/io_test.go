package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestLoadEdgeList(t *testing.T) {
	in := `# comment
0 1
1 2

2 0
`
	g, err := LoadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("N,M = %d,%d", g.N(), g.M())
	}
}

func TestLoadEdgeListErrors(t *testing.T) {
	cases := []string{"0", "a b", "0 b", "-1 2"}
	for _, c := range cases {
		if _, err := LoadEdgeList(strings.NewReader(c)); err == nil {
			t.Fatalf("input %q should fail", c)
		}
	}
}

func TestLoadAttributed(t *testing.T) {
	edges := "0 1\n1 2\n"
	attrs := "0\tjim gray\ttransaction data\n1\tmichael stonebraker\tdata system\n2\t\tweb\n"
	g, err := LoadAttributed(strings.NewReader(edges), strings.NewReader(attrs))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Named() {
		t.Fatal("should be named")
	}
	v, ok := g.VertexByName("jim gray")
	if !ok || v != 0 {
		t.Fatalf("jim gray = %d,%v", v, ok)
	}
	kws := g.KeywordStrings(0)
	if len(kws) != 2 {
		t.Fatalf("keywords = %v", kws)
	}
	if got := g.KeywordStrings(2); len(got) != 1 || got[0] != "web" {
		t.Fatalf("v2 keywords = %v", got)
	}
}

func TestLoadAttributedBadID(t *testing.T) {
	edges := "0 1\n"
	attrs := "zz\tname\tkw\n"
	if _, err := LoadAttributed(strings.NewReader(edges), strings.NewReader(attrs)); err == nil {
		t.Fatal("bad attr id should fail")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := testGraph(t)
	jg := g.ToJSONGraph("test")
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := FromJSONGraph(jg)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip size mismatch: %d/%d vs %d/%d", g2.N(), g2.M(), g.N(), g.M())
	}
	for v := int32(0); v < int32(g.N()); v++ {
		if g2.Name(v) != g.Name(v) {
			t.Fatalf("name mismatch at %d", v)
		}
		a, b := g.KeywordStrings(v), g2.KeywordStrings(v)
		if len(a) != len(b) {
			t.Fatalf("keyword mismatch at %d: %v vs %v", v, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("keyword mismatch at %d: %v vs %v", v, a, b)
			}
		}
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadJSON(t *testing.T) {
	doc := `{"name":"g","vertices":[{"id":0,"name":"a","keywords":["x"]},{"id":1}],"edges":[[0,1]]}`
	g, err := LoadJSON(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2 || g.M() != 1 {
		t.Fatalf("N,M = %d,%d", g.N(), g.M())
	}
	if _, err := LoadJSON(strings.NewReader("{")); err == nil {
		t.Fatal("bad json should fail")
	}
	if _, err := LoadJSON(strings.NewReader(`{"vertices":[{"id":-2}],"edges":[]}`)); err == nil {
		t.Fatal("negative id should fail")
	}
}

func TestWriteFormats(t *testing.T) {
	g := testGraph(t)
	var el, at bytes.Buffer
	if err := g.WriteEdgeList(&el); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteAttributes(&at); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadAttributed(bytes.NewReader(el.Bytes()), bytes.NewReader(at.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("write/read mismatch")
	}
	if name := g2.Name(0); name != "a" {
		t.Fatalf("name round trip = %q", name)
	}
}
