package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomGraph builds a random simple graph for the edge-ID property tests.
func randomGraph(seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(40)
	b := NewBuilder(n, 0)
	b.AddVertexIDs(int32(n - 1))
	for i := 0; i < 4*n; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.MustBuild()
}

// TestEdgeIDsCanonicalOrder: edge IDs are dense, assigned in the order
// Edges enumerates ((u<v)-lexicographic), and both adjacency slots of an
// edge carry the same id.
func TestEdgeIDsCanonicalOrder(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed)
		next := int32(0)
		ok := true
		g.Edges(func(u, v int32) bool {
			id, found := g.EdgeID(u, v)
			if !found || id != next {
				t.Errorf("seed %d: EdgeID(%d,%d) = %d,%v want %d", seed, u, v, id, found, next)
				ok = false
				return false
			}
			if rid, rfound := g.EdgeID(v, u); !rfound || rid != id {
				t.Errorf("seed %d: EdgeID(%d,%d) = %d,%v want %d (reverse slot)", seed, v, u, rid, rfound, id)
				ok = false
				return false
			}
			next++
			return true
		})
		return ok && int(next) == g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestEdgeIDsSpansParallelToNeighbors: EdgeIDs(v) lines up slot-for-slot
// with Neighbors(v), and EdgeTable inverts the surface.
func TestEdgeIDsSpansParallelToNeighbors(t *testing.T) {
	g := randomGraph(7)
	table := g.EdgeTable()
	if len(table) != g.M() {
		t.Fatalf("EdgeTable has %d entries for m=%d", len(table), g.M())
	}
	for v := int32(0); v < int32(g.N()); v++ {
		nb, ids := g.Neighbors(v), g.EdgeIDs(v)
		if len(nb) != len(ids) {
			t.Fatalf("vertex %d: %d neighbors, %d edge-id slots", v, len(nb), len(ids))
		}
		for i, u := range nb {
			e := table[ids[i]]
			lo, hi := v, u
			if lo > hi {
				lo, hi = hi, lo
			}
			if e != [2]int32{lo, hi} {
				t.Fatalf("vertex %d slot %d: edge id %d maps to %v, want {%d,%d}", v, i, ids[i], e, lo, hi)
			}
		}
	}
	// Table is (u<v)-lexicographically sorted (the canonical order).
	for i := 1; i < len(table); i++ {
		p, c := table[i-1], table[i]
		if p[0] > c[0] || (p[0] == c[0] && p[1] >= c[1]) {
			t.Fatalf("EdgeTable not sorted at %d: %v then %v", i, p, c)
		}
	}
}

// TestEdgeIDNonEdges: non-edges and out-of-range vertices resolve to !ok.
func TestEdgeIDNonEdges(t *testing.T) {
	b := NewBuilder(4, 0)
	b.AddVertexIDs(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	for _, pair := range [][2]int32{{0, 2}, {0, 3}, {2, 3}, {-1, 0}, {0, 99}} {
		if _, ok := g.EdgeID(pair[0], pair[1]); ok {
			t.Fatalf("EdgeID(%d,%d) resolved a non-edge", pair[0], pair[1])
		}
	}
	if id, ok := g.EdgeID(2, 1); !ok || id != 1 {
		t.Fatalf("EdgeID(2,1) = %d,%v want 1,true", id, ok)
	}
}
