package graph

import (
	"strings"
	"testing"
)

// FuzzLoadEdgeList drives arbitrary text through the edge-list parser: it
// must either return a valid graph or an error — never panic, and never
// accept input that produces a structurally broken graph. Oversized vertex
// ids are screened in the harness (the parser's own MaxLoadVertexID cap is
// far above what a fuzz worker should allocate; dedicated tests cover the
// cap itself).
func FuzzLoadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n2 0\n")
	f.Add("# comment\n\n3 4\n4 3\n")
	f.Add("0 0\n")   // self loop: dropped
	f.Add("1\n")     // too few fields
	f.Add("a b\n")   // non-numeric
	f.Add("-1 2\n")  // negative
	f.Add("0 1 9\n") // trailing fields tolerated
	f.Add("99999999999999999999 1\n")

	f.Fuzz(func(t *testing.T, s string) {
		// Keep implicit vertex allocation fuzz-sized: any token longer than
		// five digits would ask the builder for >100k vertices per line.
		for _, fld := range strings.Fields(s) {
			if len(fld) > 5 {
				t.Skip("oversized token")
			}
		}
		g, err := LoadEdgeList(strings.NewReader(s))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parser accepted %q but built an invalid graph: %v", s, err)
		}
	})
}

// FuzzLoadAttributed fuzzes the vertex-attribute parser against a fixed
// tiny edge list (the attribute file is the untrusted half: ids, names, and
// keyword fields all come from the user).
func FuzzLoadAttributed(f *testing.F) {
	f.Add("0\tAlice\tgraphs cores\n1\tBob\n")
	f.Add("2\t\tkw only\n")
	f.Add("-5\tEve\tboom\n")
	f.Add("0\n")
	f.Add("bad\tX\n")

	f.Fuzz(func(t *testing.T, attrs string) {
		for _, line := range strings.Split(attrs, "\n") {
			id, _, _ := strings.Cut(line, "\t")
			if len(strings.TrimSpace(id)) > 5 {
				t.Skip("oversized id token")
			}
		}
		g, err := LoadAttributed(strings.NewReader("0 1\n1 2\n"), strings.NewReader(attrs))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("attribute parser accepted %q but built an invalid graph: %v", attrs, err)
		}
	})
}
