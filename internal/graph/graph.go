// Package graph implements the attributed-graph substrate of C-Explorer:
// undirected graphs in CSR form whose vertices carry display names and
// interned keyword sets (the "attributed graph" of the paper, §3.2).
//
// The representation is immutable after construction (use Builder to
// construct), which lets indexes and concurrent queries share a graph
// without locking.
//
// Besides adjacency, a graph carries a lazily materialized per-neighbor
// edge-ID surface (EdgeIDs/EdgeID/EdgeTable, see edgeids.go): every CSR
// adjacency slot maps to the canonical undirected edge index of the edge it
// represents, so edge-indexed engines — the CSR-native truss decomposition
// in particular — address per-edge arrays directly instead of resolving
// {u,v} pairs through a hash map. The surface is built once per graph in
// O(n+m) and shared by every index that needs it.
package graph

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"cexplorer/internal/ds"
)

// Graph is an undirected attributed graph in compressed-sparse-row form.
// Vertex IDs are dense int32 in [0, N()). Adjacency lists are sorted and
// contain no duplicates or self-loops.
type Graph struct {
	offsets []int64 // len n+1
	adj     []int32 // len 2m

	names     []string         // optional; empty when the graph is unnamed
	nameIndex map[string]int32 // lazily shared with builder

	kwOffsets []int32 // len n+1, offsets into kwData
	kwData    []int32 // sorted interned keyword IDs, arena

	vocab *Vocab

	// borrowed marks a graph whose bulk arrays (offsets, adj, keyword
	// arenas, name/vocab string contents) alias caller-owned backing memory
	// — in practice a mapped snapshot file. Such a graph is valid only
	// while the backing stays mapped; overlay materialization deep-copies
	// everything shared so mutation successors never inherit the aliasing.
	borrowed bool

	// edgeIDs is the per-neighbor edge-ID arena (len 2m), parallel to adj;
	// materialized lazily by ensureEdgeIDs (see edgeids.go). edgeIDReady
	// lets observers (Bytes) see the arena without entering the Once.
	edgeIDOnce  sync.Once
	edgeIDs     []int32
	edgeIDReady atomic.Bool
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.offsets) - 1 }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.adj) / 2 }

// Degree returns the degree of v.
func (g *Graph) Degree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// ForEachNeighbor calls fn for every neighbor of v in ascending order; fn
// returning false stops the walk. It exists so Graph and graph.Overlay
// satisfy the same adjacency surface (kcore.Adjacency) and incremental
// index maintenance can run against either.
func (g *Graph) ForEachNeighbor(v int32, fn func(u int32) bool) {
	for _, u := range g.Neighbors(v) {
		if !fn(u) {
			return
		}
	}
}

// FlatNeighbors is the slice-returning fast path of the adjacency surface
// (always available on a frozen graph; see Overlay.FlatNeighbors).
func (g *Graph) FlatNeighbors(v int32) ([]int32, bool) {
	return g.Neighbors(v), true
}

// HasEdge reports whether {u,v} is an edge, via binary search on the shorter
// adjacency list.
func (g *Graph) HasEdge(u, v int32) bool {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	return ds.ContainsSorted(g.Neighbors(u), v)
}

// Keywords returns the sorted interned keyword-ID set of v. The returned
// slice aliases internal storage and must not be modified.
func (g *Graph) Keywords(v int32) []int32 {
	return g.kwData[g.kwOffsets[v]:g.kwOffsets[v+1]]
}

// HasKeyword reports whether vertex v carries keyword id w.
func (g *Graph) HasKeyword(v, w int32) bool {
	return ds.ContainsSorted(g.Keywords(v), w)
}

// Vocab returns the keyword vocabulary (never nil).
func (g *Graph) Vocab() *Vocab { return g.vocab }

// Name returns the display name of v, or "v<id>" when the graph is unnamed.
func (g *Graph) Name(v int32) string {
	if len(g.names) == 0 {
		return fmt.Sprintf("v%d", v)
	}
	return g.names[v]
}

// Named reports whether vertices carry display names.
func (g *Graph) Named() bool { return len(g.names) > 0 }

// VertexByName resolves a display name to a vertex ID.
func (g *Graph) VertexByName(name string) (int32, bool) {
	if g.nameIndex == nil {
		return 0, false
	}
	v, ok := g.nameIndex[name]
	return v, ok
}

// KeywordStrings returns v's keywords as strings.
func (g *Graph) KeywordStrings(v int32) []string {
	return g.vocab.Words(g.Keywords(v))
}

// MaxDegree returns the maximum vertex degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	maxd := 0
	for v := int32(0); v < int32(g.N()); v++ {
		if d := g.Degree(v); d > maxd {
			maxd = d
		}
	}
	return maxd
}

// Edges calls fn once per undirected edge (u < v). Iteration stops early if
// fn returns false.
func (g *Graph) Edges(fn func(u, v int32) bool) {
	for u := int32(0); u < int32(g.N()); u++ {
		for _, v := range g.Neighbors(u) {
			if v <= u {
				continue
			}
			if !fn(u, v) {
				return
			}
		}
	}
}

// InducedSize returns the number of edges in the subgraph induced by the
// member set (given as a bitset over vertex IDs).
func (g *Graph) InducedSize(member *ds.BitSet) int {
	m := 0
	member.ForEach(func(i int) bool {
		for _, w := range g.Neighbors(int32(i)) {
			if int32(i) < w && member.Test(int(w)) {
				m++
			}
		}
		return true
	})
	return m
}

// Validate checks structural invariants (sorted, symmetric, loop-free
// adjacency; keyword sets sorted). It is used by tests and by the upload
// path of the server.
func (g *Graph) Validate() error {
	n := int32(g.N())
	for v := int32(0); v < n; v++ {
		nb := g.Neighbors(v)
		for i, u := range nb {
			if u < 0 || u >= n {
				return fmt.Errorf("vertex %d: neighbor %d out of range", v, u)
			}
			if u == v {
				return fmt.Errorf("vertex %d: self loop", v)
			}
			if i > 0 && nb[i-1] >= u {
				return fmt.Errorf("vertex %d: adjacency not strictly sorted", v)
			}
			if !ds.ContainsSorted(g.Neighbors(u), v) {
				return fmt.Errorf("edge {%d,%d} not symmetric", v, u)
			}
		}
		kw := g.Keywords(v)
		for i := 1; i < len(kw); i++ {
			if kw[i-1] >= kw[i] {
				return fmt.Errorf("vertex %d: keywords not strictly sorted", v)
			}
		}
		for _, w := range kw {
			if w < 0 || int(w) >= g.vocab.Len() {
				return fmt.Errorf("vertex %d: keyword id %d out of vocab range", v, w)
			}
		}
	}
	return nil
}

// Borrowed reports whether the graph's bulk arrays alias caller-owned
// backing memory (a mapped snapshot) rather than the Go heap.
func (g *Graph) Borrowed() bool { return g.borrowed }

// BorrowedBytes returns the portion of Bytes that lives in borrowed backing
// memory rather than on the heap: the CSR arrays, keyword arenas, and name
// contents for a borrowed graph, zero otherwise. The lazily built edge-ID
// arena is always heap-allocated, as are map and header structures.
func (g *Graph) BorrowedBytes() int64 {
	if !g.borrowed {
		return 0
	}
	b := int64(len(g.offsets))*8 + int64(len(g.adj))*4
	b += int64(len(g.kwOffsets))*4 + int64(len(g.kwData))*4
	for _, s := range g.names {
		b += int64(len(s))
	}
	return b
}

// Bytes returns an estimate of the memory retained by the graph, used by the
// index-size experiment (E6).
func (g *Graph) Bytes() int64 {
	b := int64(len(g.offsets))*8 + int64(len(g.adj))*4
	b += int64(len(g.kwOffsets))*4 + int64(len(g.kwData))*4
	if g.edgeIDReady.Load() {
		b += int64(len(g.edgeIDs)) * 4
	}
	for _, s := range g.names {
		b += int64(len(s)) + 16
	}
	return b
}

func sortDedup(s []int32) []int32 {
	if len(s) < 2 {
		return s
	}
	slices.Sort(s)
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
