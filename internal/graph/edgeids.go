package graph

import "cexplorer/internal/ds"

// The per-neighbor edge-ID surface: every adjacency slot of the CSR maps to
// the canonical undirected edge index of the edge it represents. Edge IDs
// are dense in [0, M()) and assigned in the order Edges enumerates —
// (u<v)-lexicographic — which is also the order persistence layers
// (ktruss.Parts, internal/snapshot) serialize per-edge arrays in, so an
// edge-indexed array computed against this surface round-trips bit-for-bit.
//
// The surface is materialized lazily, once per graph, in O(n+m) with no
// hashing: adjacency lists are sorted, so for a fixed v the edges {u,v} with
// u < v arrive in increasing u while u sweeps upward, and a per-vertex
// cursor fills the reverse slots in one pass. Engines that used to resolve
// {u,v} → id through an int64-keyed hash map (the old truss engine) instead
// index this arena directly.

// ensureEdgeIDs materializes the edge-ID arena. Guarded by edgeIDOnce so
// concurrent index builds share one build.
func (g *Graph) ensureEdgeIDs() {
	g.edgeIDOnce.Do(func() {
		eids := make([]int32, len(g.adj))
		cursor := make([]int64, g.N()) // next reverse slot of each vertex
		for v := range cursor {
			cursor[v] = g.offsets[v]
		}
		next := int32(0)
		for u := int32(0); u < int32(g.N()); u++ {
			for s := g.offsets[u]; s < g.offsets[u+1]; s++ {
				v := g.adj[s]
				if v <= u {
					continue
				}
				eids[s] = next
				// v's neighbors < v occupy the sorted prefix of its list, and
				// u sweeps upward, so the reverse slot is just the cursor.
				eids[cursor[v]] = next
				cursor[v]++
				next++
			}
		}
		g.edgeIDs = eids
		g.edgeIDReady.Store(true)
	})
}

// EdgeIDs returns the edge-ID slots of v's adjacency list, parallel to
// Neighbors(v): slot i holds the canonical edge index of {v, Neighbors(v)[i]}.
// The returned slice aliases internal storage and must not be modified.
func (g *Graph) EdgeIDs(v int32) []int32 {
	g.ensureEdgeIDs()
	return g.edgeIDs[g.offsets[v]:g.offsets[v+1]]
}

// EdgeID resolves edge {u,v} to its canonical index via binary search on the
// shorter adjacency list; ok is false when {u,v} is not an edge.
func (g *Graph) EdgeID(u, v int32) (int32, bool) {
	if u < 0 || v < 0 || int(u) >= g.N() || int(v) >= g.N() {
		return 0, false
	}
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	nb := g.Neighbors(u)
	i, ok := ds.IndexSorted(nb, v)
	if !ok {
		return 0, false
	}
	g.ensureEdgeIDs()
	return g.edgeIDs[g.offsets[u]+int64(i)], true
}

// EdgeTable returns the id-indexed endpoint table: entry e is the (u<v) pair
// of edge e, in the order Edges enumerates. The table is built per call (it
// is a build-time structure, not a query-time one); the edge-ID arena it is
// derived from is materialized once and cached.
func (g *Graph) EdgeTable() [][2]int32 {
	g.ensureEdgeIDs()
	edges := make([][2]int32, g.M())
	for u := int32(0); u < int32(g.N()); u++ {
		for s := g.offsets[u]; s < g.offsets[u+1]; s++ {
			if v := g.adj[s]; v > u {
				edges[g.edgeIDs[s]] = [2]int32{u, v}
			}
		}
	}
	return edges
}
