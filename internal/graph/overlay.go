package graph

import (
	"errors"
	"fmt"
	"slices"
	"strings"
)

// Overlay is the mutable edit buffer over an immutable CSR Graph: the
// dynamic-graph substrate. A batch of streaming mutations (edge inserts,
// edge deletes, vertex additions) accumulates in the overlay — which stays
// queryable throughout, so incremental index maintenance can read the
// evolving adjacency op by op — and Materialize freezes the result into a
// fresh immutable Graph sharing every untouched arena with the base.
//
// The base graph is never modified: concurrent readers of the base (pinned
// query engines, old dataset versions) are unaffected by any overlay
// activity. An Overlay itself is a single-goroutine object.
//
// Typed sentinel errors distinguish structurally invalid requests
// (ErrVertexRange, ErrSelfLoop) from state conflicts (ErrEdgeExists,
// ErrEdgeMissing), so callers can map them to distinct API failures.
var (
	ErrEdgeExists  = errors.New("edge already present")
	ErrEdgeMissing = errors.New("edge not present")
	ErrVertexRange = errors.New("vertex out of range")
	ErrSelfLoop    = errors.New("self loop")
)

// Overlay accumulates mutations over a base graph.
type Overlay struct {
	base  *Graph
	baseN int
	m     int

	// Per-vertex sorted patch lists, populated only for touched vertices.
	// dels entries always refer to base edges; adds entries never duplicate
	// base edges — re-adding a deleted base edge cancels the deletion.
	adds map[int32][]int32
	dels map[int32][]int32

	// Appended vertices (ids baseN, baseN+1, ...).
	newNames []string
	newKw    [][]int32
	anyName  bool

	// vocab starts as the base's; the first AddVertex that interns an
	// unseen word clones it (copy-on-write), so the base vocabulary is
	// never mutated under concurrent readers.
	vocab      *Vocab
	vocabOwned bool

	// touchedHint is a small superset of the vertices with patch entries,
	// kept so ForEachNeighbor's untouched fast path costs a short scan
	// instead of two map lookups. Once a batch touches more vertices than
	// the hint holds, hintOverflow switches membership back to the maps.
	touchedHint  []int32
	hintOverflow bool
}

const touchedHintCap = 48

func (o *Overlay) noteTouched(v int32) {
	if o.hintOverflow {
		return
	}
	if slices.Contains(o.touchedHint, v) {
		return
	}
	if len(o.touchedHint) >= touchedHintCap {
		o.hintOverflow = true
		return
	}
	o.touchedHint = append(o.touchedHint, v)
}

// touched reports whether v may have patched adjacency (never a false
// negative; false positives just take the merge path).
func (o *Overlay) touched(v int32) bool {
	if o.hintOverflow {
		if _, ok := o.adds[v]; ok {
			return true
		}
		_, ok := o.dels[v]
		return ok
	}
	return slices.Contains(o.touchedHint, v)
}

// NewOverlay returns an empty overlay over g.
func NewOverlay(g *Graph) *Overlay {
	return &Overlay{
		base:  g,
		baseN: g.N(),
		m:     g.M(),
		adds:  make(map[int32][]int32),
		dels:  make(map[int32][]int32),
		vocab: g.vocab,
	}
}

// N returns the current vertex count (base plus appended).
func (o *Overlay) N() int { return o.baseN + len(o.newNames) }

// M returns the current undirected edge count.
func (o *Overlay) M() int { return o.m }

// Dirty reports whether any mutation has been applied.
func (o *Overlay) Dirty() bool {
	return len(o.adds) > 0 || len(o.dels) > 0 || len(o.newNames) > 0
}

// VerticesAdded returns how many vertices the overlay appended.
func (o *Overlay) VerticesAdded() int { return len(o.newNames) }

// EdgesTouched returns how many vertices have patched adjacency.
func (o *Overlay) EdgesTouched() int { return len(o.adds) + len(o.dels) }

// Degree returns the current degree of v.
func (o *Overlay) Degree(v int32) int {
	d := len(o.adds[v])
	if v < int32(o.baseN) {
		d += o.base.Degree(v) - len(o.dels[v])
	}
	return d
}

// HasEdge reports whether {u,v} is currently an edge.
func (o *Overlay) HasEdge(u, v int32) bool {
	if containsSorted(o.adds[u], v) {
		return true
	}
	if u >= int32(o.baseN) || v >= int32(o.baseN) {
		return false
	}
	return o.base.HasEdge(u, v) && !containsSorted(o.dels[u], v)
}

// FlatNeighbors returns v's adjacency as a plain slice when the overlay
// holds no patch for v (the overwhelmingly common case during incremental
// maintenance), letting hot kernels iterate without per-neighbor callback
// dispatch. ok is false for patched or appended vertices; callers fall
// back to ForEachNeighbor.
func (o *Overlay) FlatNeighbors(v int32) ([]int32, bool) {
	if v < int32(o.baseN) && !o.touched(v) {
		return o.base.Neighbors(v), true
	}
	return nil, false
}

// ForEachNeighbor calls fn for every current neighbor of v in ascending
// order; fn returning false stops the walk early. Incremental index
// maintenance scans thousands of untouched vertices around a small patch
// set, so the untouched case must not pay map-lookup costs: a small batch
// keeps its touched vertices in a scan-friendly list consulted first.
func (o *Overlay) ForEachNeighbor(v int32, fn func(u int32) bool) {
	if v < int32(o.baseN) && !o.touched(v) {
		for _, u := range o.base.Neighbors(v) {
			if !fn(u) {
				return
			}
		}
		return
	}
	var base []int32
	if v < int32(o.baseN) {
		base = o.base.Neighbors(v)
	}
	adds := o.adds[v]
	dels := o.dels[v]
	i, j := 0, 0
	for i < len(base) || j < len(adds) {
		var next int32
		if j >= len(adds) || (i < len(base) && base[i] < adds[j]) {
			next = base[i]
			i++
			if containsSorted(dels, next) {
				continue
			}
		} else {
			next = adds[j]
			j++
		}
		if !fn(next) {
			return
		}
	}
}

// AddVertex appends a vertex with the given display name (may be empty) and
// keywords, returning its id.
func (o *Overlay) AddVertex(name string, keywords []string) int32 {
	id := int32(o.N())
	o.newNames = append(o.newNames, name)
	if name != "" {
		o.anyName = true
	}
	if len(keywords) > 0 && !o.vocabOwned {
		for _, w := range keywords {
			if _, ok := o.vocab.ID(w); !ok {
				o.vocab = o.vocab.Clone()
				o.vocabOwned = true
				break
			}
		}
	}
	o.newKw = append(o.newKw, o.vocab.InternAll(keywords))
	return id
}

// AddEdge inserts the undirected edge {u,v}. It fails with ErrEdgeExists
// when the edge is already present, ErrSelfLoop on u==v, and ErrVertexRange
// on out-of-range endpoints.
func (o *Overlay) AddEdge(u, v int32) error {
	if err := o.checkEndpoints(u, v); err != nil {
		return err
	}
	if o.HasEdge(u, v) {
		return fmt.Errorf("{%d,%d}: %w", u, v, ErrEdgeExists)
	}
	if u < int32(o.baseN) && v < int32(o.baseN) && o.base.HasEdge(u, v) {
		// Re-adding a base edge the overlay had deleted: cancel the delete.
		patchOut(o.dels, u, v)
		patchOut(o.dels, v, u)
	} else {
		o.adds[u] = insertSorted(o.adds[u], v)
		o.adds[v] = insertSorted(o.adds[v], u)
	}
	o.noteTouched(u)
	o.noteTouched(v)
	o.m++
	return nil
}

// RemoveEdge deletes the undirected edge {u,v}. It fails with
// ErrEdgeMissing when no such edge exists.
func (o *Overlay) RemoveEdge(u, v int32) error {
	if err := o.checkEndpoints(u, v); err != nil {
		return err
	}
	if !o.HasEdge(u, v) {
		return fmt.Errorf("{%d,%d}: %w", u, v, ErrEdgeMissing)
	}
	if containsSorted(o.adds[u], v) {
		patchOut(o.adds, u, v)
		patchOut(o.adds, v, u)
	} else {
		o.dels[u] = insertSorted(o.dels[u], v)
		o.dels[v] = insertSorted(o.dels[v], u)
	}
	o.noteTouched(u)
	o.noteTouched(v)
	o.m--
	return nil
}

func (o *Overlay) checkEndpoints(u, v int32) error {
	n := int32(o.N())
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("{%d,%d} with n=%d: %w", u, v, n, ErrVertexRange)
	}
	if u == v {
		return fmt.Errorf("{%d,%d}: %w", u, v, ErrSelfLoop)
	}
	return nil
}

// Materialize freezes the overlay into a new immutable Graph. Untouched
// arenas — keyword offsets and data, names, the name index, and the
// vocabulary — are shared with the base whenever the overlay did not touch
// them, so an edges-only batch costs one adjacency rebuild and nothing
// else. The overlay remains usable afterwards, but further mutation does
// not affect already-materialized graphs. Derived per-edge state (the
// edge-ID surface, see edgeids.go) is deliberately NOT shared: edge
// mutation renumbers canonical edge IDs, so each materialized graph
// lazily builds its own surface on first edge-indexed use.
func (o *Overlay) Materialize() (*Graph, error) {
	n := o.N()
	if n == 0 {
		return nil, fmt.Errorf("graph overlay: empty vertex set")
	}

	// Adjacency. A typical batch patches a handful of vertices out of tens
	// of thousands, so the rebuild is span-structured: the sorted list of
	// touched vertices cuts the CSR arenas into untouched spans (bulk
	// offset shift + bulk adjacency copy) separated by per-vertex merges.
	// No per-vertex map lookups, no per-vertex copy calls.
	// Appended vertices (ids ≥ baseN) are excluded: the tail loop below
	// writes their adjacency regardless of patch state.
	touched := make([]int32, 0, len(o.adds)+len(o.dels))
	for v := range o.adds {
		if v < int32(o.baseN) {
			touched = append(touched, v)
		}
	}
	for v := range o.dels {
		if _, dup := o.adds[v]; !dup && v < int32(o.baseN) {
			touched = append(touched, v)
		}
	}
	slices.Sort(touched)

	offsets := make([]int64, n+1)
	adj := make([]int32, int64(2*o.m))
	raw := o.base.Raw()
	var (
		cur  int32 // next base vertex to bulk-copy
		off  int64 // write cursor into adj
		base = int32(o.baseN)
	)
	copySpan := func(until int32) { // bulk-copy untouched vertices [cur, until)
		if cur >= until {
			return
		}
		lo, hi := raw.Offsets[cur], raw.Offsets[until]
		copy(adj[off:off+(hi-lo)], raw.Adj[lo:hi])
		shift := off - lo
		for v := cur; v < until; v++ {
			offsets[v] = raw.Offsets[v] + shift
		}
		off += hi - lo
		cur = until
	}
	for _, tv := range touched {
		copySpan(tv)
		offsets[tv] = off
		o.ForEachNeighbor(tv, func(u int32) bool {
			adj[off] = u
			off++
			return true
		})
		cur = tv + 1
	}
	copySpan(base)
	for v := base; v < int32(n); v++ { // appended vertices (never in touched)
		offsets[v] = off
		o.ForEachNeighbor(v, func(u int32) bool {
			adj[off] = u
			off++
			return true
		})
	}
	offsets[n] = off
	if off != int64(len(adj)) {
		return nil, fmt.Errorf("graph overlay: internal inconsistency: wrote %d of %d adjacency entries", off, len(adj))
	}

	g := &Graph{offsets: offsets, adj: adj, vocab: o.vocab}
	if len(o.newNames) == 0 {
		// No vertex growth: every per-vertex arena is unchanged; share.
		g.kwOffsets = raw.KwOffsets
		g.kwData = raw.KwData
		g.names = o.base.names
		g.nameIndex = o.base.nameIndex
		return o.disown(g), nil
	}

	// Vertex growth: extend keyword arenas and (when named) the name table.
	g.kwOffsets = make([]int32, n+1)
	copy(g.kwOffsets, raw.KwOffsets)
	total := len(raw.KwData)
	for _, kw := range o.newKw {
		total += len(kw)
	}
	g.kwData = make([]int32, 0, total)
	g.kwData = append(g.kwData, raw.KwData...)
	for i, kw := range o.newKw {
		g.kwData = append(g.kwData, kw...)
		g.kwOffsets[o.baseN+1+i] = int32(len(g.kwData))
	}
	if o.base.Named() || o.anyName {
		g.names = make([]string, 0, n)
		if o.base.Named() {
			g.names = append(g.names, o.base.names...)
		} else {
			g.names = g.names[:o.baseN]
		}
		g.names = append(g.names, o.newNames...)
		g.nameIndex = make(map[string]int32, len(o.base.nameIndex)+len(o.newNames))
		for name, id := range o.base.nameIndex {
			g.nameIndex[name] = id
		}
		for i, name := range o.newNames {
			if name == "" {
				continue
			}
			if _, dup := g.nameIndex[name]; !dup {
				g.nameIndex[name] = int32(o.baseN + i)
			}
		}
	}
	return o.disown(g), nil
}

// disown deep-copies every arena g may still share with a borrowed base, so
// a mutation successor of a mapped-snapshot graph is fully heap-owned and
// survives the mapping being unmapped. The adjacency arrays are always
// freshly built by Materialize; what can alias the mapping are the keyword
// arenas (shared headers on the no-growth path), the name and vocabulary
// string CONTENTS (header copies via append still point into the mapped
// blob), and map keys derived from those strings. For an owned base this is
// a no-op.
func (o *Overlay) disown(g *Graph) *Graph {
	if !o.base.borrowed {
		return g
	}
	g.kwOffsets = slices.Clone(g.kwOffsets)
	g.kwData = slices.Clone(g.kwData)
	if len(g.names) > 0 {
		names := make([]string, len(g.names))
		for i, s := range g.names {
			names[i] = strings.Clone(s)
		}
		g.names = names
		g.nameIndex = make(map[string]int32, len(names))
		for v, name := range names {
			if name == "" {
				continue
			}
			if _, dup := g.nameIndex[name]; !dup {
				g.nameIndex[name] = int32(v)
			}
		}
	}
	g.vocab = g.vocab.CloneOwned()
	return g
}

// containsSorted is a binary-search membership test on a sorted slice.
func containsSorted(s []int32, v int32) bool {
	_, ok := slices.BinarySearch(s, v)
	return ok
}

// insertSorted inserts v into sorted s (v must not already be present).
func insertSorted(s []int32, v int32) []int32 {
	i, _ := slices.BinarySearch(s, v)
	return slices.Insert(s, i, v)
}

// patchOut removes v from the sorted patch list of key, dropping the map
// entry entirely when the list empties so the vertex reads as untouched
// again (Materialize bulk-copies untouched adjacency).
func patchOut(m map[int32][]int32, key, v int32) {
	s := m[key]
	i, ok := slices.BinarySearch(s, v)
	if !ok {
		return
	}
	s = slices.Delete(s, i, i+1)
	if len(s) == 0 {
		delete(m, key)
	} else {
		m[key] = s
	}
}
