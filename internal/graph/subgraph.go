package graph

import "cexplorer/internal/ds"

// Subgraph is a materialized induced subgraph with local vertex IDs plus the
// mapping back to the parent graph. It is what community-search algorithms
// return and what metrics/layout consume.
type Subgraph struct {
	Parent   *Graph
	Vertices []int32 // parent IDs, sorted ascending
	local    map[int32]int32
	adj      [][]int32 // local adjacency, sorted
	m        int
}

// Induce materializes the subgraph of g induced by vertices (parent IDs;
// duplicates are removed, order normalized to ascending).
func (g *Graph) Induce(vertices []int32) *Subgraph {
	vs := make([]int32, len(vertices))
	copy(vs, vertices)
	vs = sortDedup(vs)
	local := make(map[int32]int32, len(vs))
	for i, v := range vs {
		local[v] = int32(i)
	}
	adj := make([][]int32, len(vs))
	m := 0
	for i, v := range vs {
		for _, u := range g.Neighbors(v) {
			if lu, ok := local[u]; ok {
				adj[i] = append(adj[i], lu)
				if u > v {
					m++
				}
			}
		}
	}
	return &Subgraph{Parent: g, Vertices: vs, local: local, adj: adj, m: m}
}

// N returns the number of vertices in the subgraph.
func (s *Subgraph) N() int { return len(s.Vertices) }

// M returns the number of edges in the subgraph.
func (s *Subgraph) M() int { return s.m }

// LocalID maps a parent vertex ID to the local ID; ok is false for
// non-members.
func (s *Subgraph) LocalID(parent int32) (int32, bool) {
	l, ok := s.local[parent]
	return l, ok
}

// ParentID maps a local ID back to the parent graph.
func (s *Subgraph) ParentID(local int32) int32 { return s.Vertices[local] }

// Degree returns the local degree of the local vertex l.
func (s *Subgraph) Degree(l int32) int { return len(s.adj[l]) }

// Neighbors returns the local adjacency of local vertex l.
func (s *Subgraph) Neighbors(l int32) []int32 { return s.adj[l] }

// MinDegree returns the minimum degree inside the subgraph (0 for empty).
func (s *Subgraph) MinDegree() int {
	if s.N() == 0 {
		return 0
	}
	md := s.Degree(0)
	for l := 1; l < s.N(); l++ {
		if d := s.Degree(int32(l)); d < md {
			md = d
		}
	}
	return md
}

// AvgDegree returns 2M/N (0 for the empty subgraph).
func (s *Subgraph) AvgDegree() float64 {
	if s.N() == 0 {
		return 0
	}
	return 2 * float64(s.m) / float64(s.N())
}

// IsConnected reports whether the subgraph is connected (vacuously true for
// a single vertex, false for empty).
func (s *Subgraph) IsConnected() bool {
	n := s.N()
	if n == 0 {
		return false
	}
	seen := make([]bool, n)
	stack := []int32{0}
	seen[0] = true
	cnt := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range s.adj[v] {
			if !seen[u] {
				seen[u] = true
				cnt++
				stack = append(stack, u)
			}
		}
	}
	return cnt == n
}

// SharedKeywords returns the intersection of all members' keyword sets,
// optionally restricted to the filter set (nil = no restriction). This is
// L(Gq, S) from Problem 1 of the paper.
func (s *Subgraph) SharedKeywords(filter []int32) []int32 {
	if s.N() == 0 {
		return nil
	}
	g := s.Parent
	shared := make([]int32, 0, 8)
	first := g.Keywords(s.Vertices[0])
	if filter != nil {
		shared = ds.IntersectSortedInto(shared, first, filter)
	} else {
		shared = append(shared, first...)
	}
	buf := make([]int32, 0, len(shared))
	for _, v := range s.Vertices[1:] {
		if len(shared) == 0 {
			return shared
		}
		buf = ds.IntersectSortedInto(buf, shared, g.Keywords(v))
		shared, buf = buf, shared
	}
	return shared
}

// MemberSet returns membership as a bitset over the parent graph.
func (s *Subgraph) MemberSet() *ds.BitSet {
	b := ds.NewBitSet(s.Parent.N())
	for _, v := range s.Vertices {
		b.Set(int(v))
	}
	return b
}

// Edges calls fn for every edge as a pair of parent vertex IDs (u < v).
func (s *Subgraph) Edges(fn func(u, v int32) bool) {
	for l := int32(0); l < int32(s.N()); l++ {
		for _, u := range s.adj[l] {
			if u <= l {
				continue
			}
			if !fn(s.Vertices[l], s.Vertices[u]) {
				return
			}
		}
	}
}
