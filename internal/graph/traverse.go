package graph

// Traversal helpers shared by the community-search algorithms. All of them
// are allocation-light: callers on hot paths pass reusable scratch space.

// ConnectedComponents labels every vertex with a component ID in [0, count)
// and returns the labels and the component count.
func (g *Graph) ConnectedComponents() (labels []int32, count int) {
	n := int32(g.N())
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var queue []int32
	for s := int32(0); s < n; s++ {
		if labels[s] != -1 {
			continue
		}
		labels[s] = int32(count)
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, u := range g.Neighbors(v) {
				if labels[u] == -1 {
					labels[u] = int32(count)
					queue = append(queue, u)
				}
			}
		}
		count++
	}
	return labels, count
}

// ComponentOf returns the vertices of the connected component containing q,
// in BFS order.
func (g *Graph) ComponentOf(q int32) []int32 {
	return g.BFSWithin(q, nil)
}

// BFSWithin returns the vertices reachable from start while staying inside
// the member predicate (nil means the whole graph). start itself must
// satisfy the predicate; the function checks and returns nil otherwise.
// Output is in BFS order.
func (g *Graph) BFSWithin(start int32, member func(int32) bool) []int32 {
	if member != nil && !member(start) {
		return nil
	}
	visited := make(map[int32]bool)
	visited[start] = true
	out := []int32{start}
	for head := 0; head < len(out); head++ {
		v := out[head]
		for _, u := range g.Neighbors(v) {
			if visited[u] {
				continue
			}
			if member != nil && !member(u) {
				continue
			}
			visited[u] = true
			out = append(out, u)
		}
	}
	return out
}

// Distances computes unweighted shortest-path distances from start to every
// vertex (-1 for unreachable). Used by layout seeding and analysis.
func (g *Graph) Distances(start int32) []int32 {
	n := g.N()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[start] = 0
	queue := []int32{start}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, u := range g.Neighbors(v) {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// Diameter returns the exact diameter of the subgraph induced by vertices
// (must be connected), via BFS from every member. Intended for communities
// (tens to hundreds of vertices), not whole graphs.
func (g *Graph) Diameter(vertices []int32) int {
	member := make(map[int32]bool, len(vertices))
	for _, v := range vertices {
		member[v] = true
	}
	diam := 0
	dist := make(map[int32]int, len(vertices))
	for _, s := range vertices {
		for k := range dist {
			delete(dist, k)
		}
		dist[s] = 0
		queue := []int32{s}
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, u := range g.Neighbors(v) {
				if !member[u] {
					continue
				}
				if _, seen := dist[u]; !seen {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
					if dist[u] > diam {
						diam = dist[u]
					}
				}
			}
		}
	}
	return diam
}
