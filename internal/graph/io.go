package graph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements the on-disk formats accepted by the `upload` API
// function (Figure 4 of the paper):
//
//   - Edge-list text: one "u v" pair per line, '#' comments, blank lines ok.
//   - Vertex-attribute text: "id<TAB>name<TAB>kw1 kw2 ...", any field after
//     id optional.
//   - A single JSON document combining both (the format the web UI posts).

// MaxLoadVertexID bounds vertex ids accepted by the text loaders: ids are
// dense, so a single absurd id would force allocation of that many implicit
// vertices. 1<<26 (67M) is far above any graph this system targets while
// keeping a hostile or corrupt input from requesting gigabytes.
const MaxLoadVertexID = 1 << 26

// LoadEdgeList parses an edge-list stream into a new Graph with anonymous,
// keyword-less vertices.
func LoadEdgeList(r io.Reader) (*Graph, error) {
	b := NewBuilder(0, 0)
	if err := readEdgeList(r, b); err != nil {
		return nil, err
	}
	return b.Build()
}

// readEdgeList parses an edge-list stream into an existing builder.
func readEdgeList(r io.Reader, b *Builder) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return fmt.Errorf("edge list line %d: want \"u v\", got %q", lineno, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return fmt.Errorf("edge list line %d: %v", lineno, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return fmt.Errorf("edge list line %d: %v", lineno, err)
		}
		if u < 0 || v < 0 {
			return fmt.Errorf("edge list line %d: negative vertex id", lineno)
		}
		if u > MaxLoadVertexID || v > MaxLoadVertexID {
			return fmt.Errorf("edge list line %d: vertex id exceeds limit %d", lineno, MaxLoadVertexID)
		}
		b.AddEdge(int32(u), int32(v))
	}
	return sc.Err()
}

// LoadAttributed parses an edge list and a vertex-attribute stream into an
// attributed Graph. attrs may be nil for a plain graph.
func LoadAttributed(edges, attrs io.Reader) (*Graph, error) {
	b := NewBuilder(0, 0)
	if err := readEdgeList(edges, b); err != nil {
		return nil, err
	}
	if attrs != nil {
		if err := readAttributes(attrs, b); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

func readAttributes(r io.Reader, b *Builder) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimRight(sc.Text(), "\r\n")
		if strings.TrimSpace(line) == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 3)
		id64, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 32)
		if err != nil {
			return fmt.Errorf("attributes line %d: bad id: %v", lineno, err)
		}
		if id64 < 0 || id64 > MaxLoadVertexID {
			return fmt.Errorf("attributes line %d: vertex id %d out of range [0,%d]", lineno, id64, MaxLoadVertexID)
		}
		id := int32(id64)
		b.AddVertexIDs(id)
		if len(parts) >= 2 && parts[1] != "" {
			name := parts[1]
			b.names[id] = name
			b.named = true
			if _, dup := b.nameIndex[name]; !dup {
				b.nameIndex[name] = id
			}
		}
		if len(parts) >= 3 && strings.TrimSpace(parts[2]) != "" {
			b.SetKeywords(id, strings.Fields(parts[2])...)
		}
	}
	return sc.Err()
}

// JSONGraph is the wire format for graph upload/download.
type JSONGraph struct {
	Name     string       `json:"name,omitempty"`
	Vertices []JSONVertex `json:"vertices"`
	Edges    [][2]int32   `json:"edges"`
}

// JSONVertex is one vertex record in JSONGraph.
type JSONVertex struct {
	ID       int32    `json:"id"`
	Name     string   `json:"name,omitempty"`
	Keywords []string `json:"keywords,omitempty"`
}

// LoadJSON parses the JSON wire format into a Graph.
func LoadJSON(r io.Reader) (*Graph, error) {
	var jg JSONGraph
	dec := json.NewDecoder(r)
	if err := dec.Decode(&jg); err != nil {
		return nil, fmt.Errorf("graph json: %v", err)
	}
	return FromJSONGraph(&jg)
}

// FromJSONGraph converts an already-decoded JSONGraph.
func FromJSONGraph(jg *JSONGraph) (*Graph, error) {
	b := NewBuilder(len(jg.Vertices), len(jg.Edges))
	for _, v := range jg.Vertices {
		if v.ID < 0 || v.ID > MaxLoadVertexID {
			return nil, fmt.Errorf("graph json: vertex id %d out of range [0,%d]", v.ID, MaxLoadVertexID)
		}
		b.AddVertexIDs(v.ID)
		if v.Name != "" {
			b.names[v.ID] = v.Name
			b.named = true
			if _, dup := b.nameIndex[v.Name]; !dup {
				b.nameIndex[v.Name] = v.ID
			}
		}
		if len(v.Keywords) > 0 {
			b.SetKeywords(v.ID, v.Keywords...)
		}
	}
	for _, e := range jg.Edges {
		if e[0] < 0 || e[1] < 0 || e[0] > MaxLoadVertexID || e[1] > MaxLoadVertexID {
			return nil, fmt.Errorf("graph json: vertex id out of range [0,%d] in edge %v", MaxLoadVertexID, e)
		}
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// ToJSONGraph converts g to the wire format (vertices in ID order).
func (g *Graph) ToJSONGraph(name string) *JSONGraph {
	jg := &JSONGraph{Name: name, Vertices: make([]JSONVertex, g.N())}
	for v := int32(0); v < int32(g.N()); v++ {
		jv := JSONVertex{ID: v, Keywords: g.KeywordStrings(v)}
		if g.Named() {
			jv.Name = g.Name(v)
		}
		jg.Vertices[v] = jv
	}
	g.Edges(func(u, v int32) bool {
		jg.Edges = append(jg.Edges, [2]int32{u, v})
		return true
	})
	return jg
}

// WriteEdgeList writes the graph as "u v" lines.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var err error
	g.Edges(func(u, v int32) bool {
		_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// WriteAttributes writes "id<TAB>name<TAB>kw..." lines for all vertices that
// have a name or keywords.
func (g *Graph) WriteAttributes(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for v := int32(0); v < int32(g.N()); v++ {
		name := ""
		if g.Named() {
			name = g.Name(v)
		}
		kws := g.KeywordStrings(v)
		if name == "" && len(kws) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(bw, "%d\t%s\t%s\n", v, name, strings.Join(kws, " ")); err != nil {
			return err
		}
	}
	return bw.Flush()
}
