package graph

import "fmt"

// Raw exposes the frozen CSR arrays of a Graph so that persistence layers
// (internal/snapshot) can serialize them with bulk slice writes and rebuild
// the graph without re-running the Builder. All slices alias graph-internal
// storage on the way out of Raw() and are adopted without copying by
// FromRaw; callers must treat them as immutable.
type Raw struct {
	Offsets   []int64  // len n+1, adjacency offsets
	Adj       []int32  // len 2m, concatenated sorted adjacency lists
	KwOffsets []int32  // len n+1, offsets into KwData
	KwData    []int32  // sorted interned keyword IDs, arena
	Words     []string // vocabulary, ID order
	Names     []string // display names, nil when the graph is unnamed

	// Borrowed marks arenas that alias caller-owned backing memory (a
	// view-decoded snapshot over a mapped file). FromRaw propagates it to
	// the graph so copy-on-write mutation knows to deep-copy shared arenas
	// instead of letting successors alias a mapping they do not pin.
	Borrowed bool
}

// Raw returns the graph's frozen internal arrays.
func (g *Graph) Raw() Raw {
	return Raw{
		Offsets:   g.offsets,
		Adj:       g.adj,
		KwOffsets: g.kwOffsets,
		KwData:    g.kwData,
		Words:     g.vocab.AllWords(),
		Names:     g.names,
		Borrowed:  g.borrowed,
	}
}

// FromRaw reassembles a Graph from frozen arrays, adopting the slices
// without copying. It rebuilds the derived structures the CSR arrays do not
// carry (the vocabulary map and the name index) and performs O(n+m) range
// and monotonicity checks so a corrupt input yields an error rather than a
// later out-of-bounds panic. It does not re-check the deeper invariants
// (adjacency sorted/symmetric/loop-free); run Validate when the input is
// untrusted beyond a checksum.
func FromRaw(r Raw) (*Graph, error) {
	if len(r.Offsets) < 2 {
		return nil, fmt.Errorf("graph raw: empty vertex set")
	}
	n := len(r.Offsets) - 1
	if r.Offsets[0] != 0 || r.Offsets[n] != int64(len(r.Adj)) {
		return nil, fmt.Errorf("graph raw: offsets do not span adjacency (first=%d last=%d len=%d)",
			r.Offsets[0], r.Offsets[n], len(r.Adj))
	}
	for v := 0; v < n; v++ {
		if r.Offsets[v] > r.Offsets[v+1] {
			return nil, fmt.Errorf("graph raw: offsets not monotone at vertex %d", v)
		}
	}
	for _, u := range r.Adj {
		if u < 0 || int(u) >= n {
			return nil, fmt.Errorf("graph raw: neighbor %d out of range [0,%d)", u, n)
		}
	}
	if len(r.KwOffsets) != n+1 {
		return nil, fmt.Errorf("graph raw: keyword offsets length %d, want %d", len(r.KwOffsets), n+1)
	}
	if r.KwOffsets[0] != 0 || int(r.KwOffsets[n]) != len(r.KwData) {
		return nil, fmt.Errorf("graph raw: keyword offsets do not span arena")
	}
	for v := 0; v < n; v++ {
		if r.KwOffsets[v] > r.KwOffsets[v+1] {
			return nil, fmt.Errorf("graph raw: keyword offsets not monotone at vertex %d", v)
		}
	}
	for _, w := range r.KwData {
		if w < 0 || int(w) >= len(r.Words) {
			return nil, fmt.Errorf("graph raw: keyword id %d out of vocab range [0,%d)", w, len(r.Words))
		}
	}
	vocab, err := VocabFromWords(r.Words)
	if err != nil {
		return nil, fmt.Errorf("graph raw: %v", err)
	}
	g := &Graph{
		offsets:   r.Offsets,
		adj:       r.Adj,
		kwOffsets: r.KwOffsets,
		kwData:    r.KwData,
		vocab:     vocab,
		borrowed:  r.Borrowed,
	}
	if len(r.Names) > 0 {
		if len(r.Names) != n {
			return nil, fmt.Errorf("graph raw: %d names for %d vertices", len(r.Names), n)
		}
		g.names = r.Names
		g.nameIndex = make(map[string]int32, n)
		for v, name := range r.Names {
			if name == "" {
				continue
			}
			if _, dup := g.nameIndex[name]; !dup {
				g.nameIndex[name] = int32(v)
			}
		}
	}
	return g, nil
}
