package graph

import (
	"fmt"
	"slices"
	"strings"
)

// Vocab interns keyword strings to dense int32 IDs. The ACQ engine, CL-tree
// inverted lists, and all metric code operate on interned IDs; strings only
// appear at the API boundary.
//
// A Vocab is append-only: IDs are assigned in first-seen order and never
// reused. It is not safe for concurrent mutation; concurrent reads are fine
// once loading has finished.
type Vocab struct {
	byWord map[string]int32
	words  []string
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab {
	return &Vocab{byWord: make(map[string]int32)}
}

// Intern returns the ID for w, assigning a fresh one if unseen.
func (v *Vocab) Intern(w string) int32 {
	if id, ok := v.byWord[w]; ok {
		return id
	}
	id := int32(len(v.words))
	v.byWord[w] = id
	v.words = append(v.words, w)
	return id
}

// ID returns the ID for w; ok is false if w was never interned.
func (v *Vocab) ID(w string) (id int32, ok bool) {
	id, ok = v.byWord[w]
	return id, ok
}

// Word returns the string for id. It panics on out-of-range IDs, which
// indicates a bug (IDs only come from this Vocab).
func (v *Vocab) Word(id int32) string { return v.words[id] }

// Len returns the number of distinct interned keywords.
func (v *Vocab) Len() int { return len(v.words) }

// Words materializes IDs back to strings, preserving order.
func (v *Vocab) Words(ids []int32) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = v.words[id]
	}
	return out
}

// AllWords returns every interned word in ID order. The returned slice
// aliases internal storage and must not be modified.
func (v *Vocab) AllWords() []string { return v.words }

// VocabFromWords rebuilds a vocabulary from a word list in ID order (the
// inverse of AllWords, used when loading a snapshot). Duplicate words are
// rejected: they cannot arise from a Vocab and would corrupt lookups.
func VocabFromWords(words []string) (*Vocab, error) {
	v := &Vocab{byWord: make(map[string]int32, len(words)), words: words}
	for i, w := range words {
		if _, dup := v.byWord[w]; dup {
			return nil, fmt.Errorf("vocab: duplicate word %q", w)
		}
		v.byWord[w] = int32(i)
	}
	return v, nil
}

// Clone returns an independent copy of the vocabulary. Overlay materialization
// uses it for copy-on-write: mutation batches that intern new keywords clone
// first, so graphs sharing the original vocabulary never observe a write.
func (v *Vocab) Clone() *Vocab {
	c := &Vocab{
		byWord: make(map[string]int32, len(v.byWord)),
		words:  slices.Clone(v.words),
	}
	for w, id := range v.byWord {
		c.byWord[w] = id
	}
	return c
}

// CloneOwned returns an independent copy whose word contents are copied to
// the heap, not just the string headers. Overlay materialization over a
// borrowed (mapped-snapshot) base uses it so successor graphs survive the
// mapping being unmapped.
func (v *Vocab) CloneOwned() *Vocab {
	c := &Vocab{
		byWord: make(map[string]int32, len(v.words)),
		words:  make([]string, len(v.words)),
	}
	for i, w := range v.words {
		cw := strings.Clone(w)
		c.words[i] = cw
		c.byWord[cw] = int32(i)
	}
	return c
}

// InternAll interns every string in ws and returns the sorted, deduplicated
// ID set (the canonical keyword-set representation).
func (v *Vocab) InternAll(ws []string) []int32 {
	ids := make([]int32, 0, len(ws))
	for _, w := range ws {
		ids = append(ids, v.Intern(w))
	}
	return sortDedup(ids)
}
