package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// triangle plus a pendant: 0-1, 1-2, 0-2, 2-3
func testGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(4, 4)
	b.AddVertex("a", "x", "y")
	b.AddVertex("b", "x")
	b.AddVertex("c", "y", "x")
	b.AddVertex("d")
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuilderBasic(t *testing.T) {
	g := testGraph(t)
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("N,M = %d,%d", g.N(), g.M())
	}
	if g.Degree(2) != 3 || g.Degree(3) != 1 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(2), g.Degree(3))
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(2, 0) || g.HasEdge(0, 3) {
		t.Fatal("HasEdge wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !g.Named() {
		t.Fatal("graph should be named")
	}
	if v, ok := g.VertexByName("c"); !ok || v != 2 {
		t.Fatalf("VertexByName(c) = %d,%v", v, ok)
	}
	if _, ok := g.VertexByName("zz"); ok {
		t.Fatal("VertexByName(zz) should fail")
	}
	if g.Name(3) != "d" {
		t.Fatalf("Name(3) = %q", g.Name(3))
	}
}

func TestBuilderDedupAndLoops(t *testing.T) {
	b := NewBuilder(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(1, 1) // self loop
	b.AddEdge(2, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2 (dedup + no loops)", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Named() {
		t.Fatal("anonymous graph reported Named")
	}
	if g.Name(0) != "v0" {
		t.Fatalf("anonymous Name(0) = %q", g.Name(0))
	}
}

func TestBuilderEmpty(t *testing.T) {
	if _, err := NewBuilder(0, 0).Build(); err == nil {
		t.Fatal("empty build should error")
	}
}

func TestKeywords(t *testing.T) {
	g := testGraph(t)
	xID, ok := g.Vocab().ID("x")
	if !ok {
		t.Fatal("x not interned")
	}
	if !g.HasKeyword(0, xID) || g.HasKeyword(3, xID) {
		t.Fatal("HasKeyword wrong")
	}
	// Keyword sets are sorted interned IDs; c was declared "y","x" but must
	// come back sorted.
	kw := g.Keywords(2)
	for i := 1; i < len(kw); i++ {
		if kw[i-1] >= kw[i] {
			t.Fatal("keywords not sorted")
		}
	}
	if got := g.KeywordStrings(3); len(got) != 0 {
		t.Fatalf("d has keywords %v", got)
	}
}

func TestInduce(t *testing.T) {
	g := testGraph(t)
	s := g.Induce([]int32{0, 1, 2})
	if s.N() != 3 || s.M() != 3 {
		t.Fatalf("induced N,M = %d,%d", s.N(), s.M())
	}
	if s.MinDegree() != 2 {
		t.Fatalf("MinDegree = %d", s.MinDegree())
	}
	if !s.IsConnected() {
		t.Fatal("triangle should be connected")
	}
	if s.AvgDegree() != 2 {
		t.Fatalf("AvgDegree = %f", s.AvgDegree())
	}
	// Disconnected induced subgraph.
	s2 := g.Induce([]int32{0, 3})
	if s2.M() != 0 || s2.IsConnected() {
		t.Fatal("0,3 should be disconnected")
	}
	// Local/parent mapping round trip.
	l, ok := s.LocalID(2)
	if !ok || s.ParentID(l) != 2 {
		t.Fatal("LocalID/ParentID mapping broken")
	}
	if _, ok := s.LocalID(3); ok {
		t.Fatal("3 is not a member")
	}
}

func TestSharedKeywords(t *testing.T) {
	g := testGraph(t)
	xID, _ := g.Vocab().ID("x")
	yID, _ := g.Vocab().ID("y")
	s := g.Induce([]int32{0, 2})
	shared := s.SharedKeywords(nil)
	want := sortDedup([]int32{xID, yID})
	if !reflect.DeepEqual(shared, want) {
		t.Fatalf("shared = %v, want %v", shared, want)
	}
	// Restricted to filter {y}.
	shared = s.SharedKeywords([]int32{yID})
	if !reflect.DeepEqual(shared, []int32{yID}) {
		t.Fatalf("filtered shared = %v", shared)
	}
	// Adding b kills y.
	s = g.Induce([]int32{0, 1, 2})
	shared = s.SharedKeywords(nil)
	if !reflect.DeepEqual(shared, []int32{xID}) {
		t.Fatalf("shared with b = %v", shared)
	}
	// Adding d (no keywords) kills everything.
	s = g.Induce([]int32{0, 1, 2, 3})
	if got := s.SharedKeywords(nil); len(got) != 0 {
		t.Fatalf("shared with d = %v", got)
	}
}

func TestTraversals(t *testing.T) {
	b := NewBuilder(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	b.AddVertexIDs(5) // isolated
	g := b.MustBuild()
	labels, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("components = %d, want 3", count)
	}
	if labels[0] != labels[2] || labels[0] == labels[3] || labels[5] == labels[0] {
		t.Fatalf("labels = %v", labels)
	}
	comp := g.ComponentOf(1)
	if len(comp) != 3 {
		t.Fatalf("ComponentOf(1) = %v", comp)
	}
	within := g.BFSWithin(0, func(v int32) bool { return v != 1 })
	if len(within) != 1 || within[0] != 0 {
		t.Fatalf("BFSWithin blocked = %v", within)
	}
	if got := g.BFSWithin(0, func(v int32) bool { return false }); got != nil {
		t.Fatalf("BFSWithin with excluded start = %v", got)
	}
	dist := g.Distances(0)
	if dist[2] != 2 || dist[3] != -1 {
		t.Fatalf("Distances = %v", dist)
	}
}

func TestDiameter(t *testing.T) {
	b := NewBuilder(0, 0)
	// path 0-1-2-3
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	if d := g.Diameter([]int32{0, 1, 2, 3}); d != 3 {
		t.Fatalf("Diameter = %d, want 3", d)
	}
	if d := g.Diameter([]int32{0, 1}); d != 1 {
		t.Fatalf("Diameter = %d, want 1", d)
	}
}

func TestStats(t *testing.T) {
	g := testGraph(t)
	s := g.ComputeStats()
	if s.Vertices != 4 || s.Edges != 4 || s.MinDegree != 1 || s.MaxDegree != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Components != 1 {
		t.Fatalf("components = %d", s.Components)
	}
	if s.AvgDegree != 2 {
		t.Fatalf("avg degree = %f", s.AvgDegree)
	}
	hist := g.DegreeHistogram()
	if hist[1] != 1 || hist[2] != 2 || hist[3] != 1 {
		t.Fatalf("hist = %v", hist)
	}
}

func TestTopKeywords(t *testing.T) {
	g := testGraph(t)
	top := g.TopKeywords([]int32{0, 1, 2}, 1)
	if len(top) != 1 || g.Vocab().Word(top[0]) != "x" {
		t.Fatalf("top = %v", top)
	}
	all := g.TopKeywords([]int32{0, 1, 2}, 0)
	if len(all) != 2 {
		t.Fatalf("all = %v", all)
	}
}

func TestVocab(t *testing.T) {
	v := NewVocab()
	a := v.Intern("alpha")
	if b := v.Intern("alpha"); b != a {
		t.Fatal("re-intern changed id")
	}
	if v.Len() != 1 {
		t.Fatalf("Len = %d", v.Len())
	}
	if w := v.Word(a); w != "alpha" {
		t.Fatalf("Word = %q", w)
	}
	if _, ok := v.ID("beta"); ok {
		t.Fatal("beta should be unknown")
	}
	ids := v.InternAll([]string{"c", "b", "c", "a"})
	if len(ids) != 3 {
		t.Fatalf("InternAll dedup failed: %v", ids)
	}
	words := v.Words(ids)
	if len(words) != 3 {
		t.Fatalf("Words = %v", words)
	}
}

// TestBuildRandomValidates builds random multigraph-ish edge soups and
// checks the frozen graph always validates and preserves edge membership.
func TestBuildRandomValidates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		b := NewBuilder(n, 0)
		b.AddVertexIDs(int32(n - 1))
		type pair struct{ u, v int32 }
		want := map[pair]bool{}
		for i := 0; i < 3*n; i++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			b.AddEdge(u, v)
			if u != v {
				if u > v {
					u, v = v, u
				}
				want[pair{u, v}] = true
			}
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		if g.M() != len(want) {
			return false
		}
		for p := range want {
			if !g.HasEdge(p.u, p.v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSizeMatchesSubgraph(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		b := NewBuilder(n, 0)
		b.AddVertexIDs(int32(n - 1))
		for i := 0; i < 2*n; i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.MustBuild()
		var vs []int32
		for v := int32(0); v < int32(n); v++ {
			if rng.Intn(2) == 0 {
				vs = append(vs, v)
			}
		}
		if len(vs) == 0 {
			return true
		}
		sub := g.Induce(vs)
		return g.InducedSize(sub.MemberSet()) == sub.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
