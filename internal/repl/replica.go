package repl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cexplorer/internal/api"
	"cexplorer/internal/snapshot"
)

// Replica phases (surfaced in dataset resources and stats).
const (
	PhaseBootstrapping = "bootstrapping"
	PhaseTailing       = "tailing"
	PhaseDegraded      = "degraded" // primary unreachable; serving last-applied version
)

// ReplicaOptions tune a replica's tailing behavior. Zero values take the
// defaults noted per field.
type ReplicaOptions struct {
	Client     *http.Client  // transport (default: a fresh timeout-free client; see below)
	PollWait   time.Duration // long-poll wait per journal request (default 20s)
	Refresh    time.Duration // dataset-discovery period (default 15s)
	MaxRecords int           // records per journal request (default 512)
	BackoffMin time.Duration // first retry delay after an error (default 100ms)
	BackoffMax time.Duration // retry delay cap (default 5s)
	// HeaderTimeout bounds the connect-through-response-headers phase of
	// every request the replica issues (default 5s). Journal long-polls get
	// PollWait on top, since the primary legitimately parks them. This —
	// not Client.Timeout — is what keeps a blackholed primary from wedging
	// a tailer: a whole-request timeout would also kill slow-but-live
	// snapshot streams, so the replica bounds each phase instead.
	HeaderTimeout time.Duration
	// StallTimeout bounds the gap between successive body reads once the
	// headers are in (default 10s): a response that stops making progress
	// mid-stream is aborted and retried with backoff, however large the
	// snapshot behind it.
	StallTimeout time.Duration
	// MissingLimit is how many consecutive dataset-missing answers (404
	// from the journal or snapshot endpoint) a tailer tolerates before it
	// un-claims the dataset and drops it from the local explorer (default
	// 3). A dataset deleted at the primary thus disappears here too instead
	// of being served stale forever; if the name reappears at the primary,
	// the discovery loop re-claims and re-bootstraps it.
	MissingLimit int
	Logf         func(format string, args ...any)
}

// Replica tails one primary: it discovers datasets, bootstraps each from
// the primary's snapshot endpoint, then applies journal records through
// Explorer.Mutate — the apply-from-stream seam that bypasses the write
// batcher and local journaling but reuses the full incremental-maintenance
// and conflict-typing path. The wrapped Explorer stays a normal read-serving
// Explorer throughout; when the primary is unreachable the replica simply
// stops advancing and keeps serving its last-applied version.
type Replica struct {
	exp *api.Explorer
	opt ReplicaOptions

	mu      sync.Mutex
	primary string
	// gen counts re-targets. Each tailer loop snapshots it; a mismatch on
	// the next iteration means the primary changed underfoot, so the tailer
	// re-bootstraps from the new one instead of trusting a position that
	// belongs to the old lineage.
	gen    uint64
	states map[string]*replicaState

	applied    atomic.Int64
	appliedOps atomic.Int64
	bootstraps atomic.Int64
	fences     atomic.Int64
	netErrors  atomic.Int64
	dropped    atomic.Int64
	retargets  atomic.Int64
}

type replicaState struct {
	epoch   uint64
	applied uint64 // last applied sequence == served Version
	head    uint64 // last observed primary head
	phase   string
	// missing counts consecutive dataset-missing (404) answers from the
	// primary; at MissingLimit the tailer un-claims and drops the dataset.
	missing int
	// notify is closed and replaced on every apply; WaitVersion parks on it.
	notify chan struct{}
}

// errDatasetMissing marks a 404 from the journal or snapshot endpoint: the
// primary is reachable but no longer has the dataset.
var errDatasetMissing = errors.New("dataset missing at primary")

// NewReplica wraps exp as a replica of the primary at primaryURL (base URL,
// e.g. "http://primary:8080"). Call Run to start tailing.
func NewReplica(exp *api.Explorer, primaryURL string, opt ReplicaOptions) *Replica {
	if opt.Client == nil {
		// Deliberately no Client.Timeout: per-phase bounds (HeaderTimeout,
		// StallTimeout, PollWait) govern instead, so a multi-second snapshot
		// stream that is making progress is never killed by a blanket cap.
		opt.Client = &http.Client{}
	}
	if opt.PollWait <= 0 {
		opt.PollWait = 20 * time.Second
	}
	if opt.Refresh <= 0 {
		opt.Refresh = 15 * time.Second
	}
	if opt.MaxRecords <= 0 {
		opt.MaxRecords = 512
	}
	if opt.BackoffMin <= 0 {
		opt.BackoffMin = 100 * time.Millisecond
	}
	if opt.BackoffMax <= 0 {
		opt.BackoffMax = 5 * time.Second
	}
	if opt.HeaderTimeout <= 0 {
		opt.HeaderTimeout = 5 * time.Second
	}
	if opt.StallTimeout <= 0 {
		opt.StallTimeout = 10 * time.Second
	}
	if opt.MissingLimit <= 0 {
		opt.MissingLimit = 3
	}
	if opt.Logf == nil {
		opt.Logf = func(string, ...any) {}
	}
	return &Replica{
		exp:     exp,
		primary: strings.TrimRight(primaryURL, "/"),
		opt:     opt,
		states:  map[string]*replicaState{},
	}
}

// Primary returns the primary base URL this replica currently tails.
func (r *Replica) Primary() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.primary
}

func (r *Replica) generation() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gen
}

// Retarget points the replica at a new primary (the promotion protocol's
// re-target step). Every dataset tailer observes the generation bump on its
// next iteration and re-bootstraps from the new primary — its old position
// belongs to the dead primary's feed and would fence there anyway. A no-op
// when the URL already matches.
func (r *Replica) Retarget(primaryURL string) {
	primaryURL = strings.TrimRight(primaryURL, "/")
	r.mu.Lock()
	if r.primary == primaryURL {
		r.mu.Unlock()
		return
	}
	r.primary = primaryURL
	r.gen++
	for _, st := range r.states {
		st.missing = 0
	}
	r.mu.Unlock()
	r.retargets.Add(1)
	r.opt.Logf("repl: re-targeted to primary %s", primaryURL)
}

// Run discovers datasets and tails each until ctx is canceled. It blocks;
// run it on its own goroutine. Discovery failures are retried on the
// refresh cadence — the replica keeps serving whatever it has.
func (r *Replica) Run(ctx context.Context) {
	var wg sync.WaitGroup
	defer wg.Wait()
	tick := time.NewTicker(r.opt.Refresh)
	defer tick.Stop()
	for {
		names, err := r.discover(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			r.netErrors.Add(1)
			r.opt.Logf("repl: discovery against %s: %v", r.Primary(), err)
		}
		for _, name := range names {
			if r.claim(name) {
				wg.Add(1)
				go func(name string) {
					defer wg.Done()
					r.tailDataset(ctx, name)
				}(name)
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

// claim registers a state for name; false if a tailer already owns it.
func (r *Replica) claim(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.states[name]; ok {
		return false
	}
	r.states[name] = &replicaState{phase: PhaseBootstrapping, notify: make(chan struct{})}
	return true
}

// boundedGet issues a GET whose every phase has a deadline: headerBudget
// covers connect + request + response headers (the phase a blackholed
// primary stalls forever), and once headers are in, each body read must
// complete within the stall budget or the request is aborted. The returned
// release cancels the watchdog and the request context; call it exactly
// once, after the body is drained (drain calls Close, not release — both
// are needed).
func (r *Replica) boundedGet(ctx context.Context, url string, headerBudget time.Duration) (*http.Response, func(), error) {
	rctx, cancel := context.WithCancel(ctx)
	req, err := http.NewRequestWithContext(rctx, "GET", url, nil)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	watchdog := time.AfterFunc(headerBudget, cancel)
	resp, err := r.opt.Client.Do(req)
	if err != nil {
		watchdog.Stop()
		cancel()
		return nil, nil, err
	}
	watchdog.Reset(r.opt.StallTimeout)
	resp.Body = &stalledBody{ReadCloser: resp.Body, watchdog: watchdog, stall: r.opt.StallTimeout}
	return resp, func() { watchdog.Stop(); cancel() }, nil
}

// stalledBody re-arms the request watchdog before every body read: a read
// that blocks past the stall budget fires the watchdog, which cancels the
// request context and unwedges the read with an error.
type stalledBody struct {
	io.ReadCloser
	watchdog *time.Timer
	stall    time.Duration
}

func (b *stalledBody) Read(p []byte) (int, error) {
	b.watchdog.Reset(b.stall)
	return b.ReadCloser.Read(p)
}

func (r *Replica) discover(ctx context.Context) ([]string, error) {
	resp, release, err := r.boundedGet(ctx, r.Primary()+"/api/v1/datasets", r.opt.HeaderTimeout)
	if err != nil {
		return nil, err
	}
	defer release()
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("list datasets: status %d", resp.StatusCode)
	}
	var body struct {
		Datasets []struct {
			Name string `json:"name"`
		} `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(body.Datasets))
	for _, d := range body.Datasets {
		if d.Name != "" {
			names = append(names, d.Name)
		}
	}
	return names, nil
}

// tailDataset is one dataset's replication loop: bootstrap, tail, and on
// any fence or divergence, bootstrap again. Transport errors back off
// exponentially; the dataset keeps serving its last-applied version.
func (r *Replica) tailDataset(ctx context.Context, name string) {
	backoff := r.opt.BackoffMin
	sleep := func() bool {
		r.setPhase(name, PhaseDegraded)
		select {
		case <-ctx.Done():
			return false
		case <-time.After(backoff):
		}
		backoff = min(backoff*2, r.opt.BackoffMax)
		return true
	}
	needBootstrap := true
	gen := r.generation()
	for ctx.Err() == nil {
		if g := r.generation(); g != gen {
			// Re-targeted to a new primary: the tail position belongs to the
			// old one. Start over against the new primary immediately.
			gen = g
			needBootstrap = true
			backoff = r.opt.BackoffMin
			r.setPhase(name, PhaseBootstrapping)
		}
		if needBootstrap {
			if err := r.bootstrap(ctx, name); err != nil {
				if ctx.Err() != nil {
					return
				}
				r.netErrors.Add(1)
				r.opt.Logf("repl: bootstrap %q: %v", name, err)
				if r.noteMissing(name, err) {
					r.unclaim(name)
					return
				}
				if !sleep() {
					return
				}
				continue
			}
			needBootstrap = false
			backoff = r.opt.BackoffMin
		}
		fenced, err := r.tailOnce(ctx, name)
		switch {
		case ctx.Err() != nil:
			return
		case fenced:
			// The primary cannot serve our position contiguously (buffer
			// trimmed, re-upload, restart) or our applied version diverged.
			r.fences.Add(1)
			needBootstrap = true
			r.setPhase(name, PhaseBootstrapping)
		case err != nil:
			r.netErrors.Add(1)
			r.opt.Logf("repl: tail %q: %v", name, err)
			if r.noteMissing(name, err) {
				r.unclaim(name)
				return
			}
			if !sleep() {
				return
			}
		default:
			backoff = r.opt.BackoffMin
			r.clearMissing(name)
			r.setPhase(name, PhaseTailing)
		}
	}
}

// noteMissing records one more consecutive dataset-missing (404) answer
// when err wraps the sentinel — any other error resets the streak — and
// reports true once the streak reaches MissingLimit: the dataset is gone at
// the primary, not merely unreachable, and must be dropped.
func (r *Replica) noteMissing(name string, err error) (drop bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.states[name]
	if st == nil {
		return false
	}
	if !errors.Is(err, errDatasetMissing) {
		st.missing = 0
		return false
	}
	st.missing++
	return st.missing >= r.opt.MissingLimit
}

func (r *Replica) clearMissing(name string) {
	r.mu.Lock()
	if st := r.states[name]; st != nil {
		st.missing = 0
	}
	r.mu.Unlock()
}

// unclaim withdraws the tailer's claim and removes the dataset from the
// local explorer: the primary no longer serves it, so keeping it would mean
// serving an indefinitely stale ghost (and hammering the journal endpoint
// with 404s every backoff). Parked WaitVersion callers wake, observe the
// dataset as unknown, and time out as lagging. If the name reappears at the
// primary, the discovery loop re-claims and re-bootstraps it fresh.
func (r *Replica) unclaim(name string) {
	r.mu.Lock()
	st := r.states[name]
	delete(r.states, name)
	if st != nil {
		close(st.notify)
	}
	r.mu.Unlock()
	r.exp.RemoveDataset(name)
	r.dropped.Add(1)
	r.opt.Logf("repl: %q: missing at primary; un-claimed and dropped", name)
}

// bootstrap fetches the primary's snapshot and (re)registers the dataset.
func (r *Replica) bootstrap(ctx context.Context, name string) error {
	u := r.Primary() + "/api/v1/datasets/" + url.PathEscape(name) + "/snapshot"
	resp, release, err := r.boundedGet(ctx, u, r.opt.HeaderTimeout)
	if err != nil {
		return err
	}
	defer release()
	defer drain(resp)
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return fmt.Errorf("snapshot fetch: %w", errDatasetMissing)
	default:
		return fmt.Errorf("snapshot fetch: status %d", resp.StatusCode)
	}
	epoch, err := strconv.ParseUint(resp.Header.Get(HeaderEpoch), 10, 64)
	if err != nil {
		return fmt.Errorf("snapshot fetch: bad %s header: %v", HeaderEpoch, err)
	}
	ds, err := api.OpenSnapshot(name, resp.Body)
	if err != nil {
		return fmt.Errorf("snapshot decode: %w", err)
	}
	// A re-bootstrap may install a different lineage whose versions
	// restart; cached results keyed under the old lineage's versions would
	// collide, so purge first (the primary does the same on re-upload).
	if c := r.exp.Cache(); c != nil {
		c.Purge(name)
	}
	if err := r.exp.AddDataset(ds); err != nil {
		return err
	}
	r.mu.Lock()
	st := r.states[name]
	st.epoch = epoch
	st.applied = ds.Version
	if st.head < ds.Version {
		st.head = ds.Version
	}
	st.phase = PhaseTailing
	close(st.notify)
	st.notify = make(chan struct{})
	r.mu.Unlock()
	r.bootstraps.Add(1)
	r.opt.Logf("repl: bootstrapped %q at version %d (epoch %d)", name, ds.Version, epoch)
	return nil
}

// tailOnce issues one journal-shipping request and applies every record it
// returns. fenced=true demands a re-bootstrap; err is a retryable
// transport/primary failure; (false, nil) means the poll simply elapsed or
// records were applied cleanly.
func (r *Replica) tailOnce(ctx context.Context, name string) (fenced bool, err error) {
	r.mu.Lock()
	st := r.states[name]
	epoch, applied := st.epoch, st.applied
	r.mu.Unlock()

	u := fmt.Sprintf("%s/api/v1/datasets/%s/journal?fromSeq=%d&epoch=%d&wait=%s&maxRecords=%d",
		r.Primary(), url.PathEscape(name), applied+1, epoch, r.opt.PollWait, r.opt.MaxRecords)
	// The primary legitimately parks a long-poll for up to PollWait before
	// the first header byte, so the header budget is PollWait plus the
	// ordinary headroom; a blackholed primary still stalls the tailer for
	// at most that bound, never forever.
	resp, release, err := r.boundedGet(ctx, u, r.opt.PollWait+r.opt.HeaderTimeout)
	if err != nil {
		return false, err
	}
	defer release()
	defer drain(resp)
	if head, err := strconv.ParseUint(resp.Header.Get(HeaderHeadSeq), 10, 64); err == nil {
		r.mu.Lock()
		if head > st.head {
			st.head = head
		}
		r.mu.Unlock()
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		return true, nil // epoch_fenced
	case http.StatusNotFound:
		// Dataset dropped at the primary (or the primary restarted without
		// it). tailDataset counts consecutive misses and un-claims at the
		// limit rather than serving the stale dataset forever.
		return false, fmt.Errorf("journal: %w", errDatasetMissing)
	default:
		return false, fmt.Errorf("journal: status %d", resp.StatusCode)
	}

	fr := snapshot.NewFrameReader(resp.Body)
	for {
		rec, err := fr.Next()
		if err == io.EOF {
			return false, nil
		}
		if err != nil {
			// Mid-frame truncation or corruption: reconnect from the last
			// applied sequence; nothing past it was applied.
			return false, err
		}
		if rec.Version <= applied {
			continue // duplicate delivery; already applied
		}
		if rec.Version != applied+1 {
			// A hole in the stream — the feed should fence instead, but
			// never apply around a gap. Re-bootstrap.
			r.opt.Logf("repl: %q: gap: have %d, got record %d", name, applied, rec.Version)
			return true, nil
		}
		res, err := r.exp.Mutate(ctx, name, FromJournalOps(rec.Ops))
		if err != nil {
			if errors.Is(err, api.ErrCanceled) || errors.Is(err, api.ErrTimeout) {
				return false, err
			}
			// A typed conflict (or any apply failure) on a record the
			// primary applied cleanly means our state diverged: the only
			// safe recovery is a fresh snapshot.
			r.opt.Logf("repl: %q: apply of seq %d failed (%v); re-bootstrapping", name, rec.Version, err)
			return true, nil
		}
		if res.Version != rec.Version {
			r.opt.Logf("repl: %q: applied seq %d but dataset is at %d; re-bootstrapping", name, rec.Version, res.Version)
			return true, nil
		}
		applied = rec.Version
		r.applied.Add(1)
		r.appliedOps.Add(int64(len(rec.Ops)))
		r.mu.Lock()
		st.applied = applied
		st.phase = PhaseTailing
		close(st.notify)
		st.notify = make(chan struct{})
		r.mu.Unlock()
	}
}

func (r *Replica) setPhase(name, phase string) {
	r.mu.Lock()
	if st := r.states[name]; st != nil && st.phase != phase {
		st.phase = phase
	}
	r.mu.Unlock()
}

// WaitVersion blocks until dataset `name` has applied at least version v,
// or ctx expires. An unknown dataset counts as lagging (it may not have
// been discovered yet), so callers time out rather than serve a miss.
func (r *Replica) WaitVersion(ctx context.Context, name string, v uint64) error {
	for {
		r.mu.Lock()
		st := r.states[name]
		var applied uint64
		var notify chan struct{}
		if st != nil {
			applied = st.applied
			notify = st.notify
		}
		r.mu.Unlock()
		if st != nil && applied >= v {
			return nil
		}
		if notify == nil {
			// Not discovered yet: poll on a short fuse instead of a wait.
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(20 * time.Millisecond):
			}
			continue
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-notify:
		}
	}
}

// DatasetStatus is one dataset's replication position on a replica.
type DatasetStatus struct {
	Epoch      uint64
	AppliedSeq uint64
	HeadSeq    uint64
	Phase      string
}

// Status reports a dataset's replication position.
func (r *Replica) Status(name string) (DatasetStatus, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.states[name]
	if st == nil {
		return DatasetStatus{}, false
	}
	return DatasetStatus{Epoch: st.epoch, AppliedSeq: st.applied, HeadSeq: st.head, Phase: st.phase}, true
}

// ReplicaStats is the replica-side counter block for /api/stats.
type ReplicaStats struct {
	Primary        string `json:"primary"`
	Datasets       int    `json:"datasets"`
	AppliedRecords int64  `json:"appliedRecords"`
	AppliedOps     int64  `json:"appliedOps"`
	Bootstraps     int64  `json:"bootstraps"`
	Fences         int64  `json:"fences"`
	NetErrors      int64  `json:"netErrors"`
	Dropped        int64  `json:"dropped"` // datasets un-claimed after going missing at the primary
	Retargets      int64  `json:"retargets"`
	MaxLag         uint64 `json:"maxLag"`
}

// Stats snapshots the replica counters. MaxLag is the largest
// head−applied across datasets at snapshot time.
func (r *Replica) Stats() ReplicaStats {
	s := ReplicaStats{
		Primary:        r.Primary(),
		AppliedRecords: r.applied.Load(),
		Retargets:      r.retargets.Load(),
		AppliedOps:     r.appliedOps.Load(),
		Bootstraps:     r.bootstraps.Load(),
		Fences:         r.fences.Load(),
		NetErrors:      r.netErrors.Load(),
		Dropped:        r.dropped.Load(),
	}
	r.mu.Lock()
	s.Datasets = len(r.states)
	for _, st := range r.states {
		if lag := st.head - st.applied; st.head > st.applied && lag > s.MaxLag {
			s.MaxLag = lag
		}
	}
	r.mu.Unlock()
	return s
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
