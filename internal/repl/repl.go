// Package repl is the replication subsystem: it promotes the per-dataset
// mutation journal (the durable CXJRNL log of internal/snapshot) into a
// replication stream so read replicas can serve the full query API.
//
// Three roles cooperate:
//
//   - Feed runs on the primary. An Explorer mutate hook publishes every
//     applied batch — as a pre-encoded journal frame keyed by the Version
//     it produced — into a bounded per-dataset ring. Ship answers the
//     journal-shipping endpoint: return buffered frames from a sequence
//     number, or long-poll until one arrives. Every way a cursor can be
//     stranded (buffer trimmed past fromSeq, re-upload starting a fresh
//     lineage, primary restart) funnels into one signal: the fence. A
//     fenced replica throws away its tail position and re-bootstraps from
//     a snapshot; it never applies a record it cannot prove contiguous.
//
//   - Replica tails a primary. Per dataset it bootstraps from the
//     primary's snapshot endpoint, then tails the journal and applies each
//     record through Explorer.Mutate — the same incremental-maintenance
//     path the primary used, bypassing the write batcher and the local
//     journal (the primary's journal is the source of truth). It tracks
//     (snapshotEpoch, appliedSeq, Version) per dataset, retries with
//     exponential backoff when the primary is unreachable, and keeps
//     serving its last-applied version meanwhile (graceful degradation).
//
//   - Router fronts the fleet. Mutations and uploads go to the primary;
//     dataset reads fan out across replicas by consistent hashing on the
//     dataset name (stable per-dataset affinity keeps exploration sessions
//     and result caches hot); anything that fails over — transport error,
//     5xx, or a replica answering 503 replica_lagging — falls back along
//     the hash ring and finally to the primary.
//
// Read-your-writes rides the existing Version counter: a mutation response
// carries the version it produced; a client echoes it back as the
// X-CExplorer-Min-Version header; a replica serving that read waits (up to
// a bound) until its applied version catches up, else answers 503
// replica_lagging and the router forwards to the primary. Sequence numbers
// ARE versions: journal record N is the batch that produced Version N, so
// "replica applied seq N" and "replica serves Version N" are one fact.
//
// # Fault model
//
// The fleet is hardened against (and chaos-tested under, via internal/chaos
// and the chaos-convergence suite) the failure modes a real network hands
// it:
//
//   - Stalls and blackholes are bounded, never fatal: every request a
//     replica issues has a per-phase deadline (HeaderTimeout to first
//     header byte — plus PollWait for journal long-polls the primary
//     legitimately parks — then StallTimeout between body reads), so a
//     blackholed primary costs one bounded stall and a backoff, not a
//     wedged tailer. Deliberately NOT a whole-request timeout: a large
//     snapshot stream that keeps making progress is never killed.
//   - Corruption and truncation never reach the graph: journal frames are
//     CRC-framed and snapshots checksummed, so a flipped or torn byte
//     fails the read and the replica reconnects from its last applied
//     sequence. Convergence is delayed, never poisoned.
//   - Anything that breaks stream contiguity — trimmed buffer, re-upload,
//     primary restart, apply divergence — fences, and a fenced replica
//     re-bootstraps from a snapshot rather than guess.
//   - A dataset deleted at the primary is dropped at the replicas too:
//     MissingLimit consecutive 404 answers un-claim it (and re-discovery
//     re-claims if it reappears), instead of serving a ghost stale forever.
//   - The router relays upstream deaths honestly: a response dying
//     mid-body aborts the client connection (http.ErrAbortHandler, counted
//     in relayAborts) rather than passing off a truncated 200 as complete.
//     Plain reads fail over along the ring to the primary; session-scoped
//     routes (/explore...) stay pinned to the home node, because a ring
//     walk cannot revive server-side session state that lives only there.
//
// Degradation is by design, not by accident: through all of the above a
// replica keeps serving its last-applied version, and convergence resumes
// when the fault clears.
//
// # Promotion protocol (self-healing fleet)
//
// The primary is the only single point of failure the fault model above
// leaves standing, so the router doubles as the failure detector and
// promotion coordinator:
//
//  1. Detect. The router's Monitor probes every node's GET /api/v1/health
//     on a fixed cadence with a per-probe deadline and keeps a circuit
//     breaker per node: FailThreshold consecutive probe failures open the
//     circuit (the node leaves the read ring immediately; open nodes are
//     re-probed on exponential backoff), one success moves it to half-open,
//     and a second closes it again.
//  2. Elect. When the primary's circuit opens and promotion is enabled,
//     the router ranks the reachable replicas by total appliedSeq (from
//     their last health payloads) and asks the best one to promote,
//     passing a fleet epoch one above the highest it has observed. The
//     candidate independently re-verifies it is the most caught up among
//     the reachable peers (409 not_caught_up sends the router to the next
//     candidate), stops its tailer, opens its own journal Feed — with
//     fresh, boot-salted snapshot epochs no old cursor can match — and
//     flips to accepting writes.
//  3. Re-target. Surviving replicas are pointed at the new primary
//     (Replica.Retarget); their first shipping request against the new
//     feed fences on the epoch mismatch and they re-bootstrap from the new
//     primary's snapshots.
//  4. Fence the past. Every write the router forwards is stamped with the
//     fleet epoch (X-CExplorer-Fleet-Epoch); a node whose own epoch
//     differs answers 409 epoch_fenced without applying, so a stale
//     primary that comes back can never acknowledge a routed write. When
//     the old primary reappears, the router sees its stale epoch and
//     demotes it: it drops its feed, starts a tailer against the new
//     primary, and re-bootstraps — the new primary's lineage wins.
//
// During the election window reads keep flowing from the replicas while
// writes answer a typed 503 no_primary with Retry-After, bounding write
// unavailability at roughly (FailThreshold × probe interval) + one
// promotion round trip.
//
// The failure model is asynchronous replication, stated plainly: a
// mutation acknowledged by the old primary but not yet shipped when the
// primary died is LOST on promotion. The fleet converges on the new
// primary's lineage; durability of acknowledged-but-unshipped writes is
// bounded by replication lag, not zero.
package repl

import (
	"cexplorer/internal/api"
	"cexplorer/internal/snapshot"
)

// Protocol headers shared by primary, replica, and router.
const (
	// HeaderEpoch carries the snapshot epoch of a shipping response or
	// bootstrap snapshot. Epochs are unique per (process boot, lineage):
	// an epoch mismatch always means "your position is meaningless,
	// re-bootstrap".
	HeaderEpoch = "X-CExplorer-Epoch"
	// HeaderHeadSeq is the primary's newest applied sequence (== Version)
	// for the dataset, or a replica's last observed primary head.
	HeaderHeadSeq = "X-CExplorer-Head-Seq"
	// HeaderBaseSeq is the oldest sequence still shippable from the feed
	// buffer plus one is the first available record; fromSeq at or below
	// the base is fenced.
	HeaderBaseSeq = "X-CExplorer-Base-Seq"
	// HeaderVersion is the dataset Version embedded in a bootstrap
	// snapshot response.
	HeaderVersion = "X-CExplorer-Version"
	// HeaderMinVersion is the read-your-writes request header: the client
	// echoes the Version a mutation response reported, and the serving
	// node guarantees the read observes that version or newer (or answers
	// 503 replica_lagging so the router can forward to the primary).
	HeaderMinVersion = "X-CExplorer-Min-Version"
	// HeaderServedBy is stamped by the router with the upstream node that
	// actually answered.
	HeaderServedBy = "X-CExplorer-Served-By"
	// HeaderFleetEpoch stamps a routed write with the router's fleet epoch
	// (the promotion counter, distinct from per-dataset snapshot epochs).
	// A node whose own fleet epoch differs answers 409 epoch_fenced
	// without applying: the split-brain guard that keeps a stale primary
	// from acknowledging writes after a promotion.
	HeaderFleetEpoch = "X-CExplorer-Fleet-Epoch"
)

// Error envelope codes introduced by replication (the envelope shape is the
// server's usual {"error","code"}).
const (
	// CodeEpochFenced (HTTP 409): the requested (epoch, fromSeq) cursor
	// cannot be served contiguously; re-bootstrap.
	CodeEpochFenced = "epoch_fenced"
	// CodeReplicaLagging (HTTP 503): the replica could not reach the
	// requested min-version within its wait budget.
	CodeReplicaLagging = "replica_lagging"
	// CodeReadOnly (HTTP 403): a mutation or upload reached a replica.
	CodeReadOnly = "read_only"
	// CodeNoPrimary (HTTP 503): the fleet has no reachable primary (an
	// election is in progress, or a demoted node no longer hosts a feed).
	// Always served with Retry-After; the write is safe to retry.
	CodeNoPrimary = "no_primary"
	// CodeNotCaughtUp (HTTP 409): a promotion candidate found a reachable
	// peer with a higher applied sequence and refused the promotion.
	CodeNotCaughtUp = "not_caught_up"
)

// ContentTypeJournal is the media type of a journal-shipping response body:
// a concatenation of CXJRNL frames (no file header).
const ContentTypeJournal = "application/x-cexplorer-journal"

// ToJournalOps maps API mutations to journal ops (the wire/disk encoding).
func ToJournalOps(ops []api.Mutation) []snapshot.JournalOp {
	out := make([]snapshot.JournalOp, len(ops))
	for i, op := range ops {
		j := snapshot.JournalOp{U: op.U, V: op.V, Name: op.Name, Keywords: op.Keywords}
		switch op.Op {
		case api.OpAddEdge:
			j.Kind = snapshot.JournalAddEdge
		case api.OpRemoveEdge:
			j.Kind = snapshot.JournalRemoveEdge
		case api.OpAddVertex:
			j.Kind = snapshot.JournalAddVertex
		}
		out[i] = j
	}
	return out
}

// FromJournalOps maps journal ops back to API mutations.
func FromJournalOps(ops []snapshot.JournalOp) []api.Mutation {
	out := make([]api.Mutation, len(ops))
	for i, j := range ops {
		op := api.Mutation{U: j.U, V: j.V, Name: j.Name, Keywords: j.Keywords}
		switch j.Kind {
		case snapshot.JournalAddEdge:
			op.Op = api.OpAddEdge
		case snapshot.JournalRemoveEdge:
			op.Op = api.OpRemoveEdge
		case snapshot.JournalAddVertex:
			op.Op = api.OpAddVertex
		}
		out[i] = op
	}
	return out
}
