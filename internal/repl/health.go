package repl

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// HealthStatus is the body of GET /api/v1/health — deliberately tiny, so a
// probe is cheap enough to run every second against every node. It carries
// exactly what the failure detector and the promotion protocol need: who the
// node thinks it is (role, fleet epoch, tail target) and how far it has
// applied each dataset.
type HealthStatus struct {
	// Role is "primary", "replica", or "standalone".
	Role string `json:"role"`
	// FleetEpoch is the node's promotion counter. Zero means the node has
	// never taken part in a promotion (a freshly started replica); a
	// primary always reports at least 1.
	FleetEpoch uint64 `json:"fleetEpoch"`
	// Primary is the upstream a replica tails (empty on a primary or
	// standalone node). The router's supervision loop compares it against
	// the fleet topology to find replicas left pointing at a dead node.
	Primary string `json:"primary,omitempty"`
	// UptimeSec is seconds since the server started.
	UptimeSec int64 `json:"uptimeSec"`
	// Datasets maps dataset name to per-dataset replication position.
	Datasets map[string]DatasetHealth `json:"datasets,omitempty"`
	// Promotions and Demotions count role transitions this boot.
	Promotions uint64 `json:"promotions,omitempty"`
	Demotions  uint64 `json:"demotions,omitempty"`
}

// DatasetHealth is one dataset's replication position as reported by health.
type DatasetHealth struct {
	// Epoch is the snapshot epoch the position is relative to.
	Epoch uint64 `json:"epoch,omitempty"`
	// AppliedSeq is the last journal sequence applied locally. Sequence
	// numbers are versions, so on a primary this is simply the dataset
	// Version.
	AppliedSeq uint64 `json:"appliedSeq"`
	// HeadSeq is the newest sequence known to exist upstream (equals
	// AppliedSeq on a primary). HeadSeq-AppliedSeq is the replication lag.
	HeadSeq uint64 `json:"headSeq"`
	// Phase is the replica tail phase ("tailing", "bootstrapping", ...);
	// empty on a primary.
	Phase string `json:"phase,omitempty"`
}

// AppliedTotal sums AppliedSeq across datasets — the scalar the election
// ranks candidates by. Summing is safe because every node tails the same
// dataset set from the same lineage; a candidate missing a dataset entirely
// scores lower, which is the desired order.
func (h *HealthStatus) AppliedTotal() uint64 {
	var total uint64
	for _, d := range h.Datasets {
		total += d.AppliedSeq
	}
	return total
}

// FetchHealth probes one node's health endpoint. The ctx bounds the whole
// probe (the monitor passes a per-probe deadline); any transport error,
// non-200 status, or undecodable body is an error — the caller counts it as
// a probe failure, nothing more granular.
func FetchHealth(ctx context.Context, client *http.Client, baseURL string) (*HealthStatus, error) {
	if client == nil {
		client = http.DefaultClient
	}
	url := strings.TrimRight(baseURL, "/") + "/api/v1/health"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("health %s: status %d", baseURL, resp.StatusCode)
	}
	var h HealthStatus
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h); err != nil {
		return nil, fmt.Errorf("health %s: %w", baseURL, err)
	}
	return &h, nil
}

// promoteRequest is the body of POST /api/v1/promote: the fleet epoch the
// candidate must adopt and the peers it must verify it is caught up against.
type promoteRequest struct {
	Epoch uint64   `json:"epoch"`
	Peers []string `json:"peers,omitempty"`
}

// demoteRequest is the body of POST /api/v1/demote: the (higher) fleet epoch
// that fences the node and the primary it must start tailing.
type demoteRequest struct {
	Epoch   uint64 `json:"epoch"`
	Primary string `json:"primary"`
}

// retargetRequest is the body of POST /api/v1/retarget: point a replica's
// tailer at a new primary under the given fleet epoch.
type retargetRequest struct {
	Epoch   uint64 `json:"epoch"`
	Primary string `json:"primary"`
}

// postControl issues one fleet-control POST (promote/demote/retarget) and
// decodes nothing but success: 2xx nil, anything else an error carrying the
// status for the caller's logs.
func postControl(ctx context.Context, client *http.Client, baseURL, path string, body any) error {
	if client == nil {
		client = http.DefaultClient
	}
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	url := strings.TrimRight(baseURL, "/") + path
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(string(raw)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("%s %s: status %d", path, baseURL, resp.StatusCode)
	}
	return nil
}

// healthDeadline is the default per-probe budget when the caller did not
// configure one.
const healthDeadline = 2 * time.Second
