package repl_test

// End-to-end replication tests: a real primary server, a real replica server
// tailing it over HTTP, and the dyntest oracles asserting the replica is
// bit-for-bit the primary — graph, core numbers, CL-tree covers, truss, and
// ACQ answers — after every batch, across fences, and across restarts.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cexplorer/internal/api"
	"cexplorer/internal/dyntest"
	"cexplorer/internal/gen"
	"cexplorer/internal/graph"
	"cexplorer/internal/repl"
	"cexplorer/internal/server"
)

// primaryNode is a primary server under test.
type primaryNode struct {
	exp  *api.Explorer
	srv  *server.Server
	ts   *httptest.Server
	feed *repl.Feed
}

func startPrimary(t *testing.T, opt repl.FeedOptions) *primaryNode {
	t.Helper()
	exp := api.NewExplorer()
	srv := server.New(exp, t.Logf)
	feed := srv.EnableReplicationPrimary(opt)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &primaryNode{exp: exp, srv: srv, ts: ts, feed: feed}
}

// replicaNode is a replica server + tailer under test.
type replicaNode struct {
	exp    *api.Explorer
	srv    *server.Server
	ts     *httptest.Server
	rep    *repl.Replica
	cancel context.CancelFunc
	done   chan struct{}
}

// fastTail are replica options tuned for tests: discover and retry quickly.
func fastTail() repl.ReplicaOptions {
	return repl.ReplicaOptions{
		PollWait:   300 * time.Millisecond,
		Refresh:    20 * time.Millisecond,
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 100 * time.Millisecond,
	}
}

func startReplica(t *testing.T, primaryURL string, opt repl.ReplicaOptions) *replicaNode {
	t.Helper()
	exp := api.NewExplorer()
	opt.Logf = t.Logf
	rep := repl.NewReplica(exp, primaryURL, opt)
	srv := server.New(exp, t.Logf)
	srv.EnableReplicationReplica(rep, 5*time.Second)
	ts := httptest.NewServer(srv.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	n := &replicaNode{exp: exp, srv: srv, ts: ts, rep: rep, cancel: cancel, done: make(chan struct{})}
	go func() {
		rep.Run(ctx)
		close(n.done)
	}()
	t.Cleanup(func() {
		n.stop()
		ts.Close()
	})
	return n
}

func (n *replicaNode) stop() {
	n.cancel()
	select {
	case <-n.done:
	case <-time.After(10 * time.Second):
	}
}

// postMutations applies a batch through the primary's HTTP surface and
// returns the version it produced.
func postMutations(t *testing.T, baseURL, name string, ops []api.Mutation) uint64 {
	t.Helper()
	payload, _ := json.Marshal(map[string]any{"mutations": ops})
	resp, err := http.Post(baseURL+"/api/v1/datasets/"+name+"/mutations", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutations: status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Version uint64 `json:"version"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out.Version
}

// waitApplied blocks until the replica has applied at least version v.
func waitApplied(t *testing.T, rep *repl.Replica, name string, v uint64) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := rep.WaitVersion(ctx, name, v); err != nil {
		st, ok := rep.Status(name)
		t.Fatalf("replica never reached version %d of %q: %v (status %+v ok=%v)", v, name, err, st, ok)
	}
}

// TestReplicaConvergence is the core acceptance test: a replica that tails
// a mutating primary holds, at every version it reaches, a dataset
// indistinguishable from the primary's — per batch, not just at the end.
func TestReplicaConvergence(t *testing.T) {
	p := startPrimary(t, repl.FeedOptions{})
	base := gen.GNMAttributed(60, 150, 6, 11)
	if _, err := p.exp.AddGraph("dyn", base); err != nil {
		t.Fatal(err)
	}
	ops := dyntest.GenOps(base, 120, 7)
	r := startReplica(t, p.ts.URL, fastTail())

	const batch = 6
	for off := 0; off < len(ops); off += batch {
		end := min(off+batch, len(ops))
		v := postMutations(t, p.ts.URL, "dyn", ops[off:end])
		waitApplied(t, r.rep, "dyn", v)
		pds, _ := p.exp.Dataset("dyn")
		rds, ok := r.exp.Dataset("dyn")
		if !ok {
			t.Fatal("replica lost the dataset")
		}
		if err := dyntest.CheckConverged(pds, rds); err != nil {
			t.Fatalf("after batch at op %d (version %d): %v", off, v, err)
		}
	}
	st := r.rep.Stats()
	if st.AppliedRecords == 0 || st.Bootstraps == 0 {
		t.Fatalf("replica stats %+v", st)
	}
}

// TestReplicaFencesOnReupload: replacing a dataset wholesale (re-upload)
// resets the feed; the tailing replica must fence, re-bootstrap the new
// lineage, and converge on it — never splice new-lineage records onto the
// old graph.
func TestReplicaFencesOnReupload(t *testing.T) {
	p := startPrimary(t, repl.FeedOptions{})
	if _, err := p.exp.AddGraph("dyn", gen.Figure5()); err != nil {
		t.Fatal(err)
	}
	r := startReplica(t, p.ts.URL, fastTail())
	v := postMutations(t, p.ts.URL, "dyn", []api.Mutation{{Op: api.OpAddEdge, U: 0, V: 5}})
	waitApplied(t, r.rep, "dyn", v)

	// Re-upload a different graph under the same name via the HTTP surface,
	// so the server's feed.Reset fencing path runs.
	jg := graph.JSONGraph{
		Vertices: []graph.JSONVertex{
			{ID: 0, Name: "x", Keywords: []string{"a"}},
			{ID: 1, Name: "y", Keywords: []string{"a", "b"}},
			{ID: 2, Name: "z", Keywords: []string{"b"}},
		},
		Edges: [][2]int32{{0, 1}, {1, 2}},
	}
	raw, _ := json.Marshal(jg)
	payload, _ := json.Marshal(map[string]any{"name": "dyn", "graph": json.RawMessage(raw)})
	resp, err := http.Post(p.ts.URL+"/api/upload", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-upload: status %d", resp.StatusCode)
	}

	// Mutate the new lineage; the replica must fence, re-bootstrap, and
	// converge on the replacement graph.
	v = postMutations(t, p.ts.URL, "dyn", []api.Mutation{{Op: api.OpAddEdge, U: 0, V: 2}})
	waitForConvergence(t, p.exp, r.exp, "dyn", v)
	rds, _ := r.exp.Dataset("dyn")
	if rds.Graph.N() != 3 {
		t.Fatalf("replica still serving the old lineage: %d vertices", rds.Graph.N())
	}
	if st := r.rep.Stats(); st.Bootstraps < 2 {
		t.Fatalf("re-upload did not force a re-bootstrap: %+v", st)
	}
}

// waitForConvergence polls until the replica holds the primary's version v
// and CheckConverged passes — for flows (fence, restart) where WaitVersion
// alone can race a re-bootstrap that momentarily rewinds the state.
func waitForConvergence(t *testing.T, pexp, rexp *api.Explorer, name string, v uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var last error
	for time.Now().Before(deadline) {
		pds, ok1 := pexp.Dataset(name)
		rds, ok2 := rexp.Dataset(name)
		if ok1 && ok2 && pds.Version == v && rds.Version == v {
			if last = dyntest.CheckConverged(pds, rds); last == nil {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("no convergence at version %d: %v", v, last)
}

// TestReplicaFencesOnTrimmedBuffer: a feed whose ring is too small to cover
// a replica's outage forces a fence + re-bootstrap instead of a gapped
// stream. The replica is stopped (simulated crash), the primary absorbs
// more batches than the ring holds, and a fresh tailer must recover through
// the snapshot and still converge.
func TestReplicaFencesOnTrimmedBuffer(t *testing.T) {
	p := startPrimary(t, repl.FeedOptions{MaxRecords: 2})
	base := gen.GNMAttributed(30, 60, 4, 3)
	if _, err := p.exp.AddGraph("dyn", base); err != nil {
		t.Fatal(err)
	}
	ops := dyntest.GenOps(base, 60, 5)
	r := startReplica(t, p.ts.URL, fastTail())
	v := postMutations(t, p.ts.URL, "dyn", ops[:5])
	waitApplied(t, r.rep, "dyn", v)
	r.stop() // replica goes dark holding version v

	// The primary moves on far beyond the 2-record ring.
	for off := 5; off < len(ops); off += 5 {
		v = postMutations(t, p.ts.URL, "dyn", ops[off:off+5])
	}

	// A restarted tailer over the same (stale) explorer must re-bootstrap —
	// its cursor is below the ring's base — and converge.
	r2 := startReplica(t, p.ts.URL, fastTail())
	// Reuse of explorers across replicaNodes is deliberate here: r2 has a
	// fresh empty explorer, so this exercises the cold-restart path too.
	waitForConvergence(t, p.exp, r2.exp, "dyn", v)
	if p.feed.Stats().Fences == 0 && r2.rep.Stats().Bootstraps == 0 {
		t.Fatalf("no fence or bootstrap recorded: feed %+v replica %+v", p.feed.Stats(), r2.rep.Stats())
	}
}

// TestReplicaRestartResumes: stopping and restarting the tailer over the
// same explorer (warm restart) resumes from the applied position and keeps
// converging.
func TestReplicaRestartResumes(t *testing.T) {
	p := startPrimary(t, repl.FeedOptions{})
	base := gen.GNMAttributed(40, 90, 4, 9)
	if _, err := p.exp.AddGraph("dyn", base); err != nil {
		t.Fatal(err)
	}
	ops := dyntest.GenOps(base, 40, 13)
	r := startReplica(t, p.ts.URL, fastTail())
	v := postMutations(t, p.ts.URL, "dyn", ops[:10])
	waitApplied(t, r.rep, "dyn", v)
	r.stop()

	v = postMutations(t, p.ts.URL, "dyn", ops[10:20])

	// New tailer over the SAME explorer: bootstrap re-fetches the snapshot
	// (simplest correct restart), then tails the remainder.
	opt := fastTail()
	opt.Logf = t.Logf
	rep2 := repl.NewReplica(r.exp, p.ts.URL, opt)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go rep2.Run(ctx)
	waitForConvergence(t, p.exp, r.exp, "dyn", v)

	v = postMutations(t, p.ts.URL, "dyn", ops[20:])
	waitForConvergence(t, p.exp, r.exp, "dyn", v)
}

// TestReplicaReadYourWrites: over the replica's HTTP surface, a read
// carrying X-CExplorer-Min-Version never observes an older version — it
// waits for the tailer — and an unreachable version answers a typed 503.
// Writes against the replica answer a typed 403.
func TestReplicaReadYourWrites(t *testing.T) {
	p := startPrimary(t, repl.FeedOptions{})
	if _, err := p.exp.AddGraph("fig5", gen.Figure5()); err != nil {
		t.Fatal(err)
	}
	r := startReplica(t, p.ts.URL, fastTail())
	waitApplied(t, r.rep, "fig5", 0) // wait for the bootstrap claim

	client := &http.Client{Timeout: 30 * time.Second}
	for i := 0; i < 10; i++ {
		v := postMutations(t, p.ts.URL, "fig5", []api.Mutation{{Op: api.OpAddVertex, Name: fmt.Sprintf("n%d", i)}})
		req, _ := http.NewRequest("GET", r.ts.URL+"/api/v1/datasets/fig5", nil)
		req.Header.Set(repl.HeaderMinVersion, fmt.Sprint(v))
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var info struct {
			Version uint64 `json:"version"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("write %d: replica read status %d", i, resp.StatusCode)
		}
		if info.Version < v {
			t.Fatalf("read-your-writes violated: wrote version %d, read %d", v, info.Version)
		}
	}

	// A version the primary never produced: the gate must give up with the
	// typed 503 rather than hang or serve stale.
	req, _ := http.NewRequest("GET", r.ts.URL+"/api/v1/datasets/fig5", nil)
	req.Header.Set(repl.HeaderMinVersion, "999999")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unreachable min-version: status %d body %s", resp.StatusCode, body)
	}
	var env struct {
		Code string `json:"code"`
	}
	if json.Unmarshal(body, &env); env.Code != repl.CodeReplicaLagging {
		t.Fatalf("unreachable min-version: code %q", env.Code)
	}

	// Replicas reject writes with the typed 403.
	resp, err = http.Post(r.ts.URL+"/api/v1/datasets/fig5/mutations", "application/json",
		bytes.NewReader([]byte(`{"op":"addEdge","u":0,"v":3}`)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("replica write: status %d", resp.StatusCode)
	}
	if json.Unmarshal(body, &env); env.Code != repl.CodeReadOnly {
		t.Fatalf("replica write: code %q body %s", env.Code, body)
	}
}

// TestReplicationStatsSurface: both roles expose their replication blocks
// in /api/stats and in the dataset resource.
func TestReplicationStatsSurface(t *testing.T) {
	p := startPrimary(t, repl.FeedOptions{})
	if _, err := p.exp.AddGraph("fig5", gen.Figure5()); err != nil {
		t.Fatal(err)
	}
	r := startReplica(t, p.ts.URL, fastTail())
	v := postMutations(t, p.ts.URL, "fig5", []api.Mutation{{Op: api.OpAddEdge, U: 0, V: 5}})
	waitApplied(t, r.rep, "fig5", v)
	// A second batch after the bootstrap guarantees at least one record
	// traveled the journal stream (the first may ride in the snapshot).
	v = postMutations(t, p.ts.URL, "fig5", []api.Mutation{{Op: api.OpRemoveEdge, U: 0, V: 5}})
	waitApplied(t, r.rep, "fig5", v)

	var stats struct {
		Replication *struct {
			Role string `json:"role"`
			Feed *struct {
				Published int64 `json:"published"`
			} `json:"feed"`
			Replica *struct {
				AppliedRecords int64 `json:"appliedRecords"`
			} `json:"replica"`
		} `json:"replication"`
	}
	getJSON := func(url string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		stats.Replication = nil
		if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
			t.Fatal(err)
		}
	}
	getJSON(p.ts.URL + "/api/stats")
	if stats.Replication == nil || stats.Replication.Role != "primary" ||
		stats.Replication.Feed == nil || stats.Replication.Feed.Published == 0 {
		t.Fatalf("primary stats replication block: %+v", stats.Replication)
	}
	getJSON(r.ts.URL + "/api/stats")
	if stats.Replication == nil || stats.Replication.Role != "replica" ||
		stats.Replication.Replica == nil || stats.Replication.Replica.AppliedRecords == 0 {
		t.Fatalf("replica stats replication block: %+v", stats.Replication)
	}

	var info struct {
		Replication *struct {
			Role       string `json:"role"`
			AppliedSeq uint64 `json:"appliedSeq"`
			Phase      string `json:"phase"`
		} `json:"replication"`
	}
	resp, err := http.Get(r.ts.URL + "/api/v1/datasets/fig5")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Replication == nil || info.Replication.Role != "replica" || info.Replication.AppliedSeq != v {
		t.Fatalf("replica dataset replication block: %+v", info.Replication)
	}
}
